#include "chaos/serve_chaos.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "common/status.h"
#include "data/generator.h"
#include "lattice/lattice.h"
#include "seqcube/seq_cube.h"
#include "serve/retry_policy.h"
#include "serve/router.h"
#include "serve/shard_set.h"

namespace sncube {
namespace chaos {

FaultPlan RandomServePlan(Rng& rng, int shards, std::uint64_t requests) {
  SNCUBE_CHECK(shards >= 1 && requests >= 1);
  FaultPlan plan;
  do {
    plan = FaultPlan{};
    for (int s = 0; s < shards; ++s) {
      if (rng.NextDouble() < 0.4) {
        FaultPlan::ShardKill k;
        k.shard = s;
        k.from = rng.Below(requests);
        // Mostly finite windows (the shard restarts mid-run, exercising
        // recovery + cache invalidation); sometimes a permanent outage.
        if (rng.NextDouble() < 0.75) {
          k.until = k.from + 1 + rng.Below(requests - k.from);
        }
        plan.shard_kills.push_back(k);
      }
      if (rng.NextDouble() < 0.4) {
        FaultPlan::ShardSlow sl;
        sl.shard = s;
        sl.from = rng.Below(requests);
        sl.until = sl.from + 1 + rng.Below(requests - sl.from);
        sl.factor = 1.5 + 6.5 * rng.NextDouble();
        plan.shard_slows.push_back(sl);
      }
    }
  } while (plan.empty());
  plan.seed = rng.Next();
  return plan;
}

ServeChaosTrial::ServeChaosTrial(const ServeChaosOptions& opts, int shards)
    : opts_(opts), shards_(shards) {
  DatasetSpec spec;
  spec.rows = opts_.rows;
  spec.cardinalities = opts_.cards;
  spec.seed = opts_.data_seed;
  schema_ = spec.MakeSchema();
  const Relation raw = GenerateSlice(spec, 1, 0);
  cube_ = SequentialCube(raw, schema_, AllViews(schema_.dims()));
  golden_ = std::make_unique<CubeQueryEngine>(cube_);

  // The request sequence is fixed once per trial harness: the same queries,
  // in the same order, replay against every candidate plan — so a shrink
  // step only ever changes the faults, never the traffic.
  WorkloadSpec wl = opts_.workload;
  wl.seed = opts_.seed * 0x9E3779B97F4A7C15ULL + 17;
  const QueryMix mix(cube_, schema_, wl);
  Rng draw(wl.seed + 1);
  requests_.reserve(static_cast<std::size_t>(opts_.requests));
  golden_rels_.reserve(static_cast<std::size_t>(opts_.requests));
  for (int i = 0; i < opts_.requests; ++i) {
    const Query q = mix.Sample(draw);
    requests_.push_back(q);
    golden_rels_.push_back(golden_->Execute(q).rel);
  }
}

ServeChaosTrial::~ServeChaosTrial() = default;

std::optional<std::string> ServeChaosTrial::Check(const FaultPlan& plan) {
  ManualServeClock clock;
  ShardSetOptions sopts;
  sopts.shards = shards_;
  sopts.clock = &clock;
  sopts.server.workers = 2;
  // Shard-side wall-clock deadlines are the one nondeterministic knob; the
  // chaos trial keeps them off so every trajectory is a pure function of
  // the plan.
  sopts.server.deadline = std::chrono::microseconds(0);
  ShardSet shard_set(cube_, sopts, plan);

  RouterOptions ropts;
  ropts.per_try_us = 1000;       // trips when slowdown > ~6x nominal
  ropts.hedge_delay_us = 400;    // hedges on mildly slow tries
  ropts.max_tries = 3;
  ropts.backoff.base_us = 500;
  ropts.backoff.cap_us = 4000;
  ropts.breaker.failure_threshold = 4;
  ropts.breaker.window_us = 100000;
  ropts.breaker.cooldown_us = 2000;
  ropts.probe_every = 16;
  ropts.pin_scatter_view = opts_.pin_scatter_view;
  Router router(shard_set, ropts);

  for (std::size_t i = 0; i < requests_.size(); ++i) {
    // Virtual inter-arrival gap: lets breaker cooldowns elapse mid-run so
    // recovery (open → half-open → closed) is exercised deterministically.
    clock.Advance(200);
    const RouterResult r = router.Execute(requests_[i]);
    if (r.outcome != RouterOutcome::kOk) continue;  // typed — allowed
    if (r.answer == nullptr) {
      return "request " + std::to_string(i) + " reported ok with no answer";
    }
    if (!(r.answer->rel == golden_rels_[i])) {
      std::ostringstream os;
      os << "request " << i << " (" << (r.scatter ? "scatter" : "point")
         << ", view mask " << r.answer->answered_from.mask()
         << ") returned a WRONG answer: " << r.answer->rel.size()
         << " rows vs golden " << golden_rels_[i].size();
      return os.str();
    }
  }
  return std::nullopt;
}

FaultPlan ServeChaosTrial::Shrink(const FaultPlan& plan) {
  FaultPlan cur = plan;
  const auto fails = [&](const FaultPlan& p) { return Check(p).has_value(); };

  // Phase 1: ddmin-style greedy clause removal to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    const auto try_drop = [&](auto member) {
      auto& vec = cur.*member;
      for (std::size_t i = 0; i < vec.size(); ++i) {
        FaultPlan cand = cur;
        auto& cand_vec = cand.*member;
        cand_vec.erase(cand_vec.begin() + static_cast<std::ptrdiff_t>(i));
        if (fails(cand)) {
          cur = std::move(cand);
          changed = true;
          return;
        }
      }
    };
    try_drop(&FaultPlan::shard_kills);
    if (!changed) try_drop(&FaultPlan::shard_slows);
  }

  // Phase 2: shrink the surviving windows and factors while the failure
  // persists — shorter windows, later-to-earlier starts, gentler slowdowns.
  const auto shrink_window = [&](auto member, auto set_window) {
    for (std::size_t i = 0; i < (cur.*member).size(); ++i) {
      // Halve the window length (endless windows first become finite).
      for (;;) {
        FaultPlan cand = cur;
        auto& c = (cand.*member)[i];
        const std::uint64_t len =
            (c.until == FaultPlan::kNoEnd)
                ? static_cast<std::uint64_t>(opts_.requests) - c.from
                : c.until - c.from;
        if (len <= 1) break;
        set_window(c, c.from, c.from + len / 2);
        if (!fails(cand)) break;
        cur = std::move(cand);
      }
      // Halve the start toward request 0.
      while ((cur.*member)[i].from > 0) {
        FaultPlan cand = cur;
        auto& c = (cand.*member)[i];
        const std::uint64_t len =
            (c.until == FaultPlan::kNoEnd) ? 0 : c.until - c.from;
        const std::uint64_t from = c.from / 2;
        set_window(c, from,
                   c.until == FaultPlan::kNoEnd ? FaultPlan::kNoEnd
                                                : from + len);
        if (!fails(cand)) break;
        cur = std::move(cand);
      }
    }
  };
  shrink_window(&FaultPlan::shard_kills,
                [](FaultPlan::ShardKill& k, std::uint64_t f, std::uint64_t u) {
                  k.from = f;
                  k.until = u;
                });
  shrink_window(&FaultPlan::shard_slows,
                [](FaultPlan::ShardSlow& s, std::uint64_t f, std::uint64_t u) {
                  s.from = f;
                  s.until = u;
                });
  for (std::size_t i = 0; i < cur.shard_slows.size(); ++i) {
    while (cur.shard_slows[i].factor > 1.05) {
      FaultPlan cand = cur;
      cand.shard_slows[i].factor =
          1.0 + (cand.shard_slows[i].factor - 1.0) / 2;
      if (!fails(cand)) break;
      cur = std::move(cand);
    }
  }
  return cur;
}

ChaosReport RunServeChaosSearch(const ServeChaosOptions& opts) {
  ChaosReport report;
  for (const int shards : opts.shard_counts) {
    ServeChaosTrial trial(opts, shards);
    // Per-shard-count stream, so adding a size never reshuffles the plans
    // another size already explored.
    Rng rng(opts.seed * 0x9E3779B97F4A7C15ULL +
            static_cast<std::uint64_t>(shards) + 0x5157);
    for (int i = 0; i < opts.plans; ++i) {
      const FaultPlan plan = RandomServePlan(
          rng, shards, static_cast<std::uint64_t>(opts.requests));
      ++report.trials;
      const auto reason = trial.Check(plan);
      if (opts.verbose) {
        std::fprintf(stderr, "serve-chaos shards=%d plan %d/%d [%s]: %s\n",
                     shards, i + 1, opts.plans, plan.ToSpec().c_str(),
                     reason ? reason->c_str() : "ok");
      }
      if (reason.has_value()) {
        ChaosFailure failure;
        failure.procs = shards;
        failure.original = plan;
        failure.reason = *reason;
        failure.plan = trial.Shrink(plan);
        if (opts.verbose) {
          std::fprintf(stderr, "serve-chaos shards=%d plan %d shrunk to [%s]\n",
                       shards, i + 1, failure.plan.ToSpec().c_str());
        }
        report.failures.push_back(std::move(failure));
      }
    }
  }
  return report;
}

}  // namespace chaos
}  // namespace sncube
