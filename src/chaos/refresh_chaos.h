// Chaos search over online-refresh fault plans.
//
// The serve-tier harness (chaos/serve_chaos.h) checks "no wrong answers"
// against ONE immutable cube. This harness attacks the hard part of
// src/refresh: a refresh swapping a new snapshot epoch into the serving
// tier UNDER TRAFFIC, with the coordinator crashing at arbitrary phases of
// the two-phase swap and rank-0 disk clauses corrupting the snapshot bytes.
// Its invariant:
//
//   OLD OR NEW, NEVER A BLEND. Every OK response — before, during, and
//   after the refresh, and after a crash + SnapshotStore::Recover restart —
//   is byte-identical to the PRE-refresh golden answer or the POST-refresh
//   golden answer for that query. A response mixing rows or measures from
//   both snapshots is the unforgivable outcome; so is a recovered cube that
//   equals neither golden cube.
//
// A trial drives a deterministic query stream through a Router/ShardSet on
// a ManualServeClock. RefreshOptions::on_phase injects a burst of that
// stream at entry to EVERY swap phase (prepare, between per-shard commits,
// pre-commit, post-commit), so requests interleave with each swap step
// deterministically. A refreshkill crash is followed by a simulated process
// restart: the shard set is torn down, SnapshotStore::Recover picks the
// newest committed epoch (or the caller falls back to the pre-refresh base
// cube), and the remaining stream replays against the recovered state.
// Failing plans shrink ddmin-style and report through the shared
// ChaosReport, like both sibling harnesses.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chaos/explorer.h"
#include "common/rng.h"
#include "net/fault.h"
#include "query/engine.h"
#include "relation/schema.h"
#include "seqcube/cube_result.h"
#include "serve/workload.h"

namespace sncube {
namespace chaos {

struct RefreshChaosOptions {
  // Random refresh plans to try per shard count.
  int plans = 16;
  // Master seed: plan generation and the query workload derive from it.
  std::uint64_t seed = 1;
  // Shard counts to exercise (phase 3 has shards-1 distinct kill points).
  std::vector<int> shard_counts = {2, 4};
  // Synthetic BASE dataset the pre-refresh cube is built over.
  std::uint64_t rows = 500;
  std::vector<std::uint32_t> cards = {8, 5, 3};
  std::uint64_t data_seed = 29;
  // The insert-only delta ingested by the refresh (disjoint seed stream, so
  // the post-refresh cube differs from the base on most views).
  std::uint64_t delta_rows = 200;
  std::uint64_t delta_seed = 61;
  // Total deterministic query stream per trial run. The stream is consumed
  // in order: `requests_before` ahead of the refresh, `requests_per_phase`
  // at entry to each swap phase, and the remainder after the refresh
  // completes or after crash recovery.
  int requests = 120;
  int requests_before = 24;
  int requests_per_phase = 6;
  // Query mix the stream is sampled from.
  WorkloadSpec workload;
  // TEST-ONLY escape hatch (cf. ServeChaosOptions::pin_scatter_view): false
  // clears ShardSetOptions::pin_epoch, re-opening the naive single-phase
  // swap bug — mid-swap scatters answer each slice from whatever epoch its
  // shard last committed, blending two snapshots — so tests can prove this
  // harness catches and shrinks a real refresh corruption.
  bool pin_epoch = true;
  // Snapshot store scratch root; empty = system temp (pid-scoped).
  std::string snapshot_root;
  // Progress lines to stderr.
  bool verbose = false;
};

// Draws one random refresh plan for `shards` shards over a `requests`-long
// stream: coordinator kills at random swap phases, rank-0 snapshot disk
// clauses (diskerr/bitflip/tornwrite), and serve-tier kill/slow windows so
// the swap runs under shard churn. Never empty; deterministic under `rng`.
// Exposed for tests.
FaultPlan RandomRefreshPlan(Rng& rng, int shards, std::uint64_t requests);

// One shard count's trial harness. Construction builds the base cube, runs
// one fault-free refresh pipeline to get the post-refresh golden cube, and
// precomputes the query stream with BOTH golden answers per request; all of
// it is reused across plans.
class RefreshChaosTrial {
 public:
  RefreshChaosTrial(const RefreshChaosOptions& opts, int shards);
  ~RefreshChaosTrial();

  // Replays the stream around one Refresh() under `plan`. Returns
  // std::nullopt when every response (and the recovered cube, if the plan
  // crashed the coordinator) upholds old-or-new; otherwise a description of
  // the first blend.
  std::optional<std::string> Check(const FaultPlan& plan);

  // Greedy ddmin: drop clauses to a fixpoint, then shrink serve windows,
  // slow factors, and disk-fault rates while the failure persists.
  FaultPlan Shrink(const FaultPlan& plan);

  const CubeResult& pre_cube() const { return pre_cube_; }
  const CubeResult& post_cube() const { return post_cube_; }

 private:
  // "" when `cube` is byte-identical to the pre- or post-refresh golden
  // cube, else which views diverge.
  std::string MatchesEitherGolden(const CubeResult& cube) const;

  RefreshChaosOptions opts_;
  int shards_;
  Schema schema_;
  CubeResult pre_cube_;
  Relation delta_;
  CubeResult post_cube_;
  std::vector<Query> requests_;
  std::vector<Relation> golden_pre_;   // per request, answer over pre_cube_
  std::vector<Relation> golden_post_;  // per request, answer over post_cube_
  std::string root_;                   // scratch root for snapshot stores
  std::uint64_t next_check_id_ = 0;    // distinct store dir per Check
};

// Runs the full search: per shard count, `plans` random plans; failures are
// shrunk and reported.
ChaosReport RunRefreshChaosSearch(const RefreshChaosOptions& opts);

}  // namespace chaos
}  // namespace sncube
