#include "chaos/explorer.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/status.h"
#include "core/parallel_cube.h"
#include "data/generator.h"
#include "lattice/lattice.h"
#include "net/cluster.h"
#include "relation/serialize.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace sncube {
namespace chaos {
namespace {

// Restart policy: each retry strips the next fault family from the plan —
// kills first, then transient disk errors, then silent corruption — the way
// an operator retries a failed job on progressively healthier hardware. The
// invariant under test is integrity (a completed build is byte-identical),
// not survival of arbitrarily repeated faults, so bounded attempts must
// reach completion on any plan.
FaultPlan StripForAttempt(const FaultPlan& plan, int attempt) {
  FaultPlan p = plan;
  if (attempt >= 1) p.kills.clear();
  if (attempt >= 2) p.disk_errors.clear();
  if (attempt >= 3) {
    p.bit_flips.clear();
    p.torn_writes.clear();
  }
  return p;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

FaultPlan RandomPlan(Rng& rng, int procs) {
  FaultPlan plan;
  do {
    plan = FaultPlan{};
    for (int r = 0; r < procs; ++r) {
      if (rng.NextDouble() < 0.25) {
        plan.kills.push_back({r, rng.Below(32)});
      }
      if (rng.NextDouble() < 0.2) {
        plan.stragglers.push_back({r, 1.0 + 3.0 * rng.NextDouble()});
      }
      if (rng.NextDouble() < 0.3) {
        plan.disk_errors.push_back({r, 0.3 * rng.NextDouble()});
      }
      if (rng.NextDouble() < 0.3) {
        plan.bit_flips.push_back({r, rng.NextDouble()});
      }
      if (rng.NextDouble() < 0.3) {
        plan.torn_writes.push_back({r, rng.NextDouble()});
      }
    }
  } while (plan.empty());
  plan.seed = rng.Next();
  return plan;
}

ChaosTrial::ChaosTrial(const ChaosOptions& opts, int procs)
    : opts_(opts), procs_(procs) {
  if (opts_.scratch_dir.empty()) {
    opts_.scratch_dir =
        (std::filesystem::temp_directory_path() /
         ("sncube_chaos_" + std::to_string(::getpid())))
            .string();
  }
  // Fault-free golden build, no checkpointing: the byte-level ground truth
  // every trial's completed cube is compared against.
  const auto abort_reason = BuildOnce(FaultPlan{}, "", &golden_);
  SNCUBE_CHECK(!abort_reason.has_value());
}

std::optional<std::string> ChaosTrial::BuildOnce(const FaultPlan& plan,
                                                const std::string& ckpt_dir,
                                                ShardBytes* out) {
  DatasetSpec spec;
  spec.rows = opts_.rows;
  spec.cardinalities = opts_.cards;
  spec.seed = opts_.data_seed;
  const Schema schema = spec.MakeSchema();
  const int d = schema.dims();

  Cluster cluster(procs_);
  if (!plan.empty()) cluster.set_fault_plan(plan);
  ShardBytes shards(static_cast<std::size_t>(procs_));
  std::mutex mu;
  try {
    cluster.Run([&](Comm& comm) {
      const Relation raw = GenerateSlice(spec, procs_, comm.rank());
      ParallelCubeOptions build_opts;
      build_opts.checkpoint.dir = ckpt_dir;
      build_opts.checkpoint.verify_restore = opts_.verify_restore;
      CubeResult cube =
          BuildParallelCube(comm, raw, schema, AllViews(d), build_opts);
      std::vector<std::pair<std::uint32_t, std::string>> mine;
      mine.reserve(cube.views.size());
      for (const auto& [id, vr] : cube.views) {
        const ByteBuffer bytes = SerializeRelation(vr.rel);
        mine.emplace_back(
            id.mask(),
            std::string(reinterpret_cast<const char*>(bytes.data()),
                        bytes.size()));
      }
      std::sort(mine.begin(), mine.end());
      std::lock_guard<std::mutex> lock(mu);
      shards[static_cast<std::size_t>(comm.rank())] = std::move(mine);
    });
  } catch (const ClusterAbortedError& e) {
    return std::string(e.what());
  }
  *out = std::move(shards);
  return std::nullopt;
}

std::optional<std::string> ChaosTrial::Check(const FaultPlan& plan) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(opts_.scratch_dir) /
                       ("trial_" + std::to_string(trial_counter_++));
  fs::remove_all(dir);
  std::string last_abort;
  std::optional<std::string> verdict =
      "did not complete within " + std::to_string(opts_.max_attempts) +
      " attempts";
  for (int attempt = 0; attempt < opts_.max_attempts; ++attempt) {
    ShardBytes got;
    const auto abort_reason =
        BuildOnce(StripForAttempt(plan, attempt), dir.string(), &got);
    if (abort_reason.has_value()) {
      last_abort = *abort_reason;
      continue;
    }
    // The build completed: the integrity invariant is judged right here —
    // its cube must equal the fault-free golden, byte for byte.
    verdict = std::nullopt;
    for (std::size_t r = 0; r < golden_.size() && !verdict; ++r) {
      if (got[r].size() != golden_[r].size()) {
        verdict = "rank " + std::to_string(r) + " built " +
                  std::to_string(got[r].size()) + " views, golden has " +
                  std::to_string(golden_[r].size());
        break;
      }
      for (std::size_t v = 0; v < golden_[r].size(); ++v) {
        if (got[r][v] != golden_[r][v]) {
          verdict = "rank " + std::to_string(r) + " view mask " +
                    std::to_string(golden_[r][v].first) +
                    " differs from the fault-free build (attempt " +
                    std::to_string(attempt) + ")";
          break;
        }
      }
    }
    break;
  }
  if (verdict.has_value() && !last_abort.empty() &&
      verdict->rfind("did not complete", 0) == 0) {
    *verdict += "; last abort: " + last_abort;
  }
  std::filesystem::remove_all(dir);
  return verdict;
}

FaultPlan ChaosTrial::Shrink(const FaultPlan& plan) {
  FaultPlan cur = plan;
  const auto fails = [&](const FaultPlan& p) { return Check(p).has_value(); };

  // Phase 1, ddmin-style greedy clause removal to a fixpoint: a clause that
  // can be dropped with the failure persisting is irrelevant to the bug.
  bool changed = true;
  while (changed) {
    changed = false;
    const auto try_drop = [&](auto member) {
      auto& vec = cur.*member;
      for (std::size_t i = 0; i < vec.size(); ++i) {
        FaultPlan cand = cur;
        auto& cand_vec = cand.*member;
        cand_vec.erase(cand_vec.begin() + static_cast<std::ptrdiff_t>(i));
        if (fails(cand)) {
          cur = std::move(cand);
          changed = true;
          return;
        }
      }
    };
    try_drop(&FaultPlan::kills);
    if (!changed) try_drop(&FaultPlan::stragglers);
    if (!changed) try_drop(&FaultPlan::disk_errors);
    if (!changed) try_drop(&FaultPlan::bit_flips);
    if (!changed) try_drop(&FaultPlan::torn_writes);
  }

  // Phase 2: halve the surviving numeric parameters while the failure
  // persists, pushing each toward its smallest reproducing value.
  for (std::size_t i = 0; i < cur.kills.size(); ++i) {
    while (cur.kills[i].at_superstep > 0) {
      FaultPlan cand = cur;
      cand.kills[i].at_superstep /= 2;
      if (!fails(cand)) break;
      cur = std::move(cand);
    }
  }
  for (std::size_t i = 0; i < cur.stragglers.size(); ++i) {
    while (cur.stragglers[i].factor > 1.05) {
      FaultPlan cand = cur;
      cand.stragglers[i].factor = 1.0 + (cand.stragglers[i].factor - 1.0) / 2;
      if (!fails(cand)) break;
      cur = std::move(cand);
    }
  }
  const auto halve_rates = [&](auto member) {
    auto& vec = cur.*member;
    for (std::size_t i = 0; i < vec.size(); ++i) {
      while ((cur.*member)[i].rate > 1e-4) {
        FaultPlan cand = cur;
        (cand.*member)[i].rate /= 2;
        if (!fails(cand)) break;
        cur = std::move(cand);
      }
    }
  };
  halve_rates(&FaultPlan::disk_errors);
  halve_rates(&FaultPlan::bit_flips);
  halve_rates(&FaultPlan::torn_writes);
  return cur;
}

std::string ChaosReport::ToJson() const {
  std::ostringstream os;
  os << "{\"trials\":" << trials << ",\"failures\":[";
  for (std::size_t i = 0; i < failures.size(); ++i) {
    const ChaosFailure& f = failures[i];
    os << (i ? "," : "") << "{\"procs\":" << f.procs << ",\"spec\":\""
       << JsonEscape(f.plan.ToSpec()) << "\",\"original\":\""
       << JsonEscape(f.original.ToSpec()) << "\",\"reason\":\""
       << JsonEscape(f.reason) << "\"}";
  }
  os << "]}";
  return os.str();
}

ChaosReport RunChaosSearch(const ChaosOptions& opts) {
  ChaosReport report;
  for (const int p : opts.procs) {
    ChaosTrial trial(opts, p);
    // Per-procs stream, so adding a cluster size never reshuffles the plans
    // another size already explored.
    Rng rng(opts.seed * 0x9E3779B97F4A7C15ULL +
            static_cast<std::uint64_t>(p));
    for (int i = 0; i < opts.plans; ++i) {
      const FaultPlan plan = RandomPlan(rng, p);
      ++report.trials;
      const auto reason = trial.Check(plan);
      if (opts.verbose) {
        std::fprintf(stderr, "chaos p=%d plan %d/%d [%s]: %s\n", p, i + 1,
                     opts.plans, plan.ToSpec().c_str(),
                     reason ? reason->c_str() : "ok");
      }
      if (reason.has_value()) {
        ChaosFailure failure;
        failure.procs = p;
        failure.original = plan;
        failure.reason = *reason;
        failure.plan = trial.Shrink(plan);
        if (opts.verbose) {
          std::fprintf(stderr, "chaos p=%d plan %d shrunk to [%s]\n", p,
                       i + 1, failure.plan.ToSpec().c_str());
        }
        report.failures.push_back(std::move(failure));
      }
    }
  }
  return report;
}

}  // namespace chaos
}  // namespace sncube
