#include "chaos/refresh_chaos.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <utility>

#include "common/status.h"
#include "data/generator.h"
#include "io/disk.h"
#include "lattice/lattice.h"
#include "refresh/delta.h"
#include "refresh/refresh.h"
#include "refresh/snapshot.h"
#include "seqcube/seq_cube.h"
#include "serve/retry_policy.h"
#include "serve/router.h"
#include "serve/shard_set.h"

namespace sncube {
namespace chaos {
namespace {

// Byte-identity over full cubes: same views, same orders, same selected
// flags, same rows. "" on match, else the first divergence.
std::string DiffCubes(const CubeResult& a, const CubeResult& b) {
  if (a.views.size() != b.views.size()) {
    return "view count " + std::to_string(a.views.size()) + " vs " +
           std::to_string(b.views.size());
  }
  auto ia = a.views.begin();
  for (const auto& [id, vb] : b.views) {
    const auto& [ida, va] = *ia++;
    if (ida != id) return "view set mismatch at mask " + std::to_string(id.mask());
    if (va.order != vb.order || va.selected != vb.selected) {
      return "view " + std::to_string(id.mask()) + " metadata mismatch";
    }
    if (!(va.rel == vb.rel)) {
      return "view " + std::to_string(id.mask()) + " rows differ (" +
             std::to_string(va.rel.size()) + " vs " +
             std::to_string(vb.rel.size()) + ")";
    }
  }
  return "";
}

}  // namespace

FaultPlan RandomRefreshPlan(Rng& rng, int shards, std::uint64_t requests) {
  SNCUBE_CHECK(shards >= 1 && requests >= 1);
  FaultPlan plan;
  do {
    plan = FaultPlan{};
    // Coordinator crash at a random swap phase — drawn most often, since
    // crash+recover is the behavior under search.
    if (rng.NextDouble() < 0.6) {
      FaultPlan::RefreshKill k;
      k.phase = static_cast<int>(rng.Below(6));
      plan.refresh_kills.push_back(k);
    }
    // Rank-0 disk clauses: the coordinator is rank 0 of its injector, so
    // these strike the snapshot view files and manifest appends.
    if (rng.NextDouble() < 0.3) {
      plan.disk_errors.push_back({0, 0.05 + 0.25 * rng.NextDouble()});
    }
    if (rng.NextDouble() < 0.3) {
      plan.bit_flips.push_back({0, 0.2 + 0.8 * rng.NextDouble()});
    }
    if (rng.NextDouble() < 0.3) {
      plan.torn_writes.push_back({0, 0.2 + 0.8 * rng.NextDouble()});
    }
    // Serve-tier churn: the swap must stay old-or-new even while shards
    // die, restart cold, and crawl.
    for (int s = 0; s < shards; ++s) {
      if (rng.NextDouble() < 0.25) {
        FaultPlan::ShardKill k;
        k.shard = s;
        k.from = rng.Below(requests);
        k.until = k.from + 1 + rng.Below(requests - k.from);
        plan.shard_kills.push_back(k);
      }
      if (rng.NextDouble() < 0.25) {
        FaultPlan::ShardSlow sl;
        sl.shard = s;
        sl.from = rng.Below(requests);
        sl.until = sl.from + 1 + rng.Below(requests - sl.from);
        sl.factor = 1.5 + 6.5 * rng.NextDouble();
        plan.shard_slows.push_back(sl);
      }
    }
  } while (plan.empty());
  plan.seed = rng.Next();
  return plan;
}

RefreshChaosTrial::RefreshChaosTrial(const RefreshChaosOptions& opts,
                                     int shards)
    : opts_(opts), shards_(shards) {
  DatasetSpec spec;
  spec.rows = static_cast<std::int64_t>(opts_.rows);
  spec.cardinalities = opts_.cards;
  spec.seed = opts_.data_seed;
  schema_ = spec.MakeSchema();
  pre_cube_ =
      SequentialCube(GenerateSlice(spec, 1, 0), schema_, AllViews(schema_.dims()));

  // The delta: same schema, disjoint seed stream. The post-refresh golden
  // cube is the fault-free refresh pipeline itself — what any crash-free
  // run must install bit-for-bit.
  DatasetSpec dspec = spec;
  dspec.rows = static_cast<std::int64_t>(opts_.delta_rows);
  dspec.seed = opts_.delta_seed;
  delta_ = GenerateSlice(dspec, 1, 0);
  post_cube_ = MergeDeltaCube(
      pre_cube_,
      ComputeDeltaCube(delta_, schema_, AffectedViews(pre_cube_, delta_)));

  // Fixed stream with BOTH golden answers per request: shrink replays the
  // same traffic, only the faults change.
  WorkloadSpec wl = opts_.workload;
  wl.seed = opts_.seed * 0x9E3779B97F4A7C15ULL + 23;
  const QueryMix mix(pre_cube_, schema_, wl);
  CubeQueryEngine pre_engine(pre_cube_);
  CubeQueryEngine post_engine(post_cube_);
  Rng draw(wl.seed + 1);
  requests_.reserve(static_cast<std::size_t>(opts_.requests));
  golden_pre_.reserve(static_cast<std::size_t>(opts_.requests));
  golden_post_.reserve(static_cast<std::size_t>(opts_.requests));
  for (int i = 0; i < opts_.requests; ++i) {
    const Query q = mix.Sample(draw);
    requests_.push_back(q);
    golden_pre_.push_back(pre_engine.Execute(q).rel);
    golden_post_.push_back(post_engine.Execute(q).rel);
  }

  root_ = opts_.snapshot_root.empty()
              ? (std::filesystem::temp_directory_path() /
                 ("sncube_refresh_chaos_" + std::to_string(::getpid())))
                    .string()
              : opts_.snapshot_root;
  std::filesystem::create_directories(root_);
}

RefreshChaosTrial::~RefreshChaosTrial() = default;

std::string RefreshChaosTrial::MatchesEitherGolden(
    const CubeResult& cube) const {
  const std::string vs_pre = DiffCubes(cube, pre_cube_);
  if (vs_pre.empty()) return "";
  const std::string vs_post = DiffCubes(cube, post_cube_);
  if (vs_post.empty()) return "";
  return "vs pre: " + vs_pre + "; vs post: " + vs_post;
}

std::optional<std::string> RefreshChaosTrial::Check(const FaultPlan& plan) {
  const std::string dir =
      root_ + "/chk" + std::to_string(shards_) + "_" +
      std::to_string(next_check_id_++);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  std::optional<std::string> violation;
  std::size_t cursor = 0;

  RouterOptions ropts;
  ropts.per_try_us = 1000;
  ropts.hedge_delay_us = 400;
  ropts.max_tries = 3;
  ropts.backoff.base_us = 500;
  ropts.backoff.cap_us = 4000;
  ropts.breaker.failure_threshold = 4;
  ropts.breaker.window_us = 100000;
  ropts.breaker.cooldown_us = 2000;
  ropts.probe_every = 16;

  ShardSetOptions sopts;
  sopts.shards = shards_;
  sopts.server.workers = 2;
  // Off for determinism: virtual time only advances through the clock we
  // drive (cf. serve_chaos.cc).
  sopts.server.deadline = std::chrono::microseconds(0);
  sopts.pin_epoch = opts_.pin_epoch;

  // Drains `count` requests from the stream through `router`, holding every
  // OK answer to old-or-new. Typed failures are allowed — refresh churn may
  // retire a pinned epoch (kEpochGone → unavailable) but never corrupt.
  const auto drive = [&](Router& router, ManualServeClock& clock, int count,
                         const std::string& where) {
    for (int i = 0; i < count; ++i) {
      if (violation.has_value() || cursor >= requests_.size()) return;
      clock.Advance(200);
      const std::size_t qi = cursor++;
      const RouterResult r = router.Execute(requests_[qi]);
      if (r.outcome != RouterOutcome::kOk) continue;
      if (r.answer == nullptr) {
        violation = "request " + std::to_string(qi) + " (" + where +
                    ") reported ok with no answer";
        return;
      }
      if (!(r.answer->rel == golden_pre_[qi]) &&
          !(r.answer->rel == golden_post_[qi])) {
        std::ostringstream os;
        os << "request " << qi << " (" << where << ", epoch " << r.epoch
           << ", " << (r.scatter ? "scatter" : "point")
           << ") returned a BLEND: " << r.answer->rel.size()
           << " rows match neither pre-refresh golden ("
           << golden_pre_[qi].size() << " rows) nor post-refresh golden ("
           << golden_post_[qi].size() << " rows)";
        violation = os.str();
      }
    }
  };

  bool crashed = false;
  {
    ManualServeClock clock;
    ShardSet shard_set(pre_cube_, sopts, plan);
    Router router(shard_set, ropts);

    drive(router, clock, opts_.requests_before, "pre-refresh");

    FaultInjector injector(plan, /*rank=*/0);
    RefreshOptions refresh_opts;
    refresh_opts.dir = dir;
    refresh_opts.injector = &injector;
    refresh_opts.on_phase = [&](int phase) {
      drive(router, clock, opts_.requests_per_phase,
            "swap phase " + std::to_string(phase));
    };
    RefreshCoordinator coordinator(
        shard_set,
        std::shared_ptr<const CubeResult>(&pre_cube_,
                                          [](const CubeResult*) {}),
        schema_, std::move(refresh_opts));
    try {
      coordinator.Refresh(delta_);
    } catch (const InjectedFaultError&) {
      crashed = true;  // refreshkill: the simulated coordinator crash
    } catch (const SncubeIoError&) {
      crashed = true;  // diskerr escalation: snapshot write never landed
    }

    if (!crashed && !violation.has_value()) {
      // The installed cube must BE the post-refresh golden, and post-swap
      // traffic must keep answering old-or-new while old pins drain.
      const std::string diff = DiffCubes(*coordinator.current(), post_cube_);
      if (!diff.empty()) {
        violation = "completed refresh installed a cube differing from the "
                    "post-refresh golden: " + diff;
      }
      drive(router, clock,
            static_cast<int>(requests_.size() - cursor), "post-refresh");
    }
    shard_set.Shutdown();
  }

  if (crashed && !violation.has_value()) {
    // Simulated process restart: recover from the snapshot store alone; a
    // store with no committed (or no intact) epoch falls back to the
    // pre-refresh base cube, exactly like a restarted server would.
    DiskModel recovery_disk;
    SnapshotStore store(dir, recovery_disk);
    const RecoveredSnapshot rec = store.Recover();
    const CubeResult& served = rec.has_cube ? rec.cube : pre_cube_;
    const std::string mismatch = MatchesEitherGolden(served);
    if (!mismatch.empty()) {
      violation = "recovered cube (epoch " + std::to_string(rec.epoch) +
                  ", has_cube=" + (rec.has_cube ? "1" : "0") +
                  ") is a BLEND — " + mismatch;
    } else {
      // The remaining stream replays against the recovered state on a
      // fresh, fault-free serving tier (the plan's windows died with the
      // crashed process).
      ManualServeClock clock;
      ShardSet shard_set(served, sopts);
      Router router(shard_set, ropts);
      drive(router, clock, static_cast<int>(requests_.size() - cursor),
            "post-recovery");
      shard_set.Shutdown();
    }
  }

  std::filesystem::remove_all(dir, ec);
  return violation;
}

FaultPlan RefreshChaosTrial::Shrink(const FaultPlan& plan) {
  FaultPlan cur = plan;
  const auto fails = [&](const FaultPlan& p) { return Check(p).has_value(); };

  // Phase 1: ddmin-style greedy clause removal to a fixpoint, across every
  // clause family a refresh plan can carry.
  bool changed = true;
  while (changed) {
    changed = false;
    const auto try_drop = [&](auto member) {
      if (changed) return;
      auto& vec = cur.*member;
      for (std::size_t i = 0; i < vec.size(); ++i) {
        FaultPlan cand = cur;
        auto& cand_vec = cand.*member;
        cand_vec.erase(cand_vec.begin() + static_cast<std::ptrdiff_t>(i));
        if (fails(cand)) {
          cur = std::move(cand);
          changed = true;
          return;
        }
      }
    };
    try_drop(&FaultPlan::refresh_kills);
    try_drop(&FaultPlan::shard_kills);
    try_drop(&FaultPlan::shard_slows);
    try_drop(&FaultPlan::bit_flips);
    try_drop(&FaultPlan::torn_writes);
    try_drop(&FaultPlan::disk_errors);
  }

  // Phase 2: shrink surviving serve windows (shorter, earlier), slow
  // factors, and disk-fault rates while the failure persists.
  const auto shrink_window = [&](auto member, auto set_window) {
    for (std::size_t i = 0; i < (cur.*member).size(); ++i) {
      for (;;) {
        FaultPlan cand = cur;
        auto& c = (cand.*member)[i];
        const std::uint64_t len =
            (c.until == FaultPlan::kNoEnd)
                ? static_cast<std::uint64_t>(opts_.requests) - c.from
                : c.until - c.from;
        if (len <= 1) break;
        set_window(c, c.from, c.from + len / 2);
        if (!fails(cand)) break;
        cur = std::move(cand);
      }
      while ((cur.*member)[i].from > 0) {
        FaultPlan cand = cur;
        auto& c = (cand.*member)[i];
        const std::uint64_t len =
            (c.until == FaultPlan::kNoEnd) ? 0 : c.until - c.from;
        const std::uint64_t from = c.from / 2;
        set_window(c, from,
                   c.until == FaultPlan::kNoEnd ? FaultPlan::kNoEnd
                                                : from + len);
        if (!fails(cand)) break;
        cur = std::move(cand);
      }
    }
  };
  shrink_window(&FaultPlan::shard_kills,
                [](FaultPlan::ShardKill& k, std::uint64_t f, std::uint64_t u) {
                  k.from = f;
                  k.until = u;
                });
  shrink_window(&FaultPlan::shard_slows,
                [](FaultPlan::ShardSlow& s, std::uint64_t f, std::uint64_t u) {
                  s.from = f;
                  s.until = u;
                });
  for (std::size_t i = 0; i < cur.shard_slows.size(); ++i) {
    while (cur.shard_slows[i].factor > 1.05) {
      FaultPlan cand = cur;
      cand.shard_slows[i].factor = 1.0 + (cand.shard_slows[i].factor - 1.0) / 2;
      if (!fails(cand)) break;
      cur = std::move(cand);
    }
  }
  const auto shrink_rate = [&](auto member) {
    for (std::size_t i = 0; i < (cur.*member).size(); ++i) {
      while ((cur.*member)[i].rate > 0.02) {
        FaultPlan cand = cur;
        (cand.*member)[i].rate /= 2;
        if (!fails(cand)) break;
        cur = std::move(cand);
      }
    }
  };
  shrink_rate(&FaultPlan::bit_flips);
  shrink_rate(&FaultPlan::torn_writes);
  shrink_rate(&FaultPlan::disk_errors);
  return cur;
}

ChaosReport RunRefreshChaosSearch(const RefreshChaosOptions& opts) {
  ChaosReport report;
  for (const int shards : opts.shard_counts) {
    RefreshChaosTrial trial(opts, shards);
    // Per-shard-count stream (cf. serve_chaos.cc): adding a size never
    // reshuffles the plans another size already explored.
    Rng rng(opts.seed * 0x9E3779B97F4A7C15ULL +
            static_cast<std::uint64_t>(shards) + 0x5246);
    for (int i = 0; i < opts.plans; ++i) {
      const FaultPlan plan = RandomRefreshPlan(
          rng, shards, static_cast<std::uint64_t>(opts.requests));
      ++report.trials;
      const auto reason = trial.Check(plan);
      if (opts.verbose) {
        std::fprintf(stderr, "refresh-chaos shards=%d plan %d/%d [%s]: %s\n",
                     shards, i + 1, opts.plans, plan.ToSpec().c_str(),
                     reason ? reason->c_str() : "ok");
      }
      if (reason.has_value()) {
        ChaosFailure failure;
        failure.procs = shards;
        failure.original = plan;
        failure.reason = *reason;
        failure.plan = trial.Shrink(plan);
        if (opts.verbose) {
          std::fprintf(stderr,
                       "refresh-chaos shards=%d plan %d shrunk to [%s]\n",
                       shards, i + 1, failure.plan.ToSpec().c_str());
        }
        report.failures.push_back(std::move(failure));
      }
    }
  }
  return report;
}

}  // namespace chaos
}  // namespace sncube
