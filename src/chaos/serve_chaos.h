// Chaos search over serve-tier fault plans.
//
// The build-side explorer (chaos/explorer.h) hammers on integrity: a
// completed build is byte-identical to a fault-free one. This harness is its
// serving-tier sibling, and its invariant is the router's contract:
//
//   NO WRONG ANSWERS, EVER. Every Router::Execute response is either
//   bit-correct (equal to the single-engine golden answer over the full
//   cube), a typed error (failed / timed out / unavailable), or an explicit
//   shed. Degraded service is acceptable under faults; silent corruption of
//   an answer is the one unforgivable outcome.
//
// A trial runs a deterministic query workload through a Router over a
// ShardSet driven by a ManualServeClock, under a serve fault plan
// (shardkill/shardslow windows keyed on request sequence numbers — see
// net/fault.h). Determinism is total: virtual time only advances through
// policy sleeps and injected slowness, so a given (plan, seed) replays
// bit-for-bit, which makes greedy plan shrinking sound. Failing plans are
// shrunk ddmin-style (drop clauses, then shrink windows and factors) and
// reported through the same ChaosReport shape the build explorer uses, so
// the nightly chaos job handles both tiers uniformly.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chaos/explorer.h"
#include "common/rng.h"
#include "net/fault.h"
#include "query/engine.h"
#include "relation/schema.h"
#include "seqcube/cube_result.h"
#include "serve/workload.h"

namespace sncube {
namespace chaos {

struct ServeChaosOptions {
  // Random serve plans to try per shard count.
  int plans = 16;
  // Master seed: plan generation and the query workload derive from it.
  std::uint64_t seed = 1;
  // Shard counts to exercise.
  std::vector<int> shard_counts = {2, 4};
  // Synthetic dataset the served cube is built over.
  std::uint64_t rows = 600;
  std::vector<std::uint32_t> cards = {8, 5, 3};
  std::uint64_t data_seed = 29;
  // Router requests per trial; fault windows are drawn inside [0, requests).
  int requests = 200;
  // Query mix the requests are sampled from.
  WorkloadSpec workload;
  // TEST-ONLY escape hatch (cf. ChaosOptions::verify_restore): false stops
  // the router from pinning one view across a scatter (RouterOptions::
  // pin_scatter_view), re-opening the mixed-view wrong-answer bug so tests
  // can demonstrate this harness catching and shrinking a real corruption.
  bool pin_scatter_view = true;
  // Progress lines to stderr.
  bool verbose = false;
};

// Draws one random serve plan for `shards` shards over a `requests`-long
// run: kill windows (sometimes endless) and slowdown windows per shard.
// Never empty; deterministic under `rng`. Exposed for tests.
FaultPlan RandomServePlan(Rng& rng, int shards, std::uint64_t requests);

// One shard count's trial harness. Construction builds the cube once,
// precomputes every request's golden answer from a single full-cube engine,
// and reuses both across plans.
class ServeChaosTrial {
 public:
  ServeChaosTrial(const ServeChaosOptions& opts, int shards);
  ~ServeChaosTrial();

  // Replays the workload through a freshly built ShardSet + Router under
  // `plan`. Returns std::nullopt when every response upholds the invariant,
  // otherwise a human-readable description of the first wrong answer.
  std::optional<std::string> Check(const FaultPlan& plan);

  // Shrinks a plan for which Check fails to a minimal still-failing plan:
  // greedy clause removal to a fixpoint, then window/factor shrinking.
  FaultPlan Shrink(const FaultPlan& plan);

 private:
  ServeChaosOptions opts_;
  int shards_;
  Schema schema_;
  CubeResult cube_;
  std::unique_ptr<CubeQueryEngine> golden_;
  std::vector<Query> requests_;
  std::vector<Relation> golden_rels_;  // golden answer per request
};

// The full search: for each shard count, `plans` random serve plans, each
// checked and — on failure — shrunk. Deterministic given the options.
// Failures report the shard count in ChaosFailure::procs.
ChaosReport RunServeChaosSearch(const ServeChaosOptions& opts);

}  // namespace chaos
}  // namespace sncube
