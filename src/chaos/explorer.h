// Chaos search over the fault-plan space, with plan shrinking.
//
// The integrity invariant this explorer hammers on: whatever faults a build
// experiences — rank kills, stragglers, transient disk errors, silent bit
// flips, torn writes — a build that *completes* (possibly after restarts
// from its checkpoint directory) produces a cube byte-identical to a
// fault-free run. Corruption may abort a rank (typed, loud) and cost retry
// time; it must never survive into the output silently.
//
// The search is a seeded random walk: N random FaultPlans are drawn from the
// full fault universe (see net/fault.h for the grammar) and each is run as a
// trial — build under the plan, and on abort restart over the same
// checkpoint directory with a progressively stripped plan (kills first, then
// transient disk errors, then corruption), the way an operator would retry
// on progressively healthier hardware. A trial fails when the build cannot
// complete within the attempt budget or, worse, completes with bytes that
// differ from the fault-free golden build.
//
// A failing plan is then shrunk to a minimal reproducing spec: greedy
// clause removal to a fixpoint (ddmin-style), then halving of the surviving
// numeric parameters (kill supersteps, straggler factors, fault rates) while
// the failure persists. Every trial is deterministic given (plan, procs), so
// shrink decisions are sound, and the minimal plan's ToSpec() string is a
// complete bug report: `sncube build --fault-plan "<spec>"` replays it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/fault.h"

namespace sncube {
namespace chaos {

struct ChaosOptions {
  // Random plans to try per cluster size.
  int plans = 16;
  // Master seed: plan generation derives from it; trials are deterministic.
  std::uint64_t seed = 1;
  // Cluster sizes to exercise.
  std::vector<int> procs = {2, 4};
  // Synthetic dataset the trials build cubes over.
  std::uint64_t rows = 600;
  std::vector<std::uint32_t> cards = {8, 5, 3};
  std::uint64_t data_seed = 29;
  // Build attempts per trial (first under the full plan, then stripped).
  int max_attempts = 4;
  // TEST-ONLY escape hatch (CheckpointOptions::verify_restore): false
  // re-opens the silent-corruption restore path so tests can demonstrate
  // the explorer finding and shrinking a real integrity bug.
  bool verify_restore = true;
  // Scratch root for per-trial checkpoint directories; empty uses a
  // pid-qualified directory under the system temp path.
  std::string scratch_dir;
  // Progress lines to stderr.
  bool verbose = false;
};

struct ChaosFailure {
  int procs = 0;
  FaultPlan plan;      // minimal reproducing plan (after shrinking)
  FaultPlan original;  // the plan the search first found failing
  std::string reason;  // what the trial observed (mismatch / non-completion)
};

struct ChaosReport {
  int trials = 0;
  std::vector<ChaosFailure> failures;

  bool ok() const { return failures.empty(); }
  std::string ToJson() const;
};

// Draws one random plan over the full fault universe for a p-rank cluster;
// never empty, seeded from `rng` (deterministic). Exposed for tests.
FaultPlan RandomPlan(Rng& rng, int procs);

// One cluster size's trial harness. Construction runs the fault-free golden
// build once; Check and Shrink reuse it across plans.
class ChaosTrial {
 public:
  ChaosTrial(const ChaosOptions& opts, int procs);

  // Runs one plan end-to-end: build under the plan over a fresh checkpoint
  // directory, restarting with progressively stripped plans on abort.
  // Returns std::nullopt when the trial upholds the invariant, otherwise a
  // human-readable reason (byte mismatch or non-completion).
  std::optional<std::string> Check(const FaultPlan& plan);

  // Shrinks a plan for which Check fails to a minimal still-failing plan.
  FaultPlan Shrink(const FaultPlan& plan);

 private:
  using ShardBytes = std::vector<std::vector<std::pair<std::uint32_t,
                                                       std::string>>>;
  std::optional<std::string> BuildOnce(const FaultPlan& plan,
                                       const std::string& ckpt_dir,
                                       ShardBytes* out);

  ChaosOptions opts_;
  int procs_;
  ShardBytes golden_;
  std::uint64_t trial_counter_ = 0;
};

// The full search: for each cluster size, `plans` random plans, each checked
// and — on failure — shrunk. Deterministic given the options.
ChaosReport RunChaosSearch(const ChaosOptions& opts);

}  // namespace chaos
}  // namespace sncube
