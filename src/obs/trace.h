// Structured tracing over the simulated BSP clock (DESIGN.md §10).
//
// The cube pipeline already *accounts* for time per phase (net/metrics.h);
// tracing additionally records *when* each piece of work happened, as a tree
// of nested spans per rank, so a whole run can be laid out on a timeline
// (Chrome trace_event / Perfetto) and each paper figure's cost can be read
// off span by span instead of re-deriving it from aggregate counters.
//
// Design constraints, in order:
//
//   * Deterministic. Spans on the cluster path are stamped from the
//     simulated BSP clock (SimClockSource, implemented by net::Comm) — never
//     from wall time. Two runs with the same seed produce byte-identical
//     traces (golden-tested in tests/obs_test.cc). Serve-layer tracing,
//     which measures real concurrency, plugs in a wall-clock source instead
//     (src/serve/wall_clock.h — wall time is banned here by sncheck).
//   * Near-zero cost when off. `SNCUBE_TRACE_SPAN` compiles to `((void)0)`
//     when SNCUBE_TRACE_ENABLED is 0. When compiled in but no recorder is
//     installed (the default — tracing is opt-in per Run), a span site is
//     one thread-local load and a branch: no allocation, no clock read, no
//     atomic. tests/obs_test.cc and tests/obs_notrace_test.cc pin both.
//   * Thread-confined recording. A TraceRecorder belongs to exactly one
//     thread (a rank thread during Cluster::Run, a worker thread in
//     CubeServer) and is completely unsynchronized, like Comm itself.
//     Cross-thread aggregation happens only through TraceSink::Absorb,
//     which is mutex-guarded and annotated; the hand-off inherits the
//     happens-before edge of the thread join (Cluster) or the recorder
//     scope's destruction (serve), keeping the whole path TSan-clean.
//
// Span names are `const char*` by contract pointing at string literals (or
// other static storage): recording a span never copies or hashes a string.
// Dynamic labels — the dimension-partition index of Procedure 1's loop, a
// pipeline number — travel in the separate int32 `index` field and are only
// rendered ("partition/3") at export time.
#pragma once

#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

// Compile-time master switch. Builds that define SNCUBE_TRACE_ENABLED=0
// erase every SNCUBE_TRACE_SPAN site entirely (macro expands to no code);
// the library below still compiles so explicitly-written recorder calls
// (exporters, tests) keep working.
#ifndef SNCUBE_TRACE_ENABLED
#define SNCUBE_TRACE_ENABLED 1
#endif

namespace sncube::obs {

// Where a recorder gets its timestamps. net::Comm implements this over the
// simulated BSP clock (local accrued seconds, including uncharged disk
// blocks); serve uses a steady wall clock. Implementations must be cheap —
// the clock is read twice per span.
class SimClockSource {
 public:
  virtual ~SimClockSource() = default;
  // Seconds since the run/request began, on this source's clock.
  virtual double TraceNowSeconds() const = 0;
  // Superstep counter at this instant (0 where the concept does not apply).
  virtual std::uint64_t TraceSuperstep() const = 0;
};

// One closed (or force-closed at Finish) span. Plain data; vectors of these
// are moved, not copied span-by-span.
struct SpanRecord {
  const char* name = nullptr;  // static string literal (see header comment)
  std::int32_t index = -1;     // dynamic label (e.g. partition i); -1 = none
  std::int32_t parent = -1;    // position of enclosing span in the rank's
                               // span vector; -1 = top level
  std::int32_t depth = 0;      // nesting depth (top level = 0)
  double begin_s = 0;
  double end_s = 0;
  std::uint64_t begin_superstep = 0;
  std::uint64_t end_superstep = 0;
};

// One collective crossed by this rank: the superstep index, the clock after
// the collective, and this rank's traffic through it. Summed across ranks
// at export time, this is the "comm volume per superstep" series.
struct CommRecord {
  std::uint64_t superstep = 0;
  double time_s = 0;  // local clock after the collective completed
  std::uint64_t bytes_out = 0;
  std::uint64_t bytes_in = 0;
};

// Everything one rank recorded in one run, moved out of the recorder by
// Finish() and into a TraceSink. `rank` doubles as the worker index for
// serve-side traces.
struct RankTrace {
  int rank = 0;
  double end_time_s = 0;  // clock at Finish — the trace's local horizon
  std::vector<SpanRecord> spans;  // in open order; parents precede children
  std::vector<CommRecord> comms;
};

// Per-thread span/comm recorder. Strictly thread-confined and unsynchronized
// (see header comment); install one per rank thread with
// ThreadRecorderScope, then move the data out with Finish().
class TraceRecorder {
 public:
  TraceRecorder(int rank, const SimClockSource* clock);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;
  TraceRecorder(TraceRecorder&&) = default;
  TraceRecorder& operator=(TraceRecorder&&) = default;

  // Opens a nested span; returns a handle for CloseSpan. `name` must point
  // at static storage. Spans must close LIFO (guaranteed by ScopedSpan).
  std::int32_t OpenSpan(const char* name, std::int32_t index = -1);
  void CloseSpan(std::int32_t handle);

  // Records one collective's traffic at the current clock/superstep.
  void RecordComm(std::uint64_t bytes_out, std::uint64_t bytes_in);

  // Force-closes any spans still open (exception unwinds close them via
  // RAII, so this is defensive) and moves the recorded data out. The
  // recorder is empty afterwards and may be reused.
  RankTrace Finish();

  std::size_t open_depth() const { return open_.size(); }
  std::size_t span_count() const { return spans_.size(); }

 private:
  int rank_;
  const SimClockSource* clock_;
  std::vector<SpanRecord> spans_;
  std::vector<std::int32_t> open_;  // stack of open handles
  std::vector<CommRecord> comms_;
};

// The recorder installed on the calling thread, or nullptr when tracing is
// off for this thread (the common case — every span site checks this first).
TraceRecorder* CurrentRecorder();

// RAII installer: makes `recorder` the calling thread's CurrentRecorder for
// the scope's lifetime, restoring the previous one (normally nullptr) on
// exit. Passing nullptr is allowed and leaves tracing off — callers can
// install unconditionally and decide via the pointer.
class ThreadRecorderScope {
 public:
  explicit ThreadRecorderScope(TraceRecorder* recorder);
  ~ThreadRecorderScope();

  ThreadRecorderScope(const ThreadRecorderScope&) = delete;
  ThreadRecorderScope& operator=(const ThreadRecorderScope&) = delete;

 private:
  TraceRecorder* previous_;
};

// RAII span over CurrentRecorder(). When no recorder is installed the
// constructor is a TLS load + branch and the destructor a branch — nothing
// else. Prefer the macros below, which compile out entirely when disabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, std::int32_t index = -1)
      : recorder_(CurrentRecorder()) {
    if (recorder_ != nullptr) handle_ = recorder_->OpenSpan(name, index);
  }
  ~ScopedSpan() {
    if (recorder_ != nullptr) recorder_->CloseSpan(handle_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  std::int32_t handle_ = -1;
};

// Manually-driven span for phase sequences that do not nest as C++ scopes:
// Procedure 1's per-dimension steps (partition → schedule → compute → merge)
// run in one block but should appear as *sibling* spans. Switch() closes the
// current span (if any) and opens the next; the destructor closes whatever
// is open. Mirrors the shape of Comm::SetPhase call sites.
class PhaseSpan {
 public:
  PhaseSpan() = default;
  ~PhaseSpan() { Close(); }

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  void Switch(const char* name, std::int32_t index = -1) {
    Close();
    recorder_ = CurrentRecorder();
    if (recorder_ != nullptr) handle_ = recorder_->OpenSpan(name, index);
  }
  void Close() {
    if (recorder_ != nullptr) {
      recorder_->CloseSpan(handle_);
      recorder_ = nullptr;
    }
  }

 private:
  TraceRecorder* recorder_ = nullptr;
  std::int32_t handle_ = -1;
};

// Thread-safe collector of finished per-rank traces. Rank threads (or serve
// workers) each Absorb their RankTrace exactly once; the driver thread
// reads Snapshot() after joining them. Snapshot orders by rank id so that
// export output is deterministic regardless of absorb order.
class TraceSink {
 public:
  void Absorb(RankTrace trace) SNCUBE_EXCLUDES(mu_);
  std::vector<RankTrace> Snapshot() const SNCUBE_EXCLUDES(mu_);
  void Clear() SNCUBE_EXCLUDES(mu_);
  bool Empty() const SNCUBE_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::vector<RankTrace> ranks_ SNCUBE_GUARDED_BY(mu_);
};

}  // namespace sncube::obs

#define SNCUBE_TRACE_CONCAT_INNER(a, b) a##b
#define SNCUBE_TRACE_CONCAT(a, b) SNCUBE_TRACE_CONCAT_INNER(a, b)

#if SNCUBE_TRACE_ENABLED
// Span covering the rest of the enclosing scope. `name` must be a string
// literal; use the _IDX form to attach a dynamic integer label.
#define SNCUBE_TRACE_SPAN(name)                                        \
  ::sncube::obs::ScopedSpan SNCUBE_TRACE_CONCAT(sncube_trace_span_,    \
                                                __LINE__)(name)
#define SNCUBE_TRACE_SPAN_IDX(name, idx)                               \
  ::sncube::obs::ScopedSpan SNCUBE_TRACE_CONCAT(sncube_trace_span_,    \
                                                __LINE__)(             \
      name, static_cast<std::int32_t>(idx))
#else
#define SNCUBE_TRACE_SPAN(name) ((void)0)
#define SNCUBE_TRACE_SPAN_IDX(name, idx) ((void)0)
#endif
