#include "obs/metrics_registry.h"

#include <bit>
#include <cmath>

#include "obs/jsonf.h"

namespace sncube::obs {
namespace {

// Bucket i covers [2^(i-1), 2^i); bucket 0 is exactly 0 — the same scheme
// as serve/latency_histogram.cc so absorbed buckets line up one-to-one.
double BucketLower(int i) { return i == 0 ? 0.0 : std::ldexp(1.0, i - 1); }
double BucketUpper(int i) { return i == 0 ? 1.0 : std::ldexp(1.0, i); }

}  // namespace

void Histogram::Record(std::uint64_t value) {
  const int bucket = value == 0 ? 0 : static_cast<int>(std::bit_width(value));
  buckets_[static_cast<std::size_t>(bucket < kBuckets ? bucket : kBuckets - 1)]
      .fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  MergeMax(value);
}

void Histogram::AddBucketCount(int bucket, std::uint64_t n) {
  if (bucket < 0) bucket = 0;
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  buckets_[static_cast<std::size_t>(bucket)].fetch_add(
      n, std::memory_order_relaxed);
}

void Histogram::MergeMax(std::uint64_t m) {
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < m &&
         !max_.compare_exchange_weak(prev, m, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Read() const {
  std::array<std::uint64_t, kBuckets> counts;
  HistogramSnapshot snap;
  for (int i = 0; i < kBuckets; ++i) {
    counts[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    snap.count += counts[static_cast<std::size_t>(i)];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  if (snap.count == 0) return snap;

  const auto quantile = [&](double q) {
    const double target = q * static_cast<double>(snap.count);
    std::uint64_t cum = 0;
    for (int i = 0; i < kBuckets; ++i) {
      const std::uint64_t c = counts[static_cast<std::size_t>(i)];
      if (c == 0) continue;
      if (static_cast<double>(cum + c) >= target) {
        const double within =
            (target - static_cast<double>(cum)) / static_cast<double>(c);
        return BucketLower(i) + within * (BucketUpper(i) - BucketLower(i));
      }
      cum += c;
    }
    return static_cast<double>(snap.max);
  };
  snap.p50 = quantile(0.50);
  snap.p95 = quantile(0.95);
  snap.p99 = quantile(0.99);
  return snap;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::ToJson() const {
  using internal::AppendQuoted;
  using internal::AppendSeconds;
  using internal::AppendU64;

  std::string out = "{\"counters\":{";
  {
    MutexLock lock(mu_);
    bool first = true;
    for (const auto& [name, c] : counters_) {
      if (!first) out += ',';
      first = false;
      AppendQuoted(out, name);
      out += ':';
      AppendU64(out, c->value());
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, g] : gauges_) {
      if (!first) out += ',';
      first = false;
      AppendQuoted(out, name);
      out += ':';
      AppendSeconds(out, g->value());
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : histograms_) {
      if (!first) out += ',';
      first = false;
      AppendQuoted(out, name);
      const HistogramSnapshot s = h->Read();
      out += ":{\"count\":";
      AppendU64(out, s.count);
      out += ",\"sum\":";
      AppendU64(out, s.sum);
      out += ",\"max\":";
      AppendU64(out, s.max);
      out += ",\"p50\":";
      AppendSeconds(out, s.p50);
      out += ",\"p95\":";
      AppendSeconds(out, s.p95);
      out += ",\"p99\":";
      AppendSeconds(out, s.p99);
      out += '}';
    }
  }
  out += "}}";
  return out;
}

}  // namespace sncube::obs
