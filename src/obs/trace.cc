#include "obs/trace.h"

#include <algorithm>
#include <utility>

#include "common/status.h"

namespace sncube::obs {
namespace {

// Thread-local, not global: recorders are installed per rank/worker thread
// and must never be visible to sibling threads (thread-confined contract).
thread_local TraceRecorder* g_current_recorder = nullptr;

}  // namespace

TraceRecorder* CurrentRecorder() { return g_current_recorder; }

ThreadRecorderScope::ThreadRecorderScope(TraceRecorder* recorder)
    : previous_(g_current_recorder) {
  g_current_recorder = recorder;
}

ThreadRecorderScope::~ThreadRecorderScope() {
  g_current_recorder = previous_;
}

TraceRecorder::TraceRecorder(int rank, const SimClockSource* clock)
    : rank_(rank), clock_(clock) {
  SNCUBE_CHECK_MSG(clock != nullptr, "TraceRecorder needs a clock source");
  // One up-front reservation keeps the common case (a build run records a
  // few hundred spans) allocation-free after construction.
  spans_.reserve(256);
  open_.reserve(16);
  comms_.reserve(256);
}

std::int32_t TraceRecorder::OpenSpan(const char* name, std::int32_t index) {
  const std::int32_t handle = static_cast<std::int32_t>(spans_.size());
  SpanRecord rec;
  rec.name = name;
  rec.index = index;
  rec.parent = open_.empty() ? -1 : open_.back();
  rec.depth = static_cast<std::int32_t>(open_.size());
  // sncheck:allow(clock-domain): clock_ is the injected SimClockSource; only serve-side recorders bind it to WallClockSource (PR 4 contract), build-side recorders stay on the BSP clock
  rec.begin_s = clock_->TraceNowSeconds();
  rec.end_s = rec.begin_s;  // until closed
  rec.begin_superstep = clock_->TraceSuperstep();
  rec.end_superstep = rec.begin_superstep;
  spans_.push_back(rec);
  open_.push_back(handle);
  return handle;
}

void TraceRecorder::CloseSpan(std::int32_t handle) {
  // Spans close LIFO; ScopedSpan/PhaseSpan guarantee it, and exception
  // unwinds preserve it (destructors run innermost-first).
  SNCUBE_CHECK_MSG(!open_.empty() && open_.back() == handle,
                   "trace spans must close LIFO");
  open_.pop_back();
  SpanRecord& rec = spans_[static_cast<std::size_t>(handle)];
  // sncheck:allow(clock-domain): same injected-clock contract as OpenSpan — wall time only ever flows in via the serve tier's WallClockSource
  rec.end_s = clock_->TraceNowSeconds();
  rec.end_superstep = clock_->TraceSuperstep();
}

void TraceRecorder::RecordComm(std::uint64_t bytes_out,
                               std::uint64_t bytes_in) {
  CommRecord rec;
  // The superstep counter was already bumped for the in-flight collective,
  // so the entry being recorded is the previous index — the same numbering
  // the fault injector and abort reports use.
  const std::uint64_t step = clock_->TraceSuperstep();
  rec.superstep = step == 0 ? 0 : step - 1;
  // sncheck:allow(clock-domain): injected clock; sim-side comm records are stamped by the BSP clock, serve-side by design use wall time
  rec.time_s = clock_->TraceNowSeconds();
  rec.bytes_out = bytes_out;
  rec.bytes_in = bytes_in;
  comms_.push_back(rec);
}

RankTrace TraceRecorder::Finish() {
  while (!open_.empty()) CloseSpan(open_.back());
  RankTrace trace;
  trace.rank = rank_;
  // sncheck:allow(clock-domain): injected clock, same contract as the span stamps above
  trace.end_time_s = clock_->TraceNowSeconds();
  trace.spans = std::move(spans_);
  trace.comms = std::move(comms_);
  spans_.clear();
  comms_.clear();
  return trace;
}

void TraceSink::Absorb(RankTrace trace) {
  MutexLock lock(mu_);
  ranks_.push_back(std::move(trace));
}

std::vector<RankTrace> TraceSink::Snapshot() const {
  std::vector<RankTrace> out;
  {
    MutexLock lock(mu_);
    out = ranks_;
  }
  // Deterministic export order even when absorb order raced (serve workers
  // finish in arbitrary order; cluster ranks absorb sequentially anyway).
  std::stable_sort(out.begin(), out.end(),
                   [](const RankTrace& a, const RankTrace& b) {
                     return a.rank < b.rank;
                   });
  return out;
}

void TraceSink::Clear() {
  MutexLock lock(mu_);
  ranks_.clear();
}

bool TraceSink::Empty() const {
  MutexLock lock(mu_);
  return ranks_.empty();
}

}  // namespace sncube::obs
