// Unified metrics: one typed counter/gauge/histogram sink for every layer.
//
// Before PR 4 each layer kept its own incompatible counters — net/metrics.h
// per-phase structs, DiskModel block counts, serve's LatencyHistogram and
// StatsSnapshot, ad-hoc timers inside bench binaries. MetricsRegistry is the
// single sink they all report into (directly, or via the absorb adapters in
// obs/export.h), under one naming scheme (DESIGN.md §10):
//
//   <layer>.<noun>[_<unit>]     — dotted lowercase, unit suffix when not a
//                                 plain count: net.bytes_sent, run.sim_time_s,
//                                 disk.blocks_written, serve.cache.hits,
//                                 serve.latency_us.
//
// Instruments are cheap and thread-safe (single atomics; the registry map is
// mutex-guarded only on name lookup), and references returned by Get* stay
// valid for the registry's lifetime — resolve once, bump forever. Export is
// deterministic: ToJson() orders by name and prints doubles with fixed
// precision, so registry output can be golden-tested.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace sncube::obs {

// Monotone event count.
class Counter {
 public:
  void Add(std::uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Last-written value (also supports accumulation for absorbed sums).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double prev = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(prev, prev + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;

  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

// Lock-free power-of-two-bucket histogram: the same scheme (and the same
// all-relaxed memory-order rationale) as serve/latency_histogram.h — bucket
// i holds [2^(i-1), 2^i), bucket 0 holds {0}, quantiles interpolate inside
// the winning bucket with ≤2× worst-case error. Unit is whatever the metric
// name says (µs for latencies, bytes for sizes).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(std::uint64_t value);

  // Bulk-merge entry points for absorbing an existing histogram's state
  // (serve's LatencyHistogram exports its buckets through these).
  void AddBucketCount(int bucket, std::uint64_t n);
  void AddSum(std::uint64_t s) { sum_.fetch_add(s, std::memory_order_relaxed); }
  void MergeMax(std::uint64_t m);

  HistogramSnapshot Read() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

// Named instrument registry. Get* creates on first use; the returned
// reference is stable for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name) SNCUBE_EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name) SNCUBE_EXCLUDES(mu_);
  Histogram& GetHistogram(const std::string& name) SNCUBE_EXCLUDES(mu_);

  // Deterministic JSON object: {"counters":{...},"gauges":{...},
  // "histograms":{...}} with names sorted and fixed-precision doubles.
  std::string ToJson() const SNCUBE_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  // unique_ptr keeps instrument addresses stable across map rebalancing.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      SNCUBE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      SNCUBE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      SNCUBE_GUARDED_BY(mu_);
};

}  // namespace sncube::obs
