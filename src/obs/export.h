// Trace & metrics exporters (DESIGN.md §10): Chrome trace_event JSON for
// timelines, a per-run JSON summary for scripts/benches, and the absorb
// adapters that feed legacy per-layer stats into a MetricsRegistry.
//
// Both exporters are deterministic down to the byte for a given input: keys
// are sorted (std::map / rank order), doubles use fixed printf formats
// (obs/jsonf.h), one event per line. The golden-file test in
// tests/obs_test.cc depends on this.
#pragma once

#include <string>
#include <vector>

#include "net/metrics.h"  // header-only RankStats/PhaseStats (no link dep)
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace sncube::obs {

// Chrome trace_event JSON (load in chrome://tracing or https://ui.perfetto.dev).
// One process, one thread per rank; every span is a complete ("X") event
// with ts/dur in simulated microseconds and the superstep range in args;
// per-rank comm volume is emitted as counter ("C") series.
std::string ChromeTraceJson(const std::vector<RankTrace>& ranks);

// Fraction of total traced time covered by top-level spans, in [0, 1]:
// sum over ranks of depth-0 span durations / sum over ranks of end_time_s.
// The acceptance bar for a build trace is ≥ 0.95 (tests/obs_test.cc).
double SpanCoverage(const std::vector<RankTrace>& ranks);

// Per-run JSON summary:
//   {
//     "sim_time_s": ...,
//     "ranks": p,
//     "phases": { "<phase>": {"per_rank_s":[...], "cpu_s":..., "disk_s":...,
//                             "net_s":..., "bytes_sent":..., ...}, ... },
//     "supersteps": [{"superstep":k,"time_s":...,"bytes":...}, ...],  // trace
//     "metrics": {...}                                           // registry
//   }
// The phase × rank matrix comes from `stats` (per_rank_s[r] = rank r's
// cpu+disk+net seconds in the phase). `trace` and `metrics` may be null;
// their sections are omitted.
std::string RunSummaryJson(const std::vector<RankStats>& stats,
                           double sim_time_s,
                           const std::vector<RankTrace>* trace,
                           const MetricsRegistry* metrics);

// Feeds one completed Run's per-rank stats into the registry under the
// DESIGN.md §10 names (net.bytes_sent, disk.blocks, time.cpu_s,
// run.sim_time_s, ...). Counters accumulate across absorbed runs.
void AbsorbRunStats(MetricsRegistry& registry,
                    const std::vector<RankStats>& stats, double sim_time_s);

// Writes `content` to `path` atomically enough for our purposes (truncate +
// write + close), throwing SncubeIoError with the path on any failure.
void WriteTextFile(const std::string& path, const std::string& content);

}  // namespace sncube::obs
