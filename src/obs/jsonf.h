// Tiny deterministic JSON formatting helpers shared by the obs exporters.
//
// Determinism is a contract here, not a nicety: trace and summary output is
// golden-tested byte-for-byte (tests/obs_test.cc), so every double goes
// through one fixed printf format and nothing ever depends on locale or
// iostream state. Not a general JSON library — just enough for the shapes
// the exporters emit; keys and span names are trusted identifiers (static
// literals / metric names), only Escape() handles arbitrary text.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace sncube::obs::internal {

// Fixed 6-decimal seconds (µs resolution on the sim clock).
inline void AppendSeconds(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out += buf;
}

// Fixed 3-decimal microseconds (ns resolution — Chrome trace `ts`/`dur`).
inline void AppendMicros(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

inline void AppendU64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

inline void AppendInt(std::string& out, std::int64_t v) {
  out += std::to_string(v);
}

// Minimal string escaping for quoted JSON values (error messages, labels).
inline void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

inline void AppendQuoted(std::string& out, const std::string& s) {
  out += '"';
  AppendEscaped(out, s);
  out += '"';
}

}  // namespace sncube::obs::internal
