#include "obs/export.h"

#include <cstdint>
#include <fstream>
#include <map>
#include <utility>

#include "common/status.h"
#include "obs/jsonf.h"

namespace sncube::obs {
namespace {

using internal::AppendInt;
using internal::AppendMicros;
using internal::AppendQuoted;
using internal::AppendSeconds;
using internal::AppendU64;

// "partition" or "partition/3" — the only place index becomes text.
std::string SpanLabel(const SpanRecord& s) {
  std::string label = s.name == nullptr ? "?" : s.name;
  if (s.index >= 0) {
    label += '/';
    label += std::to_string(s.index);
  }
  return label;
}

}  // namespace

std::string ChromeTraceJson(const std::vector<RankTrace>& ranks) {
  std::string out;
  out.reserve(4096);
  out += "{\"traceEvents\":[\n";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":\"sncube\"}}";
  for (const RankTrace& rt : ranks) {
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    AppendInt(out, rt.rank);
    out += ",\"args\":{\"name\":\"rank ";
    AppendInt(out, rt.rank);
    out += "\"}}";
  }
  for (const RankTrace& rt : ranks) {
    for (const SpanRecord& s : rt.spans) {
      out += ",\n{\"name\":";
      AppendQuoted(out, SpanLabel(s));
      out += ",\"ph\":\"X\",\"pid\":0,\"tid\":";
      AppendInt(out, rt.rank);
      out += ",\"ts\":";
      AppendMicros(out, s.begin_s * 1e6);
      out += ",\"dur\":";
      AppendMicros(out, (s.end_s - s.begin_s) * 1e6);
      out += ",\"args\":{\"superstep_begin\":";
      AppendU64(out, s.begin_superstep);
      out += ",\"superstep_end\":";
      AppendU64(out, s.end_superstep);
      out += "}}";
    }
    // Per-rank comm volume as a counter series; separate series names per
    // rank because Chrome keys counters by (pid, name).
    for (const CommRecord& c : rt.comms) {
      out += ",\n{\"name\":\"comm bytes rank ";
      AppendInt(out, rt.rank);
      out += "\",\"ph\":\"C\",\"pid\":0,\"tid\":";
      AppendInt(out, rt.rank);
      out += ",\"ts\":";
      AppendMicros(out, c.time_s * 1e6);
      out += ",\"args\":{\"out\":";
      AppendU64(out, c.bytes_out);
      out += ",\"in\":";
      AppendU64(out, c.bytes_in);
      out += "}}";
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\","
         "\"otherData\":{\"clock\":\"simulated\",\"time_unit\":\"us\"}}\n";
  return out;
}

double SpanCoverage(const std::vector<RankTrace>& ranks) {
  double covered = 0;
  double total = 0;
  for (const RankTrace& rt : ranks) {
    total += rt.end_time_s;
    for (const SpanRecord& s : rt.spans) {
      if (s.depth == 0) covered += s.end_s - s.begin_s;
    }
  }
  if (total <= 0) return 0;
  const double frac = covered / total;
  return frac > 1.0 ? 1.0 : frac;
}

std::string RunSummaryJson(const std::vector<RankStats>& stats,
                           double sim_time_s,
                           const std::vector<RankTrace>* trace,
                           const MetricsRegistry* metrics) {
  const std::size_t p = stats.size();

  // Union of phase labels over ranks → per-rank second and byte matrices.
  struct PhaseRow {
    std::vector<double> per_rank_s;
    PhaseStats total;
  };
  std::map<std::string, PhaseRow> rows;
  for (std::size_t r = 0; r < p; ++r) {
    for (const auto& [name, ps] : stats[r].phases) {
      PhaseRow& row = rows[name];
      if (row.per_rank_s.empty()) row.per_rank_s.resize(p, 0.0);
      row.per_rank_s[r] = ps.cpu_s + ps.disk_s + ps.net_s;
      row.total += ps;
    }
  }

  std::string out = "{\"sim_time_s\":";
  AppendSeconds(out, sim_time_s);
  out += ",\"ranks\":";
  AppendU64(out, p);
  out += ",\"phases\":{";
  bool first = true;
  for (const auto& [name, row] : rows) {
    if (!first) out += ',';
    first = false;
    AppendQuoted(out, name);
    out += ":{\"per_rank_s\":[";
    for (std::size_t r = 0; r < p; ++r) {
      if (r != 0) out += ',';
      AppendSeconds(out, row.per_rank_s[r]);
    }
    out += "],\"cpu_s\":";
    AppendSeconds(out, row.total.cpu_s);
    out += ",\"disk_s\":";
    AppendSeconds(out, row.total.disk_s);
    out += ",\"net_s\":";
    AppendSeconds(out, row.total.net_s);
    out += ",\"par_work_s\":";
    AppendSeconds(out, row.total.par_work_s);
    out += ",\"par_span_s\":";
    AppendSeconds(out, row.total.par_span_s);
    out += ",\"bytes_sent\":";
    AppendU64(out, row.total.bytes_sent);
    out += ",\"bytes_received\":";
    AppendU64(out, row.total.bytes_received);
    out += ",\"messages\":";
    AppendU64(out, row.total.messages);
    out += ",\"blocks\":";
    AppendU64(out, row.total.blocks);
    out += '}';
  }
  out += '}';

  if (trace != nullptr) {
    // Comm volume per superstep, summed over ranks; time is the latest
    // local clock any rank saw after that collective.
    struct Step {
      double time_s = 0;
      std::uint64_t bytes = 0;
    };
    std::map<std::uint64_t, Step> steps;
    for (const RankTrace& rt : *trace) {
      for (const CommRecord& c : rt.comms) {
        Step& st = steps[c.superstep];
        if (c.time_s > st.time_s) st.time_s = c.time_s;
        st.bytes += c.bytes_out;
      }
    }
    out += ",\"supersteps\":[";
    first = true;
    for (const auto& [k, st] : steps) {
      if (!first) out += ',';
      first = false;
      out += "{\"superstep\":";
      AppendU64(out, k);
      out += ",\"time_s\":";
      AppendSeconds(out, st.time_s);
      out += ",\"bytes\":";
      AppendU64(out, st.bytes);
      out += '}';
    }
    out += ']';
  }

  if (metrics != nullptr) {
    out += ",\"metrics\":";
    out += metrics->ToJson();
  }
  out += "}\n";
  return out;
}

void AbsorbRunStats(MetricsRegistry& registry,
                    const std::vector<RankStats>& stats, double sim_time_s) {
  PhaseStats total;
  std::uint64_t supersteps = 0;
  for (const RankStats& rs : stats) {
    total += rs.Total();
    if (rs.supersteps > supersteps) supersteps = rs.supersteps;
  }
  registry.GetCounter("net.bytes_sent").Add(total.bytes_sent);
  registry.GetCounter("net.bytes_received").Add(total.bytes_received);
  registry.GetCounter("net.messages").Add(total.messages);
  registry.GetCounter("net.supersteps").Add(supersteps);
  registry.GetCounter("disk.blocks").Add(total.blocks);
  registry.GetGauge("time.cpu_s").Add(total.cpu_s);
  registry.GetGauge("time.disk_s").Add(total.disk_s);
  registry.GetGauge("time.net_s").Add(total.net_s);
  registry.GetGauge("time.par_work_s").Add(total.par_work_s);
  registry.GetGauge("time.par_span_s").Add(total.par_span_s);
  registry.GetGauge("run.sim_time_s").Set(sim_time_s);
  registry.GetGauge("run.ranks").Set(static_cast<double>(stats.size()));
}

void WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw SncubeIoError("cannot open for write: " + path);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  out.close();
  if (!out) throw SncubeIoError("short write: " + path);
}

}  // namespace sncube::obs
