#include "io/checked_file.h"

#include <cstdio>
#include <fstream>
#include <vector>

#include "common/crc32c.h"
#include "common/status.h"

namespace sncube {
namespace {

// Applies an injected write fault to a staged buffer; returns the number of
// bytes that actually land (== buf.size() except for a torn write).
std::size_t ApplyWriteFault(const WriteFault& fault,
                            std::vector<std::byte>& buf) {
  switch (fault.kind) {
    case WriteFault::Kind::kBitFlip:
      buf[static_cast<std::size_t>(fault.offset / 8)] ^=
          static_cast<std::byte>(1u << (fault.offset % 8));
      return buf.size();
    case WriteFault::Kind::kTornWrite:
      return static_cast<std::size_t>(fault.offset);
    case WriteFault::Kind::kNone:
      break;
  }
  return buf.size();
}

}  // namespace

void WriteSealedFile(const std::filesystem::path& path,
                     std::span<const std::byte> payload, DiskModel& disk) {
  std::vector<std::byte> sealed(payload.begin(), payload.end());
  SealFrame(sealed);
  // Charge first: a transient failure means the op never happened.
  disk.ChargeWrite(sealed.size());
  const std::size_t landing = ApplyWriteFault(disk.TakeWriteFault(sealed.size()), sealed);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    throw SncubeIoError("checked io: cannot open " + path.string() +
                        " for writing");
  }
  out.write(reinterpret_cast<const char*>(sealed.data()),
            static_cast<std::streamsize>(landing));
  out.flush();
  if (!out.good()) {
    throw SncubeIoError("checked io: short write to " + path.string());
  }
}

ByteBuffer ReadSealedFile(const std::filesystem::path& path, DiskModel& disk) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) {
    throw SncubeIoError("checked io: missing file " + path.string());
  }
  disk.ChargeRead(size);
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw SncubeIoError("checked io: cannot open " + path.string());
  }
  ByteBuffer bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  if (in.gcount() != static_cast<std::streamsize>(size)) {
    throw SncubeIoError("checked io: short read from " + path.string());
  }
  VerifyAndStripFrame(bytes);
  return bytes;
}

std::string SealLine(const std::string& text) {
  SNCUBE_CHECK_MSG(text.find('\n') == std::string::npos,
                   "sealed lines must be single lines");
  const std::uint32_t crc =
      Crc32c(std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(text.data()), text.size()));
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), " crc %08x", crc);
  return text + suffix;
}

std::optional<std::string> VerifySealedLine(const std::string& line) {
  // " crc " + 8 hex digits.
  constexpr std::size_t kSuffixLen = 5 + 8;
  if (line.size() < kSuffixLen) return std::nullopt;
  const std::size_t split = line.size() - kSuffixLen;
  if (line.compare(split, 5, " crc ") != 0) return std::nullopt;
  std::uint32_t want = 0;
  for (std::size_t i = split + 5; i < line.size(); ++i) {
    const char c = line[i];
    std::uint32_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint32_t>(c - 'a') + 10;
    } else {
      return std::nullopt;
    }
    want = (want << 4) | digit;
  }
  const std::string text = line.substr(0, split);
  const std::uint32_t got =
      Crc32c(std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(text.data()), text.size()));
  if (got != want) return std::nullopt;
  return text;
}

void AppendSealedLine(const std::filesystem::path& path,
                      const std::string& text, DiskModel& disk) {
  const std::string line = SealLine(text) + '\n';
  disk.ChargeWrite(line.size());
  std::vector<std::byte> staged(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    staged[i] = static_cast<std::byte>(line[i]);
  }
  const std::size_t landing = ApplyWriteFault(disk.TakeWriteFault(staged.size()), staged);
  std::ofstream out(path, std::ios::app | std::ios::binary);
  if (!out.good()) {
    throw SncubeIoError("checked io: cannot append to " + path.string());
  }
  out.write(reinterpret_cast<const char*>(staged.data()),
            static_cast<std::streamsize>(landing));
  out.flush();
  if (!out.good()) {
    throw SncubeIoError("checked io: short append to " + path.string());
  }
}

}  // namespace sncube
