// The checksummed file layer: the one sanctioned path through which core
// code persists durable artifacts (checkpoint view shards, manifest lines)
// to the real filesystem.
//
// Every write is covered by a CRC32C — whole files get the 16-byte frame
// trailer of common/crc32c.h, manifest lines get a textual " crc <8-hex>"
// suffix — and every write passes through the owning rank's DiskModel, which
// both charges the simulated clock and injects the plan's silent-corruption
// faults (bit flips, torn writes) *after* the checksum is computed. That
// ordering is the point: corruption strikes below the software, and the
// checksum is what makes it detectable on the read path instead of
// aggregating into a wrong cube.
//
// A lint rule (tools/lint/sncheck.py, raw-file-write) bans direct
// std::ofstream / fopen writes in src/core|io|net outside this layer, so
// future code cannot quietly bypass integrity framing.
#pragma once

#include <filesystem>
#include <optional>
#include <span>
#include <string>

#include "io/disk.h"
#include "relation/serialize.h"

namespace sncube {

// Writes `payload` plus its integrity trailer to `path` (truncating any
// previous contents). Charges the disk for the sealed size up front — a
// transient injected failure (SncubeTransientIoError) means nothing was
// written and the caller may retry the whole call — then applies any
// injected write fault to the sealed bytes before they land. Filesystem
// failures throw SncubeIoError.
void WriteSealedFile(const std::filesystem::path& path,
                     std::span<const std::byte> payload, DiskModel& disk);

// Reads `path`, charges the disk, verifies and strips the trailer, and
// returns the payload. Missing or unreadable files throw SncubeIoError;
// damaged contents (bit flip, truncation, bad trailer) throw
// SncubeCorruptionError.
ByteBuffer ReadSealedFile(const std::filesystem::path& path, DiskModel& disk);

// Textual line integrity: returns `text` with a " crc <8-hex>" suffix
// covering it. `text` must not contain '\n'.
std::string SealLine(const std::string& text);

// Verifies a sealed line and returns the payload text, or std::nullopt when
// the suffix is missing, malformed, or disagrees with the text — a torn or
// damaged line is indistinguishable from an unfinished one by design.
std::optional<std::string> VerifySealedLine(const std::string& line);

// Appends SealLine(text) + '\n' to `path`, with the same charge-first /
// corrupt-after contract as WriteSealedFile. A torn append leaves a partial
// line that VerifySealedLine later rejects.
void AppendSealedLine(const std::filesystem::path& path,
                      const std::string& text, DiskModel& disk);

}  // namespace sncube
