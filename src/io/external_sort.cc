#include "io/external_sort.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <queue>
#include <vector>

#include "common/status.h"
#include "exec/parallel_algo.h"
#include "exec/task_pool.h"
#include "obs/trace.h"
#include "relation/sort.h"

namespace sncube {
namespace {

void SerializeRow(const Key* keys, int width, Measure m, ByteBuffer& out) {
  const std::size_t kb = sizeof(Key) * static_cast<std::size_t>(width);
  const std::size_t off = out.size();
  out.resize(off + kb + sizeof(Measure));
  std::memcpy(out.data() + off, keys, kb);
  std::memcpy(out.data() + off + kb, &m, sizeof(m));
}

}  // namespace

Relation ExternalSort(const Relation& input, std::span<const int> cols,
                      DiskModel& disk, RunStore* store,
                      ExternalSortStats* stats) {
  SNCUBE_TRACE_SPAN("external-sort");
  const DiskParams& dp = disk.params();
  const std::size_t bytes = input.ByteSize();

  if (bytes <= dp.memory_bytes) {
    // Fits in memory: one read of the input, one write of the output. The
    // sort dispatches to the rank's exec pool when one is installed.
    disk.ChargeRead(bytes);
    Relation out = exec::SortRelationAuto(input, cols);
    disk.ChargeWrite(out.ByteSize());
    if (stats != nullptr) {
      *stats = {.runs_formed = 1, .merge_passes = 0, .in_memory = true};
    }
    return out;
  }

  MemoryRunStore fallback;
  RunStore& rs = (store != nullptr) ? *store : fallback;

  const std::size_t row_bytes = input.RowBytes();
  const std::size_t rows_per_run =
      std::max<std::size_t>(1, dp.memory_bytes / row_bytes);

  // Phase 1: run formation. Each memory-load of input is read, sorted, and
  // written back as one sorted, sealed run. Chunk boundaries depend only on
  // rows_per_run (the memory budget), never on the thread count, so the
  // runs — and everything downstream — are byte-identical in both modes.
  std::vector<int> runs;
  std::vector<RunSeal> seals;
  exec::TaskPool* pool = exec::CurrentPool();
  if (pool != nullptr && pool->threads() > 1 &&
      input.size() > rows_per_run) {
    // Pooled run formation: charge all chunk reads up front in chunk order,
    // sort the chunks concurrently on the pool, then seal the runs serially
    // — every DiskModel charge (and with it every fault-injection site)
    // stays on the rank thread in a deterministic order.
    std::vector<std::size_t> bounds;
    for (std::size_t begin = 0; begin < input.size(); begin += rows_per_run) {
      bounds.push_back(begin);
    }
    bounds.push_back(input.size());
    const std::size_t k = bounds.size() - 1;
    std::vector<Relation> chunks;
    chunks.reserve(k);
    for (std::size_t c = 0; c < k; ++c) {
      Relation chunk(input.width());
      chunk.Reserve(bounds[c + 1] - bounds[c]);
      for (std::size_t r = bounds[c]; r < bounds[c + 1]; ++r) {
        chunk.AppendRow(input, r);
      }
      disk.ChargeRead(chunk.ByteSize());
      chunks.push_back(std::move(chunk));
    }
    std::vector<Relation> sorted_chunks(k);
    {
      exec::TaskGroup group(pool);
      for (std::size_t c = 0; c < k; ++c) {
        group.Run([&chunks, &sorted_chunks, cols, c] {
          sorted_chunks[c] = SortRelation(chunks[c], cols);
        });
      }
      group.Wait();
    }
    for (std::size_t c = 0; c < k; ++c) {
      const int run = rs.CreateRun();
      RunWriter writer(rs, disk, run, dp.block_bytes);
      ByteBuffer serialized = SerializeRelation(sorted_chunks[c]);
      writer.Write(serialized);
      runs.push_back(run);
      seals.push_back(writer.Finish());
    }
  } else {
    for (std::size_t begin = 0; begin < input.size(); begin += rows_per_run) {
      const std::size_t end = std::min(input.size(), begin + rows_per_run);
      Relation chunk(input.width());
      chunk.Reserve(end - begin);
      for (std::size_t r = begin; r < end; ++r) chunk.AppendRow(input, r);
      disk.ChargeRead(chunk.ByteSize());
      Relation sorted = SortRelation(chunk, cols);

      const int run = rs.CreateRun();
      RunWriter writer(rs, disk, run, dp.block_bytes);
      ByteBuffer serialized = SerializeRelation(sorted);
      writer.Write(serialized);
      runs.push_back(run);
      seals.push_back(writer.Finish());
    }
  }
  const std::size_t runs_formed = runs.size();

  // Phase 2: repeated fan-in-way merge until one run remains. The fan-in is
  // m/B - 1 input buffers (one block each) plus one output buffer.
  const std::size_t fan_in = std::max<std::size_t>(
      2, dp.memory_bytes / dp.block_bytes > 1
             ? dp.memory_bytes / dp.block_bytes - 1
             : 2);
  int merge_passes = 0;
  while (runs.size() > 1) {
    ++merge_passes;
    std::vector<int> next;
    std::vector<RunSeal> next_seals;
    for (std::size_t g = 0; g < runs.size(); g += fan_in) {
      const std::size_t ge = std::min(runs.size(), g + fan_in);
      std::vector<std::unique_ptr<RunReader>> readers;
      readers.reserve(ge - g);
      for (std::size_t i = g; i < ge; ++i) {
        readers.push_back(std::make_unique<RunReader>(
            rs, disk, runs[i], input.width(), dp.block_bytes, seals[i]));
      }
      const int out_run = rs.CreateRun();
      RunWriter writer(rs, disk, out_run, dp.block_bytes);

      // Tournament by index into `readers`. Ties broken by reader index so
      // the merge is stable across equal keys.
      auto less = [&](std::size_t a, std::size_t b) {
        const Key* ka = readers[a]->keys();
        const Key* kb = readers[b]->keys();
        for (int c : cols) {
          if (ka[c] != kb[c]) return ka[c] < kb[c];
        }
        return a < b;
      };
      std::vector<std::size_t> heap;
      for (std::size_t i = 0; i < readers.size(); ++i) {
        if (!readers[i]->exhausted()) heap.push_back(i);
      }
      auto heap_cmp = [&](std::size_t a, std::size_t b) { return less(b, a); };
      std::make_heap(heap.begin(), heap.end(), heap_cmp);

      ByteBuffer row;
      while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), heap_cmp);
        const std::size_t idx = heap.back();
        heap.pop_back();
        row.clear();
        SerializeRow(readers[idx]->keys(), input.width(),
                     readers[idx]->measure(), row);
        writer.Write(row);
        readers[idx]->Advance();
        if (!readers[idx]->exhausted()) {
          heap.push_back(idx);
          std::push_heap(heap.begin(), heap.end(), heap_cmp);
        }
      }
      for (std::size_t i = g; i < ge; ++i) rs.Free(runs[i]);
      next.push_back(out_run);
      next_seals.push_back(writer.Finish());
    }
    runs.swap(next);
    seals.swap(next_seals);
  }

  // Materialize the final run (charged as the consumer's read).
  Relation out(input.width());
  out.Reserve(input.size());
  {
    RunReader reader(rs, disk, runs[0], input.width(), dp.block_bytes,
                     seals[0]);
    std::vector<Key> keys(static_cast<std::size_t>(input.width()));
    while (!reader.exhausted()) {
      std::memcpy(keys.data(), reader.keys(), keys.size() * sizeof(Key));
      out.Append(keys, reader.measure());
      reader.Advance();
    }
    rs.Free(runs[0]);
  }

  if (stats != nullptr) {
    *stats = {.runs_formed = runs_formed,
              .merge_passes = merge_passes,
              .in_memory = false};
  }
  return out;
}

}  // namespace sncube
