#include "io/disk.h"

#include "common/status.h"

namespace sncube {
namespace {

std::uint64_t Blocks(std::size_t bytes, std::size_t block_bytes) {
  return (bytes + block_bytes - 1) / block_bytes;
}

}  // namespace

void DiskModel::ChargeRead(std::size_t bytes) {
  if (fault_hook_ != nullptr && fault_hook_->NextOpFails(/*is_write=*/false)) {
    throw SncubeTransientIoError("injected transient disk read error");
  }
  blocks_read_ += Blocks(bytes, params_.block_bytes);
}

void DiskModel::ChargeWrite(std::size_t bytes) {
  if (fault_hook_ != nullptr && fault_hook_->NextOpFails(/*is_write=*/true)) {
    throw SncubeTransientIoError("injected transient disk write error");
  }
  blocks_written_ += Blocks(bytes, params_.block_bytes);
}

WriteFault DiskModel::TakeWriteFault(std::size_t bytes) {
  if (fault_hook_ == nullptr || bytes == 0) return {};
  return fault_hook_->NextWriteFault(bytes);
}

int DiskModel::MergePasses(std::size_t bytes) const {
  if (bytes <= params_.memory_bytes) return 0;
  const std::uint64_t runs =
      (bytes + params_.memory_bytes - 1) / params_.memory_bytes;
  const std::uint64_t fan_in = params_.memory_bytes / params_.block_bytes;
  SNCUBE_CHECK_MSG(fan_in >= 2, "memory must hold at least two blocks");
  int passes = 0;
  std::uint64_t remaining = runs;
  while (remaining > 1) {
    remaining = (remaining + fan_in - 1) / fan_in;
    ++passes;
  }
  return passes;
}

}  // namespace sncube
