#include "io/run_store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "common/status.h"

namespace sncube {

int MemoryRunStore::CreateRun() {
  runs_.emplace_back();
  return static_cast<int>(runs_.size()) - 1;
}

void MemoryRunStore::Append(int run, std::span<const std::byte> bytes) {
  auto& r = runs_.at(run);
  r.insert(r.end(), bytes.begin(), bytes.end());
}

std::size_t MemoryRunStore::Size(int run) const { return runs_.at(run).size(); }

std::size_t MemoryRunStore::Read(int run, std::size_t offset,
                                 std::span<std::byte> out) const {
  const auto& r = runs_.at(run);
  if (offset >= r.size()) return 0;
  const std::size_t n = std::min(out.size(), r.size() - offset);
  std::memcpy(out.data(), r.data() + offset, n);
  return n;
}

void MemoryRunStore::Free(int run) {
  runs_.at(run).clear();
  runs_.at(run).shrink_to_fit();
}

FileRunStore::FileRunStore(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) {
    dir_ = std::filesystem::temp_directory_path().string();
  }
}

FileRunStore::~FileRunStore() {
  for (std::FILE* f : files_) {
    if (f != nullptr) std::fclose(f);  // tmpfile() unlinks automatically
  }
}

int FileRunStore::CreateRun() {
  std::FILE* f = std::tmpfile();
  SNCUBE_CHECK_MSG(f != nullptr, "tmpfile() failed for spill run");
  files_.push_back(f);
  sizes_.push_back(0);
  return static_cast<int>(files_.size()) - 1;
}

void FileRunStore::Append(int run, std::span<const std::byte> bytes) {
  std::FILE* f = files_.at(run);
  SNCUBE_CHECK(f != nullptr);
  SNCUBE_CHECK(std::fseek(f, 0, SEEK_END) == 0);
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  SNCUBE_CHECK_MSG(written == bytes.size(), "short write to spill run");
  sizes_.at(run) += written;
}

std::size_t FileRunStore::Size(int run) const { return sizes_.at(run); }

std::size_t FileRunStore::Read(int run, std::size_t offset,
                               std::span<std::byte> out) const {
  std::FILE* f = files_.at(run);
  SNCUBE_CHECK(f != nullptr);
  if (offset >= sizes_.at(run)) return 0;
  SNCUBE_CHECK(std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0);
  return std::fread(out.data(), 1, out.size(), f);
}

void FileRunStore::Free(int run) {
  std::FILE*& f = files_.at(run);
  if (f != nullptr) {
    std::fclose(f);
    f = nullptr;
  }
  sizes_.at(run) = 0;
}

}  // namespace sncube
