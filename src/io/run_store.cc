#include "io/run_store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "common/status.h"

namespace sncube {

int MemoryRunStore::CreateRun() {
  runs_.emplace_back();
  return static_cast<int>(runs_.size()) - 1;
}

void MemoryRunStore::Append(int run, std::span<const std::byte> bytes) {
  auto& r = runs_.at(run);
  r.insert(r.end(), bytes.begin(), bytes.end());
}

std::size_t MemoryRunStore::Size(int run) const { return runs_.at(run).size(); }

std::size_t MemoryRunStore::Read(int run, std::size_t offset,
                                 std::span<std::byte> out) const {
  const auto& r = runs_.at(run);
  if (offset >= r.size()) return 0;
  const std::size_t n = std::min(out.size(), r.size() - offset);
  std::memcpy(out.data(), r.data() + offset, n);
  return n;
}

void MemoryRunStore::Free(int run) {
  runs_.at(run).clear();
  runs_.at(run).shrink_to_fit();
}

FileRunStore::FileRunStore(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) {
    dir_ = std::filesystem::temp_directory_path().string();
  }
}

FileRunStore::~FileRunStore() {
  for (std::FILE* f : files_) {
    if (f != nullptr) std::fclose(f);  // tmpfile() unlinks automatically
  }
}

int FileRunStore::CreateRun() {
  std::FILE* f = std::tmpfile();
  SNCUBE_CHECK_MSG(f != nullptr, "tmpfile() failed for spill run");
  files_.push_back(f);
  sizes_.push_back(0);
  return static_cast<int>(files_.size()) - 1;
}

void FileRunStore::Append(int run, std::span<const std::byte> bytes) {
  std::FILE* f = files_.at(run);
  SNCUBE_CHECK(f != nullptr);
  SNCUBE_CHECK(std::fseek(f, 0, SEEK_END) == 0);
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  SNCUBE_CHECK_MSG(written == bytes.size(), "short write to spill run");
  sizes_.at(run) += written;
}

std::size_t FileRunStore::Size(int run) const { return sizes_.at(run); }

std::size_t FileRunStore::Read(int run, std::size_t offset,
                               std::span<std::byte> out) const {
  std::FILE* f = files_.at(run);
  SNCUBE_CHECK(f != nullptr);
  if (offset >= sizes_.at(run)) return 0;
  SNCUBE_CHECK(std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0);
  return std::fread(out.data(), 1, out.size(), f);
}

void FileRunStore::Free(int run) {
  std::FILE*& f = files_.at(run);
  if (f != nullptr) {
    std::fclose(f);
    f = nullptr;
  }
  sizes_.at(run) = 0;
}

void RunWriter::Write(std::span<const std::byte> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  while (buffer_.size() >= block_bytes_) Flush(block_bytes_);
}

RunSeal RunWriter::Finish() {
  if (!buffer_.empty()) Flush(buffer_.size());
  return seal_;
}

void RunWriter::Flush(std::size_t n) {
  // Charge first: a transient disk error means the op never happened and
  // the buffered bytes stay intact for a caller that retries.
  disk_.ChargeWrite(n);
  // The seal covers the bytes we *intend* to persist; the injected fault is
  // applied after, which is what makes the corruption detectable.
  const std::span<const std::byte> block(buffer_.data(), n);
  seal_.crc = Crc32cExtend(seal_.crc, block);
  seal_.bytes += n;
  const WriteFault fault = disk_.TakeWriteFault(n);
  switch (fault.kind) {
    case WriteFault::Kind::kBitFlip:
      buffer_[static_cast<std::size_t>(fault.offset / 8)] ^=
          static_cast<std::byte>(1u << (fault.offset % 8));
      store_.Append(run_, block);
      break;
    case WriteFault::Kind::kTornWrite:
      store_.Append(run_,
                    block.subspan(0, static_cast<std::size_t>(fault.offset)));
      break;
    case WriteFault::Kind::kNone:
      store_.Append(run_, block);
      break;
  }
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(n));
}

RunReader::RunReader(RunStore& store, DiskModel& disk, int run, int width,
                     std::size_t block_bytes, const RunSeal& seal)
    : store_(store),
      disk_(disk),
      run_(run),
      width_(width),
      row_bytes_(sizeof(Key) * static_cast<std::size_t>(width) +
                 sizeof(Measure)),
      expected_(seal) {
  // Read whole rows per refill; at least one row even if B is tiny.
  rows_per_refill_ = std::max<std::size_t>(1, block_bytes / row_bytes_);
  buffer_.resize(rows_per_refill_ * row_bytes_);
  Refill();
}

Measure RunReader::measure() const {
  Measure m;
  std::memcpy(&m, buffer_.data() + pos_ + sizeof(Key) * static_cast<std::size_t>(width_),
              sizeof(m));
  return m;
}

void RunReader::Advance() {
  pos_ += row_bytes_;
  if (pos_ == filled_ && !done_) Refill();
}

void RunReader::Refill() {
  const std::size_t got = store_.Read(
      run_, offset_, std::span<std::byte>(buffer_.data(), buffer_.size()));
  crc_ = Crc32cExtend(crc_, std::span<const std::byte>(buffer_.data(), got));
  offset_ += got;
  filled_ = got;
  pos_ = 0;
  if (got > 0) disk_.ChargeRead(got);
  if (got < buffer_.size()) done_ = true;
  if (got == 0) pos_ = filled_;  // immediately exhausted
  if (got % row_bytes_ != 0) {
    throw SncubeCorruptionError(
        "external-sort run holds partial rows (torn write?)");
  }
  if (done_) {
    // The run has fully drained: everything the writer sealed must have
    // come back, byte for byte.
    if (offset_ != expected_.bytes) {
      throw SncubeCorruptionError(
          "external-sort run length mismatch: sealed " +
          std::to_string(expected_.bytes) + " bytes, read " +
          std::to_string(offset_));
    }
    if (crc_ != expected_.crc) {
      throw SncubeCorruptionError(
          "external-sort run CRC32C mismatch (payload corrupt)");
    }
  }
}

}  // namespace sncube
