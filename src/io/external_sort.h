// External-memory sort (Vitter [22]): run formation + k-way merge.
//
// This is the "external memory sort" local-disk primitive of the paper's
// machine model (Section 2). The sorter stages data through a RunStore (RAM
// or real temp files), charges every block transfer to the processor's
// DiskModel, and achieves the textbook O((n/B)·log_{m/B}(n/B)) transfer
// bound: one pass to form memory-sized sorted runs, then (m/B)-way merge
// passes until one run remains.
#pragma once

#include <cstddef>
#include <span>

#include "io/disk.h"
#include "io/run_store.h"
#include "relation/relation.h"

namespace sncube {

struct ExternalSortStats {
  std::size_t runs_formed = 0;
  int merge_passes = 0;
  bool in_memory = false;  // true when the input fit in working memory
};

// Sorts `input` by column order `cols` (stable). Block transfers are charged
// to `disk`. When `store` is null a MemoryRunStore is used. `stats`, when
// non-null, receives what the sorter did.
Relation ExternalSort(const Relation& input, std::span<const int> cols,
                      DiskModel& disk, RunStore* store = nullptr,
                      ExternalSortStats* stats = nullptr);

// Charges the block transfers of a linear scan of `bytes` (read only).
inline void ChargeLinearScan(DiskModel& disk, std::size_t bytes) {
  disk.ChargeRead(bytes);
}

}  // namespace sncube
