// Storage backends for external-sort runs.
//
// A RunStore holds append-only byte runs. MemoryRunStore keeps them in RAM
// (fast default; block transfers are still charged by the sorter so the cost
// model is unaffected). FileRunStore stages runs in real temporary files so
// the external sort can be exercised against an actual filesystem — data
// larger than RAM genuinely spills.
#pragma once

#include <cstddef>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "relation/serialize.h"

namespace sncube {

class RunStore {
 public:
  virtual ~RunStore() = default;

  // Creates an empty run and returns its id.
  virtual int CreateRun() = 0;
  // Appends bytes to an existing run.
  virtual void Append(int run, std::span<const std::byte> bytes) = 0;
  // Total bytes in the run.
  virtual std::size_t Size(int run) const = 0;
  // Copies up to out.size() bytes starting at `offset` into `out`; returns
  // the number of bytes actually copied (0 at end of run).
  virtual std::size_t Read(int run, std::size_t offset,
                           std::span<std::byte> out) const = 0;
  // Releases the run's storage. The id must not be reused afterwards.
  virtual void Free(int run) = 0;
};

// Runs held in main memory.
class MemoryRunStore final : public RunStore {
 public:
  int CreateRun() override;
  void Append(int run, std::span<const std::byte> bytes) override;
  std::size_t Size(int run) const override;
  std::size_t Read(int run, std::size_t offset,
                   std::span<std::byte> out) const override;
  void Free(int run) override;

 private:
  std::vector<ByteBuffer> runs_;
};

// Runs staged in unlinked temporary files under `dir` (default: the system
// temp directory). Files are removed on Free / destruction (RAII).
class FileRunStore final : public RunStore {
 public:
  explicit FileRunStore(std::string dir = "");
  ~FileRunStore() override;

  FileRunStore(const FileRunStore&) = delete;
  FileRunStore& operator=(const FileRunStore&) = delete;

  int CreateRun() override;
  void Append(int run, std::span<const std::byte> bytes) override;
  std::size_t Size(int run) const override;
  std::size_t Read(int run, std::size_t offset,
                   std::span<std::byte> out) const override;
  void Free(int run) override;

 private:
  std::string dir_;
  std::vector<std::FILE*> files_;   // nullptr after Free
  std::vector<std::size_t> sizes_;
};

}  // namespace sncube
