// Storage backends for external-sort runs, and the checksummed writer/reader
// pair through which all run bytes flow.
//
// A RunStore holds append-only byte runs. MemoryRunStore keeps them in RAM
// (fast default; block transfers are still charged by the sorter so the cost
// model is unaffected). FileRunStore stages runs in real temporary files so
// the external sort can be exercised against an actual filesystem — data
// larger than RAM genuinely spills.
//
// RunWriter computes a CRC32C over everything it intends to append and
// returns it as the run's RunSeal from Finish(); injected write faults
// (DiskModel::TakeWriteFault) strike *after* the checksum is taken, exactly
// like real silent corruption striking below the software. RunReader carries
// the seal and verifies byte count and checksum when the run drains, so a
// bit-flipped or torn run surfaces as SncubeCorruptionError at merge time —
// never as a silently mis-sorted relation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "io/disk.h"
#include "relation/serialize.h"

namespace sncube {

class RunStore {
 public:
  virtual ~RunStore() = default;

  // Creates an empty run and returns its id.
  virtual int CreateRun() = 0;
  // Appends bytes to an existing run.
  virtual void Append(int run, std::span<const std::byte> bytes) = 0;
  // Total bytes in the run.
  virtual std::size_t Size(int run) const = 0;
  // Copies up to out.size() bytes starting at `offset` into `out`; returns
  // the number of bytes actually copied (0 at end of run).
  virtual std::size_t Read(int run, std::size_t offset,
                           std::span<std::byte> out) const = 0;
  // Releases the run's storage. The id must not be reused afterwards.
  virtual void Free(int run) = 0;
};

// Runs held in main memory.
class MemoryRunStore final : public RunStore {
 public:
  int CreateRun() override;
  void Append(int run, std::span<const std::byte> bytes) override;
  std::size_t Size(int run) const override;
  std::size_t Read(int run, std::size_t offset,
                   std::span<std::byte> out) const override;
  void Free(int run) override;

 private:
  std::vector<ByteBuffer> runs_;
};

// Runs staged in unlinked temporary files under `dir` (default: the system
// temp directory). Files are removed on Free / destruction (RAII).
class FileRunStore final : public RunStore {
 public:
  explicit FileRunStore(std::string dir = "");
  ~FileRunStore() override;

  FileRunStore(const FileRunStore&) = delete;
  FileRunStore& operator=(const FileRunStore&) = delete;

  int CreateRun() override;
  void Append(int run, std::span<const std::byte> bytes) override;
  std::size_t Size(int run) const override;
  std::size_t Read(int run, std::size_t offset,
                   std::span<std::byte> out) const override;
  void Free(int run) override;

 private:
  std::string dir_;
  std::vector<std::FILE*> files_;   // nullptr after Free
  std::vector<std::size_t> sizes_;
};

// Integrity seal of a finished run: how many bytes the writer meant to
// persist and their CRC32C. Held by the sorter alongside the run id and
// handed to the reader that later drains the run.
struct RunSeal {
  std::uint64_t bytes = 0;
  std::uint32_t crc = kCrc32cInit;
};

// Buffers rows and appends them to a run in block-sized, disk-charged
// writes. The only sanctioned write path into a RunStore.
class RunWriter {
 public:
  RunWriter(RunStore& store, DiskModel& disk, int run, std::size_t block_bytes)
      : store_(store), disk_(disk), run_(run), block_bytes_(block_bytes) {}

  void Write(std::span<const std::byte> bytes);

  // Flushes the tail and returns the run's seal.
  RunSeal Finish();

 private:
  void Flush(std::size_t n);

  RunStore& store_;
  DiskModel& disk_;
  int run_;
  std::size_t block_bytes_;
  ByteBuffer buffer_;
  RunSeal seal_;
};

// Streams rows out of a stored run with block-granular, disk-charged reads,
// verifying the RunSeal as the run drains.
class RunReader {
 public:
  RunReader(RunStore& store, DiskModel& disk, int run, int width,
            std::size_t block_bytes, const RunSeal& seal);

  bool exhausted() const { return pos_ == filled_ && done_; }

  // Current row's keys / measure. Only valid when !exhausted().
  const Key* keys() const {
    return reinterpret_cast<const Key*>(buffer_.data() + pos_);
  }
  Measure measure() const;

  void Advance();

 private:
  void Refill();

  RunStore& store_;
  DiskModel& disk_;
  int run_;
  int width_;
  std::size_t row_bytes_;
  std::size_t rows_per_refill_;
  ByteBuffer buffer_;
  std::size_t offset_ = 0;
  std::size_t filled_ = 0;
  std::size_t pos_ = 0;
  bool done_ = false;
  RunSeal expected_;
  std::uint32_t crc_ = kCrc32cInit;
};

}  // namespace sncube
