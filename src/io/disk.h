// Per-processor local-disk model.
//
// The paper's machine model (Section 2) charges a linear scan of a size-n
// file O(n/B) block transfers and an external sort O((n/B)·log_{m/B}(n/B)),
// after Vitter [22]. DiskModel is the accounting side of that model: every
// byte staged to or from a processor's local disk is charged in whole blocks
// of `block_bytes`, against a working memory of `memory_bytes`. The cost
// model in src/net converts block counts into simulated seconds.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sncube {

struct DiskParams {
  // Block transfer size B. 8 KiB keeps the per-view block-rounding floor
  // proportionally small at bench scale; together with disk_block_s (see
  // net/params.h) it models the same ~40 MB/s IDE-era bandwidth a larger
  // block would.
  std::size_t block_bytes = 8 * 1024;
  // Working memory m available for sorting/merging per processor.
  std::size_t memory_bytes = 64 * 1024 * 1024;
};

// A corruption fault to apply to the bytes of a write that *succeeds*:
// silent damage the device acknowledges, as opposed to the transient errors
// it reports. Detected only because every persisted frame carries a CRC32C
// trailer (common/crc32c.h).
struct WriteFault {
  enum class Kind {
    kNone,       // write lands faithfully
    kBitFlip,    // one bit inverted; offset is the bit index
    kTornWrite,  // write truncated; offset is the byte count that landed
  };
  Kind kind = Kind::kNone;
  std::uint64_t offset = 0;
};

// Decides whether a given disk operation fails transiently. Implemented by
// the fault injector in src/net; the hook lives here so the io layer stays
// free of net dependencies. A firing hook makes ChargeRead/ChargeWrite throw
// SncubeTransientIoError before any blocks are accounted — the op did not
// happen, and the caller may retry it.
class DiskFaultHook {
 public:
  virtual ~DiskFaultHook() = default;
  virtual bool NextOpFails(bool is_write) = 0;
  // Silent-corruption decision for a write of `bytes` bytes. The default
  // keeps hand-written test hooks source-compatible: no corruption.
  virtual WriteFault NextWriteFault(std::size_t bytes) {
    (void)bytes;
    return {};
  }
};

// Running totals of block transfers on one processor's local disk.
class DiskModel {
 public:
  explicit DiskModel(DiskParams params = {}) : params_(params) {}

  const DiskParams& params() const { return params_; }

  // Installs (or with nullptr removes) a transient-fault hook. Not owned;
  // must outlive the model or be cleared first.
  void set_fault_hook(DiskFaultHook* hook) { fault_hook_ = hook; }

  // Charges a read/write of `bytes` rounded up to whole blocks. Throws
  // SncubeTransientIoError, charging nothing, when the fault hook fires.
  void ChargeRead(std::size_t bytes);
  void ChargeWrite(std::size_t bytes);

  // Draws the silent-corruption decision for a write of `bytes` bytes.
  // Callers that physically persist bytes (the checksummed io layer) must
  // apply the returned fault to the buffer *after* computing its checksum —
  // corruption strikes below the CRC, that is what makes it detectable.
  WriteFault TakeWriteFault(std::size_t bytes);

  std::uint64_t blocks_read() const { return blocks_read_; }
  std::uint64_t blocks_written() const { return blocks_written_; }
  std::uint64_t blocks_total() const { return blocks_read_ + blocks_written_; }

  void Reset() { blocks_read_ = blocks_written_ = 0; }

  // Number of merge passes an external sort of `bytes` needs (0 when the
  // data fits in memory): ceil(log_f(runs)) with fan-in f = m/B - 1.
  int MergePasses(std::size_t bytes) const;

 private:
  DiskParams params_;
  DiskFaultHook* fault_hook_ = nullptr;
  std::uint64_t blocks_read_ = 0;
  std::uint64_t blocks_written_ = 0;
};

}  // namespace sncube
