#include "data/retail.h"

#include "common/rng.h"
#include "common/status.h"
#include "common/zipf.h"

namespace sncube {

RetailDataset GenerateRetail(std::int64_t rows, std::uint64_t seed) {
  SNCUBE_CHECK(rows >= 0);
  // Cardinalities chosen to mirror a mid-size retailer; Schema sorts them
  // into decreasing order, names travel with their dimension.
  const std::vector<std::uint32_t> cards = {500, 200, 24, 10, 8, 4};
  const std::vector<std::string> raw_names = {"product", "store",   "month",
                                              "segment", "promo",   "payment"};
  // Skew: product sales are heavily zipfian, stores moderately, the rest
  // uniform.
  const std::vector<double> alphas = {1.2, 0.6, 0.0, 0.0, 0.0, 0.0};

  RetailDataset ds;
  ds.schema = Schema(cards, raw_names);
  ds.names.reserve(cards.size());
  for (int i = 0; i < ds.schema.dims(); ++i) ds.names.push_back(ds.schema.name(i));

  std::vector<ZipfSampler> samplers;
  samplers.reserve(cards.size());
  for (int i = 0; i < ds.schema.dims(); ++i) {
    // Recover the alpha that travelled with this cardinality: cards are
    // unique in this data set except none repeat, so match by name.
    double alpha = 0.0;
    for (std::size_t j = 0; j < raw_names.size(); ++j) {
      if (raw_names[j] == ds.schema.name(i)) alpha = alphas[j];
    }
    samplers.emplace_back(ds.schema.cardinality(i), alpha);
  }

  ds.facts = Relation(ds.schema.dims());
  ds.facts.Reserve(static_cast<std::size_t>(rows));
  Rng rng(seed);
  std::vector<Key> keys(static_cast<std::size_t>(ds.schema.dims()));
  for (std::int64_t r = 0; r < rows; ++r) {
    for (int c = 0; c < ds.schema.dims(); ++c) {
      keys[static_cast<std::size_t>(c)] = samplers[static_cast<std::size_t>(c)].Sample(rng);
    }
    // Units sold: 1..5, skewed toward single-unit baskets.
    const Measure units = 1 + static_cast<Measure>(rng.Below(5) == 0 ? rng.Below(4) + 1 : 0);
    ds.facts.Append(keys, units);
  }
  return ds;
}

}  // namespace sncube
