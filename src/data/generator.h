// Synthetic workload generator matching the paper's evaluation setup
// (Section 4): n records, d dimensions, per-dimension cardinality |Di| and
// per-dimension Zipf skew αi (α = 0 uniform … α = 3 high skew).
//
// Generation is seeded and deterministic; per-rank slices can be generated
// independently (each rank draws its own Rng split), which is how the
// shared-nothing benches create the "distributed arbitrarily over the p
// processors" input without any rank touching another's data.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "relation/relation.h"
#include "relation/schema.h"

namespace sncube {

struct DatasetSpec {
  std::int64_t rows = 0;
  std::vector<std::uint32_t> cardinalities;  // per dimension, any order
  std::vector<double> alphas;                // Zipf skew; empty = all zero
  std::uint64_t seed = 42;

  // The paper's default mix: d = 8, |Di| = 256,128,64,32,16,8,6,6, α = 0.
  static DatasetSpec PaperDefault(std::int64_t rows);

  // Schema with dimensions sorted into decreasing-cardinality order.
  Schema MakeSchema() const;
};

// Generates the full data set (measure = 1 so SUM doubles as COUNT; any
// distributive measure would do).
Relation GenerateDataset(const DatasetSpec& spec);

// Generates rank `rank`'s slice of a p-way row partition (rows split as
// evenly as possible; slices are disjoint and their union equals the full
// data set generated with the same spec).
Relation GenerateSlice(const DatasetSpec& spec, int p, int rank);

}  // namespace sncube
