// A small retail star-schema workload for the examples: sales facts over
// (store, product, month, customer-segment, promotion, payment) dimensions
// with realistic cardinalities and skew (a few products dominate sales).
// This is the kind of decision-support data set the paper's introduction
// motivates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "relation/relation.h"
#include "relation/schema.h"

namespace sncube {

struct RetailDataset {
  Schema schema;
  Relation facts;                   // measure = units sold
  std::vector<std::string> names;   // dimension names in schema order
};

// Generates `rows` sales facts, deterministic under `seed`.
RetailDataset GenerateRetail(std::int64_t rows, std::uint64_t seed = 7);

}  // namespace sncube
