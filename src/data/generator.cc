#include "data/generator.h"

#include <algorithm>
#include <numeric>

#include "common/status.h"

namespace sncube {
namespace {

// (cardinality, alpha) pairs in the schema's decreasing-cardinality order.
// Kept in one place so the generated columns line up with Schema's sort.
std::vector<std::pair<std::uint32_t, double>> SortedDims(
    const DatasetSpec& spec) {
  SNCUBE_CHECK(!spec.cardinalities.empty());
  SNCUBE_CHECK(spec.alphas.empty() ||
               spec.alphas.size() == spec.cardinalities.size());
  const std::size_t d = spec.cardinalities.size();
  std::vector<int> perm(d);
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](int a, int b) {
    return spec.cardinalities[a] > spec.cardinalities[b];
  });
  std::vector<std::pair<std::uint32_t, double>> dims;
  dims.reserve(d);
  for (int i : perm) {
    dims.emplace_back(spec.cardinalities[i],
                      spec.alphas.empty() ? 0.0 : spec.alphas[i]);
  }
  return dims;
}

}  // namespace

DatasetSpec DatasetSpec::PaperDefault(std::int64_t rows) {
  DatasetSpec spec;
  spec.rows = rows;
  spec.cardinalities = {256, 128, 64, 32, 16, 8, 6, 6};
  return spec;
}

Schema DatasetSpec::MakeSchema() const {
  return Schema(cardinalities);
}

Relation GenerateSlice(const DatasetSpec& spec, int p, int rank) {
  SNCUBE_CHECK(p >= 1 && rank >= 0 && rank < p);
  const auto dims = SortedDims(spec);
  const int d = static_cast<int>(dims.size());

  std::vector<ZipfSampler> samplers;
  samplers.reserve(dims.size());
  for (const auto& [card, alpha] : dims) samplers.emplace_back(card, alpha);

  // Even row split: first (rows % p) ranks get one extra row.
  const std::int64_t base = spec.rows / p;
  const std::int64_t extra = spec.rows % p;
  const std::int64_t begin = rank * base + std::min<std::int64_t>(rank, extra);
  const std::int64_t count = base + (rank < extra ? 1 : 0);

  Relation rel(d);
  rel.Reserve(static_cast<std::size_t>(count));
  std::vector<Key> keys(static_cast<std::size_t>(d));
  for (std::int64_t r = begin; r < begin + count; ++r) {
    // Per-row generator keyed on (seed, row) so any slice of any p-way
    // split reproduces exactly the same rows.
    Rng rng(spec.seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(r + 1)));
    for (int c = 0; c < d; ++c) {
      keys[static_cast<std::size_t>(c)] = samplers[static_cast<std::size_t>(c)].Sample(rng);
    }
    rel.Append(keys, 1);
  }
  return rel;
}

Relation GenerateDataset(const DatasetSpec& spec) {
  return GenerateSlice(spec, 1, 0);
}

}  // namespace sncube
