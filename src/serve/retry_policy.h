// Policy-owned waiting for the serving tier: clocks, backoff, retry budget.
//
// Everything in the resilient router that involves TIME — per-try latency
// measurement, capped-exponential retry backoff, breaker cooldowns, hedging
// thresholds — flows through the ServeClock interface defined here, and
// every actual wait is executed by RetryPolicy sleep helpers in
// retry_policy.cc. That concentration is deliberate and machine-enforced:
// the sncheck `raw-sleep` rule bans sleep_for / usleep / nanosleep in
// src/serve outside retry_policy.cc, so no component can grow an ad-hoc
// backoff loop the test clock cannot see. Swap in a ManualServeClock and the
// whole failure-policy stack — retries, hedges, breaker transitions, shed
// decisions — becomes a deterministic pure function of (plan, seed),
// pinnable by unit tests with zero wall-clock dependence.
//
// The two policy classes are plain state machines with no threads and no
// hidden time reads:
//
//   BackoffPolicy  capped exponential: delay(attempt) = min(cap, base·2^a).
//   RetryBudget    token bucket measured as a fraction of request volume —
//                  each admitted request earns `ratio` tokens (so a steady
//                  10% retry rate is sustainable at ratio 0.1), each retry
//                  or hedge spends one. The bucket is capped so an idle
//                  period cannot bank an unbounded retry storm.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "serve/lock_order.h"

namespace sncube {

// Microsecond clock the serving failure policy runs on. Implementations
// must be safe to call from any number of threads.
class ServeClock {
 public:
  virtual ~ServeClock() = default;
  virtual std::uint64_t NowMicros() const = 0;
  virtual void SleepMicros(std::uint64_t us) = 0;
};

// Production clock: steady wall time; SleepMicros really sleeps (the one
// sanctioned sleep site lives in retry_policy.cc).
class WallServeClock final : public ServeClock {
 public:
  WallServeClock();
  std::uint64_t NowMicros() const override;
  void SleepMicros(std::uint64_t us) override;

 private:
  std::uint64_t epoch_us_;
};

// Test clock: time is an atomic counter that only SleepMicros (or an
// explicit Advance) moves. Under this clock a router run is deterministic —
// injected shard slowness advances virtual time, real compute does not.
class ManualServeClock final : public ServeClock {
 public:
  explicit ManualServeClock(std::uint64_t start_us = 0) : now_us_(start_us) {}
  std::uint64_t NowMicros() const override {
    return now_us_.load(std::memory_order_relaxed);
  }
  void SleepMicros(std::uint64_t us) override { Advance(us); }
  void Advance(std::uint64_t us) {
    now_us_.fetch_add(us, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> now_us_;
};

// Capped exponential backoff: DelayMicros(0) = base, doubling per attempt,
// never above cap. Pure function — no jitter, so retry timing is pinnable.
struct BackoffPolicy {
  std::uint64_t base_us = 1000;
  std::uint64_t cap_us = 64000;

  std::uint64_t DelayMicros(int attempt) const {
    std::uint64_t d = base_us;
    for (int i = 0; i < attempt && d < cap_us; ++i) d *= 2;
    return std::min(d, cap_us);
  }
};

// Global retry/hedge budget: a token bucket refilled by request volume.
// OnRequest() credits `ratio` tokens (capped at `burst`); TrySpend() debits
// one token for a retry or hedge and fails when the budget is exhausted —
// the router then returns the typed failure instead of amplifying load.
// The bucket starts FULL: a failure in the first requests after startup
// deserves a retry as much as any other, and the burst cap still bounds
// total amplification.
class RetryBudget {
 public:
  RetryBudget(double ratio, double burst)
      : ratio_(ratio), burst_(burst), tokens_(burst) {}

  void OnRequest() {
    MutexLock lock(mu_);
    tokens_ = std::min(burst_, tokens_ + ratio_);
  }

  bool TrySpend() {
    MutexLock lock(mu_);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double tokens() const {
    MutexLock lock(mu_);
    return tokens_;
  }

 private:
  const double ratio_;
  const double burst_;
  // Router-policy layer of the serve lock hierarchy (serve/lock_order.h):
  // held only for the token-bucket arithmetic, never across a call into the
  // health/server/cache layers.
  mutable Mutex mu_ SNCUBE_ACQUIRED_AFTER(kRouterLayer)
      SNCUBE_ACQUIRED_BEFORE(kHealthLayer);
  double tokens_ SNCUBE_GUARDED_BY(mu_);
};

}  // namespace sncube
