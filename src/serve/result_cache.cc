#include "serve/result_cache.h"

#include "common/status.h"
#include "serve/query_key.h"

namespace sncube {

std::size_t CacheEntryBytes(const std::string& key,
                            const QueryAnswer& answer) {
  // Payload plus key plus a flat allowance for list/map node overhead.
  constexpr std::size_t kPerEntryOverhead = 128;
  return answer.rel.ByteSize() + key.size() + kPerEntryOverhead;
}

ResultCache::ResultCache(std::size_t byte_budget, int shards)
    : byte_budget_(byte_budget) {
  SNCUBE_CHECK(shards >= 1);
  shard_budget_ = byte_budget / static_cast<std::size_t>(shards);
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

namespace {

// Index key for one (epoch, canonical query key) pair. The epoch prefix is
// what makes cross-epoch hits impossible by construction: requests pinned to
// different epochs look up different index keys even for identical queries.
std::string ComposeKey(std::uint64_t epoch, const std::string& key) {
  return std::to_string(epoch) + '|' + key;
}

}  // namespace

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  return *shards_[QueryKeyHash(key) % shards_.size()];
}

std::shared_ptr<const QueryAnswer> ResultCache::Get(const std::string& key,
                                                    std::uint64_t epoch) {
  const std::string composed = ComposeKey(epoch, key);
  Shard& s = ShardFor(composed);
  MutexLock lock(s.mu);
  const auto it = s.index.find(composed);
  if (it == s.index.end()) {
    ++s.misses;
    return nullptr;
  }
  ++s.hits;
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // promote to MRU
  return it->second->answer;
}

void ResultCache::Put(const std::string& key,
                      std::shared_ptr<const QueryAnswer> answer,
                      std::uint64_t epoch) {
  std::string composed = ComposeKey(epoch, key);
  const std::size_t bytes = CacheEntryBytes(composed, *answer);
  if (bytes > shard_budget_) return;  // would evict the whole shard for one entry

  Shard& s = ShardFor(composed);
  MutexLock lock(s.mu);
  if (const auto it = s.index.find(composed); it != s.index.end()) {
    // Refresh in place (same key + epoch ⇒ same answer over an immutable
    // snapshot, but keep the newer shared_ptr and re-account defensively).
    s.bytes -= it->second->bytes;
    it->second->answer = std::move(answer);
    it->second->bytes = bytes;
    s.bytes += bytes;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  while (s.bytes + bytes > shard_budget_ && !s.lru.empty()) {
    const Entry& victim = s.lru.back();
    s.bytes -= victim.bytes;
    s.index.erase(victim.key);
    s.lru.pop_back();
    ++s.evictions;
  }
  s.lru.push_front(Entry{std::move(composed), epoch, std::move(answer), bytes});
  s.index.emplace(s.lru.front().key, s.lru.begin());
  s.bytes += bytes;
  ++s.inserts;
}

void ResultCache::Clear() {
  for (const auto& sp : shards_) {
    MutexLock lock(sp->mu);
    sp->invalidations += sp->index.size();
    sp->index.clear();
    sp->lru.clear();
    sp->bytes = 0;
  }
}

std::uint64_t ResultCache::ClearEpoch(std::uint64_t epoch) {
  std::uint64_t dropped = 0;
  for (const auto& sp : shards_) {
    MutexLock lock(sp->mu);
    for (auto it = sp->lru.begin(); it != sp->lru.end();) {
      if (it->epoch != epoch) {
        ++it;
        continue;
      }
      sp->bytes -= it->bytes;
      sp->index.erase(it->key);
      it = sp->lru.erase(it);
      ++sp->invalidations;
      ++dropped;
    }
  }
  return dropped;
}

CacheStats ResultCache::Stats() const {
  CacheStats total;
  for (const auto& sp : shards_) {
    MutexLock lock(sp->mu);
    total.hits += sp->hits;
    total.misses += sp->misses;
    total.inserts += sp->inserts;
    total.evictions += sp->evictions;
    total.invalidations += sp->invalidations;
    total.bytes += sp->bytes;
    total.entries += sp->index.size();
  }
  return total;
}

}  // namespace sncube
