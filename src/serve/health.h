// Per-shard health: a deterministic circuit breaker plus outcome counters.
//
// The breaker is the classic three-state machine, driven entirely by
// explicit (outcome, now) inputs — it never reads a clock itself, so under a
// ManualServeClock every transition is a deterministic function of the
// request sequence and unit tests can pin the exact state after each event:
//
//        ≥ failure_threshold failures          cooldown_us elapsed
//        within window_us                      (checked on next Allow)
//   CLOSED ───────────────────────▶ OPEN ───────────────────────▶ HALF-OPEN
//     ▲                              ▲                                │
//     │  half_open_probes            │   any probe failure            │
//     │  consecutive successes       └────────────────────────────────┤
//     └───────────────────────────────────────────────────────────────┘
//
// CLOSED admits everything and counts failures over a sliding window (old
// failures age out, so a slow trickle never trips it). OPEN rejects
// everything until `cooldown_us` has elapsed since opening; the first
// Allow() after the cooldown flips to HALF-OPEN. HALF-OPEN admits at most
// `half_open_probes` in-flight probes: all succeeding closes the breaker,
// any failure reopens it (and restarts the cooldown).
//
// ShardHealth wraps one breaker with a mutex and the per-shard counters the
// router reports (tries, failures, breaker transitions) — the breaker
// itself is kept lock-free-of and single-threaded-testable.
#pragma once

#include <cstdint>
#include <deque>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "serve/lock_order.h"

namespace sncube {

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState s);

struct BreakerOptions {
  int failure_threshold = 5;          // failures within window_us that open
  std::uint64_t window_us = 1000000;  // sliding failure-count window
  std::uint64_t cooldown_us = 250000; // open → half-open delay
  int half_open_probes = 2;           // consecutive successes that close
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerOptions options = {}) : options_(options) {}

  // True when a request may be sent to the shard at time `now`. An OPEN
  // breaker whose cooldown has elapsed flips to HALF-OPEN here (the caller's
  // request becomes a probe); a HALF-OPEN breaker admits at most
  // half_open_probes outstanding probes.
  bool AllowRequest(std::uint64_t now_us);

  void OnSuccess(std::uint64_t now_us);
  void OnFailure(std::uint64_t now_us);

  BreakerState state() const { return state_; }

  // Lifetime transition counts, for metrics and tests.
  std::uint64_t opened_count() const { return opened_; }
  std::uint64_t half_opened_count() const { return half_opened_; }
  std::uint64_t closed_count() const { return closed_; }

 private:
  void Open(std::uint64_t now_us);

  BreakerOptions options_;
  BreakerState state_ = BreakerState::kClosed;
  std::deque<std::uint64_t> failure_times_;  // within window, oldest first
  std::uint64_t opened_at_us_ = 0;
  int probes_in_flight_ = 0;
  int probe_successes_ = 0;
  std::uint64_t opened_ = 0;
  std::uint64_t half_opened_ = 0;
  std::uint64_t closed_ = 0;
};

// One shard's health record as the router sees it: the breaker plus the
// counters reported per shard. Thread-safe; the breaker state machine runs
// under the mutex.
class ShardHealth {
 public:
  explicit ShardHealth(BreakerOptions options = {}) : breaker_(options) {}

  bool AllowRequest(std::uint64_t now_us) SNCUBE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return breaker_.AllowRequest(now_us);
  }
  void OnSuccess(std::uint64_t now_us) SNCUBE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++tries_;
    breaker_.OnSuccess(now_us);
  }
  void OnFailure(std::uint64_t now_us) SNCUBE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++tries_;
    ++failures_;
    breaker_.OnFailure(now_us);
  }

  struct Snapshot {
    BreakerState state = BreakerState::kClosed;
    std::uint64_t tries = 0;
    std::uint64_t failures = 0;
    std::uint64_t breaker_opened = 0;
    std::uint64_t breaker_half_opened = 0;
    std::uint64_t breaker_closed = 0;
  };
  Snapshot Snap() const SNCUBE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    Snapshot s;
    s.state = breaker_.state();
    s.tries = tries_;
    s.failures = failures_;
    s.breaker_opened = breaker_.opened_count();
    s.breaker_half_opened = breaker_.half_opened_count();
    s.breaker_closed = breaker_.closed_count();
    return s;
  }

 private:
  // Health layer of the serve lock hierarchy (serve/lock_order.h): may be
  // taken while a router-policy lock is held, never the other way around,
  // and never across a call into the server/cache layers.
  mutable Mutex mu_ SNCUBE_ACQUIRED_AFTER(kHealthLayer)
      SNCUBE_ACQUIRED_BEFORE(kServerLayer);
  CircuitBreaker breaker_ SNCUBE_GUARDED_BY(mu_);
  std::uint64_t tries_ SNCUBE_GUARDED_BY(mu_) = 0;
  std::uint64_t failures_ SNCUBE_GUARDED_BY(mu_) = 0;
};

// Priority-aware load shedder: a sliding window over the last `window`
// sub-request outcomes, counting the "pressure" ones (queue rejections,
// per-try timeouts, shard-down fast failures). Level() maps the count to a
// degradation level the router applies strictly in priority order:
//
//   0  healthy   — serve everything
//   1  strained  — shed cross-shard rollup scatter/gather (expensive, one
//                  slow slice holds the whole fan-out), keep point lookups
//   2  overload  — shed rollups and point lookups alike
//
// Pure state machine, deterministic under a fixed outcome sequence.
struct LoadShedderOptions {
  int window = 128;           // outcomes remembered
  int shed_scatter_at = 16;   // pressure count → level 1
  int shed_point_at = 48;     // pressure count → level 2
};

class LoadShedder {
 public:
  using Options = LoadShedderOptions;

  explicit LoadShedder(Options options = Options()) : options_(options) {}

  void Note(bool pressure) SNCUBE_EXCLUDES(mu_);
  int Level() const SNCUBE_EXCLUDES(mu_);

 private:
  Options options_;
  // Router-policy layer, like RetryBudget::mu_: the shed decision happens
  // before any health/server/cache lock is in play.
  mutable Mutex mu_ SNCUBE_ACQUIRED_AFTER(kRouterLayer)
      SNCUBE_ACQUIRED_BEFORE(kHealthLayer);
  std::deque<bool> window_ SNCUBE_GUARDED_BY(mu_);
  int pressure_ SNCUBE_GUARDED_BY(mu_) = 0;
};

}  // namespace sncube
