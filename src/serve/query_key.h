// Canonical serialization of a Query — the cache key of the serving layer.
//
// Two queries that request the same answer must map to the same byte string,
// so the serialization normalizes everything the engine's semantics ignore:
// filters are sorted by (dim, value), and duplicate filters collapse. The
// key covers every field that can change the answer: group-by mask, filter
// set, aggregate function, top_k, and the from_view pin (which changes what
// a shard-local answer covers). It is a compact binary string (not
// human-readable) sized for hash-map keys, not for transport.
#pragma once

#include <string>

#include "query/engine.h"

namespace sncube {

// Canonical byte-string key for `q`. Equal answers ⇒ equal keys for any two
// queries that differ only in filter order or repeated filters.
std::string CanonicalQueryKey(const Query& q);

// Stable 64-bit hash of a canonical key (FNV-1a); used to pick cache shards
// so that shard assignment is identical across runs and platforms.
std::uint64_t QueryKeyHash(const std::string& key);

}  // namespace sncube
