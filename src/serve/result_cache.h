// Sharded LRU cache of query answers, scoped by snapshot epoch.
//
// The serving layer sits on top of immutable CubeResult snapshots, so a
// cached answer never goes stale *within its epoch* — the only eviction
// pressure is the byte budget. Online refresh (src/refresh) introduces new
// epochs under live traffic: every entry is stamped with the epoch it was
// computed against, a lookup hits only entries of the requested epoch, and
// retiring an epoch invalidates exactly that epoch's entries (ClearEpoch)
// rather than flushing the whole cache. During a swap window both epochs'
// entries coexist; a request pinned to epoch E can never observe an answer
// computed at E' != E.
//
// The cache is split into S independent shards (shard = stable hash of the
// canonical query key, see query_key.h), each with its own mutex, LRU list,
// and slice of the byte budget, so concurrent lookups on different shards
// never contend. Values are shared_ptr<const QueryAnswer>: a hit hands out a
// reference that stays valid even if the entry is evicted mid-read.
//
// Accounting charges each entry its answer payload (Relation::ByteSize) plus
// key bytes and a fixed per-entry overhead, so a flood of tiny answers still
// respects the budget. An answer larger than a whole shard's budget is not
// cached at all (it would only evict everything else and then itself).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "query/engine.h"
#include "serve/lock_order.h"

namespace sncube {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;  // entries dropped by Clear()
  std::uint64_t bytes = 0;     // currently resident
  std::uint64_t entries = 0;   // currently resident
};

class ResultCache {
 public:
  // `byte_budget` is the total across shards; each shard gets an equal
  // slice. `shards` must be >= 1; budget 0 disables insertion entirely.
  ResultCache(std::size_t byte_budget, int shards = 16);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Returns the cached answer for `key` at `epoch`, or nullptr on miss. A
  // hit promotes the entry to most-recently-used. Entries of other epochs
  // never hit, whatever their key.
  std::shared_ptr<const QueryAnswer> Get(const std::string& key,
                                         std::uint64_t epoch = 0);

  // Inserts (or refreshes) `answer` under (`key`, `epoch`), evicting LRU
  // entries of the same shard until the shard fits its budget slice.
  // Oversized answers are dropped silently.
  void Put(const std::string& key, std::shared_ptr<const QueryAnswer> answer,
           std::uint64_t epoch = 0);

  // Drops every resident entry (counted in CacheStats::invalidations) while
  // leaving the hit/miss history intact. The serving tier calls this when a
  // cube shard restarts: entries cached against the pre-restart snapshot
  // would otherwise be served stale. Outstanding shared_ptr references stay
  // valid; concurrent Get/Put simply miss/refill.
  void Clear();

  // Drops exactly the entries stamped with `epoch` (counted in
  // CacheStats::invalidations) and returns how many were dropped. The
  // serving tier calls this when a snapshot epoch retires after a refresh
  // swap: other epochs' entries — including the newly installed epoch's —
  // stay resident.
  std::uint64_t ClearEpoch(std::uint64_t epoch);

  // Aggregated counters across shards (consistent per shard, not globally
  // atomic — fine for monitoring).
  CacheStats Stats() const;

  std::size_t byte_budget() const { return byte_budget_; }
  int shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Entry {
    std::string key;  // epoch-composed index key (see ComposeKey)
    std::uint64_t epoch = 0;
    std::shared_ptr<const QueryAnswer> answer;
    std::size_t bytes = 0;
  };
  struct Shard {
    // Cache layer — the bottom of the serve lock hierarchy
    // (serve/lock_order.h): a shard lock is the innermost lock any serve
    // path may hold, and the per-shard split means two shard locks are
    // never nested either (instance-blind ordering keeps that degenerate).
    mutable Mutex mu SNCUBE_ACQUIRED_AFTER(kCacheLayer);
    std::list<Entry> lru SNCUBE_GUARDED_BY(mu);  // front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> index
        SNCUBE_GUARDED_BY(mu);
    std::size_t bytes SNCUBE_GUARDED_BY(mu) = 0;
    std::uint64_t hits SNCUBE_GUARDED_BY(mu) = 0;
    std::uint64_t misses SNCUBE_GUARDED_BY(mu) = 0;
    std::uint64_t inserts SNCUBE_GUARDED_BY(mu) = 0;
    std::uint64_t evictions SNCUBE_GUARDED_BY(mu) = 0;
    std::uint64_t invalidations SNCUBE_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const std::string& key);

  std::size_t byte_budget_;
  std::size_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

// Bytes charged against the budget for one cached answer.
std::size_t CacheEntryBytes(const std::string& key, const QueryAnswer& answer);

}  // namespace sncube
