// The serving tier's global lock hierarchy, as a chain of layer anchors.
//
// The serve stack has four lock layers. Request flow touches them strictly
// top-down, so the only acquisition order that can never deadlock is:
//
//   router policy      RetryBudget::mu_, LoadShedder::mu_   (route decision)
//     ↓ health         ShardHealth::mu_                     (breaker check)
//       ↓ shard-set    ShardSet::mu_                        (epoch resolve)
//         ↓ server     CubeServer::mu_                      (queue admission)
//           ↓ cache    ResultCache::Shard::mu               (answer lookup)
//
// Each `k*Layer` anchor below is a Mutex that exists only to carry
// SNCUBE_ACQUIRED_AFTER edges — nothing ever locks one. Real mutexes are
// annotated ACQUIRED_AFTER(their own layer anchor) and ACQUIRED_BEFORE(the
// next layer's anchor), which places every real lock between two anchors and
// makes the whole cross-class ordering transitive without any class having
// to name another class's private member.
//
// Enforcement is doubled up:
//   * clang -Wthread-safety-beta (CI lint build, and the
//     tests/negative_compile lock_order fixtures) rejects an inverted
//     acquisition at compile time;
//   * tools/lint/sncheck_ast.py parses these declarations textually and
//     fails its lock-order rule on any observed acquired-while-held edge
//     that contradicts the declared chain — including on gcc-only hosts
//     where the clang attributes expand to nothing.
//
// Today no serve code path nests two of these locks at all (the analyzer's
// global graph has zero cross-layer edges); the hierarchy pins that freedom
// down so a future nested acquisition must either follow the documented
// order or fail two machines.
#pragma once

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace sncube {

inline Mutex kRouterLayer;
inline Mutex kHealthLayer SNCUBE_ACQUIRED_AFTER(kRouterLayer);
inline Mutex kShardSetLayer SNCUBE_ACQUIRED_AFTER(kHealthLayer);
inline Mutex kServerLayer SNCUBE_ACQUIRED_AFTER(kShardSetLayer);
inline Mutex kCacheLayer SNCUBE_ACQUIRED_AFTER(kServerLayer);

}  // namespace sncube
