#include "serve/server.h"

#include <optional>
#include <sstream>

#include "common/status.h"
#include "serve/query_key.h"

namespace sncube {

std::string StatsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"accepted\":" << accepted << ",\"rejected\":" << rejected
     << ",\"completed\":" << completed << ",\"failed\":" << failed
     << ",\"timed_out\":" << timed_out
     << ",\"deadline_exceeded_in_flight\":" << deadline_exceeded_in_flight
     << ",\"queue_depth\":" << queue_depth
     << ",\"queue_depth_max\":" << queue_depth_max
     << ",\"cache\":{\"hits\":" << cache.hits << ",\"misses\":" << cache.misses
     << ",\"inserts\":" << cache.inserts
     << ",\"evictions\":" << cache.evictions
     << ",\"invalidations\":" << cache.invalidations
     << ",\"bytes\":" << cache.bytes
     << ",\"entries\":" << cache.entries << ",\"hit_rate\":" << hit_rate()
     << "},\"latency_us\":{\"count\":" << latency.count
     << ",\"mean\":" << latency.mean_us() << ",\"p50\":" << latency.p50_us
     << ",\"p95\":" << latency.p95_us << ",\"p99\":" << latency.p99_us
     << ",\"max\":" << latency.max_us << "}}";
  return os.str();
}

CubeServer::CubeServer(const CubeResult& cube, ServerOptions options)
    : options_(options),
      engine_(cube),
      cache_(options.cache_bytes, options.cache_shards) {
  SNCUBE_CHECK(options_.workers >= 1);
  SNCUBE_CHECK(options_.queue_depth >= 1);
  // Spawned workers immediately contend for mu_ in WorkerLoop, so they park
  // until construction releases the lock — no worker observes a
  // half-initialized pool.
  MutexLock lock(mu_);
  live_workers_ = options_.workers;
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

CubeServer::~CubeServer() { Shutdown(); }

SubmitStatus CubeServer::Submit(const Query& query, Callback done) {
  Request req;
  req.query = query;
  req.key = CanonicalQueryKey(query);
  req.done = std::move(done);
  req.enqueued = std::chrono::steady_clock::now();
  {
    MutexLock lock(mu_);
    if (stopping_) return SubmitStatus::kShutdown;
    if (queue_.size() >= options_.queue_depth) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return SubmitStatus::kRejected;
    }
    queue_.push_back(std::move(req));
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  queue_cv_.NotifyOne();
  return SubmitStatus::kAccepted;
}

std::shared_ptr<const QueryAnswer> CubeServer::Execute(const Query& query) {
  Mutex mu;
  CondVar cv;
  std::shared_ptr<const QueryAnswer> result;
  bool ready = false;
  const SubmitStatus st =
      Submit(query, [&](std::shared_ptr<const QueryAnswer> answer,
                        QueryOutcome /*outcome*/) {
        MutexLock lock(mu);
        result = std::move(answer);
        ready = true;
        cv.NotifyOne();
      });
  if (st != SubmitStatus::kAccepted) return nullptr;
  MutexLock lock(mu);
  while (!ready) cv.Wait(mu);
  return result;
}

void CubeServer::WorkerLoop(int worker) {
  // Per-worker trace recorder (worker index doubles as the trace "rank").
  // Thread-confined for the worker's whole life; absorbed into the sink
  // exactly once, after the worker leaves the serving loop.
  std::optional<obs::TraceRecorder> recorder;
  if (options_.trace != nullptr) recorder.emplace(worker, &trace_clock_);
  obs::ThreadRecorderScope trace_scope(recorder ? &*recorder : nullptr);

  for (;;) {
    Request req;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) queue_cv_.Wait(mu_);
      if (queue_.empty()) {
        // Stopping and fully drained: retire. The last worker out wakes
        // every Shutdown caller blocked on quiescence.
        if (--live_workers_ == 0) drained_cv_.NotifyAll();
        break;
      }
      req = std::move(queue_.front());
      queue_.pop_front();
    }
    Process(req);
  }
  if (recorder) options_.trace->Absorb(recorder->Finish());
}

void CubeServer::Process(Request& req) {
  SNCUBE_TRACE_SPAN("request");
  // Deadline check at dequeue: a request that already waited past its
  // deadline is dropped without doing the query work — the client stopped
  // waiting, so executing it would only delay requests that can still make
  // their deadlines.
  if (options_.deadline.count() > 0 &&
      std::chrono::steady_clock::now() - req.enqueued > options_.deadline) {
    timed_out_.fetch_add(1, std::memory_order_relaxed);
    if (req.done) req.done(nullptr, QueryOutcome::kTimedOut);
    return;
  }

  if (options_.pre_execute_hook) options_.pre_execute_hook(req.query);

  std::shared_ptr<const QueryAnswer> answer;
  bool execution_failed = false;
  {
    SNCUBE_TRACE_SPAN("cache-lookup");
    answer = cache_.Get(req.key, options_.epoch);
  }
  if (answer == nullptr) {
    try {
      answer = std::make_shared<const QueryAnswer>(engine_.Execute(req.query));
      cache_.Put(req.key, answer, options_.epoch);
    } catch (const SncubeError&) {
      execution_failed = true;  // e.g. no materialized view covers the query
    }
  }
  // Account before the callback runs: a client that wakes on the callback
  // (CubeServer::Execute) must observe its own request in Stats(), and the
  // callback body is client time, not serving latency.
  const auto elapsed = std::chrono::steady_clock::now() - req.enqueued;
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
  latency_.Record(static_cast<std::uint64_t>(us));
  QueryOutcome outcome = QueryOutcome::kOk;
  if (execution_failed) {
    outcome = QueryOutcome::kFailed;
    answer = nullptr;
    failed_.fetch_add(1, std::memory_order_relaxed);
  } else if (options_.deadline.count() > 0 && elapsed > options_.deadline) {
    // The query finished, but past its deadline: the client already gave up,
    // so delivering the answer would misreport it as served in budget. The
    // freshly computed answer stays in the cache — a retry will hit it.
    outcome = QueryOutcome::kTimedOut;
    answer = nullptr;
    timed_out_.fetch_add(1, std::memory_order_relaxed);
    deadline_exceeded_in_flight_.fetch_add(1, std::memory_order_relaxed);
  } else {
    completed_.fetch_add(1, std::memory_order_relaxed);
  }
  if (req.done) req.done(std::move(answer), outcome);
}

void CubeServer::Shutdown() {
  // Every caller — not just the first — blocks until the queue is drained
  // and the workers have exited. The old early-return for concurrent
  // callers let a destructor racing an explicit Shutdown() return (and
  // destroy members) while the first caller was still joining workers that
  // touch those members; -Wthread-safety forced the join under mu_, which
  // in turn forced this wait-for-quiescence protocol.
  MutexLock lock(mu_);
  stopping_ = true;
  queue_cv_.NotifyAll();
  while (live_workers_ > 0) drained_cv_.Wait(mu_);
  // live_workers_ == 0: every worker is past its last touch of server
  // state, so joining under mu_ cannot deadlock and only waits out thread
  // epilogues. Concurrent callers serialize here; the loser joins an empty
  // vector.
  for (auto& w : workers_) {
    // sncheck:allow(blocking-under-lock): join runs only after live_workers_ == 0 — every worker is past its last touch of server state, so this waits out thread epilogues, never worker progress
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

StatsSnapshot CubeServer::Stats() const {
  StatsSnapshot s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.timed_out = timed_out_.load(std::memory_order_relaxed);
  s.deadline_exceeded_in_flight =
      deadline_exceeded_in_flight_.load(std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    s.queue_depth = queue_.size();
  }
  s.queue_depth_max = options_.queue_depth;
  s.cache = cache_.Stats();
  s.latency = latency_.Snapshot();
  return s;
}

}  // namespace sncube
