#include "serve/metrics_bridge.h"

namespace sncube {

void AbsorbServerStats(obs::MetricsRegistry& registry,
                       const CubeServer& server) {
  const StatsSnapshot s = server.Stats();
  registry.GetCounter("serve.accepted").Add(s.accepted);
  registry.GetCounter("serve.rejected").Add(s.rejected);
  registry.GetCounter("serve.completed").Add(s.completed);
  registry.GetCounter("serve.failed").Add(s.failed);
  registry.GetCounter("serve.timed_out").Add(s.timed_out);
  registry.GetCounter("serve.cache.hits").Add(s.cache.hits);
  registry.GetCounter("serve.cache.misses").Add(s.cache.misses);
  registry.GetCounter("serve.cache.inserts").Add(s.cache.inserts);
  registry.GetCounter("serve.cache.evictions").Add(s.cache.evictions);
  registry.GetGauge("serve.cache.bytes").Set(static_cast<double>(s.cache.bytes));
  registry.GetGauge("serve.cache.entries")
      .Set(static_cast<double>(s.cache.entries));
  registry.GetGauge("serve.cache.hit_rate").Set(s.hit_rate());
  registry.GetGauge("serve.queue_depth").Set(static_cast<double>(s.queue_depth));

  // Bucket-for-bucket transfer: LatencyHistogram and obs::Histogram share
  // the power-of-two bucket scheme, so quantiles survive the copy.
  obs::Histogram& h = registry.GetHistogram("serve.latency_us");
  const auto counts = server.latency_histogram().BucketCounts();
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (counts[static_cast<std::size_t>(i)] != 0) {
      h.AddBucketCount(i, counts[static_cast<std::size_t>(i)]);
    }
  }
  h.AddSum(s.latency.sum_us);
  h.MergeMax(s.latency.max_us);
}

}  // namespace sncube
