#include "serve/metrics_bridge.h"

namespace sncube {

void AbsorbServerStats(obs::MetricsRegistry& registry,
                       const CubeServer& server) {
  const StatsSnapshot s = server.Stats();
  registry.GetCounter("serve.accepted").Add(s.accepted);
  registry.GetCounter("serve.rejected").Add(s.rejected);
  registry.GetCounter("serve.completed").Add(s.completed);
  registry.GetCounter("serve.failed").Add(s.failed);
  registry.GetCounter("serve.timed_out").Add(s.timed_out);
  registry.GetCounter("serve.deadline_exceeded_in_flight")
      .Add(s.deadline_exceeded_in_flight);
  registry.GetCounter("serve.cache.hits").Add(s.cache.hits);
  registry.GetCounter("serve.cache.misses").Add(s.cache.misses);
  registry.GetCounter("serve.cache.inserts").Add(s.cache.inserts);
  registry.GetCounter("serve.cache.evictions").Add(s.cache.evictions);
  registry.GetCounter("serve.cache.invalidations").Add(s.cache.invalidations);
  registry.GetGauge("serve.cache.bytes").Set(static_cast<double>(s.cache.bytes));
  registry.GetGauge("serve.cache.entries")
      .Set(static_cast<double>(s.cache.entries));
  registry.GetGauge("serve.cache.hit_rate").Set(s.hit_rate());
  registry.GetGauge("serve.queue_depth").Set(static_cast<double>(s.queue_depth));

  // Bucket-for-bucket transfer: LatencyHistogram and obs::Histogram share
  // the power-of-two bucket scheme, so quantiles survive the copy.
  obs::Histogram& h = registry.GetHistogram("serve.latency_us");
  const auto counts = server.latency_histogram().BucketCounts();
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (counts[static_cast<std::size_t>(i)] != 0) {
      h.AddBucketCount(i, counts[static_cast<std::size_t>(i)]);
    }
  }
  h.AddSum(s.latency.sum_us);
  h.MergeMax(s.latency.max_us);
}

namespace {

void AbsorbLatency(obs::MetricsRegistry& registry, const char* name,
                   const LatencyHistogram& hist, const LatencySnapshot& snap) {
  obs::Histogram& h = registry.GetHistogram(name);
  const auto counts = hist.BucketCounts();
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (counts[static_cast<std::size_t>(i)] != 0) {
      h.AddBucketCount(i, counts[static_cast<std::size_t>(i)]);
    }
  }
  h.AddSum(snap.sum_us);
  h.MergeMax(snap.max_us);
}

}  // namespace

void AbsorbRouterStats(obs::MetricsRegistry& registry, const Router& router) {
  const RouterStatsSnapshot s = router.Stats();
  registry.GetCounter("serve.router.requests").Add(s.requests);
  registry.GetCounter("serve.router.ok").Add(s.ok);
  registry.GetCounter("serve.router.failed").Add(s.failed);
  registry.GetCounter("serve.router.timed_out").Add(s.timed_out);
  registry.GetCounter("serve.router.shed").Add(s.shed);
  registry.GetCounter("serve.router.unavailable").Add(s.unavailable);
  registry.GetCounter("serve.router.point_queries").Add(s.point_queries);
  registry.GetCounter("serve.router.scatter_queries").Add(s.scatter_queries);
  registry.GetCounter("serve.router.retries").Add(s.retries);
  registry.GetCounter("serve.router.hedges").Add(s.hedges);
  registry.GetCounter("serve.router.hedge_wins").Add(s.hedge_wins);
  registry.GetCounter("serve.router.budget_exhausted").Add(s.budget_exhausted);
  registry.GetCounter("serve.router.probes").Add(s.probes);
  std::uint64_t opened = 0, half_opened = 0, closed = 0, open_now = 0;
  for (const auto& h : s.shard_health) {
    opened += h.breaker_opened;
    half_opened += h.breaker_half_opened;
    closed += h.breaker_closed;
    if (h.state == BreakerState::kOpen) ++open_now;
  }
  registry.GetCounter("serve.router.breaker.opened").Add(opened);
  registry.GetCounter("serve.router.breaker.half_opened").Add(half_opened);
  registry.GetCounter("serve.router.breaker.closed").Add(closed);
  registry.GetGauge("serve.router.breaker.open_shards")
      .Set(static_cast<double>(open_now));
  AbsorbLatency(registry, "serve.router.ok_latency_us",
                router.ok_latency_histogram(), s.ok_latency);
  AbsorbLatency(registry, "serve.router.error_latency_us",
                router.error_latency_histogram(), s.error_latency);
}

}  // namespace sncube
