// Sharded hosting of a materialized cube — the data plane under the
// resilient router (serve/router.h).
//
// The cube is split into N SLICES: every materialized view's rows are
// partitioned by a stable hash of the row's LEADING-dimension value (the
// paper's Di-partition prefix, ViewId column 0; the 0-dim "all" view's
// single row lives on slice 0). Because a slice keeps rows in their
// original order, each slice view stays sorted by the view's sort order,
// and because every source row lands in exactly one slice, per-slice
// partial aggregates compose exactly (sum/min/max distribute over a
// disjoint row partition).
//
// The composition rule has one sharp edge: it only holds when every slice
// answers from the SAME view. Each view is partitioned by its own leading
// dimension, so a row group's fragments for view V and view W live on
// different slices — mixing views across a scatter would lose or double
// count facts. The router therefore pins Query::from_view on every
// sub-query; this file is where that requirement comes from.
//
// EPOCHS (online refresh, src/refresh): the set hosts one or more immutable
// snapshot EPOCHS of the cube at once. Epoch 0 is the construction-time
// cube; RefreshCoordinator installs successors via the two-phase surface
// below (PrepareEpoch → CommitShard per shard → FinalizeEpoch). Every
// request is pinned to one epoch — the router reads serving_epoch() once at
// entry and passes it to every sub-query — so a scatter can never mix rows
// from two snapshots even while a swap is in flight. The previous epoch's
// copies are retained until the NEXT finalize so requests that pinned it
// mid-swap drain gracefully; a request whose pinned epoch has since retired
// fails typed (kEpochGone), never with another epoch's data.
//
// Placement is replication factor 2 over N shard "nodes": shard s hosts the
// PRIMARY copy of slice s and a REPLICA of slice (s-1+N)%N, so slice k can
// be served by shards k and (k+1)%N. Every hosted copy is its own
// CubeServer (own queue, workers, result cache) over an immutable slice
// CubeResult, mirroring a shared-nothing deployment in-process.
//
// Faults are injected here, at the "network boundary" in front of each
// shard, from the serve-tier clauses of a FaultPlan (net/fault.h):
// shardkill windows make every request to the shard fail fast with
// kShardDown; shardslow windows stretch service time by sleeping the
// ServeClock for (factor-1)·max(virtual elapsed, nominal_service_us) —
// virtual quantities only, so under a ManualServeClock a faulted run is a
// deterministic function of the plan. When a kill window closes the shard
// comes back with cold caches (restart semantics): every hosted copy's
// result cache, across all resident epochs, is invalidated before the
// first post-window request.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/fault.h"
#include "query/engine.h"
#include "seqcube/cube_result.h"
#include "serve/lock_order.h"
#include "serve/retry_policy.h"
#include "serve/server.h"

namespace sncube {

// Slice index for a leading-dimension key value: FNV-1a over the key bytes,
// mod n. Stable across runs and platforms — the routing side (point-lookup
// slice pinning) and the partitioning side must agree forever.
int SliceOfLeadingKey(Key value, int n_slices);

// Splits `cube` into `n_slices` per-slice cubes. Every view appears in every
// slice (same id/order/selected, possibly with an empty relation), so
// from_view-pinned routing works against any slice.
std::vector<CubeResult> PartitionCubeForServing(const CubeResult& cube,
                                                int n_slices);

struct ShardSetOptions {
  int shards = 4;             // N nodes = N slices (>= 1)
  ServerOptions server;       // per-hosted-copy CubeServer config
  // Virtual floor for the shardslow delay computation (see file comment):
  // models the service time of a query that is "instant" in virtual time.
  std::uint64_t nominal_service_us = 200;
  // Borrowed; must outlive the ShardSet. Null = internal wall clock.
  ServeClock* clock = nullptr;
  // Test-only escape hatch for the refresh chaos harness: when false,
  // ExecuteOnShard IGNORES the router-pinned epoch and answers from the
  // shard's own current epoch (whatever was last committed to that shard) —
  // the data-plane bug a naive single-phase swap has. Mid-swap scatters then
  // blend two snapshots, which `sncube chaos --refresh` must catch.
  // Production code never clears this.
  bool pin_epoch = true;
};

// How one try against one shard ended, as the router's policy layer sees it.
enum class TryOutcome : std::uint8_t {
  kOk,         // answer present
  kError,      // execution failed deterministically (e.g. no covering view);
               // retrying cannot help and the shard itself is healthy
  kRejected,   // shard queue full — overload pressure, retryable elsewhere
  kTimedOut,   // shard-side deadline expired — retryable
  kShardDown,  // fault-injected kill window (or shut down) — retryable
  kEpochGone,  // the request's pinned epoch is no longer hosted — the
               // snapshot retired mid-request; not retryable (every shard
               // retired it), the client re-issues and pins the new epoch
};

const char* TryOutcomeName(TryOutcome o);

struct TryResult {
  TryOutcome outcome = TryOutcome::kError;
  std::shared_ptr<const QueryAnswer> answer;  // non-null iff kOk
  std::uint64_t latency_us = 0;  // virtual (ServeClock) elapsed for the try
};

class ShardSet {
 public:
  // The cube must outlive the ShardSet and stay immutable (the usual
  // CubeResult serving contract); it becomes epoch 0. Serve-tier clauses of
  // `plan` must target shards < options.shards.
  ShardSet(const CubeResult& cube, const ShardSetOptions& options,
           const FaultPlan& plan = {});
  ~ShardSet();

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  int shards() const { return n_; }
  int PrimaryShardOf(int slice) const { return slice; }
  int ReplicaShardOf(int slice) const { return (slice + 1) % n_; }

  // The epoch new requests pin. Advances exactly at FinalizeEpoch — the
  // in-memory mirror of the snapshot store's sealed commit record.
  std::uint64_t serving_epoch() const {
    return serving_epoch_.load(std::memory_order_acquire);
  }

  // Routing over the FULL cube of `epoch` — all slices must agree on the
  // answering view, so the choice is made against the unpartitioned row
  // counts of the same snapshot the scatter will execute on. Throws
  // SncubeError when no materialized view covers the query or the epoch has
  // retired.
  ViewId RouteOnFull(const Query& query, std::uint64_t epoch) const;
  ViewId RouteOnFull(const Query& query) const {
    return RouteOnFull(query, serving_epoch());
  }

  // ---- Two-phase swap surface (driven by refresh::RefreshCoordinator) ----
  //
  // PrepareEpoch builds and hosts the new epoch's slices and servers
  // WITHOUT serving them: requests keep pinning the old epoch. CommitShard
  // marks one shard's node as having adopted the epoch (bookkeeping in
  // pinned mode; the serving epoch in the pin_epoch=false test hole).
  // FinalizeEpoch atomically flips serving_epoch() to `epoch` and retires
  // every epoch older than the immediately preceding one (ClearEpoch-style
  // per-epoch cache invalidation happens by construction: each epoch's
  // servers die with it). AbandonEpoch drops a prepared-but-uncommitted
  // epoch after an aborted refresh.
  void PrepareEpoch(std::uint64_t epoch,
                    std::shared_ptr<const CubeResult> cube);
  void CommitShard(std::uint64_t epoch, int shard);
  void FinalizeEpoch(std::uint64_t epoch);
  void AbandonEpoch(std::uint64_t epoch);

  // Epochs currently hosted (ascending). Monitoring + tests.
  std::vector<std::uint64_t> HostedEpochs() const;

  // Executes `query` against slice `slice`'s copy of `epoch` hosted on
  // `shard` (must be its primary or replica holder). `seq` is the router
  // request sequence number driving the fault windows. Synchronous; applies
  // kill/slow faults and restart cache invalidation.
  TryResult ExecuteOnShard(int shard, int slice, const Query& query,
                           std::uint64_t seq, std::uint64_t epoch);
  TryResult ExecuteOnShard(int shard, int slice, const Query& query,
                           std::uint64_t seq) {
    return ExecuteOnShard(shard, slice, query, seq, serving_epoch());
  }

  // Health probe: is the shard reachable at `seq`? Applies restart
  // invalidation exactly like a request, but does no query work.
  bool Ping(int shard, std::uint64_t seq);

  ServeClock& clock() { return *clock_; }

  // The SERVING epoch's hosted servers, for stats export. Shard s hosts
  // primary_server(s) (slice s) and replica_server((s-1+N)%N).
  const CubeServer& primary_server(int slice) const;
  const CubeServer& replica_server(int slice) const;

  // Drains every hosted server of every resident epoch. Idempotent; the
  // destructor calls it.
  void Shutdown();

 private:
  // One immutable snapshot epoch: the full cube (owned for refresh-produced
  // epochs, borrowed for epoch 0), its routing engine, its N slices, and a
  // (primary, replica) CubeServer pair per shard node. Handed out as
  // shared_ptr so a retire cannot destroy state under an in-flight request.
  struct EpochState {
    std::uint64_t epoch = 0;
    std::shared_ptr<const CubeResult> owned;  // null for the borrowed epoch 0
    const CubeResult* full = nullptr;
    std::unique_ptr<CubeQueryEngine> engine;
    std::vector<CubeResult> slices;  // immutable once servers exist
    struct Copy {
      std::unique_ptr<CubeServer> primary;  // slice == shard index
      std::unique_ptr<CubeServer> replica;  // slice == (shard-1+N)%N
    };
    std::vector<Copy> copies;  // one per shard node
  };
  struct HostedShard {
    // True while a finite kill window for this shard has not yet produced
    // its restart invalidation. Cleared exactly once (exchange).
    std::atomic<bool> restart_pending{false};
    // The epoch this node considers current (advanced by CommitShard).
    // Consulted only by the pin_epoch=false test hole; in pinned mode the
    // router-pinned epoch governs.
    std::atomic<std::uint64_t> shard_epoch{0};
  };
  struct KillWindow {
    bool has = false;
    std::uint64_t from = 0;
    std::uint64_t until = FaultPlan::kNoEnd;
  };
  struct SlowWindow {
    bool has = false;
    std::uint64_t from = 0;
    std::uint64_t until = FaultPlan::kNoEnd;
    double factor = 1.0;
  };

  // Builds a fully-wired EpochState (slices, engine, servers). No locks.
  std::shared_ptr<EpochState> BuildEpochState(
      std::uint64_t epoch, std::shared_ptr<const CubeResult> owned,
      const CubeResult& full);
  // nullptr when the epoch is not hosted.
  std::shared_ptr<EpochState> StateFor(std::uint64_t epoch) const;
  static CubeServer* ServerIn(EpochState& st, int shard, int slice, int n);
  bool Killed(int shard, std::uint64_t seq) const;
  double SlowFactor(int shard, std::uint64_t seq) const;
  // Performs the once-only post-kill-window cache invalidation.
  void MaybeRestart(int shard, std::uint64_t seq);

  const int n_;
  ShardSetOptions options_;
  WallServeClock wall_clock_;
  ServeClock* clock_;
  std::atomic<std::uint64_t> serving_epoch_{0};
  // Guards the epoch map only — never held across a server Submit or a
  // state build/teardown. Sits between the health and server layers of the
  // serve lock hierarchy (serve/lock_order.h).
  mutable Mutex mu_ SNCUBE_ACQUIRED_AFTER(kShardSetLayer)
      SNCUBE_ACQUIRED_BEFORE(kServerLayer);
  std::map<std::uint64_t, std::shared_ptr<EpochState>> epochs_
      SNCUBE_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<HostedShard>> hosted_;  // per-shard fault state
  std::vector<KillWindow> kills_;
  std::vector<SlowWindow> slows_;
};

}  // namespace sncube
