// Sharded hosting of a materialized cube — the data plane under the
// resilient router (serve/router.h).
//
// The cube is split into N SLICES: every materialized view's rows are
// partitioned by a stable hash of the row's LEADING-dimension value (the
// paper's Di-partition prefix, ViewId column 0; the 0-dim "all" view's
// single row lives on slice 0). Because a slice keeps rows in their
// original order, each slice view stays sorted by the view's sort order,
// and because every source row lands in exactly one slice, per-slice
// partial aggregates compose exactly (sum/min/max distribute over a
// disjoint row partition).
//
// The composition rule has one sharp edge: it only holds when every slice
// answers from the SAME view. Each view is partitioned by its own leading
// dimension, so a row group's fragments for view V and view W live on
// different slices — mixing views across a scatter would lose or double
// count facts. The router therefore pins Query::from_view on every
// sub-query; this file is where that requirement comes from.
//
// Placement is replication factor 2 over N shard "nodes": shard s hosts the
// PRIMARY copy of slice s and a REPLICA of slice (s-1+N)%N, so slice k can
// be served by shards k and (k+1)%N. Every hosted copy is its own
// CubeServer (own queue, workers, result cache) over an immutable slice
// CubeResult, mirroring a shared-nothing deployment in-process.
//
// Faults are injected here, at the "network boundary" in front of each
// shard, from the serve-tier clauses of a FaultPlan (net/fault.h):
// shardkill windows make every request to the shard fail fast with
// kShardDown; shardslow windows stretch service time by sleeping the
// ServeClock for (factor-1)·max(virtual elapsed, nominal_service_us) —
// virtual quantities only, so under a ManualServeClock a faulted run is a
// deterministic function of the plan. When a kill window closes the shard
// comes back with cold caches (restart semantics): both hosted servers'
// result caches are invalidated before the first post-window request.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/fault.h"
#include "query/engine.h"
#include "seqcube/cube_result.h"
#include "serve/retry_policy.h"
#include "serve/server.h"

namespace sncube {

// Slice index for a leading-dimension key value: FNV-1a over the key bytes,
// mod n. Stable across runs and platforms — the routing side (point-lookup
// slice pinning) and the partitioning side must agree forever.
int SliceOfLeadingKey(Key value, int n_slices);

// Splits `cube` into `n_slices` per-slice cubes. Every view appears in every
// slice (same id/order/selected, possibly with an empty relation), so
// from_view-pinned routing works against any slice.
std::vector<CubeResult> PartitionCubeForServing(const CubeResult& cube,
                                                int n_slices);

struct ShardSetOptions {
  int shards = 4;             // N nodes = N slices (>= 1)
  ServerOptions server;       // per-hosted-copy CubeServer config
  // Virtual floor for the shardslow delay computation (see file comment):
  // models the service time of a query that is "instant" in virtual time.
  std::uint64_t nominal_service_us = 200;
  // Borrowed; must outlive the ShardSet. Null = internal wall clock.
  ServeClock* clock = nullptr;
};

// How one try against one shard ended, as the router's policy layer sees it.
enum class TryOutcome : std::uint8_t {
  kOk,         // answer present
  kError,      // execution failed deterministically (e.g. no covering view);
               // retrying cannot help and the shard itself is healthy
  kRejected,   // shard queue full — overload pressure, retryable elsewhere
  kTimedOut,   // shard-side deadline expired — retryable
  kShardDown,  // fault-injected kill window (or shut down) — retryable
};

const char* TryOutcomeName(TryOutcome o);

struct TryResult {
  TryOutcome outcome = TryOutcome::kError;
  std::shared_ptr<const QueryAnswer> answer;  // non-null iff kOk
  std::uint64_t latency_us = 0;  // virtual (ServeClock) elapsed for the try
};

class ShardSet {
 public:
  // The cube must outlive the ShardSet and stay immutable (the usual
  // CubeResult serving contract). Serve-tier clauses of `plan` must target
  // shards < options.shards.
  ShardSet(const CubeResult& cube, const ShardSetOptions& options,
           const FaultPlan& plan = {});
  ~ShardSet();

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  int shards() const { return n_; }
  int PrimaryShardOf(int slice) const { return slice; }
  int ReplicaShardOf(int slice) const { return (slice + 1) % n_; }

  // Routing over the FULL cube — all slices must agree on the answering
  // view, so the choice is made against the unpartitioned row counts.
  // Throws SncubeError when no materialized view covers the query.
  ViewId RouteOnFull(const Query& query) const { return full_engine_.Route(query); }

  // Executes `query` against slice `slice`'s copy hosted on `shard` (must
  // be its primary or replica holder). `seq` is the router request sequence
  // number driving the fault windows. Synchronous; applies kill/slow faults
  // and restart cache invalidation.
  TryResult ExecuteOnShard(int shard, int slice, const Query& query,
                           std::uint64_t seq);

  // Health probe: is the shard reachable at `seq`? Applies restart
  // invalidation exactly like a request, but does no query work.
  bool Ping(int shard, std::uint64_t seq);

  ServeClock& clock() { return *clock_; }

  // The hosted servers, for stats export. Shard s hosts
  // primary_server(s) (slice s) and replica_server((s-1+N)%N).
  const CubeServer& primary_server(int slice) const;
  const CubeServer& replica_server(int slice) const;

  // Drains every hosted server. Idempotent; the destructor calls it.
  void Shutdown();

 private:
  struct HostedShard {
    std::unique_ptr<CubeServer> primary;  // slice == shard index
    std::unique_ptr<CubeServer> replica;  // slice == (shard-1+N)%N
    // True while a finite kill window for this shard has not yet produced
    // its restart invalidation. Cleared exactly once (exchange).
    std::atomic<bool> restart_pending{false};
  };
  struct KillWindow {
    bool has = false;
    std::uint64_t from = 0;
    std::uint64_t until = FaultPlan::kNoEnd;
  };
  struct SlowWindow {
    bool has = false;
    std::uint64_t from = 0;
    std::uint64_t until = FaultPlan::kNoEnd;
    double factor = 1.0;
  };

  CubeServer* ServerFor(int shard, int slice);
  bool Killed(int shard, std::uint64_t seq) const;
  double SlowFactor(int shard, std::uint64_t seq) const;
  // Performs the once-only post-kill-window cache invalidation.
  void MaybeRestart(int shard, std::uint64_t seq);

  const int n_;
  ShardSetOptions options_;
  CubeQueryEngine full_engine_;
  WallServeClock wall_clock_;
  ServeClock* clock_;
  std::vector<CubeResult> slices_;  // immutable once servers exist
  std::vector<std::unique_ptr<HostedShard>> hosted_;
  std::vector<KillWindow> kills_;
  std::vector<SlowWindow> slows_;
};

}  // namespace sncube
