// Wall-clock trace source for the serving layer.
//
// Cluster-side traces run on the simulated BSP clock (net::Comm implements
// obs::SimClockSource) and are deterministic by construction. The serving
// layer measures *real* concurrency — worker interleaving, queueing, cache
// contention — so its traces are stamped from a steady wall clock instead.
// This lives in src/serve (not src/obs) deliberately: sncheck bans wall
// clock reads in the charged paths (src/core, src/io, src/net, src/obs),
// and the serving layer is the one place the ban does not apply.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/trace.h"

namespace sncube {

// Seconds since construction, shared by any number of threads (the epoch is
// immutable after the constructor).
class WallClockSource final : public obs::SimClockSource {
 public:
  WallClockSource() : epoch_(std::chrono::steady_clock::now()) {}

  double TraceNowSeconds() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }
  // Supersteps are a BSP concept; serve traces have none.
  std::uint64_t TraceSuperstep() const override { return 0; }

 private:
  const std::chrono::steady_clock::time_point epoch_;
};

}  // namespace sncube
