#include "serve/router.h"

#include <sstream>
#include <utility>

#include "common/status.h"
#include "relation/aggregate.h"

namespace sncube {

namespace {

RouterOutcome MapOutcome(TryOutcome o) {
  switch (o) {
    case TryOutcome::kOk: return RouterOutcome::kOk;
    case TryOutcome::kError: return RouterOutcome::kFailed;
    case TryOutcome::kTimedOut: return RouterOutcome::kTimedOut;
    case TryOutcome::kRejected:
    case TryOutcome::kShardDown:
    // The pinned epoch retired mid-request (a long-stalled request outlived
    // two refresh swaps). No shard still hosts it, so it surfaces as
    // unavailability — the client re-issues and pins the current epoch.
    case TryOutcome::kEpochGone: return RouterOutcome::kUnavailable;
  }
  return RouterOutcome::kFailed;
}

void AppendLatency(std::ostringstream& os, const char* name,
                   const LatencySnapshot& l) {
  os << "\"" << name << "\":{\"count\":" << l.count
     << ",\"mean\":" << l.mean_us() << ",\"p50\":" << l.p50_us
     << ",\"p95\":" << l.p95_us << ",\"p99\":" << l.p99_us
     << ",\"max\":" << l.max_us << "}";
}

}  // namespace

const char* RouterOutcomeName(RouterOutcome o) {
  switch (o) {
    case RouterOutcome::kOk: return "ok";
    case RouterOutcome::kFailed: return "failed";
    case RouterOutcome::kTimedOut: return "timed_out";
    case RouterOutcome::kShed: return "shed";
    case RouterOutcome::kUnavailable: return "unavailable";
  }
  return "unknown";
}

std::string RouterStatsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"requests\":" << requests << ",\"ok\":" << ok
     << ",\"failed\":" << failed << ",\"timed_out\":" << timed_out
     << ",\"shed\":" << shed << ",\"unavailable\":" << unavailable
     << ",\"point_queries\":" << point_queries
     << ",\"scatter_queries\":" << scatter_queries
     << ",\"retries\":" << retries << ",\"hedges\":" << hedges
     << ",\"hedge_wins\":" << hedge_wins
     << ",\"budget_exhausted\":" << budget_exhausted
     << ",\"probes\":" << probes << ",\"shards\":[";
  for (std::size_t s = 0; s < shard_health.size(); ++s) {
    const auto& h = shard_health[s];
    if (s != 0) os << ",";
    os << "{\"state\":\"" << BreakerStateName(h.state)
       << "\",\"tries\":" << h.tries << ",\"failures\":" << h.failures
       << ",\"breaker_opened\":" << h.breaker_opened
       << ",\"breaker_half_opened\":" << h.breaker_half_opened
       << ",\"breaker_closed\":" << h.breaker_closed << "}";
  }
  os << "],";
  AppendLatency(os, "ok_latency_us", ok_latency);
  os << ",";
  AppendLatency(os, "error_latency_us", error_latency);
  os << "}";
  return os.str();
}

Router::Router(ShardSet& shards, RouterOptions options)
    : shards_(shards),
      options_(options),
      clock_(shards.clock()),
      budget_(options.retry_budget_ratio, options.retry_budget_burst),
      shedder_(options.shedder) {
  health_.reserve(static_cast<std::size_t>(shards_.shards()));
  for (int s = 0; s < shards_.shards(); ++s) {
    health_.push_back(std::make_unique<ShardHealth>(options_.breaker));
  }
}

void Router::ProbeShards() {
  // Probes replay the current sequence number against the fault windows, so
  // a probe and the request that triggered it see the same epoch.
  const std::uint64_t seq = seq_.load(std::memory_order_relaxed);
  for (int s = 0; s < shards_.shards(); ++s) {
    const std::uint64_t now = clock_.NowMicros();
    auto& h = *health_[static_cast<std::size_t>(s)];
    // An OPEN breaker still cooling down refuses the probe too — the
    // cooldown IS the probe rate limit.
    if (!h.AllowRequest(now)) continue;
    probes_.fetch_add(1, std::memory_order_relaxed);
    if (shards_.Ping(s, seq)) {
      h.OnSuccess(now);
    } else {
      h.OnFailure(now);
    }
  }
}

TryResult Router::TryOnce(int preferred, int other, int slice,
                          const Query& sub, std::uint64_t seq,
                          std::uint64_t epoch, int* shard_tried) {
  *shard_tried = -1;
  const std::uint64_t now = clock_.NowMicros();
  int target = -1;
  if (health_[static_cast<std::size_t>(preferred)]->AllowRequest(now)) {
    target = preferred;
  } else if (other != preferred &&
             health_[static_cast<std::size_t>(other)]->AllowRequest(now)) {
    target = other;
  }
  if (target < 0) return TryResult{};  // both holders breaker-gated
  *shard_tried = target;
  TryResult res = shards_.ExecuteOnShard(target, slice, sub, seq, epoch);
  if (options_.per_try_us > 0 && res.outcome == TryOutcome::kOk &&
      res.latency_us > options_.per_try_us) {
    // Per-try deadline: the answer arrived too late to count. Discarding a
    // correct answer is always safe — the retry path recomputes it.
    res.outcome = TryOutcome::kTimedOut;
    res.answer = nullptr;
  }
  return res;
}

TryResult Router::ExecuteSliceWithPolicy(int slice, const Query& sub,
                                         std::uint64_t seq,
                                         std::uint64_t epoch, int* tries) {
  const int primary = shards_.PrimaryShardOf(slice);
  const int replica = shards_.ReplicaShardOf(slice);
  TryResult last;
  last.outcome = TryOutcome::kShardDown;
  for (int attempt = 0; attempt < options_.max_tries; ++attempt) {
    if (attempt > 0) {
      // Every retry is paid for from the global budget, so a dead tier
      // cannot amplify client load more than (1 + ratio)-fold.
      if (!budget_.TrySpend()) {
        budget_exhausted_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      retries_.fetch_add(1, std::memory_order_relaxed);
      clock_.SleepMicros(options_.backoff.DelayMicros(attempt - 1));
    }
    // Alternate holders: a dead primary fails over on the first retry.
    const int preferred = (attempt % 2 == 0) ? primary : replica;
    const int other = (attempt % 2 == 0) ? replica : primary;
    int tried = -1;
    TryResult res = TryOnce(preferred, other, slice, sub, seq, epoch, &tried);
    if (tried < 0) {
      // Nothing was sent: both holders' breakers refused. That is pressure
      // (the tier is failing work fast); backoff may outlast a cooldown.
      shedder_.Note(true);
      last.outcome = TryOutcome::kShardDown;
      last.answer = nullptr;
      continue;
    }
    ++*tries;
    const std::uint64_t now = clock_.NowMicros();
    switch (res.outcome) {
      case TryOutcome::kOk: {
        health_[static_cast<std::size_t>(tried)]->OnSuccess(now);
        shedder_.Note(false);
        if (options_.hedge_delay_us > 0 &&
            res.latency_us >= options_.hedge_delay_us) {
          // Sequential hedge: the try succeeded but was straggler-slow, so
          // ask the other holder too and keep the faster answer. Both
          // copies hold identical slice data, so this can only trade
          // latency, never correctness.
          const int hedge_target = (tried == primary) ? replica : primary;
          if (hedge_target != tried &&
              health_[static_cast<std::size_t>(hedge_target)]->AllowRequest(
                  now) &&
              budget_.TrySpend()) {
            hedges_.fetch_add(1, std::memory_order_relaxed);
            ++*tries;
            TryResult hr =
                shards_.ExecuteOnShard(hedge_target, slice, sub, seq, epoch);
            if (options_.per_try_us > 0 && hr.outcome == TryOutcome::kOk &&
                hr.latency_us > options_.per_try_us) {
              hr.outcome = TryOutcome::kTimedOut;
              hr.answer = nullptr;
            }
            const std::uint64_t now2 = clock_.NowMicros();
            if (hr.outcome == TryOutcome::kOk) {
              health_[static_cast<std::size_t>(hedge_target)]->OnSuccess(now2);
              if (hr.latency_us < res.latency_us) {
                hedge_wins_.fetch_add(1, std::memory_order_relaxed);
                res = std::move(hr);
              }
            } else if (hr.outcome != TryOutcome::kError) {
              health_[static_cast<std::size_t>(hedge_target)]->OnFailure(now2);
            }
          }
        }
        return res;
      }
      case TryOutcome::kError:
        // The shard answered with a deterministic execution error; a
        // different copy of the same data would say the same. Healthy
        // shard, non-retryable error.
        health_[static_cast<std::size_t>(tried)]->OnSuccess(now);
        return res;
      case TryOutcome::kEpochGone:
        // The pinned epoch is retired everywhere — retrying any copy gives
        // the same answer, and the shard itself responded promptly, so this
        // must not trip the breaker (refresh churn is not shard illness).
        health_[static_cast<std::size_t>(tried)]->OnSuccess(now);
        return res;
      case TryOutcome::kRejected:
      case TryOutcome::kTimedOut:
      case TryOutcome::kShardDown:
        health_[static_cast<std::size_t>(tried)]->OnFailure(now);
        shedder_.Note(true);
        last = std::move(res);
        break;
    }
  }
  return last;
}

RouterResult Router::Execute(const Query& query) {
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  budget_.OnRequest();
  if (options_.probe_every > 0 && seq > 0 &&
      seq % static_cast<std::uint64_t>(options_.probe_every) == 0) {
    ProbeShards();
  }
  const std::uint64_t t0 = clock_.NowMicros();
  RouterResult out;
  // The request's epoch pin: read ONCE, then used for routing and every
  // shard try. A refresh finalize that lands after this line affects only
  // later requests — this one runs entirely against its pinned snapshot.
  const std::uint64_t epoch = shards_.serving_epoch();
  out.epoch = epoch;

  const auto account = [&] {
    const std::uint64_t elapsed = clock_.NowMicros() - t0;
    switch (out.outcome) {
      case RouterOutcome::kOk:
        ok_.fetch_add(1, std::memory_order_relaxed);
        ok_latency_.Record(elapsed);
        break;
      case RouterOutcome::kFailed:
        failed_.fetch_add(1, std::memory_order_relaxed);
        error_latency_.Record(elapsed);
        break;
      case RouterOutcome::kTimedOut:
        timed_out_.fetch_add(1, std::memory_order_relaxed);
        error_latency_.Record(elapsed);
        break;
      case RouterOutcome::kShed:
        // Sheds are immediate refusals; their ~0 latency would only skew
        // the error distribution.
        shed_.fetch_add(1, std::memory_order_relaxed);
        break;
      case RouterOutcome::kUnavailable:
        unavailable_.fetch_add(1, std::memory_order_relaxed);
        error_latency_.Record(elapsed);
        break;
    }
  };

  ViewId view;
  try {
    view = shards_.RouteOnFull(query, epoch);
  } catch (const SncubeError&) {
    out.outcome = RouterOutcome::kFailed;
    account();
    return out;
  }

  // POINT when the answer provably lives on one slice: the empty view's
  // row is on slice 0 by convention, and a filter on the answering view's
  // leading dimension pins the leading-key hash. Everything else SCATTERS.
  int slice = -1;
  if (view.empty()) {
    slice = 0;
  } else {
    const int leading = view.DimList().front();
    for (const auto& f : query.filters) {
      if (f.dim == leading) {
        slice = SliceOfLeadingKey(f.value, shards_.shards());
        break;
      }
    }
  }
  out.scatter = slice < 0;
  if (out.scatter) {
    scatter_queries_.fetch_add(1, std::memory_order_relaxed);
  } else {
    point_queries_.fetch_add(1, std::memory_order_relaxed);
  }

  // Shedding order is strict: rollup scatters go first (level 1), point
  // lookups only under severe overload (level 2).
  const int level = shedder_.Level();
  if ((out.scatter && level >= 1) || (!out.scatter && level >= 2)) {
    out.outcome = RouterOutcome::kShed;
    account();
    return out;
  }

  Query sub = query;
  // All slices must answer from the same view — see shard_set.h. The
  // pin_scatter_view escape hatch exists only so the chaos harness can
  // prove this line is load-bearing.
  if (out.scatter ? options_.pin_scatter_view : true) sub.from_view = view;
  if (!out.scatter) {
    const TryResult r =
        ExecuteSliceWithPolicy(slice, sub, seq, epoch, &out.tries);
    out.outcome = MapOutcome(r.outcome);
    if (r.outcome == TryOutcome::kOk) out.answer = r.answer;
  } else {
    // Partials must carry every group: top-k is re-applied after the merge
    // (a group outside one slice's local top-k can win globally).
    sub.top_k = 0;
    Relation merged(query.group_by.dim_count());
    std::uint64_t scanned = 0;
    out.outcome = RouterOutcome::kOk;
    for (int sl = 0; sl < shards_.shards(); ++sl) {
      const TryResult r =
          ExecuteSliceWithPolicy(sl, sub, seq, epoch, &out.tries);
      if (r.outcome != TryOutcome::kOk) {
        // All-or-nothing: a partial scatter answer would silently drop the
        // failed slice's facts — the one wrong-answer mode this tier must
        // never have. Fail typed instead.
        out.outcome = MapOutcome(r.outcome);
        break;
      }
      merged = MergeSortedAggregate(merged, r.answer->rel, query.fn);
      scanned += r.answer->rows_scanned;
    }
    if (out.outcome == RouterOutcome::kOk) {
      auto ans = std::make_shared<QueryAnswer>();
      ans->rel = TopKByMeasure(merged, query.top_k);
      ans->answered_from = view;
      ans->rows_scanned = scanned;
      out.answer = std::move(ans);
    }
  }
  account();
  return out;
}

RouterStatsSnapshot Router::Stats() const {
  RouterStatsSnapshot s;
  s.ok = ok_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.timed_out = timed_out_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.unavailable = unavailable_.load(std::memory_order_relaxed);
  s.requests = s.ok + s.failed + s.timed_out + s.shed + s.unavailable;
  s.point_queries = point_queries_.load(std::memory_order_relaxed);
  s.scatter_queries = scatter_queries_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.hedges = hedges_.load(std::memory_order_relaxed);
  s.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  s.budget_exhausted = budget_exhausted_.load(std::memory_order_relaxed);
  s.probes = probes_.load(std::memory_order_relaxed);
  s.shard_health.reserve(health_.size());
  for (const auto& h : health_) s.shard_health.push_back(h->Snap());
  s.ok_latency = ok_latency_.Snapshot();
  s.error_latency = error_latency_.Snapshot();
  return s;
}

}  // namespace sncube
