#include "serve/shard_set.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/status.h"

namespace sncube {

int SliceOfLeadingKey(Key value, int n_slices) {
  SNCUBE_DCHECK(n_slices >= 1);
  // FNV-1a over the key's four bytes: stable across runs and platforms,
  // matching the spirit of QueryKeyHash (serve/query_key.h).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (int i = 0; i < 4; ++i) {
    h ^= (static_cast<std::uint32_t>(value) >> (8 * i)) & 0xFFu;
    h *= 0x100000001b3ULL;
  }
  return static_cast<int>(h % static_cast<std::uint64_t>(n_slices));
}

std::vector<CubeResult> PartitionCubeForServing(const CubeResult& cube,
                                                int n_slices) {
  SNCUBE_CHECK(n_slices >= 1);
  std::vector<CubeResult> slices(static_cast<std::size_t>(n_slices));
  for (const auto& [id, vr] : cube.views) {
    // Every slice carries every view (possibly empty) so from_view-pinned
    // routing resolves against any slice.
    std::vector<ViewResult> shells(static_cast<std::size_t>(n_slices));
    for (auto& shell : shells) {
      shell.id = id;
      shell.order = vr.order;
      shell.selected = vr.selected;
      shell.rel = Relation(vr.rel.width());
    }
    if (id.empty()) {
      // The 0-dim "all" view has no leading dimension; its single row (if
      // materialized non-empty) is assigned to slice 0 by convention. The
      // router treats empty-view queries as point lookups on slice 0.
      for (std::size_t r = 0; r < vr.rel.size(); ++r) {
        shells[0].rel.AppendRow(vr.rel, r);
      }
    } else {
      // Column 0 is the leading (smallest-index, highest-cardinality)
      // dimension in the canonical layout. Appending in row order keeps
      // each slice sorted by vr.order — a subsequence of sorted rows.
      for (std::size_t r = 0; r < vr.rel.size(); ++r) {
        const int s = SliceOfLeadingKey(vr.rel.key(r, 0), n_slices);
        shells[static_cast<std::size_t>(s)].rel.AppendRow(vr.rel, r);
      }
    }
    for (int s = 0; s < n_slices; ++s) {
      slices[static_cast<std::size_t>(s)].views.emplace(
          id, std::move(shells[static_cast<std::size_t>(s)]));
    }
  }
  return slices;
}

const char* TryOutcomeName(TryOutcome o) {
  switch (o) {
    case TryOutcome::kOk: return "ok";
    case TryOutcome::kError: return "error";
    case TryOutcome::kRejected: return "rejected";
    case TryOutcome::kTimedOut: return "timed_out";
    case TryOutcome::kShardDown: return "shard_down";
    case TryOutcome::kEpochGone: return "epoch_gone";
  }
  return "unknown";
}

ShardSet::ShardSet(const CubeResult& cube, const ShardSetOptions& options,
                   const FaultPlan& plan)
    : n_(options.shards),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : &wall_clock_),
      kills_(static_cast<std::size_t>(options.shards)),
      slows_(static_cast<std::size_t>(options.shards)) {
  SNCUBE_CHECK(n_ >= 1);
  for (const auto& sk : plan.shard_kills) {
    SNCUBE_CHECK_MSG(sk.shard >= 0 && sk.shard < n_,
                     "shardkill clause targets nonexistent shard");
    auto& w = kills_[static_cast<std::size_t>(sk.shard)];
    w.has = true;
    w.from = sk.from;
    w.until = sk.until;
  }
  for (const auto& sl : plan.shard_slows) {
    SNCUBE_CHECK_MSG(sl.shard >= 0 && sl.shard < n_,
                     "shardslow clause targets nonexistent shard");
    auto& w = slows_[static_cast<std::size_t>(sl.shard)];
    w.has = true;
    w.from = sl.from;
    w.until = sl.until;
    w.factor = sl.factor;
  }
  hosted_.reserve(static_cast<std::size_t>(n_));
  for (int s = 0; s < n_; ++s) {
    auto hs = std::make_unique<HostedShard>();
    // A finite kill window owes exactly one restart invalidation when it
    // closes; an endless one never restarts.
    const auto& kw = kills_[static_cast<std::size_t>(s)];
    hs->restart_pending.store(kw.has && kw.until != FaultPlan::kNoEnd,
                              std::memory_order_relaxed);
    hosted_.push_back(std::move(hs));
  }
  // The construction-time cube is epoch 0, borrowed like every pre-refresh
  // caller expects.
  auto st = BuildEpochState(0, nullptr, cube);
  MutexLock lock(mu_);
  epochs_.emplace(0, std::move(st));
}

ShardSet::~ShardSet() { Shutdown(); }

std::shared_ptr<ShardSet::EpochState> ShardSet::BuildEpochState(
    std::uint64_t epoch, std::shared_ptr<const CubeResult> owned,
    const CubeResult& full) {
  auto st = std::make_shared<EpochState>();
  st->epoch = epoch;
  st->owned = std::move(owned);
  st->full = &full;
  st->engine = std::make_unique<CubeQueryEngine>(full);
  st->slices = PartitionCubeForServing(full, n_);
  ServerOptions server = options_.server;
  server.epoch = epoch;
  st->copies.resize(static_cast<std::size_t>(n_));
  for (int s = 0; s < n_; ++s) {
    auto& copy = st->copies[static_cast<std::size_t>(s)];
    copy.primary = std::make_unique<CubeServer>(
        st->slices[static_cast<std::size_t>(s)], server);
    copy.replica = std::make_unique<CubeServer>(
        st->slices[static_cast<std::size_t>((s - 1 + n_) % n_)], server);
  }
  return st;
}

std::shared_ptr<ShardSet::EpochState> ShardSet::StateFor(
    std::uint64_t epoch) const {
  MutexLock lock(mu_);
  const auto it = epochs_.find(epoch);
  return it == epochs_.end() ? nullptr : it->second;
}

void ShardSet::PrepareEpoch(std::uint64_t epoch,
                            std::shared_ptr<const CubeResult> cube) {
  SNCUBE_CHECK_MSG(cube != nullptr, "PrepareEpoch needs a cube");
  SNCUBE_CHECK_MSG(epoch > serving_epoch(),
                   "refresh epochs must advance monotonically");
  const CubeResult& full = *cube;
  // Partitioning and server spin-up happen outside the lock — a prepare can
  // be expensive and must not stall the request path's epoch resolution.
  auto st = BuildEpochState(epoch, std::move(cube), full);
  MutexLock lock(mu_);
  const bool inserted = epochs_.emplace(epoch, std::move(st)).second;
  SNCUBE_CHECK_MSG(inserted, "epoch already prepared");
}

void ShardSet::CommitShard(std::uint64_t epoch, int shard) {
  SNCUBE_CHECK(shard >= 0 && shard < n_);
  SNCUBE_CHECK_MSG(StateFor(epoch) != nullptr, "commit of unprepared epoch");
  hosted_[static_cast<std::size_t>(shard)]->shard_epoch.store(
      epoch, std::memory_order_release);
}

void ShardSet::FinalizeEpoch(std::uint64_t epoch) {
  std::vector<std::shared_ptr<EpochState>> retired;
  {
    MutexLock lock(mu_);
    SNCUBE_CHECK_MSG(epochs_.find(epoch) != epochs_.end(),
                     "finalize of unprepared epoch");
    // Keep `epoch` and its immediate predecessor: requests that pinned the
    // old serving epoch just before the flip are still in flight and must
    // drain against live servers. Anything older has had a full finalize
    // cycle to drain and retires now.
    for (auto it = epochs_.begin(); it != epochs_.end();) {
      if (it->first + 1 < epoch) {
        retired.push_back(std::move(it->second));
        it = epochs_.erase(it);
      } else {
        ++it;
      }
    }
    serving_epoch_.store(epoch, std::memory_order_release);
  }
  // Shutdown drains outside the lock (it blocks on worker quiescence, and
  // the request path needs mu_ to resolve epochs meanwhile).
  for (const auto& st : retired) {
    for (const auto& copy : st->copies) {
      copy.primary->Shutdown();
      copy.replica->Shutdown();
    }
  }
}

void ShardSet::AbandonEpoch(std::uint64_t epoch) {
  SNCUBE_CHECK_MSG(epoch != serving_epoch(),
                   "cannot abandon the serving epoch");
  std::shared_ptr<EpochState> st;
  {
    MutexLock lock(mu_);
    const auto it = epochs_.find(epoch);
    if (it == epochs_.end()) return;  // idempotent: abort paths may race
    st = std::move(it->second);
    epochs_.erase(it);
  }
  for (const auto& copy : st->copies) {
    copy.primary->Shutdown();
    copy.replica->Shutdown();
  }
}

std::vector<std::uint64_t> ShardSet::HostedEpochs() const {
  std::vector<std::uint64_t> out;
  MutexLock lock(mu_);
  out.reserve(epochs_.size());
  for (const auto& [e, st] : epochs_) out.push_back(e);
  return out;
}

ViewId ShardSet::RouteOnFull(const Query& query, std::uint64_t epoch) const {
  const auto st = StateFor(epoch);
  if (st == nullptr) {
    throw SncubeError("route against retired epoch " + std::to_string(epoch));
  }
  return st->engine->Route(query);
}

void ShardSet::Shutdown() {
  std::vector<std::shared_ptr<EpochState>> states;
  {
    MutexLock lock(mu_);
    states.reserve(epochs_.size());
    for (const auto& [e, st] : epochs_) states.push_back(st);
  }
  for (const auto& st : states) {
    for (const auto& copy : st->copies) {
      copy.primary->Shutdown();
      copy.replica->Shutdown();
    }
  }
}

const CubeServer& ShardSet::primary_server(int slice) const {
  SNCUBE_CHECK(slice >= 0 && slice < n_);
  const auto st = StateFor(serving_epoch());
  SNCUBE_CHECK(st != nullptr);
  // The serving epoch's state outlives this reference: it is retired (and
  // destroyed) no earlier than the finalize AFTER it stops serving.
  return *st->copies[static_cast<std::size_t>(slice)].primary;
}

const CubeServer& ShardSet::replica_server(int slice) const {
  SNCUBE_CHECK(slice >= 0 && slice < n_);
  const auto st = StateFor(serving_epoch());
  SNCUBE_CHECK(st != nullptr);
  return *st->copies[static_cast<std::size_t>(ReplicaShardOf(slice))].replica;
}

CubeServer* ShardSet::ServerIn(EpochState& st, int shard, int slice, int n) {
  SNCUBE_CHECK(shard >= 0 && shard < n && slice >= 0 && slice < n);
  auto& copy = st.copies[static_cast<std::size_t>(shard)];
  if (slice == shard) return copy.primary.get();
  SNCUBE_CHECK_MSG(shard == (slice + 1) % n, "shard does not host this slice");
  return copy.replica.get();
}

bool ShardSet::Killed(int shard, std::uint64_t seq) const {
  const auto& w = kills_[static_cast<std::size_t>(shard)];
  return w.has && seq >= w.from && seq < w.until;
}

double ShardSet::SlowFactor(int shard, std::uint64_t seq) const {
  const auto& w = slows_[static_cast<std::size_t>(shard)];
  return (w.has && seq >= w.from && seq < w.until) ? w.factor : 1.0;
}

void ShardSet::MaybeRestart(int shard, std::uint64_t seq) {
  const auto& w = kills_[static_cast<std::size_t>(shard)];
  if (!w.has || w.until == FaultPlan::kNoEnd || seq < w.until) return;
  HostedShard& hs = *hosted_[static_cast<std::size_t>(shard)];
  // Exactly one caller wins the exchange and clears the shard's hosted
  // caches across EVERY resident epoch — the restarted process comes back
  // cold, so answers cached against any pre-restart snapshot can never be
  // served stale.
  if (hs.restart_pending.exchange(false, std::memory_order_acq_rel)) {
    std::vector<std::shared_ptr<EpochState>> states;
    {
      MutexLock lock(mu_);
      states.reserve(epochs_.size());
      for (const auto& [e, st] : epochs_) states.push_back(st);
    }
    for (const auto& st : states) {
      auto& copy = st->copies[static_cast<std::size_t>(shard)];
      copy.primary->InvalidateCache();
      copy.replica->InvalidateCache();
    }
  }
}

bool ShardSet::Ping(int shard, std::uint64_t seq) {
  SNCUBE_CHECK(shard >= 0 && shard < n_);
  MaybeRestart(shard, seq);
  return !Killed(shard, seq);
}

TryResult ShardSet::ExecuteOnShard(int shard, int slice, const Query& query,
                                   std::uint64_t seq, std::uint64_t epoch) {
  MaybeRestart(shard, seq);
  TryResult res;
  const std::uint64_t t0 = clock_->NowMicros();
  if (Killed(shard, seq)) {
    // A dead shard fails fast ("connection refused"): no virtual time is
    // charged beyond what the clock already shows.
    res.outcome = TryOutcome::kShardDown;
    res.latency_us = clock_->NowMicros() - t0;
    return res;
  }

  // Epoch resolution. Pinned (production) mode honors the router's choice:
  // every sub-query of a request answers from the same snapshot, and a
  // retired pin is a typed failure, never another epoch's data. The
  // pin_epoch=false test hole reproduces the naive single-phase swap: each
  // shard answers from whatever IT last committed, so a scatter that spans a
  // half-committed swap blends two snapshots — the violation the refresh
  // chaos harness exists to catch.
  const std::uint64_t effective =
      options_.pin_epoch
          ? epoch
          : hosted_[static_cast<std::size_t>(shard)]->shard_epoch.load(
                std::memory_order_acquire);
  // Holding the shared_ptr keeps the epoch's servers alive across the wait
  // even if the epoch retires mid-request.
  const std::shared_ptr<EpochState> st = StateFor(effective);
  if (st == nullptr) {
    res.outcome = TryOutcome::kEpochGone;
    res.latency_us = clock_->NowMicros() - t0;
    return res;
  }

  CubeServer* server = ServerIn(*st, shard, slice, n_);
  Mutex mu;
  CondVar cv;
  bool ready = false;
  QueryOutcome qo = QueryOutcome::kFailed;
  std::shared_ptr<const QueryAnswer> answer;
  const SubmitStatus sub = server->Submit(
      query, [&](std::shared_ptr<const QueryAnswer> a, QueryOutcome o) {
        MutexLock lock(mu);
        answer = std::move(a);
        qo = o;
        ready = true;
        cv.NotifyOne();
      });
  if (sub == SubmitStatus::kRejected) {
    res.outcome = TryOutcome::kRejected;
    res.latency_us = clock_->NowMicros() - t0;
    return res;
  }
  if (sub == SubmitStatus::kShutdown) {
    res.outcome = TryOutcome::kShardDown;
    res.latency_us = clock_->NowMicros() - t0;
    return res;
  }
  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
  }
  switch (qo) {
    case QueryOutcome::kOk:
      res.outcome = TryOutcome::kOk;
      res.answer = std::move(answer);
      break;
    case QueryOutcome::kFailed:
      res.outcome = TryOutcome::kError;
      break;
    case QueryOutcome::kTimedOut:
      res.outcome = TryOutcome::kTimedOut;
      break;
  }

  const double factor = SlowFactor(shard, seq);
  if (factor > 1.0) {
    // Stretch the service time in VIRTUAL terms only: real compute time is
    // invisible to a ManualServeClock, so the floor is nominal_service_us —
    // this keeps a faulted run a deterministic function of the plan.
    const std::uint64_t virtual_elapsed = clock_->NowMicros() - t0;
    const std::uint64_t base =
        std::max(virtual_elapsed, options_.nominal_service_us);
    clock_->SleepMicros(
        static_cast<std::uint64_t>((factor - 1.0) * static_cast<double>(base)));
  }
  res.latency_us = clock_->NowMicros() - t0;
  return res;
}

}  // namespace sncube
