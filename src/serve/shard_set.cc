#include "serve/shard_set.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/status.h"

namespace sncube {

int SliceOfLeadingKey(Key value, int n_slices) {
  SNCUBE_DCHECK(n_slices >= 1);
  // FNV-1a over the key's four bytes: stable across runs and platforms,
  // matching the spirit of QueryKeyHash (serve/query_key.h).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (int i = 0; i < 4; ++i) {
    h ^= (static_cast<std::uint32_t>(value) >> (8 * i)) & 0xFFu;
    h *= 0x100000001b3ULL;
  }
  return static_cast<int>(h % static_cast<std::uint64_t>(n_slices));
}

std::vector<CubeResult> PartitionCubeForServing(const CubeResult& cube,
                                                int n_slices) {
  SNCUBE_CHECK(n_slices >= 1);
  std::vector<CubeResult> slices(static_cast<std::size_t>(n_slices));
  for (const auto& [id, vr] : cube.views) {
    // Every slice carries every view (possibly empty) so from_view-pinned
    // routing resolves against any slice.
    std::vector<ViewResult> shells(static_cast<std::size_t>(n_slices));
    for (auto& shell : shells) {
      shell.id = id;
      shell.order = vr.order;
      shell.selected = vr.selected;
      shell.rel = Relation(vr.rel.width());
    }
    if (id.empty()) {
      // The 0-dim "all" view has no leading dimension; its single row (if
      // materialized non-empty) is assigned to slice 0 by convention. The
      // router treats empty-view queries as point lookups on slice 0.
      for (std::size_t r = 0; r < vr.rel.size(); ++r) {
        shells[0].rel.AppendRow(vr.rel, r);
      }
    } else {
      // Column 0 is the leading (smallest-index, highest-cardinality)
      // dimension in the canonical layout. Appending in row order keeps
      // each slice sorted by vr.order — a subsequence of sorted rows.
      for (std::size_t r = 0; r < vr.rel.size(); ++r) {
        const int s = SliceOfLeadingKey(vr.rel.key(r, 0), n_slices);
        shells[static_cast<std::size_t>(s)].rel.AppendRow(vr.rel, r);
      }
    }
    for (int s = 0; s < n_slices; ++s) {
      slices[static_cast<std::size_t>(s)].views.emplace(
          id, std::move(shells[static_cast<std::size_t>(s)]));
    }
  }
  return slices;
}

const char* TryOutcomeName(TryOutcome o) {
  switch (o) {
    case TryOutcome::kOk: return "ok";
    case TryOutcome::kError: return "error";
    case TryOutcome::kRejected: return "rejected";
    case TryOutcome::kTimedOut: return "timed_out";
    case TryOutcome::kShardDown: return "shard_down";
  }
  return "unknown";
}

ShardSet::ShardSet(const CubeResult& cube, const ShardSetOptions& options,
                   const FaultPlan& plan)
    : n_(options.shards),
      options_(options),
      full_engine_(cube),
      clock_(options.clock != nullptr ? options.clock : &wall_clock_),
      slices_(PartitionCubeForServing(cube, options.shards)),
      kills_(static_cast<std::size_t>(options.shards)),
      slows_(static_cast<std::size_t>(options.shards)) {
  SNCUBE_CHECK(n_ >= 1);
  for (const auto& sk : plan.shard_kills) {
    SNCUBE_CHECK_MSG(sk.shard >= 0 && sk.shard < n_,
                     "shardkill clause targets nonexistent shard");
    auto& w = kills_[static_cast<std::size_t>(sk.shard)];
    w.has = true;
    w.from = sk.from;
    w.until = sk.until;
  }
  for (const auto& sl : plan.shard_slows) {
    SNCUBE_CHECK_MSG(sl.shard >= 0 && sl.shard < n_,
                     "shardslow clause targets nonexistent shard");
    auto& w = slows_[static_cast<std::size_t>(sl.shard)];
    w.has = true;
    w.from = sl.from;
    w.until = sl.until;
    w.factor = sl.factor;
  }
  hosted_.reserve(static_cast<std::size_t>(n_));
  for (int s = 0; s < n_; ++s) {
    auto hs = std::make_unique<HostedShard>();
    hs->primary = std::make_unique<CubeServer>(
        slices_[static_cast<std::size_t>(s)], options_.server);
    hs->replica = std::make_unique<CubeServer>(
        slices_[static_cast<std::size_t>((s - 1 + n_) % n_)], options_.server);
    // A finite kill window owes exactly one restart invalidation when it
    // closes; an endless one never restarts.
    const auto& kw = kills_[static_cast<std::size_t>(s)];
    hs->restart_pending.store(kw.has && kw.until != FaultPlan::kNoEnd,
                              std::memory_order_relaxed);
    hosted_.push_back(std::move(hs));
  }
}

ShardSet::~ShardSet() { Shutdown(); }

void ShardSet::Shutdown() {
  for (auto& hs : hosted_) {
    hs->primary->Shutdown();
    hs->replica->Shutdown();
  }
}

const CubeServer& ShardSet::primary_server(int slice) const {
  SNCUBE_CHECK(slice >= 0 && slice < n_);
  return *hosted_[static_cast<std::size_t>(slice)]->primary;
}

const CubeServer& ShardSet::replica_server(int slice) const {
  SNCUBE_CHECK(slice >= 0 && slice < n_);
  return *hosted_[static_cast<std::size_t>(ReplicaShardOf(slice))]->replica;
}

CubeServer* ShardSet::ServerFor(int shard, int slice) {
  SNCUBE_CHECK(shard >= 0 && shard < n_ && slice >= 0 && slice < n_);
  HostedShard& hs = *hosted_[static_cast<std::size_t>(shard)];
  if (slice == shard) return hs.primary.get();
  SNCUBE_CHECK_MSG(shard == ReplicaShardOf(slice),
                   "shard does not host this slice");
  return hs.replica.get();
}

bool ShardSet::Killed(int shard, std::uint64_t seq) const {
  const auto& w = kills_[static_cast<std::size_t>(shard)];
  return w.has && seq >= w.from && seq < w.until;
}

double ShardSet::SlowFactor(int shard, std::uint64_t seq) const {
  const auto& w = slows_[static_cast<std::size_t>(shard)];
  return (w.has && seq >= w.from && seq < w.until) ? w.factor : 1.0;
}

void ShardSet::MaybeRestart(int shard, std::uint64_t seq) {
  const auto& w = kills_[static_cast<std::size_t>(shard)];
  if (!w.has || w.until == FaultPlan::kNoEnd || seq < w.until) return;
  HostedShard& hs = *hosted_[static_cast<std::size_t>(shard)];
  // Exactly one caller wins the exchange and clears both hosted caches —
  // the restarted process comes back cold, so answers cached against the
  // pre-restart snapshot can never be served stale.
  if (hs.restart_pending.exchange(false, std::memory_order_acq_rel)) {
    hs.primary->InvalidateCache();
    hs.replica->InvalidateCache();
  }
}

bool ShardSet::Ping(int shard, std::uint64_t seq) {
  SNCUBE_CHECK(shard >= 0 && shard < n_);
  MaybeRestart(shard, seq);
  return !Killed(shard, seq);
}

TryResult ShardSet::ExecuteOnShard(int shard, int slice, const Query& query,
                                   std::uint64_t seq) {
  MaybeRestart(shard, seq);
  TryResult res;
  const std::uint64_t t0 = clock_->NowMicros();
  if (Killed(shard, seq)) {
    // A dead shard fails fast ("connection refused"): no virtual time is
    // charged beyond what the clock already shows.
    res.outcome = TryOutcome::kShardDown;
    res.latency_us = clock_->NowMicros() - t0;
    return res;
  }

  CubeServer* server = ServerFor(shard, slice);
  Mutex mu;
  CondVar cv;
  bool ready = false;
  QueryOutcome qo = QueryOutcome::kFailed;
  std::shared_ptr<const QueryAnswer> answer;
  const SubmitStatus st = server->Submit(
      query, [&](std::shared_ptr<const QueryAnswer> a, QueryOutcome o) {
        MutexLock lock(mu);
        answer = std::move(a);
        qo = o;
        ready = true;
        cv.NotifyOne();
      });
  if (st == SubmitStatus::kRejected) {
    res.outcome = TryOutcome::kRejected;
    res.latency_us = clock_->NowMicros() - t0;
    return res;
  }
  if (st == SubmitStatus::kShutdown) {
    res.outcome = TryOutcome::kShardDown;
    res.latency_us = clock_->NowMicros() - t0;
    return res;
  }
  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
  }
  switch (qo) {
    case QueryOutcome::kOk:
      res.outcome = TryOutcome::kOk;
      res.answer = std::move(answer);
      break;
    case QueryOutcome::kFailed:
      res.outcome = TryOutcome::kError;
      break;
    case QueryOutcome::kTimedOut:
      res.outcome = TryOutcome::kTimedOut;
      break;
  }

  const double factor = SlowFactor(shard, seq);
  if (factor > 1.0) {
    // Stretch the service time in VIRTUAL terms only: real compute time is
    // invisible to a ManualServeClock, so the floor is nominal_service_us —
    // this keeps a faulted run a deterministic function of the plan.
    const std::uint64_t virtual_elapsed = clock_->NowMicros() - t0;
    const std::uint64_t base =
        std::max(virtual_elapsed, options_.nominal_service_us);
    clock_->SleepMicros(
        static_cast<std::uint64_t>((factor - 1.0) * static_cast<double>(base)));
  }
  res.latency_us = clock_->NowMicros() - t0;
  return res;
}

}  // namespace sncube
