#include "serve/health.h"

namespace sncube {

const char* BreakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "?";
}

bool CircuitBreaker::AllowRequest(std::uint64_t now_us) {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now_us - opened_at_us_ < options_.cooldown_us) return false;
      state_ = BreakerState::kHalfOpen;
      ++half_opened_;
      probes_in_flight_ = 0;
      probe_successes_ = 0;
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      if (probes_in_flight_ >= options_.half_open_probes) return false;
      ++probes_in_flight_;
      return true;
  }
  return false;
}

void CircuitBreaker::OnSuccess(std::uint64_t now_us) {
  switch (state_) {
    case BreakerState::kClosed:
      // Age out stale failures so the window reflects recent health only.
      while (!failure_times_.empty() &&
             now_us - failure_times_.front() > options_.window_us) {
        failure_times_.pop_front();
      }
      return;
    case BreakerState::kHalfOpen:
      if (++probe_successes_ >= options_.half_open_probes) {
        state_ = BreakerState::kClosed;
        ++closed_;
        failure_times_.clear();
        probes_in_flight_ = 0;
        probe_successes_ = 0;
      }
      return;
    case BreakerState::kOpen:
      // A straggler response from before the breaker opened; ignore.
      return;
  }
}

void CircuitBreaker::OnFailure(std::uint64_t now_us) {
  switch (state_) {
    case BreakerState::kClosed:
      failure_times_.push_back(now_us);
      while (!failure_times_.empty() &&
             now_us - failure_times_.front() > options_.window_us) {
        failure_times_.pop_front();
      }
      if (static_cast<int>(failure_times_.size()) >=
          options_.failure_threshold) {
        Open(now_us);
      }
      return;
    case BreakerState::kHalfOpen:
      // One failed probe is enough evidence the shard is still sick.
      Open(now_us);
      return;
    case BreakerState::kOpen:
      return;
  }
}

void CircuitBreaker::Open(std::uint64_t now_us) {
  state_ = BreakerState::kOpen;
  opened_at_us_ = now_us;
  ++opened_;
  failure_times_.clear();
  probes_in_flight_ = 0;
  probe_successes_ = 0;
}

void LoadShedder::Note(bool pressure) {
  MutexLock lock(mu_);
  window_.push_back(pressure);
  if (pressure) ++pressure_;
  while (static_cast<int>(window_.size()) > options_.window) {
    if (window_.front()) --pressure_;
    window_.pop_front();
  }
}

int LoadShedder::Level() const {
  MutexLock lock(mu_);
  if (pressure_ >= options_.shed_point_at) return 2;
  if (pressure_ >= options_.shed_scatter_at) return 1;
  return 0;
}

}  // namespace sncube
