// Synthetic OLAP query workloads for the serving layer.
//
// Real dashboard traffic is a small pool of distinct queries hit with very
// skewed popularity — a handful of hot group-bys dominate. QueryMix models
// that: a deterministic pool of `pool_size` distinct queries (random
// group-bys drawn from materialized views, optional slice filters and
// top-k), sampled with Zipf(alpha) popularity over the pool rank (alpha = 0
// uniform, alpha = 1 classic web skew — reusing common/zipf.h, the same
// skew model the paper uses for data generation). Every query in the pool
// is routable by construction: its dimensions are a subset of a
// materialized view's.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "query/engine.h"
#include "relation/schema.h"
#include "seqcube/cube_result.h"

namespace sncube {

struct WorkloadSpec {
  int pool_size = 256;        // distinct queries in the mix
  double alpha = 1.0;         // Zipf skew of query popularity over the pool
  double filter_prob = 0.25;  // chance a query carries one equality filter
  double topk_prob = 0.10;    // chance a query asks for top-10
  std::uint64_t seed = 42;
};

class QueryMix {
 public:
  // Builds the pool from the cube's selected views; `schema` bounds filter
  // values. Deterministic under `spec.seed`.
  QueryMix(const CubeResult& cube, const Schema& schema, WorkloadSpec spec);

  // Draws one query by Zipf-ranked popularity. Thread-safe as long as each
  // thread brings its own Rng (the mix itself is immutable after build).
  const Query& Sample(Rng& rng) const;

  const std::vector<Query>& pool() const { return pool_; }

 private:
  std::vector<Query> pool_;
  ZipfSampler popularity_;
};

}  // namespace sncube
