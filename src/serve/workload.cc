#include "serve/workload.h"

#include <algorithm>

#include "common/status.h"

namespace sncube {

QueryMix::QueryMix(const CubeResult& cube, const Schema& schema,
                   WorkloadSpec spec)
    : popularity_(static_cast<std::uint32_t>(
                      spec.pool_size > 0 ? spec.pool_size : 1),
                  spec.alpha) {
  SNCUBE_CHECK(spec.pool_size >= 1);
  std::vector<ViewId> selected;
  for (const auto& [id, vr] : cube.views) {
    if (vr.selected) selected.push_back(id);
  }
  SNCUBE_CHECK_MSG(!selected.empty(), "cube has no selected views");
  // unordered_map order is not deterministic; fix it.
  std::sort(selected.begin(), selected.end());

  Rng rng(spec.seed);
  pool_.reserve(static_cast<std::size_t>(spec.pool_size));
  for (int i = 0; i < spec.pool_size; ++i) {
    // Pick a materialized view, then group by a random subset of its
    // dimensions — routable by construction (the view covers it).
    const ViewId base = selected[rng.Below(selected.size())];
    const std::vector<int> dims = base.DimList();
    Query q;
    for (int d : dims) {
      if (rng.NextDouble() < 0.5) q.group_by = q.group_by.With(d);
    }
    // Optional slice: filter one of the view's remaining dimensions so the
    // query still routes within `base` (or an even smaller cover).
    if (!dims.empty() && rng.NextDouble() < spec.filter_prob) {
      const int fd = dims[rng.Below(dims.size())];
      if (!q.group_by.Contains(fd)) {
        const Key v = static_cast<Key>(rng.Below(schema.cardinality(fd)));
        q.filters.push_back({fd, v});
      }
    }
    if (rng.NextDouble() < spec.topk_prob && !q.group_by.empty()) {
      q.top_k = 10;
    }
    pool_.push_back(std::move(q));
  }
}

const Query& QueryMix::Sample(Rng& rng) const {
  return pool_[popularity_.Sample(rng)];
}

}  // namespace sncube
