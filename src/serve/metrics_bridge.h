// Bridges the serving layer's counters into the unified MetricsRegistry.
//
// CubeServer keeps its hot-path metrics in purpose-built lock-free
// structures (atomic counters, LatencyHistogram); this adapter copies one
// point-in-time snapshot of them into a registry under the DESIGN.md §10
// names (serve.accepted, serve.cache.hits, serve.latency_us, ...), so a
// serve run reports through the same sink as a build run. Counters in the
// registry accumulate — absorb once per server lifetime (at shutdown), not
// periodically, unless accumulation is what you want.
#pragma once

#include "obs/metrics_registry.h"
#include "serve/server.h"

namespace sncube {

void AbsorbServerStats(obs::MetricsRegistry& registry,
                       const CubeServer& server);

}  // namespace sncube
