// Bridges the serving layer's counters into the unified MetricsRegistry.
//
// CubeServer keeps its hot-path metrics in purpose-built lock-free
// structures (atomic counters, LatencyHistogram); this adapter copies one
// point-in-time snapshot of them into a registry under the DESIGN.md §10
// names (serve.accepted, serve.cache.hits, serve.latency_us, ...), so a
// serve run reports through the same sink as a build run. Counters in the
// registry accumulate — absorb once per server lifetime (at shutdown), not
// periodically, unless accumulation is what you want.
// The resilient router reports the same way under serve.router.* —
// per-outcome counts (ok/failed/timed_out/shed/unavailable), retry/hedge/
// budget activity, per-shard breaker transitions, and split ok/error
// latency histograms — so one registry dump shows both what the shard
// servers did and what the failure policy above them decided.
#pragma once

#include "obs/metrics_registry.h"
#include "serve/router.h"
#include "serve/server.h"

namespace sncube {

void AbsorbServerStats(obs::MetricsRegistry& registry,
                       const CubeServer& server);

void AbsorbRouterStats(obs::MetricsRegistry& registry, const Router& router);

}  // namespace sncube
