#include "serve/query_key.h"

#include <algorithm>
#include <cstdint>

namespace sncube {

namespace {

void AppendU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

}  // namespace

std::string CanonicalQueryKey(const Query& q) {
  // Normalize the filter list: order is irrelevant to the answer, and a
  // repeated (dim, value) pair is a no-op.
  std::vector<DimFilter> filters = q.filters;
  std::sort(filters.begin(), filters.end(),
            [](const DimFilter& a, const DimFilter& b) {
              if (a.dim != b.dim) return a.dim < b.dim;
              return a.value < b.value;
            });
  filters.erase(std::unique(filters.begin(), filters.end(),
                            [](const DimFilter& a, const DimFilter& b) {
                              return a.dim == b.dim && a.value == b.value;
                            }),
                filters.end());

  std::string key;
  key.reserve(4 * (6 + 2 * filters.size()));
  AppendU32(key, q.group_by.mask());
  AppendU32(key, static_cast<std::uint32_t>(q.fn));
  AppendU32(key, static_cast<std::uint32_t>(q.top_k));
  // from_view changes which rows a SHARD-LOCAL answer covers (a slice of
  // view V and a slice of view W aggregate different row subsets), so it is
  // part of the key. The presence flag keeps "pinned to the empty view"
  // (mask 0) distinct from "not pinned".
  AppendU32(key, q.from_view.has_value() ? 1u : 0u);
  AppendU32(key, q.from_view.has_value() ? q.from_view->mask() : 0u);
  AppendU32(key, static_cast<std::uint32_t>(filters.size()));
  for (const auto& f : filters) {
    AppendU32(key, static_cast<std::uint32_t>(f.dim));
    AppendU32(key, f.value);
  }
  return key;
}

std::uint64_t QueryKeyHash(const std::string& key) {
  // FNV-1a: stable across platforms, unlike std::hash<std::string>.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace sncube
