#include "serve/latency_histogram.h"

#include <bit>
#include <cmath>

namespace sncube {

namespace {

// Lower/upper bounds of bucket i: [2^(i-1), 2^i); bucket 0 is exactly 0.
double BucketLower(int i) { return i == 0 ? 0.0 : std::ldexp(1.0, i - 1); }
double BucketUpper(int i) { return i == 0 ? 1.0 : std::ldexp(1.0, i); }

}  // namespace

void LatencyHistogram::Record(std::uint64_t micros) {
  const int bucket = micros == 0 ? 0 : std::bit_width(micros);
  buckets_[static_cast<std::size_t>(bucket < kBuckets ? bucket : kBuckets - 1)]
      .fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(micros, std::memory_order_relaxed);
  std::uint64_t prev = max_us_.load(std::memory_order_relaxed);
  while (prev < micros && !max_us_.compare_exchange_weak(
                              prev, micros, std::memory_order_relaxed)) {
  }
}

std::array<std::uint64_t, LatencyHistogram::kBuckets>
LatencyHistogram::BucketCounts() const {
  std::array<std::uint64_t, kBuckets> counts;
  for (int i = 0; i < kBuckets; ++i) {
    counts[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  return counts;
}

LatencySnapshot LatencyHistogram::Snapshot() const {
  std::array<std::uint64_t, kBuckets> counts;
  LatencySnapshot snap;
  for (int i = 0; i < kBuckets; ++i) {
    counts[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    snap.count += counts[static_cast<std::size_t>(i)];
  }
  snap.sum_us = sum_us_.load(std::memory_order_relaxed);
  snap.max_us = max_us_.load(std::memory_order_relaxed);
  if (snap.count == 0) return snap;

  // Quantile by cumulative walk; linear interpolation inside the bucket.
  const auto quantile = [&](double q) {
    const double target = q * static_cast<double>(snap.count);
    std::uint64_t cum = 0;
    for (int i = 0; i < kBuckets; ++i) {
      const std::uint64_t c = counts[static_cast<std::size_t>(i)];
      if (c == 0) continue;
      if (static_cast<double>(cum + c) >= target) {
        const double within =
            (target - static_cast<double>(cum)) / static_cast<double>(c);
        return BucketLower(i) + within * (BucketUpper(i) - BucketLower(i));
      }
      cum += c;
    }
    return static_cast<double>(snap.max_us);
  };
  snap.p50_us = quantile(0.50);
  snap.p95_us = quantile(0.95);
  snap.p99_us = quantile(0.99);
  return snap;
}

}  // namespace sncube
