// CubeServer — concurrent query serving over an immutable materialized cube.
//
// The paper materializes the cube so that "subsequent OLAP queries" are
// cheap; this layer is where those queries actually land. A CubeServer owns
// a fixed pool of worker threads draining one bounded FIFO request queue:
//
//   clients ── Submit ──▶ [bounded queue] ──▶ workers ──▶ cache / engine
//                │ full?                            │
//                └─ kRejected (admission control)   └─ callback(answer)
//
// Admission control is reject-on-overflow: when the queue holds
// `queue_depth` requests, Submit fails fast with kRejected instead of
// blocking the client — under overload a bounded queue plus rejection keeps
// tail latency flat where an unbounded queue would grow it without limit.
//
// The read path is lock-free with respect to the cube: CubeQueryEngine is
// logically const over an immutable CubeResult (see the thread-safety
// contract in query/engine.h), so any number of workers execute queries
// concurrently with no synchronization on cube data. Shared mutable state is
// confined to the request queue (one mutex), the sharded result cache
// (per-shard mutexes), and atomic metrics.
//
// Shutdown() is graceful: already-accepted requests are drained and their
// callbacks run; subsequent Submits return kShutdown.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/trace.h"
#include "query/engine.h"
#include "serve/latency_histogram.h"
#include "serve/lock_order.h"
#include "serve/result_cache.h"
#include "serve/wall_clock.h"

namespace sncube {

struct ServerOptions {
  int workers = 4;                          // worker threads (>= 1)
  std::size_t queue_depth = 256;            // max queued requests (>= 1)
  std::size_t cache_bytes = 64u << 20;      // result cache budget; 0 = off
  int cache_shards = 16;
  // Per-request deadline, measured from Submit (millisecond literals convert
  // implicitly). A request still queued when its deadline expires is dropped
  // at dequeue: its callback runs with kTimedOut and a null answer, and no
  // query work is done for it. A request whose deadline expires WHILE
  // executing also reports kTimedOut with a null answer — the client stopped
  // waiting, so handing it the late answer would misreport the request as
  // served within budget — and is additionally counted in
  // deadline_exceeded_in_flight. Zero disables deadlines. Under overload this
  // sheds exactly the requests whose answers the client has already given up
  // on.
  std::chrono::microseconds deadline{0};
  // When set, every worker records a wall-clock span trace ("request" →
  // "cache-lookup"/"query-exec"/...; rank = worker index) and deposits it
  // here when it retires at Shutdown. The sink must outlive the server.
  // Null (the default) keeps the hot path trace-free.
  obs::TraceSink* trace = nullptr;
  // Snapshot epoch this server's cube belongs to (src/refresh). Every cache
  // entry is stamped with it, so a shared or recycled ResultCache can never
  // serve this epoch's answers to a request pinned to another epoch.
  std::uint64_t epoch = 0;
  // Test-only: runs on the worker thread after the dequeue deadline check
  // passes and before the cache lookup / query execution. Lets tests hold a
  // request in flight deterministically (e.g. to pin the
  // deadline_exceeded_in_flight path without timing races). Null in
  // production.
  std::function<void(const Query&)> pre_execute_hook;
};

enum class SubmitStatus : std::uint8_t {
  kAccepted,   // enqueued; callback will run on a worker thread
  kRejected,   // queue full — overload, client should back off
  kShutdown,   // server is stopping; no new work accepted
};

// How an accepted request terminated (second callback argument).
enum class QueryOutcome : std::uint8_t {
  kOk,        // answer is non-null
  kFailed,    // execution threw (e.g. no covering view); answer is null
  kTimedOut,  // deadline expired (queued or in flight); answer is null
};

// Point-in-time view of the server's counters, printable as JSON.
struct StatsSnapshot {
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;        // queries that threw (e.g. no covering view)
  std::uint64_t timed_out = 0;     // deadline expired (queued or in flight)
  // Subset of timed_out: the deadline expired while the query was executing,
  // not while it sat in the queue. A high ratio here means per-query work —
  // not queueing — is what blows the budget, so shrinking the queue won't
  // help; the deadline or the query cost has to change.
  std::uint64_t deadline_exceeded_in_flight = 0;
  std::uint64_t queue_depth = 0;   // current
  std::uint64_t queue_depth_max = 0;  // configured bound
  CacheStats cache;
  LatencySnapshot latency;         // end-to-end: Submit → callback done

  double hit_rate() const {
    const std::uint64_t lookups = cache.hits + cache.misses;
    return lookups == 0 ? 0.0 : static_cast<double>(cache.hits) / lookups;
  }
  // Single-line JSON record (the shape BENCH_serve.json embeds).
  std::string ToJson() const;
};

class CubeServer {
 public:
  // The cube must outlive the server and MUST NOT be mutated while the
  // server is running — all workers read it without locks.
  explicit CubeServer(const CubeResult& cube, ServerOptions options = {});
  ~CubeServer();

  CubeServer(const CubeServer&) = delete;
  CubeServer& operator=(const CubeServer&) = delete;

  // Asynchronous entry point. On kAccepted the callback runs exactly once on
  // a worker thread with the answer (cached or freshly computed) and the
  // outcome; on execution error or an expired deadline the answer is nullptr
  // and the outcome says which. On kRejected/kShutdown the callback never
  // runs.
  using Callback =
      std::function<void(std::shared_ptr<const QueryAnswer>, QueryOutcome)>;
  SubmitStatus Submit(const Query& query, Callback done) SNCUBE_EXCLUDES(mu_);

  // Synchronous convenience: Submit + wait. Returns nullptr when the request
  // was rejected (overload), shut out, or failed to execute.
  std::shared_ptr<const QueryAnswer> Execute(const Query& query);

  // Drains accepted requests, then joins the workers. Idempotent, and
  // blocking for every caller: any Shutdown call (including a concurrent
  // second one, e.g. the destructor racing an explicit Shutdown) returns
  // only after the queue is drained and all worker threads have exited — so
  // returning from Shutdown always means the server is fully quiescent.
  void Shutdown() SNCUBE_EXCLUDES(mu_);

  StatsSnapshot Stats() const SNCUBE_EXCLUDES(mu_);
  const ServerOptions& options() const { return options_; }

  // Drops every cached answer (CacheStats::invalidations counts them). The
  // sharded serving tier calls this when the shard restarts after a fault:
  // the cache was filled against the pre-restart snapshot. Safe to call
  // concurrently with serving.
  void InvalidateCache() { cache_.Clear(); }

  // The raw latency histogram, for export into a MetricsRegistry
  // (serve/metrics_bridge.h). Safe to read concurrently with serving.
  const LatencyHistogram& latency_histogram() const { return latency_; }

 private:
  struct Request {
    Query query;
    std::string key;
    Callback done;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop(int worker) SNCUBE_EXCLUDES(mu_);
  void Process(Request& req);

  const ServerOptions options_;
  CubeQueryEngine engine_;
  ResultCache cache_;
  LatencyHistogram latency_;
  // Shared trace epoch for all workers (immutable after construction; only
  // read when options_.trace is set).
  WallClockSource trace_clock_;

  // Server layer of the serve lock hierarchy (serve/lock_order.h): guards
  // queue admission and shutdown state; cache-shard locks may be taken below
  // it (workers hold nothing while calling into the cache today), never
  // above it.
  mutable Mutex mu_ SNCUBE_ACQUIRED_AFTER(kServerLayer)
      SNCUBE_ACQUIRED_BEFORE(kCacheLayer);
  CondVar queue_cv_;    // signaled on enqueue and on shutdown
  CondVar drained_cv_;  // signaled when the last live worker exits
  std::deque<Request> queue_ SNCUBE_GUARDED_BY(mu_);
  bool stopping_ SNCUBE_GUARDED_BY(mu_) = false;
  // Workers still running WorkerLoop. Shutdown waits for this to reach zero
  // before joining, so every Shutdown caller blocks until quiescence.
  int live_workers_ SNCUBE_GUARDED_BY(mu_) = 0;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> deadline_exceeded_in_flight_{0};

  // Joined (and cleared) under mu_ by whichever Shutdown caller gets there
  // first; by then live_workers_ == 0, so no worker needs mu_ again and
  // joining under the lock cannot deadlock.
  std::vector<std::thread> workers_ SNCUBE_GUARDED_BY(mu_);
};

}  // namespace sncube
