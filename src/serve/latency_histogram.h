// Lock-free latency histogram with quantile snapshots.
//
// Record() buckets a microsecond latency into one of 64 power-of-two bins
// (bucket i holds values in [2^(i-1), 2^i), bucket 0 holds {0}) and bumps an
// atomic counter — no locks, no allocation, safe from any number of threads
// on the serving hot path. Snapshot() reads the counters and interpolates
// p50/p95/p99 within the winning bucket. Power-of-two bins bound the
// quantile error at 2× worst case — the right trade for an overload signal,
// matching the phase-attribution spirit of src/net/metrics.h where
// exactness matters less than attribution.
//
// Memory orders (audited for PR 3; every operation is deliberately
// std::memory_order_relaxed):
//
//   * No Record() publishes data that a Snapshot() reader dereferences —
//     the counters ARE the data. There is no acquire/release pairing to
//     make, so relaxed loses nothing and anything stronger would buy
//     nothing but fences on the hot path.
//   * Each counter is individually monotone, so a relaxed Snapshot is some
//     valid histogram: every bucket count was genuinely reached at some
//     point. Cross-counter skew (a recorded value counted in sum_us_ but
//     whose bucket increment is not yet visible) can transiently shift
//     mean vs. quantiles by one sample — irrelevant to an overload signal.
//   * max_us_ uses a relaxed compare-exchange loop: the loop's correctness
//     is ensured by CAS atomicity (a lost race re-reads the new maximum),
//     not by ordering. On failure the CAS reloads `prev` itself, which is
//     why the loop condition re-tests `prev < micros`.
//
// If a future reader ever needs "snapshot at least as new as X", add an
// explicit fence or seq_cst counter then — do not upgrade these orders
// speculatively.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace sncube {

struct LatencySnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum_us = 0;
  std::uint64_t max_us = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;

  double mean_us() const {
    return count == 0 ? 0.0 : static_cast<double>(sum_us) / count;
  }
};

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(std::uint64_t micros);

  LatencySnapshot Snapshot() const;

  // Raw bucket counts (relaxed loads), for export into the unified metrics
  // registry (obs::Histogram uses the identical bucket scheme, so counts
  // transfer index-for-index — see serve/metrics_bridge.h).
  std::array<std::uint64_t, kBuckets> BucketCounts() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_us_{0};
  std::atomic<std::uint64_t> max_us_{0};
};

}  // namespace sncube
