// Lock-free latency histogram with quantile snapshots.
//
// Record() buckets a microsecond latency into one of 64 power-of-two bins
// (bucket i holds values in [2^(i-1), 2^i), bucket 0 holds {0}) and bumps an
// atomic counter — no locks, no allocation, safe from any number of threads
// on the serving hot path. Snapshot() reads the counters (relaxed; the
// histogram is monotone so a torn snapshot is still a valid histogram from
// some recent moment) and interpolates p50/p95/p99 within the winning
// bucket. Power-of-two bins bound the quantile error at 2× worst case —
// the right trade for an overload signal, matching the phase-attribution
// spirit of src/net/metrics.h where exactness matters less than attribution.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace sncube {

struct LatencySnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum_us = 0;
  std::uint64_t max_us = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;

  double mean_us() const {
    return count == 0 ? 0.0 : static_cast<double>(sum_us) / count;
  }
};

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(std::uint64_t micros);

  LatencySnapshot Snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_us_{0};
  std::atomic<std::uint64_t> max_us_{0};
};

}  // namespace sncube
