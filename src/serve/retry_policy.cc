#include "serve/retry_policy.h"

#include <chrono>
#include <thread>

namespace sncube {

namespace {

std::uint64_t SteadyNowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

WallServeClock::WallServeClock() : epoch_us_(SteadyNowMicros()) {}

std::uint64_t WallServeClock::NowMicros() const {
  return SteadyNowMicros() - epoch_us_;
}

void WallServeClock::SleepMicros(std::uint64_t us) {
  if (us == 0) return;
  // The ONE sanctioned sleep in src/serve (sncheck `raw-sleep`): every
  // backoff, hedge delay, and injected-slowness wait funnels through here,
  // so replacing the clock replaces all waiting behavior at once.
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace sncube
