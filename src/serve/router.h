// Resilient front door for the sharded serving tier — all failure POLICY
// lives here, while serve/shard_set.h is pure data plane.
//
// One Router::Execute call is one client request. The router:
//
//   1. routes the query to its answering view (over the full cube, so all
//      slices agree), and classifies it POINT (filters pin the view's
//      leading dimension → exactly one slice holds the answer) or SCATTER
//      (every slice contributes a partial that is merged and re-topped-K);
//   2. consults the load shedder: level 1 sheds scatter rollups (one slow
//      slice stalls the whole fan-out), level 2 sheds points too — strictly
//      in that priority order, so cheap queries survive longest;
//   3. runs each needed slice through the retry/hedge policy: per-try
//      deadline on virtual latency, primary/replica alternation, a
//      circuit breaker per shard (serve/health.h) gating tries, capped
//      exponential backoff between attempts, all retries and hedges paid
//      from one global RetryBudget so failure amplification is bounded;
//   4. merges scatter partials with MergeSortedAggregate and re-applies
//      top-k — or returns a TYPED failure. The invariant the chaos
//      explorer enforces: a response is bit-correct, a typed error, or an
//      explicit shed. Never a silently wrong answer.
//
// The router is synchronous and thread-safe; every time decision flows
// through the ShardSet's ServeClock, so under a ManualServeClock the full
// retry/hedge/breaker/shed trajectory is a deterministic function of
// (fault plan, request sequence) — which is what lets unit tests pin exact
// breaker transitions with no wall-clock dependence.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "serve/health.h"
#include "serve/latency_histogram.h"
#include "serve/retry_policy.h"
#include "serve/shard_set.h"

namespace sncube {

struct RouterOptions {
  // Per-try deadline on VIRTUAL latency: a try whose measured latency
  // exceeds this is treated as timed out and its answer discarded (safe —
  // discarding a correct answer can never produce a wrong one). 0 disables.
  std::uint64_t per_try_us = 50000;
  // Total tries per slice (1 initial + retries). Attempts alternate
  // primary/replica so a dead primary fails over on the first retry.
  int max_tries = 3;
  // A SUCCESSFUL try at least this slow also tries the other replica and
  // keeps the faster result (sequential hedge; costs one budget token).
  // 0 disables hedging.
  std::uint64_t hedge_delay_us = 0;
  BackoffPolicy backoff;            // wait between tries (virtual sleep)
  double retry_budget_ratio = 0.1;  // tokens earned per admitted request
  double retry_budget_burst = 10.0; // token cap
  BreakerOptions breaker;           // per-shard circuit breaker
  LoadShedder::Options shedder;
  // Probe every shard's reachability once per this many requests (drives
  // open → half-open → closed recovery without client traffic). 0 = off.
  int probe_every = 64;
  // TEST-ONLY escape hatch (cf. CheckpointOptions::verify_restore): false
  // stops the router from pinning Query::from_view across a scatter,
  // letting each slice route its sub-query independently. That re-opens the
  // mixed-view wrong-answer bug (each view is partitioned by its own
  // leading dimension, so partials from different views lose or double
  // count facts) so the serve chaos harness can demonstrate catching a real
  // corruption. Never set this in production paths.
  bool pin_scatter_view = true;
};

enum class RouterOutcome : std::uint8_t {
  kOk,           // answer present and correct
  kFailed,       // deterministic execution error (e.g. no covering view)
  kTimedOut,     // per-try/shard deadlines exhausted the try allowance
  kShed,         // load shedder refused the request (explicit, typed)
  kUnavailable,  // shards down/overloaded and retries/budget exhausted
};

const char* RouterOutcomeName(RouterOutcome o);

struct RouterResult {
  RouterOutcome outcome = RouterOutcome::kFailed;
  std::shared_ptr<const QueryAnswer> answer;  // non-null iff kOk
  bool scatter = false;  // true when the query fanned out to all slices
  int tries = 0;         // shard tries actually issued (incl. hedges)
  // The snapshot epoch this request was pinned to — read once from
  // ShardSet::serving_epoch() at entry and used for routing and EVERY shard
  // try, so a kOk answer is entirely from this one epoch even when a refresh
  // swap lands mid-request.
  std::uint64_t epoch = 0;
};

// Point-in-time router counters, printable as JSON.
struct RouterStatsSnapshot {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t shed = 0;
  std::uint64_t unavailable = 0;
  std::uint64_t point_queries = 0;
  std::uint64_t scatter_queries = 0;
  std::uint64_t retries = 0;           // budget-paid re-tries
  std::uint64_t hedges = 0;            // budget-paid hedge tries
  std::uint64_t hedge_wins = 0;        // hedge returned faster than original
  std::uint64_t budget_exhausted = 0;  // retries denied by the budget
  std::uint64_t probes = 0;
  std::vector<ShardHealth::Snapshot> shard_health;  // index = shard
  LatencySnapshot ok_latency;     // end-to-end, successful requests
  LatencySnapshot error_latency;  // end-to-end, failed/timed-out/unavailable

  std::string ToJson() const;
};

class Router {
 public:
  // `shards` must outlive the router. Policy time runs on shards.clock().
  explicit Router(ShardSet& shards, RouterOptions options = RouterOptions());

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  RouterResult Execute(const Query& query);

  // One reachability probe per shard, feeding the breakers. Runs
  // automatically every options.probe_every requests; callable directly
  // (tests, recovery sweeps).
  void ProbeShards();

  RouterStatsSnapshot Stats() const;

  // Breaker state for `shard` right now (tests and CLI reporting).
  BreakerState ShardBreakerState(int shard) const {
    return health_[static_cast<std::size_t>(shard)]->Snap().state;
  }

  // Raw histograms for bucket-for-bucket metric export (metrics_bridge.cc).
  const LatencyHistogram& ok_latency_histogram() const { return ok_latency_; }
  const LatencyHistogram& error_latency_histogram() const {
    return error_latency_;
  }

 private:
  // Runs one slice sub-query through breaker gating, retries, backoff, and
  // hedging. Returns the final TryResult (kOk or the last typed failure).
  // Every try executes against `epoch` — the pin made at Execute entry.
  TryResult ExecuteSliceWithPolicy(int slice, const Query& sub,
                                   std::uint64_t seq, std::uint64_t epoch,
                                   int* tries);
  // One policy-visible try: breaker-gated target selection plus the
  // per-try deadline. Returns the shard actually tried in *shard_tried
  // (-1 when both holders' breakers refused).
  TryResult TryOnce(int preferred, int other, int slice, const Query& sub,
                    std::uint64_t seq, std::uint64_t epoch, int* shard_tried);

  ShardSet& shards_;
  const RouterOptions options_;
  ServeClock& clock_;
  RetryBudget budget_;
  LoadShedder shedder_;
  std::vector<std::unique_ptr<ShardHealth>> health_;  // index = shard

  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> unavailable_{0};
  std::atomic<std::uint64_t> point_queries_{0};
  std::atomic<std::uint64_t> scatter_queries_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> hedges_{0};
  std::atomic<std::uint64_t> hedge_wins_{0};
  std::atomic<std::uint64_t> budget_exhausted_{0};
  std::atomic<std::uint64_t> probes_{0};
  LatencyHistogram ok_latency_;
  LatencyHistogram error_latency_;
};

}  // namespace sncube
