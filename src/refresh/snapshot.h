// Crash-safe versioned snapshot store for online cube refresh.
//
// One directory holds every refresh-produced epoch of the cube plus a
// MANIFEST whose sealed lines (io/checked_file.h, " crc <8-hex>" suffix) are
// the ONLY source of truth about what is installed:
//
//   <dir>/MANIFEST                       append-only sealed records
//   <dir>/epoch_<E>/v<mask>.snap        one sealed frame per view of epoch E
//
// Record grammar (one per line, in swap order):
//
//   prepare <E> <mask> <mask> ...        every named view file of E is durable
//   commitshard <E> <shard>              shard has adopted E
//   commit <E>                           THE commit point: E is serving
//
// Durability protocol mirrors the checkpoint layer: data files first, the
// manifest record naming them last, every byte CRC-framed, and every write
// charged to (and fault-injected through) the caller's DiskModel — so a
// refresh plan's bitflip/tornwrite clauses corrupt snapshot bytes below the
// checksum exactly like checkpoint frames, and a refreshkill crash at any
// point leaves a manifest whose durable prefix ends cleanly.
//
// Recover() reads that durable prefix (first unverifiable line ends it,
// crash-truncated and torn tails included) and reduces it to: the newest
// COMMITTED epoch whose view files all verify — loaded and returned — while
// every half-installed epoch directory (prepared but never committed, or
// past the durable prefix entirely) is quarantined aside, and a committed
// epoch with damaged files falls back to the next older committed one. The
// caller serves what Recover returns; when nothing is recoverable it serves
// the pre-refresh base cube, which this store never owned. Either way the
// served bytes are a cube some completed refresh (or the initial build)
// produced in full — never a blend.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "io/disk.h"
#include "seqcube/cube_result.h"

namespace sncube {

struct RecoveredSnapshot {
  // False when no committed epoch could be loaded — the store is empty, its
  // manifest never reached a commit record, or every committed epoch's files
  // are damaged. The caller falls back to the pre-refresh base cube.
  bool has_cube = false;
  std::uint64_t epoch = 0;  // meaningful only when has_cube
  CubeResult cube;
  // Paths moved aside during recovery: half-installed epoch directories
  // (renamed `<dir>.quarantine`) and corrupt view files (`<file>.corrupt`),
  // kept for the post-mortem instead of deleted.
  std::vector<std::string> quarantined;
};

class SnapshotStore {
 public:
  // Creates `dir` if needed. `disk` is borrowed for the store's lifetime;
  // all reads and writes are charged to it, and its fault hook (the refresh
  // coordinator's FaultInjector, acting as rank 0) supplies transient
  // errors and silent corruption.
  SnapshotStore(std::string dir, DiskModel& disk);

  const std::filesystem::path& dir() const { return dir_; }

  // Transient disk-error retries per operation before escalating to a hard
  // SncubeIoError. (No simulated-clock backoff here: the coordinator has no
  // Comm, and src/refresh is wall-clock-banned — retries are immediate.)
  void set_max_io_retries(int n) { max_io_retries_ = n; }

  // The PREPARE step: persists every view of `cube` as a sealed frame under
  // epoch_<E>/, then appends the sealed `prepare` record naming them. The
  // record is the durability commit of the data files — a crash before it
  // leaves an unnamed directory that Recover quarantines. `mid_write`, when
  // set, runs after the first view file lands (the coordinator's mid-prepare
  // kill point).
  void WriteEpoch(std::uint64_t epoch, const CubeResult& cube,
                  const std::function<void()>& mid_write = {});

  void AppendCommitShard(std::uint64_t epoch, int shard);

  // THE commit point of the two-phase swap: once this sealed line is
  // durable, Recover serves epoch `epoch`; before it, the previous
  // committed epoch (or the pre-refresh base).
  void AppendCommit(std::uint64_t epoch);

  // Retires epoch directories older than `epoch` (the manifest keeps their
  // history). The coordinator calls this with serving_epoch - 1 so the
  // predecessor stays on disk for fallback.
  void RemoveEpochDirsBelow(std::uint64_t epoch);

  // Loads one epoch's views, verifying every frame. Throws SncubeIoError /
  // SncubeCorruptionError when missing or damaged.
  CubeResult LoadEpoch(std::uint64_t epoch);

  // Restart entry point; see the file comment for the protocol.
  RecoveredSnapshot Recover();

 private:
  std::filesystem::path EpochDir(std::uint64_t epoch) const;
  std::filesystem::path ViewPath(std::uint64_t epoch, ViewId id) const;
  std::filesystem::path ManifestPath() const { return dir_ / "MANIFEST"; }
  void AppendRecord(const std::string& text);
  // Runs `op`, retrying SncubeTransientIoError up to max_io_retries_.
  template <typename Fn>
  void WithRetry(const char* what, Fn&& op);

  std::filesystem::path dir_;
  DiskModel& disk_;
  int max_io_retries_ = 4;
};

}  // namespace sncube
