#include "refresh/refresh.h"

#include <utility>

#include "common/status.h"
#include "obs/trace.h"

namespace sncube {

RefreshCoordinator::RefreshCoordinator(ShardSet& shards,
                                       std::shared_ptr<const CubeResult> base,
                                       const Schema& schema,
                                       RefreshOptions options)
    : shards_(shards),
      schema_(schema),
      options_(std::move(options)),
      store_(options_.dir, disk_),
      current_(std::move(base)) {
  SNCUBE_CHECK_MSG(current_ != nullptr, "refresh needs the serving base cube");
  // The coordinator is rank 0 of its injector: transient errors and silent
  // corruption from rank-0 disk clauses strike the snapshot writes below.
  if (options_.injector != nullptr) disk_.set_fault_hook(options_.injector);
}

void RefreshCoordinator::EnterPhase(int phase) {
  // Kill check FIRST: a refreshkill:<phase> crash happens on entry, before
  // any work (or test traffic) attributed to the phase.
  if (options_.injector != nullptr) options_.injector->OnRefreshPhase(phase);
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("refresh.phases_entered").Increment();
  }
  if (options_.on_phase) options_.on_phase(phase);
}

std::uint64_t RefreshCoordinator::Refresh(const Relation& delta) {
  SNCUBE_TRACE_SPAN("refresh");
  const std::uint64_t epoch = shards_.serving_epoch() + 1;

  // ---- Compute (nothing durable, nothing serving) ----
  const std::vector<ViewId> affected = AffectedViews(*current_, delta);
  std::shared_ptr<const CubeResult> next;
  {
    SNCUBE_TRACE_SPAN("refresh-delta-cube");
    CubeResult delta_cube = ComputeDeltaCube(delta, schema_, affected,
                                             options_.fn, &disk_, nullptr,
                                             options_.strategy);
    SNCUBE_TRACE_SPAN("refresh-merge");
    next = std::make_shared<const CubeResult>(
        MergeDeltaCube(*current_, delta_cube, options_.fn));
  }
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("refresh.delta_rows").Add(delta.size());
    options_.metrics->GetCounter("refresh.views_rebuilt")
        .Add(affected.size());
    options_.metrics->GetCounter("refresh.merged_rows")
        .Add(next->TotalRows(/*selected_only=*/false));
  }

  // ---- Prepare: durable bytes, still serving the old epoch ----
  EnterPhase(0);
  {
    SNCUBE_TRACE_SPAN("refresh-snapshot");
    store_.WriteEpoch(epoch, *next, [this] { EnterPhase(1); });
  }
  EnterPhase(2);

  // ---- Two-phase swap ----
  SNCUBE_TRACE_SPAN("refresh-swap");
  shards_.PrepareEpoch(epoch, next);
  for (int s = 0; s < shards_.shards(); ++s) {
    if (s > 0) EnterPhase(3);
    store_.AppendCommitShard(epoch, s);
    shards_.CommitShard(epoch, s);
  }
  EnterPhase(4);
  store_.AppendCommit(epoch);  // THE commit point
  shards_.FinalizeEpoch(epoch);
  EnterPhase(5);
  if (epoch >= 1) store_.RemoveEpochDirsBelow(epoch - 1);

  current_ = std::move(next);
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("refresh.epochs_installed").Increment();
  }
  return epoch;
}

}  // namespace sncube
