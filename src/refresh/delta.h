// Delta ingestion for online cube refresh (DESIGN.md §14).
//
// A DELTA is a relation of newly arrived facts in the schema's canonical
// layout — insert-only, the OLAP-warehouse norm. Because every supported
// aggregate distributes over a disjoint union of fact sets
// (sum/min/max: agg(base ∪ delta) = combine(agg(base), agg(delta))), a
// refresh never re-scans the base facts: it cubes the (small) delta with the
// very same Section 3 machinery the initial build used — partial schedule
// tree over exactly the affected views, Pipesort/hash-aggregate per edge —
// and then merges the delta cube into the base cube view by view with one
// linear merge pass per view.
//
// The merge is ORDER-PRESERVING: each merged view keeps the base view's sort
// order (delta rows are re-sorted to it first), so a refreshed cube is
// drop-in for every consumer that relies on view order — slice partitioning
// (serve/shard_set.h keeps slices sorted because the source view is),
// scatter merging (MergeSortedAggregate), and golden byte comparisons.
#pragma once

#include <span>
#include <vector>

#include "io/disk.h"
#include "relation/schema.h"
#include "schedule/partial.h"
#include "seqcube/cube_result.h"
#include "seqcube/pipeline.h"

namespace sncube {

// The views of `base` an insert-only `delta` invalidates. Distributive
// aggregates make every materialized view (auxiliaries included) sensitive
// to any new fact, so this is all of base's views for a non-empty delta and
// none for an empty one. Centralized anyway: finer pruning (e.g. per-view
// delta-key coverage) slots in here without touching callers.
std::vector<ViewId> AffectedViews(const CubeResult& base,
                                  const Relation& delta);

// Cubes the delta over exactly `affected`, reusing the Section 3 partial
// build (BuildPartialTree + pipelined execution). Costs land on `disk` /
// `stats` like any build.
CubeResult ComputeDeltaCube(const Relation& delta, const Schema& schema,
                            const std::vector<ViewId>& affected,
                            AggFn fn = AggFn::kSum, DiskModel* disk = nullptr,
                            ExecStats* stats = nullptr,
                            PartialStrategy strategy =
                                PartialStrategy::kPrunedPipesort);

// Merges two same-width relations that are BOTH sorted lexicographically by
// column positions `cols`, combining equal-key rows with `fn`. The general-
// order sibling of MergeSortedAggregate (relation/aggregate.h), which only
// handles the all-columns-ascending case — view rows are sorted by the
// view's own order, not the canonical one, so the refresh merge needs the
// permuted comparator. Output stays sorted by `cols`.
Relation MergeAggregateByOrder(const Relation& a, const Relation& b,
                               std::span<const int> cols, AggFn fn);

// The refreshed cube: every view of `base` merged with its counterpart in
// `delta_cube` (views the delta cube lacks pass through unchanged — an empty
// delta view contributes nothing). Each output view keeps the BASE view's
// sort order and selected flag; delta rows are re-sorted to it before the
// merge. `base` is untouched — the result is a fresh CubeResult, immutable
// once handed to the serving tier like any other (epoch snapshots depend on
// this).
CubeResult MergeDeltaCube(const CubeResult& base, const CubeResult& delta_cube,
                          AggFn fn = AggFn::kSum);

}  // namespace sncube
