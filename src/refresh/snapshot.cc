#include "refresh/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/status.h"
#include "io/checked_file.h"
#include "net/wire.h"

namespace sncube {
namespace {

constexpr std::uint32_t kSnapMagic = 0x534E5253;  // "SNRS"
constexpr std::uint32_t kSnapVersion = 1;

ByteBuffer SerializeSnapshotView(std::uint64_t epoch, const ViewResult& vr) {
  ByteBuffer buf;
  WirePut(buf, kSnapMagic);
  WirePut(buf, kSnapVersion);
  WirePut(buf, epoch);
  WirePut(buf, vr.id.mask());
  WirePut(buf, static_cast<std::uint8_t>(vr.selected ? 1 : 0));
  WirePutVector(buf,
                std::vector<std::uint8_t>(vr.order.begin(), vr.order.end()));
  WirePut(buf, static_cast<std::uint64_t>(vr.rel.size()));
  SerializeRows(vr.rel, 0, vr.rel.size(), buf);
  return buf;
}

ViewResult ParseSnapshotView(const ByteBuffer& bytes, std::uint64_t epoch,
                             ViewId expect_id) {
  WireReader reader(bytes);
  if (reader.Get<std::uint32_t>() != kSnapMagic) {
    throw SncubeCorruptionError("snapshot view: bad magic");
  }
  if (reader.Get<std::uint32_t>() != kSnapVersion) {
    throw SncubeCorruptionError("snapshot view: unsupported version");
  }
  if (reader.Get<std::uint64_t>() != epoch) {
    throw SncubeCorruptionError("snapshot view: wrong epoch");
  }
  ViewResult vr;
  vr.id = ViewId(reader.Get<std::uint32_t>());
  if (vr.id != expect_id) {
    throw SncubeCorruptionError("snapshot view: mask disagrees with name");
  }
  vr.selected = reader.Get<std::uint8_t>() != 0;
  const auto order = reader.GetVector<std::uint8_t>();
  vr.order.assign(order.begin(), order.end());
  const auto rows = reader.Get<std::uint64_t>();
  vr.rel = Relation(vr.id.dim_count());
  if (rows > reader.remaining() / vr.rel.RowBytes()) {
    throw SncubeCorruptionError("snapshot view: row count exceeds payload");
  }
  vr.rel.Reserve(rows);
  DeserializeRows(reader.GetBytes(rows * vr.rel.RowBytes()), vr.rel);
  if (!reader.AtEnd()) {
    throw SncubeCorruptionError("snapshot view: trailing bytes");
  }
  return vr;
}

// Exact match for "epoch_<digits>" directory names; quarantined dirs
// ("….quarantine") and stray files don't parse.
bool ParseEpochDirName(const std::string& name, std::uint64_t* epoch) {
  constexpr const char kPrefix[] = "epoch_";
  constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.rfind(kPrefix, 0) != 0) return false;
  const std::string digits = name.substr(kPrefixLen);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *epoch = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

// One parsed manifest record from the durable prefix.
struct ManifestRecord {
  enum Kind { kPrepare, kCommitShard, kCommit } kind;
  std::uint64_t epoch = 0;
  std::vector<std::uint32_t> masks;  // kPrepare only
  int shard = 0;                     // kCommitShard only
};

}  // namespace

SnapshotStore::SnapshotStore(std::string dir, DiskModel& disk)
    : dir_(std::move(dir)), disk_(disk) {
  SNCUBE_CHECK_MSG(!dir_.empty(), "snapshot store needs a directory");
  std::filesystem::create_directories(dir_);
}

template <typename Fn>
void SnapshotStore::WithRetry(const char* what, Fn&& op) {
  for (int attempt = 0;; ++attempt) {
    try {
      op();
      return;
    } catch (const SncubeTransientIoError& e) {
      if (attempt >= max_io_retries_) {
        throw SncubeIoError(std::string("snapshot ") + what +
                            ": transient I/O error persisted after " +
                            std::to_string(max_io_retries_) +
                            " retries: " + e.what());
      }
    }
  }
}

std::filesystem::path SnapshotStore::EpochDir(std::uint64_t epoch) const {
  return dir_ / ("epoch_" + std::to_string(epoch));
}

std::filesystem::path SnapshotStore::ViewPath(std::uint64_t epoch,
                                              ViewId id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "v%05x.snap", id.mask());
  return EpochDir(epoch) / name;
}

void SnapshotStore::AppendRecord(const std::string& text) {
  WithRetry("manifest append",
            [&] { AppendSealedLine(ManifestPath(), text, disk_); });
}

void SnapshotStore::WriteEpoch(std::uint64_t epoch, const CubeResult& cube,
                               const std::function<void()>& mid_write) {
  std::filesystem::create_directories(EpochDir(epoch));
  std::vector<std::uint32_t> masks;
  bool first = true;
  // Ordered map walk: file write order is ascending-mask deterministic.
  for (const auto& [id, vr] : cube.views) {
    const ByteBuffer bytes = SerializeSnapshotView(epoch, vr);
    // Charge + persist inside the retry: a transient failure happens before
    // any bytes land, so a retry rewrites the file from scratch.
    WithRetry("view write",
              [&] { WriteSealedFile(ViewPath(epoch, id), bytes, disk_); });
    masks.push_back(id.mask());
    if (first && mid_write) mid_write();
    first = false;
  }
  std::sort(masks.begin(), masks.end());
  std::ostringstream line;
  line << "prepare " << epoch;
  for (std::uint32_t m : masks) line << ' ' << m;
  AppendRecord(line.str());
}

void SnapshotStore::AppendCommitShard(std::uint64_t epoch, int shard) {
  AppendRecord("commitshard " + std::to_string(epoch) + ' ' +
               std::to_string(shard));
}

void SnapshotStore::AppendCommit(std::uint64_t epoch) {
  AppendRecord("commit " + std::to_string(epoch));
}

void SnapshotStore::RemoveEpochDirsBelow(std::uint64_t epoch) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    std::uint64_t e = 0;
    if (!ParseEpochDirName(entry.path().filename().string(), &e)) continue;
    if (e < epoch) std::filesystem::remove_all(entry.path(), ec);
  }
}

CubeResult SnapshotStore::LoadEpoch(std::uint64_t epoch) {
  // The prepare record names exactly the view files the epoch consists of;
  // trusting a directory listing instead would resurrect torn writes.
  std::ifstream in(ManifestPath());
  std::vector<std::uint32_t> masks;
  bool found = false;
  std::string raw;
  while (in.good() && std::getline(in, raw)) {
    const auto text = VerifySealedLine(raw);
    if (!text.has_value()) break;
    std::istringstream ls(*text);
    std::string tag;
    std::uint64_t e = 0;
    if (!(ls >> tag >> e)) break;
    if (tag == "prepare" && e == epoch) {
      masks.clear();
      std::uint32_t mask = 0;
      while (ls >> mask) masks.push_back(mask);
      found = true;
    }
  }
  if (!found || masks.empty()) {
    throw SncubeIoError("snapshot: epoch " + std::to_string(epoch) +
                        " has no durable prepare record");
  }
  CubeResult cube;
  for (std::uint32_t mask : masks) {
    const ViewId id(mask);
    ByteBuffer bytes;
    WithRetry("view read",
              [&] { bytes = ReadSealedFile(ViewPath(epoch, id), disk_); });
    cube.views.emplace(id, ParseSnapshotView(bytes, epoch, id));
  }
  return cube;
}

RecoveredSnapshot SnapshotStore::Recover() {
  RecoveredSnapshot out;

  // 1. The manifest's durable prefix: first unverifiable or unparsable line
  //    ends it, exactly like the checkpoint manifest.
  std::vector<ManifestRecord> records;
  {
    std::ifstream in(ManifestPath());
    std::string raw;
    while (in.good() && std::getline(in, raw)) {
      const auto text = VerifySealedLine(raw);
      if (!text.has_value()) break;
      std::istringstream ls(*text);
      ManifestRecord rec;
      std::string tag;
      if (!(ls >> tag >> rec.epoch)) break;
      if (tag == "prepare") {
        rec.kind = ManifestRecord::kPrepare;
        std::uint32_t mask = 0;
        while (ls >> mask) rec.masks.push_back(mask);
        if (rec.masks.empty()) break;
      } else if (tag == "commitshard") {
        rec.kind = ManifestRecord::kCommitShard;
        if (!(ls >> rec.shard)) break;
      } else if (tag == "commit") {
        rec.kind = ManifestRecord::kCommit;
      } else {
        break;
      }
      records.push_back(std::move(rec));
    }
  }

  // 2. Reduce: an epoch is committed only when its commit record follows a
  //    prepare record for it inside the durable prefix.
  std::set<std::uint64_t> prepared;
  std::vector<std::uint64_t> committed;  // in record order (ascending swaps)
  for (const auto& rec : records) {
    if (rec.kind == ManifestRecord::kPrepare) prepared.insert(rec.epoch);
    if (rec.kind == ManifestRecord::kCommit &&
        prepared.count(rec.epoch) != 0) {
      committed.push_back(rec.epoch);
    }
  }

  // 3. Newest committed epoch whose files all verify wins; a damaged one is
  //    quarantined file-by-file and recovery falls back to the next older.
  for (auto it = committed.rbegin(); it != committed.rend(); ++it) {
    try {
      out.cube = LoadEpoch(*it);
      out.epoch = *it;
      out.has_cube = true;
      break;
    } catch (const SncubeCorruptionError&) {
      // Quarantine every damaged frame of this epoch so nothing half-reads
      // it later, then try the predecessor.
      for (const auto& rec : records) {
        if (rec.kind != ManifestRecord::kPrepare || rec.epoch != *it) continue;
        for (std::uint32_t mask : rec.masks) {
          const auto path = ViewPath(*it, ViewId(mask));
          ByteBuffer bytes;
          try {
            WithRetry("view verify",
                      [&] { bytes = ReadSealedFile(path, disk_); });
            ParseSnapshotView(bytes, *it, ViewId(mask));
          } catch (const SncubeCorruptionError&) {
            std::error_code ec;
            const auto target = path.string() + ".corrupt";
            std::filesystem::rename(path, target, ec);
            if (!ec) out.quarantined.push_back(target);
          } catch (const SncubeIoError&) {
            // Missing file: nothing to quarantine, the manifest records it.
          }
        }
      }
    } catch (const SncubeIoError&) {
      // Missing files or record: fall back to the next older commit.
    }
  }

  // 4. Quarantine half-installed epoch directories: on disk but never
  //    committed inside the durable prefix (crash mid-prepare or mid-commit,
  //    or records torn off the manifest tail).
  const std::set<std::uint64_t> committed_set(committed.begin(),
                                              committed.end());
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    std::uint64_t e = 0;
    if (!ParseEpochDirName(entry.path().filename().string(), &e)) continue;
    if (committed_set.count(e) != 0) continue;
    const auto target = entry.path().string() + ".quarantine";
    std::filesystem::rename(entry.path(), target, ec);
    if (!ec) out.quarantined.push_back(target);
  }
  return out;
}

}  // namespace sncube
