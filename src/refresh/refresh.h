// RefreshCoordinator — the two-phase atomic swap that installs a refreshed
// cube into the serving tier under live traffic (DESIGN.md §14).
//
// One Refresh(delta) call runs the full pipeline:
//
//   delta ── AffectedViews ── ComputeDeltaCube ── MergeDeltaCube ──▶ cube E
//                                                                     │
//   SnapshotStore: write epoch_E/ views ── "prepare E" ───────────────┤
//   ShardSet:      PrepareEpoch(E)  (hosted, NOT serving)             │
//   per shard s:   "commitshard E s" ── CommitShard(E, s)             │
//   SnapshotStore: "commit E"   ◀── THE atomic commit point           │
//   ShardSet:      FinalizeEpoch(E)  (serving_epoch ← E)              ▼
//   cleanup:       retire epoch dirs ≤ E-2
//
// CRASH MODEL. A refreshkill:<K> fault clause (net/fault.h) makes the
// coordinator throw InjectedFaultError on entry to phase K — every durable
// byte written before the throw stays, everything after never happens, which
// is exactly a process crash at that point. The phases:
//
//   0  before any snapshot bytes (delta cube computed, nothing durable)
//   1  mid-prepare: after the first view file, before the rest
//   2  after the sealed "prepare E" manifest record
//   3  between per-shard commit records (entered once per shard after the
//      first, so a p-shard swap has p-1 distinct phase-3 kill points)
//   4  before the final sealed "commit E" record
//   5  after commit, before old-epoch retire/cleanup
//
// The invariant (enforced by tests/refresh_test.cc and `sncube chaos
// --refresh`): after a crash at ANY phase, SnapshotStore::Recover() plus
// the caller's base-cube fallback serves a cube byte-identical to either
// the pre-refresh cube (crash at phase ≤ 4: no commit record) or the
// post-refresh cube (phase 5: commit sealed) — never a blend, because the
// single sealed "commit E" line is the only state transition and requests
// are epoch-pinned end to end (serve/shard_set.h).
//
// Metrics (refresh.*): refresh.epochs_installed, refresh.delta_rows,
// refresh.views_rebuilt, refresh.merged_rows, refresh.phases_entered.
// Trace spans: "refresh" wrapping "refresh-delta-cube", "refresh-merge",
// "refresh-snapshot", "refresh-swap".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/fault.h"
#include "obs/metrics_registry.h"
#include "refresh/delta.h"
#include "refresh/snapshot.h"
#include "serve/shard_set.h"

namespace sncube {

struct RefreshOptions {
  std::string dir;  // snapshot store root (required)
  AggFn fn = AggFn::kSum;
  PartialStrategy strategy = PartialStrategy::kPrunedPipesort;
  // Borrowed, optional. The coordinator acts as RANK 0 of this injector:
  // refreshkill clauses crash it at phase entries, and the injector is
  // installed as the snapshot DiskModel's fault hook so rank-0
  // diskerr/bitflip/tornwrite clauses strike snapshot writes.
  FaultInjector* injector = nullptr;
  obs::MetricsRegistry* metrics = nullptr;  // borrowed, optional
  // Test hook: runs on entry to each phase AFTER the injector's kill check.
  // The refresh chaos harness drives concurrent query traffic from here to
  // interleave requests with every swap step deterministically.
  std::function<void(int phase)> on_phase;
};

class RefreshCoordinator {
 public:
  // `shards` is the live serving tier (borrowed; must outlive the
  // coordinator). `base` is the cube `shards` currently serves — the merge
  // source for the first refresh — and `schema` its canonical schema.
  RefreshCoordinator(ShardSet& shards, std::shared_ptr<const CubeResult> base,
                     const Schema& schema, RefreshOptions options);

  // Ingests one insert-only delta (canonical schema layout), builds the
  // refreshed cube, persists it, and two-phase-swaps it in. Returns the new
  // serving epoch. Throws InjectedFaultError on a planned refreshkill (the
  // simulated crash — the coordinator object is dead afterwards; recovery is
  // a fresh process via SnapshotStore::Recover), SncubeIoError on persistent
  // disk failure.
  std::uint64_t Refresh(const Relation& delta);

  // The cube the latest completed Refresh installed (the base before any).
  const std::shared_ptr<const CubeResult>& current() const { return current_; }

  SnapshotStore& store() { return store_; }
  DiskModel& disk() { return disk_; }

 private:
  void EnterPhase(int phase);

  ShardSet& shards_;
  Schema schema_;
  RefreshOptions options_;
  DiskModel disk_;
  SnapshotStore store_;
  std::shared_ptr<const CubeResult> current_;
};

}  // namespace sncube
