#include "refresh/delta.h"

#include <utility>

#include "common/status.h"
#include "relation/aggregate.h"
#include "relation/sort.h"
#include "seqcube/seq_cube.h"

namespace sncube {

std::vector<ViewId> AffectedViews(const CubeResult& base,
                                  const Relation& delta) {
  std::vector<ViewId> affected;
  if (delta.empty()) return affected;
  affected.reserve(base.views.size());
  for (const auto& [id, vr] : base.views) affected.push_back(id);
  return affected;
}

CubeResult ComputeDeltaCube(const Relation& delta, const Schema& schema,
                            const std::vector<ViewId>& affected, AggFn fn,
                            DiskModel* disk, ExecStats* stats,
                            PartialStrategy strategy) {
  if (affected.empty()) return CubeResult{};
  return SequentialCube(delta, schema, affected, fn, disk, stats, strategy);
}

Relation MergeAggregateByOrder(const Relation& a, const Relation& b,
                               std::span<const int> cols, AggFn fn) {
  SNCUBE_CHECK(a.width() == b.width());
  Relation out(a.width());
  out.Reserve(a.size() + b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const int cmp = CompareRows(a, i, cols, b, j, cols);
    if (cmp < 0) {
      out.AppendRow(a, i++);
    } else if (cmp > 0) {
      out.AppendRow(b, j++);
    } else {
      out.Append(a.RowKeys(i), CombineMeasure(fn, a.measure(i), b.measure(j)));
      ++i;
      ++j;
    }
  }
  while (i < a.size()) out.AppendRow(a, i++);
  while (j < b.size()) out.AppendRow(b, j++);
  return out;
}

CubeResult MergeDeltaCube(const CubeResult& base, const CubeResult& delta_cube,
                          AggFn fn) {
  CubeResult merged;
  for (const auto& [id, vr] : base.views) {
    ViewResult out;
    out.id = id;
    out.order = vr.order;
    out.selected = vr.selected;
    const auto it = delta_cube.views.find(id);
    if (it == delta_cube.views.end() || it->second.rel.empty()) {
      out.rel = vr.rel;  // untouched view: byte-identical pass-through
    } else {
      // The delta build chose its own sort orders (its Pipesort ran on delta
      // statistics); re-sort its rows into the BASE view's order so the
      // merge is a single linear pass and the merged view inherits base
      // order — what keeps refreshed cubes drop-in for slice partitioning
      // and golden comparisons.
      const std::vector<int> cols = ColumnsOf(id, vr.order);
      Relation delta_rows = it->second.rel;
      if (it->second.order != vr.order) {
        delta_rows = SortRelation(delta_rows, cols);
      }
      out.rel = MergeAggregateByOrder(vr.rel, delta_rows, cols, fn);
    }
    merged.views.emplace(id, std::move(out));
  }
  return merged;
}

}  // namespace sncube
