#include "seqcube/seq_cube.h"

#include <cmath>

#include "common/status.h"
#include "exec/parallel_algo.h"
#include "io/external_sort.h"
#include "lattice/lattice.h"
#include "relation/aggregate.h"
#include "relation/sort.h"
#include "schedule/pipesort.h"

namespace sncube {

Relation ComputeRootData(const Relation& raw, ViewId root,
                         const std::vector<int>& root_order, AggFn fn,
                         DiskModel* disk, ExecStats* stats) {
  if (root.empty()) {
    // The "all" root: one row, total aggregate.
    if (disk != nullptr) disk->ChargeRead(raw.ByteSize());
    if (stats != nullptr) {
      stats->records_scanned += raw.size();
      stats->scans += 1;
    }
    Relation out(0);
    if (!raw.empty()) {
      Measure acc = raw.measure(0);
      for (std::size_t r = 1; r < raw.size(); ++r) {
        acc = CombineMeasure(fn, acc, raw.measure(r));
      }
      out.Append({}, acc);
    }
    return out;
  }

  // Raw columns are the global dimensions, so the order doubles as the sort
  // column list.
  const std::vector<int> sort_cols(root_order.begin(), root_order.end());
  Relation sorted;
  if (disk != nullptr) {
    sorted = ExternalSort(raw, sort_cols, *disk);
  } else {
    sorted = exec::SortRelationAuto(raw, sort_cols);
  }
  if (stats != nullptr) {
    stats->sorts += 1;
    const auto rows = static_cast<double>(raw.size());
    stats->sort_cost_units += rows * std::log2(std::max(rows, 2.0));
    stats->records_scanned += raw.size();
    stats->scans += 1;
  }

  // Aggregate on the root's dimensions (columns in root_order order), then
  // restore the canonical column layout. The row order — sorted by
  // root_order — is unaffected by the column permutation.
  Relation agg = AggregateSortedPrefix(sorted, sort_cols, fn);
  // agg's column j holds root_order[j]; canonical position of dim
  // root.DimList()[t] within agg is the index of that dim in root_order.
  std::vector<int> perm;
  perm.reserve(root_order.size());
  for (int dim : root.DimList()) {
    int pos = -1;
    for (std::size_t k = 0; k < root_order.size(); ++k) {
      if (root_order[k] == dim) {
        pos = static_cast<int>(k);
        break;
      }
    }
    SNCUBE_CHECK(pos >= 0);
    perm.push_back(pos);
  }
  Relation canonical = PermuteColumns(agg, perm);
  if (disk != nullptr) disk->ChargeWrite(canonical.ByteSize());
  if (stats != nullptr) stats->rows_emitted += canonical.size();
  return canonical;
}

CubeResult SequentialPipesortCube(const Relation& raw, const Schema& schema,
                                  AggFn fn, DiskModel* disk,
                                  ExecStats* stats) {
  SNCUBE_CHECK(raw.width() == schema.dims());
  const int d = schema.dims();
  const ViewId root = ViewId::Full(d);
  const AnalyticEstimator est(schema, static_cast<double>(raw.size()));
  const ScheduleTree tree =
      BuildPipesortTree(AllViews(d), root, root.DimList(), est);
  Relation root_data =
      ComputeRootData(raw, root, root.DimList(), fn, disk, stats);
  return ExecuteScheduleTree(tree, std::move(root_data), fn, disk, stats);
}

CubeResult SequentialCube(const Relation& raw, const Schema& schema,
                          const std::vector<ViewId>& selected, AggFn fn,
                          DiskModel* disk, ExecStats* stats,
                          PartialStrategy strategy) {
  SNCUBE_CHECK(raw.width() == schema.dims());
  const int d = schema.dims();
  const AnalyticEstimator est(schema, static_cast<double>(raw.size()));

  CubeResult result;
  for (const auto& partition : PartitionViews(selected, d)) {
    if (partition.empty()) continue;
    const ViewId root = PartitionRoot(partition);
    const ScheduleTree tree =
        BuildPartialTree(partition, root, root.DimList(), est, strategy);
    Relation root_data =
        ComputeRootData(raw, root, root.DimList(), fn, disk, stats);
    CubeResult part =
        ExecuteScheduleTree(tree, std::move(root_data), fn, disk, stats);
    for (auto& [id, vr] : part.views) {
      result.views[id] = std::move(vr);
    }
  }
  return result;
}

}  // namespace sncube
