// Sequential cube construction — the paper's baselines.
//
// SequentialPipesortCube is the classic top-down method ([20], the paper's
// speedup reference [3]): one Pipesort schedule tree over the whole lattice,
// executed with pipelined scans. SequentialCube is the per-Di-partition
// variant (exactly what each processor of the parallel algorithm runs
// locally, and the sequential baseline for partial cubes [4]); it accepts an
// arbitrary selected-view subset.
#pragma once

#include <vector>

#include "io/disk.h"
#include "lattice/estimate.h"
#include "relation/schema.h"
#include "schedule/partial.h"
#include "seqcube/cube_result.h"
#include "seqcube/pipeline.h"

namespace sncube {

// Materializes the root view of a (sub-)cube from raw data: sorts `raw` (its
// columns are the full schema, canonically laid out) by `root_order` and
// collapses duplicate root keys. Output: canonical columns, rows sorted by
// root_order — exactly what ExecuteScheduleTree expects. Charges disk/stats
// like the pipeline executor.
Relation ComputeRootData(const Relation& raw, ViewId root,
                         const std::vector<int>& root_order, AggFn fn,
                         DiskModel* disk = nullptr, ExecStats* stats = nullptr);

// Full cube via one lattice-wide Pipesort tree.
CubeResult SequentialPipesortCube(const Relation& raw, const Schema& schema,
                                  AggFn fn = AggFn::kSum,
                                  DiskModel* disk = nullptr,
                                  ExecStats* stats = nullptr);

// Full or partial cube via per-partition schedule trees: `selected` may be
// any subset of views (use AllViews(d) for the full cube). Auxiliary
// intermediates appear in the result flagged selected = false.
CubeResult SequentialCube(const Relation& raw, const Schema& schema,
                          const std::vector<ViewId>& selected,
                          AggFn fn = AggFn::kSum, DiskModel* disk = nullptr,
                          ExecStats* stats = nullptr,
                          PartialStrategy strategy =
                              PartialStrategy::kPrunedPipesort);

}  // namespace sncube
