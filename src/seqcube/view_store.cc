#include "seqcube/view_store.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/status.h"
#include "net/wire.h"
#include "relation/serialize.h"

namespace sncube {
namespace {

constexpr std::uint32_t kMagic = 0x534E4356;  // "SNCV"
constexpr std::uint32_t kVersion = 1;

}  // namespace

ViewStore::ViewStore(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

std::filesystem::path ViewStore::PathFor(ViewId id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "v%05x.sncv", id.mask());
  return dir_ / name;
}

void ViewStore::SaveSchema(const Schema& schema) const {
  std::ofstream out(dir_ / "manifest.txt");
  SNCUBE_CHECK_MSG(out.good(), "cannot write manifest");
  out << "sncube-manifest 1\n" << schema.dims() << "\n";
  for (int i = 0; i < schema.dims(); ++i) {
    out << schema.name(i) << ' ' << schema.cardinality(i) << "\n";
  }
}

Schema ViewStore::LoadSchema() const {
  std::ifstream in(dir_ / "manifest.txt");
  SNCUBE_CHECK_MSG(in.good(), "missing manifest.txt");
  std::string magic;
  int version = 0;
  int d = 0;
  in >> magic >> version >> d;
  SNCUBE_CHECK_MSG(magic == "sncube-manifest" && version == 1,
                   "unrecognized manifest");
  SNCUBE_CHECK(d >= 1 && d <= ViewId::kMaxDims);
  std::vector<std::string> names(static_cast<std::size_t>(d));
  std::vector<std::uint32_t> cards(static_cast<std::size_t>(d));
  for (int i = 0; i < d; ++i) {
    in >> names[static_cast<std::size_t>(i)] >> cards[static_cast<std::size_t>(i)];
  }
  SNCUBE_CHECK_MSG(static_cast<bool>(in), "truncated manifest");
  return Schema(cards, names);
}

void ViewStore::Save(const ViewResult& view) const {
  ByteBuffer header;
  WirePut(header, kMagic);
  WirePut(header, kVersion);
  WirePut(header, view.id.mask());
  WirePut(header, static_cast<std::uint32_t>(view.rel.width()));
  WirePutVector(header,
                std::vector<std::uint8_t>(view.order.begin(), view.order.end()));
  WirePut(header, static_cast<std::uint64_t>(view.rel.size()));

  std::ofstream out(PathFor(view.id), std::ios::binary | std::ios::trunc);
  SNCUBE_CHECK_MSG(out.good(), "cannot open view file for writing");
  out.write(reinterpret_cast<const char*>(header.data()),
            static_cast<std::streamsize>(header.size()));
  const ByteBuffer rows = SerializeRelation(view.rel);
  out.write(reinterpret_cast<const char*>(rows.data()),
            static_cast<std::streamsize>(rows.size()));
  SNCUBE_CHECK_MSG(out.good(), "short write to view file");
}

void ViewStore::SaveCube(const CubeResult& cube, const Schema& schema) const {
  SaveSchema(schema);
  for (const auto& [id, vr] : cube.views) {
    if (vr.selected) Save(vr);
  }
}

ViewResult ViewStore::Load(ViewId id) const {
  std::ifstream in(PathFor(id), std::ios::binary);
  if (!in.good()) {
    throw SncubeIoError("view file missing: " + PathFor(id).string());
  }
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  ByteBuffer bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  if (in.gcount() != static_cast<std::streamsize>(size)) {
    throw SncubeIoError("short read from view file");
  }

  WireReader reader(bytes);
  if (reader.Get<std::uint32_t>() != kMagic) {
    throw SncubeCorruptionError("bad view magic");
  }
  if (reader.Get<std::uint32_t>() != kVersion) {
    throw SncubeCorruptionError("unsupported view version");
  }
  ViewResult vr;
  vr.id = ViewId(reader.Get<std::uint32_t>());
  if (vr.id != id) {
    throw SncubeCorruptionError("view file holds a different view");
  }
  const auto width = reader.Get<std::uint32_t>();
  if (width != static_cast<std::uint32_t>(id.dim_count())) {
    throw SncubeCorruptionError("view width disagrees with its mask");
  }
  const auto order = reader.GetVector<std::uint8_t>();
  vr.order.assign(order.begin(), order.end());
  const auto rows = reader.Get<std::uint64_t>();
  vr.rel = Relation(static_cast<int>(width));
  // rows is untrusted: bound it by the remaining payload before the
  // rows * RowBytes() multiplication below can wrap.
  if (rows > reader.remaining() / vr.rel.RowBytes()) {
    throw SncubeCorruptionError("view row count exceeds file payload");
  }
  vr.rel.Reserve(rows);
  DeserializeRows(reader.GetBytes(rows * vr.rel.RowBytes()), vr.rel);
  if (!reader.AtEnd()) {
    throw SncubeCorruptionError("trailing bytes in view file");
  }
  return vr;
}

std::vector<ViewId> ViewStore::List() const {
  std::vector<ViewId> ids;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.size() != 11 || name.compare(0, 1, "v") != 0 ||
        entry.path().extension() != ".sncv") {
      continue;
    }
    const std::uint32_t mask =
        static_cast<std::uint32_t>(std::stoul(name.substr(1, 5), nullptr, 16));
    ids.emplace_back(mask);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

bool ViewStore::Contains(ViewId id) const {
  return std::filesystem::exists(PathFor(id));
}

CubeResult ViewStore::LoadCube() const {
  CubeResult cube;
  for (ViewId id : List()) {
    ViewResult vr = Load(id);
    cube.views[id] = std::move(vr);
  }
  return cube;
}

}  // namespace sncube
