// Materialized cube: the set of ROLAP view tables the algorithms produce.
//
// Every view relation stores its columns in CANONICAL order (ascending
// global dimension index = decreasing cardinality), regardless of the sort
// order its rows are in; `order` records that sort order. Keeping one column
// convention makes views comparable across processors, schedule trees, and
// algorithms — only row order differs, and that is explicit.
//
// Lifecycle contract: a CubeResult is MUTABLE while an algorithm builds it
// and IMMUTABLE once handed to readers (CubeQueryEngine, CubeServer). The
// serving layer's lock-free concurrent reads rely on no one touching
// `views` after construction — see DESIGN.md ("Immutability of CubeResult").
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "lattice/view_id.h"
#include "relation/relation.h"
#include "relation/types.h"

namespace sncube {

struct ViewResult {
  ViewId id;
  std::vector<int> order;  // global dims; rows are sorted by this order
  Relation rel;            // canonical column layout
  bool selected = true;
};

struct CubeResult {
  // Ordered map on purpose: every `for (auto& [id, vr] : views)` walk —
  // checkpointing, merge planning, serialization — visits views in
  // ascending mask order on every rank and every run, so iteration order
  // can never leak into cube bytes or simulated costs (the sncheck_ast
  // `unordered-iter` rule holds this line). View counts are ≤ 2^d, d ≤ 16;
  // per-view (not per-row) lookups make the O(log n) irrelevant.
  std::map<ViewId, ViewResult> views;

  std::uint64_t TotalRows(bool selected_only = true) const;
  std::uint64_t TotalBytes(bool selected_only = true) const;
};

// Column positions (within a view's canonical layout) corresponding to a
// dimension sequence. E.g. view {A,C,D} stored as [A,C,D]; dims (C,A) →
// columns (1,0).
std::vector<int> ColumnsOf(ViewId view, const std::vector<int>& dims);

// Reference implementation: GROUP BY the view's dimensions over `raw` with a
// full sort — the ground truth the optimized paths are tested against.
// Result is in canonical order, rows sorted canonically.
Relation BruteForceView(const Relation& raw, ViewId view, AggFn fn);

// Normalizes a view relation for comparison: rows re-sorted canonically.
Relation CanonicalizeRows(const Relation& rel);

}  // namespace sncube
