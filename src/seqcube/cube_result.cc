#include "seqcube/cube_result.h"

#include <algorithm>

#include "common/status.h"
#include "relation/aggregate.h"
#include "relation/sort.h"

namespace sncube {

std::uint64_t CubeResult::TotalRows(bool selected_only) const {
  std::uint64_t rows = 0;
  for (const auto& [id, vr] : views) {
    if (selected_only && !vr.selected) continue;
    rows += vr.rel.size();
  }
  return rows;
}

std::uint64_t CubeResult::TotalBytes(bool selected_only) const {
  std::uint64_t bytes = 0;
  for (const auto& [id, vr] : views) {
    if (selected_only && !vr.selected) continue;
    bytes += vr.rel.ByteSize();
  }
  return bytes;
}

std::vector<int> ColumnsOf(ViewId view, const std::vector<int>& dims) {
  const auto canonical = view.DimList();
  std::vector<int> cols;
  cols.reserve(dims.size());
  for (int dim : dims) {
    const auto it = std::find(canonical.begin(), canonical.end(), dim);
    SNCUBE_CHECK_MSG(it != canonical.end(), "dimension not in view");
    cols.push_back(static_cast<int>(it - canonical.begin()));
  }
  return cols;
}

Relation BruteForceView(const Relation& raw, ViewId view, AggFn fn) {
  const auto dims = view.DimList();
  // The raw relation's columns are the global dimensions in canonical
  // order, so dims double as column positions.
  std::vector<int> cols(dims.begin(), dims.end());
  return SortAndAggregate(raw, cols, fn);
}

Relation CanonicalizeRows(const Relation& rel) {
  return SortRelation(rel, IdentityOrder(rel.width()));
}

}  // namespace sncube
