#include "seqcube/pipeline.h"

#include <cmath>
#include <numeric>
#include <vector>

#include "common/status.h"
#include "exec/parallel_algo.h"
#include "hashagg/hash_agg.h"
#include "io/external_sort.h"
#include "obs/trace.h"
#include "relation/sort.h"

namespace sncube {
namespace {

// One view being filled during a pipeline scan.
struct ChainLevel {
  int node = -1;        // tree index
  int prefix_len = 0;   // group key = first prefix_len head-order columns
  std::vector<int> emit_map;  // canonical key position → head-order position
  Measure acc = 0;
  Relation out;
};

// Emits all views of the scan chain rooted at `head_node`'s subtree in one
// pass over `source`, whose rows are sorted by the chain head's order.
// `cols_seq[k]` is the source column holding the k-th head-order dimension.
// `include_head` distinguishes a sort-edge pipeline (the head itself is
// aggregated out of its parent's sorted rows) from the root pipeline (the
// root is already materialized; only descendants are emitted).
void EmitChain(const ScheduleTree& tree, const Relation& source,
               const std::vector<int>& cols_seq, int head_node,
               bool include_head, AggFn fn, DiskModel* disk, ExecStats* stats,
               CubeResult& result) {
  // Collect the chain: head (optional) then scan descendants.
  std::vector<ChainLevel> levels;
  int node = include_head ? head_node : tree.ScanChild(head_node);
  while (node >= 0) {
    const ScheduleNode& n = tree.node(node);
    ChainLevel level;
    level.node = node;
    level.prefix_len = n.view.dim_count();
    // Canonical emission: key position t holds dimension canonical[t], which
    // sits at some index < prefix_len of the head order.
    const auto canonical = n.view.DimList();
    level.emit_map.reserve(canonical.size());
    for (int dim : canonical) {
      int pos = -1;
      for (int k = 0; k < level.prefix_len; ++k) {
        if (n.order[k] == dim) {
          pos = k;
          break;
        }
      }
      SNCUBE_CHECK_MSG(pos >= 0, "chain order is not prefix-consistent");
      level.emit_map.push_back(pos);
    }
    level.out = Relation(n.view.dim_count());
    levels.push_back(std::move(level));
    node = tree.ScanChild(node);
  }
  if (levels.empty()) return;

  if (stats != nullptr) {
    stats->records_scanned += source.size();
    stats->scans += 1;
  }
  if (disk != nullptr) disk->ChargeRead(source.ByteSize());

  const int max_prefix = levels.front().prefix_len;
  std::vector<Key> group(static_cast<std::size_t>(max_prefix));
  std::vector<Key> emit_keys;

  auto flush = [&](ChainLevel& level) {
    emit_keys.clear();
    for (int pos : level.emit_map) emit_keys.push_back(group[pos]);
    level.out.Append(emit_keys, level.acc);
  };

  for (std::size_t row = 0; row < source.size(); ++row) {
    if (row == 0) {
      for (int k = 0; k < max_prefix; ++k) {
        group[k] = source.key(0, cols_seq[k]);
      }
      for (auto& level : levels) level.acc = source.measure(0);
      continue;
    }
    // First head-order position where the row differs from the open group.
    int changed = max_prefix;
    for (int k = 0; k < max_prefix; ++k) {
      if (source.key(row, cols_seq[k]) != group[k]) {
        changed = k;
        break;
      }
    }
    for (auto& level : levels) {
      if (level.prefix_len > changed) {
        flush(level);
        level.acc = source.measure(row);
      } else {
        level.acc = CombineMeasure(fn, level.acc, source.measure(row));
      }
    }
    for (int k = changed; k < max_prefix; ++k) {
      group[k] = source.key(row, cols_seq[k]);
    }
  }
  if (!source.empty()) {
    for (auto& level : levels) flush(level);
  }

  for (auto& level : levels) {
    const ScheduleNode& n = tree.node(level.node);
    if (stats != nullptr) stats->rows_emitted += level.out.size();
    if (disk != nullptr) disk->ChargeWrite(level.out.ByteSize());
    result.views[n.view] = ViewResult{n.view, n.order, std::move(level.out),
                                      n.selected};
  }
}

}  // namespace

CubeResult ExecuteScheduleTree(const ScheduleTree& tree, Relation root_data,
                               AggFn fn, DiskModel* disk, ExecStats* stats,
                               const PipelineChargeHook& on_pipeline) {
  tree.Validate();
  const ScheduleNode& root = tree.root();
  SNCUBE_CHECK_MSG(root_data.width() == root.view.dim_count(),
                   "root data width must match the root view");
  SNCUBE_CHECK_MSG(
      IsSorted(root_data, ColumnsOf(root.view, root.order)),
      "root data must arrive sorted in the root's imposed order");

  CubeResult result;
  result.views[root.view] =
      ViewResult{root.view, root.order, std::move(root_data), root.selected};

  // Per-pipeline attribution: when a charge hook is installed, track stats
  // even without a caller-provided accumulator, snapshot before each
  // pipeline, and hand the hook the increment while the pipeline's span is
  // still open.
  ExecStats hook_stats;
  if (stats == nullptr && on_pipeline) stats = &hook_stats;
  const auto charge_pipeline = [&](const ExecStats& before) {
    if (!on_pipeline) return;
    ExecStats delta = *stats;
    delta -= before;
    on_pipeline(delta);
  };

  // Root pipeline: scan descendants fall out of the already-sorted root.
  {
    SNCUBE_TRACE_SPAN("pipe-root");
    const ExecStats before = stats != nullptr ? *stats : ExecStats{};
    const Relation& src = result.views.at(root.view).rel;
    const int sc = tree.ScanChild(ScheduleTree::kRootIndex);
    if (sc >= 0) {
      const std::vector<int> cols_seq =
          ColumnsOf(root.view, tree.node(sc).order);
      EmitChain(tree, src, cols_seq, ScheduleTree::kRootIndex,
                /*include_head=*/false, fn, disk, stats, result);
    }
    charge_pipeline(before);
  }

  // Sort-edge pipelines, in tree order (parents precede children).
  for (int i = 1; i < tree.size(); ++i) {
    const ScheduleNode& n = tree.node(i);
    if (n.edge != EdgeKind::kSort) continue;
    SNCUBE_TRACE_SPAN_IDX("pipeline", i);
    const ExecStats before = stats != nullptr ? *stats : ExecStats{};
    const ScheduleNode& parent = tree.node(n.parent);
    const auto it = result.views.find(parent.view);
    SNCUBE_CHECK_MSG(it != result.views.end(), "parent not materialized");
    const Relation& parent_rel = it->second.rel;

    // Sort the parent by the pipeline head's order (only those columns
    // matter; deeper chain prefixes are prefixes of the same order).
    const std::vector<int> sort_cols = ColumnsOf(parent.view, n.order);
    if (n.backend == EdgeBackend::kHash) {
      // Hash engine: one unordered pass over the parent builds the head
      // directly (hashagg sorts the distinct groups into the head's order),
      // so EmitChain sees an already-aggregated source — every row is its
      // own group and is re-emitted unchanged, then the scan chain falls
      // out exactly as it would from the sorted parent. The hash pass and
      // the EmitChain scan both run over parallel/pool-aware primitives or
      // charge-accounted scans, so sim costs stay honest.
      if (disk != nullptr) disk->ChargeRead(parent_rel.ByteSize());
      hashagg::HashAggStats hs;
      const Relation head = hashagg::HashAggregate(parent_rel, sort_cols, fn, &hs);
      if (stats != nullptr) {
        stats->hash_aggs += 1;
        stats->hash_cost_units += static_cast<double>(hs.rows_hashed);
        const auto groups = static_cast<double>(hs.groups);
        stats->sort_cost_units += groups * std::log2(std::max(groups, 2.0));
      }
      std::vector<int> head_cols(static_cast<std::size_t>(head.width()));
      std::iota(head_cols.begin(), head_cols.end(), 0);
      EmitChain(tree, head, head_cols, i, /*include_head=*/true, fn, disk,
                stats, result);
      charge_pipeline(before);
      continue;
    }
    // Both paths dispatch to the rank's exec pool when one is installed
    // (exec::CurrentPool()); the EmitChain scan below stays serial — its
    // group-carry across rows is a genuine sequential dependency.
    Relation sorted;
    if (disk != nullptr) {
      sorted = ExternalSort(parent_rel, sort_cols, *disk);
    } else {
      sorted = exec::SortRelationAuto(parent_rel, sort_cols);
    }
    if (stats != nullptr) {
      stats->sorts += 1;
      const auto rows = static_cast<double>(parent_rel.size());
      stats->sort_cost_units += rows * std::log2(std::max(rows, 2.0));
    }
    EmitChain(tree, sorted, sort_cols, i, /*include_head=*/true, fn, disk,
              stats, result);
    charge_pipeline(before);
  }

  SNCUBE_CHECK(static_cast<int>(result.views.size()) == tree.size());
  return result;
}

}  // namespace sncube
