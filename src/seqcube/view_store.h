// On-disk persistence for materialized views — the "output files" of the
// paper's timed runs ("all times include the time taken to read the input
// from files and write the output into files").
//
// Each view is one binary file `v<mask-hex>.sncv` under the store directory:
// a fixed header (magic, format version, view mask, width, sort order) and
// the raw row payload in the wire format of relation/serialize.h. A
// `manifest.txt` records the schema so a store is self-describing. Per-rank
// shard stores simply use per-rank directories.
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "relation/schema.h"
#include "seqcube/cube_result.h"

namespace sncube {

class ViewStore {
 public:
  // Opens (creating if needed) a store rooted at `dir`.
  explicit ViewStore(std::filesystem::path dir);

  const std::filesystem::path& dir() const { return dir_; }

  // Writes/overwrites the schema manifest.
  void SaveSchema(const Schema& schema) const;
  // Reads the manifest; throws if missing or malformed.
  Schema LoadSchema() const;

  // Persists one view (fragment).
  void Save(const ViewResult& view) const;
  // Persists every view of a cube plus the schema manifest.
  void SaveCube(const CubeResult& cube, const Schema& schema) const;

  // Loads one view; throws when the file is missing or corrupt.
  ViewResult Load(ViewId id) const;
  // Loads every stored view.
  CubeResult LoadCube() const;

  // Views present on disk.
  std::vector<ViewId> List() const;

  bool Contains(ViewId id) const;

 private:
  std::filesystem::path PathFor(ViewId id) const;

  std::filesystem::path dir_;
};

}  // namespace sncube
