// Schedule-tree execution with pipelined aggregation — the second phase of
// every top-down cube method (paper Section 2.1/2.3).
//
// A pipeline is a maximal chain of scan edges. Its head is materialized by
// one (external-memory) sort of the parent's data; one linear scan of the
// sorted rows then emits EVERY view on the chain simultaneously, because
// each chain view's dimensions are a prefix of the head's sort order and its
// groups close exactly when that prefix changes. This is what makes
// Pipesort-style trees cheap: d views for one sort + one scan.
#pragma once

#include <cstdint>
#include <functional>

#include "io/disk.h"
#include "relation/types.h"
#include "schedule/schedule_tree.h"
#include "seqcube/cube_result.h"

namespace sncube {

struct ExecStats {
  std::uint64_t records_scanned = 0;  // rows read by pipeline scans
  std::uint64_t rows_emitted = 0;     // rows written across all views
  std::uint64_t sorts = 0;            // pipeline-head sorts performed
  std::uint64_t scans = 0;            // pipeline scan passes
  std::uint64_t hash_aggs = 0;        // pipeline heads built by hashagg
  // Σ n·log2(max(n,2)) over all sorts — multiply by the CPU sort constant
  // to get simulated seconds. Hash-built heads contribute their group sort
  // (g·log2 g) here and their linear table pass to hash_cost_units.
  double sort_cost_units = 0;
  // Σ parent rows over all hash aggregations — multiply by the CPU hash
  // constant (CostParams::cpu_hash_record_s) to get simulated seconds.
  double hash_cost_units = 0;

  ExecStats& operator+=(const ExecStats& o) {
    records_scanned += o.records_scanned;
    rows_emitted += o.rows_emitted;
    sorts += o.sorts;
    scans += o.scans;
    hash_aggs += o.hash_aggs;
    sort_cost_units += o.sort_cost_units;
    hash_cost_units += o.hash_cost_units;
    return *this;
  }

  ExecStats& operator-=(const ExecStats& o) {
    records_scanned -= o.records_scanned;
    rows_emitted -= o.rows_emitted;
    sorts -= o.sorts;
    scans -= o.scans;
    hash_aggs -= o.hash_aggs;
    sort_cost_units -= o.sort_cost_units;
    hash_cost_units -= o.hash_cost_units;
    return *this;
  }
};

// Called once per pipeline — the root scan chain first, then each sort-edge
// pipeline in tree order — with the stats increment that pipeline alone
// produced, while its trace span is still open. A caller that converts
// increments to simulated seconds therefore lands each pipeline's cost
// inside that pipeline's span instead of in one batch after the whole tree;
// the increments sum exactly to the final *stats total, so batch and
// per-pipeline charging cost the same simulated time.
using PipelineChargeHook = std::function<void(const ExecStats& delta)>;

// Materializes every view of `tree` from `root_data`, which must be the root
// view's relation: canonical column layout, rows sorted by tree.root().order
// and already aggregated (one row per distinct root key).
//
// When `disk` is non-null, pipeline sorts run through the external-memory
// sorter against it and view reads/writes are charged to it; otherwise
// everything stays in memory uncharged. Stats accumulate into *stats when
// given. The result contains every tree node (auxiliaries flagged).
CubeResult ExecuteScheduleTree(const ScheduleTree& tree, Relation root_data,
                               AggFn fn, DiskModel* disk = nullptr,
                               ExecStats* stats = nullptr,
                               const PipelineChargeHook& on_pipeline = {});

}  // namespace sncube
