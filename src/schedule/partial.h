// Partial-cube schedule trees (Section 3 of the paper, after Dehne, Eavis &
// Rau-Chaplin, "Computing Partial Data Cubes" — the paper's reference [4]).
//
// When only a subset S of views is selected, the Di-partition view sets can
// have gaps, so plain Pipesort no longer applies. Reference [4] offers two
// routes, both implemented here:
//
//  * kPrunedPipesort — build the full Pipesort tree over every view of the
//    partition's sub-lattice, then keep exactly the union of root-to-
//    selected paths. Intermediate views kept this way are materialized as
//    auxiliaries (computed locally, not merged or output) — the
//    "intermediate views" of Figure 1c.
//  * kGreedyLattice — grow a tree directly from the lattice: selected views
//    in decreasing dimension count each attach to the cheapest tree node
//    that is a proper superset, by scan when the parent still has its scan
//    slot (and is order-compatible), otherwise by sort. No intermediates
//    are introduced; scan edges may skip levels.
#pragma once

#include <vector>

#include "lattice/estimate.h"
#include "lattice/view_id.h"
#include "schedule/schedule_tree.h"

namespace sncube {

enum class PartialStrategy { kPrunedPipesort, kGreedyLattice };

// Builds a schedule tree materializing at least `selected` (all subsets of
// `root`; `root` itself may or may not be selected). Auxiliary nodes carry
// selected = false.
ScheduleTree BuildPartialTree(const std::vector<ViewId>& selected, ViewId root,
                              const std::vector<int>& root_order,
                              const ViewSizeEstimator& estimator,
                              PartialStrategy strategy);

// Picks the cheaper of the two strategies by estimated cost (what [4] does
// when allowed to choose).
ScheduleTree BuildBestPartialTree(const std::vector<ViewId>& selected,
                                  ViewId root,
                                  const std::vector<int>& root_order,
                                  const ViewSizeEstimator& estimator);

}  // namespace sncube
