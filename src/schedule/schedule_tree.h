// Schedule trees (Figure 1b/1c of the paper).
//
// A schedule tree says in which order, and by which operation, the views of
// one Di-partition are materialized. Nodes are views; the root is the
// Di-root. An edge (u → v) is labelled:
//
//   * kScan — v's dimensions are a prefix of u's sort order, so v falls out
//     of a single linear scan of u (bold edges in Figure 1b); or
//   * kSort — u must be re-sorted into an order beginning with v's
//     dimensions, after which v (and v's own scan chain) is emitted.
//
// Every node carries a sort order: the permutation of its dimensions its
// rows are sorted by when materialized. The root's order is imposed from
// outside (the global sample sort of Step 1b sorts the Di-root by
// Di,...,Dd-1); orders of nodes on the root's scan chain are therefore fixed
// prefixes of it, while other nodes' orders are chosen by the builder to
// make their own scan chains work.
//
// Trees are value types, serializable for Step 2b's broadcast ("processor
// P0 broadcasts Ti to P1..Pp-1").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lattice/estimate.h"
#include "lattice/view_id.h"
#include "relation/serialize.h"

namespace sncube {

enum class EdgeKind : std::uint8_t { kRoot, kScan, kSort };

// Engine that materializes the head of a kSort edge: re-sort the parent
// (kSort — the paper's only engine) or hash-aggregate it into the child's
// order (kHash — one unordered pass plus a sort of the distinct groups).
// Chosen per edge by ChooseBackends (schedule/backend.h); ignored on root
// and scan edges. Both engines produce byte-identical views (DESIGN.md §13).
enum class EdgeBackend : std::uint8_t { kSort, kHash };

struct ScheduleNode {
  ViewId view;
  // Sort order: global dimension indices, a permutation of view.DimList().
  // Empty until resolved (ResolveOrders fills free nodes).
  std::vector<int> order;
  int parent = -1;
  EdgeKind edge = EdgeKind::kRoot;
  std::vector<int> children;
  // Partial cubes: false for auxiliary intermediates that are computed but
  // not part of the requested output (Section 3 / Figure 1c).
  bool selected = true;
  // Whether the order was imposed (root, or scan-chained from a fixed node)
  // rather than chosen freely by the builder.
  bool order_fixed = false;
  double est_rows = 0;
  // Engine for this node's incoming kSort edge (see EdgeBackend).
  EdgeBackend backend = EdgeBackend::kSort;
};

class ScheduleTree {
 public:
  ScheduleTree() = default;

  // Creates the root node (index 0). `order` must permute root.DimList().
  int AddRoot(ViewId root, std::vector<int> order, double est_rows,
              bool selected = true);

  // Adds a view under `parent`. For kScan edges with an order-fixed parent,
  // the child's order (the parent-order prefix) is assigned and fixed here;
  // otherwise the child's order stays empty until ResolveOrders.
  int AddChild(int parent, ViewId view, EdgeKind edge, double est_rows,
               bool selected = true);

  // Fills in the orders of all free nodes: a node with a scan child adopts
  // (child order) ++ (own remaining dims, canonical); a node without one
  // uses its canonical order. Must be called once after construction.
  void ResolveOrders();

  int size() const { return static_cast<int>(nodes_.size()); }
  const ScheduleNode& node(int i) const { return nodes_.at(i); }

  // Stamps node i's incoming-edge engine (ChooseBackends and tests; the
  // builders always start from the kSort default).
  void SetBackend(int i, EdgeBackend backend) { nodes_.at(i).backend = backend; }
  static constexpr int kRootIndex = 0;
  const ScheduleNode& root() const { return nodes_.at(0); }

  // Index of i's scan child, or -1.
  int ScanChild(int i) const;

  // Index of the node for `view`, or -1.
  int Find(ViewId view) const;

  // Estimated construction cost: Σ over edges of A(parent) for scans and
  // S(parent) for sorts (A = parent row estimate, S = A·log2(A)). Used to
  // compare candidate trees and in tests.
  double EstimatedCost() const;

  // Number of selected (non-auxiliary) views, root included if selected.
  int SelectedCount() const;

  // Throws SncubeError when any invariant is violated: parent/child
  // consistency, child ⊊ parent, orders permute the node's dims, scan
  // prefix property, at most one scan child per node.
  void Validate() const;

  ByteBuffer Serialize() const;
  static ScheduleTree Deserialize(const ByteBuffer& bytes);

  // Multi-line human-readable rendering (examples / debugging).
  std::string ToString(const Schema& schema) const;

  // Graphviz rendering: bold edges = scans (the paper's Figure 1b
  // convention), dashed boxes = auxiliary views. Pipe into `dot -Tsvg`.
  std::string ToDot(const Schema& schema) const;

 private:
  std::vector<ScheduleNode> nodes_;
};

// Sort cost model shared by the builders: a view of r rows costs r to scan
// and r·log2(max(r,2)) to sort.
double ScanCost(double rows);
double SortCost(double rows);

// True when `child` could be produced from `parent` by a linear scan: a
// free-order parent can put any proper subset's dims first; an order-fixed
// parent only scans out prefixes of its imposed order. (Whether the parent
// still has its single scan slot is the caller's concern.)
bool ScanEligible(const ScheduleNode& parent, ViewId child);

}  // namespace sncube
