// Cost-based engine choice for schedule-tree sort edges.
//
// Every kSort edge (u → v) can be materialized two ways:
//
//   sort:  re-sort u's A_u rows into v's order, then emit v's scan chain —
//          cost S(A_u) = A_u·log2(A_u) sort-comparison units;
//   hash:  one unordered pass folds u's rows into a concurrent hash table
//          keyed on v's dimensions (src/hashagg/), then only the A_v
//          distinct groups are sorted into v's order — cost
//          r·A_u + S(A_v), where r = cpu_hash_record_s/cpu_sort_record_s
//          prices one hash-table probe in sort-comparison units.
//
// Hash wins when the edge reduces cardinality enough that sorting g ≪ n
// groups plus a linear pass beats sorting all n rows; sort wins on
// low-reduction edges where the hash pass is pure overhead. A_u and A_v are
// the lattice estimator rows already stamped on the nodes (est_rows), so
// auto mode needs no new statistics. Ties break to sort — the
// paper-faithful engine and the one external sort can spill.
//
// Both engines produce byte-identical views (DESIGN.md §13), so a wrong
// estimate costs only time, never correctness.
#pragma once

#include <optional>
#include <string>

#include "schedule/schedule_tree.h"

namespace sncube {

// How `--backend` / SNCUBE_BACKEND resolves edges: force one engine, or
// cost-choose per edge.
enum class BackendMode : std::uint8_t { kSort, kHash, kAuto };

// "sort" / "hash" / "auto" → mode; anything else → nullopt.
std::optional<BackendMode> ParseBackendMode(const std::string& text);
const char* BackendModeName(BackendMode mode);

// Per-edge engine costs in sort-comparison units (see header comment).
double SortBackendCost(double parent_rows);
double HashBackendCost(double parent_rows, double head_rows,
                       double hash_record_ratio);

// Stamps the incoming-edge engine of every kSort node of `tree`:
// kSort/kHash force that engine everywhere, kAuto picks hash on an edge iff
// it is strictly cheaper under the cost model (tie → sort).
// hash_record_ratio = CostParams::cpu_hash_record_s / cpu_sort_record_s.
void ChooseBackends(ScheduleTree& tree, BackendMode mode,
                    double hash_record_ratio);

}  // namespace sncube
