// Bipartite matching, the combinatorial core of Pipesort's schedule-tree
// construction (Section 2.1: "a minimum cost bi-partite matching" between
// adjacent lattice levels).
//
// HungarianMinCost solves the rectangular assignment problem exactly in
// O(rows²·cols) (Kuhn–Munkres with potentials). MaxWeightBipartiteMatching
// is the wrapper the scheduler uses: it maximizes total weight, may leave
// vertices unmatched, and ignores non-positive weights (a child whose best
// scan parent saves nothing over a plain sort is simply not scan-matched).
#pragma once

#include <cstddef>
#include <vector>

namespace sncube {

// cost[i][j] = cost of assigning row i to column j. Requires
// rows <= cols; every row is assigned to a distinct column minimizing total
// cost. Returns assignment[i] = column of row i.
std::vector<int> HungarianMinCost(const std::vector<std::vector<double>>& cost);

// weight[i][j] > 0 are admissible edges; <= 0 means "no edge". Returns
// match[i] = j (or -1 when row i is left unmatched); each column used at
// most once; total matched weight is maximal.
std::vector<int> MaxWeightBipartiteMatching(
    const std::vector<std::vector<double>>& weight);

}  // namespace sncube
