#include "schedule/schedule_tree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>

#include "common/status.h"
#include "net/wire.h"

namespace sncube {

double ScanCost(double rows) { return rows; }

bool ScanEligible(const ScheduleNode& parent, ViewId child) {
  if (!child.IsProperSubsetOf(parent.view)) return false;
  if (!parent.order_fixed) return true;
  const int k = child.dim_count();
  for (int i = 0; i < k; ++i) {
    if (!child.Contains(parent.order[i])) return false;
  }
  return true;
}

double SortCost(double rows) {
  return rows * std::log2(std::max(rows, 2.0));
}

int ScheduleTree::AddRoot(ViewId root, std::vector<int> order,
                          double est_rows, bool selected) {
  SNCUBE_CHECK_MSG(nodes_.empty(), "root must be the first node");
  ScheduleNode n;
  n.view = root;
  n.order = std::move(order);
  n.edge = EdgeKind::kRoot;
  n.selected = selected;
  n.order_fixed = true;
  n.est_rows = est_rows;
  // The imposed order must permute the root's dimensions.
  std::vector<int> sorted = n.order;
  std::sort(sorted.begin(), sorted.end());
  SNCUBE_CHECK_MSG(sorted == root.DimList(), "root order must permute root");
  nodes_.push_back(std::move(n));
  return 0;
}

int ScheduleTree::AddChild(int parent, ViewId view, EdgeKind edge,
                           double est_rows, bool selected) {
  SNCUBE_CHECK(parent >= 0 && parent < size());
  SNCUBE_CHECK(edge == EdgeKind::kScan || edge == EdgeKind::kSort);
  ScheduleNode& p = nodes_[parent];
  SNCUBE_CHECK_MSG(view.IsProperSubsetOf(p.view),
                   "child must be a proper subset of its parent");
  if (edge == EdgeKind::kScan) {
    SNCUBE_CHECK_MSG(ScanChild(parent) < 0,
                     "a node can feed at most one scan child");
  }

  ScheduleNode n;
  n.view = view;
  n.parent = parent;
  n.edge = edge;
  n.selected = selected;
  n.est_rows = est_rows;
  if (edge == EdgeKind::kScan && p.order_fixed) {
    // The child is the prefix of the parent's imposed order.
    const int k = view.dim_count();
    SNCUBE_CHECK(static_cast<int>(p.order.size()) >= k);
    std::vector<int> prefix(p.order.begin(), p.order.begin() + k);
    std::vector<int> sorted = prefix;
    std::sort(sorted.begin(), sorted.end());
    SNCUBE_CHECK_MSG(sorted == view.DimList(),
                     "scan child of an order-fixed parent must be its prefix");
    n.order = std::move(prefix);
    n.order_fixed = true;
  }
  const int index = size();
  nodes_.push_back(std::move(n));
  nodes_[parent].children.push_back(index);
  return index;
}

void ScheduleTree::ResolveOrders() {
  // A free node adopts its scan child's order followed by its remaining
  // dimensions; scan chains bottom out at nodes with no scan child, which
  // take their canonical order.
  std::function<void(int)> resolve = [&](int i) {
    ScheduleNode& n = nodes_[i];
    if (!n.order.empty()) return;
    const int sc = ScanChild(i);
    if (sc < 0) {
      n.order = n.view.DimList();
      return;
    }
    resolve(sc);
    std::vector<int> order = nodes_[sc].order;
    for (int dim : n.view.DimList()) {
      if (!nodes_[sc].view.Contains(dim)) order.push_back(dim);
    }
    n.order = std::move(order);
  };
  for (int i = 0; i < size(); ++i) resolve(i);
}

int ScheduleTree::ScanChild(int i) const {
  for (int c : nodes_.at(i).children) {
    if (nodes_[c].edge == EdgeKind::kScan) return c;
  }
  return -1;
}

int ScheduleTree::Find(ViewId view) const {
  for (int i = 0; i < size(); ++i) {
    if (nodes_[i].view == view) return i;
  }
  return -1;
}

double ScheduleTree::EstimatedCost() const {
  double cost = 0;
  for (const auto& n : nodes_) {
    if (n.parent < 0) continue;
    const double parent_rows = nodes_[n.parent].est_rows;
    cost += (n.edge == EdgeKind::kScan) ? ScanCost(parent_rows)
                                        : SortCost(parent_rows);
  }
  return cost;
}

int ScheduleTree::SelectedCount() const {
  int count = 0;
  for (const auto& n : nodes_) count += n.selected ? 1 : 0;
  return count;
}

void ScheduleTree::Validate() const {
  SNCUBE_CHECK_MSG(!nodes_.empty(), "empty schedule tree");
  SNCUBE_CHECK(nodes_[0].parent == -1 && nodes_[0].edge == EdgeKind::kRoot);
  for (int i = 0; i < size(); ++i) {
    const ScheduleNode& n = nodes_[i];
    if (i != 0) {
      SNCUBE_CHECK(n.parent >= 0 && n.parent < i);  // topological order
      SNCUBE_CHECK(n.edge != EdgeKind::kRoot);
      const ScheduleNode& p = nodes_[n.parent];
      SNCUBE_CHECK_MSG(n.view.IsProperSubsetOf(p.view),
                       "child view not a proper subset of parent");
      const auto& kids = p.children;
      SNCUBE_CHECK(std::find(kids.begin(), kids.end(), i) != kids.end());
    }
    // Order permutes the node's dimensions.
    std::vector<int> sorted = n.order;
    std::sort(sorted.begin(), sorted.end());
    SNCUBE_CHECK_MSG(sorted == n.view.DimList(),
                     "node order is not a permutation of its dims");
    // At most one scan child; every scan child is a prefix of this order.
    int scans = 0;
    for (int c : n.children) {
      SNCUBE_CHECK(c > i && c < size());
      SNCUBE_CHECK(nodes_[c].parent == i);
      if (nodes_[c].edge == EdgeKind::kScan) {
        ++scans;
        const auto& child_order = nodes_[c].order;
        SNCUBE_CHECK(child_order.size() <= n.order.size());
        for (std::size_t k = 0; k < child_order.size(); ++k) {
          SNCUBE_CHECK_MSG(child_order[k] == n.order[k],
                           "scan child order is not a parent-order prefix");
        }
      }
    }
    SNCUBE_CHECK_MSG(scans <= 1, "more than one scan child");
  }
}

ByteBuffer ScheduleTree::Serialize() const {
  ByteBuffer buf;
  WirePut(buf, static_cast<std::uint32_t>(nodes_.size()));
  for (const auto& n : nodes_) {
    WirePut(buf, n.view.mask());
    WirePut(buf, static_cast<std::int32_t>(n.parent));
    WirePut(buf, static_cast<std::uint8_t>(n.edge));
    WirePut(buf, static_cast<std::uint8_t>(n.selected ? 1 : 0));
    WirePut(buf, static_cast<std::uint8_t>(n.order_fixed ? 1 : 0));
    WirePut(buf, static_cast<std::uint8_t>(n.backend));
    WirePut(buf, n.est_rows);
    std::vector<std::uint8_t> order(n.order.begin(), n.order.end());
    WirePutVector(buf, order);
  }
  return buf;
}

ScheduleTree ScheduleTree::Deserialize(const ByteBuffer& bytes) {
  ScheduleTree tree;
  WireReader r(bytes);
  const auto count = r.Get<std::uint32_t>();
  tree.nodes_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ScheduleNode n;
    n.view = ViewId(r.Get<std::uint32_t>());
    n.parent = r.Get<std::int32_t>();
    n.edge = static_cast<EdgeKind>(r.Get<std::uint8_t>());
    n.selected = r.Get<std::uint8_t>() != 0;
    n.order_fixed = r.Get<std::uint8_t>() != 0;
    const auto backend = r.Get<std::uint8_t>();
    if (backend > static_cast<std::uint8_t>(EdgeBackend::kHash)) {
      throw SncubeCorruptionError("schedule tree: backend out of range");
    }
    n.backend = static_cast<EdgeBackend>(backend);
    n.est_rows = r.Get<double>();
    const auto order = r.GetVector<std::uint8_t>();
    n.order.assign(order.begin(), order.end());
    tree.nodes_.push_back(std::move(n));
  }
  if (!r.AtEnd()) {
    throw SncubeCorruptionError("schedule tree: trailing bytes");
  }
  // Rebuild children lists from parents. Parent indices come off the wire,
  // so validate before indexing: node 0 is the root (parent -1), every later
  // node must point at an earlier one (topological order).
  if (!tree.nodes_.empty() && tree.nodes_[0].parent != -1) {
    throw SncubeCorruptionError("schedule tree: node 0 is not a root");
  }
  for (int i = 1; i < tree.size(); ++i) {
    const int parent = tree.nodes_[i].parent;
    if (parent < 0 || parent >= i) {
      throw SncubeCorruptionError("schedule tree: parent index out of range");
    }
    tree.nodes_[parent].children.push_back(i);
  }
  return tree;
}

std::string ScheduleTree::ToDot(const Schema& schema) const {
  std::ostringstream os;
  os << "digraph schedule {\n  rankdir=TB;\n  node [shape=box];\n";
  for (int i = 0; i < size(); ++i) {
    const ScheduleNode& n = nodes_[i];
    os << "  n" << i << " [label=\"" << n.view.Name(schema) << "\\n~"
       << static_cast<long long>(n.est_rows) << " rows\"";
    if (!n.selected) os << ", style=dashed";
    os << "];\n";
    if (n.parent >= 0) {
      os << "  n" << n.parent << " -> n" << i;
      if (n.edge == EdgeKind::kScan) {
        os << " [style=bold, label=\"scan\"]";
      } else {
        os << " [label=\"sort\"]";
      }
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string ScheduleTree::ToString(const Schema& schema) const {
  std::ostringstream os;
  std::function<void(int, int)> print = [&](int i, int depth) {
    const ScheduleNode& n = nodes_[i];
    for (int k = 0; k < depth; ++k) os << "  ";
    os << (n.edge == EdgeKind::kScan   ? "scan "
           : n.edge == EdgeKind::kSort ? "sort "
                                       : "root ");
    os << n.view.Name(schema);
    os << " [order ";
    for (std::size_t k = 0; k < n.order.size(); ++k) {
      os << (k ? "," : "") << schema.name(n.order[k]);
    }
    os << "] ~" << static_cast<long long>(n.est_rows) << " rows";
    if (!n.selected) os << " (aux)";
    os << "\n";
    for (int c : n.children) print(c, depth + 1);
  };
  print(0, 0);
  return os.str();
}

}  // namespace sncube
