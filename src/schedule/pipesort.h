// Pipesort schedule-tree construction (Sarawagi, Agrawal & Gupta [20]),
// applied per Di-partition as in Step 2a of Procedure 1.
//
// Levels of the partition's sub-lattice are processed top-down; between each
// pair of adjacent levels a maximum-weight bipartite matching decides which
// child is produced from which parent by a cheap linear scan rather than a
// re-sort. The matching formulation: a child's fallback is its cheapest
// sort parent (cost S(p) = |p|·log|p|); scan-matching it to parent p instead
// saves minSort(child) − A(p), and each parent can drive at most one scan
// (its sort order has exactly one chain of prefixes). Maximizing the total
// saving over a bipartite matching is exactly Pipesort's minimum-cost
// level matching.
//
// The root's sort order is imposed by the caller (the global sort of
// Step 1b), so scan edges out of the root — and transitively down the
// root's scan chain — are only offered to prefix-compatible children.
#pragma once

#include <vector>

#include "lattice/estimate.h"
#include "lattice/view_id.h"
#include "schedule/schedule_tree.h"

namespace sncube {

// Builds the Pipesort tree for `views`, all of which must be subsets of
// `root` (the root itself may be included in `views`; if absent it is added
// as an auxiliary node). Every non-root view must have a proper-superset
// parent exactly one level above it within views ∪ {root} — true for full
// cube Di-partitions; partial-cube view sets must be completed first (see
// partial.h).
ScheduleTree BuildPipesortTree(const std::vector<ViewId>& views, ViewId root,
                               const std::vector<int>& root_order,
                               const ViewSizeEstimator& estimator);

}  // namespace sncube
