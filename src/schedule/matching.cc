#include "schedule/matching.h"

#include <limits>

#include "common/status.h"

namespace sncube {

std::vector<int> HungarianMinCost(
    const std::vector<std::vector<double>>& cost) {
  const int n = static_cast<int>(cost.size());
  if (n == 0) return {};
  const int m = static_cast<int>(cost[0].size());
  SNCUBE_CHECK_MSG(n <= m, "assignment needs rows <= cols");
  for (const auto& row : cost) SNCUBE_CHECK(static_cast<int>(row.size()) == m);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Kuhn–Munkres with row/column potentials (1-based internal indexing).
  std::vector<double> u(n + 1, 0.0);
  std::vector<double> v(m + 1, 0.0);
  std::vector<int> p(m + 1, 0);    // p[j] = row matched to column j
  std::vector<int> way(m + 1, 0);  // alternating-path predecessor column

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<bool> used(m + 1, false);
    do {
      used[j0] = true;
      const int i0 = p[j0];
      double delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Unwind the alternating path.
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> assignment(n, -1);
  for (int j = 1; j <= m; ++j) {
    if (p[j] != 0) assignment[p[j] - 1] = j - 1;
  }
  return assignment;
}

std::vector<int> MaxWeightBipartiteMatching(
    const std::vector<std::vector<double>>& weight) {
  const int n = static_cast<int>(weight.size());
  if (n == 0) return {};
  const int m = static_cast<int>(weight[0].size());

  // Minimize cost = -weight over real columns; n dummy columns at cost 0
  // represent "leave unmatched". Non-positive weights also cost 0, so the
  // optimum never gains from them; they are filtered from the result.
  std::vector<std::vector<double>> cost(
      n, std::vector<double>(m + n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      if (weight[i][j] > 0) cost[i][j] = -weight[i][j];
    }
  }
  const std::vector<int> assignment = HungarianMinCost(cost);

  std::vector<int> match(n, -1);
  for (int i = 0; i < n; ++i) {
    const int j = assignment[i];
    if (j >= 0 && j < m && weight[i][j] > 0) match[i] = j;
  }
  return match;
}

}  // namespace sncube
