#include "schedule/backend.h"

namespace sncube {

std::optional<BackendMode> ParseBackendMode(const std::string& text) {
  if (text == "sort") return BackendMode::kSort;
  if (text == "hash") return BackendMode::kHash;
  if (text == "auto") return BackendMode::kAuto;
  return std::nullopt;
}

const char* BackendModeName(BackendMode mode) {
  switch (mode) {
    case BackendMode::kSort:
      return "sort";
    case BackendMode::kHash:
      return "hash";
    case BackendMode::kAuto:
      return "auto";
  }
  return "?";  // unreachable
}

double SortBackendCost(double parent_rows) { return SortCost(parent_rows); }

double HashBackendCost(double parent_rows, double head_rows,
                       double hash_record_ratio) {
  return hash_record_ratio * parent_rows + SortCost(head_rows);
}

void ChooseBackends(ScheduleTree& tree, BackendMode mode,
                    double hash_record_ratio) {
  for (int i = 0; i < tree.size(); ++i) {
    const ScheduleNode& n = tree.node(i);
    if (n.edge != EdgeKind::kSort) {
      tree.SetBackend(i, EdgeBackend::kSort);
      continue;
    }
    switch (mode) {
      case BackendMode::kSort:
        tree.SetBackend(i, EdgeBackend::kSort);
        break;
      case BackendMode::kHash:
        tree.SetBackend(i, EdgeBackend::kHash);
        break;
      case BackendMode::kAuto: {
        const double parent_rows = tree.node(n.parent).est_rows;
        const bool hash_cheaper =
            HashBackendCost(parent_rows, n.est_rows, hash_record_ratio) <
            SortBackendCost(parent_rows);
        tree.SetBackend(
            i, hash_cheaper ? EdgeBackend::kHash : EdgeBackend::kSort);
        break;
      }
    }
  }
}

}  // namespace sncube
