#include "schedule/pipesort.h"

#include <algorithm>
#include <limits>
#include <map>

#include "common/status.h"
#include "schedule/matching.h"

namespace sncube {

ScheduleTree BuildPipesortTree(const std::vector<ViewId>& views, ViewId root,
                               const std::vector<int>& root_order,
                               const ViewSizeEstimator& estimator) {
  ScheduleTree tree;
  bool root_selected = false;
  std::map<int, std::vector<ViewId>, std::greater<>> levels;  // level → views
  for (ViewId v : views) {
    SNCUBE_CHECK_MSG(v.IsSubsetOf(root), "view outside the partition root");
    if (v == root) {
      root_selected = true;
      continue;
    }
    levels[v.dim_count()].push_back(v);
  }
  for (auto& [level, vs] : levels) {
    SNCUBE_CHECK_MSG(level < root.dim_count(), "duplicate root level");
    std::sort(vs.begin(), vs.end());
  }

  tree.AddRoot(root, root_order, estimator.EstimateRows(root), root_selected);

  // node index per already-placed view, maintained level by level.
  std::vector<int> parents{ScheduleTree::kRootIndex};
  int parent_level = root.dim_count();

  for (const auto& [level, children] : levels) {
    SNCUBE_CHECK_MSG(
        level == parent_level - 1,
        "level gap in partition views — complete the set first (partial.h)");

    // Fallback: cheapest sort parent per child.
    const int nc = static_cast<int>(children.size());
    const int np = static_cast<int>(parents.size());
    std::vector<double> min_sort(nc, std::numeric_limits<double>::infinity());
    std::vector<int> min_sort_parent(nc, -1);
    for (int c = 0; c < nc; ++c) {
      for (int p = 0; p < np; ++p) {
        const ScheduleNode& pn = tree.node(parents[p]);
        if (!children[c].IsProperSubsetOf(pn.view)) continue;
        const double s = SortCost(pn.est_rows);
        if (s < min_sort[c]) {
          min_sort[c] = s;
          min_sort_parent[c] = p;
        }
      }
      SNCUBE_CHECK_MSG(min_sort_parent[c] >= 0,
                       "view has no parent one level up");
    }

    // Scan matching: weight = saving of a scan over the child's best sort.
    std::vector<std::vector<double>> weight(nc, std::vector<double>(np, 0.0));
    for (int c = 0; c < nc; ++c) {
      for (int p = 0; p < np; ++p) {
        const ScheduleNode& pn = tree.node(parents[p]);
        if (!ScanEligible(pn, children[c])) continue;
        weight[c][p] = min_sort[c] - ScanCost(pn.est_rows);
      }
    }
    const std::vector<int> match = MaxWeightBipartiteMatching(weight);

    std::vector<int> placed;
    placed.reserve(children.size());
    for (int c = 0; c < nc; ++c) {
      const bool scan = match[c] >= 0;
      const int parent_index = parents[scan ? match[c] : min_sort_parent[c]];
      placed.push_back(tree.AddChild(parent_index, children[c],
                                     scan ? EdgeKind::kScan : EdgeKind::kSort,
                                     estimator.EstimateRows(children[c])));
    }
    parents = std::move(placed);
    parent_level = level;
  }

  tree.ResolveOrders();
  return tree;
}

}  // namespace sncube
