#include "schedule/partial.h"

#include <algorithm>
#include <limits>

#include "common/status.h"
#include "schedule/pipesort.h"

namespace sncube {
namespace {

// Deterministic membership set over the selected views: a sorted vector
// with binary search instead of an unordered_set, so there is no container
// here whose walk order could ever leak into the schedule.
std::vector<ViewId> SortedSet(const std::vector<ViewId>& views) {
  std::vector<ViewId> out(views);
  std::sort(out.begin(), out.end());
  return out;
}

bool SetContains(const std::vector<ViewId>& sorted_set, ViewId v) {
  return std::binary_search(sorted_set.begin(), sorted_set.end(), v);
}

// The partition's complete sub-lattice: every subset of `root` keeping the
// root's leading dimension, plus the empty view when it is selected (it only
// occurs in the last partition). Exponential in root's dimension count — the
// paper's workloads stay at d ≤ 10.
std::vector<ViewId> PartitionUniverse(ViewId root, bool include_empty) {
  SNCUBE_CHECK_MSG(root.dim_count() <= 16,
                   "pruned-Pipesort universe too large; use kGreedyLattice");
  const auto dims = root.DimList();
  SNCUBE_CHECK(!dims.empty());
  const int lead = dims.front();
  std::vector<int> rest(dims.begin() + 1, dims.end());

  std::vector<ViewId> universe;
  universe.reserve((1u << rest.size()) + 1);
  for (std::uint32_t bits = 0; bits < (1u << rest.size()); ++bits) {
    ViewId v = ViewId::Empty().With(lead);
    for (std::size_t i = 0; i < rest.size(); ++i) {
      if ((bits >> i) & 1u) v = v.With(rest[i]);
    }
    universe.push_back(v);
  }
  if (include_empty) universe.push_back(ViewId::Empty());
  return universe;
}

ScheduleTree PrunedPipesortTree(const std::vector<ViewId>& selected,
                                ViewId root,
                                const std::vector<int>& root_order,
                                const ViewSizeEstimator& estimator) {
  const std::vector<ViewId> wanted = SortedSet(selected);
  if (root.empty()) {
    // Degenerate partition holding only the "all" view.
    ScheduleTree t;
    t.AddRoot(root, root_order, estimator.EstimateRows(root), true);
    t.ResolveOrders();
    return t;
  }
  // The pruned strategy enumerates the partition's sub-lattice, which only
  // covers views keeping the root's leading dimension — the shape every
  // Di-partition has. Reject misuse on arbitrary view sets.
  const int lead = root.DimList().front();
  for (ViewId v : selected) {
    SNCUBE_CHECK_MSG(v.empty() || v.Contains(lead),
                     "kPrunedPipesort needs partition-shaped selections");
  }
  const bool include_empty = SetContains(wanted, ViewId::Empty());
  const ScheduleTree full = BuildPipesortTree(
      PartitionUniverse(root, include_empty), root, root_order, estimator);

  // Keep the union of root→selected paths.
  std::vector<bool> keep(static_cast<std::size_t>(full.size()), false);
  keep[ScheduleTree::kRootIndex] = true;
  for (int i = 0; i < full.size(); ++i) {
    if (!SetContains(wanted, full.node(i).view)) continue;
    for (int a = i; a >= 0; a = full.node(a).parent) {
      if (keep[a]) break;
      keep[a] = true;
    }
  }

  // Rebuild with kept nodes only (original index order is topological).
  ScheduleTree pruned;
  std::vector<int> remap(static_cast<std::size_t>(full.size()), -1);
  remap[0] = pruned.AddRoot(root, root_order, full.root().est_rows,
                            SetContains(wanted, root));
  for (int i = 1; i < full.size(); ++i) {
    if (!keep[i]) continue;
    const ScheduleNode& n = full.node(i);
    remap[i] = pruned.AddChild(remap[n.parent], n.view, n.edge, n.est_rows,
                               SetContains(wanted, n.view));
  }
  pruned.ResolveOrders();
  return pruned;
}

ScheduleTree GreedyLatticeTree(const std::vector<ViewId>& selected,
                               ViewId root,
                               const std::vector<int>& root_order,
                               const ViewSizeEstimator& estimator) {
  const std::vector<ViewId> wanted = SortedSet(selected);
  ScheduleTree tree;
  tree.AddRoot(root, root_order, estimator.EstimateRows(root),
               SetContains(wanted, root));

  std::vector<ViewId> todo;
  for (ViewId v : selected) {
    SNCUBE_CHECK_MSG(v.IsSubsetOf(root), "selected view outside the root");
    if (v != root) todo.push_back(v);
  }
  // Bigger views first so they are available as parents; mask order breaks
  // ties deterministically.
  std::sort(todo.begin(), todo.end(), [](ViewId a, ViewId b) {
    if (a.dim_count() != b.dim_count()) return a.dim_count() > b.dim_count();
    return a.mask() < b.mask();
  });

  for (ViewId v : todo) {
    double best_cost = std::numeric_limits<double>::infinity();
    int best_parent = -1;
    EdgeKind best_kind = EdgeKind::kSort;
    for (int u = 0; u < tree.size(); ++u) {
      const ScheduleNode& un = tree.node(u);
      if (!v.IsProperSubsetOf(un.view)) continue;
      // Scan beats sort from the same parent, so test it first.
      if (tree.ScanChild(u) < 0 && ScanEligible(un, v)) {
        const double c = ScanCost(un.est_rows);
        if (c < best_cost) {
          best_cost = c;
          best_parent = u;
          best_kind = EdgeKind::kScan;
        }
      }
      const double s = SortCost(un.est_rows);
      if (s < best_cost) {
        best_cost = s;
        best_parent = u;
        best_kind = EdgeKind::kSort;
      }
    }
    SNCUBE_CHECK(best_parent >= 0);  // root is always a superset
    tree.AddChild(best_parent, v, best_kind, estimator.EstimateRows(v));
  }
  tree.ResolveOrders();
  return tree;
}

}  // namespace

ScheduleTree BuildPartialTree(const std::vector<ViewId>& selected, ViewId root,
                              const std::vector<int>& root_order,
                              const ViewSizeEstimator& estimator,
                              PartialStrategy strategy) {
  SNCUBE_CHECK(!selected.empty());
  switch (strategy) {
    case PartialStrategy::kPrunedPipesort:
      return PrunedPipesortTree(selected, root, root_order, estimator);
    case PartialStrategy::kGreedyLattice:
      return GreedyLatticeTree(selected, root, root_order, estimator);
  }
  SNCUBE_CHECK_MSG(false, "unknown strategy");
  return ScheduleTree{};
}

ScheduleTree BuildBestPartialTree(const std::vector<ViewId>& selected,
                                  ViewId root,
                                  const std::vector<int>& root_order,
                                  const ViewSizeEstimator& estimator) {
  ScheduleTree pruned = BuildPartialTree(selected, root, root_order, estimator,
                                         PartialStrategy::kPrunedPipesort);
  ScheduleTree greedy = BuildPartialTree(selected, root, root_order, estimator,
                                         PartialStrategy::kGreedyLattice);
  // Auxiliary views cost real work too; EstimatedCost already counts their
  // incoming edges, so a straight comparison is fair.
  return pruned.EstimatedCost() <= greedy.EstimatedCost() ? std::move(pruned)
                                                          : std::move(greedy);
}

}  // namespace sncube
