#include "hashagg/hash_agg.h"

#include <cstddef>
#include <numeric>
#include <vector>

#include "common/status.h"
#include "exec/parallel_algo.h"
#include "hashagg/concurrent_map.h"
#include "lattice/view_id.h"

namespace sncube::hashagg {
namespace {

// Rows per ParallelFor chunk: big enough that stripe-lock traffic, not
// scheduling, dominates; small enough to load-balance skewed key runs.
constexpr std::size_t kGrainRows = 2048;

}  // namespace

Relation HashAggregate(const Relation& rel, std::span<const int> cols,
                       AggFn fn, HashAggStats* stats) {
  const int w = static_cast<int>(cols.size());
  SNCUBE_CHECK(w <= ViewId::kMaxDims);
  for (int c : cols) {
    SNCUBE_CHECK(c >= 0 && c < rel.width());
  }

  Relation out(w);
  if (rel.empty()) return out;

  ConcurrentAggMap map;
  exec::ParallelForAuto(
      rel.size(), kGrainRows,
      [&](std::size_t begin, std::size_t end) {
        GroupKey key{};  // trailing words stay zero for every row
        for (std::size_t r = begin; r < end; ++r) {
          for (int k = 0; k < w; ++k) {
            key.words[static_cast<std::size_t>(k)] =
                rel.key(r, cols[static_cast<std::size_t>(k)]);
          }
          map.Combine(key, rel.measure(r), fn);
        }
      });

  // Drain order depends on the thread schedule; the group keys are distinct,
  // so the stable sort below has a unique fixed point and erases it.
  const std::vector<std::pair<GroupKey, Measure>> groups = map.Drain();
  Relation unsorted(w);
  unsorted.Reserve(groups.size());
  for (const auto& [key, m] : groups) {
    unsorted.Append(std::span<const Key>(key.words.data(),
                                         static_cast<std::size_t>(w)),
                    m);
  }
  std::vector<int> out_cols(static_cast<std::size_t>(w));
  std::iota(out_cols.begin(), out_cols.end(), 0);
  out = exec::SortRelationAuto(unsorted, out_cols);

  if (stats != nullptr) {
    stats->rows_hashed += rel.size();
    stats->groups += out.size();
  }
  return out;
}

}  // namespace sncube::hashagg
