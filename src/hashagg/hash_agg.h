// Hash-based group-by aggregation: the second view-computation engine.
//
// HashAggregate(rel, cols, fn) produces, byte for byte, the same Relation
// as relation/aggregate.h's SortAndAggregate(rel, cols, fn): width
// cols.size(), columns in `cols` order, one row per distinct group, rows
// ascending-lexicographic in that order. Instead of sorting all n input
// rows (n·log2 n comparisons) it makes one unordered parallel pass that
// folds each row into a lock-striped concurrent table (concurrent_map.h)
// and then sorts only the g distinct groups (g·log2 g, typically g ≪ n) —
// the trade the scheduler's cost model prices per edge (schedule/backend.h).
//
// Determinism: every AggFn is associative and commutative over int64, so
// per-group aggregates are independent of combine order; group keys are
// distinct, so the final comparison sort has exactly one fixed point. The
// result is therefore identical for any pool, thread count, or stripe
// count — property-tested against the sort backend in tests.
#pragma once

#include <cstdint>
#include <span>

#include "relation/relation.h"

namespace sncube::hashagg {

struct HashAggStats {
  std::uint64_t rows_hashed = 0;  // input rows folded into the table
  std::uint64_t groups = 0;       // distinct groups emitted
};

// Group `rel` by `cols` (indices into rel's columns; any order, no
// duplicates, size ≤ ViewId::kMaxDims) and fold measures with `fn`.
// Runs on exec::CurrentPool() when one is installed (via
// exec::ParallelForAuto); serial otherwise. cols may be empty — matching
// SortAndAggregate's width-0 contract, the result is one zero-width row
// aggregating every input row (empty input → empty output).
Relation HashAggregate(const Relation& rel, std::span<const int> cols,
                       AggFn fn, HashAggStats* stats = nullptr);

}  // namespace sncube::hashagg
