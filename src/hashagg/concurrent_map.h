// Lock-striped concurrent aggregation map: the shared-memory half of the
// hash backend (hash_agg.h).
//
// Keys are the group-by prefix of a fixed-width record, zero-padded to
// ViewId::kMaxDims words so one POD key type serves every view width.
// The table is striped: a key's hash picks one of `stripes` independent
// (mutex, unordered_map) pairs, so concurrent Combine calls only contend
// when they land on the same stripe — the classic design of the concurrent
// maps in "Global Hash Tables Strike Back!" (PAPERS.md), minus resizing
// exotica we don't need for bounded cube widths.
//
// Determinism: Combine is associative and commutative for every AggFn
// (int64 wrapping sum, min, max), so the aggregate per key is independent
// of arrival order. Drain never traverses the unordered_map — each stripe
// keeps an insertion log of node pointers (stable across rehash) and the
// caller sorts the drained rows — so no iteration order ever reaches an
// output. That is why the single sncheck:allow below is safe: the table is
// lookup-only with respect to emission.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "lattice/view_id.h"
#include "relation/types.h"

namespace sncube::hashagg {

// One padded group key. Unused trailing words are zero, so equality and
// hashing over the full array are width-agnostic.
struct GroupKey {
  std::array<Key, ViewId::kMaxDims> words;
  bool operator==(const GroupKey&) const = default;
};

// FNV-1a over the padded words: deterministic across platforms (unlike
// std::hash), which keeps stripe assignment reproducible in tests.
struct GroupKeyHash {
  std::size_t operator()(const GroupKey& k) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (Key w : k.words) {
      h ^= w;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

class ConcurrentAggMap {
 public:
  static constexpr std::size_t kDefaultStripes = 64;

  // `stripes` is rounded up to a power of two. Small counts are legal (the
  // contention test uses 2); 1 degenerates to a single global lock.
  explicit ConcurrentAggMap(std::size_t stripes = kDefaultStripes) {
    std::size_t n = 1;
    while (n < stripes) n <<= 1;
    stripes_ = std::vector<Stripe>(n);
  }

  // Folds (key, m) into the table under `fn`. Thread-safe; callable from
  // TaskPool workers.
  void Combine(const GroupKey& key, Measure m, AggFn fn) {
    Stripe& s = stripes_[StripeIndex(key)];
    MutexLock lock(s.mu);
    auto [it, inserted] = s.table.try_emplace(key, m);
    if (inserted) {
      s.log.push_back(&*it);
    } else {
      it->second = CombineMeasure(fn, it->second, m);
    }
  }

  // Total distinct groups.
  std::size_t size() const {
    std::size_t total = 0;
    for (auto& s : stripes_) {
      MutexLock lock(s.mu);
      total += s.table.size();
    }
    return total;
  }

  // Moves every (key, measure) pair out, stripe by stripe in stripe order,
  // within a stripe in insertion order. That order depends on the thread
  // schedule — callers MUST sort before emitting rows (hash_agg.cc does).
  std::vector<std::pair<GroupKey, Measure>> Drain() {
    std::vector<std::pair<GroupKey, Measure>> out;
    out.reserve(size());
    for (auto& s : stripes_) {
      MutexLock lock(s.mu);
      for (const auto* node : s.log) out.emplace_back(node->first, node->second);
      s.table.clear();
      s.log.clear();
    }
    return out;
  }

 private:
  struct Stripe {
    mutable Mutex mu;
    // Lookup-only table: emission never iterates it — Drain walks `log`
    // (insertion order) and the rows are sorted before any output, so the
    // unordered iteration order cannot leak into results.
    // sncheck:allow(unordered-iter): lookup-only; Drain walks the insertion log and hash_agg.cc sorts drained rows before emission
    std::unordered_map<GroupKey, Measure, GroupKeyHash> table
        SNCUBE_GUARDED_BY(mu);
    // Pointers into `table` nodes (stable across rehash), in insertion
    // order.
    std::vector<const std::pair<const GroupKey, Measure>*> log
        SNCUBE_GUARDED_BY(mu);
  };

  std::size_t StripeIndex(const GroupKey& key) const {
    const std::uint64_t h = GroupKeyHash{}(key);
    // Fold the high bits in so the stripe index and the in-table bucket
    // (which libstdc++ derives from the low bits mod a prime) decorrelate.
    return (h ^ (h >> 32)) & (stripes_.size() - 1);
  }

  std::vector<Stripe> stripes_;
};

}  // namespace sncube::hashagg
