#include "lattice/fm_sketch.h"

#include <bit>
#include <cmath>

#include "common/status.h"

namespace sncube {
namespace {

constexpr double kPhi = 0.77351;  // Flajolet–Martin correction constant

}  // namespace

std::uint64_t HashValue(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t HashKeys(const std::uint32_t* keys, const int* cols, int k) {
  std::uint64_t h = 0x2545F4914F6CDD1DULL;
  for (int i = 0; i < k; ++i) {
    h = HashValue(h ^ keys[cols[i]]);
  }
  return h;
}

FmSketch::FmSketch(int bitmaps, std::uint64_t seed) : seed_(seed) {
  SNCUBE_CHECK_MSG(bitmaps >= 1 && (bitmaps & (bitmaps - 1)) == 0,
                   "bitmap count must be a power of two");
  maps_.assign(static_cast<std::size_t>(bitmaps), 0);
  shift_ = std::countr_zero(static_cast<unsigned>(bitmaps));
}

void FmSketch::Add(std::uint64_t hashed_key) {
  const std::uint64_t h = HashValue(hashed_key ^ seed_);
  const auto bucket = static_cast<std::size_t>(h & (maps_.size() - 1));
  // Trailing-zero rank of the remaining bits; geometric with ratio 1/2.
  const std::uint64_t rest = h >> shift_;
  const int r = rest == 0 ? static_cast<int>(64 - shift_)
                          : std::countr_zero(rest);
  maps_[bucket] |= (1u << (r < 31 ? r : 31));
}

double FmSketch::Estimate() const {
  const auto m = static_cast<double>(maps_.size());
  // Small-range correction: PCSA is biased high when most bitmaps are still
  // empty (n ≲ 10·m). There, linear counting on the empty-bitmap fraction —
  // n ≈ m·ln(m/empty) — is accurate, so use it while a nontrivial share of
  // bitmaps is empty.
  double empty = 0;
  for (std::uint32_t map : maps_) empty += (map == 0);
  if (empty > 0.05 * m) return m * std::log(m / empty);

  // R_i = index of the lowest zero bit of bitmap i.
  double sum = 0;
  for (std::uint32_t map : maps_) {
    sum += std::countr_one(map);
  }
  const double mean = sum / m;
  return m / kPhi * std::pow(2.0, mean);
}

void FmSketch::Merge(const FmSketch& other) {
  SNCUBE_CHECK(other.maps_.size() == maps_.size() && other.seed_ == seed_);
  for (std::size_t i = 0; i < maps_.size(); ++i) maps_[i] |= other.maps_[i];
}

}  // namespace sncube
