#include "lattice/view_id.h"

namespace sncube {

ViewId ViewId::FromDims(const std::vector<int>& dims) {
  std::uint32_t mask = 0;
  for (int d : dims) {
    SNCUBE_CHECK(d >= 0 && d < kMaxDims);
    mask |= (1u << d);
  }
  return ViewId(mask);
}

std::vector<int> ViewId::DimList() const {
  std::vector<int> dims;
  dims.reserve(static_cast<std::size_t>(dim_count()));
  for (int i = 0; i < kMaxDims; ++i) {
    if (Contains(i)) dims.push_back(i);
  }
  return dims;
}

int ViewId::PartitionIndex(int d) const {
  SNCUBE_CHECK(d >= 1);
  if (mask_ == 0) return d - 1;
  return __builtin_ctz(mask_);
}

std::string ViewId::Name(const Schema& schema) const {
  if (mask_ == 0) return "all";
  std::string name;
  const bool letters = schema.dims() <= 26;
  for (int i : DimList()) {
    if (letters) {
      name.push_back(static_cast<char>('A' + i));
    } else {
      if (!name.empty()) name.push_back('.');
      name += schema.name(i);
    }
  }
  return name;
}

}  // namespace sncube
