// Flajolet–Martin probabilistic counting (PCSA), the paper's reference [6]
// for view-size estimation.
//
// The sketch keeps m bitmaps; each key is hashed to one bitmap (stochastic
// averaging) and sets the bit at the position of the lowest zero-probability
// event (number of trailing zeros of a second hash). The distinct-count
// estimate is (m/φ)·2^(mean leading-bit index) with φ ≈ 0.77351.
#pragma once

#include <cstdint>
#include <vector>

namespace sncube {

class FmSketch {
 public:
  // `bitmaps` must be a power of two (stochastic-averaging fan-out).
  explicit FmSketch(int bitmaps = 64, std::uint64_t seed = 0);

  // Adds a key (pre-hashed 64-bit value; callers hash rows first).
  void Add(std::uint64_t hashed_key);

  // Estimated number of distinct keys added.
  double Estimate() const;

  void Merge(const FmSketch& other);

  int bitmaps() const { return static_cast<int>(maps_.size()); }

 private:
  std::vector<std::uint32_t> maps_;
  std::uint64_t seed_;
  int shift_;  // log2(bitmaps)
};

// 64-bit mix hash for row keys (splitmix64 finalizer).
std::uint64_t HashValue(std::uint64_t x);

// Combines a sequence of key columns into one 64-bit row hash.
std::uint64_t HashKeys(const std::uint32_t* keys, const int* cols, int k);

}  // namespace sncube
