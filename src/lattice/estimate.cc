#include "lattice/estimate.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace sncube {

AnalyticEstimator::AnalyticEstimator(const Schema& schema, double rows)
    : rows_(rows) {
  SNCUBE_CHECK(rows >= 0);
  log_cards_.reserve(static_cast<std::size_t>(schema.dims()));
  for (int i = 0; i < schema.dims(); ++i) {
    log_cards_.push_back(std::log(static_cast<double>(schema.cardinality(i))));
  }
}

double AnalyticEstimator::EstimateRows(ViewId v) const {
  if (v.empty()) return rows_ > 0 ? 1.0 : 0.0;
  double log_d = 0;
  for (int i : v.DimList()) {
    SNCUBE_CHECK(i < static_cast<int>(log_cards_.size()));
    log_d += log_cards_[static_cast<std::size_t>(i)];
  }
  // Cardenas: E = D(1 − (1 − 1/D)^n), computed stably for huge D.
  if (log_d > 700.0) return rows_;  // D astronomically large → every row distinct
  const double d = std::exp(log_d);
  const double e = -d * std::expm1(rows_ * std::log1p(-1.0 / d));
  return std::min(e, rows_);
}

FmViewEstimator::FmViewEstimator(const Relation& rel,
                                 const std::vector<int>& rel_dims,
                                 const std::vector<ViewId>& views,
                                 int bitmaps) {
  SNCUBE_CHECK(static_cast<int>(rel_dims.size()) == rel.width());
  // Map global dimension index → relation column. Dimension indices are
  // small and dense, so a direct-indexed vector beats a hash table and is
  // deterministic by construction (-1 = dimension absent).
  int max_dim = -1;
  for (int d : rel_dims) max_dim = std::max(max_dim, d);
  std::vector<int> col_of_dim(static_cast<std::size_t>(max_dim + 1), -1);
  for (int c = 0; c < rel.width(); ++c) {
    col_of_dim[static_cast<std::size_t>(rel_dims[c])] = c;
  }

  struct ViewCols {
    ViewId id;
    std::vector<int> cols;
  };
  std::vector<ViewCols> plans;
  plans.reserve(views.size());
  for (ViewId v : views) {
    ViewCols plan{v, {}};
    for (int dim : v.DimList()) {
      SNCUBE_CHECK_MSG(dim >= 0 && dim <= max_dim &&
                           col_of_dim[static_cast<std::size_t>(dim)] >= 0,
                       "view uses a dimension absent from the relation");
      plan.cols.push_back(col_of_dim[static_cast<std::size_t>(dim)]);
    }
    plans.push_back(std::move(plan));
    sketches_.emplace(v, FmSketch(bitmaps));
  }

  for (std::size_t row = 0; row < rel.size(); ++row) {
    const auto keys = rel.RowKeys(row);
    for (const auto& plan : plans) {
      const std::uint64_t h =
          plan.cols.empty()
              ? 0
              : HashKeys(keys.data(), plan.cols.data(),
                         static_cast<int>(plan.cols.size()));
      sketches_.at(plan.id).Add(h);
    }
  }
}

double FmViewEstimator::EstimateRows(ViewId v) const {
  const auto it = sketches_.find(v);
  SNCUBE_CHECK_MSG(it != sketches_.end(), "view was not sketched");
  if (v.empty()) return 1.0;
  return it->second.Estimate();
}

}  // namespace sncube
