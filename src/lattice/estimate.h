// View-size estimation, the input to schedule-tree construction.
//
// Pipesort labels every lattice edge with scan/sort costs derived from
// estimated view sizes (paper Section 2.1, citing [6, 21]). Two estimators
// are provided:
//
//  * AnalyticEstimator — the Cardenas formula: n uniform tuples over a
//    product space of size D yield E = D·(1 − (1 − 1/D)^n) expected distinct
//    groups. Exact for uniform data, cheap (no data access), and the default
//    the parallel builder uses on rank 0.
//  * FmViewEstimator — Flajolet–Martin sketches built from an actual
//    relation, one per requested view. Data-driven, handles skew, costs one
//    pass over the data per batch of views.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "lattice/fm_sketch.h"
#include "lattice/view_id.h"
#include "relation/relation.h"
#include "relation/schema.h"

namespace sncube {

class ViewSizeEstimator {
 public:
  virtual ~ViewSizeEstimator() = default;
  // Estimated row count of view `v`.
  virtual double EstimateRows(ViewId v) const = 0;
};

class AnalyticEstimator final : public ViewSizeEstimator {
 public:
  // `rows` is the row count of the raw data the views aggregate.
  AnalyticEstimator(const Schema& schema, double rows);

  double EstimateRows(ViewId v) const override;

 private:
  std::vector<double> log_cards_;  // per global dimension
  double rows_;
};

class FmViewEstimator final : public ViewSizeEstimator {
 public:
  // Builds one sketch per view in `views` from `rel`. `rel_dims[c]` is the
  // global dimension index of relation column c (the relation may be a
  // Di-root, i.e. a projection of the raw schema). Views must only use
  // dimensions present in rel_dims.
  FmViewEstimator(const Relation& rel, const std::vector<int>& rel_dims,
                  const std::vector<ViewId>& views, int bitmaps = 64);

  double EstimateRows(ViewId v) const override;

 private:
  // Ordered so the (currently lookup-only) table can never grow a
  // nondeterministic walk; the view count is small and off the hot path.
  std::map<ViewId, FmSketch> sketches_;
};

}  // namespace sncube
