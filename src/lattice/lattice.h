// The view lattice (Figure 1a) and its Di-partition decomposition
// (Figure 3).
//
// The lattice over d dimensions has 2^d views; an edge connects u to v when
// v = u minus one dimension (v computable from u by aggregating along one
// dimension). The paper's parallel algorithm never materializes the whole
// lattice at once — it decomposes S into Di-partitions: Si = the views whose
// leading (highest-cardinality) dimension is Di, rooted at the Di-root (the
// union of all dimensions appearing in Si). This file provides both the
// full-cube decomposition and the selected-subset (partial cube) variant of
// Section 3.
#pragma once

#include <vector>

#include "lattice/view_id.h"

namespace sncube {

// All 2^d view identifiers of the full cube.
std::vector<ViewId> AllViews(int d);

// Views of `views` grouped into Di-partitions: result[i] = Si, the views
// whose PartitionIndex is i (the empty view lands in partition d-1).
// Within each partition views are ordered by decreasing dimension count and
// then mask (deterministic).
std::vector<std::vector<ViewId>> PartitionViews(const std::vector<ViewId>& views,
                                                int d);

// The Di-root for a partition: the union of all dimensions contained in the
// partition's views (Section 2.1). For the full cube this is {Di..Dd-1}.
// An empty partition yields the empty view.
ViewId PartitionRoot(const std::vector<ViewId>& partition);

// Direct children of `v` in the lattice restricted to dimension count
// (each = v minus one dimension).
std::vector<ViewId> LatticeChildren(ViewId v);

// Direct parents of `v` within a d-dimensional cube (each = v plus one
// dimension).
std::vector<ViewId> LatticeParents(ViewId v, int d);

// Views of the full d-cube with exactly `level` dimensions.
std::vector<ViewId> LatticeLevel(int d, int level);

}  // namespace sncube
