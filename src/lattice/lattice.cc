#include "lattice/lattice.h"

#include <algorithm>

#include "common/status.h"

namespace sncube {

std::vector<ViewId> AllViews(int d) {
  SNCUBE_CHECK(d >= 1 && d <= ViewId::kMaxDims);
  std::vector<ViewId> views;
  views.reserve(1u << d);
  for (std::uint32_t mask = 0; mask < (1u << d); ++mask) {
    views.emplace_back(mask);
  }
  return views;
}

std::vector<std::vector<ViewId>> PartitionViews(const std::vector<ViewId>& views,
                                                int d) {
  std::vector<std::vector<ViewId>> partitions(static_cast<std::size_t>(d));
  for (ViewId v : views) {
    partitions[static_cast<std::size_t>(v.PartitionIndex(d))].push_back(v);
  }
  for (auto& part : partitions) {
    std::sort(part.begin(), part.end(), [](ViewId a, ViewId b) {
      if (a.dim_count() != b.dim_count()) return a.dim_count() > b.dim_count();
      return a.mask() < b.mask();
    });
  }
  return partitions;
}

ViewId PartitionRoot(const std::vector<ViewId>& partition) {
  ViewId root = ViewId::Empty();
  for (ViewId v : partition) root = root.Union(v);
  return root;
}

std::vector<ViewId> LatticeChildren(ViewId v) {
  std::vector<ViewId> children;
  children.reserve(static_cast<std::size_t>(v.dim_count()));
  for (int i : v.DimList()) children.push_back(v.Without(i));
  return children;
}

std::vector<ViewId> LatticeParents(ViewId v, int d) {
  std::vector<ViewId> parents;
  for (int i = 0; i < d; ++i) {
    if (!v.Contains(i)) parents.push_back(v.With(i));
  }
  return parents;
}

std::vector<ViewId> LatticeLevel(int d, int level) {
  SNCUBE_CHECK(level >= 0 && level <= d);
  std::vector<ViewId> views;
  for (std::uint32_t mask = 0; mask < (1u << d); ++mask) {
    if (__builtin_popcount(mask) == level) views.emplace_back(mask);
  }
  return views;
}

}  // namespace sncube
