// View identifiers.
//
// A view of the data cube is identified by the subset of dimensions it
// groups by. Following Section 2 of the paper, dimensions carry global
// indices 0..d-1 in DECREASING cardinality order, and a view identifier
// lists its dimensions in that canonical order (ascending index). ViewId
// packs the subset into a bitmask; bit i = dimension Di present.
//
// The Di-partition structure (Figure 3) falls out of the leading dimension:
// view v belongs to the Di-partition where i = v's smallest set bit. The
// empty view ("all") is assigned to the last partition, matching Figure 3
// where ALL hangs off the D-partition.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "relation/schema.h"

namespace sncube {

class ViewId {
 public:
  static constexpr int kMaxDims = 20;

  constexpr ViewId() : mask_(0) {}
  constexpr explicit ViewId(std::uint32_t mask) : mask_(mask) {}

  // The full view over d dimensions (the raw data set's grouping).
  static ViewId Full(int d) {
    SNCUBE_CHECK(d >= 0 && d <= kMaxDims);
    return ViewId((d == 0) ? 0u : ((1u << d) - 1u));
  }
  // The empty view: one row aggregating everything ("all").
  static constexpr ViewId Empty() { return ViewId(0); }

  // Builds from an explicit dimension list (indices into the schema).
  static ViewId FromDims(const std::vector<int>& dims);

  std::uint32_t mask() const { return mask_; }
  int dim_count() const { return __builtin_popcount(mask_); }
  bool empty() const { return mask_ == 0; }

  bool Contains(int dim) const { return (mask_ >> dim) & 1u; }
  bool IsSubsetOf(ViewId other) const {
    return (mask_ & other.mask_) == mask_;
  }
  bool IsProperSubsetOf(ViewId other) const {
    return IsSubsetOf(other) && mask_ != other.mask_;
  }

  ViewId Union(ViewId other) const { return ViewId(mask_ | other.mask_); }
  ViewId Without(int dim) const { return ViewId(mask_ & ~(1u << dim)); }
  ViewId With(int dim) const { return ViewId(mask_ | (1u << dim)); }

  // Canonical dimension list: ascending global index, i.e. decreasing
  // cardinality — the order the view's columns are stored in.
  std::vector<int> DimList() const;

  // The partition index: the leading (highest-cardinality) dimension; the
  // empty view maps to d-1 (it is merged with the last partition).
  int PartitionIndex(int d) const;

  // Human-readable name, e.g. "ABC" for dims {0,1,2} with d <= 26, or the
  // schema's dimension names joined for larger d. Empty view prints "all".
  std::string Name(const Schema& schema) const;

  bool operator==(const ViewId&) const = default;
  auto operator<=>(const ViewId&) const = default;

 private:
  std::uint32_t mask_;
};

}  // namespace sncube

template <>
struct std::hash<sncube::ViewId> {
  std::size_t operator()(const sncube::ViewId& v) const noexcept {
    return std::hash<std::uint32_t>{}(v.mask());
  }
};
