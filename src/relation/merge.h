// K-way merge of sorted relations (same width), used by the parallel sorter
// (merging the p runs an h-relation delivers) and by Merge–Partitions when
// agglomerating overlap fragments.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "relation/relation.h"

namespace sncube {

// Merges relations that are each sorted by `cols` into one relation sorted
// by `cols`. Stable across runs: ties keep lower run index first.
inline Relation MergeSortedRuns(const std::vector<Relation>& runs,
                                std::span<const int> cols) {
  int width = 0;
  std::size_t total = 0;
  for (const auto& r : runs) {
    if (r.width() > width) width = r.width();
    total += r.size();
  }
  Relation out(width);
  out.Reserve(total);

  struct Cursor {
    const Relation* rel;
    std::size_t row;
    std::size_t index;  // run index, for stable tie-break
  };
  std::vector<Cursor> heap;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (!runs[i].empty()) heap.push_back({&runs[i], 0, i});
  }
  auto greater = [cols](const Cursor& a, const Cursor& b) {
    const int cmp = CompareRows(*a.rel, a.row, cols, *b.rel, b.row, cols);
    if (cmp != 0) return cmp > 0;
    return a.index > b.index;
  };
  std::make_heap(heap.begin(), heap.end(), greater);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), greater);
    Cursor& c = heap.back();
    out.AppendRow(*c.rel, c.row);
    if (++c.row < c.rel->size()) {
      std::push_heap(heap.begin(), heap.end(), greater);
    } else {
      heap.pop_back();
    }
  }
  return out;
}

}  // namespace sncube
