// Projection + aggregation: the GROUP-BY primitive the cube is made of.
//
// AggregateSortedPrefix consumes a relation sorted in some column order and
// emits, for a prefix of that order, one row per distinct prefix with
// combined measures — a single linear scan, which is exactly the "scan" edge
// of a schedule tree. SortAndAggregate adds the re-sort, which is the "sort"
// edge.
#pragma once

#include <span>
#include <vector>

#include "relation/relation.h"
#include "relation/sort.h"
#include "relation/types.h"

namespace sncube {

// `sorted` must be sorted by `cols` (prefix of its sort order suffices).
// Produces a relation of width cols.size(): the projected group keys in the
// order given by `cols`, one row per group, measures combined with `fn`.
Relation AggregateSortedPrefix(const Relation& sorted,
                               std::span<const int> cols, AggFn fn);

// Sorts `rel` by `cols` and aggregates; the generic GROUP-BY cols.
Relation SortAndAggregate(const Relation& rel, std::span<const int> cols,
                          AggFn fn);

// Merges two relations of identical width that are BOTH sorted over all
// columns, combining rows with equal keys. Used when agglomerating view
// fragments during Merge-Partitions.
Relation MergeSortedAggregate(const Relation& a, const Relation& b, AggFn fn);

// In-place duplicate collapse of a fully sorted relation (all columns).
Relation CollapseSorted(const Relation& sorted, AggFn fn);

// Counts distinct `cols` prefixes of a sorted relation without materializing.
std::size_t CountGroups(const Relation& sorted, std::span<const int> cols);

}  // namespace sncube
