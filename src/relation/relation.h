// Flat, cache-friendly relational table: n rows of `width` uint32 dimension
// keys plus one int64 measure per row.
//
// Storage is a single contiguous key array (row-major) and a measure array.
// Rows are addressed by index; sorting produces a permutation which is then
// applied with one gather pass (see sort.h). This is deliberately simple —
// the ROLAP views the cube materializes are exactly tables of this shape.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "relation/types.h"

namespace sncube {

class Relation {
 public:
  Relation() : width_(0) {}
  explicit Relation(int width) : width_(width) { SNCUBE_CHECK(width >= 0); }

  int width() const { return width_; }
  std::size_t size() const { return measures_.size(); }
  bool empty() const { return measures_.empty(); }

  void Reserve(std::size_t rows) {
    keys_.reserve(rows * static_cast<std::size_t>(width_));
    measures_.reserve(rows);
  }

  // Appends one row. keys.size() must equal width().
  void Append(std::span<const Key> keys, Measure m) {
    SNCUBE_DCHECK(static_cast<int>(keys.size()) == width_);
    keys_.insert(keys_.end(), keys.begin(), keys.end());
    measures_.push_back(m);
  }

  // Appends a copy of `src` row `row` (same width required).
  void AppendRow(const Relation& src, std::size_t row) {
    SNCUBE_DCHECK(src.width() == width_);
    Append(src.RowKeys(row), src.measure(row));
  }

  std::span<const Key> RowKeys(std::size_t row) const {
    SNCUBE_DCHECK(row < size());
    return {keys_.data() + row * static_cast<std::size_t>(width_),
            static_cast<std::size_t>(width_)};
  }

  Key key(std::size_t row, int col) const {
    SNCUBE_DCHECK(row < size() && col >= 0 && col < width_);
    return keys_[row * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(col)];
  }

  Measure measure(std::size_t row) const {
    SNCUBE_DCHECK(row < size());
    return measures_[row];
  }
  Measure& measure(std::size_t row) {
    SNCUBE_DCHECK(row < size());
    return measures_[row];
  }

  void Clear() {
    keys_.clear();
    measures_.clear();
  }

  // Serialized footprint in bytes: 4*width per-row keys + 8-byte measure.
  // This is the unit the paper's "Megabytes" axes and our communication
  // metrics count.
  std::size_t RowBytes() const {
    return sizeof(Key) * static_cast<std::size_t>(width_) + sizeof(Measure);
  }
  std::size_t ByteSize() const { return RowBytes() * size(); }

  // Moves all rows of `other` onto the end of this relation.
  void Concat(Relation&& other) {
    SNCUBE_CHECK(other.width_ == width_);
    keys_.insert(keys_.end(), other.keys_.begin(), other.keys_.end());
    measures_.insert(measures_.end(), other.measures_.begin(),
                     other.measures_.end());
    other.Clear();
  }

  // Direct access to the flat key storage (hot-path sorting only).
  const Key* raw_keys() const { return keys_.data(); }

  bool operator==(const Relation& other) const {
    return width_ == other.width_ && keys_ == other.keys_ &&
           measures_ == other.measures_;
  }

 private:
  int width_;
  std::vector<Key> keys_;       // row-major, size() * width_
  std::vector<Measure> measures_;
};

// Lexicographic comparison of row `a` of `ra` against row `b` of `rb` over
// column position lists `ca` / `cb` (parallel, same length). Returns <0, 0,
// >0. The column lists let callers compare in any sort order (pipelines) and
// across relations whose widths differ.
inline int CompareRows(const Relation& ra, std::size_t a,
                       std::span<const int> ca, const Relation& rb,
                       std::size_t b, std::span<const int> cb) {
  SNCUBE_DCHECK(ca.size() == cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    const Key ka = ra.key(a, ca[i]);
    const Key kb = rb.key(b, cb[i]);
    if (ka != kb) return ka < kb ? -1 : 1;
  }
  return 0;
}

// Comparison over all columns in storage order (canonical view order).
inline int CompareRows(const Relation& ra, std::size_t a, const Relation& rb,
                       std::size_t b) {
  SNCUBE_DCHECK(ra.width() == rb.width());
  for (int c = 0; c < ra.width(); ++c) {
    const Key ka = ra.key(a, c);
    const Key kb = rb.key(b, c);
    if (ka != kb) return ka < kb ? -1 : 1;
  }
  return 0;
}

}  // namespace sncube
