// Fundamental value types of the ROLAP layer.
//
// Dimension attributes are dense 32-bit codes (a real deployment would map
// dictionary-encoded dimension values to these codes; the paper's synthetic
// workloads generate codes directly). The measure is a 64-bit integer and
// aggregation is any commutative, associative combine over it.
#pragma once

#include <cstdint>

namespace sncube {

using Key = std::uint32_t;      // one dimension attribute value
using Measure = std::int64_t;   // the aggregated fact measure

// Distributive aggregate functions supported by the cube. COUNT is SUM over
// a measure column of all-ones, which is how the data generators encode it.
enum class AggFn : std::uint8_t { kSum, kMin, kMax };

inline Measure CombineMeasure(AggFn fn, Measure a, Measure b) {
  switch (fn) {
    case AggFn::kSum:
      return a + b;
    case AggFn::kMin:
      return a < b ? a : b;
    case AggFn::kMax:
      return a > b ? a : b;
  }
  return a;  // unreachable
}

}  // namespace sncube
