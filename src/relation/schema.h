// Schema of the raw data set: d dimensions with names and cardinalities.
//
// Following Section 2 of the paper, dimensions are globally indexed in
// DECREASING cardinality order: |D0| >= |D1| >= ... >= |Dd-1|. Every view
// identifier lists its dimensions in that canonical order, and all lattice /
// partition definitions rely on it, so Schema enforces the ordering at
// construction (sorting the caller's dimensions if needed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sncube {

class Schema {
 public:
  Schema() = default;

  // Builds a schema from per-dimension cardinalities. Dimensions are sorted
  // into decreasing-cardinality order (stable, so equal cardinalities keep
  // the caller's relative order). Names default to "D0", "D1", ...
  explicit Schema(std::vector<std::uint32_t> cardinalities,
                  std::vector<std::string> names = {});

  int dims() const { return static_cast<int>(cards_.size()); }
  std::uint32_t cardinality(int dim) const { return cards_.at(dim); }
  const std::vector<std::uint32_t>& cardinalities() const { return cards_; }
  const std::string& name(int dim) const { return names_.at(dim); }

 private:
  std::vector<std::uint32_t> cards_;
  std::vector<std::string> names_;
};

}  // namespace sncube
