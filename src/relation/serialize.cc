#include "relation/serialize.h"

#include <cstring>
#include <string>

#include "common/status.h"

namespace sncube {

void SerializeRows(const Relation& rel, std::size_t begin, std::size_t end,
                   ByteBuffer& out) {
  SNCUBE_CHECK(begin <= end && end <= rel.size());
  const std::size_t row_bytes = rel.RowBytes();
  const std::size_t offset = out.size();
  out.resize(offset + (end - begin) * row_bytes);
  std::byte* dst = out.data() + offset;
  for (std::size_t row = begin; row < end; ++row) {
    const auto keys = rel.RowKeys(row);
    // Width-0 rows (the {all} view) have a null key span; memcpy's pointer
    // arguments must be non-null even for size 0.
    if (!keys.empty()) std::memcpy(dst, keys.data(), keys.size_bytes());
    dst += keys.size_bytes();
    const Measure m = rel.measure(row);
    std::memcpy(dst, &m, sizeof(m));
    dst += sizeof(m);
  }
}

ByteBuffer SerializeRelation(const Relation& rel) {
  ByteBuffer out;
  out.reserve(rel.ByteSize());
  SerializeRows(rel, 0, rel.size(), out);
  return out;
}

void DeserializeRows(std::span<const std::byte> bytes, Relation& out) {
  const std::size_t row_bytes = out.RowBytes();
  if (bytes.size() % row_bytes != 0) {
    throw SncubeCorruptionError(
        "row stream is not a whole number of rows (got " +
        std::to_string(bytes.size()) + " bytes, row size " +
        std::to_string(row_bytes) + ")");
  }
  const std::size_t rows = bytes.size() / row_bytes;
  std::vector<Key> keys(static_cast<std::size_t>(out.width()));
  const std::byte* src = bytes.data();
  out.Reserve(out.size() + rows);
  for (std::size_t r = 0; r < rows; ++r) {
    if (!keys.empty()) std::memcpy(keys.data(), src, keys.size() * sizeof(Key));
    src += keys.size() * sizeof(Key);
    Measure m;
    std::memcpy(&m, src, sizeof(m));
    src += sizeof(m);
    out.Append(keys, m);
  }
}

Relation DeserializeRelation(std::span<const std::byte> bytes, int width) {
  Relation out(width);
  DeserializeRows(bytes, out);
  return out;
}

}  // namespace sncube
