#include "relation/csv.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/status.h"

namespace sncube {

void WriteCsv(std::ostream& os, const Relation& rel,
              const std::vector<std::string>& names,
              const std::string& measure_name) {
  SNCUBE_CHECK(static_cast<int>(names.size()) == rel.width());
  for (const auto& n : names) os << n << ',';
  os << measure_name << '\n';
  for (std::size_t row = 0; row < rel.size(); ++row) {
    for (Key k : rel.RowKeys(row)) os << k << ',';
    os << rel.measure(row) << '\n';
  }
}

Relation ReadCsv(std::istream& is) {
  std::string line;
  SNCUBE_CHECK_MSG(static_cast<bool>(std::getline(is, line)),
                   "CSV missing header");
  int columns = 1;
  for (char c : line) {
    if (c == ',') ++columns;
  }
  SNCUBE_CHECK_MSG(columns >= 1, "CSV header has no columns");
  const int width = columns - 1;

  Relation rel(width);
  std::vector<Key> keys(static_cast<std::size_t>(width));
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string cell;
    for (int c = 0; c < width; ++c) {
      SNCUBE_CHECK_MSG(static_cast<bool>(std::getline(ls, cell, ',')),
                       "CSV row too short");
      keys[static_cast<std::size_t>(c)] =
          static_cast<Key>(std::stoul(cell));
    }
    SNCUBE_CHECK_MSG(static_cast<bool>(std::getline(ls, cell, ',')),
                     "CSV row missing measure");
    rel.Append(keys, static_cast<Measure>(std::stoll(cell)));
  }
  return rel;
}

}  // namespace sncube
