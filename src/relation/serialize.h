// Row (de)serialization: the wire format used for every inter-processor
// transfer and for on-disk spill files.
//
// A row of width w serializes to w little-endian uint32 keys followed by an
// int64 measure — the same 4w+8 bytes Relation::RowBytes() reports, so
// communication-volume accounting matches the bytes actually moved.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "relation/relation.h"

namespace sncube {

using ByteBuffer = std::vector<std::byte>;

// Appends rows [begin, end) of `rel` to `out`.
void SerializeRows(const Relation& rel, std::size_t begin, std::size_t end,
                   ByteBuffer& out);

// Serializes the whole relation.
ByteBuffer SerializeRelation(const Relation& rel);

// Parses rows of the given width from `bytes`, appending to `out`.
// bytes.size() must be a multiple of the row size.
void DeserializeRows(std::span<const std::byte> bytes, Relation& out);

// Convenience: parse into a fresh relation of the given width.
Relation DeserializeRelation(std::span<const std::byte> bytes, int width);

}  // namespace sncube
