// CSV import/export so examples can exchange data with relational tooling —
// the paper's motivation for ROLAP is integration with relational databases,
// and a view written as CSV loads straight into one.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "relation/relation.h"

namespace sncube {

// Writes `rel` as CSV with a header row: the given column names plus the
// measure column name (default "measure"). names.size() must equal width.
void WriteCsv(std::ostream& os, const Relation& rel,
              const std::vector<std::string>& names,
              const std::string& measure_name = "measure");

// Reads CSV produced by WriteCsv (header skipped, last column = measure).
// Returns a relation whose width is the header's column count minus one.
Relation ReadCsv(std::istream& is);

}  // namespace sncube
