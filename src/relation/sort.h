// In-memory sorting of relations.
//
// SortedPermutation computes the row order without moving data;
// ApplyPermutation gathers rows into a fresh relation. SortRelation is the
// composition. Sort orders are given as column-position lists so a view can
// be sorted in any attribute permutation (Pipesort pipelines depend on
// re-sorting a view in the order its parent dictates).
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "relation/relation.h"

namespace sncube {

// Row indices of `rel` in ascending lexicographic order of columns `cols`.
// The sort is stable so equal keys keep their input order (determinism).
inline std::vector<std::uint32_t> SortedPermutation(
    const Relation& rel, std::span<const int> cols) {
  std::vector<std::uint32_t> perm(rel.size());
  std::iota(perm.begin(), perm.end(), 0u);
  const Key* keys = rel.raw_keys();
  const auto w = static_cast<std::size_t>(rel.width());
  std::stable_sort(perm.begin(), perm.end(),
                   [keys, w, cols](std::uint32_t a, std::uint32_t b) {
                     const Key* ra = keys + a * w;
                     const Key* rb = keys + b * w;
                     for (int c : cols) {
                       if (ra[c] != rb[c]) return ra[c] < rb[c];
                     }
                     return false;
                   });
  return perm;
}

// Gathers rows of `rel` in permutation order into a new relation.
inline Relation ApplyPermutation(const Relation& rel,
                                 std::span<const std::uint32_t> perm) {
  Relation out(rel.width());
  out.Reserve(perm.size());
  for (std::uint32_t row : perm) out.AppendRow(rel, row);
  return out;
}

// Sorts `rel` by the given column order (all remaining columns are NOT tie
// broken; pass every column when total order matters).
inline Relation SortRelation(const Relation& rel, std::span<const int> cols) {
  return ApplyPermutation(rel, SortedPermutation(rel, cols));
}

// Convenience: identity column order 0..width-1.
inline std::vector<int> IdentityOrder(int width) {
  std::vector<int> cols(static_cast<std::size_t>(width));
  std::iota(cols.begin(), cols.end(), 0);
  return cols;
}

// Reorders columns: output column j = input column perm[j]. Rows keep their
// order and measures. Used to bring a relation produced in some sort order
// back to the canonical column layout.
inline Relation PermuteColumns(const Relation& rel,
                               std::span<const int> perm) {
  Relation out(static_cast<int>(perm.size()));
  out.Reserve(rel.size());
  std::vector<Key> keys(perm.size());
  for (std::size_t row = 0; row < rel.size(); ++row) {
    for (std::size_t j = 0; j < perm.size(); ++j) {
      keys[j] = rel.key(row, perm[j]);
    }
    out.Append(keys, rel.measure(row));
  }
  return out;
}

// True when rows are in ascending lexicographic `cols` order.
inline bool IsSorted(const Relation& rel, std::span<const int> cols) {
  for (std::size_t i = 1; i < rel.size(); ++i) {
    if (CompareRows(rel, i - 1, cols, rel, i, cols) > 0) return false;
  }
  return true;
}

}  // namespace sncube
