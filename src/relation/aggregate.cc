#include "relation/aggregate.h"

#include "common/status.h"

namespace sncube {
namespace {

bool SamePrefix(const Relation& rel, std::size_t a, std::size_t b,
                std::span<const int> cols) {
  for (int c : cols) {
    if (rel.key(a, c) != rel.key(b, c)) return false;
  }
  return true;
}

}  // namespace

Relation AggregateSortedPrefix(const Relation& sorted,
                               std::span<const int> cols, AggFn fn) {
  Relation out(static_cast<int>(cols.size()));
  if (sorted.empty()) return out;
  SNCUBE_DCHECK(IsSorted(sorted, cols));

  std::vector<Key> group(cols.size());
  auto load_group = [&](std::size_t row) {
    for (std::size_t i = 0; i < cols.size(); ++i) {
      group[i] = sorted.key(row, cols[i]);
    }
  };

  load_group(0);
  Measure acc = sorted.measure(0);
  for (std::size_t row = 1; row < sorted.size(); ++row) {
    if (SamePrefix(sorted, row - 1, row, cols)) {
      acc = CombineMeasure(fn, acc, sorted.measure(row));
    } else {
      out.Append(group, acc);
      load_group(row);
      acc = sorted.measure(row);
    }
  }
  out.Append(group, acc);
  return out;
}

Relation SortAndAggregate(const Relation& rel, std::span<const int> cols,
                          AggFn fn) {
  return AggregateSortedPrefix(SortRelation(rel, cols), cols, fn);
}

Relation MergeSortedAggregate(const Relation& a, const Relation& b, AggFn fn) {
  SNCUBE_CHECK(a.width() == b.width());
  Relation out(a.width());
  out.Reserve(a.size() + b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const int cmp = CompareRows(a, i, b, j);
    if (cmp < 0) {
      out.AppendRow(a, i++);
    } else if (cmp > 0) {
      out.AppendRow(b, j++);
    } else {
      out.Append(a.RowKeys(i), CombineMeasure(fn, a.measure(i), b.measure(j)));
      ++i;
      ++j;
    }
  }
  while (i < a.size()) out.AppendRow(a, i++);
  while (j < b.size()) out.AppendRow(b, j++);
  return out;
}

Relation CollapseSorted(const Relation& sorted, AggFn fn) {
  Relation out(sorted.width());
  if (sorted.empty()) return out;
  out.Reserve(sorted.size());
  std::size_t run = 0;
  Measure acc = sorted.measure(0);
  for (std::size_t row = 1; row < sorted.size(); ++row) {
    if (CompareRows(sorted, run, sorted, row) == 0) {
      acc = CombineMeasure(fn, acc, sorted.measure(row));
    } else {
      out.Append(sorted.RowKeys(run), acc);
      run = row;
      acc = sorted.measure(row);
    }
  }
  out.Append(sorted.RowKeys(run), acc);
  return out;
}

std::size_t CountGroups(const Relation& sorted, std::span<const int> cols) {
  if (sorted.empty()) return 0;
  std::size_t groups = 1;
  for (std::size_t row = 1; row < sorted.size(); ++row) {
    if (!SamePrefix(sorted, row - 1, row, cols)) ++groups;
  }
  return groups;
}

}  // namespace sncube
