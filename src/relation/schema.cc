#include "relation/schema.h"

#include <algorithm>
#include <numeric>

#include "common/status.h"

namespace sncube {

Schema::Schema(std::vector<std::uint32_t> cardinalities,
               std::vector<std::string> names) {
  SNCUBE_CHECK(!cardinalities.empty());
  for (auto c : cardinalities) SNCUBE_CHECK_MSG(c >= 1, "zero cardinality");
  const int d = static_cast<int>(cardinalities.size());
  if (names.empty()) {
    names.reserve(d);
    for (int i = 0; i < d; ++i) names.push_back("D" + std::to_string(i));
  }
  SNCUBE_CHECK(static_cast<int>(names.size()) == d);

  // Stable-sort dimension indices by decreasing cardinality, then apply the
  // permutation to both vectors.
  std::vector<int> perm(d);
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](int a, int b) {
    return cardinalities[a] > cardinalities[b];
  });
  cards_.reserve(d);
  names_.reserve(d);
  for (int i : perm) {
    cards_.push_back(cardinalities[i]);
    names_.push_back(std::move(names[i]));
  }
}

}  // namespace sncube
