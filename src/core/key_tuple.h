// Key-tuple helpers shared by the parallel sorter and Merge–Partitions:
// a KeyTuple is one row's values at a set of column positions, the unit
// pivots and range boundaries are expressed in.
#pragma once

#include <cstddef>
#include <vector>

#include "relation/relation.h"

namespace sncube {

using KeyTuple = std::vector<Key>;

inline KeyTuple TupleAt(const Relation& rel, std::size_t row,
                        const std::vector<int>& cols) {
  KeyTuple t;
  t.reserve(cols.size());
  for (int c : cols) t.push_back(rel.key(row, c));
  return t;
}

inline int CompareTuple(const KeyTuple& a, const KeyTuple& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

// First row of `sorted` (sorted by cols) whose cols-tuple is > key.
inline std::size_t UpperBoundRow(const Relation& sorted,
                                 const std::vector<int>& cols,
                                 const KeyTuple& key) {
  std::size_t lo = 0;
  std::size_t hi = sorted.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    bool greater = false;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const Key k = sorted.key(mid, cols[i]);
      if (k != key[i]) {
        greater = k > key[i];
        break;
      }
    }
    if (greater) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace sncube
