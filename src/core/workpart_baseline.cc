#include "core/workpart_baseline.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/status.h"
#include "core/sample_sort.h"
#include "io/external_sort.h"
#include "lattice/lattice.h"
#include "relation/aggregate.h"
#include "relation/sort.h"
#include "schedule/pipesort.h"
#include "seqcube/seq_cube.h"

namespace sncube {
namespace {

// One assignment unit: a maximal scan chain of the schedule tree, computed
// by sorting the raw data in the head's order and scanning the chain out.
struct Pipeline {
  std::vector<int> nodes;  // tree indices, head first
  double est_cost = 0;     // sort of raw + scans of the chain
};

std::vector<Pipeline> DecomposePipelines(const ScheduleTree& tree,
                                         double raw_rows) {
  std::vector<Pipeline> pipelines;
  for (int i = 0; i < tree.size(); ++i) {
    const ScheduleNode& n = tree.node(i);
    // A pipeline starts at the root or at every sort-edge child.
    if (i != ScheduleTree::kRootIndex && n.edge != EdgeKind::kSort) continue;
    Pipeline pipe;
    pipe.est_cost = SortCost(raw_rows);
    for (int node = i; node >= 0; node = tree.ScanChild(node)) {
      pipe.nodes.push_back(node);
      pipe.est_cost += ScanCost(tree.node(node).est_rows);
    }
    pipelines.push_back(std::move(pipe));
  }
  return pipelines;
}

// LPT assignment: heaviest pipeline to the currently least-loaded rank.
std::vector<int> AssignLpt(const std::vector<Pipeline>& pipelines, int p,
                           std::vector<double>& load) {
  std::vector<int> order(pipelines.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return pipelines[a].est_cost > pipelines[b].est_cost;
  });
  std::vector<int> owner(pipelines.size(), 0);
  load.assign(static_cast<std::size_t>(p), 0.0);
  for (int idx : order) {
    const auto lightest =
        std::min_element(load.begin(), load.end()) - load.begin();
    owner[static_cast<std::size_t>(idx)] = static_cast<int>(lightest);
    load[static_cast<std::size_t>(lightest)] += pipelines[idx].est_cost;
  }
  return owner;
}

}  // namespace

CubeResult WorkPartitionCube(Comm& comm, const Relation& shared_raw,
                             const Schema& schema, AggFn fn,
                             WorkPartitionStats* stats) {
  SNCUBE_CHECK(shared_raw.width() == schema.dims());
  const int d = schema.dims();
  const int p = comm.size();

  // Identical schedule tree and assignment on every rank (deterministic from
  // the shared estimates — no communication needed, as in a shared-disk
  // system where every node sees the same catalog).
  comm.SetPhase("schedule");
  const ViewId root = ViewId::Full(d);
  const AnalyticEstimator est(schema, static_cast<double>(shared_raw.size()));
  const ScheduleTree tree =
      BuildPipesortTree(AllViews(d), root, root.DimList(), est);
  const auto pipelines =
      DecomposePipelines(tree, static_cast<double>(shared_raw.size()));
  std::vector<double> load;
  const auto owner = AssignLpt(pipelines, p, load);
  if (stats != nullptr) {
    stats->pipelines = static_cast<int>(pipelines.size());
    std::vector<std::uint64_t> rounded;
    rounded.reserve(load.size());
    for (double l : load) {
      rounded.push_back(static_cast<std::uint64_t>(l));
    }
    stats->estimated_imbalance = RelativeImbalance(rounded);
  }

  // Compute the assigned pipelines, each from the shared raw data.
  comm.SetPhase("compute");
  CubeResult cube;
  // All ranks carry the full view set (empty relations when assigned
  // elsewhere) so downstream code sees a consistent cube shape.
  for (int i = 0; i < tree.size(); ++i) {
    const ScheduleNode& n = tree.node(i);
    cube.views[n.view] =
        ViewResult{n.view, n.order, Relation(n.view.dim_count()), true};
  }

  for (std::size_t pi = 0; pi < pipelines.size(); ++pi) {
    if (owner[pi] != comm.rank()) continue;
    const Pipeline& pipe = pipelines[pi];
    const ScheduleNode& head = tree.node(pipe.nodes.front());

    // One sort of the raw data in the head's order (the full-size shared-
    // disk read is the method's toll), then the whole chain in one scan.
    const std::vector<int> sort_cols(head.order.begin(), head.order.end());
    comm.ChargeSortRecords(shared_raw.size());
    Relation sorted = ExternalSort(shared_raw, sort_cols, comm.disk());
    comm.ChargeScanRecords(sorted.size());

    for (int node : pipe.nodes) {
      const ScheduleNode& n = tree.node(node);
      const std::vector<int> view_cols(n.order.begin(), n.order.end());
      Relation agg = AggregateSortedPrefix(sorted, view_cols, fn);
      // agg's columns follow n.order; restore the canonical layout.
      std::vector<int> perm;
      perm.reserve(n.order.size());
      for (int dim : n.view.DimList()) {
        const auto it = std::find(n.order.begin(), n.order.end(), dim);
        perm.push_back(static_cast<int>(it - n.order.begin()));
      }
      Relation canonical = PermuteColumns(agg, perm);
      comm.disk().ChargeWrite(canonical.ByteSize());
      cube.views.at(n.view).rel = std::move(canonical);
    }
  }

  // Work partitioning needs no merge; a barrier stands in for the job-end
  // synchronization so the BSP clock reflects the slowest processor.
  comm.SetPhase("merge");
  comm.Barrier();
  return cube;
}

}  // namespace sncube
