#include "core/merge_partitions.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <map>

#include "common/status.h"
#include "core/key_tuple.h"
#include "core/sample_sort.h"
#include "core/sampling_array.h"
#include "exec/parallel_algo.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "relation/aggregate.h"
#include "relation/merge.h"
#include "relation/serialize.h"
#include "relation/sort.h"

namespace sncube {
namespace {

Relation DropFirstRow(const Relation& rel) {
  Relation out(rel.width());
  out.Reserve(rel.size() - 1);
  for (std::size_t r = 1; r < rel.size(); ++r) out.AppendRow(rel, r);
  return out;
}

// Per-rank boundary metadata for one view.
struct Boundary {
  bool has_rows = false;
  KeyTuple first;
  KeyTuple last;
};

// Ownership interval of one rank for a non-prefix view: keys in (lo, hi].
struct OwnRange {
  bool owns = false;
  bool has_lo = false;  // false → unbounded below
  KeyTuple lo;          // exclusive
  KeyTuple hi;          // inclusive
};

// Rank j owns keys in (max of earlier last-keys, last_j]; empty shards and
// fully-covered ranks own nothing. Monotone in the key, so each key has
// exactly one owner and per-shard slices are contiguous.
std::vector<OwnRange> OwnershipRanges(const std::vector<Boundary>& bounds) {
  std::vector<OwnRange> ranges(bounds.size());
  bool have_running = false;
  KeyTuple running;
  for (std::size_t r = 0; r < bounds.size(); ++r) {
    if (!bounds[r].has_rows) continue;
    OwnRange& range = ranges[r];
    if (!have_running) {
      range.owns = true;
      range.hi = bounds[r].last;
      running = bounds[r].last;
      have_running = true;
    } else if (CompareTuple(bounds[r].last, running) > 0) {
      range.owns = true;
      range.has_lo = true;
      range.lo = running;
      range.hi = bounds[r].last;
      running = bounds[r].last;
    }
  }
  return ranges;
}

std::uint64_t EstimateInRange(const SamplingArray& sample,
                              const OwnRange& range) {
  if (!range.owns) return 0;
  const std::uint64_t hi = sample.EstimateRowsLessEq(range.hi);
  const std::uint64_t lo =
      range.has_lo ? sample.EstimateRowsLessEq(range.lo) : 0;
  return hi > lo ? hi - lo : 0;
}

// Owner of this rank's first-row group under Case 1: the leftmost rank whose
// last key equals it (walking over empty shards).
int PrefixOwner(const std::vector<Boundary>& bounds, int rank) {
  if (!bounds[rank].has_rows) return rank;
  const KeyTuple& k = bounds[rank].first;
  int owner = rank;
  for (int r = rank - 1; r >= 0; --r) {
    if (!bounds[r].has_rows) continue;
    if (CompareTuple(bounds[r].last, k) != 0) break;
    owner = r;
    if (CompareTuple(bounds[r].first, k) != 0) break;  // group starts at r
  }
  return owner;
}

// Everything the merge decided about one view before the bulk h-relation.
struct ViewPlan {
  ViewId id;
  std::vector<int> cols;  // sort columns in the canonical layout
  enum { kCase1, kCase2, kCase3 } kase = kCase1;
  std::vector<Boundary> bounds;
  std::vector<OwnRange> ranges;    // Case 2 only
  std::size_t kept_begin = 0;      // Case 2: rows this rank keeps
  std::size_t kept_end = 0;
};

}  // namespace

void MergePartitions(Comm& comm, CubeResult& cube,
                     const std::vector<int>& root_order,
                     const MergeOptions& opts, MergeStats* stats) {
  const int p = comm.size();

  // Deterministic selected-view order, identical on every rank; drop
  // auxiliary views (local scaffolding only).
  std::vector<ViewId> ids;
  ids.reserve(cube.views.size());
  for (const auto& [id, vr] : cube.views) {
    if (vr.selected) {
      ids.push_back(id);
    }
  }
  std::erase_if(cube.views,
                [](const auto& entry) { return !entry.second.selected; });
  std::sort(ids.begin(), ids.end());

  if (p == 1) {
    // Nothing to merge; every fragment is already the whole view.
    if (stats != nullptr) stats->case1_views += static_cast<int>(ids.size());
    return;
  }

  // Procedure 3 as sibling spans under "merge-partitions": normalize →
  // boundaries (incl. Case 1/2/3 classification) → exchange (the bulk
  // h-relation + agglomeration) → case3-resort (full re-sorts, which nest
  // their own "sample-sort" span trees).
  SNCUBE_TRACE_SPAN("merge-partitions");
  obs::PhaseSpan mstep;
  mstep.Switch("normalize");

  // ---- Phase A: order normalization (one all-gather for all views) -------
  // Under local schedule trees the fragments of a view can be sorted
  // differently per rank; everyone adopts rank 0's order, re-sorting if
  // necessary (the overhead Figure 7 measures).
  {
    ByteBuffer msg;
    for (ViewId id : ids) {
      const auto& order = cube.views.at(id).order;
      WirePutVector(msg, std::vector<std::uint8_t>(order.begin(), order.end()));
    }
    const auto all = comm.AllGather(std::move(msg));
    std::vector<WireReader> readers;
    readers.reserve(all.size());
    for (const auto& buf : all) readers.emplace_back(buf);
    for (ViewId id : ids) {
      std::vector<std::uint8_t> rank0;
      bool differs = false;
      for (int r = 0; r < p; ++r) {
        auto order = readers[r].GetVector<std::uint8_t>();
        if (r == 0) {
          rank0 = std::move(order);
        } else if (order != rank0) {
          differs = true;
        }
      }
      if (!differs) continue;
      if (stats != nullptr) stats->resorted_views += 1;
      ViewResult& vr = cube.views.at(id);
      const std::vector<int> order(rank0.begin(), rank0.end());
      if (order != vr.order) {
        const auto cols = ColumnsOf(id, order);
        // Parallel region: re-sort on the rank's exec pool, charged at
        // span (work / threads_per_rank).
        std::optional<obs::ScopedSpan> exec_span;
        if (comm.threads_per_rank() > 1) exec_span.emplace("exec-sort");
        comm.ChargeSortRecordsParallel(vr.rel.size());
        comm.disk().ChargeRead(vr.rel.ByteSize());
        vr.rel = exec::SortRelationAuto(vr.rel, cols);
        comm.disk().ChargeWrite(vr.rel.ByteSize());
        vr.order = order;
      }
    }
  }

  // ---- Phase B: boundaries for every view (one all-gather) ---------------
  mstep.Switch("boundaries");
  std::vector<ViewPlan> plans(ids.size());
  {
    ByteBuffer msg;
    for (std::size_t v = 0; v < ids.size(); ++v) {
      ViewPlan& plan = plans[v];
      plan.id = ids[v];
      const ViewResult& vr = cube.views.at(ids[v]);
      plan.cols = ColumnsOf(ids[v], vr.order);
      WirePut(msg, static_cast<std::uint8_t>(vr.rel.empty() ? 0 : 1));
      if (!vr.rel.empty()) {
        WirePutVector(msg, TupleAt(vr.rel, 0, plan.cols));
        WirePutVector(msg, TupleAt(vr.rel, vr.rel.size() - 1, plan.cols));
      }
    }
    const auto all = comm.AllGather(std::move(msg));
    std::vector<WireReader> readers;
    readers.reserve(all.size());
    for (const auto& buf : all) readers.emplace_back(buf);
    for (auto& plan : plans) {
      plan.bounds.resize(p);
      for (int r = 0; r < p; ++r) {
        plan.bounds[r].has_rows = readers[r].Get<std::uint8_t>() != 0;
        if (plan.bounds[r].has_rows) {
          plan.bounds[r].first = readers[r].GetVector<Key>();
          plan.bounds[r].last = readers[r].GetVector<Key>();
        }
      }
    }
  }

  // ---- Classification + |v'_j| estimation (one all-gather) ---------------
  // Prefix test first; for non-prefix views every rank estimates its
  // contribution to every owner from its sampling array (Section 2.4), and
  // one all-gather of those estimates lets all ranks compute the identical
  // imbalance the Case 2/3 decision needs.
  {
    ByteBuffer msg;
    for (auto& plan : plans) {
      const ViewResult& vr = cube.views.at(plan.id);
      bool is_prefix = vr.order.size() <= root_order.size();
      for (std::size_t k = 0; is_prefix && k < vr.order.size(); ++k) {
        is_prefix = (vr.order[k] == root_order[k]);
      }
      if (is_prefix) {
        plan.kase = ViewPlan::kCase1;
        continue;
      }
      plan.kase = ViewPlan::kCase2;  // provisional; refined below
      plan.ranges = OwnershipRanges(plan.bounds);
      // The sampling array costs nothing at this point: Section 2.4 builds
      // it on the fly while the view is first written in Step 2c, so no
      // extra pass over the view is charged here.
      SamplingArray sample(
          static_cast<int>(plan.cols.size()),
          static_cast<std::size_t>(std::max(2, opts.sample_capacity_factor * p)));
      for (std::size_t r = 0; r < vr.rel.size(); ++r) {
        sample.Add(TupleAt(vr.rel, r, plan.cols));
      }
      std::vector<std::uint64_t> contrib(p, 0);
      for (int r = 0; r < p; ++r) {
        // The paper's v'_j is "vj PLUS all the overlap received": a rank's
        // own fragment counts whole (what it sends away is not subtracted),
        // so the statistic measures how lopsided the overlap routing is.
        contrib[r] = (r == comm.rank())
                         ? vr.rel.size()
                         : EstimateInRange(sample, plan.ranges[r]);
      }
      WirePutVector(msg, contrib);
    }
    const auto all = comm.AllGather(std::move(msg));
    std::vector<WireReader> readers;
    readers.reserve(all.size());
    for (const auto& buf : all) readers.emplace_back(buf);
    for (auto& plan : plans) {
      if (plan.kase == ViewPlan::kCase1) continue;
      std::vector<std::uint64_t> est(p, 0);
      for (int r = 0; r < p; ++r) {
        const auto contrib = readers[r].GetVector<std::uint64_t>();
        for (int k = 0; k < p; ++k) est[k] += contrib[k];
      }
      if (opts.force_case3 || RelativeImbalance(est) > opts.gamma) {
        plan.kase = ViewPlan::kCase3;
      }
    }
  }

  // ---- Phase C: one bulk h-relation for Case 1 rows + Case 2 overlaps ----
  // Wire format per destination: repeated (view mask, row count, rows).
  mstep.Switch("exchange");
  {
    std::vector<ByteBuffer> send(p);
    auto stage = [&](int dst, ViewId id, const Relation& rel,
                     std::size_t begin, std::size_t end) {
      if (end <= begin) return;
      WirePut(send[dst], id.mask());
      WirePut(send[dst], static_cast<std::uint64_t>(end - begin));
      SerializeRows(rel, begin, end, send[dst]);
    };

    for (auto& plan : plans) {
      ViewResult& vr = cube.views.at(plan.id);
      if (plan.kase == ViewPlan::kCase1) {
        const int owner = PrefixOwner(plan.bounds, comm.rank());
        if (owner != comm.rank() && !vr.rel.empty()) {
          stage(owner, plan.id, vr.rel, 0, 1);
          vr.rel = DropFirstRow(vr.rel);
        }
      } else if (plan.kase == ViewPlan::kCase2) {
        // Slice this rank's (strictly increasing) fragment by ownership.
        // The slice this rank owns STAYS PUT — only the overlap regions are
        // read off disk, shipped, and later rewritten; the bulk of the view
        // is never touched (this is what makes Case 2 cheap).
        std::size_t begin = 0;
        std::uint64_t shipped_bytes = 0;
        for (int r = 0; r < p; ++r) {
          if (!plan.ranges[r].owns) continue;
          const std::size_t end = std::max(
              begin, UpperBoundRow(vr.rel, plan.cols, plan.ranges[r].hi));
          if (r == comm.rank()) {
            plan.kept_begin = begin;
            plan.kept_end = end;
          } else {
            stage(r, plan.id, vr.rel, begin, end);
            shipped_bytes += (end - begin) * vr.rel.RowBytes();
          }
          begin = end;
        }
        SNCUBE_CHECK_MSG(begin == vr.rel.size(),
                         "rows beyond every ownership range");
        comm.disk().ChargeRead(shipped_bytes);
      }
    }

    auto received = comm.AllToAllv(std::move(send));

    // Unpack: per view, the sorted runs received (by source rank order).
    // Ordered map so any future walk over it is deterministic; it is
    // keyed per view (small) and looked up per plan, not per row.
    std::map<ViewId, std::vector<Relation>> incoming;
    for (int src = 0; src < p; ++src) {
      WireReader reader(received[src]);
      while (!reader.AtEnd()) {
        const ViewId id{reader.Get<std::uint32_t>()};
        const auto rows = reader.Get<std::uint64_t>();
        Relation run(id.dim_count());
        DeserializeRows(reader.GetBytes(rows * run.RowBytes()), run);
        incoming[id].push_back(std::move(run));
      }
    }

    // ---- Phase D: local agglomeration --------------------------------
    for (auto& plan : plans) {
      ViewResult& vr = cube.views.at(plan.id);
      auto it = incoming.find(plan.id);
      if (plan.kase == ViewPlan::kCase1) {
        if (stats != nullptr) stats->case1_views += 1;
        if (it == incoming.end()) continue;
        for (Relation& row : it->second) {
          SNCUBE_CHECK(row.size() == 1);
          SNCUBE_CHECK_MSG(!vr.rel.empty(), "owner shard cannot be empty");
          const std::size_t last = vr.rel.size() - 1;
          SNCUBE_DCHECK(CompareRows(vr.rel, last, row, 0) == 0);
          vr.rel.measure(last) =
              CombineMeasure(opts.fn, vr.rel.measure(last), row.measure(0));
        }
      } else if (plan.kase == ViewPlan::kCase2) {
        if (stats != nullptr) stats->case2_views += 1;
        // Kept slice of the own fragment.
        Relation kept(vr.rel.width());
        kept.Reserve(plan.kept_end - plan.kept_begin);
        for (std::size_t r = plan.kept_begin; r < plan.kept_end; ++r) {
          kept.AppendRow(vr.rel, r);
        }
        if (it == incoming.end()) {
          vr.rel = std::move(kept);
          continue;
        }
        // Received overlap rows all interleave the TAIL of the kept slice
        // (everything >= the smallest received key); the untouched head is
        // never read or rewritten.
        std::vector<Relation>& runs = it->second;
        KeyTuple min_key;
        for (const Relation& run : runs) {
          if (run.empty()) continue;
          KeyTuple k = TupleAt(run, 0, plan.cols);
          if (min_key.empty() || CompareTuple(k, min_key) < 0) {
            min_key = std::move(k);
          }
        }
        if (min_key.empty()) {
          vr.rel = std::move(kept);
          continue;
        }
        // Split the kept slice at the first row >= min_key.
        std::size_t split = kept.size();
        {
          std::size_t lo = 0;
          std::size_t hi = kept.size();
          while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (CompareTuple(TupleAt(kept, mid, plan.cols), min_key) < 0) {
              lo = mid + 1;
            } else {
              hi = mid;
            }
          }
          split = lo;
        }
        Relation tail(kept.width());
        tail.Reserve(kept.size() - split);
        for (std::size_t r = split; r < kept.size(); ++r) {
          tail.AppendRow(kept, r);
        }
        std::vector<Relation> merge_inputs;
        merge_inputs.reserve(runs.size() + 1);
        merge_inputs.push_back(std::move(tail));
        for (Relation& run : runs) merge_inputs.push_back(std::move(run));
        // Parallel region: Case-2 agglomeration merge on the exec pool,
        // charged at span; the collapse scan below stays serial.
        Relation region;
        {
          std::optional<obs::ScopedSpan> exec_span;
          if (comm.threads_per_rank() > 1) exec_span.emplace("exec-merge");
          region = exec::MergeSortedRunsAuto(merge_inputs, plan.cols);
          comm.ChargeParallelCpu(static_cast<double>(region.size()) *
                                 std::log2(std::max(p, 2)) *
                                 comm.cost().cpu_sort_record_s);
        }
        comm.ChargeScanRecords(region.size());
        comm.disk().ChargeRead((kept.size() - split) * kept.RowBytes());
        Relation collapsed = CollapseSorted(region, opts.fn);
        comm.disk().ChargeWrite(collapsed.ByteSize());

        Relation merged(kept.width());
        merged.Reserve(split + collapsed.size());
        for (std::size_t r = 0; r < split; ++r) merged.AppendRow(kept, r);
        merged.Concat(std::move(collapsed));
        vr.rel = std::move(merged);
      }
    }
  }

  // ---- Phase E: Case 3 views — full parallel re-sort each -----------------
  mstep.Switch("case3-resort");
  for (auto& plan : plans) {
    if (plan.kase != ViewPlan::kCase3) continue;
    ViewResult& vr = cube.views.at(plan.id);
    // The sorter charges its own read; fragments arrive sorted, so its
    // local-sort phase degenerates to that scan.
    Relation sorted = AdaptiveSampleSort(comm, std::move(vr.rel), plan.cols,
                                         opts.gamma);
    comm.ChargeScanRecords(sorted.size());
    vr.rel = CollapseSorted(sorted, opts.fn);
    comm.disk().ChargeWrite(vr.rel.ByteSize());
    if (stats != nullptr) stats->case3_views += 1;
  }
  // Boundary fixup for all Case-3 views at once: after the row-granular
  // shift, duplicate groups can straddle ranks exactly like prefix views.
  {
    std::vector<ViewPlan*> case3;
    for (auto& plan : plans) {
      if (plan.kase == ViewPlan::kCase3) case3.push_back(&plan);
    }
    if (!case3.empty()) {
      // Refresh boundaries (one all-gather), then one h-relation of
      // boundary rows.
      ByteBuffer msg;
      for (ViewPlan* plan : case3) {
        const ViewResult& vr = cube.views.at(plan->id);
        WirePut(msg, static_cast<std::uint8_t>(vr.rel.empty() ? 0 : 1));
        if (!vr.rel.empty()) {
          WirePutVector(msg, TupleAt(vr.rel, 0, plan->cols));
          WirePutVector(msg, TupleAt(vr.rel, vr.rel.size() - 1, plan->cols));
        }
      }
      const auto all = comm.AllGather(std::move(msg));
      std::vector<WireReader> readers;
      readers.reserve(all.size());
      for (const auto& buf : all) readers.emplace_back(buf);
      for (ViewPlan* plan : case3) {
        plan->bounds.assign(p, Boundary{});
        for (int r = 0; r < p; ++r) {
          plan->bounds[r].has_rows = readers[r].Get<std::uint8_t>() != 0;
          if (plan->bounds[r].has_rows) {
            plan->bounds[r].first = readers[r].GetVector<Key>();
            plan->bounds[r].last = readers[r].GetVector<Key>();
          }
        }
      }

      std::vector<ByteBuffer> send(p);
      for (ViewPlan* plan : case3) {
        ViewResult& vr = cube.views.at(plan->id);
        const int owner = PrefixOwner(plan->bounds, comm.rank());
        if (owner != comm.rank() && !vr.rel.empty()) {
          WirePut(send[owner], plan->id.mask());
          SerializeRows(vr.rel, 0, 1, send[owner]);
          vr.rel = DropFirstRow(vr.rel);
        }
      }
      auto received = comm.AllToAllv(std::move(send));
      for (int src = 0; src < p; ++src) {
        WireReader reader(received[src]);
        while (!reader.AtEnd()) {
          const ViewId id{reader.Get<std::uint32_t>()};
          ViewResult& vr = cube.views.at(id);
          Relation row(vr.rel.width());
          DeserializeRows(reader.GetBytes(row.RowBytes()), row);
          SNCUBE_CHECK_MSG(!vr.rel.empty(), "owner shard cannot be empty");
          const std::size_t last = vr.rel.size() - 1;
          SNCUBE_DCHECK(CompareRows(vr.rel, last, row, 0) == 0);
          vr.rel.measure(last) =
              CombineMeasure(opts.fn, vr.rel.measure(last), row.measure(0));
        }
      }
    }
  }
}

}  // namespace sncube
