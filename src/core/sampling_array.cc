#include "core/sampling_array.h"

#include "common/status.h"

namespace sncube {
namespace {

int CompareKeys(std::span<const Key> a, std::span<const Key> b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

}  // namespace

SamplingArray::SamplingArray(int width, std::size_t capacity)
    : width_(width), capacity_(capacity) {
  SNCUBE_CHECK(width >= 0);
  SNCUBE_CHECK(capacity >= 2);
  samples_.reserve(capacity * static_cast<std::size_t>(width));
}

void SamplingArray::Add(std::span<const Key> keys) {
  SNCUBE_DCHECK(static_cast<int>(keys.size()) == width_);
  if (count_ % stride_ == 0) {
    if (sample_count() == capacity_) {
      // Array full: keep every other sample and double the stride. The
      // retained samples sit at positions 0, 2·stride, 4·stride, ... — still
      // equally spaced.
      const std::size_t w = static_cast<std::size_t>(width_);
      for (std::size_t i = 0; 2 * i < capacity_; ++i) {
        for (std::size_t c = 0; c < w; ++c) {
          samples_[i * w + c] = samples_[2 * i * w + c];
        }
      }
      samples_.resize(((capacity_ + 1) / 2) * w);
      stride_ *= 2;
    }
    if (count_ % stride_ == 0) {
      samples_.insert(samples_.end(), keys.begin(), keys.end());
    }
  }
  ++count_;
}

std::span<const Key> SamplingArray::SampleAt(std::size_t i) const {
  return {samples_.data() + i * static_cast<std::size_t>(width_),
          static_cast<std::size_t>(width_)};
}

std::size_t SamplingArray::EstimateRowsLessEq(std::span<const Key> key) const {
  // Binary search for the first sample > key.
  std::size_t lo = 0;
  std::size_t hi = sample_count();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (CompareKeys(SampleAt(mid), key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  // lo samples are <= key; they represent positions 0, stride, ... so about
  // lo * stride underlying rows are <= key (clamped to what we saw).
  const std::size_t estimate = lo * stride_;
  return estimate < count_ ? estimate : count_;
}

}  // namespace sncube
