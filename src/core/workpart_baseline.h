// The work-partitioning baseline — the OTHER family of parallel cube
// methods from the paper's introduction ([3, 5, 15, 16, 18]).
//
// Work partitioning assigns different VIEW COMPUTATIONS to different
// processors: the schedule tree's pipelines are distributed by estimated
// cost (LPT — longest processing time first), and each processor computes
// its pipelines independently, re-sorting the raw data once per pipeline
// head. No merge phase exists because every view is produced whole on one
// processor. The catches, faithfully reproduced:
//
//  * every processor needs the ENTIRE raw data set — the method presumes a
//    shared disk (the expensive hardware the paper's shared-nothing design
//    avoids). Here each rank is handed the full relation, and every
//    pipeline's raw sort charges full-size I/O on the rank that runs it;
//  * load balance is only as good as the size ESTIMATES driving the
//    assignment — skew that concentrates actual work in a few pipelines
//    shows up directly as idle processors;
//  * finished views live wholly on single ranks, so subsequent parallel
//    query processing starts unbalanced (the paper's output contract —
//    every view evenly distributed — is deliberately violated by design).
//
// bench/ablation_workpartition compares this against Procedure 1.
#pragma once

#include "core/parallel_cube.h"

namespace sncube {

struct WorkPartitionStats {
  int pipelines = 0;            // assignment units in the schedule tree
  double estimated_imbalance = 0;  // I() of per-rank assigned cost estimates
};

// Computes the full cube with pipeline-level work partitioning. `shared_raw`
// is the whole raw data set (the shared disk); every rank receives the same
// relation. Returns this rank's views (views assigned elsewhere are present
// with empty relations so all ranks agree on the view set).
CubeResult WorkPartitionCube(Comm& comm, const Relation& shared_raw,
                             const Schema& schema, AggFn fn = AggFn::kSum,
                             WorkPartitionStats* stats = nullptr);

}  // namespace sncube
