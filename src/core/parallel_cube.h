// Parallel–Shared–Nothing–Data–Cube (Procedure 1): the paper's primary
// contribution.
//
// For each dimension Di (decreasing cardinality): (1) every rank aggregates
// its raw slice to the local Di-root, the roots are globally sorted by
// Adaptive–Sample–Sort (γ = 1%) and re-aggregated; (2) the schedule tree for
// the Di-partition is built — by rank 0 and broadcast (global tree mode,
// the paper's choice) or independently per rank (local tree mode, the
// Figure 7 ablation) — and executed locally with pipelined scans; (3) the
// per-rank view fragments are merged by Merge–Partitions. On return every
// rank holds its shard of every selected view: globally sorted, duplicate
// groups never straddling ranks, balanced within the γ thresholds.
//
// Runs inside Cluster::Run; all ranks must call it with the same schema,
// selected views and options.
#pragma once

#include <vector>

#include "core/checkpoint.h"
#include "core/merge_partitions.h"
#include "net/comm.h"
#include "relation/schema.h"
#include "schedule/backend.h"
#include "schedule/partial.h"
#include "seqcube/cube_result.h"
#include "seqcube/pipeline.h"

namespace sncube {

enum class TreeMode {
  kGlobal,  // rank 0 builds Ti and broadcasts it (Section 2.3's winner)
  kLocal,   // every rank builds its own Ti (merge pays for re-sorts)
};

enum class EstimatorKind {
  kAnalytic,  // Cardenas formula from schema cardinalities + row count
  kFm,        // Flajolet–Martin sketches over the builder's local Di-root
};

struct ParallelCubeOptions {
  AggFn fn = AggFn::kSum;
  // γ for the data-partitioning sample sort of Step 1b (paper: 1%).
  double gamma_partition = 0.01;
  // γ for Merge–Partitions Case 2/3 and its internal re-sorts (paper: 3%).
  double gamma_merge = 0.03;
  TreeMode tree_mode = TreeMode::kGlobal;
  EstimatorKind estimator = EstimatorKind::kAnalytic;
  PartialStrategy partial_strategy = PartialStrategy::kPrunedPipesort;
  // View-computation engine for schedule-tree sort edges: force sort (the
  // paper's engine, the default), force hash (src/hashagg/), or cost-choose
  // per edge from the tree's cardinality estimates (schedule/backend.h).
  // Every mode produces byte-identical views.
  BackendMode backend = BackendMode::kSort;
  int sample_capacity_factor = 100;
  bool force_case3 = false;  // ablation: disable the Case-2 overlap path
  // Checkpoint/restart (see core/checkpoint.h). When `checkpoint.dir` is
  // set, every rank persists its merged shards after each completed
  // Di-partition, and a rerun with the same directory resumes from the last
  // partition completed by ALL ranks. Must be identical across ranks.
  CheckpointOptions checkpoint;
};

struct ParallelCubeStats {
  ExecStats exec;        // local cube-construction work
  MergeStats merge;      // Procedure 3 case counts
  int partitions = 0;    // non-empty Di-partitions processed
  int partitions_restored = 0;  // of those, restored from checkpoint
  int sample_sort_shifts = 0;  // Step 1b global shifts triggered
};

// Builds the selected views (use AllViews(d) for the full cube) of the data
// whose local slice is `local_raw`. Returns this rank's shard of every
// selected view, canonical column layout, rows sorted by each view's order.
CubeResult BuildParallelCube(Comm& comm, const Relation& local_raw,
                             const Schema& schema,
                             const std::vector<ViewId>& selected,
                             const ParallelCubeOptions& opts = {},
                             ParallelCubeStats* stats = nullptr);

}  // namespace sncube
