// The single-dimension data-partitioning baseline the paper argues against
// (Section 2.2, citing [17, 9]).
//
// Raw rows are range-partitioned on the leading dimension D0 only. Views
// containing D0 then need no merge — each rank's fragment covers a disjoint
// D0 range — which is the scheme's selling point. Everything else is its
// weakness, and this implementation reproduces it faithfully:
//
//  * views NOT containing D0 are still partial per rank and must be merged
//    globally (done here with a sample-sort + agglomerate pass);
//  * parallelism is capped at |D0|: with p > |D0| whole ranks idle;
//  * skew on D0 lands entire hot values on single ranks — no rebalancing.
//
// bench/ablation_onedim compares this against Procedure 1 as p approaches
// and passes |D0| and under α0 skew.
#pragma once

#include "core/parallel_cube.h"

namespace sncube {

struct OneDimStats {
  // Imbalance of the per-rank raw slice sizes after partitioning on D0.
  double partition_imbalance = 0;
  // Views that still required a global merge (no D0).
  int merged_views = 0;
};

// Computes the full cube with D0-only partitioning. Same output contract as
// BuildParallelCube (per-rank shards of every view).
CubeResult OneDimPartitionCube(Comm& comm, const Relation& local_raw,
                               const Schema& schema, AggFn fn = AggFn::kSum,
                               OneDimStats* stats = nullptr);

}  // namespace sncube
