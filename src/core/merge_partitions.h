// Merge–Partitions (Procedure 3): agglomerate, for every view of one
// Di-partition, the p per-processor fragments into one globally sorted,
// evenly distributed view.
//
// Per view the procedure classifies (Figure 4):
//
//  * Case 1 — prefix views (sort order = prefix of the partition's global
//    sort order). Fragments already form a global sort; only duplicate
//    groups straddling rank boundaries need fixing. We generalize the
//    paper's "send the first item to the left neighbour" to groups spanning
//    any number of ranks: an all-gather of first/last keys identifies each
//    boundary group's owning (leftmost) rank and one h-relation routes the
//    single boundary row of every other rank to it.
//  * Case 2 — non-prefix views whose projected distribution is still
//    balanced (estimated imbalance ≤ γ from the sampling arrays): each rank
//    keeps the key range ending at its own last element; overlaps are routed
//    to their owners with one h-relation and merged locally.
//  * Case 3 — non-prefix views too imbalanced for overlap routing: a full
//    re-sort via Adaptive–Sample–Sort (γ = 3%), followed by local
//    agglomeration and a Case-1 boundary fixup.
//
// The Case 2/3 decision uses |v'j| sizes ESTIMATED from the Section 2.4
// sampling arrays (1/p % accuracy), never a rescan of the views.
#pragma once

#include <cstdint>
#include <vector>

#include "net/comm.h"
#include "relation/types.h"
#include "seqcube/cube_result.h"

namespace sncube {

struct MergeOptions {
  AggFn fn = AggFn::kSum;
  // Balance threshold γ distinguishing Case 2 from Case 3 (paper: 3%).
  double gamma = 0.03;
  // Sampling-array capacity factor: a = factor · p (paper: 100).
  int sample_capacity_factor = 100;
  // Ablation switch: treat every non-prefix view as Case 3.
  bool force_case3 = false;
};

struct MergeStats {
  int case1_views = 0;
  int case2_views = 0;
  int case3_views = 0;
  // Views whose fragments arrived in differing sort orders (local schedule
  // trees) and had to be re-sorted before merging.
  int resorted_views = 0;

  MergeStats& operator+=(const MergeStats& o) {
    case1_views += o.case1_views;
    case2_views += o.case2_views;
    case3_views += o.case3_views;
    resorted_views += o.resorted_views;
    return *this;
  }
};

// Merges every SELECTED view of `cube` in place (this rank's fragment →
// this rank's shard of the merged view); auxiliary views are erased.
// `root_order` is the partition's global sort order from Step 1b. All ranks
// must call with the same view set. Collective.
void MergePartitions(Comm& comm, CubeResult& cube,
                     const std::vector<int>& root_order,
                     const MergeOptions& opts, MergeStats* stats = nullptr);

}  // namespace sncube
