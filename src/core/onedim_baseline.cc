#include "core/onedim_baseline.h"

#include <algorithm>

#include "common/status.h"
#include "core/sample_sort.h"
#include "lattice/lattice.h"
#include "net/wire.h"
#include "relation/aggregate.h"
#include "relation/serialize.h"
#include "relation/sort.h"
#include "seqcube/seq_cube.h"

namespace sncube {

CubeResult OneDimPartitionCube(Comm& comm, const Relation& local_raw,
                               const Schema& schema, AggFn fn,
                               OneDimStats* stats) {
  SNCUBE_CHECK(local_raw.width() == schema.dims());
  const int p = comm.size();
  const int d = schema.dims();
  const std::uint64_t card0 = schema.cardinality(0);

  // Range-partition raw rows on D0: value v goes to rank v·p/|D0|.
  comm.SetPhase("partition");
  std::vector<ByteBuffer> send(p);
  {
    std::vector<std::vector<std::size_t>> rows_for(p);
    for (std::size_t r = 0; r < local_raw.size(); ++r) {
      const std::uint64_t v = local_raw.key(r, 0);
      const int owner = static_cast<int>(
          std::min<std::uint64_t>(v * p / card0, p - 1));
      rows_for[owner].push_back(r);
    }
    comm.ChargeScanRecords(local_raw.size());
    for (int k = 0; k < p; ++k) {
      for (std::size_t r : rows_for[k]) SerializeRows(local_raw, r, r + 1, send[k]);
    }
  }
  auto received = comm.AllToAllv(std::move(send));
  Relation slice(d);
  for (auto& buf : received) {
    DeserializeRows(buf, slice);
    buf.clear();
  }
  comm.disk().ChargeWrite(slice.ByteSize());

  const std::uint64_t my_rows = slice.size();
  {
    ByteBuffer msg;
    WirePut(msg, my_rows);
    const auto all = comm.AllGather(std::move(msg));
    std::vector<std::uint64_t> sizes;
    for (const auto& b : all) sizes.push_back(WireReader(b).Get<std::uint64_t>());
    if (stats != nullptr) stats->partition_imbalance = RelativeImbalance(sizes);
  }

  // Local full cube over the slice.
  comm.SetPhase("compute");
  ExecStats exec;
  CubeResult cube = SequentialCube(slice, schema, AllViews(d), fn,
                                   &comm.disk(), &exec);
  comm.ChargeScanRecords(exec.records_scanned + exec.rows_emitted);
  // Pipeline sorts run on the rank's exec pool: charge span, like
  // ChargeExecStats in parallel_cube.cc.
  comm.ChargeParallelCpu(exec.sort_cost_units * comm.cost().cpu_sort_record_s);

  // Views without D0 are partial per rank: merge them globally. Process in
  // deterministic order (collective discipline).
  comm.SetPhase("merge");
  std::vector<ViewId> ids;
  for (const auto& [id, vr] : cube.views) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (ViewId id : ids) {
    ViewResult& vr = cube.views.at(id);
    if (id.Contains(0)) continue;  // D0 ranges are disjoint: no merge needed
    if (stats != nullptr) stats->merged_views += 1;
    // Per-rank schedule trees may have produced this view in different sort
    // orders (slice sizes differ, so do the trees); settle on the canonical
    // order before any cross-rank work.
    const std::vector<int> canonical = id.DimList();
    const auto cols = ColumnsOf(id, canonical);
    if (vr.order != canonical) {
      comm.ChargeSortRecords(vr.rel.size());
      vr.rel = SortRelation(vr.rel, cols);
      vr.order = canonical;
    }
    comm.disk().ChargeRead(vr.rel.ByteSize());
    Relation sorted = AdaptiveSampleSort(comm, std::move(vr.rel), cols, 0.03);
    comm.ChargeScanRecords(sorted.size());
    vr.rel = CollapseSorted(sorted, fn);
    // Boundary groups may straddle ranks after the row-granular sort; the
    // parallel-cube merge handles that with its prefix fixup, which we
    // borrow by treating the canonical order as the "global" order.
    CubeResult one;
    one.views[id] = std::move(vr);
    MergeOptions mo;
    mo.fn = fn;
    MergePartitions(comm, one, canonical, mo);
    cube.views[id] = std::move(one.views.at(id));
  }
  return cube;
}

}  // namespace sncube
