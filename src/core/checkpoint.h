// Checkpoint/restart for Procedure 1 (BuildParallelCube).
//
// The natural barrier in the parallel cube build is the end of a
// Di-partition: at that point every rank holds its fully merged shard of
// every view in the partition and no cross-rank state is in flight. After
// each completed partition, every rank persists its view shards plus a
// progress manifest into its own directory under the checkpoint root
// (`<dir>/rank<r>/`), through the io layer and charged to the rank's
// DiskModel — so checkpoint overhead appears honestly in simulated time.
//
// A restarted build (same checkpoint dir, same inputs, same options) agrees
// cluster-wide on the resume point — the minimum over ranks of each rank's
// last complete partition, so a rank that died mid-partition forces that
// partition to be recomputed everywhere — then restores the agreed prefix
// from disk and recomputes the rest. Because serialization round-trips rows
// exactly and the build is deterministic, the restarted result is
// byte-identical to a fault-free run.
//
// Durability protocol: view files of a partition are written first, the
// manifest line naming them is appended last. A crash between the two leaves
// an incomplete partition that the manifest never mentions, so restart
// simply recomputes it (stale files are overwritten). Transient disk errors
// (SncubeTransientIoError, e.g. from fault injection) are retried under
// capped exponential backoff — with the backoff charged to the simulated
// clock — before escalating to SncubeIoError, i.e. a rank failure.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "net/comm.h"
#include "seqcube/cube_result.h"

namespace sncube {

struct CheckpointOptions {
  // Checkpoint root directory; empty disables checkpointing entirely.
  std::string dir;
  // Transient disk-error retries per operation before escalating.
  int max_io_retries = 4;
  // First backoff (simulated seconds); doubles per retry up to the cap.
  double backoff_initial_s = 0.05;
  double backoff_cap_s = 1.0;

  bool enabled() const { return !dir.empty(); }
};

// One rank's handle on the checkpoint directory. Construction creates the
// rank directory (when enabled); all disk traffic is charged to the Comm
// passed per call.
class CheckpointManager {
 public:
  CheckpointManager(const CheckpointOptions& opts, int rank);

  bool enabled() const { return opts_.enabled(); }

  // Largest partition index recorded complete in this rank's manifest, -1
  // when none. Malformed manifest tails (crash-truncated lines) are treated
  // as absent, not as errors.
  int LastCompletePartition() const;

  // Persists every view of `partition_views` as partition `index`, then
  // appends the manifest line that makes the partition durable.
  void SavePartition(Comm& comm, int index, const CubeResult& partition_views);

  // Restores partition `index`'s views into `out`. Throws SncubeIoError /
  // SncubeCorruptionError when the checkpoint is missing or damaged.
  void LoadPartition(Comm& comm, int index, CubeResult* out);

 private:
  std::filesystem::path ViewPath(int index, ViewId id) const;
  std::filesystem::path ManifestPath() const;
  // Manifest lines parsed as (partition index, view masks), in file order,
  // stopping at the first malformed line.
  std::vector<std::pair<int, std::vector<std::uint32_t>>> ReadManifest() const;

  CheckpointOptions opts_;
  int rank_;
  std::filesystem::path rank_dir_;
};

}  // namespace sncube
