// Checkpoint/restart for Procedure 1 (BuildParallelCube).
//
// The natural barrier in the parallel cube build is the end of a
// Di-partition: at that point every rank holds its fully merged shard of
// every view in the partition and no cross-rank state is in flight. After
// each completed partition, every rank persists its view shards plus a
// progress manifest into its own directory under the checkpoint root
// (`<dir>/rank<r>/`), through the io layer and charged to the rank's
// DiskModel — so checkpoint overhead appears honestly in simulated time.
//
// A restarted build (same checkpoint dir, same inputs, same options) agrees
// cluster-wide on the resume point — the minimum over ranks of each rank's
// last complete partition, so a rank that died mid-partition forces that
// partition to be recomputed everywhere — then restores the agreed prefix
// from disk and recomputes the rest. Because serialization round-trips rows
// exactly and the build is deterministic, the restarted result is
// byte-identical to a fault-free run.
//
// Durability protocol: view files of a partition are written first, the
// manifest line naming them is appended last. A crash between the two leaves
// an incomplete partition that the manifest never mentions, so restart
// simply recomputes it (stale files are overwritten). Transient disk errors
// (SncubeTransientIoError, e.g. from fault injection) are retried under
// capped exponential backoff — with the backoff charged to the simulated
// clock — before escalating to SncubeIoError, i.e. a rank failure. Both the
// view writes and the manifest append go through the same retry path.
//
// Integrity: every view shard is persisted as a CRC32C-sealed frame and
// every manifest line carries a CRC suffix (io/checked_file.h). Restart
// verifies the manifest-named shards (LastVerifiedPartition) and treats a
// shard that fails verification exactly like a missing one: the damaged
// file is quarantined to `<file>.corrupt`, the verified prefix ends before
// that partition, and the cluster-wide AllReduceMin agreement forces the
// partition to be recomputed everywhere — still byte-identical, never a
// silently wrong cube.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "net/comm.h"
#include "seqcube/cube_result.h"

namespace sncube {

struct CheckpointOptions {
  // Checkpoint root directory; empty disables checkpointing entirely.
  std::string dir;
  // Transient disk-error retries per operation before escalating.
  int max_io_retries = 4;
  // First backoff (simulated seconds); doubles per retry up to the cap.
  double backoff_initial_s = 0.05;
  double backoff_cap_s = 1.0;
  // Verify shard checksums on restart (LastVerifiedPartition / LoadPartition).
  // TEST-ONLY escape hatch: disabling this deliberately re-opens the silent-
  // corruption path so the chaos explorer's shrinking can be demonstrated
  // against a real bug. Never disable in production code paths.
  bool verify_restore = true;

  bool enabled() const { return !dir.empty(); }
};

// One rank's handle on the checkpoint directory. Construction creates the
// rank directory (when enabled); all disk traffic is charged to the Comm
// passed per call.
class CheckpointManager {
 public:
  CheckpointManager(const CheckpointOptions& opts, int rank);

  bool enabled() const { return opts_.enabled(); }

  // Largest partition index recorded complete in this rank's manifest, -1
  // when none. Malformed manifest tails (crash-truncated or checksum-failing
  // lines) are treated as absent, not as errors. Trusts the manifest: does
  // not open the named shards.
  int LastCompletePartition() const;

  // Like LastCompletePartition, but additionally verifies every shard named
  // by the manifest prefix (checksum + header parse), charging the reads and
  // CRC work to `comm`. A shard that is named but missing or damaged ends
  // the verified prefix there; damaged files are quarantined to
  // `<file>.corrupt` so nothing can half-read them later. This is the resume
  // point fed into the cluster-wide AllReduceMin agreement.
  int LastVerifiedPartition(Comm& comm);

  // Persists every view of `partition_views` as partition `index`, then
  // appends the manifest line that makes the partition durable.
  void SavePartition(Comm& comm, int index, const CubeResult& partition_views);

  // Restores partition `index`'s views into `out`. Throws SncubeIoError /
  // SncubeCorruptionError when the checkpoint is missing or damaged.
  void LoadPartition(Comm& comm, int index, CubeResult* out);

 private:
  std::filesystem::path ViewPath(int index, ViewId id) const;
  std::filesystem::path ManifestPath() const;
  // Reads one shard through the checked io layer (or, with verify_restore
  // off, raw with the trailer blindly stripped) and returns its payload.
  ByteBuffer ReadShard(Comm& comm, const std::filesystem::path& path);
  // Manifest lines parsed as (partition index, view masks), in file order,
  // stopping at the first malformed line.
  std::vector<std::pair<int, std::vector<std::uint32_t>>> ReadManifest() const;

  CheckpointOptions opts_;
  int rank_;
  std::filesystem::path rank_dir_;
};

}  // namespace sncube
