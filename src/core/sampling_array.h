// The sampling array of Section 2.4.
//
// While a processor writes a view vj to its local disk, the view's final
// size is unknown, so a fixed sample size cannot be pre-planned. The paper's
// trick: keep an array of `capacity` rows; fill it with the first rows at
// stride 1, and whenever it fills, drop every other sample and double the
// stride. The surviving samples are always equally spaced over everything
// written so far, so "rows ≤ key" is estimable to within one stride — with
// capacity = 100·p that is the 1/p% accuracy Merge–Partitions needs to pick
// Case 2 vs Case 3 without rescanning the view on disk.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "relation/types.h"

namespace sncube {

class SamplingArray {
 public:
  // `width` = number of key columns per sampled row.
  SamplingArray(int width, std::size_t capacity);

  // Feed the next row (in the order it is written to disk — i.e. the view's
  // sort order).
  void Add(std::span<const Key> keys);

  std::size_t rows_seen() const { return count_; }
  std::size_t stride() const { return stride_; }
  std::size_t sample_count() const { return samples_.size() / width_; }

  // Estimated number of rows whose key tuple compares <= `key` under the
  // lexicographic order of the fed rows. Exact to within one stride, i.e.
  // within 2·rows_seen()/capacity.
  std::size_t EstimateRowsLessEq(std::span<const Key> key) const;

  // Largest estimation error this array can make.
  std::size_t ErrorBound() const { return stride_; }

 private:
  std::span<const Key> SampleAt(std::size_t i) const;

  int width_;
  std::size_t capacity_;
  std::size_t stride_ = 1;
  std::size_t count_ = 0;
  std::vector<Key> samples_;  // flat, width_ keys per sample
};

}  // namespace sncube
