#include "core/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/status.h"
#include "io/checked_file.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "relation/serialize.h"

namespace sncube {
namespace {

constexpr std::uint32_t kCkptMagic = 0x534E434B;  // "SNCK"
constexpr std::uint32_t kCkptVersion = 1;

// Runs `op` (a simulated-disk charge), retrying transient failures under
// capped exponential backoff charged to the rank's clock, then escalating to
// a hard SncubeIoError that kills the rank.
template <typename Fn>
void WithDiskRetry(Comm& comm, const CheckpointOptions& opts, const char* what,
                   Fn&& op) {
  double backoff = opts.backoff_initial_s;
  for (int attempt = 0;; ++attempt) {
    try {
      op();
      return;
    } catch (const SncubeTransientIoError& e) {
      if (attempt >= opts.max_io_retries) {
        throw SncubeIoError(std::string("checkpoint ") + what +
                            ": transient I/O error persisted after " +
                            std::to_string(opts.max_io_retries) +
                            " retries: " + e.what());
      }
      // The wait is real elapsed time on this rank, so it belongs on the
      // simulated clock (a straggler's waits stretch with its slowdown).
      comm.ChargeCpu(backoff);
      backoff = std::min(backoff * 2.0, opts.backoff_cap_s);
    }
  }
}

ByteBuffer SerializeCheckpointView(int index, const ViewResult& vr) {
  ByteBuffer buf;
  WirePut(buf, kCkptMagic);
  WirePut(buf, kCkptVersion);
  WirePut(buf, static_cast<std::int32_t>(index));
  WirePut(buf, vr.id.mask());
  WirePut(buf, static_cast<std::uint8_t>(vr.selected ? 1 : 0));
  WirePutVector(buf,
                std::vector<std::uint8_t>(vr.order.begin(), vr.order.end()));
  WirePut(buf, static_cast<std::uint64_t>(vr.rel.size()));
  SerializeRows(vr.rel, 0, vr.rel.size(), buf);
  return buf;
}

ViewResult ParseCheckpointView(const ByteBuffer& bytes, int index,
                               ViewId expect_id) {
  WireReader reader(bytes);
  if (reader.Get<std::uint32_t>() != kCkptMagic) {
    throw SncubeCorruptionError("checkpoint view: bad magic");
  }
  if (reader.Get<std::uint32_t>() != kCkptVersion) {
    throw SncubeCorruptionError("checkpoint view: unsupported version");
  }
  if (reader.Get<std::int32_t>() != index) {
    throw SncubeCorruptionError("checkpoint view: wrong partition index");
  }
  ViewResult vr;
  vr.id = ViewId(reader.Get<std::uint32_t>());
  if (vr.id != expect_id) {
    throw SncubeCorruptionError("checkpoint view: mask disagrees with name");
  }
  vr.selected = reader.Get<std::uint8_t>() != 0;
  const auto order = reader.GetVector<std::uint8_t>();
  vr.order.assign(order.begin(), order.end());
  const auto rows = reader.Get<std::uint64_t>();
  vr.rel = Relation(vr.id.dim_count());
  if (rows > reader.remaining() / vr.rel.RowBytes()) {
    throw SncubeCorruptionError("checkpoint view: row count exceeds payload");
  }
  vr.rel.Reserve(rows);
  DeserializeRows(reader.GetBytes(rows * vr.rel.RowBytes()), vr.rel);
  if (!reader.AtEnd()) {
    throw SncubeCorruptionError("checkpoint view: trailing bytes");
  }
  return vr;
}

}  // namespace

CheckpointManager::CheckpointManager(const CheckpointOptions& opts, int rank)
    : opts_(opts), rank_(rank) {
  if (!enabled()) return;
  rank_dir_ = std::filesystem::path(opts_.dir) /
              ("rank" + std::to_string(rank_));
  std::filesystem::create_directories(rank_dir_);
}

std::filesystem::path CheckpointManager::ViewPath(int index, ViewId id) const {
  char name[48];
  std::snprintf(name, sizeof(name), "p%03d_v%05x.ckpt", index, id.mask());
  return rank_dir_ / name;
}

std::filesystem::path CheckpointManager::ManifestPath() const {
  return rank_dir_ / "progress.log";
}

std::vector<std::pair<int, std::vector<std::uint32_t>>>
CheckpointManager::ReadManifest() const {
  std::vector<std::pair<int, std::vector<std::uint32_t>>> entries;
  std::ifstream in(ManifestPath());
  if (!in.good()) return entries;
  std::string line;
  while (std::getline(in, line)) {
    // Every line carries a CRC suffix; a line that fails verification — torn
    // mid-write, bit-flipped, or two appends fused by a torn newline — ends
    // the durable prefix, exactly like a crash-truncated tail.
    const auto text = VerifySealedLine(line);
    if (!text.has_value()) break;
    std::istringstream ls(*text);
    std::string tag;
    int index = -1;
    if (!(ls >> tag >> index) || tag != "part" || index < 0) break;
    std::vector<std::uint32_t> masks;
    std::uint32_t mask = 0;
    while (ls >> mask) masks.push_back(mask);
    if (masks.empty()) break;  // crash-truncated line: partition incomplete
    entries.emplace_back(index, std::move(masks));
  }
  return entries;
}

int CheckpointManager::LastCompletePartition() const {
  const auto entries = ReadManifest();
  int last = -1;
  for (const auto& [index, masks] : entries) last = std::max(last, index);
  return last;
}

void CheckpointManager::SavePartition(Comm& comm, int index,
                                      const CubeResult& partition_views) {
  SNCUBE_CHECK(enabled());
  SNCUBE_TRACE_SPAN_IDX("ckpt-save", index);
  std::vector<std::uint32_t> masks;
  // CubeResult::views is an ordered map, so this walk — and with it the
  // per-view CRC charges and the shard-file write order — is ascending-mask
  // deterministic on every rank and every run.
  for (const auto& [id, vr] : partition_views.views) {
    const ByteBuffer bytes = SerializeCheckpointView(index, vr);
    // Sealing cost: one CRC pass over the shard, on the simulated clock so
    // integrity overhead is visible in the checkpoint phase tables.
    comm.ChargeCpu(static_cast<double>(bytes.size()) *
                   comm.cost().cpu_crc_byte_s);
    // The whole sealed write (charge + persist) sits inside the retry: a
    // transient failure happens before any bytes land, so retrying rewrites
    // the file from scratch — idempotent.
    WithDiskRetry(comm, opts_, "write", [&] {
      WriteSealedFile(ViewPath(index, id), bytes, comm.disk());
    });
    masks.push_back(id.mask());
  }
  // The ordered walk above already produced ascending masks; keep the sort
  // as a cheap belt-and-braces guarantee that the manifest stays canonical
  // even if the collection order ever changes.
  std::sort(masks.begin(), masks.end());

  // The manifest line is the commit point: written only after every view of
  // the partition is safely on disk. Same capped-backoff retry path as the
  // shard writes.
  std::ostringstream line;
  line << "part " << index;
  for (std::uint32_t m : masks) line << ' ' << m;
  const std::string text = line.str();
  comm.ChargeCpu(static_cast<double>(text.size()) *
                 comm.cost().cpu_crc_byte_s);
  WithDiskRetry(comm, opts_, "manifest append", [&] {
    AppendSealedLine(ManifestPath(), text, comm.disk());
  });
}

ByteBuffer CheckpointManager::ReadShard(Comm& comm,
                                        const std::filesystem::path& path) {
  if (opts_.verify_restore) {
    ByteBuffer bytes;
    WithDiskRetry(comm, opts_, "read",
                  [&] { bytes = ReadSealedFile(path, comm.disk()); });
    // Verification cost: one CRC pass over the sealed shard.
    comm.ChargeCpu(static_cast<double>(bytes.size() + kFrameTrailerBytes) *
                   comm.cost().cpu_crc_byte_s);
    return bytes;
  }
  // TEST-ONLY unverified path (opts_.verify_restore == false): reads the
  // sealed file raw and blindly drops the trailer without checking it —
  // deliberately re-opening the silent-corruption hole so the chaos
  // explorer has a real bug to find and shrink.
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) {
    throw SncubeIoError("checkpoint: missing view file " + path.string());
  }
  WithDiskRetry(comm, opts_, "read", [&] { comm.disk().ChargeRead(size); });
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw SncubeIoError("checkpoint: cannot open " + path.string());
  }
  ByteBuffer bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  if (in.gcount() != static_cast<std::streamsize>(size)) {
    throw SncubeIoError("checkpoint: short read from " + path.string());
  }
  bytes.resize(bytes.size() > kFrameTrailerBytes
                   ? bytes.size() - kFrameTrailerBytes
                   : 0);
  return bytes;
}

void CheckpointManager::LoadPartition(Comm& comm, int index, CubeResult* out) {
  SNCUBE_CHECK(enabled());
  SNCUBE_TRACE_SPAN_IDX("ckpt-load", index);
  const auto entries = ReadManifest();
  const std::vector<std::uint32_t>* masks = nullptr;
  for (const auto& [i, m] : entries) {
    if (i == index) masks = &m;
  }
  if (masks == nullptr) {
    throw SncubeIoError("checkpoint: partition " + std::to_string(index) +
                        " not recorded complete for rank " +
                        std::to_string(rank_));
  }
  for (std::uint32_t mask : *masks) {
    const ViewId id(mask);
    const ByteBuffer bytes = ReadShard(comm, ViewPath(index, id));
    ViewResult vr = ParseCheckpointView(bytes, index, id);
    out->views[id] = std::move(vr);
  }
}

int CheckpointManager::LastVerifiedPartition(Comm& comm) {
  if (!opts_.verify_restore) return LastCompletePartition();
  int last = -1;
  for (const auto& [index, masks] : ReadManifest()) {
    bool entry_ok = true;
    for (std::uint32_t mask : masks) {
      const ViewId id(mask);
      const auto path = ViewPath(index, id);
      try {
        ParseCheckpointView(ReadShard(comm, path), index, id);
      } catch (const SncubeCorruptionError&) {
        // A manifest-named shard that fails verification is treated exactly
        // like a missing one — except the damaged bytes are quarantined so
        // nothing can half-read them later, and the `.corrupt` file remains
        // for the post-mortem.
        std::error_code ec;
        std::filesystem::rename(path, path.string() + ".corrupt", ec);
        entry_ok = false;
      } catch (const SncubeIoError&) {
        entry_ok = false;  // missing or unreadable: partition incomplete
      }
      if (!entry_ok) break;
    }
    // Restore runs over the contiguous prefix 0..resume point, so the first
    // damaged entry ends what this rank can offer; the AllReduceMin
    // agreement then forces the cluster to recompute from there.
    if (!entry_ok) break;
    last = std::max(last, index);
  }
  return last;
}

}  // namespace sncube
