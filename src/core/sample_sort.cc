#include "core/sample_sort.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/status.h"
#include "core/key_tuple.h"
#include "exec/parallel_algo.h"
#include "io/external_sort.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "relation/merge.h"
#include "relation/serialize.h"
#include "relation/sort.h"

namespace sncube {

double RelativeImbalance(const std::vector<std::uint64_t>& sizes) {
  SNCUBE_CHECK(!sizes.empty());
  std::uint64_t total = 0;
  std::uint64_t mx = 0;
  std::uint64_t mn = sizes[0];
  for (auto s : sizes) {
    total += s;
    mx = std::max(mx, s);
    mn = std::min(mn, s);
  }
  if (total == 0) return 0;
  const double avg =
      static_cast<double>(total) / static_cast<double>(sizes.size());
  return std::max((static_cast<double>(mx) - avg) / avg,
                  (avg - static_cast<double>(mn)) / avg);
}

Relation AdaptiveSampleSort(Comm& comm, Relation local,
                            const std::vector<int>& sort_cols, double gamma,
                            SampleSortStats* stats) {
  const int p = comm.size();
  const int width = local.width();
  const std::size_t rows_in = local.size();

  // Procedure 2 as sibling spans under "sample-sort": local-sort → pivots →
  // h-relation → (optional) shift.
  SNCUBE_TRACE_SPAN("sample-sort");
  obs::PhaseSpan step;
  step.Switch("local-sort");

  // Step 1: local (external-memory) sort — skipped when the input is
  // already in order, which is how Merge–Partitions' Case 3 calls arrive
  // (every view fragment leaves the cube construction sorted); one
  // verification scan replaces the sort.
  Relation sorted;
  if (IsSorted(local, sort_cols)) {
    comm.ChargeScanRecords(local.size());
    comm.disk().ChargeRead(local.ByteSize());
    sorted = std::move(local);
  } else {
    // Parallel region: the sort runs on the rank's exec pool (ExternalSort
    // picks it up via exec::CurrentPool()) and is charged at span, not
    // work. The span is emitted only when a pool is active so serial runs
    // keep the pre-exec trace byte-identical.
    std::optional<obs::ScopedSpan> exec_span;
    if (comm.threads_per_rank() > 1) exec_span.emplace("exec-sort");
    comm.ChargeSortRecordsParallel(local.size());
    sorted = ExternalSort(local, sort_cols, comm.disk());
  }
  local.Clear();

  if (p == 1) {
    if (stats != nullptr) {
      *stats = {.imbalance_before_shift = 0,
                .shifted = false,
                .rows_in = rows_in,
                .rows_out = sorted.size()};
    }
    return sorted;
  }

  // Step 1 (cont.): p local pivots at evenly spaced local ranks, to P0.
  step.Switch("pivots");
  ByteBuffer pivot_msg;
  {
    std::vector<Key> flat;
    std::uint64_t count = 0;
    for (int j = 0; j < p; ++j) {
      if (sorted.empty()) break;
      const std::size_t idx =
          (sorted.size() * static_cast<std::size_t>(j)) /
          static_cast<std::size_t>(p);
      const KeyTuple t = TupleAt(sorted, idx, sort_cols);
      flat.insert(flat.end(), t.begin(), t.end());
      ++count;
    }
    WirePut(pivot_msg, count);
    WirePutVector(pivot_msg, flat);
  }
  const auto gathered = comm.Gather(0, std::move(pivot_msg));

  // Step 2: P0 sorts the local pivots and broadcasts p-1 global pivots.
  ByteBuffer pivot_bcast;
  if (comm.rank() == 0) {
    std::vector<KeyTuple> pivots;
    for (const auto& msg : gathered) {
      WireReader r(msg);
      const auto count = r.Get<std::uint64_t>();
      const auto flat = r.GetVector<Key>();
      SNCUBE_CHECK(flat.size() == count * sort_cols.size());
      for (std::uint64_t i = 0; i < count; ++i) {
        pivots.emplace_back(flat.begin() + i * sort_cols.size(),
                            flat.begin() + (i + 1) * sort_cols.size());
      }
    }
    std::sort(pivots.begin(), pivots.end());
    std::vector<Key> flat;
    std::uint64_t count = 0;
    if (!pivots.empty()) {
      for (int k = 1; k < p; ++k) {
        // Paper: global pivot k at rank k·p + ⌊p/2⌋ of the p² pivots;
        // rescaled when fewer pivots arrived (small inputs).
        std::size_t idx = static_cast<std::size_t>(k) * pivots.size() /
                              static_cast<std::size_t>(p) +
                          pivots.size() / (2 * static_cast<std::size_t>(p));
        idx = std::min(idx, pivots.size() - 1);
        flat.insert(flat.end(), pivots[idx].begin(), pivots[idx].end());
        ++count;
      }
    }
    WirePut(pivot_bcast, count);
    WirePutVector(pivot_bcast, flat);
  }
  pivot_bcast = comm.Broadcast(0, std::move(pivot_bcast));

  std::vector<KeyTuple> global_pivots;
  {
    WireReader r(pivot_bcast);
    const auto count = r.Get<std::uint64_t>();
    const auto flat = r.GetVector<Key>();
    for (std::uint64_t i = 0; i < count; ++i) {
      global_pivots.emplace_back(flat.begin() + i * sort_cols.size(),
                                 flat.begin() + (i + 1) * sort_cols.size());
    }
  }

  // Step 3+4: cut the sorted local data at the pivots (equal keys stay
  // together on the pivot's side) and run the h-relation.
  step.Switch("h-relation");
  std::vector<ByteBuffer> send(p);
  {
    std::size_t begin = 0;
    for (int k = 0; k < p; ++k) {
      std::size_t end;
      if (k < static_cast<int>(global_pivots.size())) {
        end = UpperBoundRow(sorted, sort_cols, global_pivots[k]);
        end = std::max(end, begin);
      } else {
        end = sorted.size();
      }
      if (static_cast<std::size_t>(k) == static_cast<std::size_t>(p) - 1) {
        end = sorted.size();
      }
      SerializeRows(sorted, begin, end, send[k]);
      begin = end;
    }
  }
  sorted.Clear();
  auto received = comm.AllToAllv(std::move(send));

  // Step 5: merge the p sorted runs.
  std::vector<Relation> runs;
  runs.reserve(received.size());
  for (auto& buf : received) {
    runs.push_back(DeserializeRelation(buf, width));
    buf.clear();
  }
  Relation merged;
  {
    std::optional<obs::ScopedSpan> exec_span;
    if (comm.threads_per_rank() > 1) exec_span.emplace("exec-merge");
    merged = exec::MergeSortedRunsAuto(runs, sort_cols);
    runs.clear();
    comm.ChargeParallelCpu(static_cast<double>(merged.size()) *
                           std::log2(std::max(p, 2)) *
                           comm.cost().cpu_sort_record_s);
  }
  comm.disk().ChargeWrite(merged.ByteSize());

  // Step 6: measure imbalance; shift only if it exceeds gamma.
  ByteBuffer size_msg;
  WirePut(size_msg, static_cast<std::uint64_t>(merged.size()));
  auto size_bufs = comm.AllGather(std::move(size_msg));
  std::vector<std::uint64_t> sizes;
  sizes.reserve(size_bufs.size());
  for (const auto& b : size_bufs) {
    sizes.push_back(WireReader(b).Get<std::uint64_t>());
  }
  const double imbalance = RelativeImbalance(sizes);
  const bool shift = imbalance > gamma;

  if (shift) {
    step.Switch("shift");
    // Global shift: every rank re-slices its (globally contiguous) rows to
    // the even target layout with one more h-relation.
    std::uint64_t total = 0;
    std::vector<std::uint64_t> start(p + 1, 0);
    for (int r = 0; r < p; ++r) {
      start[r] = total;
      total += sizes[r];
    }
    start[p] = total;
    const std::uint64_t base = total / p;
    const std::uint64_t extra = total % p;
    auto target_start = [&](int r) {
      return static_cast<std::uint64_t>(r) * base +
             std::min<std::uint64_t>(r, extra);
    };

    std::vector<ByteBuffer> shift_send(p);
    const std::uint64_t my_start = start[comm.rank()];
    const std::uint64_t my_end = start[comm.rank() + 1];
    for (int r = 0; r < p; ++r) {
      const std::uint64_t ts = target_start(r);
      const std::uint64_t te = target_start(r + 1);
      const std::uint64_t lo = std::max(my_start, ts);
      const std::uint64_t hi = std::min(my_end, te);
      if (lo < hi) {
        SerializeRows(merged, lo - my_start, hi - my_start, shift_send[r]);
      }
    }
    merged.Clear();
    auto shifted = comm.AllToAllv(std::move(shift_send));
    Relation balanced(width);
    for (auto& buf : shifted) {
      // Source ranks hold increasing global slices, so appending in rank
      // order preserves the sort.
      DeserializeRows(buf, balanced);
      buf.clear();
    }
    merged = std::move(balanced);
  }

  if (stats != nullptr) {
    *stats = {.imbalance_before_shift = imbalance,
              .shifted = shift,
              .rows_in = rows_in,
              .rows_out = merged.size()};
  }
  return merged;
}

}  // namespace sncube
