#include "core/parallel_cube.h"

#include <algorithm>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/sample_sort.h"
#include "lattice/lattice.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "relation/aggregate.h"
#include "schedule/pipesort.h"
#include "seqcube/pipeline.h"
#include "seqcube/seq_cube.h"

namespace sncube {
namespace {

void ChargeExecStats(Comm& comm, const ExecStats& es) {
  // Scans (EmitChain's group-carry pass) are inherently serial; the
  // pipeline sorts behind sort_cost_units ran on the rank's exec pool, so
  // their work is charged at span (work / threads_per_rank).
  comm.ChargeScanRecords(es.records_scanned + es.rows_emitted);
  // Hash-built pipeline heads also ran on the pool: the table pass is
  // embarrassingly parallel (striped locks), so its work divides by the
  // thread count just like the sorts'.
  comm.ChargeParallelCpu(es.sort_cost_units * comm.cost().cpu_sort_record_s +
                         es.hash_cost_units * comm.cost().cpu_hash_record_s);
}

// True when `part` contains every view of the full-cube Di-partition for its
// root (all subsets of the root keeping its leading dimension) — in that
// case plain Pipesort applies; otherwise the partial-cube builders do.
bool IsFullPartition(const std::vector<ViewId>& part, ViewId root) {
  if (root.empty()) return false;
  const int lead = root.DimList().front();
  std::size_t with_lead = 0;
  for (ViewId v : part) with_lead += v.Contains(lead) ? 1 : 0;
  return with_lead == (1u << (root.dim_count() - 1));
}

// Builds the schedule tree for one partition on the calling rank, using its
// local (already sorted) root data when the FM estimator is requested.
ScheduleTree BuildTreeLocally(Comm& comm, const std::vector<ViewId>& part,
                              ViewId root, const std::vector<int>& root_order,
                              const Relation& local_root_data,
                              std::uint64_t global_rows, const Schema& schema,
                              const ParallelCubeOptions& opts) {
  std::unique_ptr<ViewSizeEstimator> estimator;
  if (opts.estimator == EstimatorKind::kFm && !root.empty()) {
    // Sketch every subset of the root so both full and pruned-partial
    // builders find their estimates. One pass over the local root data.
    std::vector<ViewId> universe;
    const auto dims = root.DimList();
    SNCUBE_CHECK(dims.size() <= 16);
    for (std::uint32_t bits = 0; bits < (1u << dims.size()); ++bits) {
      ViewId v;
      for (std::size_t i = 0; i < dims.size(); ++i) {
        if ((bits >> i) & 1u) v = v.With(dims[i]);
      }
      universe.push_back(v);
    }
    comm.ChargeCpu(static_cast<double>(local_root_data.size()) *
                   static_cast<double>(universe.size()) * 0.25 *
                   comm.cost().cpu_scan_record_s);
    estimator = std::make_unique<FmViewEstimator>(local_root_data, dims,
                                                  universe);
  } else {
    estimator = std::make_unique<AnalyticEstimator>(
        schema, static_cast<double>(global_rows));
  }

  ScheduleTree tree =
      IsFullPartition(part, root)
          ? BuildPipesortTree(part, root, root_order, *estimator)
          : BuildPartialTree(part, root, root_order, *estimator,
                             opts.partial_strategy);
  // Stamp each sort edge's engine now, while the estimator's rows are on
  // the nodes. In global tree mode the choice rides the broadcast with the
  // tree, so every rank executes rank 0's decisions.
  ChooseBackends(tree, opts.backend,
                 comm.cost().cpu_hash_record_s / comm.cost().cpu_sort_record_s);
  return tree;
}

}  // namespace

CubeResult BuildParallelCube(Comm& comm, const Relation& local_raw,
                             const Schema& schema,
                             const std::vector<ViewId>& selected,
                             const ParallelCubeOptions& opts,
                             ParallelCubeStats* stats) {
  SNCUBE_CHECK(local_raw.width() == schema.dims());
  const int d = schema.dims();

  // Procedure 1 as a span tree: "build" covers the whole call; each
  // non-empty Di-partition gets a "dimension/i" child whose own children
  // mirror the SetPhase sequence (partition → schedule → compute → merge
  // [→ checkpoint]). DESIGN.md §10 maps paper figures onto these names.
  SNCUBE_TRACE_SPAN("build");

  comm.SetPhase("partition");
  const std::uint64_t global_rows = comm.AllReduceSum(local_raw.size());

  // Checkpoint/restart: agree cluster-wide on the resume point — the last
  // partition index that EVERY rank recorded complete. A rank that died
  // mid-partition (or a fresh directory) pulls the minimum down, forcing
  // that partition to be recomputed everywhere, so all ranks execute the
  // identical collective sequence after this point.
  CheckpointManager ckpt(opts.checkpoint, comm.rank());
  int resume_before = -1;
  if (ckpt.enabled()) {
    comm.SetPhase("checkpoint/restore");
    // Verified resume point: a manifest-named shard that fails its checksum
    // is quarantined and treated like a missing one, pulling this rank's
    // offer — and via the min-agreement the whole cluster — back to the last
    // partition everyone can actually restore.
    resume_before =
        static_cast<int>(comm.AllReduceMin(
            static_cast<std::uint64_t>(ckpt.LastVerifiedPartition(comm) + 1))) -
        1;
  }

  CubeResult output;
  const auto partitions = PartitionViews(selected, d);
  for (int i = 0; i < d; ++i) {
    const auto& part = partitions[i];
    if (part.empty()) continue;
    if (stats != nullptr) stats->partitions += 1;

    SNCUBE_TRACE_SPAN_IDX("dimension", i);
    obs::PhaseSpan step;

    if (i <= resume_before) {
      // This partition was completed by every rank in a previous run:
      // restore the merged shards from this rank's checkpoint instead of
      // recomputing. The restored rows are byte-for-byte what the compute
      // path produced, so the final CubeResult is identical either way.
      comm.SetPhase("checkpoint/restore");
      step.Switch("restore", i);
      ckpt.LoadPartition(comm, i, &output);
      if (stats != nullptr) stats->partitions_restored += 1;
      continue;
    }

    const ViewId root = PartitionRoot(part);
    const std::vector<int> root_order = root.DimList();
    const std::vector<int> root_cols = root.empty()
                                           ? std::vector<int>{}
                                           : ColumnsOf(root, root_order);

    const std::string tag = "/" + std::to_string(i);

    // ---- Step 1: data partitioning -------------------------------------
    comm.SetPhase("partition" + tag);
    step.Switch("partition", i);
    ExecStats root_stats;
    Relation root_local = ComputeRootData(local_raw, root, root_order,
                                          opts.fn, &comm.disk(), &root_stats);
    ChargeExecStats(comm, root_stats);
    if (stats != nullptr) stats->exec += root_stats;

    Relation root_sorted;
    if (root.empty()) {
      // Degenerate {all}-only partition: nothing to sort.
      root_sorted = std::move(root_local);
    } else {
      SampleSortStats ss;
      root_sorted = AdaptiveSampleSort(comm, std::move(root_local), root_cols,
                                       opts.gamma_partition, &ss);
      if (stats != nullptr && ss.shifted) stats->sample_sort_shifts += 1;
    }
    // Step 1c: recompute the root for the received range (local dedup).
    comm.ChargeScanRecords(root_sorted.size());
    Relation root_data = CollapseSorted(root_sorted, opts.fn);
    root_sorted.Clear();

    // ---- Step 2: local Di-partition computation -------------------------
    comm.SetPhase("schedule" + tag);
    step.Switch("schedule", i);
    ScheduleTree tree;
    if (opts.tree_mode == TreeMode::kGlobal) {
      // Step 2a/2b: P0 builds Ti from ITS data and broadcasts it.
      ByteBuffer tree_msg;
      if (comm.rank() == 0) {
        tree_msg = BuildTreeLocally(comm, part, root, root_order, root_data,
                                    global_rows, schema, opts)
                       .Serialize();
      }
      tree_msg = comm.Broadcast(0, std::move(tree_msg));
      tree = ScheduleTree::Deserialize(tree_msg);
    } else {
      // Local mode: every rank optimizes for its own data; the merge will
      // pay for any disagreement in sort orders.
      tree = BuildTreeLocally(comm, part, root, root_order, root_data,
                              global_rows, schema, opts);
    }

    comm.SetPhase("compute" + tag);
    step.Switch("compute", i);
    ExecStats exec_stats;
    // Charge per pipeline, inside each pipeline's open span, so the trace
    // shows every pipeline with its own simulated extent; the increments sum
    // to exec_stats, so total sim cost is identical to batch charging.
    CubeResult cube = ExecuteScheduleTree(
        tree, std::move(root_data), opts.fn, &comm.disk(), &exec_stats,
        [&comm](const ExecStats& d) { ChargeExecStats(comm, d); });
    if (stats != nullptr) stats->exec += exec_stats;

    // ---- Step 3: merge of local Di-partitions ---------------------------
    comm.SetPhase("merge" + tag);
    step.Switch("merge", i);
    MergeOptions merge_opts;
    merge_opts.fn = opts.fn;
    merge_opts.gamma = opts.gamma_merge;
    merge_opts.sample_capacity_factor = opts.sample_capacity_factor;
    merge_opts.force_case3 = opts.force_case3;
    MergeStats merge_stats;
    MergePartitions(comm, cube, root_order, merge_opts, &merge_stats);
    if (stats != nullptr) stats->merge += merge_stats;

    if (ckpt.enabled()) {
      comm.SetPhase("checkpoint" + tag);
      step.Switch("checkpoint", i);
      ckpt.SavePartition(comm, i, cube);
    }

    for (auto& [id, vr] : cube.views) {
      output.views[id] = std::move(vr);
    }
  }
  return output;
}

}  // namespace sncube
