// Adaptive–Sample–Sort (Procedure 2): parallel sorting by regular sampling
// (Li et al., the paper's reference [14]) with the paper's adaptive twist —
// after the main h-relation the imbalance I(y0..yp-1) is measured and a
// second "global shift" h-relation runs only when it exceeds γ.
#pragma once

#include <cstdint>
#include <vector>

#include "net/comm.h"
#include "relation/relation.h"

namespace sncube {

struct SampleSortStats {
  double imbalance_before_shift = 0;
  bool shifted = false;
  std::uint64_t rows_in = 0;
  std::uint64_t rows_out = 0;
};

// Relative imbalance of Section 2.2:
// max((ymax-yavg)/yavg, (yavg-ymin)/yavg); 0 when all sizes are 0.
double RelativeImbalance(const std::vector<std::uint64_t>& sizes);

// Globally sorts the union of every rank's `local` by `sort_cols`
// (column positions, compared lexicographically). On return each rank holds
// a contiguous shard of the global order: all keys on rank j <= all keys on
// rank j+1, each shard locally sorted, and — when the shift triggered —
// shard sizes balanced to within one row of even. Charges CPU, disk and
// network costs through `comm`.
Relation AdaptiveSampleSort(Comm& comm, Relation local,
                            const std::vector<int>& sort_cols, double gamma,
                            SampleSortStats* stats = nullptr);

}  // namespace sncube
