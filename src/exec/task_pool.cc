#include "exec/task_pool.h"

#include <algorithm>
#include <utility>

#include "common/status.h"

namespace sncube::exec {
namespace {

thread_local TaskPool* t_current_pool = nullptr;
thread_local bool t_on_worker_thread = false;

}  // namespace

// ---------------------------------------------------------------------------
// TaskPool

TaskPool::TaskPool(int threads) : threads_(std::max(1, threads)) {
  slots_.reserve(static_cast<std::size_t>(threads_));
  for (int s = 0; s < threads_; ++s) {
    slots_.push_back(std::make_unique<Slot>());
  }
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  // Slot 0 belongs to the owning (rank) thread; workers take slots 1..W-1.
  // sncheck:allow(raw-thread): the pool implementation is the one sanctioned
  // home of real threads in src/exec (rule raw-thread exempts this file).
  for (int s = 1; s < threads_; ++s) {
    workers_.emplace_back(
        [this, s] { WorkerLoop(static_cast<std::size_t>(s)); });
  }
}

TaskPool::~TaskPool() {
  {
    MutexLock lock(idle_mu_);
    stop_ = true;
  }
  idle_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

bool TaskPool::OnWorkerThread() { return t_on_worker_thread; }

void TaskPool::Push(Task task) {
  const std::size_t s = task.index % slots_.size();
  {
    MutexLock lock(slots_[s]->mu);
    slots_[s]->deque.push_back(std::move(task));
  }
  {
    MutexLock lock(idle_mu_);
    ++task_epoch_;
  }
  idle_cv_.NotifyOne();
}

bool TaskPool::TryRunOne(std::size_t home) {
  const std::size_t n = slots_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t s = (home + k) % n;
    Task task;
    bool got = false;
    {
      MutexLock lock(slots_[s]->mu);
      auto& dq = slots_[s]->deque;
      if (!dq.empty()) {
        if (s == home) {
          task = std::move(dq.back());
          dq.pop_back();
        } else {
          task = std::move(dq.front());
          dq.pop_front();
        }
        got = true;
      }
    }
    if (got) {
      if (s != home) steals_.fetch_add(1, std::memory_order_relaxed);
      Execute(std::move(task));
      return true;
    }
  }
  return false;
}

void TaskPool::WorkerLoop(std::size_t home) {
  t_on_worker_thread = true;
  for (;;) {
    std::uint64_t epoch;
    {
      MutexLock lock(idle_mu_);
      if (stop_) return;
      epoch = task_epoch_;
    }
    if (TryRunOne(home)) continue;
    // Every deque was empty at `epoch`; sleep until a push (epoch tick) or
    // shutdown. A push that raced the scan already bumped the epoch, so the
    // while-loop condition catches it and we rescan instead of sleeping.
    MutexLock lock(idle_mu_);
    while (!stop_ && task_epoch_ == epoch) idle_cv_.Wait(idle_mu_);
    if (stop_) return;
  }
}

void TaskPool::Execute(Task task) {
  std::exception_ptr error;
  try {
    task.fn();
  } catch (...) {
    error = std::current_exception();
  }
  task.group->Finish(task.index, std::move(error));
}

void TaskPool::ParallelFor(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  if (threads_ <= 1 || n <= grain || OnWorkerThread()) {
    body(0, n);
    return;
  }
  // More chunks than contexts so stealing can rebalance ragged chunk costs,
  // capped so per-task overhead stays negligible. Boundaries are a pure
  // function of (n, grain, threads): determinism of the chunking itself.
  const std::size_t max_chunks = static_cast<std::size_t>(threads_) * 4;
  const std::size_t chunks =
      std::min(max_chunks, (n + grain - 1) / grain);
  TaskGroup group(this);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = n * c / chunks;
    const std::size_t end = n * (c + 1) / chunks;
    if (begin == end) continue;
    group.Run([&body, begin, end] { body(begin, end); });
  }
  group.Wait();
}

// ---------------------------------------------------------------------------
// TaskGroup

TaskGroup::TaskGroup(TaskPool* pool)
    : pool_((pool != nullptr && pool->threads() > 1 &&
             !TaskPool::OnWorkerThread())
                ? pool
                : nullptr) {}

TaskGroup::~TaskGroup() { JoinQuietly(); }

void TaskGroup::Run(std::function<void()> fn) {
  const std::size_t index = next_index_++;
  if (pool_ == nullptr) {
    // Inline mode: the exact serial control flow, with failure capture
    // matching the pooled path (Wait rethrows, Run never does).
    try {
      fn();
    } catch (...) {
      RecordError(index, std::current_exception());
    }
    return;
  }
  {
    MutexLock lock(mu_);
    ++pending_;
  }
  pool_->Push(TaskPool::Task{std::move(fn), this, index});
}

void TaskGroup::Wait() {
  JoinQuietly();
  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    error = std::move(error_);
    error_ = nullptr;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void TaskGroup::JoinQuietly() {
  if (pool_ != nullptr) {
    // Help drain: any queued task (ours or a sibling group's) beats idling.
    while (pool_->TryRunOne(0)) {
    }
  }
  MutexLock lock(mu_);
  // Tasks not in any deque are in flight on workers; their Finish calls
  // will signal. New tasks are only ever pushed by this (caller) thread.
  while (pending_ != 0) done_cv_.Wait(mu_);
}

void TaskGroup::Finish(std::size_t index, std::exception_ptr error) {
  MutexLock lock(mu_);
  if (error != nullptr &&
      (error_ == nullptr || index < error_index_)) {
    error_ = std::move(error);
    error_index_ = index;
  }
  SNCUBE_DCHECK(pending_ > 0);
  if (--pending_ == 0) done_cv_.NotifyAll();
}

void TaskGroup::RecordError(std::size_t index, std::exception_ptr error) {
  MutexLock lock(mu_);
  if (error_ == nullptr || index < error_index_) {
    error_ = std::move(error);
    error_index_ = index;
  }
}

// ---------------------------------------------------------------------------
// Thread-local installation

TaskPool* CurrentPool() { return t_current_pool; }

PoolScope::PoolScope(TaskPool* pool) : previous_(t_current_pool) {
  t_current_pool = pool;
}

PoolScope::~PoolScope() { t_current_pool = previous_; }

}  // namespace sncube::exec
