// Deterministic divide-and-conquer sort/merge over Relations, built on
// exec::TaskPool.
//
// ParallelSortedPermutation is a chunked stable merge sort: the permutation
// is split into `threads` contiguous chunks (boundaries a pure function of
// n and the thread count), each chunk is stable_sorted in parallel, then
// adjacent runs are merged pairwise; each pair merge is itself split into
// key-aligned segments merged concurrently into disjoint output ranges.
// Every merge takes the left run first on equal keys and chunks hold
// ascending original indices, so the result equals std::stable_sort — i.e.
// relation/sort.h's SortedPermutation — exactly, for every thread count.
//
// ParallelMergeSortedRuns merges k sorted runs as a balanced tournament of
// pairwise merges over the run list in order; ties go to the lower run
// index (left subtree), matching relation/merge.h's MergeSortedRuns
// byte-for-byte.
//
// The *Auto variants dispatch on exec::CurrentPool(): with no pool
// installed (or a single-threaded one) they call the serial implementations
// directly, so the serial path — control flow, allocation pattern, result —
// is untouched when threads_per_rank == 1.
//
// Cost model: both algorithms do the same O(n log n) comparison work as
// their serial counterparts (chunk sorts sum to n·log2(n/W); the log2(W)
// merge rounds add n each), so callers keep charging the serial work
// formula and divide by the thread count for the span — see
// Comm::ChargeParallelCpu. GreedyMakespan is the span model for ragged
// chunk regions (external-sort run formation), where work/threads
// underestimates the critical path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "exec/task_pool.h"
#include "relation/relation.h"

namespace sncube::exec {

// Row order of `rel` ascending-lexicographic in `cols`; equals
// SortedPermutation(rel, cols) for every pool/thread count.
std::vector<std::uint32_t> ParallelSortedPermutation(const Relation& rel,
                                                     std::span<const int> cols,
                                                     TaskPool* pool);

// Sorted copy of `rel`; equals SortRelation(rel, cols) byte-for-byte.
Relation ParallelSortRelation(const Relation& rel, std::span<const int> cols,
                              TaskPool* pool);

// Merge of sorted runs; equals MergeSortedRuns(runs, cols) byte-for-byte.
Relation ParallelMergeSortedRuns(const std::vector<Relation>& runs,
                                 std::span<const int> cols, TaskPool* pool);

// Dispatch-on-CurrentPool() conveniences for the per-rank kernels.
Relation SortRelationAuto(const Relation& rel, std::span<const int> cols);
Relation MergeSortedRunsAuto(const std::vector<Relation>& runs,
                             std::span<const int> cols);

// Parallel scan/aggregate primitive: runs `body(begin, end)` over disjoint
// chunks of [0, n) on the installed pool, or as a single body(0, n) call
// when no multi-threaded pool is installed, n is small, or the caller is
// already on a worker thread (no nested fan-out). Chunk boundaries come
// from TaskPool::ParallelFor, so they are a pure function of (n, grain,
// threads); bodies whose per-chunk results are combined associatively and
// commutatively (hashagg's Combine) therefore cannot observe the thread
// count. Bodies run on worker threads and must not touch rank-confined
// state (Comm, DiskModel) — charge cost from the rank thread afterwards.
void ParallelForAuto(std::size_t n, std::size_t grain,
                     const std::function<void(std::size_t, std::size_t)>& body);

// Critical-path seconds of deterministic list scheduling: tasks are placed
// in submission order, each on the currently least-loaded of `workers`
// contexts (ties → lowest index). This is the span charged for parallel
// regions whose chunk costs are ragged; for uniform chunks it reduces to
// ceil(k/workers)·cost, and with workers == 1 it is exactly the sum.
double GreedyMakespan(std::span<const double> chunk_costs, int workers);

}  // namespace sncube::exec
