#include "exec/parallel_algo.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "relation/merge.h"
#include "relation/sort.h"

namespace sncube::exec {
namespace {

// Below this row count the fork-join overhead beats the win; the serial
// implementations are used verbatim. Purely a performance threshold — the
// parallel results are identical either way.
constexpr std::size_t kMinParallelRows = 4096;

bool UseSerial(TaskPool* pool, std::size_t rows) {
  return pool == nullptr || pool->threads() <= 1 || rows < kMinParallelRows ||
         TaskPool::OnWorkerThread();
}

// Comparator over permutation entries: lexicographic in `cols`, no
// tie-break (stability comes from stable_sort / left-first merges).
struct PermLess {
  const Key* keys;
  std::size_t width;
  std::span<const int> cols;

  bool operator()(std::uint32_t a, std::uint32_t b) const {
    const Key* ra = keys + static_cast<std::size_t>(a) * width;
    const Key* rb = keys + static_cast<std::size_t>(b) * width;
    for (int c : cols) {
      if (ra[c] != rb[c]) return ra[c] < rb[c];
    }
    return false;
  }
};

// Schedules the stable merge of src[a0,a1) and src[a1,b1) into dst[a0,b1)
// as up to `segments` key-aligned tasks on `group`. Each cut key k sends
// ALL entries with keys <= k (from both runs, A's equal run before B's) to
// the left of the cut, so concatenating the segment merges reproduces the
// global stable merge exactly.
void MergePairTasks(const std::vector<std::uint32_t>& src, std::size_t a0,
                    std::size_t a1, std::size_t b1, const PermLess& less,
                    std::vector<std::uint32_t>& dst, std::size_t segments,
                    TaskGroup& group) {
  const std::size_t len_a = a1 - a0;
  if (segments <= 1 || (b1 - a0) < kMinParallelRows || len_a == 0 ||
      b1 == a1) {
    group.Run([&src, a0, a1, b1, less, &dst] {
      std::merge(src.begin() + static_cast<std::ptrdiff_t>(a0),
                 src.begin() + static_cast<std::ptrdiff_t>(a1),
                 src.begin() + static_cast<std::ptrdiff_t>(a1),
                 src.begin() + static_cast<std::ptrdiff_t>(b1),
                 dst.begin() + static_cast<std::ptrdiff_t>(a0), less);
    });
    return;
  }
  std::vector<std::size_t> acut{a0};
  std::vector<std::size_t> bcut{a1};
  for (std::size_t s = 1; s < segments; ++s) {
    std::size_t ai = a0 + len_a * s / segments;
    ai = std::max(ai, acut.back());
    if (ai >= a1) {
      acut.push_back(a1);
      bcut.push_back(bcut.back());
      continue;
    }
    const std::uint32_t pivot = src[ai];
    const auto a_begin = src.begin() + static_cast<std::ptrdiff_t>(ai);
    const auto a_end = src.begin() + static_cast<std::ptrdiff_t>(a1);
    const std::size_t ai2 = static_cast<std::size_t>(
        std::upper_bound(a_begin, a_end, pivot, less) - src.begin());
    const auto b_begin = src.begin() + static_cast<std::ptrdiff_t>(bcut.back());
    const auto b_end = src.begin() + static_cast<std::ptrdiff_t>(b1);
    const std::size_t bi = static_cast<std::size_t>(
        std::upper_bound(b_begin, b_end, pivot, less) - src.begin());
    acut.push_back(ai2);
    bcut.push_back(bi);
  }
  acut.push_back(a1);
  bcut.push_back(b1);
  for (std::size_t s = 0; s + 1 < acut.size(); ++s) {
    if (acut[s] == acut[s + 1] && bcut[s] == bcut[s + 1]) continue;
    const std::size_t out = a0 + (acut[s] - a0) + (bcut[s] - a1);
    group.Run([&src, &dst, less, out, ab = acut[s], ae = acut[s + 1],
               bb = bcut[s], be = bcut[s + 1]] {
      std::merge(src.begin() + static_cast<std::ptrdiff_t>(ab),
                 src.begin() + static_cast<std::ptrdiff_t>(ae),
                 src.begin() + static_cast<std::ptrdiff_t>(bb),
                 src.begin() + static_cast<std::ptrdiff_t>(be),
                 dst.begin() + static_cast<std::ptrdiff_t>(out), less);
    });
  }
}

// First row in rel[lo,hi) whose key (restricted to `cols`) exceeds
// pivot_rel's pivot_row.
std::size_t UpperBoundRows(const Relation& rel, std::size_t lo, std::size_t hi,
                           std::span<const int> cols, const Relation& pivot_rel,
                           std::size_t pivot_row) {
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (CompareRows(rel, mid, cols, pivot_rel, pivot_row, cols) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Serial stable two-run merge (ties take `a` first), appended to `out`.
void MergeRowsInto(const Relation& a, std::size_t ab, std::size_t ae,
                   const Relation& b, std::size_t bb, std::size_t be,
                   std::span<const int> cols, Relation& out) {
  out.Reserve(out.size() + (ae - ab) + (be - bb));
  while (ab < ae && bb < be) {
    if (CompareRows(a, ab, cols, b, bb, cols) <= 0) {
      out.AppendRow(a, ab++);
    } else {
      out.AppendRow(b, bb++);
    }
  }
  while (ab < ae) out.AppendRow(a, ab++);
  while (bb < be) out.AppendRow(b, bb++);
}

Relation MergeTwoRuns(const Relation& a, const Relation& b,
                      std::span<const int> cols, int width, TaskPool* pool) {
  Relation out(width);
  const std::size_t total = a.size() + b.size();
  const std::size_t segments = static_cast<std::size_t>(pool->threads());
  if (total < kMinParallelRows || segments <= 1 || a.empty() || b.empty()) {
    MergeRowsInto(a, 0, a.size(), b, 0, b.size(), cols, out);
    return out;
  }
  // Key-aligned cuts, same scheme as the permutation merge above.
  std::vector<std::size_t> acut{0};
  std::vector<std::size_t> bcut{0};
  for (std::size_t s = 1; s < segments; ++s) {
    std::size_t ai = a.size() * s / segments;
    ai = std::max(ai, acut.back());
    if (ai >= a.size()) {
      acut.push_back(a.size());
      bcut.push_back(bcut.back());
      continue;
    }
    acut.push_back(UpperBoundRows(a, ai, a.size(), cols, a, ai));
    bcut.push_back(UpperBoundRows(b, bcut.back(), b.size(), cols, a, ai));
  }
  acut.push_back(a.size());
  bcut.push_back(b.size());

  std::vector<Relation> pieces;
  pieces.reserve(acut.size() - 1);
  for (std::size_t s = 0; s + 1 < acut.size(); ++s) pieces.emplace_back(width);
  {
    TaskGroup group(pool);
    for (std::size_t s = 0; s + 1 < acut.size(); ++s) {
      if (acut[s] == acut[s + 1] && bcut[s] == bcut[s + 1]) continue;
      group.Run([&a, &b, &pieces, &acut, &bcut, cols, s] {
        MergeRowsInto(a, acut[s], acut[s + 1], b, bcut[s], bcut[s + 1], cols,
                      pieces[s]);
      });
    }
    group.Wait();
  }
  out.Reserve(total);
  for (auto& piece : pieces) out.Concat(std::move(piece));
  return out;
}

}  // namespace

std::vector<std::uint32_t> ParallelSortedPermutation(const Relation& rel,
                                                     std::span<const int> cols,
                                                     TaskPool* pool) {
  const std::size_t n = rel.size();
  if (UseSerial(pool, n)) return SortedPermutation(rel, cols);

  const std::size_t contexts = static_cast<std::size_t>(pool->threads());
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  const PermLess less{rel.raw_keys(), static_cast<std::size_t>(rel.width()),
                      cols};

  // Chunked stable sorts: boundaries depend only on (n, threads).
  std::vector<std::size_t> runs;
  runs.reserve(contexts + 1);
  for (std::size_t c = 0; c <= contexts; ++c) runs.push_back(n * c / contexts);
  {
    TaskGroup group(pool);
    for (std::size_t c = 0; c + 1 < runs.size(); ++c) {
      const std::size_t b = runs[c];
      const std::size_t e = runs[c + 1];
      if (b == e) continue;
      group.Run([&perm, b, e, less] {
        std::stable_sort(perm.begin() + static_cast<std::ptrdiff_t>(b),
                         perm.begin() + static_cast<std::ptrdiff_t>(e), less);
      });
    }
    group.Wait();
  }

  // Pairwise merge rounds over adjacent runs until one remains; each round
  // ping-pongs between perm and scratch.
  std::vector<std::uint32_t> scratch(n);
  std::vector<std::uint32_t>* src = &perm;
  std::vector<std::uint32_t>* dst = &scratch;
  while (runs.size() > 2) {
    const std::size_t pairs = (runs.size() - 1) / 2;
    const std::size_t segments =
        std::max<std::size_t>(1, (contexts * 2) / pairs);
    std::vector<std::size_t> next;
    next.reserve(pairs + 2);
    next.push_back(runs.front());
    TaskGroup group(pool);
    std::size_t r = 0;
    for (; r + 2 < runs.size(); r += 2) {
      MergePairTasks(*src, runs[r], runs[r + 1], runs[r + 2], less, *dst,
                     segments, group);
      next.push_back(runs[r + 2]);
    }
    if (r + 1 < runs.size()) {
      // Odd run out: carried over verbatim this round.
      const std::size_t b = runs[r];
      const std::size_t e = runs[r + 1];
      group.Run([src, dst, b, e] {
        std::copy(src->begin() + static_cast<std::ptrdiff_t>(b),
                  src->begin() + static_cast<std::ptrdiff_t>(e),
                  dst->begin() + static_cast<std::ptrdiff_t>(b));
      });
      next.push_back(runs[r + 1]);
    }
    group.Wait();
    runs = std::move(next);
    std::swap(src, dst);
  }
  if (src != &perm) perm = std::move(scratch);
  return perm;
}

Relation ParallelSortRelation(const Relation& rel, std::span<const int> cols,
                              TaskPool* pool) {
  if (UseSerial(pool, rel.size())) return SortRelation(rel, cols);
  const std::vector<std::uint32_t> perm =
      ParallelSortedPermutation(rel, cols, pool);

  // Parallel gather: each context gathers one contiguous slice of the
  // permutation into its own relation; concatenating in slice order (pure
  // appends) yields exactly ApplyPermutation(rel, perm).
  const std::size_t contexts = static_cast<std::size_t>(pool->threads());
  const std::size_t n = perm.size();
  std::vector<Relation> pieces;
  pieces.reserve(contexts);
  for (std::size_t c = 0; c < contexts; ++c) pieces.emplace_back(rel.width());
  {
    TaskGroup group(pool);
    for (std::size_t c = 0; c < contexts; ++c) {
      const std::size_t b = n * c / contexts;
      const std::size_t e = n * (c + 1) / contexts;
      if (b == e) continue;
      group.Run([&rel, &perm, &pieces, c, b, e] {
        Relation& out = pieces[c];
        out.Reserve(e - b);
        for (std::size_t i = b; i < e; ++i) out.AppendRow(rel, perm[i]);
      });
    }
    group.Wait();
  }
  Relation out(rel.width());
  out.Reserve(n);
  for (auto& piece : pieces) out.Concat(std::move(piece));
  return out;
}

Relation ParallelMergeSortedRuns(const std::vector<Relation>& runs,
                                 std::span<const int> cols, TaskPool* pool) {
  int width = 0;
  std::size_t total = 0;
  for (const auto& r : runs) {
    if (r.width() > width) width = r.width();
    total += r.size();
  }
  if (UseSerial(pool, total) || runs.size() <= 1) {
    return MergeSortedRuns(runs, cols);
  }

  // Balanced tournament of pairwise merges over the run list in order: run
  // i meets run j>i only with i in the left subtree, so ties resolve to the
  // lower run index — the same order MergeSortedRuns' heap produces.
  std::vector<Relation> level;
  level.reserve((runs.size() + 1) / 2);
  for (std::size_t r = 0; r + 1 < runs.size(); r += 2) {
    level.push_back(MergeTwoRuns(runs[r], runs[r + 1], cols, width, pool));
  }
  if (runs.size() % 2 == 1) level.push_back(runs.back());

  while (level.size() > 1) {
    std::vector<Relation> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t r = 0; r + 1 < level.size(); r += 2) {
      next.push_back(MergeTwoRuns(level[r], level[r + 1], cols, width, pool));
    }
    if (level.size() % 2 == 1) next.push_back(std::move(level.back()));
    level = std::move(next);
  }
  return std::move(level.front());
}

void ParallelForAuto(std::size_t n, std::size_t grain,
                     const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  TaskPool* pool = CurrentPool();
  if (UseSerial(pool, n)) {
    body(0, n);
    return;
  }
  pool->ParallelFor(n, grain, body);
}

Relation SortRelationAuto(const Relation& rel, std::span<const int> cols) {
  TaskPool* pool = CurrentPool();
  if (pool == nullptr || pool->threads() <= 1) return SortRelation(rel, cols);
  return ParallelSortRelation(rel, cols, pool);
}

Relation MergeSortedRunsAuto(const std::vector<Relation>& runs,
                             std::span<const int> cols) {
  TaskPool* pool = CurrentPool();
  if (pool == nullptr || pool->threads() <= 1) {
    return MergeSortedRuns(runs, cols);
  }
  return ParallelMergeSortedRuns(runs, cols, pool);
}

double GreedyMakespan(std::span<const double> chunk_costs, int workers) {
  if (workers <= 1) {
    double total = 0;
    for (double c : chunk_costs) total += c;
    return total;
  }
  std::vector<double> load(static_cast<std::size_t>(workers), 0.0);
  for (double c : chunk_costs) {
    std::size_t best = 0;
    for (std::size_t w = 1; w < load.size(); ++w) {
      if (load[w] < load[best]) best = w;
    }
    load[best] += c;
  }
  return *std::max_element(load.begin(), load.end());
}

}  // namespace sncube::exec
