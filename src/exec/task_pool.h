// exec::TaskPool — the intra-rank work-stealing task runtime.
//
// The paper's shared-nothing design gives each virtual processor one thread,
// so every local sort, pipeline scan, and merge runs sequentially. TaskPool
// adds intra-rank parallelism underneath the BSP model without changing its
// semantics: a rank thread owns one pool of `threads - 1` real worker
// threads (the rank thread itself is the pool's first execution context) and
// fans work out through fork-join TaskGroups and chunked ParallelFor loops.
//
// Scheduling is work-stealing: every execution context (slot) has its own
// deque, tasks are distributed round-robin across the slots at submission,
// owners pop their own deque LIFO from the back (cache-warm), and idle
// contexts steal FIFO from the front of other slots' deques — so a slot
// stuck behind a long task sheds its queued work to whoever is free.
//
// Determinism contract: the pool schedules *execution*, never *results*.
// Chunk boundaries are pure functions of (n, grain, threads); tasks write
// disjoint data; joins are full barriers. Algorithm results are therefore
// byte-identical for every thread count — only wall-clock time and the
// simulated span charge (Comm::ChargeParallelCpu) vary. Exceptions are
// deterministic too: TaskGroup::Wait rethrows the failure with the lowest
// submission index, regardless of completion order.
//
// Thread-safety: every deque is guarded by its own capability-annotated
// Mutex (SNCUBE_GUARDED_BY, machine-checked on clang builds); the idle
// protocol uses a separate mutex + epoch counter so a push between "scan
// found nothing" and "sleep" can never be lost. Tasks themselves must not
// touch rank-confined state (Comm, DiskModel, TraceRecorder): all cost
// charging and tracing stays on the rank thread, which is what keeps the
// charge order — and with it fault-injection replay — deterministic.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace sncube::exec {

class TaskGroup;

class TaskPool {
 public:
  // Spawns `threads - 1` workers; the constructing (rank) thread is the
  // pool's remaining execution context. threads <= 1 builds an inert pool:
  // every TaskGroup/ParallelFor runs inline on the caller.
  explicit TaskPool(int threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int threads() const { return threads_; }

  // Runs body(begin, end) over chunk boundaries covering [0, n) exactly
  // once. Boundaries are a pure function of (n, grain, threads); chunks may
  // execute concurrently and in any order, so `body` must write only
  // chunk-disjoint data. Blocks until every chunk finished; rethrows the
  // lowest-index chunk failure.
  void ParallelFor(std::size_t n, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& body);

  // Tasks executed from a deque other than the runner's home slot since
  // construction. Observability only — asserting exact values would race
  // with scheduling.
  std::uint64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }

  // True on a pool worker thread (used to run nested parallelism inline
  // instead of deadlocking the pool on itself).
  static bool OnWorkerThread();

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
    std::size_t index = 0;  // submission index within its group
  };

  // One execution context's deque. Each slot carries its own lock so pushes
  // and steals on different slots never contend.
  struct Slot {
    Mutex mu;
    std::deque<Task> deque SNCUBE_GUARDED_BY(mu);
  };

  void Push(Task task);
  // Runs one task if any slot has one (own slot from the back, others from
  // the front). Returns false when every deque was empty.
  bool TryRunOne(std::size_t home);
  void WorkerLoop(std::size_t home);
  static void Execute(Task task);

  const int threads_;
  std::vector<std::unique_ptr<Slot>> slots_;  // size == threads_
  std::atomic<std::uint64_t> steals_{0};

  // Idle/shutdown protocol: workers sleep here; task_epoch_ ticks on every
  // push so a worker that scanned empty deques re-scans instead of sleeping
  // through a concurrent push.
  Mutex idle_mu_;
  CondVar idle_cv_;
  bool stop_ SNCUBE_GUARDED_BY(idle_mu_) = false;
  std::uint64_t task_epoch_ SNCUBE_GUARDED_BY(idle_mu_) = 0;

  std::vector<std::thread> workers_;
};

// Fork-join region: Run() forks tasks, Wait() joins them (the caller helps
// drain the pool while waiting). With a null/inert pool — or on a pool
// worker thread, where blocking would starve the pool — tasks run inline at
// Run(), preserving the exact serial control flow.
class TaskGroup {
 public:
  explicit TaskGroup(TaskPool* pool);
  // Joins outstanding tasks but swallows their exceptions (destructors must
  // not throw); call Wait() on the success path.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Run(std::function<void()> fn);

  // Blocks until every task forked so far has finished; rethrows the
  // pending failure with the lowest submission index, if any.
  void Wait();

 private:
  friend class TaskPool;
  // Completion callback, run on whatever thread executed the task.
  void Finish(std::size_t index, std::exception_ptr error);
  void RecordError(std::size_t index, std::exception_ptr error);
  void JoinQuietly();

  TaskPool* pool_;       // null → inline mode
  std::size_t next_index_ = 0;  // caller-thread only

  Mutex mu_;
  CondVar done_cv_;
  std::size_t pending_ SNCUBE_GUARDED_BY(mu_) = 0;
  std::size_t error_index_ SNCUBE_GUARDED_BY(mu_) = 0;
  std::exception_ptr error_ SNCUBE_GUARDED_BY(mu_);
};

// Thread-local pool installation, mirroring obs::ThreadRecorderScope: the
// cluster runtime installs each rank's pool on the rank thread for the
// duration of Run, and the kernels pick it up via CurrentPool() without
// threading a pool argument through every call chain. Null when the current
// thread has no pool (serial mode).
TaskPool* CurrentPool();

class PoolScope {
 public:
  explicit PoolScope(TaskPool* pool);
  ~PoolScope();

  PoolScope(const PoolScope&) = delete;
  PoolScope& operator=(const PoolScope&) = delete;

 private:
  TaskPool* previous_;
};

}  // namespace sncube::exec
