// Environment knobs shared by benches and examples.
//
// SNCUBE_SCALE   — multiplies every bench's default row count (default 1.0).
// SNCUBE_PAPER   — when set to 1, benches run at the paper's full data sizes
//                  (n = 1M/2M rows); expect long wall times on one core.
// SNCUBE_MAXPROC — caps the largest simulated processor count in sweeps.
#pragma once

#include <cstdint>
#include <string>

namespace sncube {

// Reads an environment variable, returning fallback when unset or malformed.
double EnvDouble(const char* name, double fallback);
std::int64_t EnvInt(const char* name, std::int64_t fallback);
bool EnvFlag(const char* name);
// Raw string value; fallback when unset or empty.
std::string EnvStr(const char* name, const char* fallback);

// Bench row-count helper: paper_n when SNCUBE_PAPER=1, otherwise
// default_n * SNCUBE_SCALE.
std::int64_t BenchRows(std::int64_t default_n, std::int64_t paper_n);

}  // namespace sncube
