#include "common/rng.h"

#include "common/status.h"

namespace sncube {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // SplitMix64 expansion guarantees a non-zero state for any seed.
  std::uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::Below(std::uint64_t bound) {
  SNCUBE_DCHECK(bound > 0);
  // Lemire's debiased multiply-shift rejection method.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 high bits → [0,1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

Rng Rng::Split() { return Rng(Next()); }

}  // namespace sncube
