// Capability-annotated synchronization primitives.
//
// Thin wrappers over std::mutex / std::condition_variable that carry the
// clang thread-safety attributes from thread_annotations.h, so that a field
// declared `SNCUBE_GUARDED_BY(mu_)` is machine-checked: touching it without
// holding `mu_` fails a clang build (`-Wthread-safety -Werror`). The
// wrappers add no state and no overhead beyond the standard types — they
// exist purely to give the analysis lock/unlock events it can see.
//
// Usage:
//
//   mutable Mutex mu_;
//   std::deque<Request> queue_ SNCUBE_GUARDED_BY(mu_);
//
//   void Push(Request r) {
//     MutexLock lock(mu_);        // scoped capability: analysis knows
//     queue_.push_back(std::move(r));
//   }
//
// Mutexes that participate in a cross-class acquisition order additionally
// carry SNCUBE_ACQUIRED_AFTER / SNCUBE_ACQUIRED_BEFORE declarations — the
// serve tier chains its four lock layers through the anchor mutexes in
// serve/lock_order.h. Those declarations are enforced twice: by clang's
// -Wthread-safety-beta in the CI lint build, and by the whole-program
// lock-order rule of tools/lint/sncheck_ast.py on every platform.
//
// Condition waits use CondVar::Wait(mu), annotated SNCUBE_REQUIRES(mu):
// the wait atomically releases and reacquires the mutex internally, which
// is invisible to (and consistent with) the analysis — the capability is
// held on entry and on exit. Write waits as explicit while-loops around
// Wait rather than predicate lambdas: lambda bodies are analyzed as
// separate functions and would need their own annotations.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace sncube {

class SNCUBE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // Lowercase names keep the wrapper a drop-in BasicLockable, so
  // std::lock_guard / std::unique_lock still work where needed.
  void lock() SNCUBE_ACQUIRE() { mu_.lock(); }
  void unlock() SNCUBE_RELEASE() { mu_.unlock(); }
  bool try_lock() SNCUBE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock over a Mutex; the scoped-capability annotation tells the
// analysis the mutex is held for exactly this object's lifetime.
class SNCUBE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SNCUBE_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SNCUBE_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to Mutex. Wait requires the capability: the
// caller provably holds `mu` across the wait (modulo the internal
// release/reacquire, which the analysis treats as a no-op — correctly, since
// guarded state may have changed across the call and the caller must
// re-check its predicate in a loop).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) SNCUBE_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait,
    // then release ownership back without unlocking: from the caller's
    // (and the analysis's) view the lock was held throughout.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sncube
