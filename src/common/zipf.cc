#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace sncube {

ZipfSampler::ZipfSampler(std::uint32_t universe, double alpha)
    : universe_(universe), alpha_(alpha) {
  SNCUBE_CHECK(universe >= 1);
  SNCUBE_CHECK(alpha >= 0.0);
  if (alpha == 0.0) return;  // uniform fast path, no table needed
  cdf_.resize(universe);
  double total = 0.0;
  for (std::uint32_t k = 0; k < universe; ++k) {
    total += std::pow(static_cast<double>(k) + 1.0, -alpha);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding in the binary search
}

std::uint32_t ZipfSampler::Sample(Rng& rng) const {
  if (alpha_ == 0.0) {
    return static_cast<std::uint32_t>(rng.Below(universe_));
  }
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint32_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(std::uint32_t k) const {
  SNCUBE_CHECK(k < universe_);
  if (alpha_ == 0.0) return 1.0 / universe_;
  const double lo = (k == 0) ? 0.0 : cdf_[k - 1];
  return cdf_[k] - lo;
}

}  // namespace sncube
