#include "common/env.h"

#include <cstdlib>

namespace sncube {

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

std::int64_t EnvInt(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

bool EnvFlag(const char* name) { return EnvInt(name, 0) != 0; }

std::string EnvStr(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? std::string(fallback) : std::string(v);
}

std::int64_t BenchRows(std::int64_t default_n, std::int64_t paper_n) {
  if (EnvFlag("SNCUBE_PAPER")) return paper_n;
  const double scale = EnvDouble("SNCUBE_SCALE", 1.0);
  const auto n = static_cast<std::int64_t>(static_cast<double>(default_n) * scale);
  return n < 1 ? 1 : n;
}

}  // namespace sncube
