// CRC32C (Castagnoli) and the self-verifying frame trailer.
//
// Every byte run this system persists or transmits — wire frames between
// ranks, checkpoint view shards, manifest lines, external-sort runs — is
// covered by a CRC32C so that silent corruption (bit flips, torn writes
// that still deserialize) is *detected* rather than aggregated into a wrong
// cube. CRC32C is the storage-engine standard (iSCSI, ext4, Btrfs,
// LevelDB/RocksDB blocks): a 32-bit CRC over the Castagnoli polynomial
// 0x1EDC6F41, with strictly better burst-error detection than CRC32/IEEE.
//
// The implementation is slice-by-8: eight table lookups per 8-byte chunk,
// no carry chains, ~1 byte/cycle on era hardware without SSE4.2. Tables are
// generated once at static-init time from the polynomial, and the whole
// layer is self-tested against the RFC 3720 known vectors in common_test.
//
// Frame trailer (`SealFrame`/`VerifyFrame`): a sealed buffer is
//
//     payload .. | u64 payload_len | u32 crc32c(payload) | u32 'SNFR'
//
// (all little-endian, 16 bytes total — kFrameTrailerBytes). Verification
// checks magic, length and checksum and throws SncubeCorruptionError on any
// mismatch, so a truncated, extended, or bit-flipped frame can never be
// mistaken for a shorter-but-valid one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace sncube {

// CRC32C of `bytes` (one-shot).
std::uint32_t Crc32c(std::span<const std::byte> bytes);

// Incremental form: extends `crc` (the running checksum of everything seen
// so far; start from kCrc32cInit == 0) with `bytes`. Crc32c(a ++ b) ==
// Crc32cExtend(Crc32cExtend(0, a), b).
inline constexpr std::uint32_t kCrc32cInit = 0;
std::uint32_t Crc32cExtend(std::uint32_t crc, std::span<const std::byte> bytes);

// ---------------------------------------------------------------------------
// Frame trailer.

inline constexpr std::size_t kFrameTrailerBytes = 16;
inline constexpr std::uint32_t kFrameMagic = 0x524E4653;  // "SNFR" LE

// Appends the integrity trailer to `buf` in place.
void SealFrame(std::vector<std::byte>& buf);

// Validates the trailer of a sealed buffer and returns the payload length.
// Throws SncubeCorruptionError when the buffer is too short, the magic or
// length disagree, or the checksum does not match the payload.
std::size_t VerifyFrame(std::span<const std::byte> sealed);

// VerifyFrame + removal of the trailer, leaving only the payload in `buf`.
void VerifyAndStripFrame(std::vector<std::byte>& buf);

}  // namespace sncube
