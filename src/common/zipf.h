// Zipf-distributed sampling, the skew model used throughout the paper's
// evaluation (Section 4, citing Zipf [26]).
//
// A ZipfSampler over universe size N with exponent alpha draws value
// k ∈ [0, N) with probability proportional to 1/(k+1)^alpha. alpha = 0 is
// the uniform distribution; the paper sweeps alpha from 0 (no skew) to 3
// (high skew). Sampling is by binary search over the precomputed CDF —
// O(log N) per draw, exact, and deterministic under a seeded Rng.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace sncube {

class ZipfSampler {
 public:
  // universe must be >= 1; alpha >= 0.
  ZipfSampler(std::uint32_t universe, double alpha);

  // Draws one value in [0, universe).
  std::uint32_t Sample(Rng& rng) const;

  std::uint32_t universe() const { return universe_; }
  double alpha() const { return alpha_; }

  // Probability of drawing k (for tests).
  double Probability(std::uint32_t k) const;

 private:
  std::uint32_t universe_;
  double alpha_;
  std::vector<double> cdf_;  // cdf_[k] = P(X <= k); empty when alpha == 0
};

}  // namespace sncube
