// Clang thread-safety-analysis annotation macros.
//
// These attach lock-discipline facts to types, fields, and functions:
// which mutex guards a field, which capability a function requires, what a
// scoped lock acquires and releases. Under clang the attributes feed
// `-Wthread-safety` (enabled automatically by the build when the compiler
// is clang, see SNCUBE_THREAD_SAFETY in the top-level CMakeLists), turning
// the concurrency contracts of src/serve and src/net into compile errors
// when violated. Under other compilers the macros expand to nothing, so the
// annotations cost nothing and the code stays portable.
//
// The vocabulary follows the standard capability model (same macro set as
// abseil/base/thread_annotations.h, SNCUBE_-prefixed):
//
//   SNCUBE_GUARDED_BY(mu)   field may only be accessed while holding mu
//   SNCUBE_REQUIRES(mu)     caller must hold mu when calling this function
//   SNCUBE_EXCLUDES(mu)     caller must NOT hold mu (function locks it)
//   SNCUBE_ACQUIRE/RELEASE  function enters/exits with the capability
//   SNCUBE_ACQUIRED_AFTER / SNCUBE_ACQUIRED_BEFORE
//                           declared lock-ordering hierarchy (see
//                           serve/lock_order.h): clang checks it under
//                           -Wthread-safety-beta, and sncheck_ast.py reads
//                           the same declarations textually to cross-check
//                           the observed acquired-while-held graph on every
//                           platform
//
// See DESIGN.md §9 for the invariant list and the suppression policy
// (SNCUBE_NO_THREAD_SAFETY_ANALYSIS requires an inline justification).
#pragma once

#if defined(__clang__)
#define SNCUBE_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define SNCUBE_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside clang
#endif

// On types: marks a class as a capability (a lock) in error messages.
#define SNCUBE_CAPABILITY(x) \
  SNCUBE_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// On types: RAII object that acquires a capability in its constructor and
// releases it in its destructor.
#define SNCUBE_SCOPED_CAPABILITY \
  SNCUBE_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// On fields: readable/writable only while holding the given capability.
#define SNCUBE_GUARDED_BY(x) SNCUBE_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// On pointer fields: the pointed-to data is guarded (the pointer itself is
// not).
#define SNCUBE_PT_GUARDED_BY(x) \
  SNCUBE_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// On functions: the caller must hold the capabilities when calling.
#define SNCUBE_REQUIRES(...) \
  SNCUBE_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

// On functions: the caller must NOT hold the capabilities (the function
// acquires them itself; calling with them held would self-deadlock).
#define SNCUBE_EXCLUDES(...) \
  SNCUBE_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// On functions: the function acquires / releases the capability.
#define SNCUBE_ACQUIRE(...) \
  SNCUBE_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define SNCUBE_RELEASE(...) \
  SNCUBE_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

// On mutex declarations: declared acquisition order. A mutex marked
// ACQUIRED_AFTER(a) must only ever be acquired while `a` is (optionally)
// already held — holding it and then taking `a` inverts the hierarchy.
// ACQUIRED_BEFORE is the mirror image. Two independent checkers consume
// these: clang's -Wthread-safety-beta (the CI lint build) and the
// tools/lint/sncheck_ast.py lock-order rule, which parses the declarations
// textually and fails on any observed acquired-while-held edge that
// contradicts them — so the hierarchy is enforced even on gcc-only hosts.
#define SNCUBE_ACQUIRED_AFTER(...) \
  SNCUBE_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))
#define SNCUBE_ACQUIRED_BEFORE(...) \
  SNCUBE_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

// On functions: try-lock that acquires the capability when it returns the
// given success value: SNCUBE_TRY_ACQUIRE(true) or
// SNCUBE_TRY_ACQUIRE(true, mu). The success value rides in __VA_ARGS__ so
// the single-argument form does not leave a trailing comma.
#define SNCUBE_TRY_ACQUIRE(...) \
  SNCUBE_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

// On functions: returns a reference to the given capability (lets callers
// lock through an accessor).
#define SNCUBE_RETURN_CAPABILITY(x) \
  SNCUBE_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// On functions: runtime assertion that the capability is held (adds the
// fact to the analysis without a lock operation).
#define SNCUBE_ASSERT_CAPABILITY(x) \
  SNCUBE_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

// Escape hatch: disables the analysis for one function. Every use must
// carry an adjacent comment justifying why the access pattern is safe but
// inexpressible (see DESIGN.md §9).
#define SNCUBE_NO_THREAD_SAFETY_ANALYSIS \
  SNCUBE_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
