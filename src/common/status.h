// Error handling for sncube.
//
// The library uses exceptions for unrecoverable precondition violations and
// I/O failures; hot paths use SNCUBE_DCHECK which compiles away in release
// builds. All throwing sites funnel through SncubeError so callers can catch
// a single type at the API boundary; the subclasses below form the failure
// taxonomy (see DESIGN.md "Failure model") so callers that need to can react
// per failure class — retry transients, restart from checkpoint on aborts,
// reject corrupt inputs.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace sncube {

// Base exception for all sncube failures.
class SncubeError : public std::runtime_error {
 public:
  explicit SncubeError(const std::string& what) : std::runtime_error(what) {}
};

// Malformed, truncated, or otherwise untrustworthy serialized data: wire
// buffers, view files, checkpoint files. Never retryable — the bytes are
// wrong, not the medium.
class SncubeCorruptionError : public SncubeError {
 public:
  explicit SncubeCorruptionError(const std::string& what)
      : SncubeError(what) {}
};

// A disk or file operation failed and is not expected to succeed on retry
// (missing file, short write after retries, permission).
class SncubeIoError : public SncubeError {
 public:
  explicit SncubeIoError(const std::string& what) : SncubeError(what) {}
};

// A disk operation failed transiently; callers may retry (the checkpoint
// layer does, under capped exponential backoff, before escalating to a
// SncubeIoError, which in turn becomes a rank failure).
class SncubeTransientIoError : public SncubeIoError {
 public:
  explicit SncubeTransientIoError(const std::string& what)
      : SncubeIoError(what) {}
};

// A rank was deliberately killed by the fault injector (testing only).
class InjectedFaultError : public SncubeError {
 public:
  explicit InjectedFaultError(const std::string& what) : SncubeError(what) {}
};

// A cluster Run aborted because some rank failed. Surviving ranks blocked in
// a collective receive this instead of deadlocking or running past
// mismatched supersteps, and Cluster::Run rethrows it to the caller. Names
// the rank whose failure caused the abort and the superstep (collective
// index within the Run) at which it died.
class ClusterAbortedError : public SncubeError {
 public:
  ClusterAbortedError(const std::string& what, int failed_rank,
                      std::uint64_t superstep)
      : SncubeError(what), failed_rank_(failed_rank), superstep_(superstep) {}

  int failed_rank() const { return failed_rank_; }
  std::uint64_t superstep() const { return superstep_; }

 private:
  int failed_rank_;
  std::uint64_t superstep_;
};

namespace internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "SNCUBE_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw SncubeError(os.str());
}

}  // namespace internal

// Always-on invariant check; throws SncubeError on failure.
#define SNCUBE_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::sncube::internal::CheckFailed(#expr, __FILE__, __LINE__, "");   \
  } while (0)

#define SNCUBE_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr))                                                        \
      ::sncube::internal::CheckFailed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

// Debug-only check; disappears in NDEBUG builds so it is safe on hot paths.
#ifdef NDEBUG
#define SNCUBE_DCHECK(expr) \
  do {                      \
  } while (0)
#else
#define SNCUBE_DCHECK(expr) SNCUBE_CHECK(expr)
#endif

}  // namespace sncube
