// Error handling for sncube.
//
// The library uses exceptions for unrecoverable precondition violations and
// I/O failures; hot paths use SNCUBE_DCHECK which compiles away in release
// builds. All throwing sites funnel through SncubeError so callers can catch
// a single type at the API boundary.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sncube {

// Base exception for all sncube failures.
class SncubeError : public std::runtime_error {
 public:
  explicit SncubeError(const std::string& what) : std::runtime_error(what) {}
};

namespace internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "SNCUBE_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw SncubeError(os.str());
}

}  // namespace internal

// Always-on invariant check; throws SncubeError on failure.
#define SNCUBE_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::sncube::internal::CheckFailed(#expr, __FILE__, __LINE__, "");   \
  } while (0)

#define SNCUBE_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr))                                                        \
      ::sncube::internal::CheckFailed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

// Debug-only check; disappears in NDEBUG builds so it is safe on hot paths.
#ifdef NDEBUG
#define SNCUBE_DCHECK(expr) \
  do {                      \
  } while (0)
#else
#define SNCUBE_DCHECK(expr) SNCUBE_CHECK(expr)
#endif

}  // namespace sncube
