// Deterministic pseudo-random number generation.
//
// All synthetic workloads are seeded so every experiment is reproducible
// bit-for-bit. The generator is xoshiro256**, seeded through SplitMix64 —
// fast, high quality, and independent of the standard library's unspecified
// distributions (std::uniform_int_distribution output differs across
// standard libraries; ours does not).
#pragma once

#include <cstdint>

namespace sncube {

// xoshiro256** by Blackman & Vigna (public domain reference implementation).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Uniform 64-bit value.
  std::uint64_t Next();

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Splits off an independent stream (for per-rank / per-dimension use).
  Rng Split();

 private:
  std::uint64_t s_[4];
};

}  // namespace sncube
