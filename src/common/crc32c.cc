#include "common/crc32c.h"

#include <array>
#include <cstring>

#include "common/status.h"

namespace sncube {
namespace {

// Reflected Castagnoli polynomial (0x1EDC6F41 bit-reversed).
constexpr std::uint32_t kPoly = 0x82F63B78u;

// Slice-by-8 tables: table[0] is the classic byte-at-a-time table; table[k]
// advances a byte that sits k positions deeper in the 8-byte chunk.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t;

  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

}  // namespace

std::uint32_t Crc32cExtend(std::uint32_t crc, std::span<const std::byte> bytes) {
  const auto& t = tables().t;
  std::uint32_t c = ~crc;
  const std::byte* p = bytes.data();
  std::size_t n = bytes.size();

  while (n >= 8) {
    // One 8-byte chunk: fold the low word into the running CRC, then eight
    // independent table lookups (the "slices").
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
        t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    c = t[0][(c ^ static_cast<std::uint32_t>(*p)) & 0xFFu] ^ (c >> 8);
    ++p;
    --n;
  }
  return ~c;
}

std::uint32_t Crc32c(std::span<const std::byte> bytes) {
  return Crc32cExtend(kCrc32cInit, bytes);
}

namespace {

void PutU32(std::vector<std::byte>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
  }
}

void PutU64(std::vector<std::byte>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
  }
}

std::uint32_t GetU32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint32_t>(p[i]);
  }
  return v;
}

std::uint64_t GetU64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint64_t>(p[i]);
  }
  return v;
}

}  // namespace

void SealFrame(std::vector<std::byte>& buf) {
  const std::uint64_t len = buf.size();
  const std::uint32_t crc = Crc32c(buf);
  buf.reserve(buf.size() + kFrameTrailerBytes);
  PutU64(buf, len);
  PutU32(buf, crc);
  PutU32(buf, kFrameMagic);
}

std::size_t VerifyFrame(std::span<const std::byte> sealed) {
  if (sealed.size() < kFrameTrailerBytes) {
    throw SncubeCorruptionError("frame: shorter than the integrity trailer");
  }
  const std::byte* trailer = sealed.data() + sealed.size() - kFrameTrailerBytes;
  if (GetU32(trailer + 12) != kFrameMagic) {
    throw SncubeCorruptionError("frame: bad trailer magic");
  }
  const std::uint64_t len = GetU64(trailer);
  if (len != sealed.size() - kFrameTrailerBytes) {
    throw SncubeCorruptionError("frame: length disagrees with buffer");
  }
  const std::uint32_t want = GetU32(trailer + 8);
  const std::uint32_t got =
      Crc32c(sealed.subspan(0, static_cast<std::size_t>(len)));
  if (want != got) {
    throw SncubeCorruptionError("frame: CRC32C mismatch (payload corrupt)");
  }
  return static_cast<std::size_t>(len);
}

void VerifyAndStripFrame(std::vector<std::byte>& buf) {
  const std::size_t payload = VerifyFrame(buf);
  buf.resize(payload);
}

}  // namespace sncube
