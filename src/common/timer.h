// Wall-clock timing for benches (real elapsed time, as in the paper's
// "parallel wall clock time" — though on this substrate the figures are
// driven by the simulated BSP clock in src/net/cost_model.h).
#pragma once

#include <chrono>

namespace sncube {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sncube
