#include "query/engine.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/status.h"
#include "obs/trace.h"
#include "relation/aggregate.h"
#include "relation/sort.h"

namespace sncube {

CubeQueryEngine::CubeQueryEngine(const CubeResult& cube) : cube_(cube) {}

ViewId CubeQueryEngine::Route(const Query& query) const {
  SNCUBE_TRACE_SPAN("query-route");
  ViewId needed = query.group_by;
  for (const auto& f : query.filters) needed = needed.With(f.dim);

  if (query.from_view.has_value()) {
    const auto it = cube_.views.find(*query.from_view);
    SNCUBE_CHECK_MSG(it != cube_.views.end() && it->second.selected,
                     "from_view is not materialized");
    SNCUBE_CHECK_MSG(needed.IsSubsetOf(*query.from_view),
                     "from_view does not cover the query");
    return *query.from_view;
  }

  ViewId best;
  std::size_t best_rows = std::numeric_limits<std::size_t>::max();
  bool found = false;
  // Smallest covering view wins; among equal row counts the smallest ViewId
  // wins, making the route independent of unordered_map iteration order.
  for (const auto& [id, vr] : cube_.views) {
    if (!vr.selected || !needed.IsSubsetOf(id)) continue;
    if (!found || vr.rel.size() < best_rows ||
        (vr.rel.size() == best_rows && id.mask() < best.mask())) {
      best = id;
      best_rows = vr.rel.size();
      found = true;
    }
  }
  SNCUBE_CHECK_MSG(found, "no materialized view covers the query");
  return best;
}

QueryAnswer CubeQueryEngine::Execute(const Query& query) const {
  SNCUBE_TRACE_SPAN("query-exec");
  const ViewId source = Route(query);
  const ViewResult& vr = cube_.views.at(source);

  QueryAnswer answer;
  answer.answered_from = source;
  answer.rows_scanned = vr.rel.size();

  // Filter columns (within the source view's canonical layout).
  struct ColFilter {
    int col;
    Key value;
  };
  std::vector<ColFilter> col_filters;
  for (const auto& f : query.filters) {
    const auto cols = ColumnsOf(source, {f.dim});
    col_filters.push_back({cols[0], f.value});
  }
  const std::vector<int> group_cols =
      ColumnsOf(source, query.group_by.DimList());

  Relation projected(query.group_by.dim_count());
  std::vector<Key> keys(group_cols.size());
  for (std::size_t r = 0; r < vr.rel.size(); ++r) {
    bool keep = true;
    for (const auto& cf : col_filters) {
      if (vr.rel.key(r, cf.col) != cf.value) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;
    for (std::size_t i = 0; i < group_cols.size(); ++i) {
      keys[i] = vr.rel.key(r, group_cols[i]);
    }
    projected.Append(keys, vr.rel.measure(r));
  }
  answer.rel =
      SortAndAggregate(projected, IdentityOrder(projected.width()), query.fn);

  answer.rel = TopKByMeasure(answer.rel, query.top_k);
  return answer;
}

Relation TopKByMeasure(const Relation& rel, int k) {
  if (k <= 0 || static_cast<std::size_t>(k) >= rel.size()) return rel;
  // ORDER BY measure DESC LIMIT k (ties by key order for determinism).
  std::vector<std::size_t> rows(rel.size());
  std::iota(rows.begin(), rows.end(), 0u);
  const auto kk = static_cast<std::size_t>(k);
  std::partial_sort(rows.begin(), rows.begin() + kk, rows.end(),
                    [&](std::size_t a, std::size_t b) {
                      if (rel.measure(a) != rel.measure(b)) {
                        return rel.measure(a) > rel.measure(b);
                      }
                      return a < b;
                    });
  Relation top(rel.width());
  top.Reserve(kk);
  for (std::size_t i = 0; i < kk; ++i) top.AppendRow(rel, rows[i]);
  return top;
}

}  // namespace sncube
