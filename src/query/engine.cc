#include "query/engine.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/status.h"
#include "obs/trace.h"
#include "relation/aggregate.h"
#include "relation/sort.h"

namespace sncube {

CubeQueryEngine::CubeQueryEngine(const CubeResult& cube) : cube_(cube) {}

ViewId CubeQueryEngine::Route(const Query& query) const {
  SNCUBE_TRACE_SPAN("query-route");
  ViewId needed = query.group_by;
  for (const auto& f : query.filters) needed = needed.With(f.dim);

  ViewId best;
  std::size_t best_rows = std::numeric_limits<std::size_t>::max();
  bool found = false;
  // Smallest covering view wins; among equal row counts the smallest ViewId
  // wins, making the route independent of unordered_map iteration order.
  for (const auto& [id, vr] : cube_.views) {
    if (!vr.selected || !needed.IsSubsetOf(id)) continue;
    if (!found || vr.rel.size() < best_rows ||
        (vr.rel.size() == best_rows && id.mask() < best.mask())) {
      best = id;
      best_rows = vr.rel.size();
      found = true;
    }
  }
  SNCUBE_CHECK_MSG(found, "no materialized view covers the query");
  return best;
}

QueryAnswer CubeQueryEngine::Execute(const Query& query) const {
  SNCUBE_TRACE_SPAN("query-exec");
  const ViewId source = Route(query);
  const ViewResult& vr = cube_.views.at(source);

  QueryAnswer answer;
  answer.answered_from = source;
  answer.rows_scanned = vr.rel.size();

  // Filter columns (within the source view's canonical layout).
  struct ColFilter {
    int col;
    Key value;
  };
  std::vector<ColFilter> col_filters;
  for (const auto& f : query.filters) {
    const auto cols = ColumnsOf(source, {f.dim});
    col_filters.push_back({cols[0], f.value});
  }
  const std::vector<int> group_cols =
      ColumnsOf(source, query.group_by.DimList());

  Relation projected(query.group_by.dim_count());
  std::vector<Key> keys(group_cols.size());
  for (std::size_t r = 0; r < vr.rel.size(); ++r) {
    bool keep = true;
    for (const auto& cf : col_filters) {
      if (vr.rel.key(r, cf.col) != cf.value) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;
    for (std::size_t i = 0; i < group_cols.size(); ++i) {
      keys[i] = vr.rel.key(r, group_cols[i]);
    }
    projected.Append(keys, vr.rel.measure(r));
  }
  answer.rel =
      SortAndAggregate(projected, IdentityOrder(projected.width()), query.fn);

  if (query.top_k > 0 &&
      static_cast<std::size_t>(query.top_k) < answer.rel.size()) {
    // ORDER BY measure DESC LIMIT top_k (ties by key order for determinism).
    std::vector<std::size_t> rows(answer.rel.size());
    std::iota(rows.begin(), rows.end(), 0u);
    const auto k = static_cast<std::size_t>(query.top_k);
    std::partial_sort(rows.begin(), rows.begin() + k, rows.end(),
                      [&](std::size_t a, std::size_t b) {
                        if (answer.rel.measure(a) != answer.rel.measure(b)) {
                          return answer.rel.measure(a) > answer.rel.measure(b);
                        }
                        return a < b;
                      });
    Relation top(answer.rel.width());
    top.Reserve(k);
    for (std::size_t i = 0; i < k; ++i) top.AppendRow(answer.rel, rows[i]);
    answer.rel = std::move(top);
  }
  return answer;
}

}  // namespace sncube
