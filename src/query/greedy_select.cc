#include "query/greedy_select.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/status.h"
#include "lattice/lattice.h"

namespace sncube {

std::vector<ViewId> GreedySelectViews(int d, int count,
                                      const ViewSizeEstimator& estimator) {
  SNCUBE_CHECK(d >= 1 && d <= 20);
  const std::uint32_t total = 1u << d;
  SNCUBE_CHECK(count >= 1 && static_cast<std::uint32_t>(count) <= total);

  std::vector<double> size(total);
  for (std::uint32_t m = 0; m < total; ++m) {
    size[m] = estimator.EstimateRows(ViewId(m));
  }

  // cost[w] = rows scanned to answer w from its cheapest selected ancestor.
  const std::uint32_t full = total - 1;
  std::vector<double> cost(total, size[full]);
  std::vector<bool> selected_mask(total, false);
  selected_mask[full] = true;

  std::vector<ViewId> selected{ViewId(full)};
  while (static_cast<int>(selected.size()) < count) {
    double best_benefit = -1;
    std::uint32_t best = 0;
    for (std::uint32_t v = 0; v < total; ++v) {
      if (selected_mask[v]) continue;
      // Benefit: Σ over subsets w of v of max(0, cost[w] − size[v]).
      double benefit = 0;
      std::uint32_t w = v;
      while (true) {
        if (cost[w] > size[v]) benefit += cost[w] - size[v];
        if (w == 0) break;
        w = (w - 1) & v;
      }
      if (benefit > best_benefit ||
          (benefit == best_benefit && v < best)) {
        best_benefit = benefit;
        best = v;
      }
    }
    selected_mask[best] = true;
    selected.emplace_back(best);
    std::uint32_t w = best;
    while (true) {
      cost[w] = std::min(cost[w], size[best]);
      if (w == 0) break;
      w = (w - 1) & best;
    }
  }
  return selected;
}

std::vector<ViewId> GreedySelectFraction(int d, double fraction,
                                         const ViewSizeEstimator& estimator) {
  SNCUBE_CHECK(fraction > 0 && fraction <= 1.0);
  const auto total = static_cast<double>(1u << d);
  int count = static_cast<int>(std::lround(fraction * total));
  count = std::max(1, count);
  return GreedySelectViews(d, count, estimator);
}

}  // namespace sncube
