// OLAP query answering over a materialized ROLAP cube — the reason the cube
// is precomputed at all (paper Section 1: fast execution of subsequent OLAP
// queries [10]).
//
// A query groups by a set of dimensions, optionally after equality filters
// (slice/dice). The engine routes it to the SMALLEST materialized view
// containing every referenced dimension (group-by ∪ filters) and aggregates
// from there — the standard lattice-routing argument of Harinarayan et
// al. [12]. With a full cube the exact view always exists; with a partial
// cube the router falls back to the cheapest materialized ancestor.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "lattice/view_id.h"
#include "relation/relation.h"
#include "relation/types.h"
#include "seqcube/cube_result.h"

namespace sncube {

struct DimFilter {
  int dim = 0;   // global dimension index
  Key value = 0;  // keep rows where dim == value
};

struct Query {
  ViewId group_by;
  std::vector<DimFilter> filters;
  AggFn fn = AggFn::kSum;
  // When > 0: return only the top_k groups by measure, descending (ties by
  // key ascending) — ORDER BY measure DESC LIMIT k. 0 = all groups, key
  // order.
  int top_k = 0;
  // When set, the engine answers from exactly this materialized view
  // instead of routing (it must cover the query and be materialized — a
  // typed error otherwise). The sharded serving tier uses this to pin every
  // shard's sub-query to one view: shard slices are partitioned per view by
  // leading-dimension hash, so partial answers only compose when all slices
  // scan the SAME view (see serve/shard_set.h).
  std::optional<ViewId> from_view;
};

struct QueryAnswer {
  Relation rel;          // canonical columns of group_by, rows sorted
  ViewId answered_from;  // the materialized view the engine scanned
  std::uint64_t rows_scanned = 0;
};

// ORDER BY measure DESC LIMIT k over an aggregated relation (ties broken by
// row order, i.e. key order, for determinism). k <= 0 or k >= size returns
// the input unchanged. Shared by the engine and the scatter/gather router,
// which must re-apply top-k after merging per-shard partials.
Relation TopKByMeasure(const Relation& rel, int k);

// Thread safety: CubeQueryEngine is logically const. Route and Execute only
// read the referenced CubeResult and allocate their results locally, so any
// number of threads may call them concurrently on one engine — PROVIDED the
// CubeResult is not mutated after the engine is constructed. That
// immutability contract is what makes the lock-free read path of
// serve/server.h sound; see DESIGN.md ("Immutability of CubeResult").
class CubeQueryEngine {
 public:
  // The engine keeps a reference to the cube; it must outlive the engine
  // and must not be mutated while any engine method is executing.
  explicit CubeQueryEngine(const CubeResult& cube);

  // The materialized view a query would be routed to: smallest row count
  // among views containing all referenced dimensions, ties broken by the
  // smallest ViewId (mask) so routing is deterministic across runs and
  // unordered_map iteration orders. Throws when no materialized view covers
  // the query (possible for partial cubes).
  ViewId Route(const Query& query) const;

  QueryAnswer Execute(const Query& query) const;

 private:
  const CubeResult& cube_;
};

}  // namespace sncube
