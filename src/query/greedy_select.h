// Greedy view selection (Harinarayan, Rajaraman & Ullman [12]) — the
// standard way a user picks WHICH views to materialize, i.e. the selected
// set S a partial cube (paper Section 3) is built for.
//
// The benefit of materializing view v, given the already-selected set, is
// the total query-cost saving over all views w ⊆ v that would now be
// answered from v instead of their current cheapest ancestor. The greedy
// algorithm picks the maximum-benefit view k times; HRU prove it achieves at
// least 63% of the optimal benefit.
#pragma once

#include <vector>

#include "lattice/estimate.h"
#include "lattice/view_id.h"

namespace sncube {

// Selects `count` views of the d-dimensional lattice (the full view is
// always selected first and counts toward `count`). Estimated sizes come
// from `estimator`. Returns the selected views, selection order preserved.
std::vector<ViewId> GreedySelectViews(int d, int count,
                                      const ViewSizeEstimator& estimator);

// Convenience for the paper's "k% of views selected" experiments: selects
// round(fraction · 2^d) views greedily.
std::vector<ViewId> GreedySelectFraction(int d, double fraction,
                                         const ViewSizeEstimator& estimator);

}  // namespace sncube
