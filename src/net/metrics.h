// Per-rank, per-phase metrics collected by the cluster runtime.
//
// Every byte a rank sends or receives, every disk block it transfers, and
// every simulated CPU second it accrues is attributed to the phase label the
// algorithm set via Comm::SetPhase — which is how the benches report, e.g.,
// "data communicated in Merge–Partitions" for Figure 8.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace sncube {

struct PhaseStats {
  double cpu_s = 0;
  double disk_s = 0;
  double net_s = 0;  // this rank's share of collective time in the phase
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages = 0;      // non-empty destinations in collectives
  std::uint64_t blocks = 0;        // disk block transfers

  // Intra-rank parallel regions (src/exec): total CPU work executed inside
  // them vs. the critical-path (span) seconds actually charged to the BSP
  // clock. cpu_s already contains par_span_s; par_work_s - par_span_s is
  // the CPU time the rank's exec pool absorbed. Both zero when no kernel
  // used Comm::ChargeParallelCpu in the phase.
  double par_work_s = 0;
  double par_span_s = 0;

  PhaseStats& operator+=(const PhaseStats& o) {
    cpu_s += o.cpu_s;
    disk_s += o.disk_s;
    net_s += o.net_s;
    par_work_s += o.par_work_s;
    par_span_s += o.par_span_s;
    bytes_sent += o.bytes_sent;
    bytes_received += o.bytes_received;
    messages += o.messages;
    blocks += o.blocks;
    return *this;
  }
};

// All fields are run-scoped: a RankStats describes exactly one Run (the
// most recent successful one, via Cluster::stats(), or a doomed one inside
// FailureReport::partial_stats). Nothing accumulates across Runs — see the
// reset policy on Cluster::Run.
struct RankStats {
  std::map<std::string, PhaseStats> phases;
  // Final simulated local clock (seconds since Run began).
  double sim_time_s = 0;
  // Collectives this rank entered during the Run.
  std::uint64_t supersteps = 0;
  // True only inside Cluster::FailureReport::partial_stats, for ranks whose
  // program threw: their clocks and counters stop wherever the failure hit
  // and must not be read as if the rank finished.
  bool failed = false;

  PhaseStats Total() const {
    PhaseStats t;
    for (const auto& [name, ps] : phases) t += ps;
    return t;
  }
};

}  // namespace sncube
