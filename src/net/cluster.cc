#include "net/cluster.h"

#include <algorithm>
#include <exception>
#include <thread>

#include "common/status.h"
#include "net/internal.h"

namespace sncube {

Cluster::Cluster(int p, CostParams cost, DiskParams disk)
    : p_(p), cost_(cost), disk_params_(disk) {
  SNCUBE_CHECK_MSG(p >= 1, "cluster needs at least one processor");
  shared_ = std::make_unique<Shared>(p);
  stats_.resize(p);
}

Cluster::~Cluster() = default;

void Cluster::Run(const std::function<void(Comm&)>& program) {
  std::vector<std::unique_ptr<Comm>> comms;
  comms.reserve(p_);
  for (int r = 0; r < p_; ++r) {
    comms.emplace_back(new Comm(*this, r, p_, cost_, disk_params_));
    // Carry previous runs' accumulated stats into the endpoint so repeated
    // Run calls aggregate.
    comms.back()->stats_ = stats_[r];
  }

  std::vector<std::exception_ptr> errors(p_);
  {
    std::vector<std::jthread> threads;
    threads.reserve(p_);
    for (int r = 0; r < p_; ++r) {
      threads.emplace_back([&, r] {
        try {
          program(*comms[r]);
          // Fold disk blocks accrued after the last collective into the
          // final clock; they would otherwise vanish from sim_time.
          comms[r]->FoldDisk(comms[r]->stats_.phases[comms[r]->phase_]);
        } catch (...) {
          errors[r] = std::current_exception();
          // Withdraw from all future barriers so surviving ranks don't
          // deadlock; they may subsequently fail their own checks, which is
          // fine — the first error below is what callers see.
          shared_->barrier.arrive_and_drop();
        }
      });
    }
  }
  // Re-arm the barrier for the next Run (arrive_and_drop permanently lowers
  // the count on the old one).
  bool any_error = false;
  for (const auto& e : errors) any_error |= (e != nullptr);
  if (any_error) {
    shared_ = std::make_unique<Shared>(p_);
  }

  for (int r = 0; r < p_; ++r) {
    comms[r]->stats_.sim_time_s = comms[r]->local_time_;
    stats_[r] = comms[r]->stats_;
  }
  for (const auto& e : errors) {
    if (e != nullptr) std::rethrow_exception(e);
  }
}

double Cluster::SimTimeSeconds() const {
  double t = 0;
  for (const auto& rs : stats_) t = std::max(t, rs.sim_time_s);
  return t;
}

std::uint64_t Cluster::BytesSent(const std::string& prefix) const {
  std::uint64_t total = 0;
  for (const auto& rs : stats_) {
    for (const auto& [name, ps] : rs.phases) {
      if (name.rfind(prefix, 0) == 0) total += ps.bytes_sent;
    }
  }
  return total;
}

void Cluster::ResetStats() {
  for (auto& rs : stats_) rs = RankStats{};
}

}  // namespace sncube
