#include "net/cluster.h"

#include <algorithm>
#include <exception>
#include <string>
#include <thread>
#include <utility>

#include "common/status.h"
#include "exec/task_pool.h"
#include "net/internal.h"

namespace sncube {

Cluster::Cluster(int p, CostParams cost, DiskParams disk)
    : p_(p), cost_(cost), disk_params_(disk) {
  SNCUBE_CHECK_MSG(p >= 1, "cluster needs at least one processor");
  shared_ = std::make_unique<Shared>(p);
  stats_.resize(p);
}

Cluster::~Cluster() = default;

void Cluster::set_threads_per_rank(int t) {
  SNCUBE_CHECK_MSG(t >= 1, "threads_per_rank must be >= 1");
  threads_per_rank_ = t;
}

void Cluster::Run(const std::function<void(Comm&)>& program) {
  last_failure_.reset();
  std::vector<std::unique_ptr<Comm>> comms;
  comms.reserve(p_);
  for (int r = 0; r < p_; ++r) {
    // Every Run starts its Comm — and therefore all metrics, phase stats,
    // disk counters, and the simulated clock — from zero (run-scoped
    // policy; see cluster.h).
    comms.emplace_back(new Comm(*this, r, p_, cost_, disk_params_,
                                fault_plan_.empty() ? nullptr : &fault_plan_,
                                threads_per_rank_));
  }

  // One trace recorder per rank when tracing is on; each is confined to its
  // rank's thread below and only harvested after the join (the jthread join
  // is the happens-before edge that makes the harvest race-free).
  std::vector<std::unique_ptr<obs::TraceRecorder>> recorders;
  if (trace_sink_ != nullptr) {
    recorders.reserve(p_);
    for (int r = 0; r < p_; ++r) {
      recorders.emplace_back(
          std::make_unique<obs::TraceRecorder>(r, comms[r].get()));
    }
  }

  std::vector<std::exception_ptr> errors(p_);
  {
    std::vector<std::jthread> threads;
    threads.reserve(p_);
    for (int r = 0; r < p_; ++r) {
      threads.emplace_back([&, r] {
        obs::ThreadRecorderScope trace_scope(
            recorders.empty() ? nullptr : recorders[r].get());
        // The rank's intra-rank exec pool, installed thread-locally exactly
        // like the trace recorder; kernels reach it via exec::CurrentPool().
        // Declared before the scope so the scope unwinds first, and the
        // pool's workers are joined before the rank thread exits.
        std::unique_ptr<exec::TaskPool> pool;
        if (threads_per_rank_ > 1) {
          pool = std::make_unique<exec::TaskPool>(threads_per_rank_);
        }
        exec::PoolScope pool_scope(pool.get());
        try {
          program(*comms[r]);
          // Fold disk blocks accrued after the last collective into the
          // final clock; they would otherwise vanish from sim_time.
          comms[r]->FoldDisk(comms[r]->stats_.phases[comms[r]->phase_]);
        } catch (const ClusterAbortedError&) {
          // Secondary casualty: this rank was told about someone else's
          // failure. Record it, but never as the root cause.
          errors[r] = std::current_exception();
          shared_->barrier.arrive_and_drop();
        } catch (...) {
          errors[r] = std::current_exception();
          // Publish the root cause (first failure wins) BEFORE withdrawing,
          // so any rank the withdrawal releases sees it; then withdraw from
          // all future barriers so surviving ranks don't deadlock. They
          // observe the abort flag after their next barrier crossing and
          // unwind with a typed ClusterAbortedError.
          shared_->MarkFailure(r, comms[r]->supersteps_);
          shared_->barrier.arrive_and_drop();
        }
      });
    }
  }

  bool any_error = false;
  for (const auto& e : errors) any_error |= (e != nullptr);
  if (!any_error) {
    for (int r = 0; r < p_; ++r) {
      comms[r]->stats_.sim_time_s = comms[r]->local_time_;
      stats_[r] = comms[r]->stats_;
    }
    if (trace_sink_ != nullptr) {
      for (int r = 0; r < p_; ++r) trace_sink_->Absorb(recorders[r]->Finish());
    }
    return;
  }
  // Aborted Run: recorders are dropped without Absorb — trace output, like
  // stats(), only ever describes successful Runs.

  // Aborted Run: identify the root cause, preserve flagged partial metrics
  // for forensics, and re-arm the shared state (arrive_and_drop permanently
  // lowered the old barrier's count) so the cluster stays reusable. stats_
  // is deliberately left at its pre-Run value — failed attempts must not
  // pollute SimTimeSeconds()/BytesSent() of later successful Runs.
  FailureReport report;
  const FailureCause cause = shared_->Cause();
  report.failed_rank = cause.rank;
  report.superstep = cause.superstep;
  if (report.failed_rank < 0) {
    // Only ClusterAbortedError was thrown (a program rethrew one by hand);
    // fall back to the lowest-ranked thrower.
    for (int r = 0; r < p_; ++r) {
      if (errors[r] != nullptr) {
        report.failed_rank = r;
        break;
      }
    }
  }
  try {
    std::rethrow_exception(errors[report.failed_rank]);
  } catch (const std::exception& e) {
    report.message = e.what();
  } catch (...) {
    report.message = "unknown exception";
  }
  for (int r = 0; r < p_; ++r) {
    RankStats partial = comms[r]->stats_;
    partial.sim_time_s = comms[r]->local_time_;
    partial.failed = errors[r] != nullptr;
    report.partial_stats.push_back(std::move(partial));
  }
  shared_ = std::make_unique<Shared>(p_);

  const int failed_rank = report.failed_rank;
  const std::uint64_t superstep = report.superstep;
  std::string message = "rank " + std::to_string(failed_rank) +
                        " failed at superstep " + std::to_string(superstep) +
                        ": " + report.message;
  last_failure_ = std::move(report);
  throw ClusterAbortedError(std::move(message), failed_rank, superstep);
}

double Cluster::SimTimeSeconds() const {
  double t = 0;
  for (const auto& rs : stats_) t = std::max(t, rs.sim_time_s);
  return t;
}

std::uint64_t Cluster::BytesSent(const std::string& prefix) const {
  std::uint64_t total = 0;
  for (const auto& rs : stats_) {
    for (const auto& [name, ps] : rs.phases) {
      if (name.rfind(prefix, 0) == 0) total += ps.bytes_sent;
    }
  }
  return total;
}

void Cluster::ResetStats() {
  for (auto& rs : stats_) rs = RankStats{};
}

}  // namespace sncube
