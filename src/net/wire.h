// Tiny wire-format helpers for control messages (pivots, sizes, schedule
// trees). Bulk row data uses relation/serialize.h; these helpers are for the
// small structured payloads of broadcasts and gathers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/crc32c.h"
#include "common/status.h"
#include "relation/serialize.h"

namespace sncube {

// Appends a trivially-copyable value to the buffer.
template <typename T>
  requires std::is_trivially_copyable_v<T>
void WirePut(ByteBuffer& buf, const T& value) {
  const std::size_t off = buf.size();
  buf.resize(off + sizeof(T));
  std::memcpy(buf.data() + off, &value, sizeof(T));
}

// Appends a length-prefixed vector of trivially-copyable values.
template <typename T>
  requires std::is_trivially_copyable_v<T>
void WirePutVector(ByteBuffer& buf, const std::vector<T>& v) {
  WirePut(buf, static_cast<std::uint64_t>(v.size()));
  const std::size_t off = buf.size();
  buf.resize(off + v.size() * sizeof(T));
  if (!v.empty()) std::memcpy(buf.data() + off, v.data(), v.size() * sizeof(T));
}

// Sequential reader over a ByteBuffer. Buffers may come from untrusted or
// damaged sources (files, mutated test inputs), so every accessor is
// bounds-checked in overflow-safe form — `remaining()` comparisons, never
// `pos_ + n` arithmetic that could wrap — and throws SncubeCorruptionError
// on truncated or oversized payloads instead of reading out of bounds.
class WireReader {
 public:
  explicit WireReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T Get() {
    if (sizeof(T) > remaining()) {
      throw SncubeCorruptionError("wire underrun: truncated scalar");
    }
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> GetVector() {
    const auto n = Get<std::uint64_t>();
    // Divide instead of multiplying: n * sizeof(T) can wrap for garbage n.
    if (n > remaining() / sizeof(T)) {
      throw SncubeCorruptionError("wire underrun: vector length exceeds buffer");
    }
    std::vector<T> v(static_cast<std::size_t>(n));
    if (n > 0) std::memcpy(v.data(), bytes_.data() + pos_, n * sizeof(T));
    pos_ += static_cast<std::size_t>(n) * sizeof(T);
    return v;
  }

  // Returns a view of the next n raw bytes and advances past them.
  std::span<const std::byte> GetBytes(std::size_t n) {
    if (n > remaining()) {
      throw SncubeCorruptionError("wire underrun: truncated byte range");
    }
    const auto view = bytes_.subspan(pos_, n);
    pos_ += n;
    return view;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace sncube
