// Machine cost parameters for the simulated shared-nothing cluster.
//
// The paper's testbed: 16× 1.8 GHz Xeon nodes, 512 MB RAM, 7200 RPM IDE
// disks, interconnected by a 100 Mb Ethernet switch — a machine where
// "communication speed is extremely slow in comparison to computation
// speed" (Section 4). The presets below encode those ratios. The BSP clock
// (see cluster.h) turns *measured* per-rank operation counts into simulated
// seconds with these constants; only the constants are assumed, never the
// counts.
#pragma once

#include <cstddef>

namespace sncube {

struct CostParams {
  // The CPU/disk constants are calibrated against the paper's measured
  // absolutes: their sequential Pipesort (the Figure 5 baseline) processes
  // the 2M-row input into a 227M-row cube at ≈ 21 µs per output row on the
  // 1.8 GHz Xeon + LEDA stack, and the 16-node build lands under 6 minutes.
  // The per-record costs are far above raw instruction counts — that is
  // what LEDA-era tuple/hash handling cost — and getting them right is what
  // makes the compute:communication ratio, and hence every speedup shape,
  // match their testbed.
  //
  // CPU: seconds per record touched by a linear aggregation scan.
  double cpu_scan_record_s = 4.0e-6;
  // CPU: seconds per record per comparison level; a sort of n records costs
  // cpu_sort_record_s * n * log2(n).
  double cpu_sort_record_s = 5.0e-7;
  // CPU: seconds per record folded into the hash backend's concurrent
  // table (hash + probe + striped-lock traffic). Calibrated at 6× the
  // per-comparison sort constant — a LEDA-era hash insert costs about as
  // much as six comparison levels of a sort — which puts the sort/hash
  // crossover where "Global Hash Tables Strike Back!" finds it: hash wins
  // an edge u→v exactly when the cardinality collapse pays for the table
  // pass, 6·A_u + A_v·log2(A_v) < A_u·log2(A_u) (schedule/backend.h). On
  // the bench sweeps this lands sort ahead on unskewed/sparse shapes and
  // hash ahead on skewed/dense ones (bench/ablation_backend.cc).
  double cpu_hash_record_s = 3.0e-6;
  // Disk: seconds per block transfer (8 KiB at ~16 MB/s incl. seeks).
  double disk_block_s = 5.0e-4;
  // Network: per-collective latency term (switch + MPI software overhead).
  double net_latency_s = 2.0e-4;
  // Network: seconds per byte through one node's link. 100 Mbit Ethernet
  // ≈ 12.5 MB/s payload → 8e-8 s/B.
  double net_byte_s = 8.0e-8;
  // CPU: seconds per byte checksummed (CRC32C, slice-by-8). ~1 byte/cycle
  // on the 1.8 GHz Xeon → ~5.5e-10; rounded up for table-cache effects.
  // Charged wherever durable artifacts are sealed or verified, so integrity
  // overhead shows up honestly in the checkpoint phase tables.
  double cpu_crc_byte_s = 1.0e-9;
};

// The paper's cluster: slow 100 Mb interconnect.
inline CostParams FastEthernetBeowulf() { return CostParams{}; }

// The upgrade the paper anticipates ("1 Gigabyte Ethernet interconnect"):
// 10× link bandwidth, lower latency.
inline CostParams GigabitBeowulf() {
  CostParams p;
  p.net_byte_s = 8.0e-9;
  p.net_latency_s = 2.0e-4;
  return p;
}

}  // namespace sncube
