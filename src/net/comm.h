// Comm: one rank's endpoint into the simulated shared-nothing cluster.
//
// The interface mirrors the MPI subset the paper's implementation needs —
// AllToAllv is the h-relation (MPI_Alltoallv), plus Broadcast, Gather,
// AllGather, AllReduce and Barrier. All operations are collective and every
// rank of the cluster must call them in the same order (SPMD discipline,
// as with MPI). Data crosses ranks only as serialized bytes; ranks share no
// mutable structures, so the shared-nothing model is enforced by the type
// system, not by convention.
//
// Thread-safety contract: a Comm endpoint is confined to its rank's thread
// — nothing in this class is locked, and nothing needs to be. All
// cross-rank state lives in Cluster::Shared (net/internal.h), where the
// failure fields are mutex-guarded and machine-checked via the
// SNCUBE_GUARDED_BY annotations, and the exchange board follows the
// barrier-separated single-writer protocol documented there.
//
// Cost accounting (the BSP clock): between collectives a rank accrues local
// CPU seconds (ChargeScanRecords / ChargeSortRecords / ChargeCpu) and disk
// blocks (via its DiskModel). Each collective is a superstep boundary: the
// simulated clock advances to max over ranks of the local clocks, plus a
// latency + bytes/bandwidth term for the communication itself. Because the
// counts are measured from the real computation, simulated times inherit the
// genuine balance/imbalance of the algorithm.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/disk.h"
#include "net/fault.h"
#include "net/metrics.h"
#include "net/params.h"
#include "obs/trace.h"
#include "relation/serialize.h"

namespace sncube {

class Cluster;

// Comm doubles as the trace clock (obs::SimClockSource): spans recorded on
// a rank thread are stamped with that rank's simulated local time, so traces
// are deterministic and wall-clock-free like every other figure input.
class Comm : public obs::SimClockSource {
 public:
  int rank() const { return rank_; }
  int size() const { return size_; }
  const CostParams& cost() const { return cost_; }

  // ---- local cost accrual -------------------------------------------------
  // Attribute subsequent costs to this phase label (metrics reporting).
  void SetPhase(std::string phase);
  const std::string& phase() const { return phase_; }

  void ChargeCpu(double seconds);
  // A linear aggregation scan touching n records.
  void ChargeScanRecords(std::uint64_t n);
  // An in-memory sort of n records (n·log2(n) comparison cost).
  void ChargeSortRecords(std::uint64_t n);

  // Intra-rank exec threads the span-based cost model divides parallel-
  // region work across (>= 1; configured via Cluster::set_threads_per_rank).
  int threads_per_rank() const { return threads_per_rank_; }

  // Charges a parallel region that executed `work_seconds` of total CPU on
  // the rank's exec pool. The BSP clock advances by the critical path only:
  // the two-argument form takes a caller-computed span (e.g. exec::
  // GreedyMakespan over ragged chunk costs); the one-argument form uses the
  // Brent bound work/threads_per_rank, which is exact for the balanced
  // divide-and-conquer kernels in src/exec. Work and span both land in the
  // phase stats (PhaseStats::par_work_s / par_span_s) so breakdowns can
  // show parallel efficiency. With threads_per_rank == 1 this is exactly
  // ChargeCpu(work_seconds) — bit-identical serial accounting.
  void ChargeParallelCpu(double work_seconds);
  void ChargeParallelCpu(double work_seconds, double span_seconds);
  // Parallel-region variant of ChargeSortRecords: same n·log2(n) work,
  // charged at span = work / threads_per_rank.
  void ChargeSortRecordsParallel(std::uint64_t n);

  // This rank's local disk. Block transfers charged here are converted to
  // simulated seconds at the next collective.
  DiskModel& disk() { return disk_; }

  double LocalTime() const { return local_time_; }

  // The simulated clock as the tracer sees it: local time plus disk blocks
  // accrued since the last fold (so a span around pure disk work has a
  // nonzero duration even before the next collective charges it).
  double SimNowSeconds() const;

  // obs::SimClockSource.
  double TraceNowSeconds() const override { return SimNowSeconds(); }
  std::uint64_t TraceSuperstep() const override { return supersteps_; }

  // ---- collectives (superstep boundaries) ---------------------------------
  // The h-relation: send[k] goes to rank k; returns the p buffers received
  // (index = source rank). send.size() must equal size().
  std::vector<ByteBuffer> AllToAllv(std::vector<ByteBuffer> send);

  // Root's msg is delivered to every rank (root included).
  ByteBuffer Broadcast(int root, ByteBuffer msg);

  // Every rank contributes msg; root receives all p buffers (by source
  // rank), others receive an empty vector.
  std::vector<ByteBuffer> Gather(int root, ByteBuffer msg);

  // Every rank receives all p contributions.
  std::vector<ByteBuffer> AllGather(ByteBuffer msg);

  std::uint64_t AllReduceSum(std::uint64_t v);
  std::uint64_t AllReduceMax(std::uint64_t v);
  std::uint64_t AllReduceMin(std::uint64_t v);
  double AllReduceMax(double v);

  void Barrier();

  // Collectives this rank has entered in the current Run (the superstep
  // index the fault injector and abort reports count in).
  std::uint64_t supersteps() const { return supersteps_; }

  // Metrics accumulated so far for this rank in this Run (phase → stats).
  const RankStats& stats() const { return stats_; }

 private:
  friend class Cluster;
  Comm(Cluster& cluster, int rank, int size, const CostParams& cost,
       DiskParams disk_params, const FaultPlan* fault_plan,
       int threads_per_rank);

  // Converts disk blocks accrued since the last fold into simulated seconds
  // on the local clock, attributed to `ps`.
  void FoldDisk(PhaseStats& ps);
  // Entry gate of every collective: runs the fault injector's kill check,
  // counts the superstep, folds accrued disk blocks into the local clock,
  // publishes the local clock, and stages outgoing data. Returns a reference
  // to current phase stats.
  PhaseStats& SyncPrologue();
  // Advances every rank's clock identically given the published byte counts.
  void AdvanceClock(PhaseStats& ps, std::uint64_t bytes_out,
                    std::uint64_t bytes_in, std::uint64_t msgs,
                    double latency_multiplier);
  // Barrier crossing that propagates cluster aborts: throws a typed
  // ClusterAbortedError when some rank failed instead of letting this rank
  // run on into mismatched supersteps.
  void ArriveAndCheck();
  // Hands the just-completed collective's traffic to this thread's trace
  // recorder, if one is installed (one TLS load + branch otherwise).
  void TraceComm(std::uint64_t bytes_out, std::uint64_t bytes_in);

  Cluster& cluster_;
  int rank_;
  int size_;
  CostParams cost_;
  DiskModel disk_;
  std::unique_ptr<FaultInjector> fault_;  // null when no plan is active
  int threads_per_rank_ = 1;              // intra-rank exec pool width
  double slowdown_ = 1.0;                 // straggler multiplier (>= 1)
  std::uint64_t supersteps_ = 0;          // collectives entered this Run
  std::uint64_t charged_blocks_ = 0;  // blocks already folded into the clock
  double local_time_ = 0;
  std::string phase_ = "default";
  RankStats stats_;
};

}  // namespace sncube
