// Internal shared state of the cluster runtime. Included only by the net
// library's .cc files — not part of the public API.
#pragma once

#include <barrier>
#include <cstdint>
#include <vector>

#include "net/cluster.h"
#include "relation/serialize.h"

namespace sncube {

// State all ranks synchronize through. The exchange-board cell
// board[src][dst] carries one collective's payload from src to dst. Within a
// superstep every cell has exactly one writer (before barrier A) and one
// mover (after barrier B); between A and B all ranks may concurrently read
// sizes. The barriers provide the required happens-before edges, so no
// per-cell locking is needed.
struct Cluster::Shared {
  explicit Shared(int p) : barrier(p), board(p, std::vector<ByteBuffer>(p)),
                           published_times(p, 0.0) {}

  std::barrier<> barrier;
  std::vector<std::vector<ByteBuffer>> board;
  std::vector<double> published_times;
};

}  // namespace sncube
