// Internal shared state of the cluster runtime. Included only by the net
// library's .cc files — not part of the public API.
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/cluster.h"
#include "relation/serialize.h"

namespace sncube {

// State all ranks synchronize through. The exchange-board cell
// board[src][dst] carries one collective's payload from src to dst. Within a
// superstep every cell has exactly one writer (before barrier A) and one
// mover (after barrier B); between A and B all ranks may concurrently read
// sizes. The barriers provide the required happens-before edges, so no
// per-cell locking is needed.
//
// Failure protocol: a rank whose program throws records itself here (first
// failure wins) and withdraws from the barrier, which releases any ranks
// blocked in a collective; those ranks observe the abort flag right after
// every barrier crossing and throw ClusterAbortedError instead of running on
// into mismatched supersteps. A Shared that witnessed a failure is discarded
// and rebuilt by Cluster::Run, so the cluster stays reusable.
struct Cluster::Shared {
  explicit Shared(int p) : barrier(p), board(p, std::vector<ByteBuffer>(p)),
                           published_times(p, 0.0) {}

  std::barrier<> barrier;
  std::vector<std::vector<ByteBuffer>> board;
  std::vector<double> published_times;

  std::atomic<bool> aborted{false};
  std::mutex failure_mu;
  int failed_rank = -1;            // written once, before `aborted` is set
  std::uint64_t failed_superstep = 0;

  void MarkFailure(int rank, std::uint64_t superstep) {
    std::lock_guard<std::mutex> lock(failure_mu);
    if (failed_rank != -1) return;  // first failure is the root cause
    failed_rank = rank;
    failed_superstep = superstep;
    aborted.store(true, std::memory_order_release);
  }

  // Called by surviving ranks after every barrier crossing. The acquire load
  // pairs with MarkFailure's release store, so the rank/superstep fields —
  // written exactly once, before the store — are stable when read here.
  void ThrowIfAborted() const {
    if (!aborted.load(std::memory_order_acquire)) return;
    throw ClusterAbortedError(
        "cluster aborted: rank " + std::to_string(failed_rank) +
            " failed at superstep " + std::to_string(failed_superstep),
        failed_rank, failed_superstep);
  }
};

}  // namespace sncube
