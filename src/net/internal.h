// Internal shared state of the cluster runtime. Included only by the net
// library's .cc files — not part of the public API.
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/cluster.h"
#include "relation/serialize.h"

namespace sncube {

// Root cause of an aborted Run, as recorded by Shared::MarkFailure.
struct FailureCause {
  int rank = -1;
  std::uint64_t superstep = 0;
};

// State all ranks synchronize through. The exchange-board cell
// board[src][dst] carries one collective's payload from src to dst. Within a
// superstep every cell has exactly one writer (before barrier A) and one
// mover (after barrier B); between A and B all ranks may concurrently read
// sizes. The barriers provide the required happens-before edges, so no
// per-cell locking is needed.
//
// Failure protocol: a rank whose program throws records itself here (first
// failure wins) and withdraws from the barrier, which releases any ranks
// blocked in a collective; those ranks observe the abort flag right after
// every barrier crossing and throw ClusterAbortedError instead of running on
// into mismatched supersteps. A Shared that witnessed a failure is discarded
// and rebuilt by Cluster::Run, so the cluster stays reusable.
struct Cluster::Shared {
  explicit Shared(int p) : barrier(p), board(p, std::vector<ByteBuffer>(p)),
                           published_times(p, 0.0) {}

  std::barrier<> barrier;
  // board and published_times carry no lock: their single-writer /
  // barrier-separated access pattern (see the protocol above) is exactly
  // the superstep structure, and the std::barrier crossings provide the
  // happens-before edges. Thread-safety analysis cannot model barrier
  // phases, so these two stay convention-checked (and TSan-checked in CI);
  // everything below is machine-checked.
  std::vector<std::vector<ByteBuffer>> board;
  std::vector<double> published_times;

  std::atomic<bool> aborted{false};  // fast-path flag; fields below hold truth
  mutable Mutex failure_mu;
  int failed_rank SNCUBE_GUARDED_BY(failure_mu) = -1;
  std::uint64_t failed_superstep SNCUBE_GUARDED_BY(failure_mu) = 0;

  void MarkFailure(int rank, std::uint64_t superstep)
      SNCUBE_EXCLUDES(failure_mu) {
    MutexLock lock(failure_mu);
    if (failed_rank != -1) return;  // first failure is the root cause
    failed_rank = rank;
    failed_superstep = superstep;
    aborted.store(true, std::memory_order_release);
  }

  // Reads the root cause for the abort report. Taking failure_mu (rather
  // than relying on "written once before the release store" reasoning)
  // keeps the fields formally guarded by one capability the analysis can
  // check; the lock is uncontended by construction once `aborted` is set.
  FailureCause Cause() const SNCUBE_EXCLUDES(failure_mu) {
    MutexLock lock(failure_mu);
    return FailureCause{failed_rank, failed_superstep};
  }

  // Called by surviving ranks after every barrier crossing. The acquire
  // load pairs with MarkFailure's release store and keeps the no-failure
  // hot path lock-free; the failure path re-reads the cause under the lock.
  void ThrowIfAborted() const {
    if (!aborted.load(std::memory_order_acquire)) return;
    const FailureCause cause = Cause();
    throw ClusterAbortedError(
        "cluster aborted: rank " + std::to_string(cause.rank) +
            " failed at superstep " + std::to_string(cause.superstep),
        cause.rank, cause.superstep);
  }
};

}  // namespace sncube
