// Deterministic fault injection for the simulated shared-nothing cluster.
//
// A FaultPlan describes, ahead of a Run, every fault the cluster should
// experience: ranks killed on entry to their k-th collective, straggler
// ranks whose CPU and disk work is stretched by a multiplier (visible in the
// BSP sim clock), and per-rank transient disk error rates injected into
// DiskModel charge sites. All randomness derives from the plan seed and the
// rank, so a given (plan, program) pair reproduces the identical failure
// bit-for-bit — which is what lets tests assert that a killed-and-restarted
// build equals a fault-free one.
//
// Plans are parseable from a compact spec string (CLI `--fault-plan`):
//
//   kill:<rank>@<superstep>   kill rank on entry to its superstep-th
//                             collective of the Run (0-based)
//   slow:<rank>x<factor>      multiply rank's CPU+disk simulated time
//   diskerr:<rank>:<rate>     each disk op fails transiently w.p. rate
//   seed:<n>                  RNG seed for the disk-error draws
//
// joined with ';', e.g. "kill:1@5;slow:2x3.0;diskerr:0:0.01;seed:7".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "io/disk.h"

namespace sncube {

struct FaultPlan {
  struct Kill {
    int rank = 0;
    std::uint64_t at_superstep = 0;  // collective index within the Run
  };
  struct Straggler {
    int rank = 0;
    double factor = 1.0;  // >= 1: multiplies CPU and disk simulated seconds
  };
  struct DiskErrors {
    int rank = 0;
    double rate = 0.0;  // per-operation transient failure probability
  };

  std::vector<Kill> kills;
  std::vector<Straggler> stragglers;
  std::vector<DiskErrors> disk_errors;
  std::uint64_t seed = 0;

  bool empty() const {
    return kills.empty() && stragglers.empty() && disk_errors.empty();
  }

  // Parses the spec grammar above; throws SncubeError on malformed input.
  static FaultPlan Parse(const std::string& spec);
};

// One rank's view of the plan, constructed per Run. Consulted by Comm at
// every collective entry and, via the DiskFaultHook interface, by the rank's
// DiskModel on every charge. Thread-safety: confined to its rank's thread,
// like the Comm that owns it — the mutable Rng state needs no lock because
// no other rank ever touches this injector.
class FaultInjector : public DiskFaultHook {
 public:
  FaultInjector(const FaultPlan& plan, int rank);

  // Throws InjectedFaultError when the plan kills this rank at `superstep`.
  void OnCollective(std::uint64_t superstep);

  // Straggler multiplier for this rank (1.0 when not a straggler).
  double slowdown() const { return slowdown_; }

  // DiskFaultHook: deterministic per-op transient failure decision.
  bool NextOpFails(bool is_write) override;

 private:
  int rank_;
  bool has_kill_ = false;
  std::uint64_t kill_at_ = 0;
  double slowdown_ = 1.0;
  double disk_error_rate_ = 0.0;
  Rng rng_;
};

}  // namespace sncube
