// Deterministic fault injection for the simulated shared-nothing cluster.
//
// A FaultPlan describes, ahead of a Run, every fault the cluster should
// experience: ranks killed on entry to their k-th collective, straggler
// ranks whose CPU and disk work is stretched by a multiplier (visible in the
// BSP sim clock), and per-rank transient disk error rates injected into
// DiskModel charge sites. All randomness derives from the plan seed and the
// rank, so a given (plan, program) pair reproduces the identical failure
// bit-for-bit — which is what lets tests assert that a killed-and-restarted
// build equals a fault-free one.
//
// Plans are parseable from a compact spec string (CLI `--fault-plan`):
//
//   kill:<rank>@<superstep>   kill rank on entry to its superstep-th
//                             collective of the Run (0-based)
//   slow:<rank>x<factor>      multiply rank's CPU+disk simulated time
//   diskerr:<rank>:<rate>     each disk op fails transiently w.p. rate
//   bitflip:<rank>:<rate>     each persisted frame has one random bit
//                             flipped w.p. rate (silent corruption)
//   tornwrite:<rank>:<rate>   each persisted frame is truncated at a
//                             random offset w.p. rate (torn write)
//   seed:<n>                  RNG seed for all probabilistic draws
//
// Serve-tier clauses target the sharded serving layer instead of build
// ranks; their windows are half-open intervals of ROUTER REQUEST SEQUENCE
// NUMBERS (0-based, assigned at Router::Execute entry), so a plan replays
// identically regardless of wall-clock speed:
//
//   shardkill:<shard>:<from>[-<until>]
//                             shard is down for requests [from, until);
//                             omitted <until> means "for the rest of the
//                             run". When the window closes the shard comes
//                             back with COLD CACHES (restart semantics).
//   shardslow:<shard>:<from>[-<until>]:<factor>
//                             shard's service time is stretched by factor
//                             (>= 1) for requests in the window
//
// Refresh clauses target the online-refresh coordinator (src/refresh). The
// coordinator acts as rank 0 of its own injector, so bitflip/tornwrite
// clauses for rank 0 corrupt snapshot slice/manifest writes exactly like
// checkpoint frames:
//
//   refreshkill:<phase>       the refresh coordinator crashes (throws
//                             InjectedFaultError) on entry to two-phase-swap
//                             phase <phase> — numbering in refresh/refresh.h
//
// joined with ';', e.g. "kill:1@5;slow:2x3.0;diskerr:0:0.01;seed:7" or
// "shardkill:1:40-90;shardslow:0:0-200:8;seed:3" or
// "refreshkill:3;tornwrite:0:1;seed:5".
// Parse rejects duplicate clauses for the same (kind, rank/shard), rates
// outside [0,1], slow factors below 1, empty windows, and non-numeric
// values — each with a typed SncubeError naming the offending clause.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "io/disk.h"

namespace sncube {

struct FaultPlan {
  // "Window never closes" sentinel for serve-tier clause windows.
  static constexpr std::uint64_t kNoEnd = ~0ULL;

  struct Kill {
    int rank = 0;
    std::uint64_t at_superstep = 0;  // collective index within the Run
  };
  struct Straggler {
    int rank = 0;
    double factor = 1.0;  // >= 1: multiplies CPU and disk simulated seconds
  };
  struct DiskErrors {
    int rank = 0;
    double rate = 0.0;  // per-operation transient failure probability
  };
  struct BitFlips {
    int rank = 0;
    double rate = 0.0;  // per-written-frame single-bit-flip probability
  };
  struct TornWrites {
    int rank = 0;
    double rate = 0.0;  // per-written-frame truncation probability
  };
  // Serve tier: shard is unreachable for router request sequence numbers in
  // [from, until). kNoEnd means the shard never comes back.
  struct ShardKill {
    int shard = 0;
    std::uint64_t from = 0;
    std::uint64_t until = kNoEnd;
  };
  // Serve tier: shard's service time is multiplied by factor (>= 1) for
  // router request sequence numbers in [from, until).
  struct ShardSlow {
    int shard = 0;
    std::uint64_t from = 0;
    std::uint64_t until = kNoEnd;
    double factor = 1.0;
  };
  // Refresh tier: the coordinator crashes on entry to two-phase-swap phase
  // `phase` (RefreshCoordinator's numbering, refresh/refresh.h). Modeled as
  // a thrown InjectedFaultError; recovery is SnapshotStore::Recover.
  struct RefreshKill {
    int phase = 0;
  };

  std::vector<Kill> kills;
  std::vector<Straggler> stragglers;
  std::vector<DiskErrors> disk_errors;
  std::vector<BitFlips> bit_flips;
  std::vector<TornWrites> torn_writes;
  std::vector<ShardKill> shard_kills;
  std::vector<ShardSlow> shard_slows;
  std::vector<RefreshKill> refresh_kills;
  std::uint64_t seed = 0;

  bool empty() const {
    return kills.empty() && stragglers.empty() && disk_errors.empty() &&
           bit_flips.empty() && torn_writes.empty() && shard_kills.empty() &&
           shard_slows.empty() && refresh_kills.empty();
  }

  // Parses the spec grammar above; throws SncubeError on malformed input.
  static FaultPlan Parse(const std::string& spec);

  // Canonical spec string that Parse round-trips: clauses in declaration
  // order, seed last. This is what the chaos explorer prints for a shrunk
  // reproducing plan.
  std::string ToSpec() const;
};

// One rank's view of the plan, constructed per Run. Consulted by Comm at
// every collective entry and, via the DiskFaultHook interface, by the rank's
// DiskModel on every charge. Thread-safety: confined to its rank's thread,
// like the Comm that owns it — the mutable Rng state needs no lock because
// no other rank ever touches this injector.
class FaultInjector : public DiskFaultHook {
 public:
  FaultInjector(const FaultPlan& plan, int rank);

  // Throws InjectedFaultError when the plan kills this rank at `superstep`.
  void OnCollective(std::uint64_t superstep);

  // Throws InjectedFaultError when the plan kills the refresh coordinator on
  // entry to two-phase-swap phase `phase`. Refresh kills are not rank-scoped:
  // every injector sees them, and the coordinator runs as rank 0.
  void OnRefreshPhase(int phase);

  // Straggler multiplier for this rank (1.0 when not a straggler).
  double slowdown() const { return slowdown_; }

  // DiskFaultHook: deterministic per-op transient failure decision.
  bool NextOpFails(bool is_write) override;

  // DiskFaultHook: deterministic silent-corruption decision for a persisted
  // frame of `bytes` bytes. Draws from a stream separate from the transient
  // error one, so enabling bitflip/tornwrite never perturbs which disk ops
  // a given seed makes fail.
  WriteFault NextWriteFault(std::size_t bytes) override;

 private:
  int rank_;
  bool has_kill_ = false;
  std::uint64_t kill_at_ = 0;
  double slowdown_ = 1.0;
  double disk_error_rate_ = 0.0;
  double bit_flip_rate_ = 0.0;
  double torn_write_rate_ = 0.0;
  std::vector<int> refresh_kill_phases_;  // sorted, deduplicated
  Rng rng_;
  Rng write_rng_;
};

}  // namespace sncube
