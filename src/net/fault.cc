#include "net/fault.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <set>
#include <sstream>
#include <utility>

#include "common/status.h"

namespace sncube {
namespace {

[[noreturn]] void ParseFail(const std::string& clause, const char* why) {
  throw SncubeError("bad fault plan clause \"" + clause + "\": " + why);
}

// Parses "<int><sep><number>" as used by every clause body.
void SplitRankValue(const std::string& clause, const std::string& body,
                    char sep, int* rank, std::string* value) {
  const auto at = body.find(sep);
  if (at == std::string::npos || at == 0 || at + 1 >= body.size()) {
    ParseFail(clause, "expected <rank><sep><value>");
  }
  char* end = nullptr;
  const long r = std::strtol(body.c_str(), &end, 10);
  if (end != body.c_str() + at || r < 0) ParseFail(clause, "bad rank");
  *rank = static_cast<int>(r);
  *value = body.substr(at + 1);
}

// Full-string strtod with NaN/garbage rejection. "0.5junk" and "nan" are
// both malformed, not silently truncated or silently in-range.
double ParseNumber(const std::string& clause, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size() || value.empty()) {
    ParseFail(clause, "bad number");
  }
  if (!(v == v)) ParseFail(clause, "bad number");  // NaN
  return v;
}

double ParseRate(const std::string& clause, const std::string& value) {
  const double rate = ParseNumber(clause, value);
  if (!(rate >= 0.0 && rate <= 1.0)) ParseFail(clause, "rate not in [0,1]");
  return rate;
}

std::uint64_t ParseU64(const std::string& clause, const std::string& value) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(value.c_str(), &end, 10);
  if (end != value.c_str() + value.size() || value.empty()) {
    ParseFail(clause, "bad number");
  }
  return v;
}

// Parses "<from>[-<until>]" — a half-open request-sequence window. An
// omitted <until> means FaultPlan::kNoEnd ("for the rest of the run").
void ParseWindow(const std::string& clause, const std::string& text,
                 std::uint64_t* from, std::uint64_t* until) {
  const auto dash = text.find('-');
  if (dash == std::string::npos) {
    *from = ParseU64(clause, text);
    *until = FaultPlan::kNoEnd;
    return;
  }
  *from = ParseU64(clause, text.substr(0, dash));
  *until = ParseU64(clause, text.substr(dash + 1));
  if (*until <= *from) ParseFail(clause, "empty window");
}

// One clause per (kind, rank): a second "slow:1x…" is far more likely a typo
// than an intent to compose multipliers, so it is rejected outright.
void RejectDuplicate(const std::string& clause, std::set<std::pair<std::string, int>>& seen,
                     const std::string& kind, int rank) {
  if (!seen.insert({kind, rank}).second) {
    ParseFail(clause, "duplicate clause for this rank");
  }
}

}  // namespace

FaultPlan FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  std::set<std::pair<std::string, int>> seen;
  bool seen_seed = false;
  std::stringstream ss(spec);
  std::string clause;
  while (std::getline(ss, clause, ';')) {
    if (clause.empty()) continue;
    const auto colon = clause.find(':');
    if (colon == std::string::npos) ParseFail(clause, "missing ':'");
    const std::string kind = clause.substr(0, colon);
    const std::string body = clause.substr(colon + 1);
    if (kind == "kill") {
      Kill k;
      std::string value;
      SplitRankValue(clause, body, '@', &k.rank, &value);
      RejectDuplicate(clause, seen, kind, k.rank);
      char* end = nullptr;
      k.at_superstep = std::strtoull(value.c_str(), &end, 10);
      if (end != value.c_str() + value.size()) ParseFail(clause, "bad number");
      plan.kills.push_back(k);
    } else if (kind == "slow") {
      Straggler s;
      std::string value;
      SplitRankValue(clause, body, 'x', &s.rank, &value);
      RejectDuplicate(clause, seen, kind, s.rank);
      s.factor = ParseNumber(clause, value);
      if (!(s.factor >= 1.0)) ParseFail(clause, "factor must be >= 1");
      plan.stragglers.push_back(s);
    } else if (kind == "diskerr") {
      DiskErrors de;
      std::string value;
      SplitRankValue(clause, body, ':', &de.rank, &value);
      RejectDuplicate(clause, seen, kind, de.rank);
      de.rate = ParseRate(clause, value);
      plan.disk_errors.push_back(de);
    } else if (kind == "bitflip") {
      BitFlips bf;
      std::string value;
      SplitRankValue(clause, body, ':', &bf.rank, &value);
      RejectDuplicate(clause, seen, kind, bf.rank);
      bf.rate = ParseRate(clause, value);
      plan.bit_flips.push_back(bf);
    } else if (kind == "tornwrite") {
      TornWrites tw;
      std::string value;
      SplitRankValue(clause, body, ':', &tw.rank, &value);
      RejectDuplicate(clause, seen, kind, tw.rank);
      tw.rate = ParseRate(clause, value);
      plan.torn_writes.push_back(tw);
    } else if (kind == "shardkill") {
      ShardKill sk;
      std::string value;
      SplitRankValue(clause, body, ':', &sk.shard, &value);
      RejectDuplicate(clause, seen, kind, sk.shard);
      ParseWindow(clause, value, &sk.from, &sk.until);
      plan.shard_kills.push_back(sk);
    } else if (kind == "shardslow") {
      ShardSlow sl;
      std::string value;
      SplitRankValue(clause, body, ':', &sl.shard, &value);
      RejectDuplicate(clause, seen, kind, sl.shard);
      const auto last_colon = value.rfind(':');
      if (last_colon == std::string::npos || last_colon == 0 ||
          last_colon + 1 >= value.size()) {
        ParseFail(clause, "expected <shard>:<window>:<factor>");
      }
      ParseWindow(clause, value.substr(0, last_colon), &sl.from, &sl.until);
      sl.factor = ParseNumber(clause, value.substr(last_colon + 1));
      if (!(sl.factor >= 1.0)) ParseFail(clause, "factor must be >= 1");
      plan.shard_slows.push_back(sl);
    } else if (kind == "refreshkill") {
      RefreshKill rk;
      char* end = nullptr;
      const long phase = std::strtol(body.c_str(), &end, 10);
      if (end != body.c_str() + body.size() || body.empty() || phase < 0) {
        ParseFail(clause, "bad phase");
      }
      rk.phase = static_cast<int>(phase);
      RejectDuplicate(clause, seen, kind, rk.phase);
      plan.refresh_kills.push_back(rk);
    } else if (kind == "seed") {
      if (seen_seed) ParseFail(clause, "duplicate seed clause");
      seen_seed = true;
      char* end = nullptr;
      plan.seed = std::strtoull(body.c_str(), &end, 10);
      if (end != body.c_str() + body.size() || body.empty()) {
        ParseFail(clause, "bad number");
      }
    } else {
      ParseFail(clause, "unknown clause kind");
    }
  }
  return plan;
}

std::string FaultPlan::ToSpec() const {
  std::ostringstream out;
  out.precision(12);
  const char* sep = "";
  for (const auto& k : kills) {
    out << sep << "kill:" << k.rank << "@" << k.at_superstep;
    sep = ";";
  }
  for (const auto& s : stragglers) {
    out << sep << "slow:" << s.rank << "x" << s.factor;
    sep = ";";
  }
  for (const auto& de : disk_errors) {
    out << sep << "diskerr:" << de.rank << ":" << de.rate;
    sep = ";";
  }
  for (const auto& bf : bit_flips) {
    out << sep << "bitflip:" << bf.rank << ":" << bf.rate;
    sep = ";";
  }
  for (const auto& tw : torn_writes) {
    out << sep << "tornwrite:" << tw.rank << ":" << tw.rate;
    sep = ";";
  }
  for (const auto& sk : shard_kills) {
    out << sep << "shardkill:" << sk.shard << ":" << sk.from;
    if (sk.until != kNoEnd) out << "-" << sk.until;
    sep = ";";
  }
  for (const auto& sl : shard_slows) {
    out << sep << "shardslow:" << sl.shard << ":" << sl.from;
    if (sl.until != kNoEnd) out << "-" << sl.until;
    out << ":" << sl.factor;
    sep = ";";
  }
  for (const auto& rk : refresh_kills) {
    out << sep << "refreshkill:" << rk.phase;
    sep = ";";
  }
  out << sep << "seed:" << seed;
  return out.str();
}

FaultInjector::FaultInjector(const FaultPlan& plan, int rank)
    : rank_(rank),
      // Independent deterministic stream per rank; the 64-bit odd multiplier
      // spreads adjacent ranks across seed space.
      rng_(plan.seed * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(rank) * 0xBF58476D1CE4E5B9ULL + 1),
      // The corruption stream is distinct (+2 tweak) so that adding bitflip
      // or tornwrite clauses to a plan never changes which ops the transient
      // diskerr stream makes fail under the same seed.
      write_rng_(plan.seed * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(rank) * 0xBF58476D1CE4E5B9ULL + 2) {
  for (const auto& k : plan.kills) {
    if (k.rank != rank) continue;
    // Earliest kill wins when several target the same rank.
    if (!has_kill_ || k.at_superstep < kill_at_) kill_at_ = k.at_superstep;
    has_kill_ = true;
  }
  for (const auto& s : plan.stragglers) {
    if (s.rank == rank) slowdown_ *= s.factor;
  }
  for (const auto& de : plan.disk_errors) {
    if (de.rank == rank) disk_error_rate_ = de.rate;
  }
  for (const auto& bf : plan.bit_flips) {
    if (bf.rank == rank) bit_flip_rate_ = bf.rate;
  }
  for (const auto& tw : plan.torn_writes) {
    if (tw.rank == rank) torn_write_rate_ = tw.rate;
  }
  for (const auto& rk : plan.refresh_kills) {
    refresh_kill_phases_.push_back(rk.phase);
  }
  std::sort(refresh_kill_phases_.begin(), refresh_kill_phases_.end());
}

void FaultInjector::OnCollective(std::uint64_t superstep) {
  if (has_kill_ && superstep == kill_at_) {
    throw InjectedFaultError("fault injection: rank " + std::to_string(rank_) +
                             " killed at superstep " +
                             std::to_string(superstep));
  }
}

void FaultInjector::OnRefreshPhase(int phase) {
  if (std::binary_search(refresh_kill_phases_.begin(),
                         refresh_kill_phases_.end(), phase)) {
    throw InjectedFaultError(
        "fault injection: refresh coordinator killed at swap phase " +
        std::to_string(phase));
  }
}

bool FaultInjector::NextOpFails(bool /*is_write*/) {
  if (disk_error_rate_ <= 0.0) return false;
  return rng_.NextDouble() < disk_error_rate_;
}

WriteFault FaultInjector::NextWriteFault(std::size_t bytes) {
  WriteFault fault;
  if (bytes == 0) return fault;
  // Draws are consumed only for enabled fault kinds, so a plan without
  // corruption clauses leaves the stream untouched.
  if (bit_flip_rate_ > 0.0 && write_rng_.NextDouble() < bit_flip_rate_) {
    fault.kind = WriteFault::Kind::kBitFlip;
    fault.offset = write_rng_.Below(static_cast<std::uint64_t>(bytes) * 8);
    return fault;
  }
  if (torn_write_rate_ > 0.0 && write_rng_.NextDouble() < torn_write_rate_) {
    fault.kind = WriteFault::Kind::kTornWrite;
    // Strictly shorter than the intended write: at least one byte is lost.
    fault.offset = write_rng_.Below(static_cast<std::uint64_t>(bytes));
    return fault;
  }
  return fault;
}

}  // namespace sncube
