#include "net/fault.h"

#include <charconv>
#include <cstdlib>
#include <sstream>

#include "common/status.h"

namespace sncube {
namespace {

[[noreturn]] void ParseFail(const std::string& clause, const char* why) {
  throw SncubeError("bad fault plan clause \"" + clause + "\": " + why);
}

// Parses "<int><sep><number>" as used by every clause body.
void SplitRankValue(const std::string& clause, const std::string& body,
                    char sep, int* rank, std::string* value) {
  const auto at = body.find(sep);
  if (at == std::string::npos || at == 0 || at + 1 >= body.size()) {
    ParseFail(clause, "expected <rank><sep><value>");
  }
  char* end = nullptr;
  const long r = std::strtol(body.c_str(), &end, 10);
  if (end != body.c_str() + at || r < 0) ParseFail(clause, "bad rank");
  *rank = static_cast<int>(r);
  *value = body.substr(at + 1);
}

}  // namespace

FaultPlan FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  std::stringstream ss(spec);
  std::string clause;
  while (std::getline(ss, clause, ';')) {
    if (clause.empty()) continue;
    const auto colon = clause.find(':');
    if (colon == std::string::npos) ParseFail(clause, "missing ':'");
    const std::string kind = clause.substr(0, colon);
    const std::string body = clause.substr(colon + 1);
    if (kind == "kill") {
      Kill k;
      std::string value;
      SplitRankValue(clause, body, '@', &k.rank, &value);
      k.at_superstep = std::strtoull(value.c_str(), nullptr, 10);
      plan.kills.push_back(k);
    } else if (kind == "slow") {
      Straggler s;
      std::string value;
      SplitRankValue(clause, body, 'x', &s.rank, &value);
      s.factor = std::strtod(value.c_str(), nullptr);
      if (s.factor < 1.0) ParseFail(clause, "factor must be >= 1");
      plan.stragglers.push_back(s);
    } else if (kind == "diskerr") {
      DiskErrors de;
      std::string value;
      SplitRankValue(clause, body, ':', &de.rank, &value);
      de.rate = std::strtod(value.c_str(), nullptr);
      if (de.rate < 0.0 || de.rate > 1.0) ParseFail(clause, "rate not in [0,1]");
      plan.disk_errors.push_back(de);
    } else if (kind == "seed") {
      plan.seed = std::strtoull(body.c_str(), nullptr, 10);
    } else {
      ParseFail(clause, "unknown clause kind");
    }
  }
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan, int rank)
    : rank_(rank),
      // Independent deterministic stream per rank; the 64-bit odd multiplier
      // spreads adjacent ranks across seed space.
      rng_(plan.seed * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(rank) * 0xBF58476D1CE4E5B9ULL + 1) {
  for (const auto& k : plan.kills) {
    if (k.rank != rank) continue;
    // Earliest kill wins when several target the same rank.
    if (!has_kill_ || k.at_superstep < kill_at_) kill_at_ = k.at_superstep;
    has_kill_ = true;
  }
  for (const auto& s : plan.stragglers) {
    if (s.rank == rank) slowdown_ *= s.factor;
  }
  for (const auto& de : plan.disk_errors) {
    if (de.rank == rank) disk_error_rate_ = de.rate;
  }
}

void FaultInjector::OnCollective(std::uint64_t superstep) {
  if (has_kill_ && superstep == kill_at_) {
    throw InjectedFaultError("fault injection: rank " + std::to_string(rank_) +
                             " killed at superstep " +
                             std::to_string(superstep));
  }
}

bool FaultInjector::NextOpFails(bool /*is_write*/) {
  if (disk_error_rate_ <= 0.0) return false;
  return rng_.NextDouble() < disk_error_rate_;
}

}  // namespace sncube
