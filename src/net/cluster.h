// Cluster: the simulated shared-nothing multiprocessor (Figure 2a of the
// paper — p processors, each with private memory and local disk, connected
// by a switch).
//
// Each virtual processor runs the supplied SPMD program on its own thread
// with a private Comm endpoint. After Run returns, per-rank metrics and the
// simulated parallel wall-clock time (the BSP clock maximum) are available.
// On a real multicore this runtime is genuinely parallel; on one core the
// threads interleave but the simulated clock — which drives every figure —
// is unaffected because it is computed from operation counts, not from host
// wall time.
#pragma once

#include <barrier>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "io/disk.h"
#include "net/comm.h"
#include "net/metrics.h"
#include "net/params.h"

namespace sncube {

class Cluster {
 public:
  explicit Cluster(int p, CostParams cost = FastEthernetBeowulf(),
                   DiskParams disk = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int size() const { return p_; }
  const CostParams& cost() const { return cost_; }

  // Runs `program` on every rank (SPMD). Blocks until all ranks finish.
  // The first rank exception (by rank order) is rethrown. May be called
  // repeatedly; metrics accumulate across calls until ResetStats().
  void Run(const std::function<void(Comm&)>& program);

  // Valid after Run. stats()[r] are rank r's accumulated metrics.
  const std::vector<RankStats>& stats() const { return stats_; }

  // Simulated parallel wall-clock time: max over ranks of the final BSP
  // clock (seconds).
  double SimTimeSeconds() const;

  // Sum over ranks of bytes sent in phases whose label starts with `prefix`
  // (empty prefix = all phases).
  std::uint64_t BytesSent(const std::string& prefix = "") const;

  void ResetStats();

 private:
  friend class Comm;
  struct Shared;

  int p_;
  CostParams cost_;
  DiskParams disk_params_;
  std::unique_ptr<Shared> shared_;
  std::vector<RankStats> stats_;
};

}  // namespace sncube
