// Cluster: the simulated shared-nothing multiprocessor (Figure 2a of the
// paper — p processors, each with private memory and local disk, connected
// by a switch).
//
// Each virtual processor runs the supplied SPMD program on its own thread
// with a private Comm endpoint. After Run returns, per-rank metrics and the
// simulated parallel wall-clock time (the BSP clock maximum) are available.
// On a real multicore this runtime is genuinely parallel; on one core the
// threads interleave but the simulated clock — which drives every figure —
// is unaffected because it is computed from operation counts, not from host
// wall time.
//
// Thread-safety contract: the Cluster object itself is externally
// synchronized — Run, the accessors, and set_fault_plan are called from one
// driver thread (Run blocks, so overlapping calls cannot happen by
// accident). The rank threads Run spawns never touch the Cluster's own
// fields; they share only Cluster::Shared (net/internal.h), whose failure
// state is mutex-guarded and thread-safety-annotated.
#pragma once

#include <barrier>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "io/disk.h"
#include "net/comm.h"
#include "net/fault.h"
#include "net/metrics.h"
#include "net/params.h"

namespace sncube {

// Forensics of an aborted Run: which rank's failure caused the abort, at
// which superstep, and the partial per-rank metrics of the doomed Run.
// Failed ranks are flagged (RankStats::failed); none of these numbers are
// folded into Cluster::stats() or SimTimeSeconds(), which only ever reflect
// completed Runs.
struct FailureReport {
  int failed_rank = -1;
  std::uint64_t superstep = 0;
  std::string message;  // root-cause exception text
  std::vector<RankStats> partial_stats;
};

class Cluster {
 public:
  explicit Cluster(int p, CostParams cost = FastEthernetBeowulf(),
                   DiskParams disk = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int size() const { return p_; }
  const CostParams& cost() const { return cost_; }

  // Runs `program` on every rank (SPMD). Blocks until all ranks finish.
  //
  // If any rank throws, every surviving rank blocked in (or reaching) a
  // collective receives a ClusterAbortedError, the partial metrics are
  // preserved in last_failure(), and Run rethrows a ClusterAbortedError
  // naming the root-cause rank and superstep. The cluster remains fully
  // usable: a subsequent Run starts from a fresh barrier and exchange board,
  // and its metrics are unpolluted by the failed attempt.
  //
  // May be called repeatedly; metrics of successful Runs accumulate until
  // ResetStats().
  void Run(const std::function<void(Comm&)>& program);

  // Faults injected into subsequent Run calls (deterministic given the plan
  // seed). Superstep indices in kill clauses are per-Run, starting at 0.
  void set_fault_plan(FaultPlan plan) { fault_plan_ = std::move(plan); }
  void clear_fault_plan() { fault_plan_ = FaultPlan{}; }

  // Details of the most recent aborted Run; reset on the next Run call.
  const std::optional<FailureReport>& last_failure() const {
    return last_failure_;
  }

  // Valid after Run. stats()[r] are rank r's accumulated metrics.
  const std::vector<RankStats>& stats() const { return stats_; }

  // Simulated parallel wall-clock time: max over ranks of the final BSP
  // clock (seconds).
  double SimTimeSeconds() const;

  // Sum over ranks of bytes sent in phases whose label starts with `prefix`
  // (empty prefix = all phases).
  std::uint64_t BytesSent(const std::string& prefix = "") const;

  void ResetStats();

 private:
  friend class Comm;
  struct Shared;

  int p_;
  CostParams cost_;
  DiskParams disk_params_;
  FaultPlan fault_plan_;
  std::unique_ptr<Shared> shared_;
  std::vector<RankStats> stats_;
  std::optional<FailureReport> last_failure_;
};

}  // namespace sncube
