// Cluster: the simulated shared-nothing multiprocessor (Figure 2a of the
// paper — p processors, each with private memory and local disk, connected
// by a switch).
//
// Each virtual processor runs the supplied SPMD program on its own thread
// with a private Comm endpoint. After Run returns, per-rank metrics and the
// simulated parallel wall-clock time (the BSP clock maximum) are available.
// On a real multicore this runtime is genuinely parallel; on one core the
// threads interleave but the simulated clock — which drives every figure —
// is unaffected because it is computed from operation counts, not from host
// wall time.
//
// Thread-safety contract: the Cluster object itself is externally
// synchronized — Run, the accessors, and set_fault_plan are called from one
// driver thread (Run blocks, so overlapping calls cannot happen by
// accident). The rank threads Run spawns never touch the Cluster's own
// fields; they share only Cluster::Shared (net/internal.h), whose failure
// state is mutex-guarded and thread-safety-annotated.
#pragma once

#include <barrier>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "io/disk.h"
#include "net/comm.h"
#include "net/fault.h"
#include "net/metrics.h"
#include "net/params.h"
#include "obs/trace.h"

namespace sncube {

// Forensics of an aborted Run: which rank's failure caused the abort, at
// which superstep, and the partial per-rank metrics of the doomed Run.
// Failed ranks are flagged (RankStats::failed); none of these numbers are
// folded into Cluster::stats() or SimTimeSeconds(), which only ever reflect
// completed Runs.
struct FailureReport {
  int failed_rank = -1;
  std::uint64_t superstep = 0;
  std::string message;  // root-cause exception text
  std::vector<RankStats> partial_stats;
};

class Cluster {
 public:
  explicit Cluster(int p, CostParams cost = FastEthernetBeowulf(),
                   DiskParams disk = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int size() const { return p_; }
  const CostParams& cost() const { return cost_; }

  // Runs `program` on every rank (SPMD). Blocks until all ranks finish.
  //
  // If any rank throws, every surviving rank blocked in (or reaching) a
  // collective receives a ClusterAbortedError, the partial metrics are
  // preserved in last_failure(), and Run rethrows a ClusterAbortedError
  // naming the root-cause rank and superstep. The cluster remains fully
  // usable: a subsequent Run starts from a fresh barrier and exchange board.
  //
  // Metrics reset policy (run-scoped, DESIGN.md §10): every Run — retry or
  // not — starts all per-rank counters, phase stats, superstep counts, disk
  // counters, and the simulated clock from zero. After a successful Run,
  // stats()/SimTimeSeconds()/BytesSent() describe exactly that Run; an
  // aborted Run never touches them (its flagged partials live only in
  // last_failure()). So a retry-after-fault reports the same numbers as a
  // clean first run, and trace summaries are never polluted by the failed
  // attempt. Accumulate across Runs at the call site if that is what you
  // want — nothing here does it for you.
  void Run(const std::function<void(Comm&)>& program);

  // Faults injected into subsequent Run calls (deterministic given the plan
  // seed). Superstep indices in kill clauses are per-Run, starting at 0.
  void set_fault_plan(FaultPlan plan) { fault_plan_ = std::move(plan); }
  void clear_fault_plan() { fault_plan_ = FaultPlan{}; }

  // Intra-rank execution width for subsequent Runs: each rank thread gets a
  // work-stealing exec::TaskPool of `t` contexts (t-1 real worker threads
  // plus the rank thread), installed via exec::PoolScope so the per-rank
  // kernels pick it up through exec::CurrentPool(). The BSP cost model
  // divides parallel-region work by `t` (span charging — see
  // Comm::ChargeParallelCpu). Results are byte-identical for every t; only
  // charged time and host wall time change. Default 1: no pool, no worker
  // threads, serial accounting bit-identical to the pre-exec runtime.
  void set_threads_per_rank(int t);
  int threads_per_rank() const { return threads_per_rank_; }

  // Details of the most recent aborted Run; reset on the next Run call.
  const std::optional<FailureReport>& last_failure() const {
    return last_failure_;
  }

  // When set, every subsequent successful Run records a per-rank span/comm
  // trace (simulated-clock timestamps) and deposits it into `sink`; traces
  // of aborted Runs are discarded, matching the metrics policy. The sink
  // must outlive the Runs; pass nullptr to turn tracing back off. Tracing
  // off (the default) costs one thread-local check per span site.
  void set_trace_sink(obs::TraceSink* sink) { trace_sink_ = sink; }

  // Valid after a successful Run. stats()[r] are rank r's metrics for the
  // most recent successful Run (run-scoped — see Run).
  const std::vector<RankStats>& stats() const { return stats_; }

  // Simulated parallel wall-clock time of the most recent successful Run:
  // max over ranks of the final BSP clock (seconds).
  double SimTimeSeconds() const;

  // Sum over ranks of bytes sent in phases whose label starts with `prefix`
  // (empty prefix = all phases), for the most recent successful Run.
  std::uint64_t BytesSent(const std::string& prefix = "") const;

  // Clears stats() (e.g. between experiment repetitions that reuse a
  // cluster but want "no run yet" readings). Run itself is already
  // run-scoped, so this is never needed for correctness between Runs.
  void ResetStats();

 private:
  friend class Comm;
  struct Shared;

  int p_;
  CostParams cost_;
  DiskParams disk_params_;
  int threads_per_rank_ = 1;
  FaultPlan fault_plan_;
  obs::TraceSink* trace_sink_ = nullptr;
  std::unique_ptr<Shared> shared_;
  std::vector<RankStats> stats_;
  std::optional<FailureReport> last_failure_;
};

}  // namespace sncube
