#include "net/comm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.h"
#include "net/internal.h"
#include "net/wire.h"

namespace sncube {
namespace {

// Latency hops of a tree-structured collective on p nodes.
double TreeDepth(int p) {
  return p <= 1 ? 0.0 : std::ceil(std::log2(static_cast<double>(p)));
}

}  // namespace

Comm::Comm(Cluster& cluster, int rank, int size, const CostParams& cost,
           DiskParams disk_params, const FaultPlan* fault_plan,
           int threads_per_rank)
    : cluster_(cluster),
      rank_(rank),
      size_(size),
      cost_(cost),
      disk_(disk_params),
      threads_per_rank_(std::max(1, threads_per_rank)) {
  if (fault_plan != nullptr) {
    fault_ = std::make_unique<FaultInjector>(*fault_plan, rank);
    slowdown_ = fault_->slowdown();
    disk_.set_fault_hook(fault_.get());
  }
}

void Comm::SetPhase(std::string phase) {
  // Fold disk blocks accrued so far into the phase that caused them; without
  // this they would be attributed to whichever phase runs the next
  // collective.
  FoldDisk(stats_.phases[phase_]);
  phase_ = std::move(phase);
}

void Comm::FoldDisk(PhaseStats& ps) {
  const std::uint64_t blocks = disk_.blocks_total();
  const std::uint64_t delta = blocks - charged_blocks_;
  charged_blocks_ = blocks;
  if (delta > 0) {
    // A straggler's disk is slower by the same factor as its CPU.
    const double t =
        static_cast<double>(delta) * cost_.disk_block_s * slowdown_;
    local_time_ += t;
    ps.disk_s += t;
    ps.blocks += delta;
  }
}

void Comm::ChargeCpu(double seconds) {
  seconds *= slowdown_;
  local_time_ += seconds;
  stats_.phases[phase_].cpu_s += seconds;
}

void Comm::ChargeScanRecords(std::uint64_t n) {
  ChargeCpu(static_cast<double>(n) * cost_.cpu_scan_record_s);
}

void Comm::ChargeSortRecords(std::uint64_t n) {
  if (n < 2) return;
  const double levels = std::log2(static_cast<double>(n));
  ChargeCpu(static_cast<double>(n) * levels * cost_.cpu_sort_record_s);
}

void Comm::ChargeParallelCpu(double work_seconds) {
  // Brent bound span; division by 1.0 is exact, so with one thread this
  // charges bit-identical seconds to ChargeCpu(work_seconds).
  ChargeParallelCpu(work_seconds,
                    work_seconds / static_cast<double>(threads_per_rank_));
}

void Comm::ChargeParallelCpu(double work_seconds, double span_seconds) {
  // Work/span accounting only once a pool actually exists: a serial run's
  // phase stats (and every table derived from them) stay exactly as they
  // were before the exec runtime.
  if (threads_per_rank_ > 1) {
    PhaseStats& ps = stats_.phases[phase_];
    ps.par_work_s += work_seconds * slowdown_;
    ps.par_span_s += span_seconds * slowdown_;
  }
  ChargeCpu(span_seconds);
}

void Comm::ChargeSortRecordsParallel(std::uint64_t n) {
  if (n < 2) return;
  const double levels = std::log2(static_cast<double>(n));
  ChargeParallelCpu(static_cast<double>(n) * levels * cost_.cpu_sort_record_s);
}

double Comm::SimNowSeconds() const {
  const std::uint64_t pending = disk_.blocks_total() - charged_blocks_;
  return local_time_ +
         static_cast<double>(pending) * cost_.disk_block_s * slowdown_;
}

void Comm::TraceComm(std::uint64_t bytes_out, std::uint64_t bytes_in) {
  obs::TraceRecorder* rec = obs::CurrentRecorder();
  if (rec != nullptr) rec->RecordComm(bytes_out, bytes_in);
}

PhaseStats& Comm::SyncPrologue() {
  // The kill check runs before anything is staged or published: a killed
  // rank never arrives at this collective's barrier, exactly like a process
  // dying on entry to an MPI call.
  if (fault_ != nullptr) fault_->OnCollective(supersteps_);
  ++supersteps_;
  ++stats_.supersteps;
  PhaseStats& ps = stats_.phases[phase_];
  FoldDisk(ps);
  cluster_.shared_->published_times[rank_] = local_time_;
  return ps;
}

void Comm::ArriveAndCheck() {
  cluster_.shared_->barrier.arrive_and_wait();
  cluster_.shared_->ThrowIfAborted();
}

void Comm::AdvanceClock(PhaseStats& ps, std::uint64_t bytes_out,
                        std::uint64_t bytes_in, std::uint64_t msgs,
                        double latency_multiplier) {
  // t_base: slowest rank's clock at entry (everyone published in prologue).
  double t_base = 0;
  for (double t : cluster_.shared_->published_times) t_base = std::max(t_base, t);

  // h: the h-relation bottleneck — the largest per-rank in- or out-volume,
  // computed identically by every rank from the (stable) exchange board.
  std::uint64_t h = 0;
  const auto& board = cluster_.shared_->board;
  for (int r = 0; r < size_; ++r) {
    std::uint64_t out = 0;
    std::uint64_t in = 0;
    for (int k = 0; k < size_; ++k) {
      if (k == r) continue;  // local delivery is free
      out += board[r][k].size();
      in += board[k][r].size();
    }
    h = std::max({h, out, in});
  }

  const double comm = latency_multiplier * cost_.net_latency_s +
                      static_cast<double>(h) * cost_.net_byte_s;
  const double t_new = t_base + comm;
  ps.net_s += t_new - local_time_;
  local_time_ = t_new;
  ps.bytes_sent += bytes_out;
  ps.bytes_received += bytes_in;
  ps.messages += msgs;
  TraceComm(bytes_out, bytes_in);
}

std::vector<ByteBuffer> Comm::AllToAllv(std::vector<ByteBuffer> send) {
  SNCUBE_CHECK(static_cast<int>(send.size()) == size_);
  PhaseStats& ps = SyncPrologue();
  auto& board = cluster_.shared_->board;
  for (int dst = 0; dst < size_; ++dst) {
    // Everything that crosses the wire carries the integrity trailer; an
    // empty buffer means "no message" and self-delivery never leaves the
    // node, so neither is framed.
    if (dst != rank_ && !send[dst].empty()) SealFrame(send[dst]);
    board[rank_][dst] = std::move(send[dst]);
  }
  ArriveAndCheck();  // A: board fully staged

  // Size-scan phase: cells are stable, everyone reads sizes concurrently.
  std::uint64_t bytes_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t msgs = 0;
  for (int k = 0; k < size_; ++k) {
    if (k == rank_) continue;
    bytes_out += board[rank_][k].size();
    bytes_in += board[k][rank_].size();
    if (!board[rank_][k].empty()) ++msgs;
  }
  AdvanceClock(ps, bytes_out, bytes_in, msgs, /*latency_multiplier=*/1.0);
  ArriveAndCheck();  // B: sizes consumed

  std::vector<ByteBuffer> recv(size_);
  for (int src = 0; src < size_; ++src) {
    recv[src] = std::move(board[src][rank_]);
    board[src][rank_].clear();
    // Decode-side verification: a frame damaged in flight (or by a buggy
    // sender) raises SncubeCorruptionError here, never a wrong payload.
    if (src != rank_ && !recv[src].empty()) VerifyAndStripFrame(recv[src]);
  }
  ArriveAndCheck();  // C: board reusable
  return recv;
}

ByteBuffer Comm::Broadcast(int root, ByteBuffer msg) {
  SNCUBE_CHECK(root >= 0 && root < size_);
  PhaseStats& ps = SyncPrologue();
  auto& board = cluster_.shared_->board;
  if (rank_ == root) {
    // Seal once, then fan out copies of the framed message; the root keeps
    // its own unframed `msg` and returns it untouched below.
    ByteBuffer framed = msg;
    if (size_ > 1 && !framed.empty()) SealFrame(framed);
    for (int dst = 0; dst < size_; ++dst) {
      if (dst == rank_) continue;
      board[rank_][dst] = framed;  // copy: same payload to every destination
    }
  }
  ArriveAndCheck();  // A

  // Any non-root cell of the root's row holds the payload (all copies are
  // identical). With p = 1 there is nothing staged and the cost is zero.
  const int probe = (root == 0) ? (size_ > 1 ? 1 : 0) : 0;
  const std::uint64_t payload = board[root][probe].size();
  // Binomial-tree cost: log2(p) store-and-forward hops of the payload.
  const double depth = TreeDepth(size_);
  double t_base = 0;
  for (double t : cluster_.shared_->published_times) t_base = std::max(t_base, t);
  const double comm =
      depth * (cost_.net_latency_s +
               static_cast<double>(payload) * cost_.net_byte_s);
  const double t_new = t_base + comm;
  ps.net_s += t_new - local_time_;
  local_time_ = t_new;
  if (rank_ == root) {
    ps.bytes_sent += payload * static_cast<std::uint64_t>(size_ - 1);
    ps.messages += static_cast<std::uint64_t>(size_ - 1);
    TraceComm(payload * static_cast<std::uint64_t>(size_ - 1), 0);
  } else {
    ps.bytes_received += payload;
    TraceComm(0, payload);
  }
  ArriveAndCheck();  // B

  ByteBuffer result;
  if (rank_ == root) {
    result = std::move(msg);
    // Staged copies are moved out by their destination ranks below; the root
    // must not touch those cells (one mover per cell).
  } else {
    result = std::move(board[root][rank_]);
    board[root][rank_].clear();
    if (!result.empty()) VerifyAndStripFrame(result);
  }
  ArriveAndCheck();  // C
  return result;
}

std::vector<ByteBuffer> Comm::Gather(int root, ByteBuffer msg) {
  std::vector<ByteBuffer> send(size_);
  send[root] = std::move(msg);
  auto recv = AllToAllv(std::move(send));
  if (rank_ != root) recv.clear();
  return recv;
}

std::vector<ByteBuffer> Comm::AllGather(ByteBuffer msg) {
  std::vector<ByteBuffer> send(size_);
  for (int dst = 0; dst < size_; ++dst) send[dst] = msg;  // copies
  return AllToAllv(std::move(send));
}

std::uint64_t Comm::AllReduceSum(std::uint64_t v) {
  ByteBuffer b;
  WirePut(b, v);
  auto all = AllGather(std::move(b));
  std::uint64_t sum = 0;
  for (auto& buf : all) sum += WireReader(buf).Get<std::uint64_t>();
  return sum;
}

std::uint64_t Comm::AllReduceMax(std::uint64_t v) {
  ByteBuffer b;
  WirePut(b, v);
  auto all = AllGather(std::move(b));
  std::uint64_t m = 0;
  for (auto& buf : all) m = std::max(m, WireReader(buf).Get<std::uint64_t>());
  return m;
}

std::uint64_t Comm::AllReduceMin(std::uint64_t v) {
  ByteBuffer b;
  WirePut(b, v);
  auto all = AllGather(std::move(b));
  std::uint64_t m = std::numeric_limits<std::uint64_t>::max();
  for (auto& buf : all) m = std::min(m, WireReader(buf).Get<std::uint64_t>());
  return m;
}

double Comm::AllReduceMax(double v) {
  ByteBuffer b;
  WirePut(b, v);
  auto all = AllGather(std::move(b));
  double m = -std::numeric_limits<double>::infinity();
  for (auto& buf : all) m = std::max(m, WireReader(buf).Get<double>());
  return m;
}

void Comm::Barrier() {
  PhaseStats& ps = SyncPrologue();
  ArriveAndCheck();  // A
  double t_base = 0;
  for (double t : cluster_.shared_->published_times) t_base = std::max(t_base, t);
  const double t_new = t_base + TreeDepth(size_) * cost_.net_latency_s;
  ps.net_s += t_new - local_time_;
  local_time_ = t_new;
  TraceComm(0, 0);
  ArriveAndCheck();  // B: times consumed
}

}  // namespace sncube
