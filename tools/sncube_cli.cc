// sncube — command-line front end for the library.
//
//   sncube generate --rows N --cards 256,128,64 [--alphas 1.0,0,0]
//                   [--seed S] --out facts.csv
//   sncube build    --in facts.csv --out cubedir [--procs P]
//                   [--views N | --fraction F] [--gamma G] [--local-trees]
//   sncube info     --cube cubedir
//   sncube query    --cube cubedir --group-by D0,D2 [--where D1=3]
//                   [--min|--max] [--top K] [--json]
//   sncube serve    --cube cubedir --bench [--workers W] [--clients C]
//                   [--queries N] [--queue-depth Q] [--cache-mb MB]
//                   [--alpha A] [--seed S]
//
// `build` runs the paper's parallel shared-nothing algorithm on a simulated
// cluster of P virtual processors (default 1 = plain sequential Pipesort)
// and persists every selected view into the cube directory, which `query`
// then serves with lattice routing. `serve --bench` replays a synthetic
// Zipf-skewed query mix through the concurrent CubeServer (src/serve/) and
// prints its StatsSnapshot as JSON.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chaos/explorer.h"
#include "chaos/refresh_chaos.h"
#include "chaos/serve_chaos.h"
#include "common/env.h"
#include "common/timer.h"
#include "core/parallel_cube.h"
#include "data/generator.h"
#include "lattice/lattice.h"
#include "net/cluster.h"
#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "query/engine.h"
#include "query/greedy_select.h"
#include "refresh/delta.h"
#include "refresh/refresh.h"
#include "refresh/snapshot.h"
#include "relation/csv.h"
#include "seqcube/seq_cube.h"
#include "seqcube/view_store.h"
#include "serve/metrics_bridge.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/shard_set.h"
#include "serve/wall_clock.h"
#include "serve/workload.h"

using namespace sncube;

namespace {

// The single source of truth for CLI documentation. `sncube help` prints
// this to stdout (exit 0); a parse error prints it to stderr (exit 2).
// tools/lint/check_cli_docs.py extracts every --flag token from this text
// and requires each one to be documented in README.md, so a new flag that
// is not added here (or not written up) fails `ctest -L lint`.
constexpr const char* kHelpText =
    "usage: sncube <command> [flags]\n"
    "\n"
    "commands:\n"
    "  generate   synthesize a fact table as CSV\n"
    "  build      build the data cube (sequential or simulated parallel)\n"
    "  info       list the views stored in a cube directory\n"
    "  query      answer one group-by query from a cube directory\n"
    "  refresh    ingest a delta relation and refresh a cube directory\n"
    "  serve      replay a synthetic query mix through the CubeServer\n"
    "  chaos      randomized fault-injection search with plan shrinking\n"
    "  help       print this text\n"
    "\n"
    "sncube generate --rows N --cards C0,C1,... --out facts.csv\n"
    "  --rows N           number of fact rows\n"
    "  --cards C0,C1,...  per-dimension cardinalities (defines dimensionality)\n"
    "  --alphas A0,...    per-dimension Zipf skew (default uniform = 0)\n"
    "  --seed S           RNG seed (default 42)\n"
    "  --out FILE         output CSV path\n"
    "\n"
    "sncube build --in facts.csv --out cubedir\n"
    "  --in FILE            input fact table (CSV of dimension codes)\n"
    "  --out DIR            cube directory to create\n"
    "  --procs P            simulated processors (default 1 = sequential)\n"
    "  --threads-per-rank W intra-rank worker threads per simulated processor\n"
    "                       (default 1 = serial; cube bytes identical for any W)\n"
    "  --backend MODE       view-computation engine for schedule-tree sort\n"
    "                       edges: sort (default), hash, or auto = cost-choose\n"
    "                       per edge; cube bytes identical for every MODE\n"
    "                       (env fallback: SNCUBE_BACKEND)\n"
    "  --views N            build only the N greedy-selected views\n"
    "  --fraction F         build the greedy-selected fraction F of views\n"
    "  --gamma G            merge threshold gamma (Merge-Partitions case 3)\n"
    "  --local-trees        per-rank lattice trees + FM-sketch estimator\n"
    "  --checkpoint-dir DIR save per-partition checkpoints; rerun with the\n"
    "                       same DIR to resume after a failure (needs --procs >= 2)\n"
    "  --fault-plan SPEC    inject faults, e.g.\n"
    "                       \"kill:1@5;slow:2x3.0;diskerr:0:0.01;seed:7\"\n"
    "                       (needs --procs >= 2)\n"
    "  --trace-out FILE     write a Chrome trace_event JSON timeline of the\n"
    "                       run (simulated clock) and print the run summary\n"
    "                       JSON to stdout\n"
    "  --summary-out FILE   also write the run summary JSON to FILE\n"
    "\n"
    "sncube info --cube cubedir\n"
    "  --cube DIR         cube directory to inspect\n"
    "\n"
    "sncube query --cube cubedir --group-by D0,D2\n"
    "  --cube DIR         cube directory to query\n"
    "  --group-by A,B,... dimension names to group by\n"
    "  --where D=V,...    equality filters (dimension=code)\n"
    "  --min | --max      aggregate MIN/MAX instead of SUM\n"
    "  --top K            keep only the K largest groups\n"
    "  --json             machine-readable output\n"
    "  --trace-out FILE   write a Chrome trace of the query (wall clock)\n"
    "\n"
    "sncube refresh --cube cubedir --delta delta.csv\n"
    "  ingests an insert-only delta: cubes the delta over the affected views\n"
    "  (Section 3 partial schedule), merges it into the stored cube, and\n"
    "  rewrites the cube directory (DESIGN.md §14).\n"
    "  --cube DIR         cube directory to refresh in place\n"
    "  --delta FILE       delta fact rows (CSV with the cube's columns)\n"
    "  --snapshot-dir DIR also commit the refreshed cube into a crash-safe\n"
    "                     snapshot store as the next epoch (sealed manifest;\n"
    "                     a crash leaves the previous epoch committed)\n"
    "\n"
    "sncube serve --cube cubedir --bench\n"
    "  --cube DIR         cube directory to serve\n"
    "  --bench            replay a synthetic query mix (required)\n"
    "  --workers W        worker threads (default 4)\n"
    "  --clients C        closed-loop client threads (default 8)\n"
    "  --queries N        total queries to issue (default 20000)\n"
    "  --queue-depth Q    admission queue depth (default 256)\n"
    "  --cache-mb MB      result cache capacity (default 64)\n"
    "  --alpha A          Zipf skew of the query mix (default 1.0)\n"
    "  --seed S           workload RNG seed (default 42)\n"
    "  --trace-out FILE   write a Chrome trace of worker request handling\n"
    "                     (wall clock; non-deterministic by nature)\n"
    "  --summary-out FILE write unified metrics registry JSON to FILE\n"
    "  --shards N         serve the cube sliced over N shard nodes behind\n"
    "                     the resilient router (default 1 = single server;\n"
    "                     N >= 2 enables the flags below)\n"
    "  --fault-plan SPEC  serve-tier fault clauses keyed on request sequence,\n"
    "                     e.g. \"shardkill:1:100-900;shardslow:0:0:3.0\"\n"
    "  --per-try-ms MS    router per-try deadline (default 50, 0 disables)\n"
    "  --retries R        extra tries per request after the first (default 2)\n"
    "  --hedge-ms MS      hedge successful tries at least this slow against\n"
    "                     the other replica (default 0 = off)\n"
    "  --breaker-failures F      failures within the rolling window that trip\n"
    "                            a shard's circuit breaker (default 5)\n"
    "  --breaker-cooldown-ms MS  open-state cooldown before half-open probes\n"
    "                            (default 250)\n"
    "  --refresh-every Q  with --shards >= 2: run an online refresh (epoch\n"
    "                     swap under live traffic) after every Q routed\n"
    "                     queries (default 0 = no refreshes)\n"
    "  --refresh-rows R   synthetic delta rows per refresh (default 1000)\n"
    "  --snapshot-dir DIR refresh snapshot store (default: temp directory)\n"
    "\n"
    "sncube chaos --plans N --seed S\n"
    "  runs N random fault plans per cluster size; each trial builds a cube\n"
    "  under the plan (restarting from its checkpoints on abort) and checks\n"
    "  the result byte-identical to a fault-free build. A failing plan is\n"
    "  shrunk to a minimal reproducing spec. Exit 0 = all trials upheld the\n"
    "  invariant; exit 4 = integrity violation found (see the JSON report).\n"
    "  --plans N          random fault plans per cluster size (default 16)\n"
    "  --seed S           master seed for plan generation (default 1)\n"
    "  --procs P0,P1,...  cluster sizes to exercise (default 2,4)\n"
    "  --rows R           synthetic fact rows per trial (default 600)\n"
    "  --fail-out FILE    append each minimal failing plan spec, one per line\n"
    "  --verbose          per-trial progress on stderr\n"
    "  --serve            search the SERVING tier instead: random shardkill/\n"
    "                     shardslow plans against a Router over a ShardSet,\n"
    "                     invariant \"no wrong answers, ever\" (every response\n"
    "                     is bit-correct, a typed error, or an explicit shed).\n"
    "                     Deterministic under a manual clock; failing plans\n"
    "                     are shrunk like build plans. With --serve:\n"
    "  --shards N0,N1,... shard counts to exercise (default 2,4)\n"
    "  --requests N       router requests per trial (default 200)\n"
    "  --refresh          search the ONLINE REFRESH path instead: plans mix\n"
    "                     coordinator kills at two-phase-swap phases\n"
    "                     (refreshkill:K), snapshot disk corruption, and\n"
    "                     shard churn while the query stream interleaves\n"
    "                     with every swap step. Invariant: old or new, never\n"
    "                     a blend — every response matches the pre- or\n"
    "                     post-refresh golden, and crash recovery restores\n"
    "                     one of the two cubes byte-identically. Takes the\n"
    "                     same --shards/--requests flags as --serve.\n";

[[noreturn]] void Usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fputs(kHelpText, stderr);
  std::exit(2);
}

// Minimal flag parser: --name value pairs plus boolean switches.
class Args {
 public:
  Args(int argc, char** argv, const std::vector<std::string>& switches) {
    for (int i = 0; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) != 0) Usage(("unexpected argument: " + a).c_str());
      a = a.substr(2);
      if (std::find(switches.begin(), switches.end(), a) != switches.end()) {
        values_[a] = "1";
      } else {
        if (i + 1 >= argc) Usage(("missing value for --" + a).c_str());
        values_[a] = argv[++i];
      }
    }
  }

  std::optional<std::string> Get(const std::string& name) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  std::string Require(const std::string& name) const {
    const auto v = Get(name);
    if (!v) Usage(("--" + name + " is required").c_str());
    return *v;
  }
  bool Has(const std::string& name) const { return values_.contains(name); }

 private:
  std::map<std::string, std::string> values_;
};

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> parts;
  std::stringstream ss(s);
  std::string part;
  while (std::getline(ss, part, ',')) parts.push_back(part);
  return parts;
}

int DimIndexByName(const Schema& schema, const std::string& name) {
  for (int i = 0; i < schema.dims(); ++i) {
    if (schema.name(i) == name) return i;
  }
  Usage(("unknown dimension: " + name).c_str());
}

int CmdGenerate(const Args& args) {
  DatasetSpec spec;
  spec.rows = std::atoll(args.Require("rows").c_str());
  for (const auto& c : SplitCommas(args.Require("cards"))) {
    spec.cardinalities.push_back(static_cast<std::uint32_t>(std::stoul(c)));
  }
  if (const auto alphas = args.Get("alphas")) {
    for (const auto& a : SplitCommas(*alphas)) spec.alphas.push_back(std::stod(a));
  }
  spec.seed = static_cast<std::uint64_t>(
      std::atoll(args.Get("seed").value_or("42").c_str()));

  const Relation rel = GenerateDataset(spec);
  const Schema schema = spec.MakeSchema();
  std::vector<std::string> names;
  for (int i = 0; i < schema.dims(); ++i) names.push_back(schema.name(i));

  const std::string out = args.Require("out");
  std::ofstream os(out);
  if (!os.good()) Usage(("cannot write " + out).c_str());
  WriteCsv(os, rel, names);
  std::printf("wrote %zu rows x %d dims to %s\n", rel.size(), rel.width(),
              out.c_str());
  return 0;
}

int CmdBuild(const Args& args) {
  const std::string in = args.Require("in");
  std::ifstream is(in);
  if (!is.good()) Usage(("cannot read " + in).c_str());
  const Relation raw = ReadCsv(is);
  if (raw.empty()) Usage("input has no rows");

  // Infer cardinalities from the data (max code + 1 per column).
  std::vector<std::uint32_t> cards(static_cast<std::size_t>(raw.width()), 1);
  for (std::size_t r = 0; r < raw.size(); ++r) {
    for (int c = 0; c < raw.width(); ++c) {
      cards[static_cast<std::size_t>(c)] =
          std::max(cards[static_cast<std::size_t>(c)], raw.key(r, c) + 1);
    }
  }
  const Schema schema(cards);
  const int d = schema.dims();

  // View selection.
  const AnalyticEstimator est(schema, static_cast<double>(raw.size()));
  std::vector<ViewId> selected;
  if (const auto count = args.Get("views")) {
    selected = GreedySelectViews(d, std::atoi(count->c_str()), est);
  } else if (const auto fraction = args.Get("fraction")) {
    selected = GreedySelectFraction(d, std::stod(*fraction), est);
  } else {
    selected = AllViews(d);
  }

  const int p = std::atoi(args.Get("procs").value_or("1").c_str());
  if (p < 1) Usage("--procs must be >= 1");
  const int threads_per_rank =
      std::atoi(args.Get("threads-per-rank").value_or("1").c_str());
  if (threads_per_rank < 1) Usage("--threads-per-rank must be >= 1");
  ParallelCubeOptions opts;
  {
    // Flag wins over the SNCUBE_BACKEND env knob; both default to sort.
    const std::string mode =
        args.Get("backend").value_or(EnvStr("SNCUBE_BACKEND", "sort"));
    const auto parsed = ParseBackendMode(mode);
    if (!parsed) Usage("--backend/SNCUBE_BACKEND must be sort, hash or auto");
    opts.backend = *parsed;
  }
  if (const auto gamma = args.Get("gamma")) opts.gamma_merge = std::stod(*gamma);
  if (args.Has("local-trees")) {
    opts.tree_mode = TreeMode::kLocal;
    opts.estimator = EstimatorKind::kFm;
  }
  const auto checkpoint_dir = args.Get("checkpoint-dir");
  const auto fault_spec = args.Get("fault-plan");
  if ((checkpoint_dir || fault_spec) && p == 1) {
    Usage("--checkpoint-dir/--fault-plan require --procs >= 2");
  }
  if (checkpoint_dir) opts.checkpoint.dir = *checkpoint_dir;
  FaultPlan fault_plan;
  if (fault_spec) {
    try {
      fault_plan = FaultPlan::Parse(*fault_spec);
    } catch (const SncubeError& e) {
      Usage(e.what());
    }
  }

  const auto trace_out = args.Get("trace-out");
  const auto summary_out = args.Get("summary-out");
  // Tracing needs the simulated clock, which only exists on the Cluster
  // path — so a traced single-processor build runs as a 1-rank cluster
  // (BuildParallelCube at p == 1 produces the same views as SequentialCube).
  // The exec pool likewise lives on rank threads, so --threads-per-rank > 1
  // also takes the cluster path.
  const bool traced = trace_out.has_value() || summary_out.has_value();

  const std::string out = args.Require("out");
  WallTimer timer;
  std::uint64_t rows_total = 0;
  // The sequential fast path only implements the sort engine; hash/auto
  // builds run as a 1-rank cluster, which produces identical bytes.
  if (p == 1 && !traced && threads_per_rank == 1 &&
      opts.backend == BackendMode::kSort) {
    const CubeResult cube = SequentialCube(raw, schema, selected);
    ViewStore store(out);
    // Drop auxiliaries when persisting.
    store.SaveCube(cube, schema);
    rows_total = cube.TotalRows();
  } else {
    // Simulated shared-nothing build; rank r persists into out/rank<r>/ and
    // rank shards are merged into one store afterwards for querying.
    Cluster cluster(p);
    cluster.set_threads_per_rank(threads_per_rank);
    if (!fault_plan.empty()) cluster.set_fault_plan(fault_plan);
    obs::TraceSink trace_sink;
    if (traced) cluster.set_trace_sink(&trace_sink);
    std::vector<CubeResult> shards(p);
    std::mutex mu;
    try {
      cluster.Run([&](Comm& comm) {
        // Deal rows round-robin to ranks (the paper's "distributed
        // arbitrarily" input).
        Relation slice(raw.width());
        for (std::size_t r = comm.rank(); r < raw.size();
             r += static_cast<std::size_t>(comm.size())) {
          slice.AppendRow(raw, r);
        }
        CubeResult cube =
            BuildParallelCube(comm, slice, schema, selected, opts);
        std::lock_guard<std::mutex> lock(mu);
        shards[comm.rank()] = std::move(cube);
      });
    } catch (const ClusterAbortedError& e) {
      std::fprintf(stderr, "build aborted: %s\n", e.what());
      if (checkpoint_dir) {
        std::fprintf(stderr,
                     "partitions completed before the failure are saved; "
                     "rerun with the same --checkpoint-dir (and without the "
                     "fault) to resume\n");
      }
      return 3;
    }
    std::printf("simulated %d-processor build: %.2f s simulated parallel "
                "time, %.1f MB communicated\n",
                p, cluster.SimTimeSeconds(),
                cluster.BytesSent() / 1048576.0);
    if (traced) {
      const std::vector<obs::RankTrace> ranks = trace_sink.Snapshot();
      obs::MetricsRegistry registry;
      obs::AbsorbRunStats(registry, cluster.stats(), cluster.SimTimeSeconds());
      const std::string summary = obs::RunSummaryJson(
          cluster.stats(), cluster.SimTimeSeconds(), &ranks, &registry);
      if (trace_out) {
        obs::WriteTextFile(*trace_out, obs::ChromeTraceJson(ranks));
        std::fprintf(stderr, "trace: %s (span coverage %.1f%%)\n",
                     trace_out->c_str(), 100.0 * obs::SpanCoverage(ranks));
      }
      if (summary_out) obs::WriteTextFile(*summary_out, summary);
      std::printf("%s\n", summary.c_str());
    }
    // Concatenate shards per view (shards are globally sorted by rank).
    CubeResult merged;
    for (ViewId v : selected) {
      ViewResult vr;
      vr.id = v;
      vr.order = shards[0].views.at(v).order;
      vr.rel = Relation(v.dim_count());
      for (auto& shard : shards) {
        vr.rel.Concat(std::move(shard.views.at(v).rel));
      }
      merged.views[v] = std::move(vr);
    }
    ViewStore store(out);
    store.SaveCube(merged, schema);
    rows_total = merged.TotalRows();
  }
  std::printf("built %zu views (%llu rows) into %s in %.2f s\n",
              selected.size(), static_cast<unsigned long long>(rows_total),
              out.c_str(), timer.Seconds());
  return 0;
}

int CmdInfo(const Args& args) {
  const ViewStore store(args.Require("cube"));
  const Schema schema = store.LoadSchema();
  std::printf("schema:");
  for (int i = 0; i < schema.dims(); ++i) {
    std::printf(" %s(%u)", schema.name(i).c_str(), schema.cardinality(i));
  }
  std::printf("\nviews:\n");
  std::uint64_t rows = 0;
  for (ViewId id : store.List()) {
    const ViewResult vr = store.Load(id);
    std::printf("  %-12s %10zu rows\n", id.Name(schema).c_str(),
                vr.rel.size());
    rows += vr.rel.size();
  }
  std::printf("total: %llu rows\n", static_cast<unsigned long long>(rows));
  return 0;
}

int CmdQuery(const Args& args) {
  const ViewStore store(args.Require("cube"));
  const Schema schema = store.LoadSchema();
  const CubeResult cube = store.LoadCube();
  const CubeQueryEngine engine(cube);

  Query q;
  std::vector<int> dims;
  for (const auto& name : SplitCommas(args.Require("group-by"))) {
    dims.push_back(DimIndexByName(schema, name));
  }
  q.group_by = ViewId::FromDims(dims);
  if (const auto where = args.Get("where")) {
    for (const auto& clause : SplitCommas(*where)) {
      const auto eq = clause.find('=');
      if (eq == std::string::npos) Usage("--where expects name=value");
      q.filters.push_back(
          {DimIndexByName(schema, clause.substr(0, eq)),
           static_cast<Key>(std::stoul(clause.substr(eq + 1)))});
    }
  }
  if (args.Has("min")) q.fn = AggFn::kMin;
  if (args.Has("max")) q.fn = AggFn::kMax;
  if (const auto top = args.Get("top")) q.top_k = std::atoi(top->c_str());

  const auto trace_out = args.Get("trace-out");
  WallClockSource trace_clock;
  obs::TraceRecorder trace_recorder(0, &trace_clock);

  WallTimer timer;
  QueryAnswer answer;
  {
    // Single-query trace: rank 0 = the one CLI thread, wall-clock stamps.
    obs::ThreadRecorderScope trace_scope(trace_out ? &trace_recorder
                                                   : nullptr);
    answer = engine.Execute(q);
  }
  const double wall_s = timer.Seconds();
  if (trace_out) {
    std::vector<obs::RankTrace> ranks;
    ranks.push_back(trace_recorder.Finish());
    obs::WriteTextFile(*trace_out, obs::ChromeTraceJson(ranks));
    std::fprintf(stderr, "trace: %s\n", trace_out->c_str());
  }

  if (args.Has("json")) {
    // Machine-readable record for load drivers and dashboards.
    std::printf("{\"answered_from\":\"%s\",\"rows_scanned\":%llu,"
                "\"wall_s\":%.6f,\"columns\":[",
                answer.answered_from.Name(schema).c_str(),
                static_cast<unsigned long long>(answer.rows_scanned), wall_s);
    const auto dims = q.group_by.DimList();
    for (std::size_t i = 0; i < dims.size(); ++i) {
      std::printf("%s\"%s\"", i ? "," : "", schema.name(dims[i]).c_str());
    }
    std::printf("],\"rows\":[");
    for (std::size_t r = 0; r < answer.rel.size(); ++r) {
      std::printf("%s[", r ? "," : "");
      for (Key k : answer.rel.RowKeys(r)) std::printf("%u,", k);
      std::printf("%lld]", static_cast<long long>(answer.rel.measure(r)));
    }
    std::printf("]}\n");
    return 0;
  }

  std::printf("-- answered from view %s (%llu rows scanned, %.3f ms)\n",
              answer.answered_from.Name(schema).c_str(),
              static_cast<unsigned long long>(answer.rows_scanned),
              wall_s * 1e3);
  for (int i : q.group_by.DimList()) std::printf("%s,", schema.name(i).c_str());
  std::printf("measure\n");
  for (std::size_t r = 0; r < answer.rel.size(); ++r) {
    for (Key k : answer.rel.RowKeys(r)) std::printf("%u,", k);
    std::printf("%lld\n", static_cast<long long>(answer.rel.measure(r)));
  }
  return 0;
}

// refresh: one offline delta-ingestion pass over a cube directory — cube
// the delta over the affected views, merge, rewrite the store. The online
// counterpart (epoch swap under live traffic) is serve --refresh-every.
int CmdRefresh(const Args& args) {
  const std::string cube_dir = args.Require("cube");
  const ViewStore store(cube_dir);
  const Schema schema = store.LoadSchema();
  const CubeResult base = store.LoadCube();

  const std::string delta_path = args.Require("delta");
  std::ifstream is(delta_path);
  if (!is.good()) Usage(("cannot read " + delta_path).c_str());
  const Relation delta = ReadCsv(is);
  if (!delta.empty() && delta.width() != schema.dims()) {
    Usage("delta column count does not match the cube's dimensionality");
  }

  WallTimer timer;
  const std::vector<ViewId> affected = AffectedViews(base, delta);
  const CubeResult merged =
      MergeDeltaCube(base, ComputeDeltaCube(delta, schema, affected));

  // Optionally commit the refreshed cube into a crash-safe snapshot store
  // as the epoch after the newest committed one (1 for a fresh store).
  std::uint64_t epoch = 0;
  if (const auto snap_dir = args.Get("snapshot-dir")) {
    DiskModel disk;
    SnapshotStore snap(*snap_dir, disk);
    epoch = snap.Recover().epoch + 1;
    snap.WriteEpoch(epoch, merged);
    snap.AppendCommit(epoch);
  }
  ViewStore out(cube_dir);
  out.SaveCube(merged, schema);
  std::printf("{\"delta_rows\":%zu,\"views_refreshed\":%zu,"
              "\"merged_rows\":%llu,\"snapshot_epoch\":%llu,"
              "\"wall_s\":%.4f}\n",
              delta.size(), affected.size(),
              static_cast<unsigned long long>(merged.TotalRows()),
              static_cast<unsigned long long>(epoch), timer.Seconds());
  return 0;
}

// serve --shards N (N >= 2): slice the cube over N in-process shard nodes
// and replay the mix through the resilient Router instead of one CubeServer.
// Runs on the wall clock; any --fault-plan serve clauses key on the router's
// request sequence numbers, so a plan stays meaningful at any request rate.
int CmdServeSharded(const Args& args, const CubeResult& cube,
                    const Schema& schema, const ServerOptions& server_opts,
                    const QueryMix& mix, const WorkloadSpec& wspec,
                    std::int64_t total_queries, int clients, int shards) {
  ShardSetOptions sopts;
  sopts.shards = shards;
  sopts.server = server_opts;
  FaultPlan plan;
  if (const auto spec = args.Get("fault-plan")) plan = FaultPlan::Parse(*spec);

  RouterOptions ropts;
  ropts.per_try_us = 1000ULL *
      static_cast<std::uint64_t>(
          std::atoll(args.Get("per-try-ms").value_or("50").c_str()));
  ropts.max_tries =
      1 + std::atoi(args.Get("retries").value_or("2").c_str());
  ropts.hedge_delay_us = 1000ULL *
      static_cast<std::uint64_t>(
          std::atoll(args.Get("hedge-ms").value_or("0").c_str()));
  ropts.breaker.failure_threshold =
      std::atoi(args.Get("breaker-failures").value_or("5").c_str());
  ropts.breaker.cooldown_us = 1000ULL *
      static_cast<std::uint64_t>(
          std::atoll(args.Get("breaker-cooldown-ms").value_or("250").c_str()));
  if (ropts.max_tries < 1 || ropts.breaker.failure_threshold < 1) {
    Usage("--retries must be >= 0 and --breaker-failures >= 1");
  }

  const std::int64_t refresh_every =
      std::atoll(args.Get("refresh-every").value_or("0").c_str());
  const std::int64_t refresh_rows =
      std::atoll(args.Get("refresh-rows").value_or("1000").c_str());
  if (refresh_every < 0 || refresh_rows < 1) {
    Usage("--refresh-every must be >= 0 and --refresh-rows >= 1");
  }

  ShardSet shard_set(cube, sopts, plan);
  Router router(shard_set, ropts);

  // Online refresh under traffic: a background coordinator ingests a
  // synthetic delta (deterministic: seed 7777+k for the k-th refresh) and
  // two-phase-swaps the refreshed epoch in after every `refresh_every`
  // routed queries. Clients keep hammering the router throughout — each
  // request answers from exactly one pinned epoch.
  std::atomic<std::int64_t> processed{0};
  std::atomic<bool> serve_done{false};
  std::unique_ptr<RefreshCoordinator> refresher;
  std::thread refresh_thread;
  if (refresh_every > 0) {
    RefreshOptions refresh_opts;
    refresh_opts.dir = args.Get("snapshot-dir").value_or(
        (std::filesystem::temp_directory_path() /
         ("sncube_serve_refresh_" + std::to_string(::getpid()))).string());
    refresher = std::make_unique<RefreshCoordinator>(
        shard_set,
        std::shared_ptr<const CubeResult>(&cube, [](const CubeResult*) {}),
        schema, refresh_opts);
    refresh_thread = std::thread([&] {
      DatasetSpec dspec;
      dspec.rows = refresh_rows;
      for (int i = 0; i < schema.dims(); ++i) {
        dspec.cardinalities.push_back(schema.cardinality(i));
      }
      for (std::uint64_t k = 1;
           !serve_done.load(std::memory_order_acquire);) {
        if (processed.load(std::memory_order_acquire) <
            static_cast<std::int64_t>(k) * refresh_every) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        dspec.seed = 7777 + k;
        try {
          refresher->Refresh(GenerateDataset(dspec));
        } catch (const SncubeError& e) {
          std::fprintf(stderr, "refresh failed: %s\n", e.what());
          break;
        }
        ++k;
      }
    });
  }

  WallTimer timer;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(wspec.seed + 1000003ULL * static_cast<std::uint64_t>(c + 1));
      const std::int64_t n = total_queries / clients +
                             (c < total_queries % clients ? 1 : 0);
      for (std::int64_t i = 0; i < n; ++i) {
        router.Execute(mix.Sample(rng));
        processed.fetch_add(1, std::memory_order_release);
      }
    });
  }
  for (auto& t : threads) t.join();
  serve_done.store(true, std::memory_order_release);
  if (refresh_thread.joinable()) refresh_thread.join();
  const double wall_s = timer.Seconds();

  if (const auto summary_out = args.Get("summary-out")) {
    obs::MetricsRegistry registry;
    AbsorbRouterStats(registry, router);
    for (int s = 0; s < shards; ++s) {
      AbsorbServerStats(registry, shard_set.primary_server(s));
      AbsorbServerStats(registry, shard_set.replica_server(s));
    }
    obs::WriteTextFile(*summary_out, registry.ToJson());
  }
  const RouterStatsSnapshot stats = router.Stats();
  const std::uint64_t refresh_epochs = shard_set.serving_epoch();
  shard_set.Shutdown();
  std::printf("{\"shards\":%d,\"clients\":%d,\"queries\":%lld,"
              "\"wall_s\":%.4f,\"qps\":%.0f,\"refresh_epochs\":%llu,"
              "\"router\":%s}\n",
              shards, clients, static_cast<long long>(total_queries), wall_s,
              static_cast<double>(total_queries) / wall_s,
              static_cast<unsigned long long>(refresh_epochs),
              stats.ToJson().c_str());
  return 0;
}

int CmdServe(const Args& args) {
  if (!args.Has("bench")) {
    Usage("serve currently requires --bench (replay a synthetic query mix)");
  }
  const ViewStore store(args.Require("cube"));
  const Schema schema = store.LoadSchema();
  const CubeResult cube = store.LoadCube();

  ServerOptions opts;
  opts.workers = std::atoi(args.Get("workers").value_or("4").c_str());
  opts.queue_depth = static_cast<std::size_t>(
      std::atoll(args.Get("queue-depth").value_or("256").c_str()));
  opts.cache_bytes = static_cast<std::size_t>(
      std::atoll(args.Get("cache-mb").value_or("64").c_str())) << 20;

  WorkloadSpec wspec;
  wspec.alpha = std::stod(args.Get("alpha").value_or("1.0"));
  wspec.seed = static_cast<std::uint64_t>(
      std::atoll(args.Get("seed").value_or("42").c_str()));
  const QueryMix mix(cube, schema, wspec);

  const std::int64_t total_queries =
      std::atoll(args.Get("queries").value_or("20000").c_str());
  const int clients = std::atoi(args.Get("clients").value_or("8").c_str());
  if (clients < 1 || total_queries < 1) {
    Usage("--clients and --queries must be >= 1");
  }

  const int shards = std::atoi(args.Get("shards").value_or("1").c_str());
  if (shards < 1) Usage("--shards must be >= 1");
  if (shards >= 2) {
    return CmdServeSharded(args, cube, schema, opts, mix, wspec,
                           total_queries, clients, shards);
  }
  if (args.Get("fault-plan")) {
    Usage("serve --fault-plan requires --shards >= 2");
  }
  if (args.Get("refresh-every")) {
    Usage("serve --refresh-every requires --shards >= 2");
  }

  const auto trace_out = args.Get("trace-out");
  const auto summary_out = args.Get("summary-out");
  obs::TraceSink trace_sink;
  if (trace_out) opts.trace = &trace_sink;

  CubeServer server(cube, opts);
  WallTimer timer;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(wspec.seed + 1000003ULL * static_cast<std::uint64_t>(c + 1));
      const std::int64_t n = total_queries / clients +
                             (c < total_queries % clients ? 1 : 0);
      for (std::int64_t i = 0; i < n; ++i) {
        // Closed loop: each client waits for its answer before the next
        // query; rejections (overload) count and move on.
        server.Execute(mix.Sample(rng));
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s = timer.Seconds();
  // Absorb before Shutdown: the server (and its histogram) stays alive, and
  // all worker writes happened-before the client joins above.
  if (summary_out) {
    obs::MetricsRegistry registry;
    AbsorbServerStats(registry, server);
    obs::WriteTextFile(*summary_out, registry.ToJson());
  }
  server.Shutdown();
  if (trace_out) {
    obs::WriteTextFile(*trace_out, obs::ChromeTraceJson(trace_sink.Snapshot()));
    std::fprintf(stderr, "trace: %s\n", trace_out->c_str());
  }

  const StatsSnapshot stats = server.Stats();
  std::printf("{\"workers\":%d,\"clients\":%d,\"queries\":%lld,"
              "\"wall_s\":%.4f,\"qps\":%.0f,\"stats\":%s}\n",
              opts.workers, clients,
              static_cast<long long>(total_queries), wall_s,
              static_cast<double>(total_queries) / wall_s,
              stats.ToJson().c_str());
  return 0;
}

// chaos --serve: the serving-tier search. Shares --plans/--seed/--rows/
// --fail-out/--verbose with the build search; fail-out lines are
// "<shards> <spec>" (ChaosFailure::procs carries the shard count), so the
// nightly corpus handles both tiers uniformly.
int CmdServeChaos(const Args& args) {
  chaos::ServeChaosOptions opts;
  opts.plans = std::atoi(args.Get("plans").value_or("16").c_str());
  opts.seed = static_cast<std::uint64_t>(
      std::atoll(args.Get("seed").value_or("1").c_str()));
  opts.rows = static_cast<std::uint64_t>(
      std::atoll(args.Get("rows").value_or("600").c_str()));
  opts.requests = std::atoi(args.Get("requests").value_or("200").c_str());
  if (const auto shards = args.Get("shards")) {
    opts.shard_counts.clear();
    for (const auto& s : SplitCommas(*shards)) {
      opts.shard_counts.push_back(std::atoi(s.c_str()));
    }
  }
  if (opts.plans < 1 || opts.rows < 1 || opts.requests < 1 ||
      opts.shard_counts.empty()) {
    Usage("--plans, --rows and --requests must be >= 1, --shards non-empty");
  }
  for (const int s : opts.shard_counts) {
    if (s < 2) Usage("chaos --serve --shards entries must be >= 2");
  }
  opts.verbose = args.Has("verbose");

  const chaos::ChaosReport report = chaos::RunServeChaosSearch(opts);
  std::printf("%s\n", report.ToJson().c_str());
  if (const auto fail_out = args.Get("fail-out")) {
    if (!report.ok()) {
      std::ofstream os(*fail_out, std::ios::app);
      if (!os.good()) Usage(("cannot write " + *fail_out).c_str());
      for (const auto& f : report.failures) {
        os << f.procs << ' ' << f.plan.ToSpec() << '\n';
      }
      std::fprintf(stderr, "minimal failing plans: %s\n", fail_out->c_str());
    }
  }
  return report.ok() ? 0 : 4;
}

// chaos --refresh: the online-refresh search (old-or-new, never a blend).
// Same flag surface as --serve; fail-out lines are "<shards> <spec>".
int CmdRefreshChaos(const Args& args) {
  chaos::RefreshChaosOptions opts;
  opts.plans = std::atoi(args.Get("plans").value_or("16").c_str());
  opts.seed = static_cast<std::uint64_t>(
      std::atoll(args.Get("seed").value_or("1").c_str()));
  opts.rows = static_cast<std::uint64_t>(
      std::atoll(args.Get("rows").value_or("500").c_str()));
  opts.requests = std::atoi(args.Get("requests").value_or("120").c_str());
  if (const auto shards = args.Get("shards")) {
    opts.shard_counts.clear();
    for (const auto& s : SplitCommas(*shards)) {
      opts.shard_counts.push_back(std::atoi(s.c_str()));
    }
  }
  if (opts.plans < 1 || opts.rows < 1 || opts.requests < 1 ||
      opts.shard_counts.empty()) {
    Usage("--plans, --rows and --requests must be >= 1, --shards non-empty");
  }
  for (const int s : opts.shard_counts) {
    if (s < 2) Usage("chaos --refresh --shards entries must be >= 2");
  }
  opts.verbose = args.Has("verbose");

  const chaos::ChaosReport report = chaos::RunRefreshChaosSearch(opts);
  std::printf("%s\n", report.ToJson().c_str());
  if (const auto fail_out = args.Get("fail-out")) {
    if (!report.ok()) {
      std::ofstream os(*fail_out, std::ios::app);
      if (!os.good()) Usage(("cannot write " + *fail_out).c_str());
      for (const auto& f : report.failures) {
        os << f.procs << ' ' << f.plan.ToSpec() << '\n';
      }
      std::fprintf(stderr, "minimal failing plans: %s\n", fail_out->c_str());
    }
  }
  return report.ok() ? 0 : 4;
}

int CmdChaos(const Args& args) {
  if (args.Has("refresh")) return CmdRefreshChaos(args);
  if (args.Has("serve")) return CmdServeChaos(args);
  chaos::ChaosOptions opts;
  opts.plans = std::atoi(args.Get("plans").value_or("16").c_str());
  opts.seed = static_cast<std::uint64_t>(
      std::atoll(args.Get("seed").value_or("1").c_str()));
  opts.rows = static_cast<std::uint64_t>(
      std::atoll(args.Get("rows").value_or("600").c_str()));
  if (const auto procs = args.Get("procs")) {
    opts.procs.clear();
    for (const auto& p : SplitCommas(*procs)) {
      opts.procs.push_back(std::atoi(p.c_str()));
    }
  }
  if (opts.plans < 1 || opts.rows < 1 || opts.procs.empty()) {
    Usage("--plans and --rows must be >= 1 and --procs non-empty");
  }
  for (const int p : opts.procs) {
    if (p < 2) Usage("chaos --procs entries must be >= 2");
  }
  opts.verbose = args.Has("verbose");

  const chaos::ChaosReport report = chaos::RunChaosSearch(opts);
  std::printf("%s\n", report.ToJson().c_str());
  if (const auto fail_out = args.Get("fail-out")) {
    if (!report.ok()) {
      std::ofstream os(*fail_out, std::ios::app);
      if (!os.good()) Usage(("cannot write " + *fail_out).c_str());
      for (const auto& f : report.failures) {
        os << f.procs << ' ' << f.plan.ToSpec() << '\n';
      }
      std::fprintf(stderr, "minimal failing plans: %s\n", fail_out->c_str());
    }
  }
  return report.ok() ? 0 : 4;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage();
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    std::fputs(kHelpText, stdout);
    return 0;
  }
  try {
    const Args args(argc - 2, argv + 2,
                    {"local-trees", "min", "max", "json", "bench", "verbose",
                     "serve", "refresh"});
    if (cmd == "generate") return CmdGenerate(args);
    if (cmd == "build") return CmdBuild(args);
    if (cmd == "info") return CmdInfo(args);
    if (cmd == "query") return CmdQuery(args);
    if (cmd == "refresh") return CmdRefresh(args);
    if (cmd == "serve") return CmdServe(args);
    if (cmd == "chaos") return CmdChaos(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  Usage(("unknown command: " + cmd).c_str());
}
