#!/usr/bin/env python3
"""bench_compare — diff a fresh bench JSON against its committed baseline.

The figure benches run entirely on the simulated BSP clock, so for a fixed
(SNCUBE_SCALE, SNCUBE_MAXPROC) their cost numbers are pure functions of the
code: any drift in a `sim` field is a real change to the cost model or the
algorithms, not measurement noise. This script walks both JSON trees in
parallel and:

  * FAILS (exit 1) when a numeric field whose key path contains "sim"
    regressed by more than --tolerance (default 10%) — i.e. simulated cost
    went UP. Improvements are reported but pass.
  * Reports every other numeric drift (wall-clock, throughput, ...)
    informationally: those fields are machine-dependent and never gate.
  * FAILS on structural drift (field missing/added/type change) — a bench
    that silently stops emitting a cost cannot "pass" by omission.

Usage:
    bench_compare.py --baseline bench/baselines/BENCH_fig05.json \
                     --current  BENCH_fig05.json [--tolerance 0.10]

Exit status: 0 within tolerance, 1 regression or structural drift,
2 usage error.
"""

import argparse
import json
import sys


def walk(baseline, current, path, findings):
    """Appends (path, kind, detail, rel) tuples; kind in {regress, improve,
    info, structure}; rel is the signed relative drift for sim fields."""
    if isinstance(baseline, dict) and isinstance(current, dict):
        for key in sorted(baseline.keys() | current.keys()):
            if key not in baseline:
                findings.append((f"{path}.{key}", "structure",
                                 "field added (not in baseline)", None))
            elif key not in current:
                findings.append((f"{path}.{key}", "structure",
                                 "field missing from current run", None))
            else:
                walk(baseline[key], current[key], f"{path}.{key}", findings)
        return
    if isinstance(baseline, list) and isinstance(current, list):
        if len(baseline) != len(current):
            findings.append((path, "structure",
                             f"length {len(baseline)} -> {len(current)}",
                             None))
            return
        for i, (b, c) in enumerate(zip(baseline, current)):
            walk(b, c, f"{path}[{i}]", findings)
        return
    b_num = isinstance(baseline, (int, float)) and not isinstance(baseline, bool)
    c_num = isinstance(current, (int, float)) and not isinstance(current, bool)
    if b_num and c_num:
        if baseline == current:
            return
        rel = ((current - baseline) / abs(baseline)) if baseline != 0 else \
            float("inf")
        detail = f"{baseline:g} -> {current:g} ({rel:+.1%})"
        if "sim" in path.lower():
            findings.append((path, "regress" if rel > 0 else "improve",
                             detail, rel))
        else:
            findings.append((path, "info", detail, None))
        return
    if baseline != current:
        findings.append((path, "structure",
                         f"{baseline!r} -> {current!r}", None))


def main(argv):
    parser = argparse.ArgumentParser(
        prog="bench_compare",
        description="fail when simulated bench costs regress vs the baseline")
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="max allowed relative sim-cost increase "
                             "(default 0.10 = 10%%)")
    args = parser.parse_args(argv)

    try:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
        with open(args.current, encoding="utf-8") as f:
            current = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2

    findings = []
    walk(baseline, current, "$", findings)

    failures = 0
    for path, kind, detail, rel in findings:
        if kind == "structure":
            print(f"FAIL  {path}: {detail}")
            failures += 1
        elif kind == "regress":
            if rel > args.tolerance:
                print(f"FAIL  {path}: sim cost regressed {detail}")
                failures += 1
            else:
                print(f"ok    {path}: sim cost drift within tolerance "
                      f"{detail}")
        elif kind == "improve":
            print(f"ok    {path}: sim cost improved {detail}")
        else:
            print(f"info  {path}: {detail} (non-sim, not gated)")

    if failures:
        print(f"bench_compare: {failures} failure(s) "
              f"(tolerance {args.tolerance:.0%})", file=sys.stderr)
        return 1
    print(f"bench_compare: OK ({len(findings)} drift(s), none gating)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
