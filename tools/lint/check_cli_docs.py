#!/usr/bin/env python3
"""check_cli_docs — every CLI flag must be documented in README.md.

`sncube help` is the single source of truth for the flag surface (the CLI
prints kHelpText from tools/sncube_cli.cc). This check extracts every
`--flag` token from that output and requires each one to appear somewhere
in README.md, so a flag cannot ship undocumented: adding it to the parser
without adding it to kHelpText leaves it unusable, adding it to kHelpText
without a README write-up fails `ctest -L lint`.

Usage:
    check_cli_docs.py --binary build/tools/sncube --readme README.md
    check_cli_docs.py --help-text help.txt      --readme README.md

--binary runs `<binary> help` and checks its stdout; --help-text reads a
saved help text instead (used by the self-test fixtures, and handy for
checking a doc change without building).

Exit status: 0 documented, 1 missing flags, 2 usage/tool error.
"""

import argparse
import re
import subprocess
import sys

FLAG_RE = re.compile(r"--[a-z][a-z0-9-]*")


def extract_flags(text):
    return sorted(set(FLAG_RE.findall(text)))


def main(argv):
    parser = argparse.ArgumentParser(
        prog="check_cli_docs",
        description="require every `sncube help` flag to appear in README.md")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--binary", help="sncube binary; runs `<binary> help`")
    source.add_argument("--help-text", help="file holding saved help output")
    parser.add_argument("--readme", required=True, help="README.md to check")
    args = parser.parse_args(argv)

    if args.binary:
        proc = subprocess.run([args.binary, "help"],
                              capture_output=True, text=True)
        if proc.returncode != 0:
            print(f"check_cli_docs: `{args.binary} help` exited "
                  f"{proc.returncode}:\n{proc.stderr}", file=sys.stderr)
            return 2
        help_text = proc.stdout
    else:
        try:
            with open(args.help_text, encoding="utf-8") as f:
                help_text = f.read()
        except OSError as e:
            print(f"check_cli_docs: {e}", file=sys.stderr)
            return 2

    try:
        with open(args.readme, encoding="utf-8") as f:
            readme = f.read()
    except OSError as e:
        print(f"check_cli_docs: {e}", file=sys.stderr)
        return 2

    flags = extract_flags(help_text)
    if not flags:
        print("check_cli_docs: no --flags found in help output — "
              "is the help text empty?", file=sys.stderr)
        return 2

    documented = set(extract_flags(readme))
    missing = [f for f in flags if f not in documented]
    for flag in missing:
        print(f"{args.readme}: flag `{flag}` from `sncube help` is not "
              f"documented")
    if missing:
        print(f"check_cli_docs: {len(missing)} of {len(flags)} flag(s) "
              f"undocumented", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
