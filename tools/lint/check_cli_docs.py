#!/usr/bin/env python3
"""check_cli_docs — every CLI flag must be documented in README.md.

`sncube help` is the single source of truth for the flag surface (the CLI
prints kHelpText from tools/sncube_cli.cc). This check extracts every
`--flag` token from that output and requires each one to appear somewhere
in README.md, so a flag cannot ship undocumented: adding it to the parser
without adding it to kHelpText leaves it unusable, adding it to kHelpText
without a README write-up fails `ctest -L lint`.

Usage:
    check_cli_docs.py --binary build/tools/sncube --readme README.md
    check_cli_docs.py --help-text help.txt      --readme README.md \\
                      --extra-docs DESIGN.md

--binary runs `<binary> help` and checks its stdout; --help-text reads a
saved help text instead (used by the self-test fixtures, and handy for
checking a doc change without building).

--extra-docs FILE (repeatable) closes the other gap: a flag discussed in a
design doc but absent from the README. Every `--flag` token found in FILE
must also appear in the README, so DESIGN.md cannot describe a knob the
user-facing docs never mention.

Exit status: 0 documented, 1 missing flags, 2 usage/tool error.
"""

import argparse
import re
import subprocess
import sys

FLAG_RE = re.compile(r"--[a-z][a-z0-9-]*")


def extract_flags(text):
    return sorted(set(FLAG_RE.findall(text)))


def main(argv):
    parser = argparse.ArgumentParser(
        prog="check_cli_docs",
        description="require every `sncube help` flag to appear in README.md")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--binary", help="sncube binary; runs `<binary> help`")
    source.add_argument("--help-text", help="file holding saved help output")
    parser.add_argument("--readme", required=True, help="README.md to check")
    parser.add_argument("--extra-docs", action="append", default=[],
                        metavar="FILE",
                        help="doc whose --flags must also appear in the "
                             "README (repeatable, e.g. DESIGN.md)")
    args = parser.parse_args(argv)

    if args.binary:
        proc = subprocess.run([args.binary, "help"],
                              capture_output=True, text=True)
        if proc.returncode != 0:
            print(f"check_cli_docs: `{args.binary} help` exited "
                  f"{proc.returncode}:\n{proc.stderr}", file=sys.stderr)
            return 2
        help_text = proc.stdout
    else:
        try:
            with open(args.help_text, encoding="utf-8") as f:
                help_text = f.read()
        except OSError as e:
            print(f"check_cli_docs: {e}", file=sys.stderr)
            return 2

    try:
        with open(args.readme, encoding="utf-8") as f:
            readme = f.read()
    except OSError as e:
        print(f"check_cli_docs: {e}", file=sys.stderr)
        return 2

    flags = extract_flags(help_text)
    if not flags:
        print("check_cli_docs: no --flags found in help output — "
              "is the help text empty?", file=sys.stderr)
        return 2

    documented = set(extract_flags(readme))
    missing = [f for f in flags if f not in documented]
    for flag in missing:
        print(f"{args.readme}: flag `{flag}` from `sncube help` is not "
              f"documented")

    extra_missing = 0
    for doc in args.extra_docs:
        try:
            with open(doc, encoding="utf-8") as f:
                doc_text = f.read()
        except OSError as e:
            print(f"check_cli_docs: {e}", file=sys.stderr)
            return 2
        for flag in extract_flags(doc_text):
            if flag not in documented:
                extra_missing += 1
                print(f"{args.readme}: flag `{flag}` discussed in {doc} is "
                      f"missing from the README")

    if missing or extra_missing:
        print(f"check_cli_docs: {len(missing)} of {len(flags)} help flag(s) "
              f"undocumented, {extra_missing} extra-doc flag(s) missing",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
