#!/bin/sh
# clang-tidy driver for the lint job and the `tidy` CMake target.
#
#   run_clang_tidy.sh <build-dir> [git-range]
#
# <build-dir> must hold compile_commands.json (the top-level CMakeLists
# exports it). With a git-range (e.g. `origin/main...HEAD`, as the CI lint
# job passes on pull requests), only the changed src/**.cc files are
# linted; without one, every src/**.cc in the tree is. Headers are covered
# transitively through HeaderFilterRegex in .clang-tidy.
#
# Exit: 0 clean (or nothing to lint), nonzero on findings in the
# WarningsAsErrors set or tooling failure.
set -u

build_dir=${1:?usage: run_clang_tidy.sh <build-dir> [git-range]}
range=${2:-}

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: no compile_commands.json in $build_dir" >&2
  echo "(configure with cmake first; CMAKE_EXPORT_COMPILE_COMMANDS is ON)" >&2
  exit 1
fi

if [ -n "$range" ]; then
  files=$(git diff --name-only --diff-filter=d "$range" -- 'src/*.cc' 'src/**/*.cc')
else
  files=$(find src -name '*.cc' | sort)
fi

if [ -z "$files" ]; then
  echo "run_clang_tidy: no source files to lint"
  exit 0
fi

echo "run_clang_tidy: linting:"
echo "$files" | sed 's/^/  /'

# shellcheck disable=SC2086  # word-splitting the file list is intended
exec clang-tidy -p "$build_dir" --quiet $files
