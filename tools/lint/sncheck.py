#!/usr/bin/env python3
"""sncheck — project-invariant linter for the sncube tree.

Enforces invariants no off-the-shelf checker knows about, as compile-time
(well, lint-time) facts instead of code-review folklore. Rules:

  wall-clock       src/core, src/io, src/net, src/obs, src/refresh must not
                   read host time (system_clock/steady_clock/time()/...).
                   Simulated time flows only through the BSP clock
                   (Comm::Charge*) and DiskModel; a host-clock read in a
                   simulation-charged path silently corrupts every figure, a
                   host-clock read in src/obs would make traces
                   nondeterministic (golden-file tested), and a host-clock
                   read in src/refresh (e.g. a timed retry loop) would make
                   refresh chaos trials unreplayable. (src/serve measures real serving latency and is
                   exempt — serve-side traces get wall time through
                   serve/wall_clock.h; src/common/timer.h is the one
                   sanctioned wall-clock wrapper for benches.)

  raw-wire-bytes   src/net and src/serve must not memcpy/reinterpret_cast
                   raw buffer bytes outside net/wire.h. Wire buffers can be
                   truncated or hostile; all decoding goes through the
                   bounds-checked WireReader / serialize.h readers that
                   throw SncubeCorruptionError instead of reading OOB.

  typed-throw      Library code (src/**) throws only the sncube failure
                   taxonomy (Sncube*Error, ClusterAbortedError,
                   InjectedFaultError) or rethrows (`throw;`). Callers
                   catch SncubeError at API boundaries; an untyped throw
                   escapes every handler and aborts the process.

  nondeterminism   src/** must not use ambient nondeterminism
                   (std::rand/srand/random_device/mt19937/...). All
                   randomness derives from common/rng.h seeded streams so
                   runs, tests, and fault plans replay bit-for-bit.

  raw-thread       src/core, src/io, src/exec, src/hashagg must not spawn
                   raw threads
                   (std::thread / std::jthread / std::async). Intra-rank
                   parallelism goes through the exec::TaskPool runtime so
                   span accounting, determinism (stable chunk boundaries),
                   and the capability-annotated locking discipline all hold;
                   a raw thread bypasses every one of them. The pool
                   implementation itself (src/exec/task_pool.cc) is the one
                   sanctioned home of real threads.

  raw-sleep        src/serve must not sleep directly (sleep_for /
                   sleep_until / usleep / nanosleep). Every policy wait —
                   retry backoff, breaker cooldown, hedge delay — flows
                   through the ServeClock interface so a ManualServeClock
                   makes the whole failure-policy stack deterministic; an
                   ad-hoc sleep is invisible to the test clock and turns
                   pinned breaker/retry transitions back into wall-clock
                   races. The production clock implementation
                   (serve/retry_policy.cc) is the one sanctioned sleep site.

  raw-file-write   src/core, src/io, src/net, src/refresh must not open
                   files for writing directly (std::ofstream / fopen).
                   Durable bytes in those layers go through the checksummed
                   io layer
                   (io/checked_file.h, io/run_store.h) so every artifact
                   carries a CRC32C seal and every write passes the
                   DiskModel's fault-injection sites; a raw write silently
                   bypasses both. Reads (std::ifstream) are fine — they
                   can't create unsealed artifacts.

Suppression: a finding may be allowed with an inline justification on the
same line or the line above:

    // sncheck:allow(wall-clock): progress UI only, never charged to sim

The justification after the colon is mandatory; a bare allow is itself a
finding (rule `bad-suppression`). Unknown rule names are findings too.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

import argparse
import os
import re
import sys

# ---------------------------------------------------------------------------
# Rule table. `paths` are path-prefix filters relative to the repo root (POSIX
# separators); `exempt` names exact relative paths the rule never applies to.
# `pattern` is matched against comment- and string-stripped code lines.

RULES = [
    {
        "id": "wall-clock",
        "paths": ("src/core/", "src/io/", "src/net/", "src/obs/",
                  "src/refresh/"),
        "exempt": (),
        "pattern": re.compile(
            r"system_clock|steady_clock|high_resolution_clock"
            r"|\bclock_gettime\b|\bgettimeofday\b|\bclock\s*\("
            r"|std::time\b|[^\w.:]time\s*\(\s*(?:NULL|nullptr|0|&)"
        ),
        "message": "host clock in a simulation-charged path; simulated time "
                   "must flow through the BSP clock / DiskModel",
    },
    {
        "id": "raw-wire-bytes",
        "paths": ("src/net/", "src/serve/"),
        "exempt": ("src/net/wire.h",),
        "pattern": re.compile(r"\bmemcpy\s*\(|\breinterpret_cast\s*<"),
        "message": "raw byte reinterpretation outside net/wire.h; use the "
                   "bounds-checked WireReader/serialize readers",
    },
    {
        "id": "typed-throw",
        "paths": ("src/",),
        "exempt": (),
        # `throw <something>` where <something> is neither empty (rethrow)
        # nor one of the sncube failure types (optionally namespace-
        # qualified). `[^;\s]` catches non-identifier throws too (throw 42).
        "pattern": re.compile(
            r"\bthrow\s+(?!(?:::)?(?:sncube::)?"
            r"(?:Sncube|Cluster|InjectedFault)\w*)[^;\s]"
        ),
        "message": "library code must throw the sncube failure taxonomy "
                   "(Sncube*Error / ClusterAbortedError / InjectedFaultError) "
                   "or rethrow with `throw;`",
    },
    {
        "id": "nondeterminism",
        "paths": ("src/",),
        "exempt": (),
        "pattern": re.compile(
            r"\bstd::rand\b|\bsrand\s*\(|\brandom_device\b|\bmt19937"
            r"|\brand\s*\(\s*\)"
        ),
        "message": "ambient nondeterminism in library code; use the seeded "
                   "streams in common/rng.h so runs replay bit-for-bit",
    },
    {
        "id": "raw-thread",
        "paths": ("src/core/", "src/io/", "src/exec/", "src/hashagg/"),
        # The pool implementation is where the real threads are supposed to
        # live — all other intra-rank parallelism rides on exec::TaskPool.
        # (The header declares the worker vector; the .cc spawns them.)
        "exempt": ("src/exec/task_pool.cc", "src/exec/task_pool.h"),
        "pattern": re.compile(
            r"\bstd::thread\b|\bstd::jthread\b|\bstd::async\b"
        ),
        "message": "raw thread outside the exec runtime; use exec::TaskPool "
                   "(ParallelFor / TaskGroup) so span charging, determinism, "
                   "and the locking discipline hold",
    },
    {
        "id": "raw-sleep",
        "paths": ("src/serve/",),
        # The production ServeClock is where the one real sleep lives — all
        # other waiting goes through ServeClock::SleepMicros so the manual
        # test clock sees it.
        "exempt": ("src/serve/retry_policy.cc",),
        "pattern": re.compile(
            r"\bsleep_for\s*\(|\bsleep_until\s*\(|\busleep\s*\("
            r"|\bnanosleep\s*\("
        ),
        "message": "raw sleep in the serving tier; route waits through "
                   "ServeClock::SleepMicros (serve/retry_policy.h) so "
                   "retry/breaker/hedge timing stays deterministic under "
                   "the manual test clock",
    },
    {
        "id": "raw-file-write",
        "paths": ("src/core/", "src/io/", "src/net/", "src/refresh/"),
        # The checksummed io layer is where the raw writes are supposed to
        # live — everything else goes through it.
        "exempt": ("src/io/checked_file.cc",),
        "pattern": re.compile(r"\bofstream\b|\bfopen\s*\("),
        "message": "raw file write outside the checksummed io layer; use "
                   "io/checked_file.h (sealed files / manifest lines) or "
                   "io/run_store.h so the artifact is CRC-sealed and the "
                   "write passes the fault-injection sites",
    },
]

RULE_IDS = {rule["id"] for rule in RULES}

# Rules owned by the AST analyzer (sncheck_ast.py). They share this file's
# suppression grammar, so their ids must be recognized here or every
# `// sncheck:allow(<ast-rule>)` comment would be flagged bad-suppression.
AST_RULE_IDS = {"lock-order", "unordered-iter", "clock-domain",
                "blocking-under-lock"}
RULE_IDS |= AST_RULE_IDS

ALLOW_RE = re.compile(r"//\s*sncheck:allow\(([^)]*)\)(:?)\s*(.*)")

SOURCE_EXTS = (".h", ".cc")


def strip_code(text):
    """Blank out comment and string-literal contents, preserving line
    structure, so rule patterns only ever match real code tokens."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def parse_suppressions(raw_lines):
    """Returns ({line_no: set(rule_ids)}, [findings]) from sncheck:allow
    comments. A suppression covers its own line and the next line (so it can
    sit above the code it excuses)."""
    allowed = {}
    findings = []
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if m is None:
            continue
        rules_field, colon, justification = m.groups()
        rules = {r.strip() for r in rules_field.split(",") if r.strip()}
        bad = rules - RULE_IDS
        if bad:
            findings.append((idx, "bad-suppression",
                             "unknown rule(s) in sncheck:allow: "
                             + ", ".join(sorted(bad))))
            rules -= bad
        if colon != ":" or not justification.strip():
            findings.append((idx, "bad-suppression",
                             "sncheck:allow requires a justification: "
                             "`// sncheck:allow(<rule>): <why this is safe>`"))
            continue  # malformed allow suppresses nothing
        for line_no in (idx, idx + 1):
            allowed.setdefault(line_no, set()).update(rules)
    return allowed, findings


def applicable_rules(rel_path):
    for rule in RULES:
        if rel_path in rule["exempt"]:
            continue
        if any(rel_path.startswith(p) for p in rule["paths"]):
            yield rule


def check_file(root, rel_path):
    """Returns a list of (line_no, rule_id, message) findings."""
    rules = list(applicable_rules(rel_path))
    with open(os.path.join(root, rel_path), encoding="utf-8") as f:
        text = f.read()
    raw_lines = text.splitlines()
    allowed, findings = parse_suppressions(raw_lines)
    if rules:
        code_lines = strip_code(text).splitlines()
        for idx, code in enumerate(code_lines, start=1):
            for rule in rules:
                if not rule["pattern"].search(code):
                    continue
                if rule["id"] in allowed.get(idx, set()):
                    continue
                findings.append((idx, rule["id"], rule["message"]))
    return findings


def iter_source_files(root):
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for name in sorted(filenames):
            if name.endswith(SOURCE_EXTS):
                full = os.path.join(dirpath, name)
                yield os.path.relpath(full, root).replace(os.sep, "/")


def main(argv):
    parser = argparse.ArgumentParser(
        prog="sncheck", description="sncube project-invariant linter")
    parser.add_argument("--root", default=".",
                        help="repo root (scans <root>/src)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and exit")
    parser.add_argument("files", nargs="*",
                        help="restrict to these root-relative files "
                             "(default: all of src/)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule['id']}: {rule['message']}")
        return 0

    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"sncheck: no src/ under --root {root}", file=sys.stderr)
        return 2

    if args.files:
        rel_paths = [p.replace(os.sep, "/") for p in args.files
                     if p.endswith(SOURCE_EXTS)]
    else:
        rel_paths = list(iter_source_files(root))

    total = 0
    for rel_path in rel_paths:
        if not os.path.isfile(os.path.join(root, rel_path)):
            print(f"sncheck: no such file: {rel_path}", file=sys.stderr)
            return 2
        for line_no, rule_id, message in sorted(check_file(root, rel_path)):
            print(f"{rel_path}:{line_no}: [{rule_id}] {message}")
            total += 1
    if total:
        print(f"sncheck: {total} finding(s) in {len(rel_paths)} file(s) "
              f"checked", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
