#!/usr/bin/env python3
"""Self-test for sncheck: the pass tree must be clean, and every EXPECT
marker in the fail tree must produce exactly one finding of the marked rule
on that line (plus the bad-suppression findings, which mark their own
lines). Run via ctest (`sncheck_selftest`) or directly."""

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
SNCHECK = os.path.join(HERE, "sncheck.py")
FINDING_RE = re.compile(r"^(?P<file>[^:]+):(?P<line>\d+): \[(?P<rule>[\w-]+)\]")
# EXPECT markers live in fixture comments: `// EXPECT <rule-id>` on the line
# the finding must anchor to. bad-suppression findings are expected on the
# allow-comment lines themselves, marked the same way.
EXPECT_RE = re.compile(r"EXPECT\s+([\w-]+)")

failures = []


def run_sncheck(tree):
    proc = subprocess.run(
        [sys.executable, SNCHECK, "--root", os.path.join(HERE, "testdata", tree)],
        capture_output=True, text=True)
    findings = set()
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.add((m.group("file"), int(m.group("line")), m.group("rule")))
        elif line.strip():
            failures.append(f"{tree}: unparseable sncheck output line: {line!r}")
    return proc.returncode, findings


def expected_findings(tree):
    expected = set()
    root = os.path.join(HERE, "testdata", tree)
    for dirpath, _dirs, names in os.walk(root):
        for name in names:
            full = os.path.join(dirpath, name)
            rel = os.path.relpath(full, root).replace(os.sep, "/")
            with open(full, encoding="utf-8") as f:
                for line_no, line in enumerate(f, start=1):
                    for rule in EXPECT_RE.findall(line):
                        expected.add((rel, line_no, rule))
    return expected


def check(condition, message):
    if not condition:
        failures.append(message)


# --- pass tree: clean exit, no findings ------------------------------------
rc, findings = run_sncheck("pass_tree")
check(rc == 0, f"pass_tree: expected exit 0, got {rc}")
check(not findings, f"pass_tree: unexpected findings: {sorted(findings)}")

# --- fail tree: exit 1 and exactly the EXPECT-marked findings ---------------
rc, findings = run_sncheck("fail_tree")
check(rc == 1, f"fail_tree: expected exit 1, got {rc}")
expected = expected_findings("fail_tree")
# The malformed-suppression fixture raises two bad-suppression findings on
# the allow lines themselves; they carry no EXPECT marker (an EXPECT inside
# the allow comment would change what is being tested), so add them here.
expected.add(("src/io/bad_suppression.cc", 9, "bad-suppression"))
expected.add(("src/io/bad_suppression.cc", 11, "bad-suppression"))
check(findings == expected,
      "fail_tree mismatch:\n  missing: %s\n  extra:   %s" % (
          sorted(expected - findings), sorted(findings - expected)))

# --- CLI: single-file mode and --list-rules ---------------------------------
proc = subprocess.run(
    [sys.executable, SNCHECK, "--root", os.path.join(HERE, "testdata", "fail_tree"),
     "src/core/wall_clock_bad.cc"], capture_output=True, text=True)
check(proc.returncode == 1, "single-file mode: expected exit 1")
check(proc.stdout.count("[wall-clock]") == 2,
      f"single-file mode: expected 2 wall-clock findings, got:\n{proc.stdout}")

proc = subprocess.run([sys.executable, SNCHECK, "--list-rules"],
                      capture_output=True, text=True)
check(proc.returncode == 0, "--list-rules: expected exit 0")
for rule in ("wall-clock", "raw-wire-bytes", "typed-throw", "nondeterminism",
             "raw-thread", "raw-file-write"):
    check(rule in proc.stdout, f"--list-rules missing {rule}")

if failures:
    print("sncheck_test: FAIL")
    for f in failures:
        print(" -", f)
    sys.exit(1)
print("sncheck_test: OK")
