#!/usr/bin/env python3
"""Self-test for sncheck_ast: the ast_pass_tree must be clean (including a
working suppression), and every EXPECT marker in ast_fail_tree must produce
exactly one finding of the marked rule on that line — the set covers all
four rule families, the cross-TU three-lock cycle, the declared-hierarchy
contradictions, and the interprocedural clock/blocking arms.

The internal frontend is pinned exactly. When clang.cindex and libclang are
importable (the CI lint job), the cindex frontend is additionally exercised
against compile databases generated on the fly: the pass tree must stay
clean and every internal-frontend expectation must also be found by cindex.
When cindex is unavailable the skip/fail exit codes (77, and 2 under --ci)
are pinned instead. Run via ctest (`sncheck_ast_selftest`) or directly."""

import json
import os
import re
import shutil
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
SNCHECK_AST = os.path.join(HERE, "sncheck_ast.py")
FINDING_RE = re.compile(r"^(?P<file>[^:]+):(?P<line>\d+): \[(?P<rule>[\w-]+)\]")
EXPECT_RE = re.compile(r"EXPECT\s+([\w-]+)")

failures = []


def check(condition, message):
    if not condition:
        failures.append(message)


def run_ast(tree, *extra):
    proc = subprocess.run(
        [sys.executable, SNCHECK_AST,
         "--root", os.path.join(HERE, "testdata", tree), *extra],
        capture_output=True, text=True)
    findings = set()
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.add((m.group("file"), int(m.group("line")),
                          m.group("rule")))
        elif line.strip():
            failures.append(
                f"{tree}: unparseable sncheck_ast output line: {line!r}")
    return proc, findings


def expected_findings(tree):
    expected = set()
    root = os.path.join(HERE, "testdata", tree)
    for dirpath, _dirs, names in os.walk(root):
        for name in names:
            full = os.path.join(dirpath, name)
            rel = os.path.relpath(full, root).replace(os.sep, "/")
            with open(full, encoding="utf-8") as f:
                for line_no, line in enumerate(f, start=1):
                    for rule in EXPECT_RE.findall(line):
                        expected.add((rel, line_no, rule))
    return expected


def cindex_available():
    try:
        import clang.cindex as ci
        ci.Index.create()
        return True
    except Exception:
        return False


def write_compile_db(tree, out_dir):
    """Minimal compile_commands.json over the fixture tree's .cc files."""
    root = os.path.join(HERE, "testdata", tree)
    clangxx = shutil.which("clang++") or "clang++"
    entries = []
    for dirpath, _dirs, names in os.walk(root):
        for name in names:
            if not name.endswith(".cc"):
                continue
            rel = os.path.relpath(os.path.join(dirpath, name), root)
            entries.append({
                "directory": root,
                "file": os.path.join(root, rel),
                "command": f"{clangxx} -std=c++20 "
                           f"-I{os.path.join(root, 'src')} -c {rel}",
            })
    path = os.path.join(out_dir, "compile_commands.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump(entries, f, indent=1)
    return path


# --- internal frontend: pass tree clean, fail tree exact ---------------------
proc, findings = run_ast("ast_pass_tree", "--frontend", "internal")
check(proc.returncode == 0,
      f"ast_pass_tree: expected exit 0, got {proc.returncode}")
check(not findings, f"ast_pass_tree: unexpected findings: {sorted(findings)}")

expected = expected_findings("ast_fail_tree")
check(expected, "ast_fail_tree has no EXPECT markers — fixture tree missing?")
with tempfile.TemporaryDirectory() as tmp:
    report_path = os.path.join(tmp, "report.json")
    proc, findings = run_ast("ast_fail_tree", "--frontend", "internal",
                             "--json-out", report_path)
    check(proc.returncode == 1,
          f"ast_fail_tree: expected exit 1, got {proc.returncode}")
    check(findings == expected,
          "ast_fail_tree mismatch:\n  missing: %s\n  extra:   %s" % (
              sorted(expected - findings), sorted(findings - expected)))
    with open(report_path, encoding="utf-8") as f:
        report = json.load(f)
    check(report["frontend"] == "internal",
          f"json report frontend: {report['frontend']!r}")
    check(report["unsuppressed"] == len(expected),
          f"json report unsuppressed {report['unsuppressed']} != "
          f"{len(expected)}")

# The pass tree's suppressed finding must still appear in the JSON report —
# suppression hides it from the console/exit code, not from the record.
with tempfile.TemporaryDirectory() as tmp:
    report_path = os.path.join(tmp, "report.json")
    proc, _ = run_ast("ast_pass_tree", "--frontend", "internal",
                      "--json-out", report_path)
    with open(report_path, encoding="utf-8") as f:
        report = json.load(f)
    suppressed = [r for r in report["findings"] if r["suppressed"]]
    check(len(suppressed) == 1 and suppressed[0]["rule"] == "unordered-iter",
          f"ast_pass_tree: expected exactly 1 suppressed unordered-iter "
          f"finding in the JSON report, got {report['findings']}")

# --- rule listing ------------------------------------------------------------
proc = subprocess.run([sys.executable, SNCHECK_AST, "--list-rules"],
                      capture_output=True, text=True)
check(proc.returncode == 0, "--list-rules: expected exit 0")
for rule in ("lock-order", "unordered-iter", "clock-domain",
             "blocking-under-lock"):
    check(rule in proc.stdout, f"--list-rules missing {rule}")

# --- cindex frontend: exercise when available, pin skip codes when not -------
if cindex_available():
    with tempfile.TemporaryDirectory() as tmp:
        db = write_compile_db("ast_pass_tree", tmp)
        proc, findings = run_ast("ast_pass_tree", "--frontend", "cindex",
                                 "--compile-commands", db)
        check(proc.returncode == 0,
              f"cindex ast_pass_tree: expected exit 0, got {proc.returncode}"
              f"\nstderr: {proc.stderr}")
        check(not findings,
              f"cindex ast_pass_tree: unexpected findings: {sorted(findings)}")
    with tempfile.TemporaryDirectory() as tmp:
        db = write_compile_db("ast_fail_tree", tmp)
        proc, findings = run_ast("ast_fail_tree", "--frontend", "cindex",
                                 "--compile-commands", db)
        check(proc.returncode == 1,
              f"cindex ast_fail_tree: expected exit 1, got {proc.returncode}"
              f"\nstderr: {proc.stderr}")
        missing = expected - findings
        check(not missing,
              f"cindex ast_fail_tree: expected findings not produced: "
              f"{sorted(missing)}")
else:
    proc, _ = run_ast("ast_pass_tree", "--frontend", "cindex")
    check(proc.returncode == 77,
          f"cindex unavailable: --frontend cindex should exit 77, "
          f"got {proc.returncode}")
    check("SKIPPED" in proc.stderr,
          f"cindex skip should say SKIPPED, stderr: {proc.stderr!r}")
    proc, _ = run_ast("ast_pass_tree", "--frontend", "cindex", "--ci")
    check(proc.returncode == 2,
          f"cindex unavailable: --ci should exit 2, got {proc.returncode}")
    # auto must fall back to the internal frontend and still be clean.
    proc, findings = run_ast("ast_pass_tree", "--frontend", "auto")
    check(proc.returncode == 0 and not findings,
          f"auto fallback: expected clean exit 0, got {proc.returncode} "
          f"with {sorted(findings)}")

if failures:
    print("sncheck_ast_test: FAIL")
    for f in failures:
        print(" -", f)
    sys.exit(1)
print("sncheck_ast_test: OK")
