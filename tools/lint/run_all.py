#!/usr/bin/env python3
"""Umbrella lint runner: one command that runs every project linter the
environment can support and fails if any of them fails.

  sncheck        — textual project-invariant rules (always runs)
  sncheck_ast    — whole-program AST rules (auto frontend: cindex when
                   libclang + compile_commands.json exist, internal parser
                   otherwise; a 77 skip from a forced cindex run counts as
                   skipped, not failed)
  check_cli_docs — README flag coverage (only when --binary points at a
                   built sncube binary)

CMake's `lint` umbrella target and developers both drive this; CI runs the
same steps individually so each gets its own log section and artifact.

Exit status: 0 when every runnable check passed, 1 otherwise.
"""

import argparse
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))


def run_step(name, cmd):
    print(f"=== {name}: {' '.join(cmd)}", flush=True)
    proc = subprocess.run(cmd)
    if proc.returncode == 77:
        print(f"=== {name}: SKIPPED (exit 77)", flush=True)
        return None
    ok = proc.returncode == 0
    print(f"=== {name}: {'OK' if ok else f'FAIL (exit {proc.returncode})'}",
          flush=True)
    return ok


def main(argv):
    p = argparse.ArgumentParser(prog="run_all", description=__doc__)
    p.add_argument("--root", default=".", help="repo root")
    p.add_argument("--binary", default=None,
                   help="built sncube binary for check_cli_docs "
                        "(omitted: that check is skipped)")
    p.add_argument("--compile-commands", default=None,
                   help="compile database handed to sncheck_ast")
    p.add_argument("--frontend", default="auto",
                   choices=("auto", "cindex", "internal"),
                   help="sncheck_ast frontend (default auto)")
    args = p.parse_args(argv)
    root = os.path.abspath(args.root)
    py = sys.executable

    results = {}
    results["sncheck"] = run_step(
        "sncheck", [py, os.path.join(HERE, "sncheck.py"), "--root", root])

    ast_cmd = [py, os.path.join(HERE, "sncheck_ast.py"), "--root", root,
               "--frontend", args.frontend]
    if args.compile_commands:
        ast_cmd += ["--compile-commands", args.compile_commands]
    results["sncheck_ast"] = run_step("sncheck_ast", ast_cmd)

    if args.binary and os.path.isfile(args.binary):
        results["check_cli_docs"] = run_step(
            "check_cli_docs",
            [py, os.path.join(HERE, "check_cli_docs.py"),
             "--binary", args.binary,
             "--readme", os.path.join(root, "README.md"),
             "--extra-docs", os.path.join(root, "DESIGN.md")])
    else:
        print("=== check_cli_docs: SKIPPED (no --binary)", flush=True)

    failed = [name for name, ok in results.items() if ok is False]
    if failed:
        print(f"run_all: FAILED: {', '.join(failed)}")
        return 1
    ran = [name for name, ok in results.items() if ok]
    print(f"run_all: OK ({', '.join(ran)})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
