#!/usr/bin/env python3
"""Self-test for check_cli_docs: the pass fixture must be clean, the fail
fixture must flag exactly the two undocumented flags, and degenerate inputs
must exit 2. Run via ctest (`check_cli_docs_selftest`) or directly."""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
CHECK = os.path.join(HERE, "check_cli_docs.py")
FIXTURES = os.path.join(HERE, "testdata", "cli_docs")

failures = []


def check(condition, message):
    if not condition:
        failures.append(message)


def run(*argv):
    return subprocess.run([sys.executable, CHECK, *argv],
                          capture_output=True, text=True)


help_txt = os.path.join(FIXTURES, "help.txt")

# --- fully documented README: clean exit ------------------------------------
proc = run("--help-text", help_txt,
           "--readme", os.path.join(FIXTURES, "readme_pass.md"))
check(proc.returncode == 0,
      f"readme_pass: expected exit 0, got {proc.returncode}:\n{proc.stdout}")

# --- two missing flags: exit 1, both named ----------------------------------
proc = run("--help-text", help_txt,
           "--readme", os.path.join(FIXTURES, "readme_fail.md"))
check(proc.returncode == 1,
      f"readme_fail: expected exit 1, got {proc.returncode}")
for flag in ("--procs", "--trace-out"):
    check(f"`{flag}`" in proc.stdout,
          f"readme_fail: missing finding for {flag}:\n{proc.stdout}")
check(proc.stdout.count("not documented") == 2,
      f"readme_fail: expected exactly 2 findings:\n{proc.stdout}")

# --- extra docs, all flags documented: still clean --------------------------
design_md = os.path.join(FIXTURES, "design_extra.md")
proc = run("--help-text", help_txt,
           "--readme", os.path.join(FIXTURES, "readme_pass.md"),
           "--extra-docs", design_md)
check(proc.returncode == 0,
      f"extra pass: expected exit 0, got {proc.returncode}:\n{proc.stdout}")

# --- extra docs naming flags the README omits: distinct findings ------------
proc = run("--help-text", help_txt,
           "--readme", os.path.join(FIXTURES, "readme_fail.md"),
           "--extra-docs", design_md)
check(proc.returncode == 1,
      f"extra fail: expected exit 1, got {proc.returncode}")
for flag in ("--procs", "--trace-out"):
    check(f"`{flag}` discussed in {design_md} is missing" in proc.stdout,
          f"extra fail: missing extra-doc finding for {flag}:\n{proc.stdout}")
check(proc.stdout.count("missing from the README") == 2,
      f"extra fail: expected exactly 2 extra-doc findings:\n{proc.stdout}")

# --- degenerate inputs: usage errors, not silent passes ---------------------
proc = run("--help-text", os.path.join(FIXTURES, "no_such_file.txt"),
           "--readme", os.path.join(FIXTURES, "readme_pass.md"))
check(proc.returncode == 2, "missing help file: expected exit 2")

proc = run("--help-text", os.path.join(FIXTURES, "readme_pass.md"),
           "--readme", os.path.join(FIXTURES, "no_such_file.md"))
check(proc.returncode == 2, "missing readme: expected exit 2")

proc = run("--help-text", os.devnull,
           "--readme", os.path.join(FIXTURES, "readme_pass.md"))
check(proc.returncode == 2, "empty help text: expected exit 2")

proc = run("--help-text", help_txt,
           "--readme", os.path.join(FIXTURES, "readme_pass.md"),
           "--extra-docs", os.path.join(FIXTURES, "no_such_design.md"))
check(proc.returncode == 2, "missing extra doc: expected exit 2")

if failures:
    print("check_cli_docs_test: FAIL")
    for f in failures:
        print(" -", f)
    sys.exit(1)
print("check_cli_docs_test: OK")
