// Fixture: ad-hoc waiting in the serving tier outside the sanctioned
// ServeClock implementation. Expect one raw-sleep finding per marker-tagged
// line below — each of these waits would be invisible to a ManualServeClock
// and turn deterministic policy tests into wall-clock races.
#include <chrono>
#include <thread>

namespace sncube {

void BadBackoffLoop(int attempts) {
  for (int i = 0; i < attempts; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1 << i));  // EXPECT raw-sleep
  }
  std::this_thread::sleep_until(                                    // EXPECT raw-sleep
      std::chrono::steady_clock::now() + std::chrono::seconds(1));
  usleep(1000);                                                     // EXPECT raw-sleep
}

}  // namespace sncube
