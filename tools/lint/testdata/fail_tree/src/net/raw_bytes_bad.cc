// Fixture: raw byte reinterpretation in the wire layer outside wire.h.
// Expect two raw-wire-bytes findings.
#include <cstdint>
#include <cstring>
#include <vector>

namespace sncube {

std::uint64_t BadDecode(const std::vector<unsigned char>& buf) {
  std::uint64_t v = 0;
  std::memcpy(&v, buf.data(), sizeof(v));                    // EXPECT raw-wire-bytes
  const auto* p = reinterpret_cast<const std::uint32_t*>(buf.data());  // EXPECT raw-wire-bytes
  return v + *p;
}

}  // namespace sncube
