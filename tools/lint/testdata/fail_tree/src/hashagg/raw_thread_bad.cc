// Fixture: raw thread creation in the hash-aggregation tier. HashAggregate
// parallelizes via exec::ParallelForAuto on the rank's TaskPool; a raw
// thread would dodge span accounting and the stable chunk boundaries the
// byte-identity contract rests on.
#include <thread>

namespace sncube::hashagg {

void BadTableFill() {
  std::thread filler([] {});  // EXPECT raw-thread
  filler.join();
}

}  // namespace sncube::hashagg
