// Fixture: raw thread creation outside the pool implementation. Expect one
// raw-thread finding per marker-tagged line below.
#include <future>
#include <thread>

namespace sncube {

void BadParallelism() {
  std::thread worker([] {});                        // EXPECT raw-thread
  auto fut = std::async([] { return 1; });          // EXPECT raw-thread
  worker.join();
  (void)fut.get();
}

}  // namespace sncube
