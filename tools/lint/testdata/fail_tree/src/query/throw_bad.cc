// Fixture: untyped throws in library code. Expect two typed-throw findings;
// the bare rethrow and the SncubeError throw are allowed.
#include <stdexcept>
#include <string>

namespace sncube {

class SncubeError : public std::runtime_error {
 public:
  explicit SncubeError(const std::string& w) : std::runtime_error(w) {}
};

void BadThrows(int mode) {
  if (mode == 0) throw std::runtime_error("untyped");  // EXPECT typed-throw
  if (mode == 1) throw 42;                             // EXPECT typed-throw
  if (mode == 2) throw SncubeError("typed: fine");
  try {
    BadThrows(mode - 1);
  } catch (...) {
    throw;  // bare rethrow: fine
  }
}

}  // namespace sncube
