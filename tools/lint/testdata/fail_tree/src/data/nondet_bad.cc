// Fixture: ambient nondeterminism in library code. Expect three
// nondeterminism findings.
#include <cstdlib>
#include <random>

namespace sncube {

int BadRandomness() {
  std::random_device rd;                      // EXPECT nondeterminism
  std::mt19937_64 gen(rd());                  // EXPECT nondeterminism
  return static_cast<int>(gen()) + std::rand();  // EXPECT nondeterminism
}

}  // namespace sncube
