// Fixture: a host-clock read inside the tracing layer. Trace timestamps
// must come from a SimClockSource (the simulated BSP clock, or
// serve/wall_clock.h on the serve side) — a direct clock read here would
// break the byte-identical golden-trace guarantee.
#include <chrono>

namespace sncube::obs {

double BadTraceStamp() {
  const auto now = std::chrono::system_clock::now();  // EXPECT wall-clock
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

}  // namespace sncube::obs
