// Fixture: suppressions that don't meet the bar. Expect one bad-suppression
// finding for the missing justification (and the wall-clock finding it
// fails to excuse), plus one bad-suppression for the unknown rule name.
#include <chrono>

namespace sncube {

double BadAllows() {
  // sncheck:allow(wall-clock)
  const auto t = std::chrono::steady_clock::now();  // EXPECT wall-clock
  // sncheck:allow(no-such-rule): justification for a rule that does not exist
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace sncube
