// Fixture: direct file writes in a checksummed layer. Both the ofstream and
// the fopen bypass the CRC seal and the DiskModel fault-injection sites.
#include <cstdio>
#include <fstream>

namespace sncube {

void WriteUnsealed(const char* path) {
  std::ofstream out(path, std::ios::binary);  // EXPECT raw-file-write
  out << "no checksum on these bytes";
  std::FILE* f = std::fopen(path, "ab");  // EXPECT raw-file-write
  if (f != nullptr) std::fclose(f);
}

}  // namespace sncube
