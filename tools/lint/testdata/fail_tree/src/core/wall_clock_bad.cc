// Fixture: host-clock reads in a simulation-charged path. Expect two
// wall-clock findings on the marker-tagged lines below.
#include <chrono>
#include <ctime>

namespace sncube {

double BadSimTiming() {
  const auto t0 = std::chrono::steady_clock::now();  // EXPECT wall-clock
  const std::time_t wall = std::time(nullptr);       // EXPECT wall-clock
  return std::chrono::duration<double>(t0.time_since_epoch()).count() +
         static_cast<double>(wall);
}

}  // namespace sncube
