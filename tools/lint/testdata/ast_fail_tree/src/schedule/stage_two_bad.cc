// Second edge of the cross-TU three-lock cycle: b -> c. Harmless alone.
#include "serve/order_locks.h"

void StageTwoBad() {
  MutexLock b(g_stage_b);
  MutexLock c(g_stage_c);  // EXPECT lock-order
}
