// clock-domain fixture: a direct steady_clock read inside a sim-clock path
// (src/obs), the textbook violation the original sncheck wall-clock rule
// also catches — here it pins the AST rule's direct-read arm.
#include <chrono>

double NowSecondsDirect() {
  const auto t = std::chrono::steady_clock::now();  // EXPECT clock-domain
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
