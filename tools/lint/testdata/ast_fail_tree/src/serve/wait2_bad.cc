// blocking-under-lock fixture, condition-wait arm: Wait(queue_mu_) releases
// only queue_mu_ — pool_mu_ stays held across the whole wait, starving every
// other thread that needs it. One lock held is the normal wait protocol and
// stays clean (see the pass tree); two is the bug.
#include "common/stub_mutex.h"

class TwoPhase {
 public:
  void Drain() {
    MutexLock outer(pool_mu_);
    MutexLock inner(queue_mu_);
    cv_.Wait(queue_mu_);  // EXPECT blocking-under-lock
  }

 private:
  Mutex pool_mu_;
  Mutex queue_mu_;
  CondVar cv_;
};
