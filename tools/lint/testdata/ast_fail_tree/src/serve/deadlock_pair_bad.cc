// lock-order fixture, two-lock cycle: Forward() nests a_ -> b_ directly;
// Reverse() nests b_ -> a_ through a private helper, so one of the two
// edges exists only interprocedurally. Together they form the classic AB/BA
// deadlock; the analyzer must report BOTH edge sites of the cycle.
#include "common/stub_mutex.h"

class PairLocks {
 public:
  void Forward() {
    MutexLock la(a_);
    MutexLock lb(b_);  // EXPECT lock-order
  }

  void Reverse() {
    MutexLock lb(b_);
    TakeA();  // EXPECT lock-order
  }

 private:
  void TakeA() { MutexLock la(a_); }

  Mutex a_;
  Mutex b_;
};
