// blocking-under-lock fixture, transitive arm: Save() holds the lock and
// calls a helper that looks innocent at the call site — the fwrite is one
// hop away, so only interprocedural may-block propagation catches it.
#include <cstdio>

#include "common/stub_mutex.h"

class SpillStore {
 public:
  void Save() {
    MutexLock lock(mu_);
    WriteAll();  // EXPECT blocking-under-lock
  }

 private:
  void WriteAll() { std::fwrite(nullptr, 0, 0, nullptr); }

  Mutex mu_;
};
