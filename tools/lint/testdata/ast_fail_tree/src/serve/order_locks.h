// Three global stage locks shared by the three-TU cycle fixtures
// (src/exec/stage_one_bad.cc, src/schedule/stage_two_bad.cc,
// src/net/stage_three_bad.cc). Each TU nests one pair in an order that is
// locally harmless; only the WHOLE-PROGRAM graph closes the
// a -> b -> c -> a cycle, which is exactly what a per-file checker cannot
// see. No expectation marker here — findings anchor at acquisition sites.
#pragma once

#include "common/stub_mutex.h"

inline Mutex g_stage_a;
inline Mutex g_stage_b;
inline Mutex g_stage_c;
