// The wrapper that makes the clock-domain rule AST-grounded: the host-clock
// read lives HERE, in src/serve (outside the sim-clock paths), so no
// text-level rule that greps src/obs can see it. Only call resolution ties
// the caller in src/net to this read. This file carries no expectation
// marker — serve code may read the wall clock.
#pragma once

#include <chrono>

inline double WallSecondsForSpans() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
