// lock-order fixture, declared-hierarchy arm: h_inner is declared
// ACQUIRED_AFTER(h_outer), and Inverted() takes h_outer while already
// holding h_inner. No second thread is needed — the single observed edge
// contradicts the declaration and must be a finding on its own.
#include "common/stub_mutex.h"

inline Mutex h_outer;
inline Mutex h_inner SNCUBE_ACQUIRED_AFTER(h_outer);

void Inverted() {
  MutexLock li(h_inner);
  MutexLock lo(h_outer);  // EXPECT lock-order
}
