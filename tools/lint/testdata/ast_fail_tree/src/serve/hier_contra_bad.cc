// lock-order fixture, contradictory-declaration arm: d_b is declared both
// AFTER and BEFORE d_a, so the hierarchy is unsatisfiable before any code
// runs. The finding anchors at the declaration itself.
#include "common/stub_mutex.h"

inline Mutex d_a;
inline Mutex d_b SNCUBE_ACQUIRED_AFTER(d_a) SNCUBE_ACQUIRED_BEFORE(d_a);  // EXPECT lock-order
