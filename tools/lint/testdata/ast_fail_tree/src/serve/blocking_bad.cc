// blocking-under-lock fixtures, direct arm: disk syscalls, sleeps, and a
// Comm-style collective issued while a Mutex is held.
#include <unistd.h>

#include "common/stub_mutex.h"

struct CommHandle {
  void Barrier() {}
};

class Journal {
 public:
  void Flush() {
    MutexLock lock(mu_);
    fsync(0);  // EXPECT blocking-under-lock
  }

  void Backoff() {
    MutexLock lock(mu_);
    usleep(100);  // EXPECT blocking-under-lock
  }

  void Sync(CommHandle& comm) {
    MutexLock lock(mu_);
    comm.Barrier();  // EXPECT blocking-under-lock
  }

 private:
  Mutex mu_;
};
