// Fixture: the hash-aggregation tier is a deterministic path — its tables
// feed cube bytes, so an unsuppressed unordered container, and any
// traversal of one, must be flagged. (The real engine's lookup-only table
// in src/hashagg/concurrent_map.h carries the suppression; drained rows are
// sorted before emission.)
#include <cstdint>
#include <unordered_map>

namespace sncube::hashagg {

struct LeakyStripe {
  std::unordered_map<std::uint64_t, long> table;  // EXPECT unordered-iter
};

long EmitInTableOrder(const LeakyStripe& s) {
  long sum = 0;
  for (const auto& kv : s.table) {  // EXPECT unordered-iter
    sum += kv.second;
  }
  return sum;
}

}  // namespace sncube::hashagg
