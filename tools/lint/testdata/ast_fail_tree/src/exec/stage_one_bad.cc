// First edge of the cross-TU three-lock cycle: a -> b. Harmless alone.
#include "serve/order_locks.h"

void StageOneBad() {
  MutexLock a(g_stage_a);
  MutexLock b(g_stage_b);  // EXPECT lock-order
}
