// clock-domain fixture, wrapper arm: sim-clock code (src/net) reaching the
// host clock THROUGH a helper defined in src/serve. A grep of this file
// shows no clock read at all — only whole-program call resolution flags it.
#include "serve/wall_util.h"

double StampPacket() {
  const double t = WallSecondsForSpans();  // EXPECT clock-domain
  return t;
}
