// Closing edge of the cross-TU three-lock cycle: c -> a. With the other two
// TUs this completes g_stage_a -> g_stage_b -> g_stage_c -> g_stage_a.
#include "serve/order_locks.h"

void StageThreeBad() {
  MutexLock c(g_stage_c);
  MutexLock a(g_stage_a);  // EXPECT lock-order
}
