// blocking-under-lock fixture, fstream arm: constructing a file stream is
// opening a file — a disk operation — and here it happens under a lock.
#include <fstream>
#include <string>

#include "common/stub_mutex.h"

class SealedLog {
 public:
  void Append(const std::string& path) {
    MutexLock lock(mu_);
    std::ofstream out(path);  // EXPECT blocking-under-lock
    out << 1;
  }

 private:
  Mutex mu_;
};
