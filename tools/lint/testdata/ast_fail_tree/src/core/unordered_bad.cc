// unordered-iter fixtures: every way an unordered container can leak
// iteration order into a deterministic path — member declaration, member
// traversal, local declaration, iterator-based traversal via .begin().
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct ViewTable {
  std::unordered_map<int, double> cells;  // EXPECT unordered-iter
};

double SumCells(const ViewTable& t) {
  double sum = 0;
  for (const auto& kv : t.cells) {  // EXPECT unordered-iter
    sum += kv.second;
  }
  return sum;
}

int CountDistinct(const std::vector<int>& xs) {
  std::unordered_set<int> seen(xs.begin(), xs.end());  // EXPECT unordered-iter
  int n = 0;
  auto it = seen.begin();  // EXPECT unordered-iter
  while (it != seen.end()) {
    ++n;
    ++it;
  }
  return n;
}
