// Clean deterministic-path file: ordered containers everywhere an iteration
// happens, plus one lookup-only unordered table whose declaration carries a
// justified suppression — the pass tree pins that the allow grammar works.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

struct Catalog {
  std::map<int, std::string> names;
  // sncheck:allow(unordered-iter): lookup-only interning table, never iterated; inserts and finds only
  std::unordered_map<std::string, int> ids;
};

int TotalLen(const Catalog& c) {
  int n = 0;
  for (const auto& kv : c.names) {
    n += static_cast<int>(kv.second.size());
  }
  return n;
}

int IdOf(Catalog& c, const std::string& name) {
  const auto it = c.ids.find(name);
  if (it != c.ids.end()) return it->second;
  const int id = static_cast<int>(c.ids.size());
  c.ids.emplace(name, id);
  return id;
}
