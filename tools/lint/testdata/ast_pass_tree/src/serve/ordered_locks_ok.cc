// Clean serve-tier locking: nesting that FOLLOWS the declared hierarchy, a
// single-lock condition wait (the normal protocol), and blocking work done
// strictly after the lock scope closes.
#include <unistd.h>

#include "common/stub_mutex.h"

inline Mutex g_route_layer;
inline Mutex g_cache_layer SNCUBE_ACQUIRED_AFTER(g_route_layer);

class PassRouter {
 public:
  void Lookup() {
    MutexLock route(g_route_layer);
    MutexLock cache(g_cache_layer);
  }

  void WaitIdle() {
    MutexLock lock(mu_);
    while (busy_) cv_.Wait(mu_);
  }

  void FlushUnlocked() {
    {
      MutexLock lock(mu_);
      busy_ = false;
    }
    fsync(0);
  }

 private:
  Mutex mu_;
  CondVar cv_;
  bool busy_ = true;
};
