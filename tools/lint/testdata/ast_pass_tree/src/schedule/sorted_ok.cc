// Clean membership-set idiom for deterministic paths: sorted vector with
// binary_search instead of an unordered_set (mirrors src/schedule/partial.cc).
#include <algorithm>
#include <vector>

std::vector<int> SortedSet(const std::vector<int>& xs) {
  std::vector<int> out(xs);
  std::sort(out.begin(), out.end());
  return out;
}

bool SetContains(const std::vector<int>& sorted_set, int x) {
  return std::binary_search(sorted_set.begin(), sorted_set.end(), x);
}

int CountMembers(const std::vector<int>& universe,
                 const std::vector<int>& chosen) {
  const std::vector<int> wanted = SortedSet(chosen);
  int n = 0;
  for (int x : universe) {
    if (SetContains(wanted, x)) ++n;
  }
  return n;
}
