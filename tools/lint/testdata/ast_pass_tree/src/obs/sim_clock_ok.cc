// Clean sim-clock file: time comes from an injected clock object, and the
// only host-clock contact goes through the exempt common/timer.h wrapper.
#include "common/timer.h"

class SimClock {
 public:
  double NowSeconds() const { return now_s_; }
  void Advance(double dt) { now_s_ += dt; }

 private:
  double now_s_ = 0.0;
};

double StampSpan(const SimClock& clock) { return clock.NowSeconds(); }

double EpochAnchor() {
  const double t = HostSeconds();
  return t;
}
