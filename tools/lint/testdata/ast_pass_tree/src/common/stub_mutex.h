// Stand-ins for src/common/{mutex,thread_annotations}.h, just enough for
// the fixture trees: the internal frontend reads them textually (ACQ_RE
// keys off the MutexLock spelling, HIER_ATTR_RE off the SNCUBE_ACQUIRED_*
// macros) and the cindex frontend in CI actually compiles them. The macros
// expand to nothing — the analyzer parses the annotation TEXT, it never
// needs clang's attribute semantics.
#pragma once

#define SNCUBE_ACQUIRED_AFTER(...)
#define SNCUBE_ACQUIRED_BEFORE(...)

class Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;
  void lock() {}
  void unlock() {}
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

class CondVar {
 public:
  void Wait(Mutex&) {}
  void NotifyAll() {}
};
