// Mirror of the repo's src/common/timer.h role: the one sanctioned
// host-clock wrapper, exempt from the clock-domain rule (CLOCK_EXEMPT).
// Sim-clock code calling through this file must stay clean.
#pragma once

#include <chrono>

inline double HostSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
