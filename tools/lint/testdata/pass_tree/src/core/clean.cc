// Fixture: a compliant simulation-path file. Mentions of steady_clock and
// memcpy in comments (like this one) and in string literals must NOT fire —
// sncheck matches code tokens only.
#include <cstdint>
#include <string>

namespace sncube {

// The sim clock, not std::chrono::steady_clock, is the time source here.
double ChargeLikeThePaperDoes(std::uint64_t records) {
  const std::string doc = "never memcpy wire bytes; see reinterpret_cast ban";
  return static_cast<double>(records) * 1e-8 + static_cast<double>(doc.size());
}

}  // namespace sncube
