// Fixture: a justified suppression. The allow comment names the rule and
// carries a reason, so the wall-clock hit on the next line is excused.
#include <chrono>

namespace sncube {

double HostSecondsForProgressBar() {
  // sncheck:allow(wall-clock): progress display only; never charged to the sim clock
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

}  // namespace sncube
