// Fixture: reads are not writes, and a justified allow excuses a raw write.
#include <fstream>
#include <string>

namespace sncube {

std::string ReadBack(const char* path) {
  std::ifstream in(path, std::ios::binary);  // reads never create artifacts
  std::string all;
  std::getline(in, all, '\0');
  return all;
}

void DumpDebugState(const char* path, const std::string& state) {
  // sncheck:allow(raw-file-write): throwaway debug dump, never read back by the system
  std::ofstream out(path, std::ios::trunc);
  out << state;
}

}  // namespace sncube
