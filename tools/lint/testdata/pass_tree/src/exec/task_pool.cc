// Fixture: the exempt pool implementation path. std::thread here must NOT
// be a finding — src/exec/task_pool.cc is the sanctioned home of real
// threads (exact-path exemption in the raw-thread rule).
#include <thread>
#include <vector>

namespace sncube::exec {

void FixturePoolSpawn(std::vector<std::thread>& workers) {
  workers.emplace_back([] {});
}

}  // namespace sncube::exec
