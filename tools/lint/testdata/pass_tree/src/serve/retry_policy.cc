// Fixture: the exempt production-clock path. sleep_for here must NOT be a
// finding — src/serve/retry_policy.cc is the one sanctioned sleep site (the
// WallServeClock implementation behind ServeClock::SleepMicros).
#include <chrono>
#include <thread>

namespace sncube {

void FixtureWallClockSleep(unsigned long long us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace sncube
