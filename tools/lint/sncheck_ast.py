#!/usr/bin/env python3
"""sncheck_ast — AST-grounded whole-program analyzer for the sncube tree.

Where sncheck (same directory) enforces per-line invariants with regexes,
this tool builds a whole-program facts database — every lock acquisition
with the set of locks already held, every call edge, every clock read,
every unordered-container declaration and traversal — and checks four rule
families a regex cannot see:

  lock-order           Collect every MutexLock/lock_guard/unique_lock
                       acquisition site across all TUs and build the global
                       acquired-while-held graph (intra-function nesting
                       plus interprocedural edges: a call made under lock L
                       contributes L -> every lock the callee transitively
                       acquires). Any cycle is a potential deadlock; any
                       edge contradicting the declared hierarchy
                       (SNCUBE_ACQUIRED_AFTER / SNCUBE_ACQUIRED_BEFORE,
                       see common/thread_annotations.h and
                       serve/lock_order.h) is a finding even without a
                       second thread to complete the cycle. Lock identity
                       is instance-blind — keyed `Class::member` (or the
                       global's name) — so self-edges are ignored: nesting
                       two *instances* of the same class's lock (two cache
                       shards, two slots) is indistinguishable from
                       re-acquiring one, and the former is legitimate.

  unordered-iter       std::unordered_{map,set,multimap,multiset} iteration
                       order is unspecified and can leak into cube bytes.
                       In the deterministic paths (src/core, src/exec,
                       src/schedule, src/lattice, src/hashagg) this flags (a) every
                       declaration of an unordered container — so a
                       lookup-only table carries an explicit suppression
                       saying it is never traversed — and (b) every
                       range-for / .begin() traversal of one, including a
                       traversal in a deterministic file of an unordered
                       member declared elsewhere (e.g. CubeResult::views).

  clock-domain         AST-call-resolution upgrade of sncheck's wall-clock
                       regex: in the sim-clock paths (src/core, src/io,
                       src/net, src/obs) a host-clock read is a finding
                       even when it is reached through a wrapper defined
                       outside those paths — the call site is flagged when
                       any callee candidate (virtual calls use any-override
                       semantics) transitively reaches steady_clock::now /
                       system_clock::now / clock_gettime / gettimeofday.
                       Direct reads are always flagged; call sites are
                       flagged only when the callee lives outside the
                       protected paths (otherwise the callee's own direct
                       finding already covers it). src/common/timer.h is
                       the sanctioned wall-clock wrapper and is exempt.

  blocking-under-lock  In src/serve, src/net, src/io a thread holding a
                       Mutex must not block: disk I/O (sealed-file helpers,
                       fopen/fread/fwrite/fsync, fstream construction),
                       Comm collectives (AllToAllv, Broadcast, Gather,
                       AllGather, AllReduce*, Barrier, ArriveAndCheck),
                       sleeps (sleep_for/until, usleep, nanosleep,
                       SleepMicros), and thread joins are flagged when
                       executed — directly or through a callee that may
                       transitively block — while any lock is held.
                       CondVar::Wait is exempt with one lock held (that is
                       what condition variables are for) but is a finding
                       with two or more locks held: the extra lock stays
                       held across the wait.

Frontends. The canonical frontend is clang.cindex over the repo's exported
compile_commands.json (`--frontend cindex`; CMAKE_EXPORT_COMPILE_COMMANDS
is ON at the top level). Because libclang is not installed everywhere the
tree must lint, the tool also carries a self-contained internal frontend —
a brace-accurate token-level C++ reader — that produces the same facts IR,
so `--frontend auto` (the default) falls back to it with a note when
cindex is unavailable. Both frontends feed the one rule engine above, and
the fixture self-test (sncheck_ast_test.py) pins their agreement. The
declared lock hierarchy and the suppression comments are always parsed
textually, identically in both frontends.

Suppression reuses sncheck's grammar — a justification is mandatory:

    // sncheck:allow(lock-order): join after live_workers_==0; workers are
    // past their last touch of server state, so this cannot deadlock

A suppression covers its own line and the next. Malformed or unknown-rule
allows are reported by sncheck itself (rule `bad-suppression`), not
duplicated here.

Exit status: 0 clean, 1 findings, 2 usage error (or missing frontend
under --ci, which is how CI fails hard instead of silently skipping),
77 skipped (`--frontend cindex` forced but libclang or the compile
database is unavailable, and not --ci).
"""

import argparse
import bisect
import json
import os
import re
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)
import sncheck  # noqa: E402  (strip_code + suppression grammar live there)

EXIT_SKIP = 77

RULE_DOCS = {
    "lock-order": "acquired-while-held cycle or declared-hierarchy "
                  "contradiction in the global lock graph",
    "unordered-iter": "unordered container declared or traversed in a "
                      "deterministic path; iteration order can leak into "
                      "cube bytes",
    "clock-domain": "host clock reachable (directly or through wrappers) "
                    "from sim-clock code",
    "blocking-under-lock": "blocking operation (I/O, collective, sleep, "
                           "join) while holding a Mutex in the serving/"
                           "net/io tier",
}
AST_RULE_IDS = frozenset(RULE_DOCS)

DETERMINISTIC_PATHS = ("src/core/", "src/exec/", "src/schedule/",
                       "src/lattice/", "src/hashagg/")
CLOCK_PATHS = ("src/core/", "src/io/", "src/net/", "src/obs/")
CLOCK_EXEMPT = ("src/common/timer.h",)
BLOCKING_PATHS = ("src/serve/", "src/net/", "src/io/")
# The wrapper layer itself is mechanism, not use: CondVar::Wait's internal
# adopt-lock dance and MutexLock's own ctor would read as acquisitions.
FACTS_EXEMPT = ("src/common/mutex.h",)

CLOCK_READ_RE = re.compile(
    r"steady_clock\s*::\s*now|system_clock\s*::\s*now"
    r"|high_resolution_clock\s*::\s*now|\bclock_gettime\b|\bgettimeofday\b")

BLOCKING_NAMES = frozenset({
    # sleeps
    "sleep_for", "sleep_until", "usleep", "nanosleep", "SleepMicros",
    # thread joins
    "join",
    # minimpi collectives (src/net/comm.h)
    "AllToAllv", "Broadcast", "Gather", "AllGather", "AllReduceSum",
    "AllReduceMax", "AllReduceMin", "Barrier", "ArriveAndCheck",
    # sealed-file disk I/O (src/io/checked_file.h) and raw stdio
    "WriteSealedFile", "ReadSealedFile", "AppendSealedLine",
    "fopen", "fread", "fwrite", "fsync", "fflush",
})

UNORDERED_RE = re.compile(r"\bunordered_(?:multi)?(?:map|set)\s*<")
ACQ_RE = re.compile(
    r"\b(?:MutexLock|std::lock_guard\s*<[^>]*>|std::unique_lock\s*<[^>]*>)"
    r"\s+\w+\s*\(\s*([^()]+?)\s*\)")
HIER_ATTR_RE = re.compile(r"SNCUBE_ACQUIRED_(AFTER|BEFORE)\s*\(([^()]*)\)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*([^;]*?)\s*:\s*([^;]+?)\s*\)")
CALL_RE = re.compile(
    r"((?:[A-Za-z_]\w*(?:\[[^\[\]]*\])?\s*(?:->|\.)\s*)*)"
    r"([A-Za-z_]\w*)\s*\(")
FSTREAM_RE = re.compile(r"\b[io]?fstream\b")
NOT_CALL_NAMES = frozenset({
    "if", "for", "while", "switch", "return", "catch", "sizeof", "new",
    "delete", "throw", "assert", "alignof", "decltype", "defined",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "static_assert", "noexcept", "co_await", "co_return", "operator",
})


def in_paths(rel, prefixes):
    return any(rel.startswith(p) for p in prefixes)


class Fn:
    """Facts for one function definition. Expression operands (lock args,
    call receivers, range expressions) are stored raw and resolved after
    every file has been parsed, so cross-file member lookups work."""

    def __init__(self, qual, cls, file, line):
        self.qual = qual          # e.g. "CubeServer::Shutdown" or "Free"
        self.name = qual.rsplit("::", 1)[-1]
        self.cls = cls            # innermost enclosing/prefix class or None
        self.file = file
        self.line = line
        self.acquires = []        # [raw_expr, line, held_idx_tuple] -> key
        self.calls = []           # [recv_token_or_None, name, line, held_idx]
        self.clock_reads = []     # [line, ...]
        self.blockers = []        # [(name, line, held_idx_tuple)]
        self.waits = []           # [(line, n_held)]
        self.traversals = []      # [raw_base_expr, member_or_None, line]
        self.local_types = {}     # var name -> raw type text
        # Filled by resolution:
        self.acq_keys = []        # lock key per acquires entry (or None)

    def held_keys(self, idx_tuple):
        out = []
        for i in idx_tuple:
            k = self.acq_keys[i]
            if k is not None and k not in out:
                out.append(k)
        return tuple(out)


class ClassInfo:
    def __init__(self, name, file):
        self.name = name          # nesting-joined, e.g. "ResultCache::Shard"
        self.file = file
        self.members = {}         # member name -> raw type text
        self.mutexes = set()      # member names that are Mutex
        self.methods = set()      # declared/defined method names


class Facts:
    """Whole-program facts database, frontend-neutral."""

    def __init__(self):
        self.functions = []       # [Fn]
        self.classes = {}         # innermost name -> [ClassInfo]
        self.globals = {}         # name -> raw type text (namespace scope)
        self.global_mutexes = set()
        self.hier = []            # [(this_expr, rel, arg_expr, cls, file, ln)]
        self.unordered_decls = [] # [(file, line, what)]

    def add_class(self, info):
        self.classes.setdefault(info.name.rsplit("::", 1)[-1], []).append(info)
        if "::" in info.name:
            self.classes.setdefault(info.name, []).append(info)

    def class_named(self, name, prefer_file=None):
        cands = self.classes.get(name, [])
        if prefer_file is not None and len(cands) > 1:
            same = [c for c in cands if c.file == prefer_file]
            if len(same) == 1:
                return same[0]
        return cands[0] if len(cands) == 1 else None


# ---------------------------------------------------------------------------
# Internal frontend: a brace-accurate token-level reader. It does not try to
# be a C++ parser; it tracks scope kinds (namespace/class/function/block),
# flushes statements at `;`/`{`/`}` boundaries, and pattern-matches facts out
# of each statement with the current scope context attached. Good enough to
# be exact on this tree and the fixture trees (pinned by the self-test), and
# deliberately conservative where it is not exact.

MEMBER_RE = re.compile(
    r"^(?:\s*(?:mutable|static|inline|constexpr|const|volatile)\b)*\s*"
    r"([A-Za-z_][\w:]*(?:\s*<.*>)?)\s*[&*]*\s+([A-Za-z_]\w*)\s*"
    r"(?:\[[^\]]*\]\s*)?(?:SNCUBE_\w+\s*\(.*?\)\s*)*(?:=.*|\{.*\})?$",
    re.S)
SKIP_STMT_RE = re.compile(
    r"^\s*(?:template\b|using\b|typedef\b|friend\b|struct\s+\w+\s*$"
    r"|class\s+\w+\s*$|enum\b|extern\b|namespace\b|#)")
ACCESS_RE = re.compile(r"^\s*(?:public|private|protected)\s*:\s*")
CLASS_HDR_RE = re.compile(r"\b(class|struct)\s+([A-Za-z_]\w*)")
LOCAL_DECL_RE = re.compile(
    r"^\s*(?:const\s+)?([A-Za-z_][\w:]*(?:\s*<.*>)?)\s*[&*]*\s+"
    r"([A-Za-z_]\w*)\s*(?:=|\(|\{|;|$)", re.S)
PARAM_RE = re.compile(
    r"([A-Za-z_][\w:<>,\s*&]*?)[\s&*]+([A-Za-z_]\w*)\s*(?:=[^,]*)?$", re.S)
WRAP_RE = re.compile(
    r"^(?:const\s+)?(?:std\s*::\s*)?(?:vector|deque|list|array|span|"
    r"unique_ptr|shared_ptr|optional|reference_wrapper)\s*<(.*)>\s*[&*]*$",
    re.S)
BASE_TYPE_RE = re.compile(r"((?:\w+::)*)(\w+)\s*[&*]*\s*$")


def main_class_of_type(type_text):
    """Strip const/ref/ptr and the common ownership/container wrappers down
    to the innermost class identifier ('' when unresolvable)."""
    t = (type_text or "").strip()
    for _ in range(6):
        m = WRAP_RE.match(t)
        if not m:
            break
        t = m.group(1).strip()
        # array<T, N> / map-ish inner lists: keep the first top-level arg.
        depth = 0
        for i, c in enumerate(t):
            if c == "<":
                depth += 1
            elif c == ">":
                depth -= 1
            elif c == "," and depth == 0:
                t = t[:i]
                break
    t = re.sub(r"<.*>", "", t, flags=re.S).strip()
    m = BASE_TYPE_RE.search(t)
    return m.group(2) if m else ""


def blank_preprocessor(code):
    out = []
    cont = False
    for line in code.split("\n"):
        if cont or line.lstrip().startswith("#"):
            cont = line.rstrip().endswith("\\")
            out.append(" " * len(line))
        else:
            out.append(line)
    return "\n".join(out)


class _Scope:
    def __init__(self, kind, name=None, fn=None):
        self.kind = kind        # namespace | class | function | block | other
        self.name = name
        self.fn = fn            # Fn for function scopes


class InternalParser:
    def __init__(self, facts):
        self.facts = facts

    def parse_file(self, rel, raw_text):
        code = blank_preprocessor(sncheck.strip_code(raw_text))
        self.rel = rel
        self.line_starts = [0]
        for m in re.finditer("\n", code):
            self.line_starts.append(m.end())
        self.stack = []
        self.held = []          # [(acq_index_in_fn, fn, depth)]
        start = 0
        for i, c in enumerate(code):
            if c == "{":
                self.open_brace(code[start:i], start)
                start = i + 1
            elif c == "}":
                self.statement(code[start:i], start)
                self.close_brace()
                start = i + 1
            elif c == ";":
                self.statement(code[start:i], start)
                start = i + 1

    def line_of(self, off):
        return bisect.bisect_right(self.line_starts, off)

    def cur_fn(self):
        for s in reversed(self.stack):
            if s.kind == "function":
                return s.fn
        return None

    def cur_classes(self):
        return [s.name for s in self.stack if s.kind == "class"]

    def cur_class_info(self):
        for s in reversed(self.stack):
            if s.kind == "class":
                return s.info
        return None

    # -- brace classification ------------------------------------------------

    def open_brace(self, header, off):
        fn = self.cur_fn()
        if fn is not None:
            # Inside a function everything is a block (incl. lambdas, which
            # are analyzed inline as part of the enclosing function —
            # conservative for held-lock tracking, exact for this tree).
            self.statement(header, off)
            self.stack.append(_Scope("block"))
            return
        hdr = header.strip()
        if re.search(r"\bnamespace\b", hdr) and "(" not in hdr:
            m = re.search(r"\bnamespace\s+([\w:]+)", hdr)
            self.stack.append(_Scope("namespace",
                                     m.group(1) if m else "<anon>"))
            return
        if re.search(r"\benum\b", hdr) or hdr.rstrip().endswith("="):
            self.stack.append(_Scope("other"))
            return
        cm = CLASS_HDR_RE.search(
            re.sub(r"SNCUBE_\w+\s*\([^()]*\)", " ", hdr))
        if cm and "(" not in hdr.split(cm.group(2), 1)[0]:
            nesting = self.cur_classes() + [cm.group(2)]
            info = ClassInfo("::".join(nesting), self.rel)
            self.facts.add_class(info)
            sc = _Scope("class", cm.group(2))
            sc.info = info
            self.stack.append(sc)
            return
        p = hdr.find("(")
        if p >= 0:
            self.open_function(hdr, header, off, p)
            return
        self.stack.append(_Scope("other"))

    def open_function(self, hdr, header, off, p):
        prefix = hdr[:p].strip()
        m = re.search(r"([A-Za-z_][\w:~]*)\s*$", prefix)
        if not m:
            self.stack.append(_Scope("other"))
            return
        name = m.group(1)
        cls = None
        if "::" in name:
            cls = name.rsplit("::", 2)[-2]
            qual = "::".join(name.split("::")[-2:])
        elif self.cur_classes():
            cls = self.cur_classes()[-1]
            qual = f"{cls}::{name}"
            info = self.cur_class_info()
            if info is not None:
                info.methods.add(name)
        else:
            qual = name
        fn = Fn(qual, cls, self.rel, self.line_of(off))
        # Parameters -> local types (and unordered-decl scanning).
        depth, q = 0, p
        for q in range(p, len(hdr)):
            if hdr[q] == "(":
                depth += 1
            elif hdr[q] == ")":
                depth -= 1
                if depth == 0:
                    break
        params = hdr[p + 1:q]
        for part in self.split_top(params):
            pm = PARAM_RE.match(part.strip())
            if pm:
                fn.local_types[pm.group(2)] = pm.group(1)
        sc = _Scope("function")
        sc.fn = fn
        self.stack.append(sc)
        # Ctor-init-list / trailing annotations after the parameter list may
        # carry facts (e.g. a clock read in an initializer).
        tail = hdr[q + 1:]
        if tail.strip():
            self.function_statement(fn, tail, off + header.find(hdr) + q + 1)

    def close_brace(self):
        if not self.stack:
            return
        sc = self.stack.pop()
        depth = len(self.stack)
        self.held = [h for h in self.held if h[2] <= depth]
        if sc.kind == "function":
            self.facts.functions.append(sc.fn)
            self.held = [h for h in self.held if h[1] is not sc.fn]

    @staticmethod
    def split_top(text):
        out, depth, cur = [], 0, []
        for c in text:
            if c in "<([":
                depth += 1
            elif c in ">)]":
                depth -= 1
            if c == "," and depth == 0:
                out.append("".join(cur))
                cur = []
            else:
                cur.append(c)
        if cur:
            out.append("".join(cur))
        return out

    # -- statements ----------------------------------------------------------

    def statement(self, stmt, off):
        if not stmt.strip():
            return
        fn = self.cur_fn()
        if fn is not None:
            self.function_statement(fn, stmt, off)
        elif self.stack and self.stack[-1].kind == "class":
            self.class_member(stmt, off)
        else:
            self.namespace_decl(stmt, off)

    def record_hier(self, this_expr, stmt, cls, off):
        for m in HIER_ATTR_RE.finditer(stmt):
            rel_kind = m.group(1)  # AFTER | BEFORE
            for arg in m.group(2).split(","):
                arg = arg.strip()
                if arg:
                    self.facts.hier.append(
                        (this_expr, rel_kind, arg, cls, self.rel,
                         self.line_of(off + m.start())))

    def class_member(self, stmt, off):
        s = ACCESS_RE.sub("", stmt)
        if SKIP_STMT_RE.match(s):
            return
        info = self.cur_class_info()
        if info is None:
            return
        mm = re.match(
            r"^\s*(?:mutable\s+)?Mutex\s+([A-Za-z_]\w*)\s*", s)
        if mm:
            info.mutexes.add(mm.group(1))
            info.members[mm.group(1)] = "Mutex"
            self.record_hier(mm.group(1), s, info, off)
            return
        no_attr = re.sub(r"SNCUBE_\w+\s*\(.*?\)", " ", s, flags=re.S)
        if "(" in no_attr:
            dm = re.search(r"([A-Za-z_]\w*)\s*\(", no_attr)
            if dm and dm.group(1) not in NOT_CALL_NAMES:
                info.methods.add(dm.group(1))
            return
        m = MEMBER_RE.match(s)
        if m:
            type_text, name = m.group(1), m.group(2)
            info.members[name] = type_text
            if UNORDERED_RE.search(type_text):
                self.facts.unordered_decls.append(
                    (self.rel, self.line_of(off + s.find(name)),
                     f"member '{info.name}::{name}'"))

    def namespace_decl(self, stmt, off):
        s = stmt.strip()
        gm = re.match(
            r"^(?:inline\s+|static\s+|constinit\s+)*Mutex\s+"
            r"([A-Za-z_]\w*)\s*", s)
        if gm:
            name = gm.group(1)
            self.facts.globals[name] = "Mutex"
            self.facts.global_mutexes.add(name)
            self.record_hier(name, s, None, off)

    def function_statement(self, fn, stmt, off):
        depth = len(self.stack)
        held_idx = tuple(h[0] for h in self.held if h[1] is fn)

        # Local declarations (types feed receiver/range resolution; local
        # Mutex declarations become acquirable lock names).
        lm = LOCAL_DECL_RE.match(stmt)
        if lm and lm.group(1) not in ("return", "delete", "new"):
            fn.local_types.setdefault(lm.group(2), lm.group(1))
            if UNORDERED_RE.search(lm.group(1)) and \
                    in_paths(fn.file, DETERMINISTIC_PATHS):
                self.facts.unordered_decls.append(
                    (fn.file, self.line_of(off + stmt.find(lm.group(2))),
                     f"local '{lm.group(2)}' in {fn.qual}"))

        # Acquisitions.
        for m in ACQ_RE.finditer(stmt):
            line = self.line_of(off + m.start())
            fn.acquires.append([m.group(1).strip(), line, held_idx])
            idx = len(fn.acquires) - 1
            self.held.append((idx, fn, depth))
            held_idx = tuple(h[0] for h in self.held if h[1] is fn)

        # Range-for traversals.
        for m in RANGE_FOR_RE.finditer(stmt):
            rng = m.group(2).strip()
            line = self.line_of(off + m.start(2))
            base, member = self.split_receiver(rng)
            fn.traversals.append([base, member, line])
            # Bind the loop variable's element type for later resolution.
            vm = re.search(r"([A-Za-z_]\w*)\s*$", m.group(1))
            if vm:
                fn.local_types.setdefault(
                    vm.group(1), f"__elem__({rng})")

        # Clock reads.
        for m in CLOCK_READ_RE.finditer(stmt):
            fn.clock_reads.append(self.line_of(off + m.start()))

        # fstream construction counts as opening a file.
        if in_paths(fn.file, BLOCKING_PATHS) and held_idx:
            fm = FSTREAM_RE.search(stmt)
            if fm:
                fn.blockers.append(
                    ("fstream", self.line_of(off + fm.start()), held_idx))

        # Calls.
        for m in CALL_RE.finditer(stmt):
            name = m.group(2)
            if name in NOT_CALL_NAMES or name == "MutexLock":
                continue
            pre = stmt[:m.start()].rstrip()
            recv_chain = m.group(1)
            if not recv_chain and pre and (pre[-1].isalnum()
                                           or pre[-1] in "_>&*~"):
                continue  # `Type name(...)` declaration, not a call
            line = self.line_of(off + m.start(2))
            recv = None
            if recv_chain:
                toks = re.findall(r"[A-Za-z_]\w*", recv_chain)
                recv = toks[-1] if toks else None
            if name == "Wait":
                fn.waits.append((line, held_idx))
                continue
            if name in BLOCKING_NAMES:
                fn.blockers.append((name, line, held_idx))
                continue
            if name in ("begin", "cbegin") and recv is not None:
                fn.traversals.append([recv, None, line])
                continue
            fn.calls.append([recv, name, line, held_idx])

    @staticmethod
    def split_receiver(expr):
        """'a.b' / 'a->b' -> ('a', 'b'); bare 'a' -> ('a', None)."""
        expr = expr.strip()
        m = re.match(r"^([A-Za-z_]\w*)(?:\[[^\]]*\])?\s*(?:\.|->)\s*"
                     r"([A-Za-z_]\w*)$", expr)
        if m:
            return m.group(1), m.group(2)
        m = re.match(r"^([A-Za-z_]\w*)$", expr)
        if m:
            return m.group(1), None
        return expr, None


# ---------------------------------------------------------------------------
# Resolution: turn raw expressions into lock keys, class members, and call
# candidates now that every file's declarations are known.

class Resolver:
    def __init__(self, facts):
        self.facts = facts
        self.by_qual = {}
        self.by_name = {}
        for fn in facts.functions:
            self.by_qual.setdefault(fn.qual, []).append(fn)
            self.by_name.setdefault(fn.name, []).append(fn)
        # member mutex name -> [ClassInfo] (owner search fallback)
        self.mutex_owners = {}
        seen = set()
        for infos in facts.classes.values():
            for info in infos:
                if id(info) in seen:
                    continue
                seen.add(id(info))
                for m in info.mutexes:
                    self.mutex_owners.setdefault(m, []).append(info)

    # -- type resolution -----------------------------------------------------

    def expr_type_text(self, fn, name, depth=0):
        if depth > 4 or not name:
            return None
        t = fn.local_types.get(name)
        if t is None and fn.cls:
            info = self.facts.class_named(fn.cls, prefer_file=fn.file)
            if info is not None:
                t = info.members.get(name)
        if t is None:
            t = self.facts.globals.get(name)
        if t is not None and t.startswith("__elem__("):
            inner = t[len("__elem__("):-1]
            base, member = InternalParser.split_receiver(inner)
            it = self.member_type_text(fn, base, member, depth + 1)
            return it
        return t

    def member_type_text(self, fn, base, member, depth=0):
        """Type text of `base.member` (or of `base` when member is None)."""
        if member is None:
            return self.expr_type_text(fn, base, depth)
        base_t = self.expr_type_text(fn, base, depth)
        cls = self.facts.class_named(main_class_of_type(base_t),
                                     prefer_file=fn.file) if base_t else None
        if cls is not None:
            return cls.members.get(member)
        # Fallback: unique member name across all classes.
        owners = []
        seen = set()
        for infos in self.facts.classes.values():
            for info in infos:
                if id(info) in seen:
                    continue
                seen.add(id(info))
                if member in info.members:
                    owners.append(info)
        same = [o for o in owners if o.file == fn.file]
        pick = same[0] if len(same) == 1 else (
            owners[0] if len(owners) == 1 else None)
        return pick.members.get(member) if pick else None

    def class_of_expr(self, fn, name):
        t = self.expr_type_text(fn, name)
        if not t:
            return None
        return self.facts.class_named(main_class_of_type(t),
                                      prefer_file=fn.file)

    # -- lock keys -----------------------------------------------------------

    def lock_key(self, fn, expr):
        base, member = InternalParser.split_receiver(expr)
        if member is None:
            name = base
            if fn.local_types.get(name) == "Mutex":
                return f"local:{fn.qual}:{name}"
            if fn.cls:
                info = self.facts.class_named(fn.cls, prefer_file=fn.file)
                if info is not None and name in info.mutexes:
                    return f"{info.name}::{name}"
            if name in self.facts.global_mutexes:
                return name
            return self._owner_key(fn, name)
        cls = self.class_of_expr(fn, base)
        if cls is not None and member in cls.mutexes:
            return f"{cls.name}::{member}"
        return self._owner_key(fn, member)

    def _owner_key(self, fn, name):
        owners = self.mutex_owners.get(name, [])
        same = [o for o in owners if o.file == fn.file]
        pick = same[0] if len(same) == 1 else (
            owners[0] if len(owners) == 1 else None)
        return f"{pick.name}::{name}" if pick else None

    def hier_key(self, expr, cls_info, fn_file):
        """Normalize a SNCUBE_ACQUIRED_AFTER/BEFORE argument or the
        annotated mutex itself to a lock key."""
        name = re.split(r"::|->|\.", expr.strip())[-1].strip()
        if cls_info is not None and name in cls_info.mutexes:
            return f"{cls_info.name}::{name}"
        if name in self.facts.global_mutexes:
            return name
        owners = self.mutex_owners.get(name, [])
        same = [o for o in owners if o.file == fn_file]
        pick = same[0] if len(same) == 1 else (
            owners[0] if len(owners) == 1 else None)
        return f"{pick.name}::{name}" if pick else None

    # -- calls ---------------------------------------------------------------

    def call_candidates(self, fn, recv, name, qual_hint=None):
        if qual_hint is not None:
            return self.by_qual.get(qual_hint, [])
        if recv is not None:
            cls = self.class_of_expr(fn, recv)
            if cls is not None:
                short = cls.name.rsplit("::", 1)[-1]
                cands = self.by_qual.get(f"{short}::{name}")
                if cands:
                    return cands
            # Any-override semantics: an unresolved or abstract receiver
            # links to every definition of that method name.
            return self.by_name.get(name, [])
        if fn.cls:
            cands = self.by_qual.get(f"{fn.cls}::{name}")
            if cands:
                return cands
        return self.by_qual.get(name, [])

    def resolve_all(self):
        for fn in self.facts.functions:
            fn.acq_keys = [self.lock_key(fn, a[0]) if isinstance(a[0], str)
                           else a[0] for a in fn.acquires]


# ---------------------------------------------------------------------------
# Rule engine (frontend-neutral).

def analyze(facts, root):
    res = Resolver(facts)
    res.resolve_all()
    findings = []  # (file, line, rule, message)

    # Call candidate resolution (pre-resolved qualnames from the cindex
    # frontend ride in slot 4 of each call record when present).
    call_cands = {}
    for fn in facts.functions:
        for ci_, call in enumerate(fn.calls):
            recv, name = call[0], call[1]
            hint = call[4] if len(call) > 4 else None
            call_cands[(id(fn), ci_)] = res.call_candidates(
                fn, recv, name, hint)

    # Transitive fixpoint: acquires / clock reach / may-block.
    trans_acq = {id(fn): set(k for k in fn.acq_keys if k)
                 for fn in facts.functions}
    clock_reach = {id(fn): bool(fn.clock_reads) for fn in facts.functions}
    may_block = {id(fn): bool(fn.blockers) for fn in facts.functions}
    changed = True
    rounds = 0
    while changed and rounds < 50:
        changed = False
        rounds += 1
        for fn in facts.functions:
            for ci_, _call in enumerate(fn.calls):
                for cand in call_cands[(id(fn), ci_)]:
                    if cand is fn:
                        continue
                    extra = trans_acq[id(cand)] - trans_acq[id(fn)]
                    if extra:
                        trans_acq[id(fn)] |= extra
                        changed = True
                    if clock_reach[id(cand)] and not clock_reach[id(fn)]:
                        clock_reach[id(fn)] = True
                        changed = True
                    if may_block[id(cand)] and not may_block[id(fn)]:
                        may_block[id(fn)] = True
                        changed = True

    # --- unordered-iter ----------------------------------------------------
    for file, line, what in facts.unordered_decls:
        if in_paths(file, DETERMINISTIC_PATHS):
            findings.append((file, line, "unordered-iter",
                             f"unordered container declared in a "
                             f"deterministic path ({what}); iteration order "
                             f"can leak into cube bytes — use std::map / a "
                             f"sorted vector, or suppress if provably "
                             f"lookup-only"))
    for fn in facts.functions:
        if not in_paths(fn.file, DETERMINISTIC_PATHS):
            continue
        for trav in fn.traversals:
            if len(trav) > 3:  # pre-resolved by cindex
                is_unordered = trav[3]
            else:
                t = res.member_type_text(fn, trav[0], trav[1])
                is_unordered = bool(t and UNORDERED_RE.search(t))
            if is_unordered:
                expr = trav[0] + (f".{trav[1]}" if trav[1] else "")
                findings.append((fn.file, trav[2], "unordered-iter",
                                 f"traversal of unordered container "
                                 f"'{expr}' in {fn.qual}; iteration order is "
                                 f"unspecified and can leak into cube bytes"))

    # --- clock-domain ------------------------------------------------------
    for fn in facts.functions:
        if not in_paths(fn.file, CLOCK_PATHS) or fn.file in CLOCK_EXEMPT:
            continue
        for line in fn.clock_reads:
            findings.append((fn.file, line, "clock-domain",
                             f"direct host-clock read in {fn.qual}; "
                             f"simulated time must flow through the BSP "
                             f"clock / DiskModel"))
        for ci_, call in enumerate(fn.calls):
            cands = [c for c in call_cands[(id(fn), ci_)]
                     if c.file not in CLOCK_EXEMPT]
            hot = [c for c in cands if clock_reach[id(c)]
                   and not in_paths(c.file, CLOCK_PATHS)]
            if hot:
                findings.append((fn.file, call[2], "clock-domain",
                                 f"call to '{call[1]}' ({hot[0].qual}, "
                                 f"{hot[0].file}) reaches a host-clock read "
                                 f"from sim-clock code in {fn.qual}"))

    # --- blocking-under-lock -----------------------------------------------
    for fn in facts.functions:
        if not in_paths(fn.file, BLOCKING_PATHS):
            continue
        for name, line, held_idx in fn.blockers:
            held = fn.held_keys(held_idx)
            if held:
                findings.append((fn.file, line, "blocking-under-lock",
                                 f"blocking operation '{name}' in {fn.qual} "
                                 f"while holding {{{', '.join(held)}}}"))
        for ci_, call in enumerate(fn.calls):
            held = fn.held_keys(call[3])
            if not held:
                continue
            blocky = [c for c in call_cands[(id(fn), ci_)]
                      if may_block[id(c)]]
            if blocky:
                findings.append((fn.file, call[2], "blocking-under-lock",
                                 f"call to '{call[1]}' ({blocky[0].qual}) "
                                 f"may block (transitively) in {fn.qual} "
                                 f"while holding {{{', '.join(held)}}}"))
        for line, held_idx in fn.waits:
            held = fn.held_keys(held_idx)
            if len(held) >= 2:
                findings.append((fn.file, line, "blocking-under-lock",
                                 f"CondVar::Wait in {fn.qual} with "
                                 f"{len(held)} locks held "
                                 f"{{{', '.join(held)}}}; the extra lock "
                                 f"stays held across the wait"))

    # --- lock-order --------------------------------------------------------
    edges = {}  # (outer, inner) -> (file, line, via)
    for fn in facts.functions:
        for i, (expr, line, held_idx) in enumerate(fn.acquires):
            key = fn.acq_keys[i]
            if key is None:
                continue
            for h in fn.held_keys(held_idx):
                if h != key:
                    edges.setdefault((h, key),
                                     (fn.file, line, f"in {fn.qual}"))
        for ci_, call in enumerate(fn.calls):
            held = fn.held_keys(call[3])
            if not held:
                continue
            acq = set()
            for cand in call_cands[(id(fn), ci_)]:
                acq |= trans_acq[id(cand)]
            for h in held:
                for a in acq:
                    if a != h:
                        edges.setdefault(
                            (h, a),
                            (fn.file, call[2],
                             f"via call to {call[1]} in {fn.qual}"))

    # Declared hierarchy: before(outer, inner) pairs + transitive closure.
    before = set()
    decl_site = {}
    for this_expr, rel_kind, arg_expr, cls, file, line in facts.hier:
        this_key = res.hier_key(this_expr, cls, file)
        arg_key = res.hier_key(arg_expr, cls, file)
        if this_key is None or arg_key is None:
            continue
        pair = (arg_key, this_key) if rel_kind == "AFTER" \
            else (this_key, arg_key)
        before.add(pair)
        decl_site.setdefault(pair, (file, line))
    keys = sorted({k for p in before for k in p}
                  | {k for e in edges for k in e})
    closure = set(before)
    for mid in keys:
        for a in keys:
            for b in keys:
                if (a, mid) in closure and (mid, b) in closure:
                    closure.add((a, b))
    for pair in sorted(before):
        a, b = pair
        if (b, a) in closure:
            file, line = decl_site[pair]
            findings.append((file, line, "lock-order",
                             f"declared hierarchy is contradictory: "
                             f"'{a}' before '{b}' and '{b}' before '{a}'"))
    for (outer, inner), (file, line, via) in sorted(edges.items()):
        if (inner, outer) in closure:
            findings.append((file, line, "lock-order",
                             f"'{inner}' acquired while holding '{outer}' "
                             f"({via}) contradicts the declared hierarchy "
                             f"('{inner}' must be acquired first)"))

    # Cycles in the observed graph (Tarjan SCC).
    adj = {}
    for (a, b) in edges:
        adj.setdefault(a, set()).add(b)
    index_of, low, on_stack, stk, sccs = {}, {}, set(), [], []
    counter = [0]

    def strongconnect(v):
        work = [(v, iter(sorted(adj.get(v, ()))))]
        index_of[v] = low[v] = counter[0]
        counter[0] += 1
        stk.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index_of:
                    index_of[w] = low[w] = counter[0]
                    counter[0] += 1
                    stk.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(adj.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index_of[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                comp = []
                while True:
                    w = stk.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                if len(comp) > 1:
                    sccs.append(sorted(comp))

    for v in sorted(adj):
        if v not in index_of:
            strongconnect(v)
    for comp in sccs:
        comp_set = set(comp)
        label = " -> ".join(comp + [comp[0]])
        for (a, b), (file, line, via) in sorted(edges.items()):
            if a in comp_set and b in comp_set:
                findings.append((file, line, "lock-order",
                                 f"lock cycle (potential deadlock) among "
                                 f"{{{', '.join(comp)}}}: '{b}' acquired "
                                 f"while holding '{a}' {via}; cycle "
                                 f"{label}"))

    # Deduplicate by site+rule (a line can yield the same finding through
    # several analysis routes); keep the first message deterministically.
    out, seen = [], set()
    for f in sorted(findings):
        if (f[0], f[1], f[2]) in seen:
            continue
        seen.add((f[0], f[1], f[2]))
        out.append(f)
    return out


# ---------------------------------------------------------------------------
# Suppressions: sncheck's grammar, restricted to this tool's rule ids.
# Malformed allows (missing justification, unknown rule) are sncheck's
# `bad-suppression` findings — not duplicated here.

def allowed_map(root, rel, cache):
    if rel in cache:
        return cache[rel]
    allowed = {}
    try:
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            raw_lines = f.read().splitlines()
    except OSError:
        cache[rel] = allowed
        return allowed
    for idx, line in enumerate(raw_lines, start=1):
        m = sncheck.ALLOW_RE.search(line)
        if m is None:
            continue
        rules_field, colon, justification = m.groups()
        if colon != ":" or not justification.strip():
            continue
        rules = {r.strip() for r in rules_field.split(",")} & AST_RULE_IDS
        for line_no in (idx, idx + 1):
            allowed.setdefault(line_no, set()).update(rules)
    cache[rel] = allowed
    return allowed


# ---------------------------------------------------------------------------
# Frontends.

def iter_tree_files(root):
    for rel in sncheck.iter_source_files(root):
        if rel not in FACTS_EXEMPT:
            yield rel


def build_facts_internal(root):
    facts = Facts()
    parser = InternalParser(facts)
    for rel in iter_tree_files(root):
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            parser.parse_file(rel, f.read())
    return facts


def find_compile_commands(root, explicit):
    if explicit:
        return explicit if os.path.isfile(explicit) else None
    for d in ("build", "build-lint"):
        p = os.path.join(root, d, "compile_commands.json")
        if os.path.isfile(p):
            return p
    return None


def cindex_unavailable_reason(cc_path):
    if cc_path is None:
        return "no compile_commands.json (configure with cmake first)"
    try:
        import clang.cindex as ci
    except ImportError:
        return "python module clang.cindex not importable " \
               "(pip install libclang)"
    try:
        ci.Index.create()
    except Exception as e:  # libclang .so missing or mismatched
        return f"libclang not loadable: {e}"
    return None


def build_facts_cindex(root, cc_path):
    """clang.cindex frontend: same facts IR, resolved via real AST cursors.
    The declared hierarchy and textual class tables still come from the
    internal parse (identical in both frontends by construction)."""
    import clang.cindex as ci
    K = ci.CursorKind
    facts = build_facts_internal(root)  # class tables + hierarchy + decls
    # Replace function facts with cursor-derived ones.
    facts.functions = []
    facts.unordered_decls = [d for d in facts.unordered_decls
                             if d[2].startswith("member ")]
    index = ci.Index.create()
    with open(cc_path, encoding="utf-8") as f:
        db = json.load(f)
    seen_fns = set()
    lock_types = ("MutexLock", "lock_guard", "unique_lock")

    def relpath(cursor):
        loc = cursor.location
        if loc.file is None:
            return None
        rel = os.path.relpath(str(loc.file), root).replace(os.sep, "/")
        return rel if rel.startswith("src/") else None

    def qual_of(ref):
        parent = ref.semantic_parent
        if parent is not None and parent.kind in (
                K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE):
            return f"{parent.spelling}::{ref.spelling}", parent.spelling
        return ref.spelling, None

    def lock_key_of(var_cursor, fn):
        for node in var_cursor.walk_preorder():
            if node.kind in (K.MEMBER_REF_EXPR, K.DECL_REF_EXPR):
                ref = node.referenced
                if ref is None:
                    continue
                if "Mutex" not in ref.type.spelling \
                        and "mutex" not in ref.type.spelling:
                    continue
                if ref.kind == K.FIELD_DECL:
                    return f"{ref.semantic_parent.spelling}::{ref.spelling}"
                parent = ref.semantic_parent
                if parent is not None and parent.kind in (
                        K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                        K.DESTRUCTOR):
                    return f"local:{fn.qual}:{ref.spelling}"
                return ref.spelling
        return None

    def walk_body(cursor, fn, held):
        for child in cursor.get_children():
            kind = child.kind
            if kind == K.COMPOUND_STMT:
                walk_body(child, fn, list(held))
                continue
            if kind == K.VAR_DECL:
                ts = child.type.spelling
                if any(lt in ts for lt in lock_types):
                    key = lock_key_of(child, fn)
                    fn.acquires.append(
                        [key, child.location.line, tuple(held)])
                    held.append(len(fn.acquires) - 1)
                    continue
                if UNORDERED_RE.search(ts) and \
                        in_paths(fn.file, DETERMINISTIC_PATHS):
                    facts.unordered_decls.append(
                        (fn.file, child.location.line,
                         f"local '{child.spelling}' in {fn.qual}"))
            if kind == K.CXX_FOR_RANGE_STMT:
                kids = list(child.get_children())
                if len(kids) >= 2 and UNORDERED_RE.search(
                        kids[-2].type.spelling or ""):
                    fn.traversals.append(
                        ["<range>", None, child.location.line, True])
                walk_body(child, fn, list(held))
                continue
            if kind == K.CALL_EXPR:
                ref = child.referenced
                name = ref.spelling if ref is not None else child.spelling
                line = child.location.line
                if name:
                    qual, pcls = (qual_of(ref) if ref is not None
                                  else (name, None))
                    if name == "now" and pcls in (
                            "steady_clock", "system_clock",
                            "high_resolution_clock"):
                        fn.clock_reads.append(line)
                    elif name in ("clock_gettime", "gettimeofday"):
                        fn.clock_reads.append(line)
                    elif name == "Wait" and pcls == "CondVar":
                        fn.waits.append((line, tuple(held)))
                    elif name in BLOCKING_NAMES:
                        fn.blockers.append((name, line, tuple(held)))
                    elif name in ("begin", "cbegin"):
                        args = list(child.get_children())
                        if args and UNORDERED_RE.search(
                                args[0].type.spelling or ""):
                            fn.traversals.append(
                                ["<iter>", None, line, True])
                    else:
                        fn.calls.append([None, name, line, tuple(held),
                                         qual])
                walk_body(child, fn, held)
                continue
            walk_body(child, fn, held)

    def visit_tu(cursor):
        for child in cursor.walk_preorder():
            if child.kind in (K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                              K.DESTRUCTOR, K.FUNCTION_TEMPLATE):
                if not child.is_definition():
                    continue
                rel = relpath(child)
                if rel is None or rel in FACTS_EXEMPT:
                    continue
                qual, pcls = qual_of(child)
                fkey = (rel, child.location.line, qual)
                if fkey in seen_fns:
                    continue
                seen_fns.add(fkey)
                fn = Fn(qual, pcls, rel, child.location.line)
                facts.functions.append(fn)
                walk_body(child, fn, [])
            elif child.kind == K.FIELD_DECL:
                rel = relpath(child)
                if rel and in_paths(rel, DETERMINISTIC_PATHS):
                    pass  # member decls already collected textually

    parsed_any = False
    for entry in db:
        src = entry.get("file", "")
        full = src if os.path.isabs(src) else os.path.join(
            entry.get("directory", root), src)
        rel = os.path.relpath(full, root).replace(os.sep, "/")
        if not rel.startswith("src/") or not rel.endswith(".cc"):
            continue
        args = entry.get("arguments")
        if not args:
            args = entry.get("command", "").split()
        clean, skip = [], False
        for a in args[1:]:
            if skip:
                skip = False
                continue
            if a in ("-c", src) or a == full:
                continue
            if a == "-o":
                skip = True
                continue
            clean.append(a)
        try:
            tu = index.parse(full, args=clean)
        except Exception as e:
            print(f"sncheck_ast: cindex failed on {rel}: {e}",
                  file=sys.stderr)
            continue
        parsed_any = True
        visit_tu(tu.cursor)
    if not parsed_any:
        raise RuntimeError("cindex parsed no translation units")
    return facts


# ---------------------------------------------------------------------------
# CLI.

def main(argv):
    p = argparse.ArgumentParser(
        prog="sncheck_ast",
        description="sncube whole-program AST analyzer "
                    "(lock-order, unordered-iter, clock-domain, "
                    "blocking-under-lock)")
    p.add_argument("--root", default=".", help="repo root (scans <root>/src)")
    p.add_argument("--compile-commands", default=None,
                   help="compile_commands.json for the cindex frontend "
                        "(default: <root>/build*/compile_commands.json)")
    p.add_argument("--frontend", choices=("auto", "cindex", "internal"),
                   default="auto",
                   help="auto: cindex when available, else the internal "
                        "parser; cindex: require libclang (exit 77 when "
                        "missing); internal: always available")
    p.add_argument("--ci", action="store_true",
                   help="hard-fail (exit 2) instead of skipping/falling "
                        "back when the cindex frontend is unavailable")
    p.add_argument("--json-out", default=None,
                   help="write the full findings report (including "
                        "suppressed ones) as JSON")
    p.add_argument("--list-rules", action="store_true",
                   help="print rule ids and exit")
    args = p.parse_args(argv)

    if args.list_rules:
        for rule, doc in RULE_DOCS.items():
            print(f"{rule}: {doc}")
        return 0

    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"sncheck_ast: no src/ under --root {root}", file=sys.stderr)
        return 2

    frontend = args.frontend
    cc_path = find_compile_commands(root, args.compile_commands)
    if frontend in ("auto", "cindex"):
        reason = cindex_unavailable_reason(cc_path)
        if reason is not None:
            if args.ci:
                print(f"sncheck_ast: cindex frontend required in CI but "
                      f"unavailable: {reason}", file=sys.stderr)
                return 2
            if frontend == "cindex":
                print(f"sncheck_ast: SKIPPED: {reason}", file=sys.stderr)
                return EXIT_SKIP
            print(f"sncheck_ast: note: falling back to the internal "
                  f"frontend ({reason})", file=sys.stderr)
            frontend = "internal"
        else:
            frontend = "cindex"

    if frontend == "cindex":
        try:
            facts = build_facts_cindex(root, cc_path)
        except Exception as e:
            if args.ci:
                print(f"sncheck_ast: cindex frontend failed: {e}",
                      file=sys.stderr)
                return 2
            print(f"sncheck_ast: note: cindex frontend failed ({e}); "
                  f"falling back to the internal frontend", file=sys.stderr)
            frontend = "internal"
            facts = build_facts_internal(root)
    else:
        facts = build_facts_internal(root)

    findings = analyze(facts, root)
    cache = {}
    report, unsuppressed = [], 0
    for file, line, rule, message in findings:
        suppressed = rule in allowed_map(root, file, cache).get(line, set())
        report.append({"file": file, "line": line, "rule": rule,
                       "message": message, "suppressed": suppressed})
        if not suppressed:
            print(f"{file}:{line}: [{rule}] {message}")
            unsuppressed += 1

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump({
                "frontend": frontend,
                "functions": len(facts.functions),
                "findings": report,
                "unsuppressed": unsuppressed,
            }, f, indent=2)
            f.write("\n")

    if unsuppressed:
        print(f"sncheck_ast: {unsuppressed} unsuppressed finding(s) "
              f"({frontend} frontend, {len(facts.functions)} functions)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
