# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/relation_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/lattice_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_test[1]_include.cmake")
include("/root/repo/build/tests/seqcube_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/merge_test[1]_include.cmake")
include("/root/repo/build/tests/view_store_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
