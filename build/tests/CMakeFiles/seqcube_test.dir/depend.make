# Empty dependencies file for seqcube_test.
# This may be replaced when dependencies are built.
