file(REMOVE_RECURSE
  "CMakeFiles/seqcube_test.dir/seqcube_test.cc.o"
  "CMakeFiles/seqcube_test.dir/seqcube_test.cc.o.d"
  "seqcube_test"
  "seqcube_test.pdb"
  "seqcube_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqcube_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
