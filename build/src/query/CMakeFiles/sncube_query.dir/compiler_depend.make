# Empty compiler generated dependencies file for sncube_query.
# This may be replaced when dependencies are built.
