file(REMOVE_RECURSE
  "libsncube_query.a"
)
