file(REMOVE_RECURSE
  "CMakeFiles/sncube_query.dir/engine.cc.o"
  "CMakeFiles/sncube_query.dir/engine.cc.o.d"
  "CMakeFiles/sncube_query.dir/greedy_select.cc.o"
  "CMakeFiles/sncube_query.dir/greedy_select.cc.o.d"
  "libsncube_query.a"
  "libsncube_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sncube_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
