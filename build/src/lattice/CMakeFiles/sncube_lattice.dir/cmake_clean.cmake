file(REMOVE_RECURSE
  "CMakeFiles/sncube_lattice.dir/estimate.cc.o"
  "CMakeFiles/sncube_lattice.dir/estimate.cc.o.d"
  "CMakeFiles/sncube_lattice.dir/fm_sketch.cc.o"
  "CMakeFiles/sncube_lattice.dir/fm_sketch.cc.o.d"
  "CMakeFiles/sncube_lattice.dir/lattice.cc.o"
  "CMakeFiles/sncube_lattice.dir/lattice.cc.o.d"
  "CMakeFiles/sncube_lattice.dir/view_id.cc.o"
  "CMakeFiles/sncube_lattice.dir/view_id.cc.o.d"
  "libsncube_lattice.a"
  "libsncube_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sncube_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
