
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lattice/estimate.cc" "src/lattice/CMakeFiles/sncube_lattice.dir/estimate.cc.o" "gcc" "src/lattice/CMakeFiles/sncube_lattice.dir/estimate.cc.o.d"
  "/root/repo/src/lattice/fm_sketch.cc" "src/lattice/CMakeFiles/sncube_lattice.dir/fm_sketch.cc.o" "gcc" "src/lattice/CMakeFiles/sncube_lattice.dir/fm_sketch.cc.o.d"
  "/root/repo/src/lattice/lattice.cc" "src/lattice/CMakeFiles/sncube_lattice.dir/lattice.cc.o" "gcc" "src/lattice/CMakeFiles/sncube_lattice.dir/lattice.cc.o.d"
  "/root/repo/src/lattice/view_id.cc" "src/lattice/CMakeFiles/sncube_lattice.dir/view_id.cc.o" "gcc" "src/lattice/CMakeFiles/sncube_lattice.dir/view_id.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relation/CMakeFiles/sncube_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sncube_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
