file(REMOVE_RECURSE
  "libsncube_lattice.a"
)
