# Empty compiler generated dependencies file for sncube_lattice.
# This may be replaced when dependencies are built.
