# Empty compiler generated dependencies file for sncube_relation.
# This may be replaced when dependencies are built.
