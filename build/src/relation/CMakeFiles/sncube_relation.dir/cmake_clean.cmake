file(REMOVE_RECURSE
  "CMakeFiles/sncube_relation.dir/aggregate.cc.o"
  "CMakeFiles/sncube_relation.dir/aggregate.cc.o.d"
  "CMakeFiles/sncube_relation.dir/csv.cc.o"
  "CMakeFiles/sncube_relation.dir/csv.cc.o.d"
  "CMakeFiles/sncube_relation.dir/schema.cc.o"
  "CMakeFiles/sncube_relation.dir/schema.cc.o.d"
  "CMakeFiles/sncube_relation.dir/serialize.cc.o"
  "CMakeFiles/sncube_relation.dir/serialize.cc.o.d"
  "libsncube_relation.a"
  "libsncube_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sncube_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
