file(REMOVE_RECURSE
  "libsncube_relation.a"
)
