
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relation/aggregate.cc" "src/relation/CMakeFiles/sncube_relation.dir/aggregate.cc.o" "gcc" "src/relation/CMakeFiles/sncube_relation.dir/aggregate.cc.o.d"
  "/root/repo/src/relation/csv.cc" "src/relation/CMakeFiles/sncube_relation.dir/csv.cc.o" "gcc" "src/relation/CMakeFiles/sncube_relation.dir/csv.cc.o.d"
  "/root/repo/src/relation/schema.cc" "src/relation/CMakeFiles/sncube_relation.dir/schema.cc.o" "gcc" "src/relation/CMakeFiles/sncube_relation.dir/schema.cc.o.d"
  "/root/repo/src/relation/serialize.cc" "src/relation/CMakeFiles/sncube_relation.dir/serialize.cc.o" "gcc" "src/relation/CMakeFiles/sncube_relation.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sncube_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
