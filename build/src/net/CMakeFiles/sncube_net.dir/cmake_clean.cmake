file(REMOVE_RECURSE
  "CMakeFiles/sncube_net.dir/cluster.cc.o"
  "CMakeFiles/sncube_net.dir/cluster.cc.o.d"
  "CMakeFiles/sncube_net.dir/comm.cc.o"
  "CMakeFiles/sncube_net.dir/comm.cc.o.d"
  "libsncube_net.a"
  "libsncube_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sncube_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
