file(REMOVE_RECURSE
  "libsncube_net.a"
)
