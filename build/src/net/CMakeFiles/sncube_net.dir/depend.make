# Empty dependencies file for sncube_net.
# This may be replaced when dependencies are built.
