file(REMOVE_RECURSE
  "CMakeFiles/sncube_common.dir/env.cc.o"
  "CMakeFiles/sncube_common.dir/env.cc.o.d"
  "CMakeFiles/sncube_common.dir/rng.cc.o"
  "CMakeFiles/sncube_common.dir/rng.cc.o.d"
  "CMakeFiles/sncube_common.dir/zipf.cc.o"
  "CMakeFiles/sncube_common.dir/zipf.cc.o.d"
  "libsncube_common.a"
  "libsncube_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sncube_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
