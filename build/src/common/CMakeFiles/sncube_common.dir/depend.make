# Empty dependencies file for sncube_common.
# This may be replaced when dependencies are built.
