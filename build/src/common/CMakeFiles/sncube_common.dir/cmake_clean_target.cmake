file(REMOVE_RECURSE
  "libsncube_common.a"
)
