file(REMOVE_RECURSE
  "CMakeFiles/sncube_schedule.dir/matching.cc.o"
  "CMakeFiles/sncube_schedule.dir/matching.cc.o.d"
  "CMakeFiles/sncube_schedule.dir/partial.cc.o"
  "CMakeFiles/sncube_schedule.dir/partial.cc.o.d"
  "CMakeFiles/sncube_schedule.dir/pipesort.cc.o"
  "CMakeFiles/sncube_schedule.dir/pipesort.cc.o.d"
  "CMakeFiles/sncube_schedule.dir/schedule_tree.cc.o"
  "CMakeFiles/sncube_schedule.dir/schedule_tree.cc.o.d"
  "libsncube_schedule.a"
  "libsncube_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sncube_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
