# Empty compiler generated dependencies file for sncube_schedule.
# This may be replaced when dependencies are built.
