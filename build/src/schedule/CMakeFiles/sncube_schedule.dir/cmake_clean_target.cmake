file(REMOVE_RECURSE
  "libsncube_schedule.a"
)
