
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schedule/matching.cc" "src/schedule/CMakeFiles/sncube_schedule.dir/matching.cc.o" "gcc" "src/schedule/CMakeFiles/sncube_schedule.dir/matching.cc.o.d"
  "/root/repo/src/schedule/partial.cc" "src/schedule/CMakeFiles/sncube_schedule.dir/partial.cc.o" "gcc" "src/schedule/CMakeFiles/sncube_schedule.dir/partial.cc.o.d"
  "/root/repo/src/schedule/pipesort.cc" "src/schedule/CMakeFiles/sncube_schedule.dir/pipesort.cc.o" "gcc" "src/schedule/CMakeFiles/sncube_schedule.dir/pipesort.cc.o.d"
  "/root/repo/src/schedule/schedule_tree.cc" "src/schedule/CMakeFiles/sncube_schedule.dir/schedule_tree.cc.o" "gcc" "src/schedule/CMakeFiles/sncube_schedule.dir/schedule_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lattice/CMakeFiles/sncube_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/sncube_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sncube_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
