file(REMOVE_RECURSE
  "CMakeFiles/sncube_io.dir/disk.cc.o"
  "CMakeFiles/sncube_io.dir/disk.cc.o.d"
  "CMakeFiles/sncube_io.dir/external_sort.cc.o"
  "CMakeFiles/sncube_io.dir/external_sort.cc.o.d"
  "CMakeFiles/sncube_io.dir/run_store.cc.o"
  "CMakeFiles/sncube_io.dir/run_store.cc.o.d"
  "libsncube_io.a"
  "libsncube_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sncube_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
