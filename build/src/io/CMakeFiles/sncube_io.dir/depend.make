# Empty dependencies file for sncube_io.
# This may be replaced when dependencies are built.
