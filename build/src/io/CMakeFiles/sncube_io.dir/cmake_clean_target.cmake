file(REMOVE_RECURSE
  "libsncube_io.a"
)
