file(REMOVE_RECURSE
  "CMakeFiles/sncube_data.dir/generator.cc.o"
  "CMakeFiles/sncube_data.dir/generator.cc.o.d"
  "CMakeFiles/sncube_data.dir/retail.cc.o"
  "CMakeFiles/sncube_data.dir/retail.cc.o.d"
  "libsncube_data.a"
  "libsncube_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sncube_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
