file(REMOVE_RECURSE
  "libsncube_data.a"
)
