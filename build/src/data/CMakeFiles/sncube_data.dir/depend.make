# Empty dependencies file for sncube_data.
# This may be replaced when dependencies are built.
