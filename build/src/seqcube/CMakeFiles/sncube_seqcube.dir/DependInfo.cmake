
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seqcube/cube_result.cc" "src/seqcube/CMakeFiles/sncube_seqcube.dir/cube_result.cc.o" "gcc" "src/seqcube/CMakeFiles/sncube_seqcube.dir/cube_result.cc.o.d"
  "/root/repo/src/seqcube/pipeline.cc" "src/seqcube/CMakeFiles/sncube_seqcube.dir/pipeline.cc.o" "gcc" "src/seqcube/CMakeFiles/sncube_seqcube.dir/pipeline.cc.o.d"
  "/root/repo/src/seqcube/seq_cube.cc" "src/seqcube/CMakeFiles/sncube_seqcube.dir/seq_cube.cc.o" "gcc" "src/seqcube/CMakeFiles/sncube_seqcube.dir/seq_cube.cc.o.d"
  "/root/repo/src/seqcube/view_store.cc" "src/seqcube/CMakeFiles/sncube_seqcube.dir/view_store.cc.o" "gcc" "src/seqcube/CMakeFiles/sncube_seqcube.dir/view_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schedule/CMakeFiles/sncube_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/sncube_io.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/sncube_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sncube_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/sncube_lattice.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
