# Empty dependencies file for sncube_seqcube.
# This may be replaced when dependencies are built.
