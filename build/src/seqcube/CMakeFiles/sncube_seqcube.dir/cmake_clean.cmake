file(REMOVE_RECURSE
  "CMakeFiles/sncube_seqcube.dir/cube_result.cc.o"
  "CMakeFiles/sncube_seqcube.dir/cube_result.cc.o.d"
  "CMakeFiles/sncube_seqcube.dir/pipeline.cc.o"
  "CMakeFiles/sncube_seqcube.dir/pipeline.cc.o.d"
  "CMakeFiles/sncube_seqcube.dir/seq_cube.cc.o"
  "CMakeFiles/sncube_seqcube.dir/seq_cube.cc.o.d"
  "CMakeFiles/sncube_seqcube.dir/view_store.cc.o"
  "CMakeFiles/sncube_seqcube.dir/view_store.cc.o.d"
  "libsncube_seqcube.a"
  "libsncube_seqcube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sncube_seqcube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
