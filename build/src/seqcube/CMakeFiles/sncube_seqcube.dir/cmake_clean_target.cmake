file(REMOVE_RECURSE
  "libsncube_seqcube.a"
)
