
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/merge_partitions.cc" "src/core/CMakeFiles/sncube_core.dir/merge_partitions.cc.o" "gcc" "src/core/CMakeFiles/sncube_core.dir/merge_partitions.cc.o.d"
  "/root/repo/src/core/onedim_baseline.cc" "src/core/CMakeFiles/sncube_core.dir/onedim_baseline.cc.o" "gcc" "src/core/CMakeFiles/sncube_core.dir/onedim_baseline.cc.o.d"
  "/root/repo/src/core/parallel_cube.cc" "src/core/CMakeFiles/sncube_core.dir/parallel_cube.cc.o" "gcc" "src/core/CMakeFiles/sncube_core.dir/parallel_cube.cc.o.d"
  "/root/repo/src/core/sample_sort.cc" "src/core/CMakeFiles/sncube_core.dir/sample_sort.cc.o" "gcc" "src/core/CMakeFiles/sncube_core.dir/sample_sort.cc.o.d"
  "/root/repo/src/core/sampling_array.cc" "src/core/CMakeFiles/sncube_core.dir/sampling_array.cc.o" "gcc" "src/core/CMakeFiles/sncube_core.dir/sampling_array.cc.o.d"
  "/root/repo/src/core/workpart_baseline.cc" "src/core/CMakeFiles/sncube_core.dir/workpart_baseline.cc.o" "gcc" "src/core/CMakeFiles/sncube_core.dir/workpart_baseline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seqcube/CMakeFiles/sncube_seqcube.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/sncube_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sncube_net.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/sncube_io.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/sncube_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sncube_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/sncube_lattice.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
