file(REMOVE_RECURSE
  "CMakeFiles/sncube_core.dir/merge_partitions.cc.o"
  "CMakeFiles/sncube_core.dir/merge_partitions.cc.o.d"
  "CMakeFiles/sncube_core.dir/onedim_baseline.cc.o"
  "CMakeFiles/sncube_core.dir/onedim_baseline.cc.o.d"
  "CMakeFiles/sncube_core.dir/parallel_cube.cc.o"
  "CMakeFiles/sncube_core.dir/parallel_cube.cc.o.d"
  "CMakeFiles/sncube_core.dir/sample_sort.cc.o"
  "CMakeFiles/sncube_core.dir/sample_sort.cc.o.d"
  "CMakeFiles/sncube_core.dir/sampling_array.cc.o"
  "CMakeFiles/sncube_core.dir/sampling_array.cc.o.d"
  "CMakeFiles/sncube_core.dir/workpart_baseline.cc.o"
  "CMakeFiles/sncube_core.dir/workpart_baseline.cc.o.d"
  "libsncube_core.a"
  "libsncube_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sncube_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
