# Empty compiler generated dependencies file for sncube_core.
# This may be replaced when dependencies are built.
