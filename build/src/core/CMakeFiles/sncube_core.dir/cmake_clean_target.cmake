file(REMOVE_RECURSE
  "libsncube_core.a"
)
