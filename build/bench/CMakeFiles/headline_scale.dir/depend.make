# Empty dependencies file for headline_scale.
# This may be replaced when dependencies are built.
