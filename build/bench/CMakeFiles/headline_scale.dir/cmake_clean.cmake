file(REMOVE_RECURSE
  "CMakeFiles/headline_scale.dir/headline_scale.cc.o"
  "CMakeFiles/headline_scale.dir/headline_scale.cc.o.d"
  "headline_scale"
  "headline_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
