file(REMOVE_RECURSE
  "CMakeFiles/fig09_cardinality.dir/fig09_cardinality.cc.o"
  "CMakeFiles/fig09_cardinality.dir/fig09_cardinality.cc.o.d"
  "fig09_cardinality"
  "fig09_cardinality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
