# Empty compiler generated dependencies file for fig09_cardinality.
# This may be replaced when dependencies are built.
