file(REMOVE_RECURSE
  "CMakeFiles/ablation_merge_cases.dir/ablation_merge_cases.cc.o"
  "CMakeFiles/ablation_merge_cases.dir/ablation_merge_cases.cc.o.d"
  "ablation_merge_cases"
  "ablation_merge_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_merge_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
