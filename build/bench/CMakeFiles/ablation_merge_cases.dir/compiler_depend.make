# Empty compiler generated dependencies file for ablation_merge_cases.
# This may be replaced when dependencies are built.
