# Empty dependencies file for fig07_schedule_trees.
# This may be replaced when dependencies are built.
