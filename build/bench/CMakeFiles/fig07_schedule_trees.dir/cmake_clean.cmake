file(REMOVE_RECURSE
  "CMakeFiles/fig07_schedule_trees.dir/fig07_schedule_trees.cc.o"
  "CMakeFiles/fig07_schedule_trees.dir/fig07_schedule_trees.cc.o.d"
  "fig07_schedule_trees"
  "fig07_schedule_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_schedule_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
