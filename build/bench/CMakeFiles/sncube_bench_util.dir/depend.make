# Empty dependencies file for sncube_bench_util.
# This may be replaced when dependencies are built.
