file(REMOVE_RECURSE
  "../lib/libsncube_bench_util.a"
  "../lib/libsncube_bench_util.pdb"
  "CMakeFiles/sncube_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/sncube_bench_util.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sncube_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
