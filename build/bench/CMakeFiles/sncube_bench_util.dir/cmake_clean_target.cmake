file(REMOVE_RECURSE
  "../lib/libsncube_bench_util.a"
)
