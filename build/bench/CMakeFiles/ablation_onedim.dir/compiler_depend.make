# Empty compiler generated dependencies file for ablation_onedim.
# This may be replaced when dependencies are built.
