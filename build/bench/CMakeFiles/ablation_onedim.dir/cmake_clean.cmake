file(REMOVE_RECURSE
  "CMakeFiles/ablation_onedim.dir/ablation_onedim.cc.o"
  "CMakeFiles/ablation_onedim.dir/ablation_onedim.cc.o.d"
  "ablation_onedim"
  "ablation_onedim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_onedim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
