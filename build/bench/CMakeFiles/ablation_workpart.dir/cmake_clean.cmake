file(REMOVE_RECURSE
  "CMakeFiles/ablation_workpart.dir/ablation_workpart.cc.o"
  "CMakeFiles/ablation_workpart.dir/ablation_workpart.cc.o.d"
  "ablation_workpart"
  "ablation_workpart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_workpart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
