# Empty compiler generated dependencies file for ablation_workpart.
# This may be replaced when dependencies are built.
