# Empty compiler generated dependencies file for fig06_partial.
# This may be replaced when dependencies are built.
