file(REMOVE_RECURSE
  "CMakeFiles/fig06_partial.dir/fig06_partial.cc.o"
  "CMakeFiles/fig06_partial.dir/fig06_partial.cc.o.d"
  "fig06_partial"
  "fig06_partial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_partial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
