# Empty dependencies file for fig10_dimensionality.
# This may be replaced when dependencies are built.
