file(REMOVE_RECURSE
  "CMakeFiles/fig10_dimensionality.dir/fig10_dimensionality.cc.o"
  "CMakeFiles/fig10_dimensionality.dir/fig10_dimensionality.cc.o.d"
  "fig10_dimensionality"
  "fig10_dimensionality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dimensionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
