file(REMOVE_RECURSE
  "CMakeFiles/sncube.dir/sncube_cli.cc.o"
  "CMakeFiles/sncube.dir/sncube_cli.cc.o.d"
  "sncube"
  "sncube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sncube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
