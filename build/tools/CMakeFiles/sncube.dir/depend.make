# Empty dependencies file for sncube.
# This may be replaced when dependencies are built.
