# Empty compiler generated dependencies file for wide_schema_cube.
# This may be replaced when dependencies are built.
