file(REMOVE_RECURSE
  "CMakeFiles/wide_schema_cube.dir/wide_schema_cube.cc.o"
  "CMakeFiles/wide_schema_cube.dir/wide_schema_cube.cc.o.d"
  "wide_schema_cube"
  "wide_schema_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wide_schema_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
