file(REMOVE_RECURSE
  "CMakeFiles/retail_olap.dir/retail_olap.cc.o"
  "CMakeFiles/retail_olap.dir/retail_olap.cc.o.d"
  "retail_olap"
  "retail_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retail_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
