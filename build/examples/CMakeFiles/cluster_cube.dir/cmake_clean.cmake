file(REMOVE_RECURSE
  "CMakeFiles/cluster_cube.dir/cluster_cube.cc.o"
  "CMakeFiles/cluster_cube.dir/cluster_cube.cc.o.d"
  "cluster_cube"
  "cluster_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
