# Empty compiler generated dependencies file for cluster_cube.
# This may be replaced when dependencies are built.
