file(REMOVE_RECURSE
  "CMakeFiles/partial_cube_selection.dir/partial_cube_selection.cc.o"
  "CMakeFiles/partial_cube_selection.dir/partial_cube_selection.cc.o.d"
  "partial_cube_selection"
  "partial_cube_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_cube_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
