
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/partial_cube_selection.cc" "examples/CMakeFiles/partial_cube_selection.dir/partial_cube_selection.cc.o" "gcc" "examples/CMakeFiles/partial_cube_selection.dir/partial_cube_selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sncube_core.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/sncube_query.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sncube_data.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sncube_net.dir/DependInfo.cmake"
  "/root/repo/build/src/seqcube/CMakeFiles/sncube_seqcube.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/sncube_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/sncube_io.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/sncube_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/sncube_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sncube_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
