# Empty dependencies file for partial_cube_selection.
# This may be replaced when dependencies are built.
