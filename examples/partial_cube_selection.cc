// partial_cube_selection: Section 3 end to end — choose a subset of views
// worth materializing (HRU greedy), build the partial cube IN PARALLEL on
// the simulated shared-nothing cluster, and compare the two partial
// schedule-tree strategies of the paper's reference [4].
//
//   ./examples/partial_cube_selection [rows] [processors] [views]
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "core/parallel_cube.h"
#include "data/generator.h"
#include "lattice/lattice.h"
#include "net/cluster.h"
#include "query/greedy_select.h"
#include "schedule/partial.h"

using namespace sncube;

int main(int argc, char** argv) {
  const std::int64_t rows = argc > 1 ? std::atoll(argv[1]) : 100000;
  const int p = argc > 2 ? std::atoi(argv[2]) : 8;
  const int count = argc > 3 ? std::atoi(argv[3]) : 32;

  DatasetSpec spec = DatasetSpec::PaperDefault(rows);
  const Schema schema = spec.MakeSchema();
  const int d = schema.dims();

  // Pick the views: HRU greedy under the analytic size model.
  const AnalyticEstimator est(schema, static_cast<double>(rows));
  const auto selected = GreedySelectViews(d, count, est);
  std::printf("selected %d of %u views (greedy benefit order):", count, 1u << d);
  for (std::size_t i = 0; i < selected.size() && i < 12; ++i) {
    std::printf(" %s", selected[i].Name(schema).c_str());
  }
  std::printf("%s\n", selected.size() > 12 ? " ..." : "");

  // Compare the two partial schedule-tree strategies on estimated cost.
  for (const auto& [name, strategy] :
       {std::pair{"pruned-Pipesort", PartialStrategy::kPrunedPipesort},
        std::pair{"greedy-lattice ", PartialStrategy::kGreedyLattice}}) {
    double cost = 0;
    int aux = 0;
    for (const auto& part : PartitionViews(selected, d)) {
      if (part.empty()) continue;
      const ViewId root = PartitionRoot(part);
      const ScheduleTree tree =
          BuildPartialTree(part, root, root.DimList(), est, strategy);
      cost += tree.EstimatedCost();
      aux += tree.size() - tree.SelectedCount();
    }
    std::printf("strategy %s: estimated cost %.3g row-ops, %d auxiliary views\n",
                name, cost, aux);
  }

  // Build the partial cube on the cluster with both strategies and report
  // the simulated times.
  for (const auto& [name, strategy] :
       {std::pair{"pruned-Pipesort", PartialStrategy::kPrunedPipesort},
        std::pair{"greedy-lattice ", PartialStrategy::kGreedyLattice}}) {
    Cluster cluster(p);
    std::vector<std::uint64_t> shard_rows(p, 0);
    std::mutex mu;
    cluster.Run([&](Comm& comm) {
      const Relation local = GenerateSlice(spec, p, comm.rank());
      ParallelCubeOptions opts;
      opts.partial_strategy = strategy;
      CubeResult cube = BuildParallelCube(comm, local, schema, selected, opts);
      std::lock_guard<std::mutex> lock(mu);
      shard_rows[comm.rank()] = cube.TotalRows();
    });
    std::uint64_t total = 0;
    for (auto r : shard_rows) total += r;
    std::printf("built with %s on %d nodes: %llu cube rows, simulated %.2f s, "
                "%.1f MB communicated\n",
                name, p, static_cast<unsigned long long>(total),
                cluster.SimTimeSeconds(), cluster.BytesSent() / 1048576.0);
  }
  return 0;
}
