// Quickstart: build a data cube sequentially, look at the schedule tree, and
// answer a few OLAP queries from the materialized views.
//
//   ./examples/quickstart
//
// Walks the whole public API surface in ~80 lines: synthesize a data set,
// materialize the full cube with Pipesort, inspect what was built, and route
// GROUP-BY queries to the cheapest view.
#include <cstdio>

#include "common/timer.h"
#include "data/generator.h"
#include "lattice/lattice.h"
#include "query/engine.h"
#include "schedule/pipesort.h"
#include "seqcube/seq_cube.h"

using namespace sncube;

int main() {
  // A small 4-dimensional fact table: 50k rows, cardinalities 64..4.
  DatasetSpec spec;
  spec.rows = 50000;
  spec.cardinalities = {64, 16, 8, 4};
  spec.seed = 2026;
  const Relation raw = GenerateDataset(spec);
  const Schema schema = spec.MakeSchema();
  std::printf("raw data: %zu rows x %d dims (%.1f KB)\n", raw.size(),
              raw.width(), raw.ByteSize() / 1024.0);

  // Show the Pipesort schedule tree the builder would use.
  const ViewId root = ViewId::Full(schema.dims());
  const AnalyticEstimator est(schema, static_cast<double>(raw.size()));
  const ScheduleTree tree =
      BuildPipesortTree(AllViews(schema.dims()), root, root.DimList(), est);
  std::printf("\nPipesort schedule tree (scan = pipelined, sort = re-sort):\n%s\n",
              tree.ToString(schema).c_str());

  // Materialize the full cube (all 2^4 = 16 views).
  WallTimer timer;
  ExecStats stats;
  const CubeResult cube = SequentialPipesortCube(raw, schema, AggFn::kSum,
                                                 nullptr, &stats);
  std::printf("built %zu views, %llu total rows, in %.2fs "
              "(%llu sorts, %llu pipeline scans)\n",
              cube.views.size(),
              static_cast<unsigned long long>(cube.TotalRows()),
              timer.Seconds(), static_cast<unsigned long long>(stats.sorts),
              static_cast<unsigned long long>(stats.scans));

  // Query the cube: GROUP BY (D1, D3) and a filtered drill-down.
  const CubeQueryEngine engine(cube);
  Query q;
  q.group_by = ViewId::FromDims({1, 3});
  QueryAnswer answer = engine.Execute(q);
  std::printf("\nGROUP BY (%s): %zu rows, answered from view %s "
              "(%llu rows scanned)\n",
              q.group_by.Name(schema).c_str(), answer.rel.size(),
              answer.answered_from.Name(schema).c_str(),
              static_cast<unsigned long long>(answer.rows_scanned));

  q.group_by = ViewId::FromDims({2});
  q.filters = {{.dim = 0, .value = 7}};
  answer = engine.Execute(q);
  std::printf("GROUP BY %s WHERE %s=7: %zu rows, answered from view %s\n",
              schema.name(2).c_str(), schema.name(0).c_str(),
              answer.rel.size(), answer.answered_from.Name(schema).c_str());

  // First rows of the answer, ROLAP-style.
  for (std::size_t r = 0; r < answer.rel.size() && r < 4; ++r) {
    std::printf("  %s=%u -> sum=%lld\n", schema.name(2).c_str(),
                answer.rel.key(r, 0),
                static_cast<long long>(answer.rel.measure(r)));
  }
  return 0;
}
