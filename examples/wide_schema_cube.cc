// wide_schema_cube: Section 3's motivating case — "for a raw data set with
// 20 dimensions, it may be clear from the application that the OLAP queries
// will only require views with at most 5 dimensions. Therefore, it would be
// wasteful to create all 2^20 views when most of them are never used."
//
//   ./examples/wide_schema_cube [rows] [max_dims] [d]
//
// Builds the partial cube of all views with at most `max_dims` dimensions
// (greedy-lattice scheduler; the pruned-Pipesort universe would be 2^19 per
// partition) and shows how tiny a fraction of the full cube's work that is.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/timer.h"
#include "data/generator.h"
#include "lattice/lattice.h"
#include "query/engine.h"
#include "seqcube/seq_cube.h"

using namespace sncube;

namespace {

// Every view with 1..max_dims dimensions, plus the empty view.
std::vector<ViewId> ViewsUpTo(int d, int max_dims) {
  std::vector<ViewId> selected{ViewId::Empty()};
  for (std::uint32_t mask = 1; mask < (1u << d); ++mask) {
    if (__builtin_popcount(mask) <= max_dims) selected.emplace_back(mask);
  }
  return selected;
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t rows = argc > 1 ? std::atoll(argv[1]) : 20000;
  const int max_dims = argc > 2 ? std::atoi(argv[2]) : 3;
  const int d = argc > 3 ? std::atoi(argv[3]) : 16;

  DatasetSpec spec;
  spec.rows = rows;
  for (int i = 0; i < d; ++i) {
    spec.cardinalities.push_back(static_cast<std::uint32_t>(
        i < 4 ? (64 >> i) : (2 + i % 5)));
  }
  spec.seed = 99;
  const Relation raw = GenerateDataset(spec);
  const Schema schema = spec.MakeSchema();

  const auto selected = ViewsUpTo(d, max_dims);
  std::printf("d=%d dimensions -> %.0f views in the full cube;\n"
              "materializing only the %zu views with <= %d dims (%.2f%%)\n",
              d, std::pow(2.0, d), selected.size(), max_dims,
              100.0 * static_cast<double>(selected.size()) / std::pow(2.0, d));

  WallTimer timer;
  ExecStats stats;
  const CubeResult cube =
      SequentialCube(raw, schema, selected, AggFn::kSum, nullptr, &stats,
                     PartialStrategy::kGreedyLattice);
  std::printf("built in %.2f s host time: %llu rows across %zu views "
              "(+%zu auxiliary roots), %llu sorts\n",
              timer.Seconds(),
              static_cast<unsigned long long>(cube.TotalRows()),
              selected.size(), cube.views.size() - selected.size(),
              static_cast<unsigned long long>(stats.sorts));

  // Any query over <= max_dims dimensions is served exactly.
  const CubeQueryEngine engine(cube);
  Query q;
  q.group_by = ViewId::FromDims({1, 5, 9});
  const auto answer = engine.Execute(q);
  std::printf("GROUP BY (%s): %zu rows from view %s\n",
              q.group_by.Name(schema).c_str(), answer.rel.size(),
              answer.answered_from.Name(schema).c_str());

  // Queries over more dimensions fall back to a wider ancestor... which a
  // max-dims cube does not have — the engine reports that honestly.
  q.group_by = ViewId::FromDims({0, 1, 2, 3, 4});
  try {
    engine.Route(q);
    std::printf("unexpected: wide query routed\n");
  } catch (const SncubeError&) {
    std::printf("GROUP BY over %d dims correctly rejected: no materialized "
                "view covers it (that is the trade-off of a partial cube)\n",
                q.group_by.dim_count());
  }
  return 0;
}
