// cluster_cube: the paper's headline scenario — a full ROLAP cube built on a
// simulated shared-nothing Beowulf cluster with Procedure 1.
//
//   ./examples/cluster_cube [rows] [processors]
//
// Every virtual processor starts with its local slice of the raw data on its
// local disk, runs the three phases (partition / compute / merge) per
// Di-partition, and ends up with its shard of every view. The report shows
// the per-phase simulated time breakdown, communication volume, and the
// final balance of the cube across processors.
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "common/timer.h"
#include "core/parallel_cube.h"
#include "data/generator.h"
#include "lattice/lattice.h"
#include "net/cluster.h"

using namespace sncube;

int main(int argc, char** argv) {
  const std::int64_t rows = argc > 1 ? std::atoll(argv[1]) : 200000;
  const int p = argc > 2 ? std::atoi(argv[2]) : 8;

  DatasetSpec spec = DatasetSpec::PaperDefault(rows);
  const Schema schema = spec.MakeSchema();
  const auto selected = AllViews(schema.dims());
  std::printf("building the full %d-dimensional cube (%zu views) of %lld rows "
              "on a simulated %d-node shared-nothing cluster\n",
              schema.dims(), selected.size(), static_cast<long long>(rows), p);

  Cluster cluster(p);  // 100 Mb Ethernet Beowulf cost preset
  std::vector<CubeResult> shards(p);
  std::vector<ParallelCubeStats> stats(p);
  std::mutex mu;

  WallTimer timer;
  cluster.Run([&](Comm& comm) {
    // Each node generates (reads) only its own slice — shared nothing.
    const Relation local = GenerateSlice(spec, p, comm.rank());
    ParallelCubeStats st;
    CubeResult cube = BuildParallelCube(comm, local, schema, selected, {}, &st);
    std::lock_guard<std::mutex> lock(mu);
    shards[comm.rank()] = std::move(cube);
    stats[comm.rank()] = st;
  });
  const double wall = timer.Seconds();

  // Cube totals.
  std::uint64_t cube_rows = 0;
  std::uint64_t cube_bytes = 0;
  for (const auto& shard : shards) {
    cube_rows += shard.TotalRows();
    cube_bytes += shard.TotalBytes();
  }
  std::printf("\ncube: %llu rows (%.1f MB) across %d local disks\n",
              static_cast<unsigned long long>(cube_rows),
              cube_bytes / 1048576.0, p);

  // Simulated time breakdown (the BSP clock the figures use).
  std::printf("simulated parallel wall-clock: %.2f s (host wall: %.2f s)\n",
              cluster.SimTimeSeconds(), wall);
  for (const char* phase : {"partition", "schedule", "compute", "merge"}) {
    double cpu = 0;
    double disk = 0;
    double net = 0;
    for (const auto& rs : cluster.stats()) {
      for (const auto& [name, ps] : rs.phases) {
        if (name.rfind(phase, 0) != 0) continue;  // per-partition suffixes
        cpu += ps.cpu_s;
        disk += ps.disk_s;
        net += ps.net_s;
      }
    }
    std::printf("  %-10s cpu %7.2f s   disk %7.2f s   net %7.2f s "
                "(sums over %d ranks)\n",
                phase, cpu, disk, net, p);
  }
  std::printf("communication: %.1f MB total, %.1f MB of it in the merge\n",
              cluster.BytesSent() / 1048576.0,
              cluster.BytesSent("merge") / 1048576.0);
  std::printf("merge cases: %d prefix (case 1), %d overlap-routing (case 2), "
              "%d re-sort (case 3)\n",
              stats[0].merge.case1_views, stats[0].merge.case2_views,
              stats[0].merge.case3_views);

  // Balance: per-rank share of the largest view.
  ViewId biggest;
  std::uint64_t biggest_rows = 0;
  for (const auto& [id, vr] : shards[0].views) {
    std::uint64_t total = 0;
    for (const auto& shard : shards) total += shard.views.at(id).rel.size();
    if (total > biggest_rows) {
      biggest_rows = total;
      biggest = id;
    }
  }
  std::printf("\nlargest view %s (%llu rows), per-rank shard sizes:\n ",
              biggest.Name(schema).c_str(),
              static_cast<unsigned long long>(biggest_rows));
  for (const auto& shard : shards) {
    std::printf(" %zu", shard.views.at(biggest).rel.size());
  }
  std::printf("\n");
  return 0;
}
