// retail_olap: the decision-support scenario the paper's introduction
// motivates — a retail sales fact table, a materialized cube, and the
// interactive roll-up / drill-down queries analysts actually run. Also
// exports one view as CSV, since ROLAP views are plain relational tables
// ("tight integration with current relational database technology").
//
//   ./examples/retail_olap [rows]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/timer.h"
#include "data/retail.h"
#include "lattice/lattice.h"
#include "query/engine.h"
#include "query/greedy_select.h"
#include "relation/csv.h"
#include "seqcube/seq_cube.h"

using namespace sncube;

namespace {

void Show(const Schema& schema, const QueryAnswer& answer, ViewId group_by,
          int limit) {
  std::printf("  answered from view %s (%llu rows scanned)\n",
              answer.answered_from.Name(schema).c_str(),
              static_cast<unsigned long long>(answer.rows_scanned));
  const auto dims = group_by.DimList();
  for (std::size_t r = 0; r < answer.rel.size() && r < static_cast<std::size_t>(limit); ++r) {
    std::printf("   ");
    for (std::size_t c = 0; c < dims.size(); ++c) {
      std::printf(" %s=%-4u", schema.name(dims[c]).c_str(),
                  answer.rel.key(r, static_cast<int>(c)));
    }
    std::printf(" units=%lld\n", static_cast<long long>(answer.rel.measure(r)));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t rows = argc > 1 ? std::atoll(argv[1]) : 150000;
  const RetailDataset ds = GenerateRetail(rows);
  const Schema& schema = ds.schema;
  std::printf("retail facts: %zu rows over", ds.facts.size());
  for (int i = 0; i < schema.dims(); ++i) {
    std::printf(" %s(%u)", schema.name(i).c_str(), schema.cardinality(i));
  }
  std::printf("\n");

  // The analysts only need views of up to 3 dimensions; pick the best 24
  // views greedily (HRU) and build a partial cube — Section 3's use case.
  const AnalyticEstimator est(schema, static_cast<double>(ds.facts.size()));
  const auto selected = GreedySelectViews(schema.dims(), 24, est);
  WallTimer timer;
  const CubeResult cube = SequentialCube(ds.facts, schema, selected);
  std::printf("materialized %zu selected views (+%zu auxiliary) in %.2fs, "
              "%llu rows total\n",
              selected.size(), cube.views.size() - selected.size(),
              timer.Seconds(),
              static_cast<unsigned long long>(cube.TotalRows(false)));

  const CubeQueryEngine engine(cube);

  std::printf("\n-- monthly sales (roll-up to month) --\n");
  Query q;
  q.group_by = ViewId::FromDims({2});  // month
  Show(schema, engine.Execute(q), q.group_by, 6);

  std::printf("\n-- top 6 product x month cells by units (drill-down) --\n");
  q.group_by = ViewId::FromDims({0, 2});  // product, month
  q.top_k = 6;  // ORDER BY units DESC LIMIT 6
  Show(schema, engine.Execute(q), q.group_by, 6);
  q.top_k = 0;

  std::printf("\n-- store performance during promotion 1 (slice) --\n");
  q.group_by = ViewId::FromDims({1});  // store
  const auto promo_dims = ViewId::FromDims({4});
  q.filters = {{.dim = promo_dims.DimList()[0], .value = 1}};
  Show(schema, engine.Execute(q), q.group_by, 6);

  // Export the month view as CSV for the relational side of the house.
  q = Query{};
  q.group_by = ViewId::FromDims({2});
  const QueryAnswer monthly = engine.Execute(q);
  const char* path = "monthly_sales.csv";
  std::ofstream out(path);
  WriteCsv(out, monthly.rel, {schema.name(2)}, "units");
  std::printf("\nwrote %zu rows to %s (load it into any RDBMS)\n",
              monthly.rel.size(), path);
  return 0;
}
