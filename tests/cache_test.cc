// ResultCache under concurrency and failover-driven invalidation. This
// binary runs in the TSan CI roster: the mixed Get/Put/Clear traffic below
// is exactly the interleaving the serving tier produces when a shard
// restarts while its siblings keep serving.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/generator.h"
#include "lattice/lattice.h"
#include "query/engine.h"
#include "seqcube/seq_cube.h"
#include "serve/result_cache.h"
#include "serve/retry_policy.h"
#include "serve/router.h"
#include "serve/shard_set.h"

namespace sncube {
namespace {

std::shared_ptr<const QueryAnswer> MakeAnswer(int width, std::size_t rows,
                                              Key salt = 0) {
  auto a = std::make_shared<QueryAnswer>();
  a->rel = Relation(width);
  std::vector<Key> keys(static_cast<std::size_t>(width));
  for (std::size_t r = 0; r < rows; ++r) {
    for (int c = 0; c < width; ++c) {
      keys[static_cast<std::size_t>(c)] = static_cast<Key>(r) + salt;
    }
    a->rel.Append(keys, static_cast<Measure>(r));
  }
  return a;
}

TEST(ResultCacheClear, CountsInvalidationsAndKeepsHistory) {
  ResultCache cache(1 << 20, 4);
  for (int i = 0; i < 10; ++i) {
    cache.Put("k" + std::to_string(i), MakeAnswer(2, 4));
  }
  EXPECT_NE(cache.Get("k3"), nullptr);
  CacheStats before = cache.Stats();
  EXPECT_EQ(before.entries, 10u);
  EXPECT_EQ(before.invalidations, 0u);

  cache.Clear();

  const CacheStats after = cache.Stats();
  EXPECT_EQ(after.entries, 0u);
  EXPECT_EQ(after.bytes, 0u);
  EXPECT_EQ(after.invalidations, 10u);
  // History survives the wipe — hit rates stay meaningful across restarts.
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.inserts, before.inserts);
  EXPECT_EQ(cache.Get("k3"), nullptr);  // and the entries are really gone
}

TEST(ResultCacheClear, OutstandingReferencesSurvive) {
  ResultCache cache(1 << 20, 2);
  cache.Put("k", MakeAnswer(2, 8, 100));
  const auto ref = cache.Get("k");
  ASSERT_NE(ref, nullptr);
  cache.Clear();
  // The shared_ptr handed out before the wipe stays valid and unchanged.
  EXPECT_EQ(ref->rel.size(), 8u);
  EXPECT_EQ(ref->rel.key(0, 0), static_cast<Key>(100));
}

// Concurrent mixed traffic with periodic invalidation. The assertions are
// deliberately weak (conservation, no lost counters) — the real check is
// TSan finding no races between Get's LRU promotion, Put's eviction, and
// Clear's wholesale drop.
TEST(ResultCacheConcurrency, MixedTrafficWithPeriodicClearIsRaceFree) {
  // Small budget so evictions happen constantly alongside the clears.
  ResultCache cache(16 << 10, 4);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 3000;
  std::atomic<std::uint64_t> observed_hits{0};
  std::atomic<std::uint64_t> gets{0};
  std::atomic<std::uint64_t> puts{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "q" + std::to_string(rng.Below(64));
        if (rng.Below(2) == 0) {
          gets.fetch_add(1, std::memory_order_relaxed);
          if (cache.Get(key) != nullptr) {
            observed_hits.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          puts.fetch_add(1, std::memory_order_relaxed);
          cache.Put(key, MakeAnswer(2, 1 + rng.Below(8)));
        }
      }
    });
  }
  // The invalidator: a shard "restarting" every few thousand operations.
  threads.emplace_back([&] {
    for (int i = 0; i < 20; ++i) {
      cache.Clear();
      std::this_thread::yield();
    }
  });
  for (auto& th : threads) th.join();

  const CacheStats s = cache.Stats();
  // Conservation under concurrent clears: every Get was counted exactly
  // once, no Put counted more than once (refreshes aren't inserts).
  EXPECT_EQ(s.hits + s.misses, gets.load());
  EXPECT_LE(s.inserts, puts.load());
  EXPECT_EQ(s.hits, observed_hits.load());
  // Every resident entry was inserted and never double-counted: what's left
  // is inserts minus everything evicted or invalidated.
  EXPECT_EQ(s.entries, s.inserts - s.evictions - s.invalidations);
}

// --------------------------------------------------------------------------
// Epoch scoping (online refresh, src/refresh): entries are stamped with the
// snapshot epoch they were computed against; lookups hit only their own
// epoch and retirement invalidates per-epoch, not globally.

TEST(ResultCacheEpoch, LookupsNeverCrossEpochs) {
  ResultCache cache(1 << 20, 4);
  cache.Put("q", MakeAnswer(2, 4, /*salt=*/0), /*epoch=*/0);
  cache.Put("q", MakeAnswer(2, 4, /*salt=*/1000), /*epoch=*/1);

  const auto old_hit = cache.Get("q", 0);
  const auto new_hit = cache.Get("q", 1);
  ASSERT_NE(old_hit, nullptr);
  ASSERT_NE(new_hit, nullptr);
  EXPECT_EQ(old_hit->rel.key(0, 0), static_cast<Key>(0));
  EXPECT_EQ(new_hit->rel.key(0, 0), static_cast<Key>(1000));
  // An epoch nothing was cached at misses, whatever the key.
  EXPECT_EQ(cache.Get("q", 2), nullptr);
  EXPECT_EQ(cache.Stats().entries, 2u);
}

TEST(ResultCacheEpoch, ClearEpochDropsExactlyThatEpoch) {
  ResultCache cache(1 << 20, 4);
  for (int i = 0; i < 6; ++i) {
    cache.Put("k" + std::to_string(i), MakeAnswer(2, 4), /*epoch=*/0);
  }
  for (int i = 0; i < 4; ++i) {
    cache.Put("k" + std::to_string(i), MakeAnswer(2, 4), /*epoch=*/1);
  }
  ASSERT_EQ(cache.Stats().entries, 10u);

  EXPECT_EQ(cache.ClearEpoch(0), 6u);

  const CacheStats s = cache.Stats();
  EXPECT_EQ(s.entries, 4u);
  EXPECT_EQ(s.invalidations, 6u);
  EXPECT_EQ(cache.Get("k2", 0), nullptr);   // old epoch gone
  EXPECT_NE(cache.Get("k2", 1), nullptr);   // new epoch untouched
  EXPECT_EQ(cache.ClearEpoch(0), 0u);       // idempotent once drained
}

// The swap-window invariant, concurrently: readers pinned to the old and the
// new epoch run mixed traffic while a swapper retires the old epoch. A hit
// must always carry the payload of the reader's own epoch — never the other
// one — and TSan must see no races between epoch-tagged Get/Put and
// ClearEpoch's selective walk. Answers are salted by epoch so a stale-epoch
// hit is detectable from the payload alone.
TEST(ResultCacheEpochConcurrency, MixedTrafficAcrossSwapNeverHitsStaleEpoch) {
  ResultCache cache(64 << 10, 4);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 3000;
  constexpr Key kSaltStride = 1000;
  std::atomic<std::uint64_t> stale_hits{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 77);
      for (int i = 0; i < kOpsPerThread; ++i) {
        // First half of the run mixes both epochs, second half is all
        // new-epoch — mixed traffic across the swap boundary.
        const std::uint64_t epoch = (i < kOpsPerThread / 2) ? rng.Below(2) : 1;
        const std::string key = "q" + std::to_string(rng.Below(32));
        if (rng.Below(2) == 0) {
          const auto hit = cache.Get(key, epoch);
          if (hit != nullptr &&
              hit->rel.key(0, 0) / kSaltStride != static_cast<Key>(epoch)) {
            stale_hits.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          cache.Put(key, MakeAnswer(2, 1, static_cast<Key>(epoch) * kSaltStride),
                    epoch);
        }
      }
    });
  }
  // The swapper: epoch 0 retires repeatedly while traffic flows.
  threads.emplace_back([&] {
    for (int i = 0; i < 25; ++i) {
      cache.ClearEpoch(0);
      std::this_thread::yield();
    }
  });
  for (auto& th : threads) th.join();

  EXPECT_EQ(stale_hits.load(), 0u);
  const CacheStats s = cache.Stats();
  EXPECT_EQ(s.entries, s.inserts - s.evictions - s.invalidations);
}

// Failover integration: a shard killed for a finite window comes back with
// cold caches (restart semantics), while the surviving shard keeps its
// entries — and every answer stays correct throughout.
TEST(ResultCacheFailover, RestartDropsOnlyTheRestartedShardsEntries) {
  DatasetSpec spec;
  spec.rows = 300;
  spec.cardinalities = {6, 4, 3};
  spec.seed = 13;
  const Schema schema = spec.MakeSchema();
  const Relation raw = GenerateSlice(spec, 1, 0);
  const CubeResult cube = SequentialCube(raw, schema, AllViews(schema.dims()));
  const CubeQueryEngine golden(cube);

  ManualServeClock clock;
  ShardSetOptions sopts;
  sopts.shards = 2;
  sopts.clock = &clock;
  sopts.server.workers = 2;
  ShardSet shards(cube, sopts, FaultPlan::Parse("shardkill:1:5-10;seed:3"));
  RouterOptions ropts;
  ropts.retry_budget_ratio = 1.0;
  ropts.breaker.cooldown_us = 500;
  ropts.probe_every = 4;
  Router router(shards, ropts);

  Query q;
  q.group_by = ViewId::FromDims({1, 2});  // scatter: warms both shards
  const Relation want = golden.Execute(q).rel;
  for (int i = 0; i < 30; ++i) {
    clock.Advance(200);
    const RouterResult r = router.Execute(q);
    if (r.outcome == RouterOutcome::kOk) {
      ASSERT_NE(r.answer, nullptr);
      EXPECT_EQ(r.answer->rel, want) << "request " << i;
    }
  }

  // Shard 1's primary copy was warmed before the kill and cleared at the
  // restart; shard 0 never restarted, so its cache kept every entry.
  EXPECT_GT(shards.primary_server(1).Stats().cache.invalidations, 0u);
  EXPECT_EQ(shards.primary_server(0).Stats().cache.invalidations, 0u);
  EXPECT_GT(shards.primary_server(0).Stats().cache.hits, 0u);
  shards.Shutdown();
}

}  // namespace
}  // namespace sncube
