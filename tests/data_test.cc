#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "data/generator.h"
#include "data/retail.h"
#include "relation/aggregate.h"
#include "relation/sort.h"

namespace sncube {
namespace {

TEST(Generator, RowCountAndWidth) {
  DatasetSpec spec;
  spec.rows = 1234;
  spec.cardinalities = {16, 8, 4};
  Relation rel = GenerateDataset(spec);
  EXPECT_EQ(rel.size(), 1234u);
  EXPECT_EQ(rel.width(), 3);
}

TEST(Generator, KeysWithinCardinality) {
  DatasetSpec spec;
  spec.rows = 5000;
  spec.cardinalities = {32, 4};
  Relation rel = GenerateDataset(spec);
  Schema schema = spec.MakeSchema();
  for (std::size_t r = 0; r < rel.size(); ++r) {
    for (int c = 0; c < rel.width(); ++c) {
      EXPECT_LT(rel.key(r, c), schema.cardinality(c));
    }
  }
}

TEST(Generator, DeterministicForSeed) {
  DatasetSpec spec;
  spec.rows = 500;
  spec.cardinalities = {16, 8};
  spec.seed = 77;
  EXPECT_EQ(GenerateDataset(spec), GenerateDataset(spec));
  spec.seed = 78;
  DatasetSpec other;
  other.rows = 500;
  other.cardinalities = {16, 8};
  other.seed = 77;
  EXPECT_FALSE(GenerateDataset(spec) == GenerateDataset(other));
}

TEST(Generator, SlicesPartitionTheDataset) {
  DatasetSpec spec;
  spec.rows = 1001;  // deliberately not divisible by p
  spec.cardinalities = {16, 8};
  const Relation whole = GenerateDataset(spec);
  for (int p : {2, 3, 7}) {
    Relation reassembled(2);
    std::size_t max_slice = 0;
    std::size_t min_slice = whole.size();
    for (int r = 0; r < p; ++r) {
      Relation slice = GenerateSlice(spec, p, r);
      max_slice = std::max(max_slice, slice.size());
      min_slice = std::min(min_slice, slice.size());
      reassembled.Concat(std::move(slice));
    }
    EXPECT_EQ(reassembled, whole) << "p=" << p;
    EXPECT_LE(max_slice - min_slice, 1u) << "p=" << p;
  }
}

TEST(Generator, SkewFollowsSortedDimension) {
  // Unsorted input: the 256-cardinality dim has alpha=3 and must stay
  // skewed after the schema sorts it to the front.
  DatasetSpec spec;
  spec.rows = 20000;
  spec.cardinalities = {8, 256, 16};
  spec.alphas = {0.0, 3.0, 0.0};
  Relation rel = GenerateDataset(spec);
  // Column 0 is the 256-card dimension after sorting.
  std::size_t head = 0;
  for (std::size_t r = 0; r < rel.size(); ++r) head += (rel.key(r, 0) < 2);
  EXPECT_GT(head, rel.size() * 3 / 5);
  // Column 2 (the 8-card dim) stays uniform.
  std::map<Key, int> counts;
  for (std::size_t r = 0; r < rel.size(); ++r) counts[rel.key(r, 2)]++;
  for (const auto& [k, c] : counts) {
    EXPECT_NEAR(c, 20000 / 8.0, 20000 / 8.0 * 0.3);
  }
}

TEST(Generator, PaperDefaultShape) {
  const auto spec = DatasetSpec::PaperDefault(100);
  Schema schema = spec.MakeSchema();
  EXPECT_EQ(schema.dims(), 8);
  EXPECT_EQ(schema.cardinality(0), 256u);
  EXPECT_EQ(schema.cardinality(7), 6u);
  EXPECT_EQ(GenerateDataset(spec).size(), 100u);
}

TEST(Retail, GeneratesValidFacts) {
  RetailDataset ds = GenerateRetail(5000);
  EXPECT_EQ(ds.facts.size(), 5000u);
  EXPECT_EQ(ds.facts.width(), ds.schema.dims());
  EXPECT_EQ(ds.names.size(), static_cast<std::size_t>(ds.schema.dims()));
  EXPECT_EQ(ds.schema.cardinality(0), 500u);  // product leads
  EXPECT_EQ(ds.names[0], "product");
  for (std::size_t r = 0; r < ds.facts.size(); ++r) {
    EXPECT_GE(ds.facts.measure(r), 1);
    for (int c = 0; c < ds.facts.width(); ++c) {
      EXPECT_LT(ds.facts.key(r, c), ds.schema.cardinality(c));
    }
  }
}

TEST(Retail, ProductDimensionIsSkewed) {
  RetailDataset ds = GenerateRetail(20000);
  std::size_t head = 0;
  for (std::size_t r = 0; r < ds.facts.size(); ++r) {
    head += (ds.facts.key(r, 0) < 25);  // top 5% of products
  }
  // Zipf(1.2) concentrates far more than 5% of sales on the top products.
  EXPECT_GT(head, ds.facts.size() / 3);
}

}  // namespace
}  // namespace sncube
