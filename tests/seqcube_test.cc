#include <gtest/gtest.h>

#include <algorithm>

#include "data/generator.h"
#include "lattice/lattice.h"
#include "relation/sort.h"
#include "schedule/pipesort.h"
#include "seqcube/cube_result.h"
#include "seqcube/pipeline.h"
#include "seqcube/seq_cube.h"

namespace sncube {
namespace {

// Compares a computed view against the brute-force group-by, ignoring row
// order.
void ExpectViewCorrect(const Relation& raw, const ViewResult& vr, AggFn fn) {
  const Relation expected = BruteForceView(raw, vr.id, fn);
  const Relation actual = CanonicalizeRows(vr.rel);
  ASSERT_EQ(actual.size(), expected.size()) << "view mask=" << vr.id.mask();
  EXPECT_EQ(actual, expected) << "view mask=" << vr.id.mask();
}

DatasetSpec SmallSpec(std::int64_t rows, std::uint64_t seed = 5) {
  DatasetSpec spec;
  spec.rows = rows;
  spec.cardinalities = {16, 8, 4, 3};
  spec.seed = seed;
  return spec;
}

TEST(ComputeRootData, FullRootEqualsBruteForce) {
  const auto spec = SmallSpec(5000);
  const Relation raw = GenerateDataset(spec);
  const ViewId root = ViewId::Full(4);
  Relation data = ComputeRootData(raw, root, root.DimList(), AggFn::kSum);
  EXPECT_EQ(CanonicalizeRows(data), BruteForceView(raw, root, AggFn::kSum));
  EXPECT_TRUE(IsSorted(data, IdentityOrder(4)));
}

TEST(ComputeRootData, SubsetRootInPermutedOrder) {
  const auto spec = SmallSpec(3000);
  const Relation raw = GenerateDataset(spec);
  const ViewId root = ViewId::FromDims({1, 3});
  const std::vector<int> order{3, 1};  // sort by D3 then D1
  Relation data = ComputeRootData(raw, root, order, AggFn::kSum);
  EXPECT_EQ(data.width(), 2);
  // Canonical layout: column 0 = dim 1, column 1 = dim 3; sorted by (3,1) =
  // columns (1,0).
  EXPECT_TRUE(IsSorted(data, std::vector<int>{1, 0}));
  EXPECT_EQ(CanonicalizeRows(data), BruteForceView(raw, root, AggFn::kSum));
}

TEST(ComputeRootData, EmptyRootTotalsEverything) {
  const auto spec = SmallSpec(1000);
  const Relation raw = GenerateDataset(spec);
  Relation data =
      ComputeRootData(raw, ViewId::Empty(), {}, AggFn::kSum);
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data.measure(0), 1000);  // measures are all 1
}

TEST(Pipeline, ExecutesAPartitionCorrectly) {
  const auto spec = SmallSpec(4000);
  const Relation raw = GenerateDataset(spec);
  const Schema schema = spec.MakeSchema();
  const auto parts = PartitionViews(AllViews(4), 4);
  const ViewId root = PartitionRoot(parts[0]);
  AnalyticEstimator est(schema, 4000);
  const ScheduleTree tree =
      BuildPipesortTree(parts[0], root, root.DimList(), est);

  Relation root_data =
      ComputeRootData(raw, root, root.DimList(), AggFn::kSum);
  ExecStats stats;
  const CubeResult cube = ExecuteScheduleTree(tree, std::move(root_data),
                                              AggFn::kSum, nullptr, &stats);
  ASSERT_EQ(cube.views.size(), 8u);
  for (const auto& [id, vr] : cube.views) {
    ExpectViewCorrect(raw, vr, AggFn::kSum);
    // Rows must be sorted in the view's declared order.
    EXPECT_TRUE(IsSorted(vr.rel, ColumnsOf(vr.id, vr.order)));
  }
  EXPECT_GT(stats.scans, 0u);
  EXPECT_GT(stats.rows_emitted, 0u);
}

TEST(Pipeline, RejectsUnsortedRootData) {
  const Schema schema({8, 4});
  AnalyticEstimator est(schema, 100);
  const ViewId root = ViewId::Full(2);
  const ScheduleTree tree =
      BuildPipesortTree(AllViews(2), root, root.DimList(), est);
  Relation unsorted(2);
  unsorted.Append(std::vector<Key>{5, 0}, 1);
  unsorted.Append(std::vector<Key>{1, 0}, 1);
  EXPECT_THROW(
      ExecuteScheduleTree(tree, std::move(unsorted), AggFn::kSum),
      SncubeError);
}

TEST(Pipeline, EmptyRootDataYieldsEmptyViews) {
  const Schema schema({8, 4});
  AnalyticEstimator est(schema, 0);
  const ViewId root = ViewId::Full(2);
  const ScheduleTree tree =
      BuildPipesortTree(AllViews(2), root, root.DimList(), est);
  const CubeResult cube =
      ExecuteScheduleTree(tree, Relation(2), AggFn::kSum);
  for (const auto& [id, vr] : cube.views) EXPECT_TRUE(vr.rel.empty());
}

TEST(SequentialPipesort, FullCubeMatchesBruteForce) {
  const auto spec = SmallSpec(6000, 11);
  const Relation raw = GenerateDataset(spec);
  const Schema schema = spec.MakeSchema();
  ExecStats stats;
  const CubeResult cube =
      SequentialPipesortCube(raw, schema, AggFn::kSum, nullptr, &stats);
  ASSERT_EQ(cube.views.size(), 16u);
  for (const auto& [id, vr] : cube.views) {
    ExpectViewCorrect(raw, vr, AggFn::kSum);
  }
  // The pipelined execution must sort far fewer times than one sort per
  // view.
  EXPECT_LT(stats.sorts, 16u);
}

TEST(SequentialPipesort, WithDiskAccounting) {
  const auto spec = SmallSpec(2000);
  const Relation raw = GenerateDataset(spec);
  const Schema schema = spec.MakeSchema();
  DiskModel disk({.block_bytes = 4096, .memory_bytes = 1 << 20});
  const CubeResult cube =
      SequentialPipesortCube(raw, schema, AggFn::kSum, &disk);
  EXPECT_EQ(cube.views.size(), 16u);
  EXPECT_GT(disk.blocks_read(), 0u);
  EXPECT_GT(disk.blocks_written(), 0u);
}

TEST(SequentialCube, PartitionedFullCubeMatchesPipesort) {
  const auto spec = SmallSpec(3000, 21);
  const Relation raw = GenerateDataset(spec);
  const Schema schema = spec.MakeSchema();
  const CubeResult a = SequentialPipesortCube(raw, schema);
  const CubeResult b = SequentialCube(raw, schema, AllViews(4));
  ASSERT_EQ(a.views.size(), b.views.size());
  for (const auto& [id, vr] : a.views) {
    const auto it = b.views.find(id);
    ASSERT_NE(it, b.views.end());
    EXPECT_EQ(CanonicalizeRows(vr.rel), CanonicalizeRows(it->second.rel));
  }
}

TEST(SequentialCube, PartialSelection) {
  const auto spec = SmallSpec(3000, 31);
  const Relation raw = GenerateDataset(spec);
  const Schema schema = spec.MakeSchema();
  const std::vector<ViewId> selected{
      ViewId::FromDims({0, 1}), ViewId::FromDims({1, 2}),
      ViewId::FromDims({3}), ViewId::Empty()};
  for (auto strategy : {PartialStrategy::kPrunedPipesort,
                        PartialStrategy::kGreedyLattice}) {
    const CubeResult cube = SequentialCube(raw, schema, selected,
                                           AggFn::kSum, nullptr, nullptr,
                                           strategy);
    for (ViewId v : selected) {
      const auto it = cube.views.find(v);
      ASSERT_NE(it, cube.views.end()) << "missing selected view";
      EXPECT_TRUE(it->second.selected);
      ExpectViewCorrect(raw, it->second, AggFn::kSum);
    }
    // Auxiliaries, when present, are flagged and also correct.
    for (const auto& [id, vr] : cube.views) {
      if (std::find(selected.begin(), selected.end(), id) == selected.end()) {
        EXPECT_FALSE(vr.selected);
        ExpectViewCorrect(raw, vr, AggFn::kSum);
      }
    }
  }
}

TEST(SequentialCube, MinAndMaxAggregates) {
  DatasetSpec spec = SmallSpec(2000, 41);
  Relation raw = GenerateDataset(spec);
  // Give rows distinguishable measures.
  for (std::size_t r = 0; r < raw.size(); ++r) {
    raw.measure(r) = static_cast<Measure>(r % 97) - 48;
  }
  const Schema schema = spec.MakeSchema();
  for (AggFn fn : {AggFn::kMin, AggFn::kMax}) {
    const CubeResult cube = SequentialCube(raw, schema, AllViews(4), fn);
    for (const auto& [id, vr] : cube.views) {
      ExpectViewCorrect(raw, vr, fn);
    }
  }
}

TEST(SequentialCube, HeadlineRowCountsScale) {
  // Sanity: the cube is much bigger than the input (the paper's 2M rows →
  // ≈227M cube rows at d = 8; here a scaled-down shape check).
  DatasetSpec spec = DatasetSpec::PaperDefault(20000);
  const Relation raw = GenerateDataset(spec);
  const Schema schema = spec.MakeSchema();
  const CubeResult cube = SequentialCube(raw, schema, AllViews(8));
  EXPECT_EQ(cube.views.size(), 256u);
  EXPECT_GT(cube.TotalRows(), raw.size() * 10);
}

}  // namespace
}  // namespace sncube
