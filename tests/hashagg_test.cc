// src/hashagg/: the lock-striped concurrent aggregation engine.
//
// The master property is byte-identity: HashAggregate must equal
// relation/aggregate.h's SortAndAggregate — the sort backend's primitive —
// exactly, for every aggregate, column subset, thread count, and stripe
// count. Everything else (striping under contention, width-0, single
// group, stats) hangs off that contract.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/rng.h"
#include "exec/task_pool.h"
#include "hashagg/concurrent_map.h"
#include "hashagg/hash_agg.h"
#include "relation/aggregate.h"

namespace sncube {
namespace {

using hashagg::ConcurrentAggMap;
using hashagg::GroupKey;
using hashagg::HashAggregate;
using hashagg::HashAggStats;

Relation RandomRelation(std::size_t rows, const std::vector<Key>& cards,
                        std::uint64_t seed) {
  Relation rel(static_cast<int>(cards.size()));
  Rng rng(seed);
  std::vector<Key> keys(cards.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cards.size(); ++c) {
      keys[c] = static_cast<Key>(rng.Below(cards[c]));
    }
    rel.Append(keys, static_cast<Measure>(rng.Below(2000)) - 1000);
  }
  return rel;
}

TEST(HashAggregate, MatchesSortAndAggregateSerial) {
  const Relation rel = RandomRelation(4000, {8, 4, 16, 3, 2}, 11);
  const std::vector<std::vector<int>> subsets = {
      {0, 1, 2, 3, 4}, {2, 0}, {4}, {1, 3}, {3, 1, 0}};
  for (AggFn fn : {AggFn::kSum, AggFn::kMin, AggFn::kMax}) {
    for (const auto& cols : subsets) {
      EXPECT_EQ(HashAggregate(rel, cols, fn), SortAndAggregate(rel, cols, fn))
          << "fn=" << static_cast<int>(fn) << " width=" << cols.size();
    }
  }
}

TEST(HashAggregate, PoolResultIdenticalToSerial) {
  // Dup-heavy so the parallel chunks collide on groups constantly.
  const Relation rel = RandomRelation(30000, {6, 5, 4}, 22);
  const std::vector<int> cols = {0, 2};
  const Relation serial = HashAggregate(rel, cols, AggFn::kSum);
  EXPECT_EQ(serial, SortAndAggregate(rel, cols, AggFn::kSum));
  for (int threads : {2, 4, 8}) {
    exec::TaskPool pool(threads);
    exec::PoolScope scope(&pool);
    EXPECT_EQ(HashAggregate(rel, cols, AggFn::kSum), serial)
        << "threads=" << threads;
  }
}

TEST(HashAggregate, WidthZeroAggregatesEverything) {
  const Relation rel = RandomRelation(777, {5, 3}, 33);
  for (AggFn fn : {AggFn::kSum, AggFn::kMin, AggFn::kMax}) {
    const Relation got = HashAggregate(rel, {}, fn);
    EXPECT_EQ(got, SortAndAggregate(rel, {}, fn));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got.width(), 0);
  }
}

TEST(HashAggregate, SingleGroup) {
  Relation rel(2);
  const std::vector<Key> row = {7, 9};
  for (int i = 0; i < 500; ++i) rel.Append(row, i);
  const std::vector<int> cols = {0, 1};
  const Relation got = HashAggregate(rel, cols, AggFn::kSum);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got.measure(0), 500 * 499 / 2);
  EXPECT_EQ(got, SortAndAggregate(rel, cols, AggFn::kSum));
}

TEST(HashAggregate, EmptyRelation) {
  const Relation rel(3);
  const std::vector<int> cols = {1, 0};
  const Relation got = HashAggregate(rel, cols, AggFn::kSum);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(got.width(), 2);
  EXPECT_EQ(HashAggregate(rel, {}, AggFn::kSum).size(), 0u);
}

TEST(HashAggregate, StatsCountRowsAndGroups) {
  const Relation rel = RandomRelation(1000, {4, 4}, 44);
  HashAggStats stats;
  const std::vector<int> cols = {0, 1};
  const Relation got = HashAggregate(rel, cols, AggFn::kSum, &stats);
  EXPECT_EQ(stats.rows_hashed, 1000u);
  EXPECT_EQ(stats.groups, got.size());
}

// ---------------------------------------------------------------------------
// ConcurrentAggMap directly: striping under contention.

TEST(ConcurrentAggMap, ContendedStripesStaySane) {
  // 2 stripes, 4 hot keys, many threads: every Combine contends. The sums
  // must still come out exact — under TSan this is also the data-race proof
  // for the striped locking.
  constexpr std::size_t kRows = 100000;
  constexpr Key kGroups = 4;
  ConcurrentAggMap map(/*stripes=*/2);
  exec::TaskPool pool(8);
  pool.ParallelFor(kRows, 512, [&](std::size_t begin, std::size_t end) {
    GroupKey key{};
    for (std::size_t r = begin; r < end; ++r) {
      key.words[0] = static_cast<Key>(r % kGroups);
      map.Combine(key, static_cast<Measure>(r), AggFn::kSum);
    }
  });
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kGroups));
  auto pairs = map.Drain();
  ASSERT_EQ(pairs.size(), static_cast<std::size_t>(kGroups));
  // Σ r over r ≡ g (mod 4), r < 100000.
  std::vector<Measure> want(kGroups, 0);
  for (std::size_t r = 0; r < kRows; ++r) {
    want[r % kGroups] += static_cast<Measure>(r);
  }
  for (const auto& [key, sum] : pairs) {
    EXPECT_EQ(sum, want[key.words[0]]) << "group " << key.words[0];
  }
  // Drained: the map is reusable and empty.
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.Drain().empty());
}

TEST(ConcurrentAggMap, MinMaxCombine) {
  ConcurrentAggMap map;
  GroupKey key{};
  map.Combine(key, 5, AggFn::kMin);
  map.Combine(key, -3, AggFn::kMin);
  map.Combine(key, 9, AggFn::kMin);
  auto pairs = map.Drain();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].second, -3);
}

}  // namespace
}  // namespace sncube
