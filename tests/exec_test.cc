// Tests for the intra-rank execution runtime (src/exec/): pool mechanics,
// byte-exact agreement of the parallel sort/merge with their serial
// counterparts for every thread count, and the span-based cost accounting
// (simulated time never grows with threads-per-rank, results never change).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/parallel_cube.h"
#include "data/generator.h"
#include "exec/parallel_algo.h"
#include "exec/task_pool.h"
#include "lattice/lattice.h"
#include "net/cluster.h"
#include "relation/merge.h"
#include "relation/serialize.h"
#include "relation/sort.h"

namespace sncube {
namespace {

// ---------------------------------------------------------------------------
// TaskPool mechanics

TEST(TaskPool, ParallelForCoversEveryIndexOnce) {
  for (int threads : {1, 2, 4, 8}) {
    exec::TaskPool pool(threads);
    const std::size_t n = 10007;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(n, 16, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(TaskPool, ParallelForEmptyAndTiny) {
  exec::TaskPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, 8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<std::size_t> covered{0};
  pool.ParallelFor(3, 1024, [&](std::size_t begin, std::size_t end) {
    covered.fetch_add(end - begin);
  });
  EXPECT_EQ(covered.load(), 3u);
}

TEST(TaskPool, TaskGroupRunsEveryTask) {
  exec::TaskPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  exec::TaskGroup group(&pool);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    group.Run([&hits, i] { hits[i].fetch_add(1); });
  }
  group.Wait();
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskPool, TaskGroupRethrowsLowestSubmissionIndex) {
  exec::TaskPool pool(4);
  exec::TaskGroup group(&pool);
  for (int i = 0; i < 16; ++i) {
    group.Run([i] {
      if (i == 3 || i == 11) {
        throw SncubeError("task " + std::to_string(i));
      }
    });
  }
  try {
    group.Wait();
    FAIL() << "expected SncubeError";
  } catch (const SncubeError& e) {
    // Deterministic: always the error from the lowest submission index,
    // regardless of which worker hit which task first.
    EXPECT_STREQ(e.what(), "task 3");
  }
}

TEST(TaskPool, NestedParallelismRunsInline) {
  exec::TaskPool pool(4);
  std::atomic<std::size_t> covered{0};
  EXPECT_FALSE(exec::TaskPool::OnWorkerThread());
  pool.ParallelFor(64, 1, [&](std::size_t begin, std::size_t end) {
    // A nested region must not deadlock or re-enter the deques; it runs
    // serially on whichever context hit it.
    pool.ParallelFor(end - begin, 1, [&](std::size_t b, std::size_t e) {
      covered.fetch_add(e - b);
    });
  });
  EXPECT_EQ(covered.load(), 64u);
}

TEST(TaskPool, CurrentPoolFollowsScope) {
  EXPECT_EQ(exec::CurrentPool(), nullptr);
  exec::TaskPool pool(2);
  {
    exec::PoolScope scope(&pool);
    EXPECT_EQ(exec::CurrentPool(), &pool);
  }
  EXPECT_EQ(exec::CurrentPool(), nullptr);
}

TEST(TaskPool, StealSmoke) {
  // Ragged tasks from one submitter: with 4 contexts and round-robin push,
  // finishing requires other slots' deques to be drained — via the
  // submitting thread's own scan or idle workers stealing. Either way every
  // task runs exactly once; steal_count is informational.
  exec::TaskPool pool(4);
  std::atomic<int> ran{0};
  std::atomic<std::uint64_t> benchmark_sink{0};
  exec::TaskGroup group(&pool);
  for (int i = 0; i < 256; ++i) {
    group.Run([&ran, &benchmark_sink, i] {
      std::uint64_t x = 0;
      for (int k = 0; k < (i % 7) * 1000; ++k) x += static_cast<std::uint64_t>(k);
      benchmark_sink.fetch_add(x);
      ran.fetch_add(1);
    });
  }
  group.Wait();
  EXPECT_EQ(ran.load(), 256);
  EXPECT_GE(pool.steal_count(), 0u);
}

// ---------------------------------------------------------------------------
// Parallel sort / merge == serial, byte for byte

Relation RandomRelation(std::size_t rows, int width, std::uint64_t seed,
                        std::uint64_t key_range) {
  Rng rng(seed);
  Relation rel(width);
  std::vector<Key> keys(static_cast<std::size_t>(width));
  for (std::size_t r = 0; r < rows; ++r) {
    for (auto& k : keys) k = static_cast<Key>(rng.Below(key_range));
    rel.Append(keys, static_cast<Measure>(r));  // unique measures expose
                                                // any stability violation
  }
  return rel;
}

TEST(ParallelAlgo, SortMatchesSerialAcrossThreadCounts) {
  const std::vector<int> cols = {0, 2, 1};
  // key_range 6 forces long runs of duplicates; the distinct measures make
  // stable order fully observable.
  const Relation rel = RandomRelation(20000, 3, 17, 6);
  const Relation expected = SortRelation(rel, cols);
  for (int threads : {1, 2, 3, 4, 8}) {
    exec::TaskPool pool(threads);
    const Relation got = exec::ParallelSortRelation(rel, cols, &pool);
    ASSERT_EQ(SerializeRelation(got), SerializeRelation(expected))
        << "threads=" << threads;
  }
}

TEST(ParallelAlgo, SortSmallAndEdgeSizes) {
  const std::vector<int> cols = {0};
  for (std::size_t rows : {0u, 1u, 2u, 5u, 4095u, 4096u, 4097u}) {
    const Relation rel = RandomRelation(rows, 1, rows + 3, 10);
    const Relation expected = SortRelation(rel, cols);
    exec::TaskPool pool(4);
    const Relation got = exec::ParallelSortRelation(rel, cols, &pool);
    ASSERT_EQ(SerializeRelation(got), SerializeRelation(expected))
        << "rows=" << rows;
  }
}

TEST(ParallelAlgo, PermutationMatchesSerial) {
  const std::vector<int> cols = {1, 0};
  const Relation rel = RandomRelation(12345, 2, 99, 4);
  const auto expected = SortedPermutation(rel, cols);
  for (int threads : {2, 4, 7}) {
    exec::TaskPool pool(threads);
    EXPECT_EQ(exec::ParallelSortedPermutation(rel, cols, &pool), expected)
        << "threads=" << threads;
  }
}

TEST(ParallelAlgo, MergeMatchesSerialWithDuplicates) {
  const std::vector<int> cols = {0, 1};
  std::vector<Relation> runs;
  for (std::uint64_t s = 0; s < 5; ++s) {
    runs.push_back(
        SortRelation(RandomRelation(3000 + 700 * s, 2, s, 8), cols));
  }
  const Relation expected = MergeSortedRuns(runs, cols);
  for (int threads : {1, 2, 4, 8}) {
    exec::TaskPool pool(threads);
    const Relation got = exec::ParallelMergeSortedRuns(runs, cols, &pool);
    ASSERT_EQ(SerializeRelation(got), SerializeRelation(expected))
        << "threads=" << threads;
  }
}

TEST(ParallelAlgo, MergeEdgeCases) {
  const std::vector<int> cols = {0};
  exec::TaskPool pool(4);
  EXPECT_TRUE(exec::ParallelMergeSortedRuns({}, cols, &pool).empty());
  std::vector<Relation> one;
  one.push_back(SortRelation(RandomRelation(5000, 1, 1, 3), cols));
  EXPECT_EQ(SerializeRelation(exec::ParallelMergeSortedRuns(one, cols, &pool)),
            SerializeRelation(one[0]));
}

TEST(ParallelAlgo, AutoVariantsDispatchOnCurrentPool) {
  const std::vector<int> cols = {0};
  const Relation rel = RandomRelation(9000, 1, 5, 7);
  const Relation expected = SortRelation(rel, cols);
  // No pool installed: serial path.
  EXPECT_EQ(SerializeRelation(exec::SortRelationAuto(rel, cols)),
            SerializeRelation(expected));
  // Pool installed: parallel path, same bytes.
  exec::TaskPool pool(4);
  exec::PoolScope scope(&pool);
  EXPECT_EQ(SerializeRelation(exec::SortRelationAuto(rel, cols)),
            SerializeRelation(expected));
}

// ---------------------------------------------------------------------------
// GreedyMakespan

TEST(GreedyMakespan, Units) {
  // One worker: the sum.
  EXPECT_DOUBLE_EQ(exec::GreedyMakespan(std::vector<double>{1, 2, 3}, 1), 6.0);
  // Uniform chunks, two workers: ceil(3/2) * 1.
  EXPECT_DOUBLE_EQ(exec::GreedyMakespan(std::vector<double>{1, 1, 1}, 2), 2.0);
  // Ragged: 5 goes to w0, 1+1 to w1 -> makespan 5 (not (5+2)/2).
  EXPECT_DOUBLE_EQ(exec::GreedyMakespan(std::vector<double>{5, 1, 1}, 2), 5.0);
  // More workers than tasks: the max.
  EXPECT_DOUBLE_EQ(exec::GreedyMakespan(std::vector<double>{2, 4, 3}, 8), 4.0);
  // Empty region costs nothing.
  EXPECT_DOUBLE_EQ(exec::GreedyMakespan(std::vector<double>{}, 4), 0.0);
}

// ---------------------------------------------------------------------------
// End-to-end: byte-identical cube and monotone simulated time

DatasetSpec ExecSpec(std::int64_t rows) {
  DatasetSpec spec;
  spec.rows = rows;
  spec.cardinalities = {40, 12, 6, 4};
  spec.seed = 777;
  return spec;
}

// Runs the full parallel cube at p ranks with W threads per rank; returns
// (per-view serialized bytes keyed by (rank, view), simulated seconds).
std::pair<std::map<std::pair<int, std::uint32_t>, ByteBuffer>, double>
RunCubeAt(int p, int threads_per_rank, const DatasetSpec& spec) {
  const Schema schema = spec.MakeSchema();
  const auto selected = AllViews(static_cast<int>(spec.cardinalities.size()));
  Cluster cluster(p);
  cluster.set_threads_per_rank(threads_per_rank);
  std::map<std::pair<int, std::uint32_t>, ByteBuffer> bytes;
  Mutex mu;
  cluster.Run([&](Comm& comm) {
    const Relation raw = GenerateSlice(spec, p, comm.rank());
    const CubeResult cube = BuildParallelCube(comm, raw, schema, selected);
    MutexLock lock(mu);
    for (const auto& [id, vr] : cube.views) {
      bytes[{comm.rank(), id.mask()}] = SerializeRelation(vr.rel);
    }
  });
  return {std::move(bytes), cluster.SimTimeSeconds()};
}

TEST(ExecEndToEnd, CubeBytesIdenticalAcrossThreadCounts) {
  const DatasetSpec spec = ExecSpec(8000);
  const auto [serial_bytes, serial_time] = RunCubeAt(2, 1, spec);
  for (int threads : {2, 4}) {
    const auto [bytes, time] = RunCubeAt(2, threads, spec);
    ASSERT_EQ(bytes.size(), serial_bytes.size()) << "W=" << threads;
    for (const auto& [key, buf] : serial_bytes) {
      ASSERT_EQ(bytes.at(key), buf)
          << "W=" << threads << " rank=" << key.first
          << " view mask=" << key.second;
    }
    // Span charging: parallel regions charge work/W <= work, never more.
    EXPECT_LE(time, serial_time + 1e-9) << "W=" << threads;
  }
}

TEST(ExecEndToEnd, SimulatedTimeMonotoneInThreadsPerRank) {
  // Balanced workload (alpha = 0): span charging is exactly work/W for the
  // sort regions, so more threads per rank can only shrink the clock.
  const DatasetSpec spec = ExecSpec(12000);
  double prev = -1;
  for (int threads : {1, 2, 4, 8}) {
    const auto [bytes, time] = RunCubeAt(2, threads, spec);
    (void)bytes;
    if (prev >= 0) {
      EXPECT_LE(time, prev + 1e-9) << "W=" << threads;
    }
    prev = time;
  }
}

TEST(ExecEndToEnd, SpanStatsRecorded) {
  const DatasetSpec spec = ExecSpec(6000);
  const Schema schema = spec.MakeSchema();
  const auto selected = AllViews(4);
  Cluster cluster(2);
  cluster.set_threads_per_rank(4);
  cluster.Run([&](Comm& comm) {
    const Relation raw = GenerateSlice(spec, 2, comm.rank());
    BuildParallelCube(comm, raw, schema, selected);
  });
  double work = 0;
  double span = 0;
  for (const auto& rs : cluster.stats()) {
    const PhaseStats total = rs.Total();
    work += total.par_work_s;
    span += total.par_span_s;
  }
  EXPECT_GT(work, 0.0);
  EXPECT_GT(span, 0.0);
  // Brent: span <= work, and with uniform W=4 regions span == work/4 up to
  // the ragged external-sort regions, so it must be well under the work.
  EXPECT_LT(span, work);
}

}  // namespace
}  // namespace sncube
