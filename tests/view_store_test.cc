#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "data/generator.h"
#include "lattice/lattice.h"
#include "seqcube/seq_cube.h"
#include "seqcube/view_store.h"

namespace sncube {
namespace {

class ViewStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sncube_store_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

ViewResult MakeView(ViewId id, std::vector<int> order, int rows) {
  ViewResult vr;
  vr.id = id;
  vr.order = std::move(order);
  vr.rel = Relation(id.dim_count());
  std::vector<Key> keys(static_cast<std::size_t>(id.dim_count()));
  for (int r = 0; r < rows; ++r) {
    for (auto& k : keys) k = static_cast<Key>(r);
    vr.rel.Append(keys, r * 7);
  }
  return vr;
}

TEST_F(ViewStoreTest, SaveLoadRoundTrip) {
  ViewStore store(dir_);
  const ViewResult original = MakeView(ViewId::FromDims({0, 2}), {2, 0}, 50);
  store.Save(original);
  ASSERT_TRUE(store.Contains(original.id));
  const ViewResult back = store.Load(original.id);
  EXPECT_EQ(back.id, original.id);
  EXPECT_EQ(back.order, original.order);
  EXPECT_EQ(back.rel, original.rel);
}

TEST_F(ViewStoreTest, SchemaManifestRoundTrip) {
  ViewStore store(dir_);
  const Schema schema({100, 50, 2}, {"alpha", "beta", "gamma"});
  store.SaveSchema(schema);
  const Schema back = store.LoadSchema();
  ASSERT_EQ(back.dims(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(back.cardinality(i), schema.cardinality(i));
    EXPECT_EQ(back.name(i), schema.name(i));
  }
}

TEST_F(ViewStoreTest, ListAndLoadCube) {
  DatasetSpec spec;
  spec.rows = 1000;
  spec.cardinalities = {8, 4, 2};
  const Relation raw = GenerateDataset(spec);
  const Schema schema = spec.MakeSchema();
  const CubeResult cube = SequentialCube(raw, schema, AllViews(3));

  ViewStore store(dir_);
  store.SaveCube(cube, schema);
  EXPECT_EQ(store.List().size(), 8u);

  const CubeResult back = store.LoadCube();
  ASSERT_EQ(back.views.size(), cube.views.size());
  for (const auto& [id, vr] : cube.views) {
    const auto it = back.views.find(id);
    ASSERT_NE(it, back.views.end());
    EXPECT_EQ(it->second.rel, vr.rel);
    EXPECT_EQ(it->second.order, vr.order);
  }
}

TEST_F(ViewStoreTest, AuxViewsNotPersisted) {
  ViewStore store(dir_);
  CubeResult cube;
  ViewResult selected = MakeView(ViewId::FromDims({0}), {0}, 3);
  ViewResult aux = MakeView(ViewId::FromDims({1}), {1}, 3);
  aux.selected = false;
  cube.views[selected.id] = std::move(selected);
  cube.views[aux.id] = std::move(aux);
  store.SaveCube(cube, Schema({4, 2}));
  EXPECT_EQ(store.List().size(), 1u);
  EXPECT_FALSE(store.Contains(ViewId::FromDims({1})));
}

TEST_F(ViewStoreTest, OverwriteReplacesContent) {
  ViewStore store(dir_);
  store.Save(MakeView(ViewId::FromDims({0}), {0}, 10));
  store.Save(MakeView(ViewId::FromDims({0}), {0}, 3));
  EXPECT_EQ(store.Load(ViewId::FromDims({0})).rel.size(), 3u);
}

TEST_F(ViewStoreTest, MissingViewThrows) {
  ViewStore store(dir_);
  EXPECT_THROW(store.Load(ViewId::FromDims({0})), SncubeError);
  EXPECT_THROW(store.LoadSchema(), SncubeError);
}

TEST_F(ViewStoreTest, CorruptFileRejected) {
  ViewStore store(dir_);
  const ViewId id = ViewId::FromDims({0, 1});
  store.Save(MakeView(id, {0, 1}, 5));
  // Truncate the file.
  const auto path = dir_ / "v00003.sncv";
  ASSERT_TRUE(std::filesystem::exists(path));
  std::filesystem::resize_file(path, 10);
  EXPECT_THROW(store.Load(id), SncubeError);
}

TEST_F(ViewStoreTest, EmptyViewPersists) {
  ViewStore store(dir_);
  store.Save(MakeView(ViewId::Empty(), {}, 0));
  const ViewResult back = store.Load(ViewId::Empty());
  EXPECT_EQ(back.rel.size(), 0u);
  EXPECT_EQ(back.rel.width(), 0);
}

}  // namespace
}  // namespace sncube
