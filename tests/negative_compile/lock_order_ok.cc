// Positive control for the lock-order negative-compile test: acquires two
// serve-layer anchor mutexes (serve/lock_order.h) in their DECLARED order —
// router before health. Must compile cleanly under
// `-Wthread-safety -Wthread-safety-beta -Werror`; if it does not, the
// SNCUBE_ACQUIRED_AFTER macros themselves are broken.
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "serve/lock_order.h"

int main() {
  sncube::MutexLock router(sncube::kRouterLayer);
  sncube::MutexLock health(sncube::kHealthLayer);
  return 0;
}
