#!/bin/sh
# ctest wrapper for the thread-safety negative-compile check.
#
#   run.sh <fixture-src-dir> <repo-src-dir> <cxx-compiler>
#
# Exit codes: 0 = annotations enforced (control compiles, violation
# rejected), 77 = skipped because the compiler has no -Wthread-safety
# (ctest maps this to SKIP via SKIP_RETURN_CODE), anything else = failure.
set -u

fixture_dir=$1
src_dir=$2
cxx=$3

build_dir=$(mktemp -d) || exit 1
trap 'rm -rf "$build_dir"' EXIT

log="$build_dir/configure.log"
cmake -S "$fixture_dir" -B "$build_dir/b" \
      -DSNCUBE_SRC_DIR="$src_dir" \
      -DCMAKE_CXX_COMPILER="$cxx" >"$log" 2>&1
status=$?
cat "$log"

if grep -q SNCUBE_TS_SKIP "$log"; then
  exit 77
fi
exit $status
