// Positive control for the thread-safety negative-compile test: correctly
// locked accesses to a guarded field. Must compile cleanly under
// `-Wthread-safety -Werror`; if it doesn't, the annotation macros
// themselves are broken and the companion negative test proves nothing.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

struct Counter {
  sncube::Mutex mu;
  int value SNCUBE_GUARDED_BY(mu) = 0;

  void Bump() {
    sncube::MutexLock lock(mu);
    ++value;
  }
  int Get() {
    sncube::MutexLock lock(mu);
    return value;
  }
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return c.Get() == 1 ? 0 : 1;
}
