// Negative fixture for the thread-safety negative-compile test: writes a
// SNCUBE_GUARDED_BY field without holding its mutex. Under clang with
// `-Wthread-safety -Werror` this MUST fail to compile — the test asserts
// exactly that, proving the annotations are enforced rather than decorative.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

struct Counter {
  sncube::Mutex mu;
  int value SNCUBE_GUARDED_BY(mu) = 0;

  void BumpUnlocked() {
    ++value;  // unguarded access: thread-safety analysis must reject this
  }
};

}  // namespace

int main() {
  Counter c;
  c.BumpUnlocked();
  return 0;
}
