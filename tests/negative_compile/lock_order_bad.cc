// Negative fixture for the lock-order negative-compile test: acquires the
// serve-layer anchors (serve/lock_order.h) INVERTED — health while already
// intending to take router. kHealthLayer is declared
// SNCUBE_ACQUIRED_AFTER(kRouterLayer), so taking kRouterLayer while holding
// kHealthLayer contradicts the hierarchy and MUST fail to compile under
// `-Wthread-safety -Wthread-safety-beta -Werror` — the test asserts exactly
// that, proving the ordering declarations are enforced, not decorative.
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "serve/lock_order.h"

int main() {
  sncube::MutexLock health(sncube::kHealthLayer);
  sncube::MutexLock router(sncube::kRouterLayer);  // inverted: must not compile
  return 0;
}
