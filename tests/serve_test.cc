#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "data/generator.h"
#include "lattice/lattice.h"
#include "query/engine.h"
#include "seqcube/seq_cube.h"
#include "serve/latency_histogram.h"
#include "serve/query_key.h"
#include "serve/result_cache.h"
#include "serve/server.h"
#include "serve/workload.h"

namespace sncube {
namespace {

QueryAnswer MakeAnswer(std::size_t rows) {
  QueryAnswer a;
  a.rel = Relation(1);
  for (std::size_t r = 0; r < rows; ++r) {
    const Key k = static_cast<Key>(r);
    a.rel.Append(std::span<const Key>(&k, 1), 1);
  }
  return a;
}

TEST(QueryKey, FilterOrderAndDuplicatesAreCanonicalized) {
  Query a;
  a.group_by = ViewId::FromDims({0, 2});
  a.filters = {{.dim = 3, .value = 7}, {.dim = 1, .value = 4}};
  Query b = a;
  b.filters = {{.dim = 1, .value = 4},
               {.dim = 3, .value = 7},
               {.dim = 1, .value = 4}};  // reordered + duplicated
  EXPECT_EQ(CanonicalQueryKey(a), CanonicalQueryKey(b));
}

TEST(QueryKey, DistinguishesEveryAnswerChangingField) {
  Query base;
  base.group_by = ViewId::FromDims({0, 1});
  const std::string k = CanonicalQueryKey(base);

  Query q = base;
  q.group_by = ViewId::FromDims({0});
  EXPECT_NE(CanonicalQueryKey(q), k);

  q = base;
  q.filters = {{.dim = 2, .value = 1}};
  EXPECT_NE(CanonicalQueryKey(q), k);

  q = base;
  q.fn = AggFn::kMax;
  EXPECT_NE(CanonicalQueryKey(q), k);

  q = base;
  q.top_k = 5;
  EXPECT_NE(CanonicalQueryKey(q), k);
}

TEST(ResultCache, HitAfterPutAndMissBefore) {
  ResultCache cache(1 << 20, 4);
  EXPECT_EQ(cache.Get("k1"), nullptr);
  cache.Put("k1", std::make_shared<const QueryAnswer>(MakeAnswer(3)));
  const auto hit = cache.Get("k1");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->rel.size(), 3u);
  const CacheStats s = cache.Stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  // One shard so eviction order is fully observable. Budget fits two of the
  // three entries (each entry ≈ rel bytes + key + 128 overhead).
  const QueryAnswer proto = MakeAnswer(8);
  const std::size_t entry = CacheEntryBytes("a", proto);
  ResultCache cache(2 * entry + entry / 2, 1);

  cache.Put("a", std::make_shared<const QueryAnswer>(MakeAnswer(8)));
  cache.Put("b", std::make_shared<const QueryAnswer>(MakeAnswer(8)));
  ASSERT_NE(cache.Get("a"), nullptr);  // touch "a" → "b" becomes LRU
  cache.Put("c", std::make_shared<const QueryAnswer>(MakeAnswer(8)));

  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);  // evicted
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.Stats().evictions, 1u);
}

TEST(ResultCache, OversizedAnswerIsNotCached) {
  ResultCache cache(256, 1);
  cache.Put("big", std::make_shared<const QueryAnswer>(MakeAnswer(1000)));
  EXPECT_EQ(cache.Get("big"), nullptr);
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(ResultCache, HitKeepsAnswerAliveAcrossEviction) {
  const QueryAnswer proto = MakeAnswer(8);
  ResultCache cache(CacheEntryBytes("a", proto) + 64, 1);
  cache.Put("a", std::make_shared<const QueryAnswer>(MakeAnswer(8)));
  const auto held = cache.Get("a");
  ASSERT_NE(held, nullptr);
  cache.Put("b", std::make_shared<const QueryAnswer>(MakeAnswer(8)));  // evicts "a"
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(held->rel.size(), 8u);  // still valid through the shared_ptr
}

TEST(LatencyHistogramTest, QuantilesOrderedAndBounded) {
  LatencyHistogram h;
  for (std::uint64_t us = 1; us <= 1000; ++us) h.Record(us);
  const LatencySnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.max_us, 1000u);
  EXPECT_LE(s.p50_us, s.p95_us);
  EXPECT_LE(s.p95_us, s.p99_us);
  // Power-of-two buckets: each quantile within 2x of the true value.
  EXPECT_GE(s.p50_us, 250.0);
  EXPECT_LE(s.p50_us, 1024.0);
  EXPECT_GE(s.p99_us, 512.0);
  EXPECT_LE(s.p99_us, 2048.0);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllCounted) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<std::uint64_t>(i % 4096));
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.Snapshot().count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

struct ServeFixture : ::testing::Test {
  void SetUp() override {
    spec.rows = 3000;
    spec.cardinalities = {16, 8, 4, 3};
    spec.seed = 11;
    raw = GenerateDataset(spec);
    schema = spec.MakeSchema();
    cube = SequentialCube(raw, schema, AllViews(4));
  }

  DatasetSpec spec;
  Relation raw;
  Schema schema;
  CubeResult cube;
};

TEST_F(ServeFixture, ExecuteMatchesEngine) {
  CubeServer server(cube, {.workers = 2, .queue_depth = 32});
  const CubeQueryEngine engine(cube);
  Query q;
  q.group_by = ViewId::FromDims({0, 2});
  const auto served = server.Execute(q);
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(served->rel, engine.Execute(q).rel);
  EXPECT_EQ(served->answered_from, engine.Execute(q).answered_from);
}

TEST_F(ServeFixture, RepeatedQueryHitsCache) {
  CubeServer server(cube, {.workers = 2, .queue_depth = 32});
  Query q;
  q.group_by = ViewId::FromDims({1});
  ASSERT_NE(server.Execute(q), nullptr);
  ASSERT_NE(server.Execute(q), nullptr);
  const StatsSnapshot s = server.Stats();
  EXPECT_EQ(s.cache.misses, 1u);
  EXPECT_EQ(s.cache.hits, 1u);
  EXPECT_EQ(s.completed, 2u);
}

TEST_F(ServeFixture, UnroutableQueryFailsGracefully) {
  const CubeResult partial =
      SequentialCube(raw, schema, {ViewId::FromDims({0, 1})});
  CubeServer server(partial, {.workers = 2, .queue_depth = 32});
  Query q;
  q.group_by = ViewId::FromDims({3});  // nothing covers D3
  EXPECT_EQ(server.Execute(q), nullptr);
  const StatsSnapshot s = server.Stats();
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.completed, 0u);
}

TEST_F(ServeFixture, QueueFullRejectsInsteadOfBlocking) {
  // No workers can make progress until we release them: occupy the pool
  // with requests that block on a latch, then overfill the queue.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;

  CubeServer server(cube, {.workers = 1, .queue_depth = 2});
  Query q;
  q.group_by = ViewId::FromDims({0});

  // First submit occupies the worker (blocking callback), next two fill the
  // queue; the one after that must be rejected.
  std::atomic<int> done{0};
  auto blocker = [&](std::shared_ptr<const QueryAnswer>, QueryOutcome) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    done.fetch_add(1);
  };
  ASSERT_EQ(server.Submit(q, blocker), SubmitStatus::kAccepted);
  // Wait until the worker picked it up (queue drained to 0), so queue
  // capacity is deterministic below.
  while (server.Stats().queue_depth != 0) std::this_thread::yield();

  auto counter = [&](std::shared_ptr<const QueryAnswer>, QueryOutcome) {
    done.fetch_add(1);
  };
  ASSERT_EQ(server.Submit(q, counter), SubmitStatus::kAccepted);
  ASSERT_EQ(server.Submit(q, counter), SubmitStatus::kAccepted);
  EXPECT_EQ(server.Submit(q, counter), SubmitStatus::kRejected);
  EXPECT_EQ(server.Stats().rejected, 1u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  server.Shutdown();  // graceful: drains the two queued requests
  EXPECT_EQ(done.load(), 3);
  EXPECT_EQ(server.Submit(q, counter), SubmitStatus::kShutdown);
}

TEST_F(ServeFixture, DeadlineExpiredRequestTimesOutWithoutExecuting) {
  // One worker, held on a latch; a request queued behind it waits past the
  // configured deadline and must be dropped at dequeue: callback runs with
  // kTimedOut and a null answer, no query work is done for it.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;

  CubeServer server(cube, {.workers = 1,
                           .queue_depth = 8,
                           .deadline = std::chrono::milliseconds(20)});
  Query q;
  q.group_by = ViewId::FromDims({0});

  ASSERT_EQ(server.Submit(q,
                          [&](std::shared_ptr<const QueryAnswer>,
                              QueryOutcome) {
                            std::unique_lock<std::mutex> lock(mu);
                            cv.wait(lock, [&] { return release; });
                          }),
            SubmitStatus::kAccepted);
  while (server.Stats().queue_depth != 0) std::this_thread::yield();

  std::shared_ptr<const QueryAnswer> late_answer;
  QueryOutcome late_outcome = QueryOutcome::kOk;
  std::atomic<bool> late_done{false};
  ASSERT_EQ(server.Submit(q,
                          [&](std::shared_ptr<const QueryAnswer> a,
                              QueryOutcome o) {
                            late_answer = std::move(a);
                            late_outcome = o;
                            late_done.store(true);
                          }),
            SubmitStatus::kAccepted);

  // Let the queued request age past its deadline, then free the worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  server.Shutdown();

  ASSERT_TRUE(late_done.load());
  EXPECT_EQ(late_answer, nullptr);
  EXPECT_EQ(late_outcome, QueryOutcome::kTimedOut);
  const StatsSnapshot s = server.Stats();
  EXPECT_EQ(s.timed_out, 1u);
  EXPECT_EQ(s.failed, 0u);
  // Stats JSON carries the new counter.
  EXPECT_NE(s.ToJson().find("\"timed_out\":1"), std::string::npos);

  // A fresh server with the same deadline but an idle worker serves the
  // identical query fine — the deadline only sheds requests that waited.
  CubeServer fresh(cube, {.workers = 1,
                          .deadline = std::chrono::milliseconds(5000)});
  EXPECT_NE(fresh.Execute(q), nullptr);
}

TEST_F(ServeFixture, ConcurrentClientsMatchSingleThreadedAnswers) {
  // N client threads × M queries each against the server; every answer must
  // equal the single-threaded engine's answer for the same query.
  constexpr int kClients = 8;
  constexpr int kPerClient = 60;

  const CubeQueryEngine engine(cube);
  WorkloadSpec wspec;
  wspec.pool_size = 64;
  wspec.alpha = 1.0;
  const QueryMix mix(cube, schema, wspec);

  // Ground truth, computed once, single-threaded.
  std::vector<QueryAnswer> expected;
  expected.reserve(mix.pool().size());
  for (const Query& q : mix.pool()) expected.push_back(engine.Execute(q));

  CubeServer server(cube, {.workers = 4, .queue_depth = 1024,
                           .cache_bytes = 1u << 20, .cache_shards = 4});
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(static_cast<std::uint64_t>(c) * 7919 + 1);
      for (int i = 0; i < kPerClient; ++i) {
        const std::size_t idx = rng.Below(mix.pool().size());
        const auto got = server.Execute(mix.pool()[idx]);
        if (got == nullptr || got->rel != expected[idx].rel) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const StatsSnapshot s = server.Stats();
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kClients) * kPerClient);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_GT(s.cache.hits, 0u);  // 64-query pool, 480 requests → must re-hit
  EXPECT_EQ(s.latency.count, s.completed + s.failed);
}

TEST_F(ServeFixture, ShutdownIsIdempotentAndDrains) {
  auto server = std::make_unique<CubeServer>(
      cube, ServerOptions{.workers = 2, .queue_depth = 64});
  Query q;
  q.group_by = ViewId::FromDims({0, 1});
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    server->Submit(q, [&](std::shared_ptr<const QueryAnswer> a, QueryOutcome) {
      if (a != nullptr) done.fetch_add(1);
    });
  }
  server->Shutdown();
  EXPECT_EQ(done.load(), 20);  // graceful shutdown ran every callback
  server->Shutdown();          // idempotent
  server.reset();              // destructor after explicit shutdown is fine
}

// Shutdown blocks EVERY caller until quiescence, not just the first. The
// pre-PR-3 protocol early-returned for concurrent callers while the first
// was still joining workers — a destructor racing an explicit Shutdown()
// could then free members under a live worker (the bug -Wthread-safety
// surfaced when the join moved under mu_).
TEST_F(ServeFixture, ConcurrentShutdownCallersAllWaitForQuiescence) {
  CubeServer server(cube, {.workers = 3, .queue_depth = 128});
  Query q;
  q.group_by = ViewId::FromDims({0, 1});
  std::atomic<int> callbacks{0};
  std::uint64_t submitted = 0;
  for (int i = 0; i < 60; ++i) {
    const SubmitStatus st = server.Submit(
        q, [&](std::shared_ptr<const QueryAnswer>, QueryOutcome) {
          callbacks.fetch_add(1);
        });
    if (st == SubmitStatus::kAccepted) ++submitted;
  }
  std::vector<std::thread> closers;
  closers.reserve(4);
  for (int i = 0; i < 4; ++i) {
    closers.emplace_back([&] {
      server.Shutdown();
      // Whichever caller returns, the server must already be quiescent:
      // every accepted request's callback has run.
      EXPECT_EQ(callbacks.load(), static_cast<int>(submitted));
    });
  }
  for (auto& t : closers) t.join();
  EXPECT_EQ(server.Submit(q, nullptr), SubmitStatus::kShutdown);
  const StatsSnapshot s = server.Stats();
  EXPECT_EQ(s.completed + s.failed + s.timed_out, submitted);
}

TEST_F(ServeFixture, InFlightDeadlineCountsSeparatelyFromQueuedExpiry) {
  // The first execution is held past the deadline by the test hook, so the
  // deadline expires IN FLIGHT: kTimedOut with a null answer, counted in
  // both timed_out and deadline_exceeded_in_flight. The freshly computed
  // answer still lands in the cache — the client's retry gets a hit.
  std::atomic<bool> slow_once{true};
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_depth = 8;
  opts.deadline = std::chrono::milliseconds(10);
  opts.pre_execute_hook = [&](const Query&) {
    if (slow_once.exchange(false)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
  };
  CubeServer server(cube, opts);
  Query q;
  q.group_by = ViewId::FromDims({0, 1});

  EXPECT_EQ(server.Execute(q), nullptr);  // held in flight past the deadline
  {
    const StatsSnapshot s = server.Stats();
    EXPECT_EQ(s.timed_out, 1u);
    EXPECT_EQ(s.deadline_exceeded_in_flight, 1u);
    EXPECT_EQ(s.failed, 0u);
    EXPECT_NE(s.ToJson().find("\"deadline_exceeded_in_flight\":1"),
              std::string::npos);
  }

  // Retry: the hook no longer stalls, and the answer computed by the timed
  // out request is already cached.
  EXPECT_NE(server.Execute(q), nullptr);
  const StatsSnapshot s = server.Stats();
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.cache.hits, 1u);
  EXPECT_EQ(s.deadline_exceeded_in_flight, 1u);  // unchanged
}

TEST_F(ServeFixture, QueuedExpiryDoesNotCountAsInFlight) {
  // Re-pin the distinction from the other side: a request whose deadline
  // expires while still QUEUED increments timed_out only.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  CubeServer server(cube, {.workers = 1,
                           .queue_depth = 8,
                           .deadline = std::chrono::milliseconds(15)});
  Query q;
  q.group_by = ViewId::FromDims({2});
  ASSERT_EQ(server.Submit(q,
                          [&](std::shared_ptr<const QueryAnswer>,
                              QueryOutcome) {
                            std::unique_lock<std::mutex> lock(mu);
                            cv.wait(lock, [&] { return release; });
                          }),
            SubmitStatus::kAccepted);
  while (server.Stats().queue_depth != 0) std::this_thread::yield();
  std::atomic<bool> done{false};
  ASSERT_EQ(server.Submit(q,
                          [&](std::shared_ptr<const QueryAnswer>,
                              QueryOutcome) { done.store(true); }),
            SubmitStatus::kAccepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  server.Shutdown();
  ASSERT_TRUE(done.load());
  const StatsSnapshot s = server.Stats();
  EXPECT_EQ(s.timed_out, 1u);
  EXPECT_EQ(s.deadline_exceeded_in_flight, 0u);
}

TEST_F(ServeFixture, InvalidateCacheForcesRecomputeAndCountsDrops) {
  CubeServer server(cube, {.workers = 2, .queue_depth = 32});
  Query q;
  q.group_by = ViewId::FromDims({1, 3});
  ASSERT_NE(server.Execute(q), nullptr);  // miss + insert
  ASSERT_NE(server.Execute(q), nullptr);  // hit
  server.InvalidateCache();
  ASSERT_NE(server.Execute(q), nullptr);  // recompute after the wipe
  const StatsSnapshot s = server.Stats();
  EXPECT_EQ(s.cache.invalidations, 1u);
  EXPECT_EQ(s.cache.misses, 2u);
  EXPECT_EQ(s.cache.hits, 1u);
  EXPECT_NE(s.ToJson().find("\"invalidations\":1"), std::string::npos);
}

TEST_F(ServeFixture, WorkloadQueriesAreAllRoutable) {
  WorkloadSpec wspec;
  wspec.pool_size = 128;
  const QueryMix mix(cube, schema, wspec);
  const CubeQueryEngine engine(cube);
  EXPECT_EQ(mix.pool().size(), 128u);
  for (const Query& q : mix.pool()) {
    EXPECT_NO_THROW(engine.Route(q));
  }
}

TEST_F(ServeFixture, WorkloadIsDeterministicUnderSeed) {
  WorkloadSpec wspec;
  wspec.pool_size = 32;
  wspec.seed = 99;
  const QueryMix a(cube, schema, wspec);
  const QueryMix b(cube, schema, wspec);
  ASSERT_EQ(a.pool().size(), b.pool().size());
  for (std::size_t i = 0; i < a.pool().size(); ++i) {
    EXPECT_EQ(CanonicalQueryKey(a.pool()[i]), CanonicalQueryKey(b.pool()[i]));
  }
}

}  // namespace
}  // namespace sncube
