#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "common/env.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/zipf.h"

namespace sncube {
namespace {

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) out[i] = std::byte(s[i]);
  return out;
}

// Known-answer vectors: RFC 3720 (iSCSI) appendix B.4 plus the classic
// check value for "123456789". A wrong polynomial, reflection, or slicing
// bug fails at least one of these.
TEST(Crc32c, KnownVectors) {
  EXPECT_EQ(Crc32c(Bytes("")), 0x00000000u);
  EXPECT_EQ(Crc32c(Bytes("123456789")), 0xE3069283u);
  EXPECT_EQ(Crc32c(std::vector<std::byte>(32, std::byte{0x00})), 0x8A9136AAu);
  EXPECT_EQ(Crc32c(std::vector<std::byte>(32, std::byte{0xFF})), 0x62A8AB43u);
  std::vector<std::byte> ascending(32);
  for (int i = 0; i < 32; ++i) ascending[i] = std::byte(i);
  EXPECT_EQ(Crc32c(ascending), 0x46DD794Eu);
  std::vector<std::byte> descending(32);
  for (int i = 0; i < 32; ++i) descending[i] = std::byte(31 - i);
  EXPECT_EQ(Crc32c(descending), 0x113FDB5Cu);
}

TEST(Crc32c, IncrementalMatchesOneShotAtEverySplitPoint) {
  Rng rng(2024);
  std::vector<std::byte> data(257);
  for (auto& b : data) b = std::byte(rng.Below(256));
  const std::uint32_t whole = Crc32c(data);
  for (std::size_t cut = 0; cut <= data.size(); cut += 13) {
    const std::uint32_t head =
        Crc32cExtend(kCrc32cInit, std::span(data).subspan(0, cut));
    EXPECT_EQ(Crc32cExtend(head, std::span(data).subspan(cut)), whole)
        << "cut at " << cut;
  }
}

TEST(Crc32c, SealVerifyRoundTrip) {
  std::vector<std::byte> buf = Bytes("some payload bytes");
  const std::vector<std::byte> payload = buf;
  SealFrame(buf);
  EXPECT_EQ(buf.size(), payload.size() + kFrameTrailerBytes);
  EXPECT_EQ(VerifyFrame(buf), payload.size());
  VerifyAndStripFrame(buf);
  EXPECT_EQ(buf, payload);

  std::vector<std::byte> empty;
  SealFrame(empty);
  EXPECT_EQ(VerifyFrame(empty), 0u);
}

TEST(Crc32c, EveryPossibleSingleBitFlipIsDetected) {
  std::vector<std::byte> buf = Bytes("frame under attack");
  SealFrame(buf);
  for (std::size_t bit = 0; bit < buf.size() * 8; ++bit) {
    std::vector<std::byte> mutated = buf;
    mutated[bit / 8] ^= std::byte(1u << (bit % 8));
    EXPECT_THROW(VerifyFrame(mutated), SncubeCorruptionError) << "bit " << bit;
  }
}

TEST(Crc32c, TruncationAndExtensionAreDetected) {
  std::vector<std::byte> buf = Bytes("torn write victim");
  SealFrame(buf);
  for (std::size_t keep = 0; keep < buf.size(); ++keep) {
    std::vector<std::byte> torn(buf.begin(),
                                buf.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW(VerifyFrame(torn), SncubeCorruptionError) << "keep " << keep;
  }
  std::vector<std::byte> extended = buf;
  extended.push_back(std::byte{0});
  EXPECT_THROW(VerifyFrame(extended), SncubeCorruptionError);
}

TEST(Status, CheckThrowsWithLocation) {
  try {
    SNCUBE_CHECK_MSG(1 == 2, "math broke");
    FAIL() << "expected throw";
  } catch (const SncubeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math broke"), std::string::npos);
  }
}

TEST(Status, CheckPassesSilently) {
  EXPECT_NO_THROW(SNCUBE_CHECK(2 + 2 == 4));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowInRangeAndCoversValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.Below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Below(1), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(5);
  Rng child = parent.Split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.Next() == child.Next());
  EXPECT_EQ(same, 0);
}

TEST(Zipf, AlphaZeroIsUniform) {
  ZipfSampler z(100, 0.0);
  Rng rng(11);
  std::vector<int> counts(100, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[z.Sample(rng)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 100.0, n / 100.0 * 0.35);
  }
}

TEST(Zipf, ProbabilitiesSumToOne) {
  for (double alpha : {0.0, 0.5, 1.0, 2.0, 3.0}) {
    ZipfSampler z(64, alpha);
    double sum = 0;
    for (std::uint32_t k = 0; k < 64; ++k) sum += z.Probability(k);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "alpha=" << alpha;
  }
}

TEST(Zipf, SkewConcentratesMassOnSmallKeys) {
  ZipfSampler z(256, 2.0);
  Rng rng(13);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) head += (z.Sample(rng) < 4);
  // With alpha = 2 the first 4 values carry the vast majority of the mass.
  EXPECT_GT(head, n * 3 / 4);
}

TEST(Zipf, EmpiricalMatchesTheoretical) {
  ZipfSampler z(32, 1.0);
  Rng rng(17);
  std::vector<int> counts(32, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[z.Sample(rng)]++;
  for (std::uint32_t k = 0; k < 32; ++k) {
    const double expected = z.Probability(k) * n;
    EXPECT_NEAR(counts[k], expected, 5 * std::sqrt(expected) + 8.0) << "k=" << k;
  }
}

TEST(Zipf, UniverseOneAlwaysZero) {
  ZipfSampler z(1, 3.0);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(z.Sample(rng), 0u);
}

TEST(Env, FallbackWhenUnset) {
  ::unsetenv("SNCUBE_TEST_KNOB");
  EXPECT_EQ(EnvInt("SNCUBE_TEST_KNOB", 42), 42);
  EXPECT_DOUBLE_EQ(EnvDouble("SNCUBE_TEST_KNOB", 1.5), 1.5);
  EXPECT_FALSE(EnvFlag("SNCUBE_TEST_KNOB"));
}

TEST(Env, ParsesValues) {
  ::setenv("SNCUBE_TEST_KNOB", "17", 1);
  EXPECT_EQ(EnvInt("SNCUBE_TEST_KNOB", 0), 17);
  EXPECT_TRUE(EnvFlag("SNCUBE_TEST_KNOB"));
  ::setenv("SNCUBE_TEST_KNOB", "2.25", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("SNCUBE_TEST_KNOB", 0), 2.25);
  ::unsetenv("SNCUBE_TEST_KNOB");
}

TEST(Env, MalformedFallsBack) {
  ::setenv("SNCUBE_TEST_KNOB", "not-a-number", 1);
  EXPECT_EQ(EnvInt("SNCUBE_TEST_KNOB", 9), 9);
  ::unsetenv("SNCUBE_TEST_KNOB");
}

TEST(Env, BenchRowsScales) {
  ::unsetenv("SNCUBE_PAPER");
  ::setenv("SNCUBE_SCALE", "2.0", 1);
  EXPECT_EQ(BenchRows(1000, 1000000), 2000);
  ::setenv("SNCUBE_PAPER", "1", 1);
  EXPECT_EQ(BenchRows(1000, 1000000), 1000000);
  ::unsetenv("SNCUBE_PAPER");
  ::unsetenv("SNCUBE_SCALE");
}

}  // namespace
}  // namespace sncube
