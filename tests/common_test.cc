#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/zipf.h"

namespace sncube {
namespace {

TEST(Status, CheckThrowsWithLocation) {
  try {
    SNCUBE_CHECK_MSG(1 == 2, "math broke");
    FAIL() << "expected throw";
  } catch (const SncubeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math broke"), std::string::npos);
  }
}

TEST(Status, CheckPassesSilently) {
  EXPECT_NO_THROW(SNCUBE_CHECK(2 + 2 == 4));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowInRangeAndCoversValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.Below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Below(1), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(5);
  Rng child = parent.Split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.Next() == child.Next());
  EXPECT_EQ(same, 0);
}

TEST(Zipf, AlphaZeroIsUniform) {
  ZipfSampler z(100, 0.0);
  Rng rng(11);
  std::vector<int> counts(100, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[z.Sample(rng)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 100.0, n / 100.0 * 0.35);
  }
}

TEST(Zipf, ProbabilitiesSumToOne) {
  for (double alpha : {0.0, 0.5, 1.0, 2.0, 3.0}) {
    ZipfSampler z(64, alpha);
    double sum = 0;
    for (std::uint32_t k = 0; k < 64; ++k) sum += z.Probability(k);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "alpha=" << alpha;
  }
}

TEST(Zipf, SkewConcentratesMassOnSmallKeys) {
  ZipfSampler z(256, 2.0);
  Rng rng(13);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) head += (z.Sample(rng) < 4);
  // With alpha = 2 the first 4 values carry the vast majority of the mass.
  EXPECT_GT(head, n * 3 / 4);
}

TEST(Zipf, EmpiricalMatchesTheoretical) {
  ZipfSampler z(32, 1.0);
  Rng rng(17);
  std::vector<int> counts(32, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[z.Sample(rng)]++;
  for (std::uint32_t k = 0; k < 32; ++k) {
    const double expected = z.Probability(k) * n;
    EXPECT_NEAR(counts[k], expected, 5 * std::sqrt(expected) + 8.0) << "k=" << k;
  }
}

TEST(Zipf, UniverseOneAlwaysZero) {
  ZipfSampler z(1, 3.0);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(z.Sample(rng), 0u);
}

TEST(Env, FallbackWhenUnset) {
  ::unsetenv("SNCUBE_TEST_KNOB");
  EXPECT_EQ(EnvInt("SNCUBE_TEST_KNOB", 42), 42);
  EXPECT_DOUBLE_EQ(EnvDouble("SNCUBE_TEST_KNOB", 1.5), 1.5);
  EXPECT_FALSE(EnvFlag("SNCUBE_TEST_KNOB"));
}

TEST(Env, ParsesValues) {
  ::setenv("SNCUBE_TEST_KNOB", "17", 1);
  EXPECT_EQ(EnvInt("SNCUBE_TEST_KNOB", 0), 17);
  EXPECT_TRUE(EnvFlag("SNCUBE_TEST_KNOB"));
  ::setenv("SNCUBE_TEST_KNOB", "2.25", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("SNCUBE_TEST_KNOB", 0), 2.25);
  ::unsetenv("SNCUBE_TEST_KNOB");
}

TEST(Env, MalformedFallsBack) {
  ::setenv("SNCUBE_TEST_KNOB", "not-a-number", 1);
  EXPECT_EQ(EnvInt("SNCUBE_TEST_KNOB", 9), 9);
  ::unsetenv("SNCUBE_TEST_KNOB");
}

TEST(Env, BenchRowsScales) {
  ::unsetenv("SNCUBE_PAPER");
  ::setenv("SNCUBE_SCALE", "2.0", 1);
  EXPECT_EQ(BenchRows(1000, 1000000), 2000);
  ::setenv("SNCUBE_PAPER", "1", 1);
  EXPECT_EQ(BenchRows(1000, 1000000), 1000000);
  ::unsetenv("SNCUBE_PAPER");
  ::unsetenv("SNCUBE_SCALE");
}

}  // namespace
}  // namespace sncube
