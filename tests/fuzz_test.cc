// Randomized fuzz suites: seeded random inputs swept through the public
// APIs with the invariants checked on every draw. Complements the
// handcrafted unit tests (exact scenarios) and the parameterized property
// tests (structured grids) with unstructured coverage.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "data/generator.h"
#include "lattice/lattice.h"
#include "net/fault.h"
#include "net/wire.h"
#include "query/engine.h"
#include "schedule/partial.h"
#include "schedule/pipesort.h"
#include "schedule/schedule_tree.h"
#include "seqcube/seq_cube.h"

namespace sncube {
namespace {

// ---------------------------------------------------------------------------
// Partial-cube scheduler fuzz: any random selection within a partition must
// produce a valid tree containing every selected view.

class PartialTreeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PartialTreeFuzz, RandomSelectionsYieldValidTrees) {
  Rng rng(4000 + static_cast<std::uint64_t>(GetParam()));
  const int d = 3 + static_cast<int>(rng.Below(4));  // 3..6 dims
  std::vector<std::uint32_t> cards;
  for (int i = 0; i < d; ++i) {
    cards.push_back(4u << rng.Below(5));
  }
  const Schema schema(cards);
  const AnalyticEstimator est(schema, 100000);

  // Random subset of the lattice (each view kept with probability ~40%),
  // never empty.
  std::vector<ViewId> selected;
  for (ViewId v : AllViews(d)) {
    if (rng.Below(10) < 4) selected.push_back(v);
  }
  if (selected.empty()) selected.push_back(ViewId::Full(d));

  for (const auto& partition : PartitionViews(selected, d)) {
    if (partition.empty()) continue;
    const ViewId root = PartitionRoot(partition);
    for (auto strategy : {PartialStrategy::kPrunedPipesort,
                          PartialStrategy::kGreedyLattice}) {
      const ScheduleTree tree =
          BuildPartialTree(partition, root, root.DimList(), est, strategy);
      tree.Validate();
      // Every selected view present and flagged; every auxiliary flagged.
      std::set<std::uint32_t> wanted;
      for (ViewId v : partition) wanted.insert(v.mask());
      int found = 0;
      for (int i = 0; i < tree.size(); ++i) {
        const bool is_wanted = wanted.contains(tree.node(i).view.mask());
        EXPECT_EQ(tree.node(i).selected, is_wanted);
        found += is_wanted ? 1 : 0;
      }
      EXPECT_EQ(found, static_cast<int>(partition.size()));
      // The cost estimate is finite and positive for non-trivial trees.
      if (tree.size() > 1) {
        EXPECT_GT(tree.EstimatedCost(), 0.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartialTreeFuzz, ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Pipesort fuzz: the tree's estimated cost never exceeds the all-sort tree
// for any cardinality mix, and orders stay consistent.

class PipesortFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PipesortFuzz, NeverWorseThanAllSort) {
  Rng rng(5000 + static_cast<std::uint64_t>(GetParam()));
  const int d = 4 + static_cast<int>(rng.Below(4));  // 4..7 dims
  std::vector<std::uint32_t> cards;
  for (int i = 0; i < d; ++i) cards.push_back(2u + static_cast<std::uint32_t>(rng.Below(300)));
  const Schema schema(cards);
  const AnalyticEstimator est(schema, 1 + rng.Below(3000000));

  const auto parts = PartitionViews(AllViews(d), d);
  for (const auto& part : parts) {
    const ViewId root = PartitionRoot(part);
    const ScheduleTree tree =
        BuildPipesortTree(part, root, root.DimList(), est);
    tree.Validate();
    double all_sort = 0;
    for (int i = 1; i < tree.size(); ++i) {
      all_sort += SortCost(tree.node(tree.node(i).parent).est_rows);
    }
    EXPECT_LE(tree.EstimatedCost(), all_sort + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipesortFuzz, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Query engine fuzz: random group-bys and filters against brute force.

class QueryFuzz : public ::testing::TestWithParam<int> {};

TEST_P(QueryFuzz, RandomQueriesMatchBruteForce) {
  Rng rng(6000 + static_cast<std::uint64_t>(GetParam()));
  DatasetSpec spec;
  spec.rows = 1500 + static_cast<std::int64_t>(rng.Below(1500));
  spec.cardinalities = {static_cast<std::uint32_t>(4 + rng.Below(20)),
                        static_cast<std::uint32_t>(3 + rng.Below(10)),
                        static_cast<std::uint32_t>(2 + rng.Below(6)),
                        static_cast<std::uint32_t>(2 + rng.Below(4))};
  spec.alphas = {rng.NextDouble() * 2, 0, 0, 0};
  spec.seed = 6100 + static_cast<std::uint64_t>(GetParam());
  const Relation raw = GenerateDataset(spec);
  const Schema schema = spec.MakeSchema();
  const CubeResult cube = SequentialCube(raw, schema, AllViews(4));
  const CubeQueryEngine engine(cube);

  for (int trial = 0; trial < 8; ++trial) {
    Query q;
    q.group_by = ViewId(static_cast<std::uint32_t>(rng.Below(16)));
    // Random filter on a dimension outside the group-by (when possible).
    Relation filtered(raw.width());
    const int fdim = static_cast<int>(rng.Below(4));
    const bool use_filter = !q.group_by.Contains(fdim) && rng.Below(2) == 0;
    if (use_filter) {
      const Key value = static_cast<Key>(rng.Below(schema.cardinality(fdim)));
      q.filters = {{fdim, value}};
      for (std::size_t r = 0; r < raw.size(); ++r) {
        if (raw.key(r, fdim) == value) filtered.AppendRow(raw, r);
      }
    }
    const Relation& source = use_filter ? filtered : raw;
    const auto answer = engine.Execute(q);
    EXPECT_EQ(answer.rel, BruteForceView(source, q.group_by, AggFn::kSum))
        << "trial " << trial << " mask=" << q.group_by.mask();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryFuzz, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Deserialization fuzz: truncated, bit-flipped, and garbage byte buffers fed
// to every wire-format parser must either parse (mutations can cancel out)
// or throw a typed SncubeError — never crash, loop, or read out of bounds.

class CorruptionFuzz : public ::testing::TestWithParam<int> {};

ByteBuffer Mutate(Rng& rng, ByteBuffer b) {
  switch (rng.Below(3)) {
    case 0:  // truncate
      b.resize(rng.Below(b.size() + 1));
      break;
    case 1:  // flip bits in one byte
      if (!b.empty()) {
        b[rng.Below(b.size())] ^= static_cast<std::byte>(1 + rng.Below(255));
      }
      break;
    default:  // append garbage
      for (std::size_t i = 1 + rng.Below(16); i > 0; --i) {
        b.push_back(static_cast<std::byte>(rng.Below(256)));
      }
      break;
  }
  return b;
}

TEST_P(CorruptionFuzz, MutatedBuffersThrowTypedErrors) {
  Rng rng(7000 + static_cast<std::uint64_t>(GetParam()));

  // A genuine schedule-tree buffer to mutate.
  const Schema schema({16, 8, 4, 3});
  const AnalyticEstimator est(schema, 50000);
  const auto parts = PartitionViews(AllViews(4), 4);
  const ViewId root = PartitionRoot(parts[0]);
  const ByteBuffer tree_bytes =
      BuildPipesortTree(parts[0], root, root.DimList(), est).Serialize();

  // A genuine row payload to mutate.
  Relation rel(3);
  for (int i = 0; i < 40; ++i) {
    rel.Append(std::vector<Key>{static_cast<Key>(rng.Below(100)),
                                static_cast<Key>(rng.Below(50)),
                                static_cast<Key>(rng.Below(10))},
               static_cast<Measure>(rng.Below(1000)));
  }
  const ByteBuffer row_bytes = SerializeRelation(rel);

  for (int trial = 0; trial < 60; ++trial) {
    try {
      ScheduleTree::Deserialize(Mutate(rng, tree_bytes));
    } catch (const SncubeError&) {
      // Typed rejection is the contract; silence is a lucky benign mutation.
    }
    try {
      Relation out(3);
      DeserializeRows(Mutate(rng, row_bytes), out);
    } catch (const SncubeError&) {
    }
    // Pure garbage through the raw wire primitives.
    ByteBuffer garbage;
    for (std::size_t i = rng.Below(64); i > 0; --i) {
      garbage.push_back(static_cast<std::byte>(rng.Below(256)));
    }
    try {
      WireReader r(garbage);
      while (!r.AtEnd()) {
        switch (rng.Below(4)) {
          case 0: r.Get<std::uint64_t>(); break;
          case 1: r.GetVector<std::uint32_t>(); break;
          case 2: r.GetBytes(1 + rng.Below(128)); break;
          default: r.Get<std::uint8_t>(); break;
        }
      }
    } catch (const SncubeError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionFuzz, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// FaultPlan::Parse fuzz: (1) property — every plan the generator builds from
// in-range values round-trips through ToSpec/Parse; (2) robustness — random
// clause soup either parses to an in-invariant plan or throws a typed
// SncubeError, never crashes or accepts out-of-range values.

class FaultPlanFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FaultPlanFuzz, WellFormedPlansRoundTripThroughToSpec) {
  Rng rng(8000 + static_cast<std::uint64_t>(GetParam()));
  FaultPlan plan;
  plan.seed = rng.Next();
  // Distinct ranks per clause kind (the duplicate rule is per kind).
  for (int rank = 0; rank < 6; ++rank) {
    if (rng.Below(2)) plan.kills.push_back({rank, rng.Below(40)});
    if (rng.Below(2)) {
      plan.stragglers.push_back({rank, 1.0 + rng.NextDouble() * 7});
    }
    if (rng.Below(2)) plan.disk_errors.push_back({rank, rng.NextDouble()});
    if (rng.Below(2)) plan.bit_flips.push_back({rank, rng.NextDouble()});
    if (rng.Below(2)) plan.torn_writes.push_back({rank, rng.NextDouble()});
    // The duplicate rule for refreshkill is per phase; reuse the loop index.
    if (rng.Below(2)) plan.refresh_kills.push_back({rank});
  }
  const std::string spec = plan.ToSpec();
  const FaultPlan reparsed = FaultPlan::Parse(spec);
  EXPECT_EQ(reparsed.ToSpec(), spec);
  EXPECT_EQ(reparsed.kills.size(), plan.kills.size());
  EXPECT_EQ(reparsed.stragglers.size(), plan.stragglers.size());
  EXPECT_EQ(reparsed.disk_errors.size(), plan.disk_errors.size());
  EXPECT_EQ(reparsed.bit_flips.size(), plan.bit_flips.size());
  EXPECT_EQ(reparsed.torn_writes.size(), plan.torn_writes.size());
  EXPECT_EQ(reparsed.refresh_kills.size(), plan.refresh_kills.size());
  EXPECT_EQ(reparsed.seed, plan.seed);
}

TEST_P(FaultPlanFuzz, RandomSpecSoupNeverYieldsAnOutOfRangePlan) {
  Rng rng(8100 + static_cast<std::uint64_t>(GetParam()));
  const char* kinds[] = {"kill",      "slow", "diskerr",     "bitflip",
                         "tornwrite", "seed", "refreshkill", "junk", ""};
  const char* values[] = {"0",    "1",   "0.5", "1.5",  "-1", "2.0",
                          "3",    "nan", "inf", "1e99", "x",  "0.5junk",
                          "18446744073709551615", ""};
  const char seps[] = {'@', 'x', ':', '?'};
  for (int trial = 0; trial < 200; ++trial) {
    std::string spec;
    for (std::size_t c = rng.Below(5); c > 0; --c) {
      if (!spec.empty()) spec += ';';
      spec += kinds[rng.Below(9)];
      if (rng.Below(4) != 0) {
        spec += ':';
        spec += std::to_string(rng.Below(9));
        spec += seps[rng.Below(4)];
        spec += values[rng.Below(14)];
      }
    }
    try {
      const FaultPlan plan = FaultPlan::Parse(spec);
      for (const auto& s : plan.stragglers) EXPECT_GE(s.factor, 1.0) << spec;
      for (const auto& de : plan.disk_errors) {
        EXPECT_GE(de.rate, 0.0) << spec;
        EXPECT_LE(de.rate, 1.0) << spec;
      }
      for (const auto& bf : plan.bit_flips) {
        EXPECT_GE(bf.rate, 0.0) << spec;
        EXPECT_LE(bf.rate, 1.0) << spec;
      }
      for (const auto& tw : plan.torn_writes) {
        EXPECT_GE(tw.rate, 0.0) << spec;
        EXPECT_LE(tw.rate, 1.0) << spec;
      }
      for (const auto& rk : plan.refresh_kills) {
        EXPECT_GE(rk.phase, 0) << spec;
      }
      // What parsed must round-trip: Parse(ToSpec(p)) is total on Parse's
      // own output.
      FaultPlan::Parse(plan.ToSpec());
    } catch (const SncubeError&) {
      // Typed rejection is the other allowed outcome.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultPlanFuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace sncube
