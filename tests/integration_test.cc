// Integration tests across modules: the full workflow a downstream user
// runs — generate → build (parallel, simulated cluster) → persist → reload →
// query — plus cross-cutting properties (determinism, cost-model ordering,
// sequential/parallel agreement).
#include <gtest/gtest.h>

#include <filesystem>
#include <mutex>
#include <sstream>

#include "core/parallel_cube.h"
#include "data/generator.h"
#include "data/retail.h"
#include "lattice/lattice.h"
#include "net/cluster.h"
#include "query/engine.h"
#include "query/greedy_select.h"
#include "relation/csv.h"
#include "seqcube/seq_cube.h"
#include "seqcube/view_store.h"

namespace sncube {
namespace {

TEST(Integration, GenerateBuildPersistQuery) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("sncube_integration_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  DatasetSpec spec;
  spec.rows = 3000;
  spec.cardinalities = {16, 8, 4, 3};
  spec.seed = 1234;
  const Schema schema = spec.MakeSchema();
  const int p = 4;

  // Build on the simulated cluster; each rank persists its shard.
  Cluster cluster(p);
  std::vector<CubeResult> shards(p);
  std::mutex mu;
  cluster.Run([&](Comm& comm) {
    const Relation raw = GenerateSlice(spec, p, comm.rank());
    CubeResult cube = BuildParallelCube(comm, raw, schema, AllViews(4));
    ViewStore rank_store(dir / ("rank" + std::to_string(comm.rank())));
    rank_store.SaveCube(cube, schema);
    std::lock_guard<std::mutex> lock(mu);
    shards[static_cast<std::size_t>(comm.rank())] = std::move(cube);
  });

  // Reload every rank's store and reassemble the cube.
  CubeResult reassembled;
  for (int r = 0; r < p; ++r) {
    ViewStore rank_store(dir / ("rank" + std::to_string(r)));
    const Schema loaded = rank_store.LoadSchema();
    EXPECT_EQ(loaded.dims(), schema.dims());
    CubeResult shard = rank_store.LoadCube();
    for (auto& [id, vr] : shard.views) {
      auto [it, inserted] = reassembled.views.try_emplace(id, std::move(vr));
      if (!inserted) it->second.rel.Concat(std::move(vr.rel));
    }
  }

  // Query the reassembled cube and cross-check against brute force.
  const Relation whole = GenerateDataset(spec);
  for (auto& [id, vr] : reassembled.views) {
    vr.rel = CanonicalizeRows(vr.rel);
    vr.order = id.DimList();
  }
  const CubeQueryEngine engine(reassembled);
  for (ViewId v :
       {ViewId::FromDims({1, 3}), ViewId::FromDims({0}), ViewId::Empty()}) {
    Query q;
    q.group_by = v;
    EXPECT_EQ(engine.Execute(q).rel, BruteForceView(whole, v, AggFn::kSum));
  }

  std::filesystem::remove_all(dir);
}

TEST(Integration, ParallelAgreesWithSequentialPartial) {
  DatasetSpec spec;
  spec.rows = 2000;
  spec.cardinalities = {20, 8, 4};
  spec.seed = 777;
  const Schema schema = spec.MakeSchema();
  const AnalyticEstimator est(schema, static_cast<double>(spec.rows));
  const auto selected = GreedySelectViews(3, 5, est);

  const Relation whole = GenerateDataset(spec);
  const CubeResult sequential = SequentialCube(whole, schema, selected);

  const int p = 3;
  Cluster cluster(p);
  std::vector<CubeResult> shards(p);
  std::mutex mu;
  cluster.Run([&](Comm& comm) {
    const Relation raw = GenerateSlice(spec, p, comm.rank());
    CubeResult cube = BuildParallelCube(comm, raw, schema, selected);
    std::lock_guard<std::mutex> lock(mu);
    shards[static_cast<std::size_t>(comm.rank())] = std::move(cube);
  });

  for (ViewId v : selected) {
    Relation combined(v.dim_count());
    for (const auto& shard : shards) {
      combined.Concat(Relation(shard.views.at(v).rel));
    }
    EXPECT_EQ(CanonicalizeRows(combined),
              CanonicalizeRows(sequential.views.at(v).rel))
        << "view mask=" << v.mask();
  }
}

TEST(Integration, SimTimeDeterministicAcrossRuns) {
  DatasetSpec spec;
  spec.rows = 4000;
  spec.cardinalities = {16, 8, 4};
  spec.seed = 31;
  const Schema schema = spec.MakeSchema();
  auto run = [&] {
    Cluster cluster(4);
    cluster.Run([&](Comm& comm) {
      const Relation raw = GenerateSlice(spec, 4, comm.rank());
      BuildParallelCube(comm, raw, schema, AllViews(3));
    });
    return cluster.SimTimeSeconds();
  };
  const double t1 = run();
  const double t2 = run();
  const double t3 = run();
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_DOUBLE_EQ(t2, t3);
}

TEST(Integration, GigabitBeatsFastEthernet) {
  DatasetSpec spec;
  spec.rows = 8000;
  spec.cardinalities = {32, 16, 8, 4};
  spec.seed = 32;
  const Schema schema = spec.MakeSchema();
  auto run = [&](CostParams cost) {
    Cluster cluster(8, cost);
    cluster.Run([&](Comm& comm) {
      const Relation raw = GenerateSlice(spec, 8, comm.rank());
      BuildParallelCube(comm, raw, schema, AllViews(4));
    });
    return cluster.SimTimeSeconds();
  };
  const double fast_eth = run(FastEthernetBeowulf());
  const double gig_eth = run(GigabitBeowulf());
  EXPECT_LT(gig_eth, fast_eth);
}

TEST(Integration, RetailPartialCubeOnCluster) {
  const RetailDataset ds = GenerateRetail(5000);
  const int d = ds.schema.dims();
  const AnalyticEstimator est(ds.schema,
                              static_cast<double>(ds.facts.size()));
  const auto selected = GreedySelectViews(d, 12, est);

  const int p = 4;
  Cluster cluster(p);
  std::vector<CubeResult> shards(p);
  std::mutex mu;
  cluster.Run([&](Comm& comm) {
    // Deal the shared fact table round-robin (arbitrary distribution).
    Relation slice(ds.facts.width());
    for (std::size_t r = comm.rank(); r < ds.facts.size();
         r += static_cast<std::size_t>(p)) {
      slice.AppendRow(ds.facts, r);
    }
    CubeResult cube = BuildParallelCube(comm, slice, ds.schema, selected);
    std::lock_guard<std::mutex> lock(mu);
    shards[static_cast<std::size_t>(comm.rank())] = std::move(cube);
  });

  for (ViewId v : selected) {
    Relation combined(v.dim_count());
    for (const auto& shard : shards) {
      combined.Concat(Relation(shard.views.at(v).rel));
    }
    EXPECT_EQ(CanonicalizeRows(combined),
              BruteForceView(ds.facts, v, AggFn::kSum))
        << "view mask=" << v.mask();
  }
}

TEST(Integration, CsvRoundTripFeedsCube) {
  // CSV out → CSV in → cube: the relational-integration path of the CLI.
  DatasetSpec spec;
  spec.rows = 800;
  spec.cardinalities = {8, 4};
  const Relation raw = GenerateDataset(spec);
  const Schema schema = spec.MakeSchema();

  std::stringstream ss;
  WriteCsv(ss, raw, {"a", "b"});
  const Relation back = ReadCsv(ss);
  ASSERT_EQ(back, raw);

  const CubeResult cube = SequentialCube(back, schema, AllViews(2));
  EXPECT_EQ(cube.views.size(), 4u);
}

}  // namespace
}  // namespace sncube
