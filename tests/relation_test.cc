#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/rng.h"
#include "relation/aggregate.h"
#include "relation/csv.h"
#include "relation/relation.h"
#include "relation/schema.h"
#include "relation/serialize.h"
#include "relation/sort.h"

namespace sncube {
namespace {

Relation MakeRel(std::initializer_list<std::pair<std::vector<Key>, Measure>> rows) {
  const int w = rows.size() == 0 ? 0 : static_cast<int>(rows.begin()->first.size());
  Relation rel(w);
  for (const auto& [keys, m] : rows) rel.Append(keys, m);
  return rel;
}

TEST(Schema, SortsByDecreasingCardinality) {
  Schema s({10, 300, 50}, {"x", "y", "z"});
  EXPECT_EQ(s.dims(), 3);
  EXPECT_EQ(s.cardinality(0), 300u);
  EXPECT_EQ(s.cardinality(1), 50u);
  EXPECT_EQ(s.cardinality(2), 10u);
  EXPECT_EQ(s.name(0), "y");
  EXPECT_EQ(s.name(1), "z");
  EXPECT_EQ(s.name(2), "x");
}

TEST(Schema, StableForTies) {
  Schema s({6, 6, 8}, {"a", "b", "c"});
  EXPECT_EQ(s.name(0), "c");
  EXPECT_EQ(s.name(1), "a");
  EXPECT_EQ(s.name(2), "b");
}

TEST(Schema, DefaultNames) {
  Schema s({4, 2});
  EXPECT_EQ(s.name(0), "D0");
  EXPECT_EQ(s.name(1), "D1");
}

TEST(Schema, RejectsZeroCardinality) {
  EXPECT_THROW(Schema({4, 0}), SncubeError);
}

TEST(Relation, AppendAndAccess) {
  Relation rel(3);
  rel.Append(std::vector<Key>{1, 2, 3}, 10);
  rel.Append(std::vector<Key>{4, 5, 6}, 20);
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.key(0, 0), 1u);
  EXPECT_EQ(rel.key(1, 2), 6u);
  EXPECT_EQ(rel.measure(1), 20);
  EXPECT_EQ(rel.RowBytes(), 3 * 4 + 8u);
  EXPECT_EQ(rel.ByteSize(), 2 * (3 * 4 + 8u));
}

TEST(Relation, ConcatMovesRows) {
  Relation a = MakeRel({{{1, 1}, 5}});
  Relation b = MakeRel({{{2, 2}, 6}, {{3, 3}, 7}});
  a.Concat(std::move(b));
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.key(2, 0), 3u);
  EXPECT_EQ(b.size(), 0u);
}

TEST(Relation, CompareRowsLexicographic) {
  Relation rel = MakeRel({{{1, 9}, 0}, {{2, 0}, 0}, {{1, 9}, 0}});
  EXPECT_LT(CompareRows(rel, 0, rel, 1), 0);
  EXPECT_GT(CompareRows(rel, 1, rel, 0), 0);
  EXPECT_EQ(CompareRows(rel, 0, rel, 2), 0);
}

TEST(Relation, CompareRowsWithColumnOrders) {
  Relation rel = MakeRel({{{1, 9}, 0}, {{9, 1}, 0}});
  const std::vector<int> second{1};
  // Comparing by column 1 only: row0 has 9, row1 has 1.
  EXPECT_GT(CompareRows(rel, 0, second, rel, 1, second), 0);
}

TEST(Sort, SortsByGivenColumns) {
  Relation rel = MakeRel({{{3, 1}, 1}, {{1, 2}, 2}, {{2, 0}, 3}});
  const auto cols = IdentityOrder(2);
  Relation sorted = SortRelation(rel, cols);
  EXPECT_TRUE(IsSorted(sorted, cols));
  EXPECT_EQ(sorted.key(0, 0), 1u);
  EXPECT_EQ(sorted.measure(0), 2);
  EXPECT_EQ(sorted.key(2, 0), 3u);
}

TEST(Sort, RespectsColumnPermutation) {
  Relation rel = MakeRel({{{1, 9}, 1}, {{2, 1}, 2}});
  const std::vector<int> order{1, 0};  // sort by second column first
  Relation sorted = SortRelation(rel, order);
  EXPECT_EQ(sorted.key(0, 1), 1u);
  EXPECT_EQ(sorted.key(1, 1), 9u);
  EXPECT_TRUE(IsSorted(sorted, order));
}

TEST(Sort, StableOnEqualKeys) {
  Relation rel = MakeRel({{{5, 1}, 1}, {{5, 2}, 2}, {{5, 3}, 3}});
  const std::vector<int> first{0};
  Relation sorted = SortRelation(rel, first);
  EXPECT_EQ(sorted.measure(0), 1);
  EXPECT_EQ(sorted.measure(1), 2);
  EXPECT_EQ(sorted.measure(2), 3);
}

TEST(Sort, RandomizedMatchesStdSort) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Relation rel(3);
    std::vector<std::vector<Key>> raw;
    for (int i = 0; i < 200; ++i) {
      std::vector<Key> keys{static_cast<Key>(rng.Below(5)),
                            static_cast<Key>(rng.Below(5)),
                            static_cast<Key>(rng.Below(5))};
      raw.push_back(keys);
      rel.Append(keys, i);
    }
    const auto cols = IdentityOrder(3);
    Relation sorted = SortRelation(rel, cols);
    std::sort(raw.begin(), raw.end());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      for (int c = 0; c < 3; ++c) EXPECT_EQ(sorted.key(i, c), raw[i][c]);
    }
  }
}

TEST(Aggregate, SumsDuplicateGroups) {
  Relation rel = MakeRel({{{1, 1}, 5}, {{1, 1}, 7}, {{1, 2}, 1}, {{2, 1}, 2}});
  const auto cols = IdentityOrder(2);
  Relation agg = SortAndAggregate(rel, cols, AggFn::kSum);
  ASSERT_EQ(agg.size(), 3u);
  EXPECT_EQ(agg.measure(0), 12);  // (1,1)
  EXPECT_EQ(agg.measure(1), 1);   // (1,2)
  EXPECT_EQ(agg.measure(2), 2);   // (2,1)
}

TEST(Aggregate, PrefixProjection) {
  Relation rel = MakeRel({{{1, 1}, 5}, {{1, 2}, 7}, {{2, 9}, 1}});
  const std::vector<int> prefix{0};
  Relation agg = SortAndAggregate(rel, prefix, AggFn::kSum);
  ASSERT_EQ(agg.size(), 2u);
  EXPECT_EQ(agg.width(), 1);
  EXPECT_EQ(agg.key(0, 0), 1u);
  EXPECT_EQ(agg.measure(0), 12);
  EXPECT_EQ(agg.measure(1), 1);
}

TEST(Aggregate, MinMax) {
  Relation rel = MakeRel({{{1}, 5}, {{1}, 7}, {{1}, 3}});
  const auto cols = IdentityOrder(1);
  EXPECT_EQ(SortAndAggregate(rel, cols, AggFn::kMin).measure(0), 3);
  EXPECT_EQ(SortAndAggregate(rel, cols, AggFn::kMax).measure(0), 7);
}

TEST(Aggregate, EmptyInput) {
  Relation rel(2);
  const auto cols = IdentityOrder(2);
  EXPECT_EQ(AggregateSortedPrefix(rel, cols, AggFn::kSum).size(), 0u);
}

TEST(Aggregate, ColumnPermutationProjectsInThatOrder) {
  Relation rel = MakeRel({{{1, 9}, 4}});
  const std::vector<int> order{1, 0};
  Relation agg = SortAndAggregate(rel, order, AggFn::kSum);
  EXPECT_EQ(agg.key(0, 0), 9u);  // column order follows `order`
  EXPECT_EQ(agg.key(0, 1), 1u);
}

TEST(Aggregate, MergeSortedAggregateCombinesAcross) {
  Relation a = MakeRel({{{1, 1}, 5}, {{3, 3}, 1}});
  Relation b = MakeRel({{{1, 1}, 2}, {{2, 2}, 9}});
  Relation merged = MergeSortedAggregate(a, b, AggFn::kSum);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged.measure(0), 7);
  EXPECT_EQ(merged.key(1, 0), 2u);
  EXPECT_EQ(merged.key(2, 0), 3u);
}

TEST(Aggregate, MergeWithEmptySide) {
  Relation a = MakeRel({{{1}, 5}});
  Relation b(1);
  Relation merged = MergeSortedAggregate(a, b, AggFn::kSum);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged.measure(0), 5);
}

TEST(Aggregate, CollapseSorted) {
  Relation rel = MakeRel({{{1}, 1}, {{1}, 2}, {{2}, 3}});
  Relation collapsed = CollapseSorted(rel, AggFn::kSum);
  ASSERT_EQ(collapsed.size(), 2u);
  EXPECT_EQ(collapsed.measure(0), 3);
}

TEST(Aggregate, CountGroups) {
  Relation rel = MakeRel({{{1, 1}, 0}, {{1, 2}, 0}, {{2, 2}, 0}});
  const std::vector<int> first{0};
  EXPECT_EQ(CountGroups(rel, first), 2u);
  EXPECT_EQ(CountGroups(rel, IdentityOrder(2)), 3u);
}

TEST(Serialize, RoundTrip) {
  Relation rel = MakeRel({{{1, 2, 3}, -7}, {{4, 5, 6}, 1234567890123}});
  ByteBuffer bytes = SerializeRelation(rel);
  EXPECT_EQ(bytes.size(), rel.ByteSize());
  Relation back = DeserializeRelation(bytes, 3);
  EXPECT_EQ(back, rel);
}

TEST(Serialize, PartialRange) {
  Relation rel = MakeRel({{{1}, 1}, {{2}, 2}, {{3}, 3}});
  ByteBuffer bytes;
  SerializeRows(rel, 1, 3, bytes);
  Relation back = DeserializeRelation(bytes, 1);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.key(0, 0), 2u);
}

TEST(Serialize, RejectsPartialRows) {
  Relation rel(2);
  ByteBuffer bad(7);
  EXPECT_THROW(DeserializeRows(bad, rel), SncubeError);
}

TEST(Serialize, EmptyRelation) {
  Relation rel(4);
  ByteBuffer bytes = SerializeRelation(rel);
  EXPECT_TRUE(bytes.empty());
  EXPECT_EQ(DeserializeRelation(bytes, 4).size(), 0u);
}

TEST(Csv, RoundTrip) {
  Relation rel = MakeRel({{{1, 2}, 30}, {{4, 5}, -60}});
  std::stringstream ss;
  WriteCsv(ss, rel, {"a", "b"});
  Relation back = ReadCsv(ss);
  EXPECT_EQ(back, rel);
}

TEST(Csv, HeaderOnly) {
  std::stringstream ss("a,b,measure\n");
  Relation rel = ReadCsv(ss);
  EXPECT_EQ(rel.width(), 2);
  EXPECT_EQ(rel.size(), 0u);
}

}  // namespace
}  // namespace sncube
