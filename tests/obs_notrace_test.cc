// Compiled with SNCUBE_TRACE_ENABLED=0 (see tests/CMakeLists.txt): proves
// the span macros erase completely at compile time — even with a recorder
// installed on the thread, a macro site records nothing, because the macro
// expands to no code at all. This is the "tracing disabled costs zero"
// half of the DESIGN.md §10 overhead budget; obs_test.cc covers the
// runtime-disabled (no recorder installed) half.
#include <gtest/gtest.h>

#include "obs/trace.h"

static_assert(SNCUBE_TRACE_ENABLED == 0,
              "this test must be compiled with -DSNCUBE_TRACE_ENABLED=0");

namespace sncube {
namespace {

class FixedClock final : public obs::SimClockSource {
 public:
  double TraceNowSeconds() const override { return 1.0; }
  std::uint64_t TraceSuperstep() const override { return 0; }
};

TEST(TraceDisabled, MacrosCompileToNothingEvenWithRecorderInstalled) {
  FixedClock clock;
  obs::TraceRecorder rec(0, &clock);
  obs::ThreadRecorderScope scope(&rec);
  {
    SNCUBE_TRACE_SPAN("erased");
    SNCUBE_TRACE_SPAN_IDX("also-erased", 3);
  }
  EXPECT_EQ(rec.span_count(), 0u);
  const obs::RankTrace t = rec.Finish();
  EXPECT_TRUE(t.spans.empty());
  EXPECT_TRUE(t.comms.empty());
}

TEST(TraceDisabled, ExplicitRecorderCallsStillWork) {
  // The library itself stays functional when the macros are off — only the
  // instrumentation sites vanish.
  FixedClock clock;
  obs::TraceRecorder rec(0, &clock);
  const auto h = rec.OpenSpan("explicit");
  rec.CloseSpan(h);
  EXPECT_EQ(rec.Finish().spans.size(), 1u);
}

}  // namespace
}  // namespace sncube
