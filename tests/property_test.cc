// Property suites: the repository's master invariants, swept over parameter
// grids with parameterized gtest.
//
// The headline property: for ANY processor count, balance threshold, skew,
// tree mode and aggregate, the parallel shared-nothing cube — concatenated
// across ranks — equals the brute-force sequential GROUP-BY of the whole
// data set, every shard is sorted, and no group straddles a rank boundary.
#include <gtest/gtest.h>

#include <mutex>
#include <tuple>

#include "core/parallel_cube.h"
#include "core/sample_sort.h"
#include "data/generator.h"
#include "lattice/lattice.h"
#include "net/cluster.h"
#include "relation/sort.h"
#include "seqcube/cube_result.h"

namespace sncube {
namespace {

// ---------------------------------------------------------------------------
// Master end-to-end property over (p, gamma, alpha, tree mode).

struct CubeCase {
  int p;
  double gamma;
  double alpha;
  TreeMode mode;
};

class ParallelCubeProperty : public ::testing::TestWithParam<CubeCase> {};

TEST_P(ParallelCubeProperty, MatchesBruteForce) {
  const CubeCase c = GetParam();
  DatasetSpec spec;
  spec.rows = 2500;
  spec.cardinalities = {24, 10, 6, 4};
  spec.alphas = {c.alpha, c.alpha, 0.0, 0.0};
  spec.seed = 7000 + static_cast<std::uint64_t>(c.p * 10 + c.gamma * 100);
  const Schema schema = spec.MakeSchema();
  const auto selected = AllViews(4);

  ParallelCubeOptions opts;
  opts.gamma_merge = c.gamma;
  opts.tree_mode = c.mode;
  if (c.mode == TreeMode::kLocal) opts.estimator = EstimatorKind::kFm;

  Cluster cluster(c.p);
  std::vector<CubeResult> shards(static_cast<std::size_t>(c.p));
  std::mutex mu;
  cluster.Run([&](Comm& comm) {
    const Relation raw = GenerateSlice(spec, c.p, comm.rank());
    CubeResult cube = BuildParallelCube(comm, raw, schema, selected, opts);
    std::lock_guard<std::mutex> lock(mu);
    shards[static_cast<std::size_t>(comm.rank())] = std::move(cube);
  });

  const Relation whole = GenerateDataset(spec);
  for (ViewId v : selected) {
    Relation combined(v.dim_count());
    const ViewResult* prev = nullptr;
    for (const auto& shard : shards) {
      const ViewResult& vr = shard.views.at(v);
      const auto cols = ColumnsOf(v, vr.order);
      ASSERT_TRUE(IsSorted(vr.rel, cols)) << "view mask=" << v.mask();
      if (!vr.rel.empty()) {
        if (prev != nullptr && !prev->rel.empty()) {
          const auto pcols = ColumnsOf(v, prev->order);
          EXPECT_LT(CompareRows(prev->rel, prev->rel.size() - 1, pcols,
                                vr.rel, 0, cols),
                    0)
              << "group straddles ranks, view mask=" << v.mask();
        }
        prev = &vr;
      }
      combined.Concat(Relation(vr.rel));
    }
    EXPECT_EQ(CanonicalizeRows(combined),
              BruteForceView(whole, v, AggFn::kSum))
        << "view mask=" << v.mask();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ParallelCubeProperty,
    ::testing::Values(
        CubeCase{1, 0.03, 0.0, TreeMode::kGlobal},
        CubeCase{2, 0.03, 0.0, TreeMode::kGlobal},
        CubeCase{3, 0.03, 0.0, TreeMode::kGlobal},
        CubeCase{4, 0.03, 0.0, TreeMode::kGlobal},
        CubeCase{6, 0.03, 0.0, TreeMode::kGlobal},
        CubeCase{8, 0.03, 0.0, TreeMode::kGlobal},
        CubeCase{4, 0.0, 0.0, TreeMode::kGlobal},   // everything Case 3
        CubeCase{4, 10.0, 0.0, TreeMode::kGlobal},  // Case 3 never fires
        CubeCase{4, 0.03, 1.0, TreeMode::kGlobal},
        CubeCase{4, 0.03, 2.0, TreeMode::kGlobal},
        CubeCase{4, 0.03, 3.0, TreeMode::kGlobal},
        CubeCase{5, 0.01, 1.5, TreeMode::kGlobal},
        CubeCase{2, 0.03, 1.0, TreeMode::kLocal},
        CubeCase{4, 0.03, 2.0, TreeMode::kLocal},
        CubeCase{6, 0.05, 0.5, TreeMode::kLocal}),
    [](const ::testing::TestParamInfo<CubeCase>& info) {
      const CubeCase& c = info.param;
      return "p" + std::to_string(c.p) + "_g" +
             std::to_string(static_cast<int>(c.gamma * 100)) + "_a" +
             std::to_string(static_cast<int>(c.alpha * 10)) +
             (c.mode == TreeMode::kLocal ? "_local" : "_global");
    });

// ---------------------------------------------------------------------------
// Backend byte-identity: for every (--backend, --threads-per-rank) pair the
// cube must equal the sort-backend single-thread baseline view-for-view,
// byte-for-byte — the contract that makes the engine choice a pure
// performance knob (DESIGN.md §13).

struct BackendCase {
  BackendMode backend;
  int threads;
};

std::vector<CubeResult> BuildBackendShards(BackendMode backend, int threads) {
  DatasetSpec spec;
  spec.rows = 2500;
  spec.cardinalities = {24, 10, 6, 4};
  spec.alphas = {2.0, 1.0, 0.0, 0.0};  // skewed: hash and sort edges mix
  spec.seed = 9100;
  const Schema schema = spec.MakeSchema();
  const auto selected = AllViews(4);

  ParallelCubeOptions opts;
  opts.backend = backend;

  constexpr int kP = 2;
  Cluster cluster(kP);
  cluster.set_threads_per_rank(threads);
  std::vector<CubeResult> shards(kP);
  std::mutex mu;
  cluster.Run([&](Comm& comm) {
    const Relation raw = GenerateSlice(spec, kP, comm.rank());
    CubeResult cube = BuildParallelCube(comm, raw, schema, selected, opts);
    std::lock_guard<std::mutex> lock(mu);
    shards[static_cast<std::size_t>(comm.rank())] = std::move(cube);
  });
  return shards;
}

class BackendIdentityProperty : public ::testing::TestWithParam<BackendCase> {
};

TEST_P(BackendIdentityProperty, BytesMatchSortSerialBaseline) {
  const BackendCase c = GetParam();
  const auto base = BuildBackendShards(BackendMode::kSort, 1);
  const auto got = BuildBackendShards(c.backend, c.threads);
  ASSERT_EQ(got.size(), base.size());
  for (std::size_t r = 0; r < base.size(); ++r) {
    ASSERT_EQ(got[r].views.size(), base[r].views.size()) << "rank " << r;
    for (const auto& [v, vr] : base[r].views) {
      const ViewResult& gvr = got[r].views.at(v);
      EXPECT_EQ(gvr.order, vr.order)
          << "rank " << r << " view mask=" << v.mask();
      EXPECT_EQ(gvr.rel, vr.rel) << "rank " << r << " view mask=" << v.mask();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BackendIdentityProperty,
    ::testing::Values(BackendCase{BackendMode::kSort, 1},
                      BackendCase{BackendMode::kSort, 2},
                      BackendCase{BackendMode::kSort, 4},
                      BackendCase{BackendMode::kHash, 1},
                      BackendCase{BackendMode::kHash, 2},
                      BackendCase{BackendMode::kHash, 4},
                      BackendCase{BackendMode::kAuto, 1},
                      BackendCase{BackendMode::kAuto, 2},
                      BackendCase{BackendMode::kAuto, 4}),
    [](const ::testing::TestParamInfo<BackendCase>& info) {
      return std::string(BackendModeName(info.param.backend)) + "_t" +
             std::to_string(info.param.threads);
    });

// ---------------------------------------------------------------------------
// Dimensionality sweep: the property holds as the lattice grows.

class DimsProperty : public ::testing::TestWithParam<int> {};

TEST_P(DimsProperty, FullCubeAllDims) {
  const int d = GetParam();
  DatasetSpec spec;
  spec.rows = 1200;
  for (int i = 0; i < d; ++i) {
    spec.cardinalities.push_back(static_cast<std::uint32_t>(16 >> (i % 3)));
  }
  spec.seed = 7100 + static_cast<std::uint64_t>(d);
  const Schema schema = spec.MakeSchema();
  const auto selected = AllViews(d);
  const int p = 3;

  Cluster cluster(p);
  std::vector<CubeResult> shards(p);
  std::mutex mu;
  cluster.Run([&](Comm& comm) {
    const Relation raw = GenerateSlice(spec, p, comm.rank());
    CubeResult cube = BuildParallelCube(comm, raw, schema, selected);
    std::lock_guard<std::mutex> lock(mu);
    shards[static_cast<std::size_t>(comm.rank())] = std::move(cube);
  });

  const Relation whole = GenerateDataset(spec);
  ASSERT_EQ(shards[0].views.size(), selected.size());
  for (ViewId v : selected) {
    Relation combined(v.dim_count());
    for (const auto& shard : shards) {
      combined.Concat(Relation(shard.views.at(v).rel));
    }
    EXPECT_EQ(CanonicalizeRows(combined),
              BruteForceView(whole, v, AggFn::kSum))
        << "d=" << d << " view mask=" << v.mask();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DimsProperty, ::testing::Range(2, 7));

// ---------------------------------------------------------------------------
// Sample-sort property over input distributions × processor counts.

enum class Dist { kUniform, kZipf, kConstant, kPresorted, kReversed, kEmpty };

class SampleSortProperty
    : public ::testing::TestWithParam<std::tuple<int, Dist>> {};

Relation MakeDistribution(Dist dist, int rank, int rows) {
  Rng rng(9000 + static_cast<std::uint64_t>(rank));
  Relation rel(2);
  switch (dist) {
    case Dist::kEmpty:
      return rel;
    case Dist::kUniform:
      for (int i = 0; i < rows; ++i) {
        rel.Append(std::vector<Key>{static_cast<Key>(rng.Below(500)),
                                    static_cast<Key>(rng.Below(8))},
                   i);
      }
      return rel;
    case Dist::kZipf: {
      ZipfSampler z(500, 2.0);
      for (int i = 0; i < rows; ++i) {
        rel.Append(std::vector<Key>{z.Sample(rng),
                                    static_cast<Key>(rng.Below(8))},
                   i);
      }
      return rel;
    }
    case Dist::kConstant:
      for (int i = 0; i < rows; ++i) {
        rel.Append(std::vector<Key>{7, 7}, i);
      }
      return rel;
    case Dist::kPresorted:
      for (int i = 0; i < rows; ++i) {
        rel.Append(std::vector<Key>{static_cast<Key>(rank * rows + i), 0}, i);
      }
      return rel;
    case Dist::kReversed:
      for (int i = rows; i > 0; --i) {
        rel.Append(std::vector<Key>{static_cast<Key>(i), 0}, i);
      }
      return rel;
  }
  return rel;
}

TEST_P(SampleSortProperty, GloballySortedBalancedMultiset) {
  const auto [param_p, param_dist] = GetParam();
  const struct {
    int p;
    Dist dist;
  } c{param_p, param_dist};
  const int rows = 300;
  const auto cols = IdentityOrder(2);

  std::vector<Relation> inputs;
  std::size_t total = 0;
  for (int r = 0; r < c.p; ++r) {
    inputs.push_back(MakeDistribution(c.dist, r, rows));
    total += inputs.back().size();
  }

  Cluster cluster(c.p);
  std::vector<Relation> shards(static_cast<std::size_t>(c.p));
  std::vector<SampleSortStats> stats(static_cast<std::size_t>(c.p));
  std::mutex mu;
  cluster.Run([&](Comm& comm) {
    SampleSortStats st;
    Relation out = AdaptiveSampleSort(
        comm, Relation(inputs[static_cast<std::size_t>(comm.rank())]), cols,
        0.01, &st);
    std::lock_guard<std::mutex> lock(mu);
    shards[static_cast<std::size_t>(comm.rank())] = std::move(out);
    stats[static_cast<std::size_t>(comm.rank())] = st;
  });

  // Globally sorted.
  const Relation* prev = nullptr;
  std::size_t got = 0;
  std::vector<std::uint64_t> sizes;
  for (const auto& shard : shards) {
    EXPECT_TRUE(IsSorted(shard, cols));
    if (!shard.empty()) {
      if (prev != nullptr) {
        EXPECT_LE(
            CompareRows(*prev, prev->size() - 1, cols, shard, 0, cols), 0);
      }
      prev = &shard;
    }
    got += shard.size();
    sizes.push_back(shard.size());
  }
  EXPECT_EQ(got, total);

  // Balanced when the shift ran; or the first h-relation was balanced.
  if (total > 0) {
    if (stats[0].shifted) {
      std::uint64_t mx = 0;
      std::uint64_t mn = total;
      for (auto s : sizes) {
        mx = std::max(mx, s);
        mn = std::min(mn, s);
      }
      EXPECT_LE(mx - mn, 1u);  // perfectly even after the global shift
    } else {
      EXPECT_LE(stats[0].imbalance_before_shift, 0.01 + 1e-9);
    }
  }

  // Same multiset of (keys, measure).
  Relation combined(2);
  for (const auto& shard : shards) combined.Concat(Relation(shard));
  Relation all(2);
  for (const auto& input : inputs) all.Concat(Relation(input));
  auto normalize = [](const Relation& rel) {
    std::vector<std::tuple<Key, Key, Measure>> v;
    for (std::size_t i = 0; i < rel.size(); ++i) {
      v.emplace_back(rel.key(i, 0), rel.key(i, 1), rel.measure(i));
    }
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(normalize(combined), normalize(all));
}

std::string SortCaseName(
    const ::testing::TestParamInfo<std::tuple<int, Dist>>& info) {
  static const char* names[] = {"uniform",   "zipf",     "constant",
                                "presorted", "reversed", "empty"};
  return "p" + std::to_string(std::get<0>(info.param)) + "_" +
         names[static_cast<int>(std::get<1>(info.param))];
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SampleSortProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(Dist::kUniform, Dist::kZipf,
                                         Dist::kConstant, Dist::kPresorted,
                                         Dist::kReversed, Dist::kEmpty)),
    SortCaseName);

}  // namespace
}  // namespace sncube
