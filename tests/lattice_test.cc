#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "data/generator.h"
#include "lattice/estimate.h"
#include "lattice/fm_sketch.h"
#include "lattice/lattice.h"
#include "lattice/view_id.h"
#include "relation/aggregate.h"
#include "relation/sort.h"

namespace sncube {
namespace {

TEST(ViewId, BasicSetOperations) {
  ViewId v = ViewId::FromDims({0, 2, 3});
  EXPECT_EQ(v.dim_count(), 3);
  EXPECT_TRUE(v.Contains(0));
  EXPECT_FALSE(v.Contains(1));
  EXPECT_EQ(v.DimList(), (std::vector<int>{0, 2, 3}));
  EXPECT_TRUE(v.Without(2).IsProperSubsetOf(v));
  EXPECT_EQ(v.With(1), ViewId::FromDims({0, 1, 2, 3}));
  EXPECT_TRUE(ViewId::Empty().IsSubsetOf(v));
  EXPECT_FALSE(v.IsSubsetOf(ViewId::Empty()));
}

TEST(ViewId, FullAndEmpty) {
  EXPECT_EQ(ViewId::Full(4).mask(), 0b1111u);
  EXPECT_EQ(ViewId::Full(4).dim_count(), 4);
  EXPECT_TRUE(ViewId::Empty().empty());
  EXPECT_EQ(ViewId::Empty().dim_count(), 0);
}

TEST(ViewId, NamesMatchPaperConvention) {
  Schema schema({256, 128, 64, 32});
  EXPECT_EQ(ViewId::FromDims({0, 1, 2, 3}).Name(schema), "ABCD");
  EXPECT_EQ(ViewId::FromDims({0, 2}).Name(schema), "AC");
  EXPECT_EQ(ViewId::Empty().Name(schema), "all");
}

TEST(ViewId, PartitionIndexIsLeadingDimension) {
  const int d = 4;
  EXPECT_EQ(ViewId::FromDims({0, 1, 2, 3}).PartitionIndex(d), 0);  // ABCD
  EXPECT_EQ(ViewId::FromDims({0, 2}).PartitionIndex(d), 0);        // AC
  EXPECT_EQ(ViewId::FromDims({1, 2, 3}).PartitionIndex(d), 1);     // BCD
  EXPECT_EQ(ViewId::FromDims({2, 3}).PartitionIndex(d), 2);        // CD
  EXPECT_EQ(ViewId::FromDims({3}).PartitionIndex(d), 3);           // D
  EXPECT_EQ(ViewId::Empty().PartitionIndex(d), 3);                 // all
}

TEST(Lattice, AllViewsCount) {
  EXPECT_EQ(AllViews(4).size(), 16u);
  EXPECT_EQ(AllViews(8).size(), 256u);
}

TEST(Lattice, PartitionsMatchFigure3) {
  // Figure 3 (d = 4): A-partition = {ABCD, ABC, ABD, ACD, AB, AC, AD, A},
  // B = {BCD, BC, BD, B}, C = {CD, C}, D = {D, all}.
  const auto parts = PartitionViews(AllViews(4), 4);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0].size(), 8u);
  EXPECT_EQ(parts[1].size(), 4u);
  EXPECT_EQ(parts[2].size(), 2u);
  EXPECT_EQ(parts[3].size(), 2u);

  // Every view appears in exactly one partition.
  std::set<std::uint32_t> seen;
  for (const auto& part : parts) {
    for (ViewId v : part) EXPECT_TRUE(seen.insert(v.mask()).second);
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST(Lattice, PartitionRoots) {
  const auto parts = PartitionViews(AllViews(4), 4);
  EXPECT_EQ(PartitionRoot(parts[0]), ViewId::FromDims({0, 1, 2, 3}));  // ABCD
  EXPECT_EQ(PartitionRoot(parts[1]), ViewId::FromDims({1, 2, 3}));     // BCD
  EXPECT_EQ(PartitionRoot(parts[2]), ViewId::FromDims({2, 3}));        // CD
  EXPECT_EQ(PartitionRoot(parts[3]), ViewId::FromDims({3}));           // D
}

TEST(Lattice, PartialCubePartitionRootIsUnionOfSelected) {
  // Selected views {AC, C} → C-partition contains only C; A-partition {AC}.
  const std::vector<ViewId> selected{ViewId::FromDims({0, 2}),
                                     ViewId::FromDims({2})};
  const auto parts = PartitionViews(selected, 4);
  EXPECT_EQ(PartitionRoot(parts[0]), ViewId::FromDims({0, 2}));
  EXPECT_TRUE(parts[1].empty());
  EXPECT_EQ(PartitionRoot(parts[2]), ViewId::FromDims({2}));
}

TEST(Lattice, ChildrenAndParents) {
  ViewId v = ViewId::FromDims({0, 2});
  const auto children = LatticeChildren(v);
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0], ViewId::FromDims({2}));
  EXPECT_EQ(children[1], ViewId::FromDims({0}));

  const auto parents = LatticeParents(v, 4);
  ASSERT_EQ(parents.size(), 2u);
  EXPECT_EQ(parents[0], ViewId::FromDims({0, 1, 2}));
  EXPECT_EQ(parents[1], ViewId::FromDims({0, 2, 3}));
}

TEST(Lattice, LevelSizesAreBinomials) {
  EXPECT_EQ(LatticeLevel(4, 0).size(), 1u);
  EXPECT_EQ(LatticeLevel(4, 2).size(), 6u);
  EXPECT_EQ(LatticeLevel(4, 4).size(), 1u);
  EXPECT_EQ(LatticeLevel(8, 4).size(), 70u);
}

TEST(FmSketch, EstimatesWithinTolerance) {
  FmSketch sketch(128);
  const int distinct = 20000;
  for (int i = 0; i < distinct; ++i) {
    // Each key added several times; estimate counts distinct only.
    sketch.Add(HashValue(static_cast<std::uint64_t>(i)));
    sketch.Add(HashValue(static_cast<std::uint64_t>(i)));
  }
  const double est = sketch.Estimate();
  EXPECT_GT(est, distinct * 0.7);
  EXPECT_LT(est, distinct * 1.3);
}

TEST(FmSketch, MergeEqualsUnion) {
  FmSketch a(64);
  FmSketch b(64);
  FmSketch u(64);
  for (int i = 0; i < 5000; ++i) {
    const auto h = HashValue(static_cast<std::uint64_t>(i));
    if (i % 2 == 0) a.Add(h);
    if (i % 2 == 1) b.Add(h);
    u.Add(h);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Estimate(), u.Estimate());
}

TEST(FmSketch, RejectsNonPowerOfTwo) {
  EXPECT_THROW(FmSketch(63), SncubeError);
}

TEST(AnalyticEstimator, SmallUniverseSaturates) {
  Schema schema({4, 2});
  AnalyticEstimator est(schema, 1e6);
  // 1M uniform rows over an 8-cell space: essentially all cells occupied.
  EXPECT_NEAR(est.EstimateRows(ViewId::Full(2)), 8.0, 1e-3);
  EXPECT_NEAR(est.EstimateRows(ViewId::FromDims({1})), 2.0, 1e-6);
  EXPECT_DOUBLE_EQ(est.EstimateRows(ViewId::Empty()), 1.0);
}

TEST(AnalyticEstimator, SparseUniverseNearRowCount) {
  Schema schema({100000, 100000});
  AnalyticEstimator est(schema, 1000);
  // 1000 rows over 10^10 cells: virtually no collisions.
  EXPECT_NEAR(est.EstimateRows(ViewId::Full(2)), 1000.0, 1.0);
}

TEST(AnalyticEstimator, MatchesEmpiricalUniform) {
  DatasetSpec spec;
  spec.rows = 50000;
  spec.cardinalities = {64, 32, 8};
  Relation data = GenerateDataset(spec);
  Schema schema = spec.MakeSchema();
  AnalyticEstimator est(schema, static_cast<double>(spec.rows));

  for (ViewId v : AllViews(3)) {
    if (v.empty()) continue;
    const auto dims = v.DimList();
    const Relation agg = SortAndAggregate(data, dims, AggFn::kSum);
    const double predicted = est.EstimateRows(v);
    EXPECT_NEAR(predicted, static_cast<double>(agg.size()),
                0.05 * static_cast<double>(agg.size()) + 2.0)
        << "view mask=" << v.mask();
  }
}

TEST(FmViewEstimator, TracksActualDistinctCounts) {
  DatasetSpec spec;
  spec.rows = 30000;
  spec.cardinalities = {128, 16, 4};
  spec.alphas = {1.5, 0.0, 0.0};  // skewed leading dimension
  Relation data = GenerateDataset(spec);

  const std::vector<int> rel_dims{0, 1, 2};
  const auto views = AllViews(3);
  FmViewEstimator est(data, rel_dims, views, 128);

  for (ViewId v : views) {
    if (v.empty()) continue;
    const auto dims = v.DimList();
    const Relation agg = SortAndAggregate(data, dims, AggFn::kSum);
    const double predicted = est.EstimateRows(v);
    const auto actual = static_cast<double>(agg.size());
    EXPECT_GT(predicted, actual * 0.55) << "view mask=" << v.mask();
    EXPECT_LT(predicted, actual * 1.8) << "view mask=" << v.mask();
  }
}

TEST(FmViewEstimator, WorksOnProjectedRelations) {
  // A Di-root relation whose columns are global dims {1, 3}.
  Relation rel(2);
  for (Key a = 0; a < 10; ++a) {
    for (Key b = 0; b < 5; ++b) {
      rel.Append(std::vector<Key>{a, b}, 1);
    }
  }
  const std::vector<int> rel_dims{1, 3};
  const std::vector<ViewId> views{ViewId::FromDims({1, 3}),
                                  ViewId::FromDims({3})};
  FmViewEstimator est(rel, rel_dims, views, 64);
  EXPECT_GT(est.EstimateRows(views[0]), 25.0);
  EXPECT_LT(est.EstimateRows(views[1]), 25.0);
}

TEST(ViewId, MaxDimsBoundary) {
  const ViewId v = ViewId::Full(ViewId::kMaxDims);
  EXPECT_EQ(v.dim_count(), ViewId::kMaxDims);
  EXPECT_TRUE(v.Contains(ViewId::kMaxDims - 1));
  EXPECT_THROW(ViewId::FromDims({ViewId::kMaxDims}), SncubeError);
  EXPECT_THROW(ViewId::Full(ViewId::kMaxDims + 1), SncubeError);
}

TEST(ViewId, NameFallsBackToSchemaNamesBeyond26Dims) {
  // d <= 26 uses letters; verify the letter convention at the boundary of
  // what the paper's figures use.
  Schema schema({64, 32, 16, 8, 4, 2});
  EXPECT_EQ(ViewId::FromDims({0, 5}).Name(schema), "AF");
}

TEST(Lattice, PartitionOfEmptySelectionIsEmpty) {
  const auto parts = PartitionViews({}, 4);
  for (const auto& part : parts) EXPECT_TRUE(part.empty());
  EXPECT_EQ(PartitionRoot({}), ViewId::Empty());
}

}  // namespace
}  // namespace sncube
